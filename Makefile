# Tier-1 verification for builders and CI. `make verify` is the gate every
# change must pass: vet, build, the full test suite, the turboca
# concurrency tests under the race detector (the parallel NBO engine's
# determinism contract is only meaningful if it is also data-race free),
# the control-plane chaos suite under the race detector, the coverage
# floor on the packet-path packages, and a short fuzz smoke over the
# checked-in corpora.

GO ?= go

# Packages whose statement coverage must stay at or above COVER_FLOOR:
# the TCP packet path, where a silent regression corrupts traffic rather
# than failing a build, plus the shared telemetry store and the fleet
# control plane, whose determinism contracts live in their tests.
COVER_PKGS  = ./internal/fastack ./internal/tcpstack ./internal/packet ./internal/littletable ./internal/fleetd ./internal/oracle
COVER_FLOOR = 75
# The FastACK agent carries the safety guard and invariant checker; its
# guard/chaos/fuzz test battery holds it to a stricter floor.
COVER_FLOOR_FASTACK = 93
# The optimality oracle is the ground truth the planner is measured
# against; an untested branch there silently weakens every gap number.
COVER_FLOOR_ORACLE = 85

# Seconds of random exploration per fuzz target in the smoke pass. The
# checked-in seed corpora always run in full via `make test`; this adds a
# brief live search so verify catches shallow regressions in new code.
FUZZTIME = 5s

.PHONY: verify vet build test race chaos chaos-kill storm cover fuzz bench bench-json bench-check gap

verify: vet build test race chaos chaos-kill storm cover fuzz bench-json bench-check
	-$(MAKE) gap

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/turboca/...

# Fault-injected control plane: chaos campus runs, retry/reconcile
# contracts, and the faults package's determinism properties, all under
# the race detector (poll delivery, retries, and planning interleave).
# Plus the data-path chaos acceptance suite: seeded DataChaos campaigns
# over the FastACK testbed (guard lifecycle, invariants, drain-to-zero,
# goodput floors) and the fastack guard/fuzz-regression tests. -short
# keeps the campaign to a dozen seeds under -race; `go test
# ./internal/testbed` runs all 100.
chaos:
	$(GO) test -race -run 'TestChaos|TestPollInterval' ./internal/backend/...
	$(GO) test -race ./internal/faults/...
	$(GO) test -race -short -run 'TestChaos|TestDataChaos|TestRoaming|TestUplink|TestBidirectional' ./internal/testbed/...
	$(GO) test -race -run 'TestGuard|TestSweep|TestRST|TestExportImport|TestInvariant|TestClientAckHeal|TestSpurious|FuzzAgentDatagram' ./internal/fastack/...

# Crash-safety campaign for the fleet control plane: seeded SIGKILLs at
# durable-write instants over a 600-network fleet (half tearing the
# journal's final record), restart-replay equivalence at every write
# boundary, degraded-mode determinism under checkpoint failures, pass
# supervision (panic quarantine, stuck-pass watchdog, lag demotion), and
# a real SIGKILL re-exec of the test binary over the on-disk store — all
# under the race detector. -short keeps the campaign to 8 seeds under
# -race; plain `go test ./internal/fleetd` runs all 50.
chaos-kill:
	$(GO) test -race -short -run 'TestChaosKillCampaign|TestRestartEquivalence|TestCleanRestart|TestDegraded|TestOpenTruncates|TestOpenRejects|TestPanicQuarantine|TestWatchdog|TestLagDegradation|TestRealSIGKILL' ./internal/fleetd

# Hostile-RF survival campaign under the race detector: the campus storm
# acceptance run (correlated DFS sweeps + spectrum-trace interference,
# zero NOP-invariant trips, 10% recovery bound, byte-identical replay),
# the per-strike NOP semantics tests, the 100-seed no-transmit property,
# and the fleet-correlated StormRF determinism tests.
storm:
	$(GO) test -race -run 'TestStorm|TestInstallChannelRefusesNOP|TestPlannerInputCarriesRF' ./internal/backend
	$(GO) test -race -run 'TestStormRF|TestStormRadar' ./internal/fleetd
	$(GO) test -race ./internal/rfenv

# Coverage floor: fails if any of COVER_PKGS drops below COVER_FLOOR%
# (the fastack package is held to COVER_FLOOR_FASTACK instead).
cover:
	@for pkg in $(COVER_PKGS); do \
		floor=$(COVER_FLOOR); \
		case $$pkg in \
			*/fastack) floor=$(COVER_FLOOR_FASTACK);; \
			*/oracle) floor=$(COVER_FLOOR_ORACLE);; \
		esac; \
		out=$$($(GO) test -cover -count=1 $$pkg | tail -1) || exit 1; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(echo "$$pct $$floor" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "coverage floor: $$pkg at $$pct% < $$floor%"; exit 1; \
		fi; \
		echo "cover $$pkg $$pct% (floor $$floor%)"; \
	done

# Fuzz smoke: each target explores for FUZZTIME beyond its seed corpus.
# Go allows one -fuzz target per invocation, hence one line per target.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzSanitize$$' -fuzztime $(FUZZTIME) ./internal/turboca
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEthernet$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzAgentDatagram$$' -fuzztime $(FUZZTIME) ./internal/fastack

# Planner scaling numbers (BenchmarkRunNBO sweeps Workers on ~600 APs).
bench:
	$(GO) test -run=NONE -bench=RunNBO -benchmem ./internal/turboca/...

# Machine-readable benchmark artifacts: BENCH_planner.json (one i=0 pass
# over the ~600-AP chain), BENCH_fleetd.json (bytes/network and passes/sec
# at 10k networks, plus the adaptive-cadence twin's passes-saved numbers),
# BENCH_oracle.json (exact-solver latency and node counts at 6/9/12 APs),
# and BENCH_fastack.json (hot-path segments/sec and allocs/op at 1k and
# 10k concurrent flows), and BENCH_rfenv.json (spectrum-trace sampling
# throughput and storm-recovery planner passes).
# Non-failing by design — the artifacts are a by-product of verify, not a
# gate on absolute speed; regressions are judged by a human diffing the
# JSON, so a slow machine cannot fail the build. bench-check (below)
# still fails verify when an artifact is missing or malformed.
bench-json:
	-BENCH_JSON_DIR=$(CURDIR) $(GO) test -run=NONE -bench='^BenchmarkPlannerPass$$' -benchtime=1x ./internal/turboca
	-BENCH_JSON_DIR=$(CURDIR) $(GO) test -run=NONE -bench='^(BenchmarkFleetd10kNetworks|BenchmarkFleetdAdaptiveCadence)$$' -benchtime=1x -timeout 30m ./internal/fleetd
	-BENCH_JSON_DIR=$(CURDIR) $(GO) test -run=NONE -bench='^BenchmarkOracleSolve$$' ./internal/oracle
	-BENCH_JSON_DIR=$(CURDIR) $(GO) test -run=NONE -bench='^BenchmarkAgentHotPath' -benchtime=50000x ./internal/fastack
	-BENCH_JSON_DIR=$(CURDIR) $(GO) test -run=NONE -bench='^BenchmarkRFEnv$$' -benchtime=1x ./internal/rfenv

# Sanity-check the bench-json artifacts: every required key present and a
# finite non-negative number. Catches a silently broken emitter without
# gating on machine speed.
bench-check:
	$(GO) run ./cmd/benchcheck \
		BENCH_planner.json:ns_per_pass,passes_per_sec,aps \
		BENCH_fleetd.json:ns_per_pass,passes_per_sec,bytes_per_network,networks,adaptive_passes_saved_pct,adaptive_netp_delta_pct \
		BENCH_oracle.json:aps_6_ns_per_solve,aps_6_nodes,aps_9_ns_per_solve,aps_9_nodes,aps_12_ns_per_solve,aps_12_nodes \
		BENCH_fastack.json:flows_1000_segments_per_sec,flows_1000_allocs_per_op,flows_10000_segments_per_sec,flows_10000_allocs_per_op,flows_1000_batched_segments_per_sec \
		BENCH_rfenv.json:trace_samples_per_sec,storm_recovery_passes

# Optimality-gap campaign (advisory, non-failing in verify): the exact
# branch-and-bound oracle certifies NBO's NetP on every <=12-AP scenario
# family under the race detector. See internal/experiments/gap.go and
# `turboca -oracle` for the interactive version.
gap:
	$(GO) test -race -count=1 -run '^TestGapCampaign$$' ./internal/experiments
