# Tier-1 verification for builders and CI. `make verify` is the gate every
# change must pass: vet, build, the full test suite, and the turboca
# concurrency tests under the race detector (the parallel NBO engine's
# determinism contract is only meaningful if it is also data-race free).

GO ?= go

.PHONY: verify vet build test race bench

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/turboca/...

# Planner scaling numbers (BenchmarkRunNBO sweeps Workers on ~600 APs).
bench:
	$(GO) test -run=NONE -bench=RunNBO -benchmem ./internal/turboca/...
