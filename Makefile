# Tier-1 verification for builders and CI. `make verify` is the gate every
# change must pass: vet, build, the full test suite, the turboca
# concurrency tests under the race detector (the parallel NBO engine's
# determinism contract is only meaningful if it is also data-race free),
# and the control-plane chaos suite under the race detector.

GO ?= go

.PHONY: verify vet build test race chaos bench

verify: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/turboca/...

# Fault-injected control plane: chaos campus runs, retry/reconcile
# contracts, and the faults package's determinism properties, all under
# the race detector (poll delivery, retries, and planning interleave).
chaos:
	$(GO) test -race -run 'TestChaos|TestPollInterval' ./internal/backend/...
	$(GO) test -race ./internal/faults/...

# Planner scaling numbers (BenchmarkRunNBO sweeps Workers on ~600 APs).
bench:
	$(GO) test -run=NONE -bench=RunNBO -benchmem ./internal/turboca/...
