// Multiap: the Fig 18 experiment — two APs sharing one collision domain
// and channel, ten clients each, all combinations of baseline TCP and
// FastACK, plus the asymmetric case's per-AP breakdown showing that a
// FastACK AP wins airtime from a baseline neighbor without hurting the
// network total.
//
//	go run ./examples/multiap
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	const clients = 10
	dur := 10 * sim.Second

	cases := []struct {
		name   string
		m1, m2 core.Mode
	}{
		{"baseline + baseline", core.Baseline, core.Baseline},
		{"baseline + fastack", core.Baseline, core.FastACK},
		{"fastack  + fastack", core.FastACK, core.FastACK},
	}

	fmt.Printf("two APs, one channel, %d clients each, %v per case\n\n", clients, dur)
	fmt.Printf("%-22s %10s %10s %10s %8s %8s\n", "case", "AP1 Mbps", "AP2 Mbps", "total", "agg1", "agg2")

	var totals []float64
	for _, tc := range cases {
		opt := core.DefaultTestbedOptions()
		opt.APModes = []core.Mode{tc.m1, tc.m2}
		opt.ClientsPerAP = clients
		opt.BadHintRate = 0.015
		tb := core.NewTestbed(opt)
		tb.Run(dur)

		var ap1, ap2 float64
		for _, c := range tb.Clients {
			if c.AP.Index == 0 {
				ap1 += c.GoodputMbps(dur)
			} else {
				ap2 += c.GoodputMbps(dur)
			}
		}
		totals = append(totals, ap1+ap2)
		fmt.Printf("%-22s %10.1f %10.1f %10.1f %8.1f %8.1f\n",
			tc.name, ap1, ap2, ap1+ap2, tb.AggAP[0].Mean(), tb.AggAP[1].Mean())
	}

	fmt.Printf("\nboth-FastACK vs both-baseline: %+.0f%% (paper: +51%%)\n",
		100*(totals[2]-totals[0])/totals[0])
	fmt.Printf("one-sided FastACK vs both-baseline: %+.0f%% (paper: net positive)\n",
		100*(totals[1]-totals[0])/totals[0])
}
