// Museum: the §4.6 evaluation in miniature — an MNet-like 300-AP museum
// network runs two simulated days under ReservedCA, then two under
// TurboCA, and the example prints the Table 2 / Fig 8 / Fig 9 metrics
// side by side: daily and peak-hour usage, the TCP latency CDF, and the
// bit-rate efficiency CDF.
//
//	go run ./examples/museum
package main

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	const days = 2
	type outcome struct {
		alg      string
		dailyTB  float64
		peakTB   float64
		latP50   float64
		latP90   float64
		effP50   float64
		switches int
	}
	var results []outcome

	for _, alg := range []backend.Algorithm{backend.AlgReservedCA, backend.AlgTurboCA} {
		dp := core.NewDeployment(core.Museum, alg, 42)
		fmt.Printf("running %v over %s for %d days...\n", alg, dp.Scenario, days)
		dp.Run(sim.Time(days) * sim.Day)

		// Skip day 1 while the algorithm stabilizes (§4.6.1 skips the
		// first week).
		from, to := sim.Day, sim.Time(days)*sim.Day
		peak := 0.0
		for h := from; h < to; h += sim.Hour {
			if v := dp.UsageTB(h, h+sim.Hour); v > peak {
				peak = v
			}
		}
		lat := dp.TCPLatency(from, to)
		results = append(results, outcome{
			alg:      alg.String(),
			dailyTB:  dp.UsageTB(from, to) / float64(days-1),
			peakTB:   peak,
			latP50:   lat.Median(),
			latP90:   lat.Percentile(90),
			effP50:   dp.BitrateEfficiency(from, to).Median(),
			switches: dp.Backend.Switches(),
		})
	}

	fmt.Printf("\n%-12s %10s %10s %9s %9s %8s %9s\n",
		"algorithm", "daily(TB)", "peak(TB)", "lat p50", "lat p90", "eff p50", "switches")
	for _, r := range results {
		fmt.Printf("%-12s %10.3f %10.4f %7.1fms %7.1fms %8.3f %9d\n",
			r.alg, r.dailyTB, r.peakTB, r.latP50, r.latP90, r.effP50, r.switches)
	}
	a, b := results[0], results[1]
	fmt.Printf("\nTurboCA vs ReservedCA: peak usage %+.0f%%, median TCP latency %+.0f%%, bit-rate efficiency %+.0f%%\n",
		100*(b.peakTB-a.peakTB)/a.peakTB,
		100*(b.latP50-a.latP50)/a.latP50,
		100*(b.effP50-a.effP50)/a.effP50)
	fmt.Println("paper (Table 2, Figs 8-9): peak +27%, latency -40%, efficiency +15%")
}
