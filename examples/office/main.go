// Office: one simulated day of a dense single-floor deployment (the
// Meraki-HQ-like network of §3.2.2 and Fig 6), with the dedicated
// scanning radio feeding TurboCA's 15-minute reactive schedule.
//
// The example prints an hour-by-hour view of one AP — associated-client
// demand, channel utilization, current channel — so the Fig 6 shape
// (gradual client curve, bursty usage, the ~2 pm spike) and TurboCA's
// reactions to it are visible in one terminal screen.
//
//	go run ./examples/office
package main

import (
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// scanEnv adapts the deployment scenario to the scanning radio's
// Environment interface: a dwell on channel c observes the external
// interferers audible at the AP plus co-channel neighbor airtime.
type scanEnv struct{ dp *core.Deployment }

func (e scanEnv) ObserveChannel(apID int, ch spectrum.Channel, t sim.Time) (float64, map[int]float64) {
	sc := e.dp.Scenario
	ap := sc.APs[apID]
	util := sc.ExternalUtilization(ap.Pos, ch.Band, ch.Number)
	neigh := map[int]float64{}
	for _, n := range sc.NeighborsOf(ap) {
		onChan := n.AP.Channel
		if ch.Band == spectrum.Band2G4 {
			onChan = n.AP.Channel24
		}
		if onChan.Overlaps(ch) {
			neigh[n.AP.ID] = n.RSSIDBm
			// A busy co-channel neighbor also shows up as busy air.
			util += 0.05
		}
	}
	if util > 1 {
		util = 1
	}
	return util, neigh
}

func main() {
	dp := core.NewDeployment(core.Office, backend.AlgTurboCA, 21)

	// Attach a scanning radio to the AP we will watch. (The backend's
	// long-horizon loop snapshots the same quantities analytically; the
	// scanner shows the per-dwell mechanics of §2.1.)
	watched := dp.Scenario.APs[4]
	scanner := radio.NewScanner(watched.ID, scanEnv{dp})
	scanner.Start(dp.Engine)

	fmt.Printf("office: %d APs; watching %s at (%.0f,%.0f)\n",
		len(dp.Scenario.APs), watched.Name, watched.Pos.X, watched.Pos.Y)
	fmt.Printf("%5s %9s %8s %12s %6s %s\n", "hour", "demand", "util", "channel", "busy36", "demand bar")

	dp.Backend.Start()
	lastChan := watched.Channel
	switches := 0
	for hour := 0; hour < 24; hour++ {
		dp.Engine.RunUntil(sim.Time(hour+1) * sim.Hour)
		now := dp.Engine.Now()
		demand := dp.Scenario.DemandAt(watched, now)
		perf := dp.Backend.Model.Evaluate(now)[watched.ID]
		if watched.Channel != lastChan {
			switches++
			lastChan = watched.Channel
		}
		busy36 := 0.0
		if ch, ok := spectrum.ChannelAt(spectrum.Band5, 36, spectrum.W20); ok {
			if o, found := scanner.Observation(ch); found {
				busy36 = o.Utilization
			}
		}
		fmt.Printf("%4dh %7.1fMb %7.0f%% %12v %5.0f%% %s\n",
			hour+1, demand, 100*perf.Utilization, watched.Channel, 100*busy36,
			strings.Repeat("#", int(demand/3)))
	}

	fmt.Printf("\nday summary: %d channel switches on the watched AP, %d network-wide\n",
		switches, dp.Backend.Switches())
	lat := dp.TCPLatency(0, 24*sim.Hour)
	fmt.Printf("network TCP latency p50=%.1fms p90=%.1fms over %d samples\n",
		lat.Median(), lat.Percentile(90), lat.N())
	nr := scanner.NeighborReport(spectrum.Band5)
	fmt.Printf("scanner heard %d distinct 5 GHz neighbors from %s\n", len(nr), watched.Name)
}
