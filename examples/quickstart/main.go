// Quickstart: the three workflows of the library in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

func main() {
	// 1. Measurement study (Section 3): synthesize a fleet and query it
	// like the Meraki backend queries LittleTable.
	f := core.NewFleetStudy(200, 1)
	u24 := f.UtilizationCDF(spectrum.Band2G4, 10)
	u5 := f.UtilizationCDF(spectrum.Band5, 10)
	fmt.Printf("fleet: %d APs; median utilization 2.4GHz=%.0f%% 5GHz=%.0f%%\n",
		f.APCount(), 100*u24.Median(), 100*u5.Median())

	// 2. Channel planning (Section 4): take a 33-AP office that boots
	// with every radio on the same 80 MHz channel, and let TurboCA fix it.
	dp := core.NewDeployment(core.Office, backend.AlgNone, 7)
	fmt.Printf("office before: %v\n", dp.CurrentPlan())
	res := core.PlanOnce(dp.Scenario, 7)
	fmt.Printf("office after:  %v (switches=%d, rounds=%d)\n",
		dp.CurrentPlan(), res.Switches, res.Rounds)

	// 3. TCP acceleration (Section 5): ten clients downloading through
	// one AP, baseline vs FastACK, same channel realization.
	for _, mode := range []core.Mode{core.Baseline, core.FastACK} {
		opt := core.DefaultTestbedOptions()
		opt.ClientsPerAP = 10
		opt.APModes = []core.Mode{mode}
		opt.BadHintRate = 0.015
		tb := core.NewTestbed(opt)
		dur := 8 * sim.Second
		tb.Run(dur)
		total := 0.0
		for _, c := range tb.Clients {
			total += c.GoodputMbps(dur)
		}
		fmt.Printf("testbed %-8v: %6.1f Mbps aggregate, mean A-MPDU %.1f\n",
			mode, total, tb.AggAP[0].Mean())
	}
}
