package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/fastack"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Performance micro-benchmarks: not paper figures, but the numbers that
// determine how long the paper figures take to regenerate.

func BenchmarkPerfTCPSegmentCodec(b *testing.B) {
	d := packet.NewTCPDatagram(
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000},
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 2}, Port: 80}, 1448)
	d.TCP.SACK = []packet.SACKBlock{{Left: 1, Right: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := d.Marshal()
		if _, err := packet.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfFastACKDownlink(b *testing.B) {
	agent := fastack.New(fastack.DefaultConfig(), func() sim.Time { return 0 })
	srv := packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000}
	cli := packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 2}, Port: 80}
	seq := uint32(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := packet.NewTCPDatagram(srv, cli, 1448)
		d.TCP.Seq = seq
		seq += 1448
		agent.HandleDownlink(d)
		agent.HandleWirelessAck(d, true)
	}
}

func BenchmarkPerfMACSaturatedLink(b *testing.B) {
	// Events per second of the MAC engine under a saturated 2-station
	// link; reported as simulated-seconds per wall-second via ns/op.
	engine := sim.NewEngine(1)
	md := mac.NewMedium(engine, 40)
	tx := md.AddStation(mac.StationConfig{Name: "tx", NSS: 3, Width: spectrum.W80, GI: phy.SGI})
	rx := md.AddStation(mac.StationConfig{Name: "rx", NSS: 3, Width: spectrum.W80, GI: phy.SGI})
	rx.OnReceive = func(*mac.MPDU, sim.Time) {}
	srv := packet.Endpoint{Addr: packet.IPv4Addr{1}, Port: 1}
	cli := packet.Endpoint{Addr: packet.IPv4Addr{2}, Port: 2}
	refill := engine.Ticker(sim.Millisecond, func(*sim.Engine) {
		for tx.QueueDepth(phy.ACBE, rx.ID) < 64 {
			tx.Enqueue(packet.NewUDPDatagram(srv, cli, 1400), rx.ID, phy.ACBE)
		}
	})
	defer refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.RunUntil(engine.Now() + 100*sim.Millisecond)
	}
}

func BenchmarkPerfNBOMuseum(b *testing.B) {
	sc := topo.Museum(3)
	engine := sim.NewEngine(3)
	be := backend.New(backend.DefaultOptions(backend.AlgTurboCA), sc, engine)
	engine.RunUntil(13 * sim.Hour)
	in := be.PlannerInput(spectrum.Band5)
	cfg := turboca.DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		turboca.RunNBO(cfg, in, rng, []int{0})
	}
}

func BenchmarkPerfNBOCampus(b *testing.B) {
	sc := topo.Campus(3)
	engine := sim.NewEngine(3)
	be := backend.New(backend.DefaultOptions(backend.AlgTurboCA), sc, engine)
	engine.RunUntil(13 * sim.Hour)
	in := be.PlannerInput(spectrum.Band5)
	// The ~600-AP campus at several worker counts; each invocation gets a
	// fresh rng from the same seed, so every count (and every iteration)
	// produces the identical plan and the deltas are pure parallel speedup.
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := turboca.DefaultConfig()
			cfg.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				turboca.RunNBO(cfg, in, rand.New(rand.NewSource(4)), []int{0})
			}
		})
	}
}

func BenchmarkPerfModelEvaluate(b *testing.B) {
	sc := topo.Campus(5)
	m := backend.NewModel(sc, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Invalidate()
		m.Evaluate(sim.Time(i%24) * sim.Hour)
	}
}
