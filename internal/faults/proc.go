package faults

import "repro/internal/sim"

// ProcProfile describes process-level faults for the fleet controller's
// durability layer: SIGKILL-style process deaths at seeded instants,
// checkpoint-commit failures, torn tail writes on the intent journal, and
// per-pass panics/wedges inside the controller's worker pool. The kill
// chaos campaign (internal/fleetd) drives all of them from one profile so
// a whole crash-and-recovery history is a pure function of the seed.
//
// Like every fault model in this package, decisions are pure hashes of
// their coordinates, never a shared RNG stream:
//
//   - Kill instants are keyed by (process instance, durable-write count):
//     each process lifetime draws its own kill point, so a recovered
//     process is not re-killed at the same journal record forever.
//   - Checkpoint failures are keyed by the fleet clock of the attempt, so
//     a crashed-and-replayed controller and its uncrashed twin see the
//     same failure sequence (attempts happen at deterministic sim times).
//   - Pass panics and wedges are keyed by (network, tick clock, level) —
//     positional coordinates that replay identically.
type ProcProfile struct {
	// Seed anchors every hash-derived decision.
	Seed int64
	// Kills is how many process instances die (instance 0 is the first
	// process lifetime; each recovery starts the next). Instances beyond
	// Kills run to completion, so a campaign always terminates.
	Kills int
	// KillSpan bounds the durable-write index at which a kill fires: the
	// doomed instance dies immediately after its (1 + hash % KillSpan)-th
	// durable write (journal append or checkpoint commit). Default 16.
	KillSpan int
	// TornTail is the probability a kill leaves the journal's final
	// record torn: a prefix of its bytes on disk, the rest lost — the
	// crash landing mid-write. Recovery must drop the torn record.
	TornTail float64
	// CheckpointFail is the probability one checkpoint commit fails,
	// keyed by the fleet clock of the attempt.
	CheckpointFail float64
	// PanicPass is the probability one (network, tick, level) planning
	// pass panics inside the worker pool.
	PanicPass float64
	// StuckPass is the probability one pass wedges (spinning until the
	// stuck-pass watchdog cancels its context).
	StuckPass float64
}

// Decision kinds for process faults, disjoint from the control-path kinds
// in faults.go.
const (
	kindKillAt = iota + 100
	kindTornTail
	kindTornFrac
	kindCkptFail
	kindPanicPass
	kindStuckPass
)

// ProcInjector answers the durability layer's fault questions. A nil
// *ProcInjector is valid and reports "no fault" everywhere.
type ProcInjector struct {
	prof ProcProfile
}

// NewProc builds an injector for a profile; a nil profile yields a nil
// injector (fault-free).
func NewProc(p *ProcProfile) *ProcInjector {
	if p == nil {
		return nil
	}
	inj := &ProcInjector{prof: *p}
	if inj.prof.KillSpan <= 0 {
		inj.prof.KillSpan = 16
	}
	return inj
}

// Active reports whether any fault can ever fire.
func (inj *ProcInjector) Active() bool { return inj != nil }

func (inj *ProcInjector) uniformProc(a, kind, salt int, at sim.Time) float64 {
	return float64(mix(inj.prof.Seed, a, kind, salt, 0, at)>>11) / (1 << 53)
}

// KillAfterWrites returns the durable-write count at which the given
// process instance dies (the process survives its n-th durable write for
// n < the returned value), or -1 if the instance runs to completion.
func (inj *ProcInjector) KillAfterWrites(instance int) int {
	if inj == nil || instance >= inj.prof.Kills {
		return -1
	}
	return 1 + int(mix(inj.prof.Seed, instance, kindKillAt, 0, 0, 0)%uint64(inj.prof.KillSpan))
}

// TornTailFrac reports whether the given instance's death tears the
// journal's final record, and if so which fraction of the record's bytes
// survive on disk (in (0, 1)).
func (inj *ProcInjector) TornTailFrac(instance int) (float64, bool) {
	if inj == nil || inj.prof.TornTail <= 0 {
		return 0, false
	}
	if inj.uniformProc(instance, kindTornTail, 0, 0) >= inj.prof.TornTail {
		return 0, false
	}
	f := inj.uniformProc(instance, kindTornFrac, 0, 0)
	if f <= 0 {
		f = 0.01
	}
	if f >= 1 {
		f = 0.99
	}
	return f, true
}

// FailCheckpoint reports whether the checkpoint commit attempted at the
// given fleet clock fails.
func (inj *ProcInjector) FailCheckpoint(at sim.Time) bool {
	if inj == nil || inj.prof.CheckpointFail <= 0 {
		return false
	}
	return inj.uniformProc(0, kindCkptFail, 0, at) < inj.prof.CheckpointFail
}

// PanicPass reports whether the (network, tick, level) planning pass
// panics.
func (inj *ProcInjector) PanicPass(net int, at sim.Time, level int) bool {
	if inj == nil || inj.prof.PanicPass <= 0 {
		return false
	}
	return inj.uniformProc(net, kindPanicPass, level, at) < inj.prof.PanicPass
}

// StuckPass reports whether the (network, tick, level) planning pass
// wedges until its watchdog deadline.
func (inj *ProcInjector) StuckPass(net int, at sim.Time, level int) bool {
	if inj == nil || inj.prof.StuckPass <= 0 {
		return false
	}
	return inj.uniformProc(net, kindStuckPass, level, at) < inj.prof.StuckPass
}
