// Data-path fault model for the §5 FastACK subsystem: wired-side segment
// loss, reorder, duplication and corruption between the TCP sender and the
// AP, wireless block-ACK feedback loss bursts at the MAC, and client
// roam/disconnect windows. Same discipline as the control-plane model in
// faults.go: every decision is a pure hash of (seed, coordinates), so the
// fault sequence is order-independent and byte-identical per seed, and a
// faulted run can be compared against its fault-free twin.
package faults

import "repro/internal/sim"

// DataProfile describes one data-path fault model. Probabilities are per
// decision (per wired segment arrival, per block-ACK feedback event); zero
// disables that fault class. The zero DataProfile injects nothing.
type DataProfile struct {
	// Seed anchors every hash-derived decision.
	Seed int64

	// WireLoss is the probability one wired-side TCP segment is lost
	// between the sender and the AP.
	WireLoss float64
	// WireReorder is the probability one wired-side segment is held back
	// behind later traffic; the extra delay is uniform in (0,
	// WireReorderMax] (default 2 ms).
	WireReorder    float64
	WireReorderMax sim.Time
	// WireDup is the probability one wired-side segment arrives twice.
	WireDup float64
	// WireCorrupt is the probability one wired-side segment arrives with
	// mangled TCP header fields (sequence jumps, ack/window garbage).
	WireCorrupt float64

	// BALoss is the probability that one BALossWindow-sized interval of a
	// client's block-ACK feedback goes dark (the MAC-layer delivery
	// reports never reach the FastACK agent). Hashing the window index
	// rather than each event makes the losses bursty, which is how
	// block-ACK starvation presents on real channels.
	BALoss       float64
	BALossWindow sim.Time // default 50 ms

	// Disconnects lists per-client windows during which the client's
	// uplink is dead at the AP (frames transmit, nothing comes back).
	// Window.APID carries the client index.
	Disconnects []Window

	// Roams schedules mid-flow client roams between APs.
	Roams []Roam
}

// Roam moves one client to another AP at a fixed instant.
type Roam struct {
	Client int
	ToAP   int
	At     sim.Time
}

// DataChaos is the canonical data-path stress profile used by the chaos
// suite and cmd/fastackbench -chaos: 2% wired loss, 2% reorder, 1%
// duplication, 0.5% header corruption, and 5% of 50 ms block-ACK feedback
// windows dark. Disconnects and roams are scenario-specific and left to
// the caller.
func DataChaos(seed int64) *DataProfile {
	return &DataProfile{
		Seed:        seed,
		WireLoss:    0.02,
		WireReorder: 0.02,
		WireDup:     0.01,
		WireCorrupt: 0.005,
		BALoss:      0.05,
	}
}

// DataInjector answers the datapath's fault questions. A nil *DataInjector
// is valid and reports "no fault" everywhere. Wired-segment decisions are
// keyed (client, seq, attempt) so that, like the control-plane injector,
// the answer is a pure hash that does not depend on delivery order — and
// crucially does not depend on the AP's operating mode, so a Baseline run
// and a FastACK run at the same seed face the identical fault sequence for
// each (re)transmission of a given segment.
type DataInjector struct {
	prof DataProfile
	// core carries the shared reorder/duplication primitives.
	core *Injector
	disc map[int][]Window
	// arrivals counts wire arrivals per (client, seq): the attempt
	// coordinate. Keying faults on the attempt index rather than wall time
	// keeps the model fair to fast recovery — an agent that retransmits a
	// dropped segment within microseconds draws a fresh decision instead
	// of re-hitting the one that killed the original.
	arrivals map[segKey]int
}

type segKey struct {
	client int
	seq    uint32
}

// UplinkCoord maps a client index onto a disjoint coordinate space for
// faults on that client's *uplink* wired segments (AP -> server). Salting
// the direction keeps uplink and downlink data of one client drawing
// independent fault streams while staying a pure function of the seed.
func UplinkCoord(client int) int { return client + 1<<20 }

// NewData builds an injector for a data-path profile; a nil profile
// yields a nil injector (fault-free).
func NewData(p *DataProfile) *DataInjector {
	if p == nil {
		return nil
	}
	dj := &DataInjector{prof: *p, disc: map[int][]Window{}, arrivals: map[segKey]int{}}
	if dj.prof.WireReorderMax <= 0 {
		dj.prof.WireReorderMax = 2 * sim.Millisecond
	}
	if dj.prof.BALossWindow <= 0 {
		dj.prof.BALossWindow = 50 * sim.Millisecond
	}
	dj.core = New(&Profile{
		Seed:       p.Seed,
		Reorder:    p.WireReorder,
		ReorderMax: dj.prof.WireReorderMax,
		Duplicate:  p.WireDup,
	})
	for _, w := range p.Disconnects {
		dj.disc[w.APID] = append(dj.disc[w.APID], w)
	}
	return dj
}

// Active reports whether any fault can ever fire.
func (dj *DataInjector) Active() bool { return dj != nil }

// Data-path decision kinds, disjoint from the control-plane kinds.
const (
	kindWireLoss = iota + 100
	kindWireCorrupt
	kindWireCorruptField
	kindBALoss
)

// SegmentArrival registers one wire arrival of (client, seq) and returns
// its attempt index (0 for the first transmission, 1 for the first
// retransmission, ...). The caller passes the index to the per-segment
// decision methods so one arrival draws one coherent set of faults. The
// first transmission of every segment draws attempt 0 in any mode, so a
// Baseline run and a FastACK run at one seed face the identical initial
// fault pattern; recovery traffic draws fresh per attempt, so neither
// mode's retransmissions can deterministically re-hit the same drop.
func (dj *DataInjector) SegmentArrival(client int, seq uint32) int {
	if dj == nil {
		return 0
	}
	k := segKey{client, seq}
	n := dj.arrivals[k]
	dj.arrivals[k] = n + 1
	return n
}

// DropSegment reports whether this attempt of the wired segment
// (client, seq) is lost.
func (dj *DataInjector) DropSegment(client int, seq uint32, attempt int) bool {
	if dj == nil || dj.prof.WireLoss <= 0 {
		return false
	}
	return dj.core.uniform(client, kindWireLoss, int(seq), attempt, 0) < dj.prof.WireLoss
}

// ReorderSegment reports whether this attempt of the wired segment
// (client, seq) is held back behind later traffic, and by how much.
func (dj *DataInjector) ReorderSegment(client int, seq uint32, attempt int) (sim.Time, bool) {
	if dj == nil {
		return 0, false
	}
	return dj.core.ReorderDelay(client, int(seq), sim.Time(attempt))
}

// DuplicateSegment reports whether this attempt of the wired segment
// (client, seq) arrives twice.
func (dj *DataInjector) DuplicateSegment(client int, seq uint32, attempt int) bool {
	if dj == nil {
		return false
	}
	return dj.core.Duplicate(client, int(seq), sim.Time(attempt))
}

// CorruptSegment reports whether this attempt of the wired segment
// (client, seq) arrives with mangled TCP header fields.
func (dj *DataInjector) CorruptSegment(client int, seq uint32, attempt int) bool {
	if dj == nil || dj.prof.WireCorrupt <= 0 {
		return false
	}
	return dj.core.uniform(client, kindWireCorrupt, int(seq), attempt, 0) < dj.prof.WireCorrupt
}

// CorruptU32 derives the deterministic garbage written into a corrupted
// segment's header. salt separates the fields of one segment.
func (dj *DataInjector) CorruptU32(client int, seq uint32, salt, attempt int) uint32 {
	if dj == nil {
		return 0
	}
	return uint32(mix(dj.prof.Seed, client, kindWireCorruptField, int(seq), salt, sim.Time(attempt)))
}

// DropBAFeedback reports whether the client's block-ACK feedback is dark
// at this instant. The draw hashes the enclosing BALossWindow index, so a
// hit blacks out the whole window — a burst, not isolated events.
func (dj *DataInjector) DropBAFeedback(client int, at sim.Time) bool {
	if dj == nil || dj.prof.BALoss <= 0 {
		return false
	}
	win := at / dj.prof.BALossWindow
	return dj.core.uniform(client, kindBALoss, 0, 0, win) < dj.prof.BALoss
}

// Disconnected reports whether the client is inside one of its uplink
// disconnect windows.
func (dj *DataInjector) Disconnected(client int, at sim.Time) bool {
	if dj == nil {
		return false
	}
	for _, w := range dj.disc[client] {
		if at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// Roams returns the scheduled mid-flow roams.
func (dj *DataInjector) Roams() []Roam {
	if dj == nil {
		return nil
	}
	return dj.prof.Roams
}
