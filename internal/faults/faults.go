// Package faults is a deterministic, seeded fault-injection layer for the
// cloud↔AP control plane (§2, §4.5): per-AP poll loss, delayed report
// delivery, malformed telemetry, AP offline windows, and plan-push
// failures.
//
// Every decision is a pure hash of (seed, AP, kind, salt, attempt, time),
// never a shared RNG stream, so outcomes are independent of the order in
// which the backend asks. Two runs with the same seed therefore see
// byte-identical fault sequences, which is what makes chaos tests
// reproducible and lets a faulted run be compared against its fault-free
// twin at the same seed.
package faults

import (
	"math"

	"repro/internal/sim"
)

// Profile describes one fault model. Probabilities are per decision (per
// poll of one AP, per push attempt to one AP); zero disables that fault
// class. The zero Profile injects nothing.
type Profile struct {
	// Seed anchors every hash-derived decision.
	Seed int64
	// PollLoss is the probability one AP's poll is lost outright.
	PollLoss float64
	// PollDelay is the probability a collected report is delayed in
	// transit; the delivery delay is uniform in (0, PollDelayMax].
	PollDelay    float64
	PollDelayMax sim.Time // default 10 min when delays are enabled
	// PollCorrupt is the probability a delivered report carries mangled
	// metric values (NaN, sign flips, wild scales).
	PollCorrupt float64
	// PushFail is the probability one plan-push attempt to an AP fails.
	PushFail float64
	// Reorder is the probability one delivery is held back behind later
	// traffic; the extra holding delay is uniform in (0, ReorderMax].
	Reorder    float64
	ReorderMax sim.Time // default 2 ms when reordering is enabled
	// Duplicate is the probability one delivery arrives twice.
	Duplicate float64
	// Offline lists per-AP windows during which the AP answers no polls
	// and accepts no pushes.
	Offline []Window
}

// Window is a half-open [From, To) interval during which one AP is
// unreachable from the cloud.
type Window struct {
	APID     int
	From, To sim.Time
}

// DefaultChaos is the canonical stress profile used by the chaos suite
// and cmd/turboca -chaos: 20% poll loss, 10% delayed reports, 2%
// corrupted reports, 10% push failures. Offline windows are
// scenario-specific and left to the caller.
func DefaultChaos(seed int64) *Profile {
	return &Profile{
		Seed:        seed,
		PollLoss:    0.20,
		PollDelay:   0.10,
		PollCorrupt: 0.02,
		PushFail:    0.10,
	}
}

// Injector answers the backend's fault questions. A nil *Injector is
// valid and reports "no fault" everywhere, so fault-free deployments pay
// only a nil check.
type Injector struct {
	prof    Profile
	offline map[int][]Window
}

// New builds an injector for a profile; a nil profile yields a nil
// injector (fault-free).
func New(p *Profile) *Injector {
	if p == nil {
		return nil
	}
	inj := &Injector{prof: *p, offline: map[int][]Window{}}
	if inj.prof.PollDelayMax <= 0 {
		inj.prof.PollDelayMax = 10 * sim.Minute
	}
	if inj.prof.ReorderMax <= 0 {
		inj.prof.ReorderMax = 2 * sim.Millisecond
	}
	for _, w := range p.Offline {
		inj.offline[w.APID] = append(inj.offline[w.APID], w)
	}
	return inj
}

// Active reports whether any fault can ever fire.
func (inj *Injector) Active() bool { return inj != nil }

// Decision kinds keep the hash streams for different questions disjoint.
const (
	kindPollLoss = iota + 1
	kindPollDelay
	kindPollDelayAmount
	kindPollCorrupt
	kindPushFail
	kindJitter
	kindCorrupt
	kindReorder
	kindReorderAmount
	kindDuplicate
)

// mix is a splitmix64-style finalizer over the decision coordinates.
func mix(seed int64, ap, kind, salt, attempt int, at sim.Time) uint64 {
	z := uint64(seed)
	z ^= 0x9e3779b97f4a7c15 * uint64(uint32(ap)+1)
	z += 0xbf58476d1ce4e5b9 * uint64(uint32(kind))
	z ^= 0x94d049bb133111eb * uint64(uint32(salt)+1)
	z += 0xd6e8feb86659fd93 * uint64(uint32(attempt)+1)
	z ^= uint64(at) * 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform maps a decision's hash to [0, 1).
func (inj *Injector) uniform(ap, kind, salt, attempt int, at sim.Time) float64 {
	return float64(mix(inj.prof.Seed, ap, kind, salt, attempt, at)>>11) / (1 << 53)
}

// Offline reports whether the AP is inside one of its offline windows.
func (inj *Injector) Offline(ap int, at sim.Time) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.offline[ap] {
		if at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// DropPoll reports whether this AP's poll at this instant is lost.
func (inj *Injector) DropPoll(ap int, at sim.Time) bool {
	if inj == nil || inj.prof.PollLoss <= 0 {
		return false
	}
	return inj.uniform(ap, kindPollLoss, 0, 0, at) < inj.prof.PollLoss
}

// DelayPoll reports whether this AP's report is delayed, and by how much.
func (inj *Injector) DelayPoll(ap int, at sim.Time) (sim.Time, bool) {
	if inj == nil || inj.prof.PollDelay <= 0 {
		return 0, false
	}
	if inj.uniform(ap, kindPollDelay, 0, 0, at) >= inj.prof.PollDelay {
		return 0, false
	}
	d := sim.Time(inj.uniform(ap, kindPollDelayAmount, 0, 0, at) * float64(inj.prof.PollDelayMax))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d, true
}

// CorruptPoll reports whether this AP's report arrives malformed.
func (inj *Injector) CorruptPoll(ap int, at sim.Time) bool {
	if inj == nil || inj.prof.PollCorrupt <= 0 {
		return false
	}
	return inj.uniform(ap, kindPollCorrupt, 0, 0, at) < inj.prof.PollCorrupt
}

// CorruptValue mangles a telemetry value the way malformed reports do in
// practice: NaN, a sign flip, or a wild scale. salt separates the fields
// of one report so they are not all mangled the same way.
func (inj *Injector) CorruptValue(v float64, ap, salt int, at sim.Time) float64 {
	if inj == nil {
		return v
	}
	switch mix(inj.prof.Seed, ap, kindCorrupt, salt, 0, at) % 3 {
	case 0:
		return math.NaN()
	case 1:
		return -v - 1
	default:
		return v * 1e6
	}
}

// FailPush reports whether one push attempt to an AP fails. salt carries
// the band so simultaneous pushes of a multi-band plan fail independently.
func (inj *Injector) FailPush(ap, salt int, at sim.Time, attempt int) bool {
	if inj == nil || inj.prof.PushFail <= 0 {
		return false
	}
	return inj.uniform(ap, kindPushFail, salt, attempt, at) < inj.prof.PushFail
}

// ReorderDelay reports whether the delivery keyed (id, salt) is held back
// behind later traffic, and for how long. Like every primitive here the
// draw is a pure hash of the coordinates, so the answer does not depend
// on how many other questions were asked first.
func (inj *Injector) ReorderDelay(id, salt int, at sim.Time) (sim.Time, bool) {
	if inj == nil || inj.prof.Reorder <= 0 {
		return 0, false
	}
	if inj.uniform(id, kindReorder, salt, 0, at) >= inj.prof.Reorder {
		return 0, false
	}
	d := sim.Time(inj.uniform(id, kindReorderAmount, salt, 0, at) * float64(inj.prof.ReorderMax))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d, true
}

// Duplicate reports whether the delivery keyed (id, salt) arrives twice.
func (inj *Injector) Duplicate(id, salt int, at sim.Time) bool {
	if inj == nil || inj.prof.Duplicate <= 0 {
		return false
	}
	return inj.uniform(id, kindDuplicate, salt, 0, at) < inj.prof.Duplicate
}

// Jitter returns a deterministic fraction in [0, 1) for retry backoff, so
// retries de-synchronize without a shared RNG.
func (inj *Injector) Jitter(ap, salt, attempt int, at sim.Time) float64 {
	if inj == nil {
		return 0
	}
	return inj.uniform(ap, kindJitter, salt, attempt, at)
}
