package faults

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNilInjectorIsFaultFree(t *testing.T) {
	var inj *Injector = New(nil)
	if inj.Active() {
		t.Fatal("nil injector active")
	}
	if inj.Offline(1, sim.Hour) || inj.DropPoll(1, sim.Hour) || inj.CorruptPoll(1, sim.Hour) {
		t.Fatal("nil injector injected a fault")
	}
	if _, ok := inj.DelayPoll(1, sim.Hour); ok {
		t.Fatal("nil injector delayed a poll")
	}
	if inj.FailPush(1, 0, sim.Hour, 0) {
		t.Fatal("nil injector failed a push")
	}
	if inj.Jitter(1, 0, 0, sim.Hour) != 0 {
		t.Fatal("nil injector jittered")
	}
	if v := inj.CorruptValue(3.5, 1, 0, sim.Hour); v != 3.5 {
		t.Fatalf("nil injector corrupted value: %v", v)
	}
}

func TestDecisionsAreDeterministicAndOrderFree(t *testing.T) {
	a := New(DefaultChaos(7))
	b := New(DefaultChaos(7))
	// Ask b the same questions in reverse order: answers must match a's.
	type q struct {
		ap int
		at sim.Time
	}
	var qs []q
	for ap := 0; ap < 50; ap++ {
		for k := 0; k < 20; k++ {
			qs = append(qs, q{ap, sim.Time(k) * 5 * sim.Minute})
		}
	}
	want := make([]bool, len(qs))
	for i, x := range qs {
		want[i] = a.DropPoll(x.ap, x.at)
	}
	for i := len(qs) - 1; i >= 0; i-- {
		if got := b.DropPoll(qs[i].ap, qs[i].at); got != want[i] {
			t.Fatalf("order-dependent decision at %d", i)
		}
	}
}

func TestRatesApproximateProfile(t *testing.T) {
	inj := New(&Profile{Seed: 3, PollLoss: 0.2, PushFail: 0.1})
	n, drops, fails := 0, 0, 0
	for ap := 0; ap < 100; ap++ {
		for k := 0; k < 200; k++ {
			at := sim.Time(k) * 5 * sim.Minute
			n++
			if inj.DropPoll(ap, at) {
				drops++
			}
			if inj.FailPush(ap, 0, at, 0) {
				fails++
			}
		}
	}
	if f := float64(drops) / float64(n); f < 0.18 || f > 0.22 {
		t.Fatalf("poll loss rate %f, want ~0.20", f)
	}
	if f := float64(fails) / float64(n); f < 0.08 || f > 0.12 {
		t.Fatalf("push fail rate %f, want ~0.10", f)
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(DefaultChaos(1)), New(DefaultChaos(2))
	same, n := 0, 0
	for ap := 0; ap < 40; ap++ {
		for k := 0; k < 50; k++ {
			at := sim.Time(k) * 5 * sim.Minute
			n++
			if a.DropPoll(ap, at) == b.DropPoll(ap, at) {
				same++
			}
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestOfflineWindows(t *testing.T) {
	inj := New(&Profile{Seed: 1, Offline: []Window{
		{APID: 4, From: sim.Hour, To: 2 * sim.Hour},
		{APID: 4, From: 5 * sim.Hour, To: 6 * sim.Hour},
	}})
	cases := []struct {
		at   sim.Time
		want bool
	}{
		{0, false},
		{sim.Hour, true},
		{2*sim.Hour - 1, true},
		{2 * sim.Hour, false},
		{5*sim.Hour + sim.Minute, true},
		{7 * sim.Hour, false},
	}
	for _, c := range cases {
		if got := inj.Offline(4, c.at); got != c.want {
			t.Fatalf("Offline(4, %v) = %v, want %v", c.at, got, c.want)
		}
	}
	if inj.Offline(5, sim.Hour+sim.Minute) {
		t.Fatal("window leaked onto another AP")
	}
}

func TestDelayBoundedAndCorruptionShapes(t *testing.T) {
	inj := New(&Profile{Seed: 9, PollDelay: 1, PollDelayMax: 10 * sim.Minute, PollCorrupt: 1})
	sawNaN, sawNeg, sawScale := false, false, false
	for ap := 0; ap < 60; ap++ {
		at := sim.Time(ap) * sim.Minute
		d, ok := inj.DelayPoll(ap, at)
		if !ok {
			t.Fatalf("PollDelay=1 did not delay ap %d", ap)
		}
		if d <= 0 || d > 10*sim.Minute {
			t.Fatalf("delay %v out of (0, 10m]", d)
		}
		v := inj.CorruptValue(5, ap, 0, at)
		switch {
		case math.IsNaN(v):
			sawNaN = true
		case v < 0:
			sawNeg = true
		case v > 1e5:
			sawScale = true
		}
	}
	if !sawNaN || !sawNeg || !sawScale {
		t.Fatalf("corruption shapes missing: nan=%v neg=%v scale=%v", sawNaN, sawNeg, sawScale)
	}
}
