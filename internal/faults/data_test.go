package faults

import (
	"testing"

	"repro/internal/sim"
)

func TestNilDataInjectorIsFaultFree(t *testing.T) {
	var dj *DataInjector = NewData(nil)
	if dj.Active() {
		t.Fatal("nil data injector active")
	}
	if dj.SegmentArrival(1, 1000) != 0 {
		t.Fatal("nil data injector counted an arrival")
	}
	if dj.DropSegment(1, 1000, 0) || dj.DuplicateSegment(1, 1000, 0) ||
		dj.CorruptSegment(1, 1000, 0) || dj.DropBAFeedback(1, sim.Second) ||
		dj.Disconnected(1, sim.Second) {
		t.Fatal("nil data injector injected a fault")
	}
	if _, ok := dj.ReorderSegment(1, 1000, 0); ok {
		t.Fatal("nil data injector reordered a segment")
	}
	if dj.Roams() != nil {
		t.Fatal("nil data injector scheduled roams")
	}
}

// TestReorderDuplicatePrimitives covers the shared Injector primitives the
// data profile is built on, with the same chaos-profile test discipline as
// the control-plane faults: bounded reorder delays and rates near the
// configured probabilities.
func TestReorderDuplicatePrimitives(t *testing.T) {
	inj := New(&Profile{Seed: 11, Reorder: 0.2, ReorderMax: 2 * sim.Millisecond, Duplicate: 0.1})
	n, reorders, dups := 0, 0, 0
	for id := 0; id < 100; id++ {
		for k := 0; k < 200; k++ {
			at := sim.Time(k) * sim.Millisecond
			n++
			if d, ok := inj.ReorderDelay(id, k, at); ok {
				reorders++
				if d <= 0 || d > 2*sim.Millisecond {
					t.Fatalf("reorder delay %v out of (0, 2ms]", d)
				}
			}
			if inj.Duplicate(id, k, at) {
				dups++
			}
		}
	}
	if f := float64(reorders) / float64(n); f < 0.18 || f > 0.22 {
		t.Fatalf("reorder rate %f, want ~0.20", f)
	}
	if f := float64(dups) / float64(n); f < 0.08 || f > 0.12 {
		t.Fatalf("duplicate rate %f, want ~0.10", f)
	}
}

func TestDataDecisionsAreDeterministicAndOrderFree(t *testing.T) {
	a := NewData(DataChaos(7))
	b := NewData(DataChaos(7))
	type q struct {
		client  int
		seq     uint32
		attempt int
		at      sim.Time
	}
	var qs []q
	for c := 0; c < 20; c++ {
		for k := 0; k < 50; k++ {
			qs = append(qs, q{c, uint32(1000 + k*1448), k % 3, sim.Time(k) * sim.Millisecond})
		}
	}
	type ans struct {
		drop, dup, corrupt, ba bool
		rdelay                 sim.Time
		rok                    bool
	}
	want := make([]ans, len(qs))
	for i, x := range qs {
		want[i].drop = a.DropSegment(x.client, x.seq, x.attempt)
		want[i].dup = a.DuplicateSegment(x.client, x.seq, x.attempt)
		want[i].corrupt = a.CorruptSegment(x.client, x.seq, x.attempt)
		want[i].ba = a.DropBAFeedback(x.client, x.at)
		want[i].rdelay, want[i].rok = a.ReorderSegment(x.client, x.seq, x.attempt)
	}
	// Ask b the same questions in reverse order: answers must match a's.
	for i := len(qs) - 1; i >= 0; i-- {
		x := qs[i]
		got := ans{
			drop:    b.DropSegment(x.client, x.seq, x.attempt),
			dup:     b.DuplicateSegment(x.client, x.seq, x.attempt),
			corrupt: b.CorruptSegment(x.client, x.seq, x.attempt),
			ba:      b.DropBAFeedback(x.client, x.at),
		}
		got.rdelay, got.rok = b.ReorderSegment(x.client, x.seq, x.attempt)
		if got != want[i] {
			t.Fatalf("order-dependent data decision at %d", i)
		}
	}
}

func TestDataRatesApproximateProfile(t *testing.T) {
	dj := NewData(DataChaos(3))
	n, drops, dups, corrupts := 0, 0, 0, 0
	for c := 0; c < 50; c++ {
		for k := 0; k < 400; k++ {
			seq := uint32(1000 + k*1448)
			att := dj.SegmentArrival(c, seq)
			n++
			if dj.DropSegment(c, seq, att) {
				drops++
			}
			if dj.DuplicateSegment(c, seq, att) {
				dups++
			}
			if dj.CorruptSegment(c, seq, att) {
				corrupts++
			}
		}
	}
	if f := float64(drops) / float64(n); f < 0.015 || f > 0.025 {
		t.Fatalf("wire loss rate %f, want ~0.02", f)
	}
	if f := float64(dups) / float64(n); f < 0.007 || f > 0.013 {
		t.Fatalf("wire dup rate %f, want ~0.01", f)
	}
	if f := float64(corrupts) / float64(n); f < 0.003 || f > 0.008 {
		t.Fatalf("wire corrupt rate %f, want ~0.005", f)
	}
}

// TestBAFeedbackLossIsBursty checks block-ACK loss is decided per
// BALossWindow, not per event: within one window every probe agrees, and
// across many windows roughly BALoss of them are dark.
func TestBAFeedbackLossIsBursty(t *testing.T) {
	dj := NewData(DataChaos(5))
	const windows = 2000
	dark := 0
	for w := 0; w < windows; w++ {
		base := sim.Time(w) * 50 * sim.Millisecond
		first := dj.DropBAFeedback(3, base)
		for off := sim.Time(0); off < 50*sim.Millisecond; off += 10 * sim.Millisecond {
			if dj.DropBAFeedback(3, base+off) != first {
				t.Fatalf("window %d not uniform at offset %v", w, off)
			}
		}
		if first {
			dark++
		}
	}
	if f := float64(dark) / windows; f < 0.03 || f > 0.07 {
		t.Fatalf("dark window rate %f, want ~0.05", f)
	}
}

func TestDataSeedsDecorrelate(t *testing.T) {
	a, b := NewData(DataChaos(1)), NewData(DataChaos(2))
	same, n := 0, 0
	for c := 0; c < 20; c++ {
		for k := 0; k < 100; k++ {
			at := sim.Time(k) * sim.Millisecond
			seq := uint32(k * 1448)
			n++
			if a.DropSegment(c, seq, 0) == b.DropSegment(c, seq, 0) &&
				a.DropBAFeedback(c, at) == b.DropBAFeedback(c, at) {
				same++
			}
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical data fault sequences")
	}
}

func TestDisconnectWindowsAndRoams(t *testing.T) {
	dj := NewData(&DataProfile{
		Seed: 1,
		Disconnects: []Window{
			{APID: 2, From: sim.Second, To: 2 * sim.Second},
		},
		Roams: []Roam{{Client: 4, ToAP: 1, At: 3 * sim.Second}},
	})
	if dj.Disconnected(2, sim.Second-1) || !dj.Disconnected(2, sim.Second) ||
		!dj.Disconnected(2, 2*sim.Second-1) || dj.Disconnected(2, 2*sim.Second) {
		t.Fatal("disconnect window boundaries wrong")
	}
	if dj.Disconnected(3, sim.Second) {
		t.Fatal("disconnect window leaked onto another client")
	}
	roams := dj.Roams()
	if len(roams) != 1 || roams[0] != (Roam{Client: 4, ToAP: 1, At: 3 * sim.Second}) {
		t.Fatalf("roams = %+v", roams)
	}
}

// TestCorruptU32IsDeterministic pins the corruption garbage to the seed so
// corrupted headers replay identically.
func TestCorruptU32IsDeterministic(t *testing.T) {
	a, b := NewData(DataChaos(9)), NewData(DataChaos(9))
	saw := map[uint32]bool{}
	for salt := 0; salt < 8; salt++ {
		x := a.CorruptU32(1, 5000, salt, 0)
		if y := b.CorruptU32(1, 5000, salt, 0); x != y {
			t.Fatalf("corrupt value not deterministic at salt %d", salt)
		}
		saw[x] = true
	}
	if len(saw) < 2 {
		t.Fatal("corruption salt does not separate fields")
	}
}

// TestSegmentArrivalCountsAttempts pins the attempt coordinate: arrivals of
// one (client, seq) count up, keys are independent, and a segment dropped
// on attempt 0 is not doomed on every retry — the per-attempt draws
// decorrelate, so recovery traffic eventually gets through.
func TestSegmentArrivalCountsAttempts(t *testing.T) {
	dj := NewData(DataChaos(13))
	for want := 0; want < 3; want++ {
		if got := dj.SegmentArrival(2, 9000); got != want {
			t.Fatalf("arrival %d of (2, 9000) numbered %d", want, got)
		}
	}
	if got := dj.SegmentArrival(2, 9001); got != 0 {
		t.Fatalf("fresh key started at attempt %d", got)
	}
	if got := dj.SegmentArrival(3, 9000); got != 0 {
		t.Fatalf("fresh client started at attempt %d", got)
	}

	hard := NewData(&DataProfile{Seed: 13, WireLoss: 0.5})
	varies := 0
	for c := 0; c < 50; c++ {
		first := hard.DropSegment(c, 1000, 0)
		for att := 1; att < 4; att++ {
			if hard.DropSegment(c, 1000, att) != first {
				varies++
				break
			}
		}
	}
	if varies == 0 {
		t.Fatal("attempt index never changed a drop decision")
	}
}
