package faults

import (
	"testing"

	"repro/internal/sim"
)

func TestProcNilInjectorIsFaultFree(t *testing.T) {
	var inj *ProcInjector
	if inj.Active() {
		t.Fatal("nil injector reports Active")
	}
	if got := inj.KillAfterWrites(0); got != -1 {
		t.Fatalf("nil KillAfterWrites = %d, want -1", got)
	}
	if _, ok := inj.TornTailFrac(0); ok {
		t.Fatal("nil injector tears tails")
	}
	if inj.FailCheckpoint(sim.Hour) || inj.PanicPass(1, sim.Hour, 0) || inj.StuckPass(1, sim.Hour, 0) {
		t.Fatal("nil injector injects faults")
	}
	if NewProc(nil) != nil {
		t.Fatal("NewProc(nil) != nil")
	}
}

// Kill instants are per process instance: bounded by KillSpan, exhausted
// after Kills instances, and identical across independently built
// injectors at the same seed.
func TestProcKillInstantsDeterministic(t *testing.T) {
	prof := &ProcProfile{Seed: 42, Kills: 3, KillSpan: 10}
	a, b := NewProc(prof), NewProc(prof)
	for inst := 0; inst < 3; inst++ {
		ka, kb := a.KillAfterWrites(inst), b.KillAfterWrites(inst)
		if ka != kb {
			t.Fatalf("instance %d: kill points differ: %d vs %d", inst, ka, kb)
		}
		if ka < 1 || ka > 10 {
			t.Fatalf("instance %d: kill point %d outside [1, KillSpan]", inst, ka)
		}
	}
	if got := a.KillAfterWrites(3); got != -1 {
		t.Fatalf("instance beyond Kills got kill point %d, want -1", got)
	}
	// Different seeds move the instants (with overwhelming probability
	// over 16 instances).
	c := NewProc(&ProcProfile{Seed: 43, Kills: 16, KillSpan: 1 << 20})
	d := NewProc(&ProcProfile{Seed: 44, Kills: 16, KillSpan: 1 << 20})
	same := 0
	for inst := 0; inst < 16; inst++ {
		if c.KillAfterWrites(inst) == d.KillAfterWrites(inst) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("seeds 43 and 44 produce identical kill schedules")
	}
}

func TestProcTornTailFrac(t *testing.T) {
	inj := NewProc(&ProcProfile{Seed: 7, TornTail: 1.0})
	for inst := 0; inst < 32; inst++ {
		f, ok := inj.TornTailFrac(inst)
		if !ok {
			t.Fatalf("instance %d: TornTail=1.0 did not tear", inst)
		}
		if f <= 0 || f >= 1 {
			t.Fatalf("instance %d: torn fraction %v outside (0,1)", inst, f)
		}
	}
	if _, ok := NewProc(&ProcProfile{Seed: 7}).TornTailFrac(0); ok {
		t.Fatal("TornTail=0 tore a tail")
	}
}

// Checkpoint failures are keyed by the attempt's fleet clock alone, so a
// replayed controller and its uncrashed twin agree attempt by attempt.
func TestProcCheckpointFailClockKeyed(t *testing.T) {
	inj := NewProc(&ProcProfile{Seed: 11, CheckpointFail: 0.5})
	fails, n := 0, 200
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Hour
		if inj.FailCheckpoint(at) != inj.FailCheckpoint(at) {
			t.Fatal("FailCheckpoint not a pure function of the clock")
		}
		if inj.FailCheckpoint(at) {
			fails++
		}
	}
	if fails < n/4 || fails > 3*n/4 {
		t.Fatalf("fail rate %d/%d far from configured 0.5", fails, n)
	}
}

// Pass panics and wedges are keyed by (network, clock, level): moving any
// coordinate re-draws the decision, and the streams for panic and stuck
// are disjoint.
func TestProcPassFaultCoordinates(t *testing.T) {
	inj := NewProc(&ProcProfile{Seed: 13, PanicPass: 0.5, StuckPass: 0.5})
	var hits [2]int
	n := 300
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Minute
		if inj.PanicPass(5, at, 0) {
			hits[0]++
		}
		if inj.StuckPass(5, at, 0) {
			hits[1]++
		}
	}
	for k, h := range hits {
		if h < n/4 || h > 3*n/4 {
			t.Fatalf("stream %d rate %d/%d far from 0.5", k, h, n)
		}
	}
	agree := 0
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Minute
		if inj.PanicPass(5, at, 0) == inj.StuckPass(5, at, 0) {
			agree++
		}
	}
	if agree == n {
		t.Fatal("panic and stuck streams are identical")
	}
}
