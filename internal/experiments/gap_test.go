package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/oracle"
)

// TestGapCampaign is the `make gap` entry point: across every scenario
// family at 6/9/12 APs it asserts the acceptance contract — NBO always
// sits within the oracle's certified bound, exhausted-budget runs say so
// via Proven=false while still returning an incumbent and a bound, and
// proven runs dominate both heuristics.
func TestGapCampaign(t *testing.T) {
	const tol = 1e-6
	opt := Options{Seed: 1}
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for _, kind := range oracle.Kinds {
		for _, n := range []int{6, 9, 12} {
			for seed := 0; seed < seeds; seed++ {
				base := int64(n)*1_000_003 + opt.Seed*7919 + int64(seed)
				cfg, in := oracle.Scenario(kind, n, rand.New(rand.NewSource(base)))
				g := oracle.Gap(cfg, in, oracle.GapOptions{Seed: base + 1, Solve: opt.gapBudget()})

				if g.NBOLogNetP > g.Bound+tol {
					t.Errorf("%s n=%d seed %d: NBO %f outside certified bound %f",
						kind, n, seed, g.NBOLogNetP, g.Bound)
				}
				if g.Bound < g.OracleLogNetP-tol {
					t.Errorf("%s n=%d seed %d: bound %f below incumbent %f",
						kind, n, seed, g.Bound, g.OracleLogNetP)
				}
				if g.Proven {
					if g.Gap < -tol {
						t.Errorf("%s n=%d seed %d: NBO beats proven optimum by %f", kind, n, seed, -g.Gap)
					}
					if g.ReservedLogNetP > g.OracleLogNetP+tol {
						t.Errorf("%s n=%d seed %d: ReservedCA %f beats proven optimum %f",
							kind, n, seed, g.ReservedLogNetP, g.OracleLogNetP)
					}
				}
			}
		}
	}

	rep := OptimalityGap(Options{Seed: 1, Quick: true})
	if len(rep.Rows) < len(oracle.Kinds)*3+2 {
		t.Errorf("campaign report has %d rows, want at least %d", len(rep.Rows), len(oracle.Kinds)*3+2)
	}
}
