package experiments

import (
	"strings"
	"testing"

	"repro/internal/fleet"
)

// The full experiment suite is exercised by cmd/experiments and the root
// benchmarks; these tests cover the cheap experiments and the renderers.

func TestFleetExperiments(t *testing.T) {
	fl := fleet.Generate(fleet.Options{Seed: 7, Networks: 120})
	for _, r := range []Report{Fig1(Options{Seed: 7}), Fig2(fl), Fig3(fl), Fig5(fl), Table1(fl)} {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("incomplete report: %+v", r)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s has no rows", r.ID)
		}
		for _, row := range r.Rows {
			if row.Metric == "" || row.Measured == "" {
				t.Fatalf("%s has an empty row: %+v", r.ID, row)
			}
		}
	}
}

func TestFig4Ordering(t *testing.T) {
	r := Fig4(Options{Seed: 9, Quick: true})
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	// The measured string embeds the ordering claim; it must at least
	// mention all four categories.
	for _, ac := range []string{"VO", "VI", "BE", "BK"} {
		if !strings.Contains(r.Rows[0].Measured, ac) {
			t.Fatalf("latency row missing %s: %q", ac, r.Rows[0].Measured)
		}
	}
}

func TestRenderers(t *testing.T) {
	reports := []Report{
		{ID: "Fig X", Title: "Test", Rows: []Row{{"m", "p", "v"}}, Notes: "n"},
	}
	md := Markdown(reports)
	if !strings.Contains(md, "## Fig X") || !strings.Contains(md, "| m | p | v |") {
		t.Fatalf("markdown: %q", md)
	}
	txt := Text(reports)
	if !strings.Contains(txt, "=== Fig X") || !strings.Contains(txt, "note: n") {
		t.Fatalf("text: %q", txt)
	}
}

func TestFig6And7(t *testing.T) {
	opt := Options{Seed: 3, Quick: true}
	if r := Fig6(opt); len(r.Rows) != 2 {
		t.Fatalf("Fig6: %+v", r)
	}
	if r := Fig7(opt); len(r.Rows) != 2 {
		t.Fatalf("Fig7: %+v", r)
	}
}
