// Package experiments runs every table and figure of the paper's
// evaluation against this repository's implementations and renders a
// paper-vs-measured report (the content of EXPERIMENTS.md). Each
// experiment is independent and returns rows of (metric, paper value,
// measured value) so callers can render text or markdown.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/littletable"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Row is one reported metric.
type Row struct {
	Metric   string
	Paper    string
	Measured string
}

// Report is one experiment's outcome.
type Report struct {
	ID    string // e.g. "Fig 16"
	Title string
	Rows  []Row
	Notes string
}

// Options scales the run time.
type Options struct {
	Seed int64
	// Quick shrinks simulated durations (CI mode).
	Quick bool
}

// testbedDur returns the per-run simulated duration.
func (o Options) testbedDur() sim.Time {
	if o.Quick {
		return 6 * sim.Second
	}
	return 12 * sim.Second
}

func (o Options) abDays() int {
	if o.Quick {
		return 2
	}
	return 3
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pc(v float64) string { return fmt.Sprintf("%.1f%%", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// All runs every experiment in order, ending with a dump of the metrics
// the run itself generated (planner, backend, fastack, littletable
// scopes on the default obs registry).
func All(opt Options) []Report {
	metricsBefore := obs.Default().Snapshot()
	fl := fleet.Generate(fleet.Options{Seed: opt.Seed, Networks: 800})
	out := []Report{
		Fig1(opt),
		Fig2(fl),
		Fig3(fl),
		Fig4(opt),
		Fig5(fl),
		Table1(fl),
		Fig6(opt),
		Fig7(opt),
	}
	out = append(out, TurboCAExperiments(opt)...)
	out = append(out, DenseScenarios(opt))
	out = append(out, FastACKExperiments(opt)...)
	out = append(out, OptimalityGap(opt))
	out = append(out, MetricsReport(obs.Default().Snapshot().Delta(metricsBefore)))
	return out
}

// Fig1 reruns the client-capability study.
func Fig1(opt Options) Report {
	const n = 200000
	c15 := fleet.CapabilityReport(fleet.Cohort2015, n, opt.Seed)
	c17 := fleet.CapabilityReport(fleet.Cohort2017, n, opt.Seed+1)
	frac := func(c *stats.Counter, k string) float64 { return 100 * float64(c.Count(k)) / n }
	return Report{
		ID: "Fig 1", Title: "Advertised client capabilities (2015 vs 2017)",
		Rows: []Row{
			{"802.11ac clients", "18% -> 46%", pc(frac(c15, "802.11ac")) + " -> " + pc(frac(c17, "802.11ac"))},
			{"2.4GHz-only clients", "~40% -> ~40%", pc(frac(c15, "2.4GHz-only")) + " -> " + pc(frac(c17, "2.4GHz-only"))},
			{">=2-stream clients", "19% -> 37%", pc(frac(c15, ">=2SS")) + " -> " + pc(frac(c17, ">=2SS"))},
			{">=40MHz-capable", "grew, ~80% by 2017", pc(frac(c15, ">=40MHz")) + " -> " + pc(frac(c17, ">=40MHz"))},
		},
	}
}

// Fig2 reruns the utilization CDF.
func Fig2(fl *fleet.Fleet) Report {
	u24 := fl.UtilizationCDF(spectrum.Band2G4, 10)
	u5 := fl.UtilizationCDF(spectrum.Band5, 10)
	return Report{
		ID: "Fig 2", Title: "Channel utilization CDF, networks with >=10 APs",
		Rows: []Row{
			{"2.4 GHz median", "20%", pc(100 * u24.Median())},
			{"5 GHz median", "3%", pc(100 * u5.Median())},
			{"2.4 GHz p90", "high (dense tail)", pc(100 * u24.Percentile(90))},
		},
		Notes: "HQ-class dense offices run far hotter (82%/23% medians); see examples/office.",
	}
}

// Fig3 reruns the interferer-count CDF.
func Fig3(fl *fleet.Fleet) Report {
	i24 := fl.InterfererCDF(spectrum.Band2G4, 10)
	i5 := fl.InterfererCDF(spectrum.Band5, 10)
	return Report{
		ID: "Fig 3", Title: "Same-channel interfering APs",
		Rows: []Row{
			{"2.4 GHz median", "7", f1(i24.Median())},
			{"2.4 GHz p90", "29", f1(i24.Percentile(90))},
			{"5 GHz median", "5", f1(i5.Median())},
			{"5 GHz p90", "14", f1(i5.Percentile(90))},
		},
	}
}

// RunACStudy executes the Fig 4 experiment — one AP, eight stations
// spanning good-to-marginal links with fades and an interferer, all four
// access categories offered simultaneously — returning per-AC mean
// 802.11 latency (ms) and post-retry loss (percent).
func RunACStudy(opt Options) (latMs, lossPc map[phy.AccessCategory]float64) {
	engine := sim.NewEngine(opt.Seed)
	md := mac.NewMedium(engine, 26)
	ap := md.AddStation(mac.StationConfig{Name: "ap", NSS: 2, Width: spectrum.W40, GI: phy.SGI, IsAP: true})
	var clients []*mac.Station
	for i := 0; i < 8; i++ {
		c := md.AddStation(mac.StationConfig{Name: "c", NSS: 2, Width: spectrum.W40, GI: phy.SGI})
		c.OnReceive = func(*mac.MPDU, sim.Time) {}
		md.SetSNR(ap.ID, c.ID, 6+float64(i)*2.2) // far clients sit near the rate floor
		clients = append(clients, c)
	}
	md.AddInterferer(20*sim.Millisecond, 0.25)

	// Channel dynamics: deep fades push links into retry exhaustion, the
	// §3.2.4 loss mechanism. Lower-priority categories exhaust their
	// (smaller) retry budgets first.
	fadeRng := rand.New(rand.NewSource(opt.Seed + 99))
	fadeLeft := make([]int, len(clients))
	engine.Ticker(100*sim.Millisecond, func(e *sim.Engine) {
		for i, c := range clients {
			base := 6 + float64(i)*2.2
			if fadeLeft[i] > 0 {
				fadeLeft[i]--
				md.SetSNR(ap.ID, c.ID, base-16)
				continue
			}
			if fadeRng.Float64() < 0.02 {
				fadeLeft[i] = 2 + fadeRng.Intn(4)
			}
			md.SetSNR(ap.ID, c.ID, base)
		}
	})

	lat := map[phy.AccessCategory]*stats.Sample{}
	sent := map[phy.AccessCategory]int{}
	lost := map[phy.AccessCategory]int{}
	for _, ac := range []phy.AccessCategory{phy.ACBK, phy.ACBE, phy.ACVI, phy.ACVO} {
		lat[ac] = stats.NewSample(1024)
	}
	ap.OnDelivered = func(m *mac.MPDU, ok bool, now sim.Time) {
		if ok {
			lat[m.AC].Add((now - m.EnqueuedAt).Millis())
		} else {
			lost[m.AC]++
		}
	}
	mix := []struct {
		ac    phy.AccessCategory
		perMs float64
		size  int
	}{{phy.ACBE, 1.2, 1400}, {phy.ACBK, 0.4, 1400}, {phy.ACVI, 0.15, 1200}, {phy.ACVO, 0.15, 240}}
	srv := packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 9}
	engine.Ticker(sim.Millisecond, func(e *sim.Engine) {
		for _, mx := range mix {
			n := int(mx.perMs)
			if e.Rand().Float64() < mx.perMs-float64(n) {
				n++
			}
			for j := 0; j < n; j++ {
				c := clients[e.Rand().Intn(len(clients))]
				dst := packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000200 + uint32(c.ID)), Port: 80}
				if ap.Enqueue(packet.NewUDPDatagram(srv, dst, mx.size), c.ID, mx.ac) {
					sent[mx.ac]++
				}
			}
		}
	})
	dur := 25 * sim.Second
	if opt.Quick {
		dur = 8 * sim.Second
	}
	engine.RunUntil(dur)

	latMs = map[phy.AccessCategory]float64{}
	lossPc = map[phy.AccessCategory]float64{}
	for ac, smp := range lat {
		latMs[ac] = smp.Mean()
		if sent[ac] > 0 {
			lossPc[ac] = 100 * float64(lost[ac]) / float64(sent[ac])
		}
	}
	return latMs, lossPc
}

// Fig4 runs the access-category latency/loss study on the MAC simulator.
func Fig4(opt Options) Report {
	latMs, lossPc := RunACStudy(opt)
	return Report{
		ID: "Fig 4", Title: "Latency and loss by access category",
		Rows: []Row{
			{"latency ordering", "VO < VI < BE < BK", fmt.Sprintf("VO %.1f < VI %.1f < BE %.1f <= BK %.1f ms",
				latMs[phy.ACVO], latMs[phy.ACVI], latMs[phy.ACBE], latMs[phy.ACBK])},
			{"BK loss", "5.0%", pc(lossPc[phy.ACBK])},
			{"BE loss", "2.7%", pc(lossPc[phy.ACBE])},
			{"VI loss", "0.2%", pc(lossPc[phy.ACVI])},
			{"VO loss", "0.9%", pc(lossPc[phy.ACVO])},
		},
	}
}

// Fig5 reruns the bit-rate distribution.
func Fig5(fl *fleet.Fleet) Report {
	s := fl.BitrateDistribution(100000)
	h := stats.NewHistogram(0, 1024, 8) // 128 Mbps bins
	for _, v := range s.Values() {
		h.Add(v)
	}
	bulk := 0.0
	for i, f := range h.PDF() {
		lo := h.Lo + float64(i)*h.BinWidth()
		if lo >= 256 && lo < 512 {
			bulk += f
		}
	}
	return Report{
		ID: "Fig 5", Title: "5 GHz bit-rate distribution",
		Rows: []Row{
			{"bulk in 256-512 Mbps", "most rates", pc(100 * bulk)},
			{"median rate", "(in the bulk)", f1(s.Median()) + " Mbps"},
			{"p90 rate", "-", f1(s.Percentile(90)) + " Mbps"},
		},
	}
}

// Table1 reruns the channel-width configuration mixture.
func Table1(fl *fleet.Fleet) Report {
	all, large := fl.WidthTable()
	row := func(w string, pAll, pLarge string) Row {
		return Row{w, pAll + " / " + pLarge,
			pc(100*all.Fraction(w)) + " / " + pc(100*large.Fraction(w))}
	}
	return Report{
		ID: "Table 1", Title: "Configured channel width (all APs / >10-AP networks)",
		Rows: []Row{
			row("20MHz", "14.9%", "17.3%"),
			row("40MHz", "19.1%", "19.4%"),
			row("80MHz", "66.0%", "63.3%"),
		},
	}
}

// Fig6 reruns one AP's day in a dense office.
func Fig6(opt Options) Report {
	sc := topo.Office(opt.Seed)
	engine := sim.NewEngine(opt.Seed)
	be := backend.New(backend.DefaultOptions(backend.AlgNone), sc, engine)
	be.Start()
	engine.RunUntil(sim.Day)
	key := sc.APs[0].Name
	served := be.DB.Table("usage").FieldRange(key, "served", 0, sim.Day)
	s := stats.NewSample(len(served))
	for _, p := range served {
		s.Add(p.V)
	}
	avg := func(ps []littletable.Point) float64 {
		if len(ps) == 0 {
			return 0
		}
		t := 0.0
		for _, p := range ps {
			t += p.V
		}
		return t / float64(len(ps))
	}
	burst := avg(be.DB.Table("usage").FieldRange(key, "served", 13*sim.Hour+30*sim.Minute, 14*sim.Hour+30*sim.Minute))
	lunch := avg(be.DB.Table("usage").FieldRange(key, "served", 12*sim.Hour, 13*sim.Hour))
	return Report{
		ID: "Fig 6", Title: "One office AP over a day (usage/utilization vs client count)",
		Rows: []Row{
			{"peak/mean served ratio", "bursty (>2x)", f2(s.Max() / (s.Mean() + 1e-9))},
			{"2pm burst vs lunch", "sudden ~30-min burst", f1(burst) + " vs " + f1(lunch) + " Mbps"},
		},
		Notes: "examples/office prints the full hour-by-hour trace.",
	}
}

// Fig7 shows RSSI's insensitivity to load.
func Fig7(opt Options) Report {
	sc := topo.Museum(opt.Seed)
	m := backend.NewModel(sc, opt.Seed)
	engine := sim.NewEngine(opt.Seed)
	peak, off := stats.NewSample(8000), stats.NewSample(8000)
	for i := 0; i < 8000; i++ {
		peak.Add(m.SampleRSSI(engine.Rand()))
		off.Add(m.SampleRSSI(engine.Rand()))
	}
	peakUse := sc.DemandAt(sc.APs[0], 13*sim.Hour)
	offUse := sc.DemandAt(sc.APs[0], 8*sim.Hour)
	return Report{
		ID: "Fig 7", Title: "RSSI PDF at peak vs non-peak (MNet)",
		Rows: []Row{
			{"median RSSI peak vs off", "similar distributions", f1(peak.Median()) + " vs " + f1(off.Median()) + " dBm"},
			{"usage peak vs off", "25 GB vs 12 GB (2x)", fmt.Sprintf("%.1fx", peakUse/offUse)},
		},
	}
}

// TurboCAExperiments runs the Table 2 / Fig 8 / Fig 9 A/B on both
// deployments.
func TurboCAExperiments(opt Options) []Report {
	days := opt.abDays()
	type ab struct {
		daily, peak []float64
		lat, eff    *stats.Sample
		switches    int
	}
	runOne := func(build func(int64) *topo.Scenario) map[backend.Algorithm]ab {
		out := map[backend.Algorithm]ab{}
		for _, alg := range []backend.Algorithm{backend.AlgReservedCA, backend.AlgTurboCA} {
			sc := build(opt.Seed)
			engine := sim.NewEngine(1)
			be := backend.New(backend.DefaultOptions(alg), sc, engine)
			be.Start()
			end := sim.Time(days) * sim.Day
			engine.RunUntil(end)
			usage := be.DB.Table("usage")
			var r ab
			for day := 1; day < days; day++ {
				from := sim.Time(day) * sim.Day
				r.daily = append(r.daily, usage.SumField("bytes", from, from+sim.Day)/1e12)
				best := 0.0
				for h := sim.Time(0); h < sim.Day; h += sim.Hour {
					if v := usage.SumField("bytes", from+h, from+h+sim.Hour) / 1e12; v > best {
						best = v
					}
				}
				r.peak = append(r.peak, best)
			}
			r.lat = be.DB.Table("tcp_latency").AggregateField("ms", sim.Day, end)
			r.eff = be.DB.Table("bitrate_eff").AggregateField("eff", sim.Day, end)
			r.switches = be.Switches()
			out[alg] = r
		}
		return out
	}
	mean := func(xs []float64) float64 {
		s := stats.NewSample(len(xs))
		s.AddAll(xs...)
		return s.Mean()
	}
	std := func(xs []float64) float64 {
		s := stats.NewSample(len(xs))
		s.AddAll(xs...)
		return s.Stddev()
	}

	museum := runOne(topo.Museum)
	campus := runOne(topo.Campus)
	mR, mT := museum[backend.AlgReservedCA], museum[backend.AlgTurboCA]
	cR, cT := campus[backend.AlgReservedCA], campus[backend.AlgTurboCA]

	table2 := Report{
		ID: "Table 2", Title: "Daily and peak-hour usage (TB), ReservedCA vs TurboCA",
		Rows: []Row{
			{"UNet daily (res/turbo)", "11.3 / 10.7 (similar)", f2(mean(cR.daily)) + " / " + f2(mean(cT.daily))},
			{"UNet peak (res/turbo)", "0.584 / 0.542 (uplink-bound)", f3(mean(cR.peak)) + " / " + f3(mean(cT.peak))},
			{"MNet daily (res/turbo)", "0.562 / 0.564 (similar)", f2(mean(mR.daily)) + " / " + f2(mean(mT.daily))},
			{"MNet peak gain", "+27%", pc(100 * (mean(mT.peak) - mean(mR.peak)) / mean(mR.peak))},
			{"daily sigma small", "yes", f2(std(mR.daily)) + " / " + f2(std(mT.daily)) + " TB"},
		},
		Notes: "Absolute TB scale differs from the paper's deployments; the structure (daily parity, uplink-bound campus, museum peak gain) is the reproduced claim.",
	}
	fig8 := Report{
		ID: "Fig 8", Title: "TCP latency CDF at MNet",
		Rows: []Row{
			{"median change", "-40%", pc(100 * (mT.lat.Median() - mR.lat.Median()) / mR.lat.Median())},
			{"median (res/turbo)", "-", f1(mR.lat.Median()) + " / " + f1(mT.lat.Median()) + " ms"},
			{">400ms tail (res/turbo)", "similar (slow clients)", pc(100*(1-mR.lat.CDF(400))) + " / " + pc(100*(1-mT.lat.CDF(400)))},
		},
	}
	fig9 := Report{
		ID: "Fig 9", Title: "Bit-rate efficiency CDF at MNet",
		Rows: []Row{
			{"median gain", "+15%", pc(100 * (mT.eff.Median() - mR.eff.Median()) / mR.eff.Median())},
			{"median (res/turbo)", "-", f3(mR.eff.Median()) + " / " + f3(mT.eff.Median())},
		},
	}
	return []Report{table2, fig8, fig9}
}

// denseDur returns the per-run duration of the dense-scenario A/B.
func (o Options) denseDur() sim.Time {
	if o.Quick {
		return 6 * sim.Hour
	}
	return sim.Day
}

// DenseScenarios extends the Table 2 A/B beyond the paper's deployments
// to ~10× campus AP density (topo.MDU at ~90 m²/AP, topo.Stadium at the
// same density with event-day client loads). The paper's claim — per-AP
// width adaptation beats a fleet-wide reserved width — should *grow*
// with density, because at 90 m²/AP almost no AP can hold 80 MHz
// cleanly; this experiment measures that extrapolation.
func DenseScenarios(opt Options) Report {
	dur := opt.denseDur()
	type res struct {
		servedTB float64
		lnNetP   float64
		w80      float64
	}
	runOne := func(build func(int64) *topo.Scenario, alg backend.Algorithm) res {
		sc := build(opt.Seed)
		engine := sim.NewEngine(1)
		be := backend.New(backend.DefaultOptions(alg), sc, engine)
		be.Start()
		engine.RunUntil(dur)
		var r res
		r.servedTB = be.DB.Table("usage").SumField("bytes", dur/2, dur) / 1e12
		// Score both algorithms' on-air plans through the same NetP lens
		// (ReservedCA backends carry no turboca.Service).
		in := be.PlannerInput(spectrum.Band5)
		plan := map[int]turboca.Assignment{}
		for _, ap := range sc.APs {
			if ap.Channel.Width.Valid() {
				plan[ap.ID] = turboca.Assignment{Channel: ap.Channel}
			}
		}
		r.lnNetP = turboca.NetP(be.Opt.Planner, in, plan)
		n80 := 0
		for _, ap := range sc.APs {
			if ap.Channel.Width >= spectrum.W80 {
				n80++
			}
		}
		r.w80 = 100 * float64(n80) / float64(len(sc.APs))
		return r
	}
	rep := Report{
		ID:    "Dense",
		Title: "10x-density deployments (MDU, Stadium), ReservedCA vs TurboCA",
		Notes: "Extrapolation beyond the paper's sites: at ~90 m²/AP the reserved 80 MHz width self-interferes, so TurboCA's win comes from narrowing, not bonding headroom.",
	}
	for _, s := range []struct {
		name  string
		build func(int64) *topo.Scenario
	}{{"MDU", topo.MDU}, {"Stadium", topo.Stadium}} {
		r := runOne(s.build, backend.AlgReservedCA)
		t := runOne(s.build, backend.AlgTurboCA)
		rep.Rows = append(rep.Rows,
			Row{s.name + " half-day usage (res/turbo)", "n/a (denser than any paper site)",
				f2(r.servedTB) + " / " + f2(t.servedTB) + " TB"},
			Row{s.name + " ln NetP (res/turbo)", "turbo higher (less contention)",
				f1(r.lnNetP) + " / " + f1(t.lnNetP)},
			Row{s.name + " APs at 80MHz (res/turbo)", "turbo narrows under density",
				pc(r.w80) + " / " + pc(t.w80)},
		)
	}
	return rep
}

// FastACKExperiments runs the §5.6 testbed suite.
func FastACKExperiments(opt Options) []Report {
	dur := opt.testbedDur()
	type res struct {
		total, agg, l8, lt float64
		perClient          []float64
		cwnd               []int
	}
	cache := map[string]res{}
	run := func(key string, mode testbed.Mode, clients int, mutate func(*testbed.Options)) res {
		if r, ok := cache[key]; ok {
			return r
		}
		o := testbed.DefaultOptions()
		o.Seed = opt.Seed
		o.APModes = []testbed.Mode{mode}
		o.ClientsPerAP = clients
		o.BadHintRate = 0.015
		if mutate != nil {
			mutate(&o)
		}
		tb := testbed.New(o)
		tb.Run(dur)
		var r res
		r.agg = tb.AggAP[0].Mean()
		r.l8, r.lt = tb.Lat80211.Mean(), tb.LatTCP.Mean()
		for _, c := range tb.Clients {
			g := c.GoodputMbps(dur)
			r.perClient = append(r.perClient, g)
			r.total += g
		}
		for _, snd := range tb.Senders {
			if snd.TCP != nil {
				r.cwnd = append(r.cwnd, snd.TCP.CwndSegments())
			}
		}
		cache[key] = r
		return r
	}

	// Fig 10: latency gap under baseline.
	var gapRows []Row
	for _, n := range []int{5, 15, 25} {
		r := run(fmt.Sprintf("base%d", n), testbed.Baseline, n, nil)
		gapRows = append(gapRows, Row{
			fmt.Sprintf("%d clients: 802.11 / TCP", n),
			map[int]string{5: "small gap", 15: "growing", 25: "~48 / ~85 ms (75% gap)"}[n],
			fmt.Sprintf("%.1f / %.1f ms (%.0f%% gap)", r.l8, r.lt, 100*(r.lt-r.l8)/(r.l8+1e-9)),
		})
	}
	fig10 := Report{ID: "Fig 10", Title: "802.11 latency vs TCP latency (baseline TCP)", Rows: gapRows}

	// Fig 14: cwnd spread.
	b10 := run("base10", testbed.Baseline, 10, nil)
	f10 := run("fast10", testbed.FastACK, 10, nil)
	sortInts := func(xs []int) []int { s := append([]int(nil), xs...); sort.Ints(s); return s }
	bs, fs := sortInts(b10.cwnd), sortInts(f10.cwnd)
	fig14 := Report{
		ID: "Fig 14", Title: "Sender congestion window, 10 flows",
		Rows: []Row{
			{"baseline cwnd range", "spread; not all reach the 770 cap", fmt.Sprintf("%d..%d segments", bs[0], bs[len(bs)-1])},
			{"FastACK cwnd range", "opens quickly toward the cap", fmt.Sprintf("%d..%d segments", fs[0], fs[len(fs)-1])},
		},
	}

	// Fig 15: aggregation at 30 clients.
	b30 := run("base30", testbed.Baseline, 30, nil)
	f30 := run("fast30", testbed.FastACK, 30, nil)
	u30 := run("udp30", testbed.Baseline, 30, func(o *testbed.Options) {
		o.Traffic = testbed.UDPBulk
		o.UDPRateMbps = 40
	})
	fig15 := Report{
		ID: "Fig 15", Title: "802.11 aggregation size, 30 clients",
		Rows: []Row{
			{"baseline mean A-MPDU", "17-41 range", f1(b30.agg)},
			{"FastACK mean A-MPDU", "33-56 range", f1(f30.agg)},
			{"FastACK vs baseline", "+36-94%", pc(100 * (f30.agg - b30.agg) / b30.agg)},
			{"UDP upper bound", "approaches 64", f1(u30.agg)},
		},
	}

	// Fig 16: throughput sweep.
	var sweep []Row
	maxGain := 0.0
	for _, n := range []int{5, 10, 15, 20, 25, 30} {
		b := run(fmt.Sprintf("base%d", n), testbed.Baseline, n, nil)
		f := run(fmt.Sprintf("fast%d", n), testbed.FastACK, n, nil)
		gain := 100 * (f.total - b.total) / b.total
		if gain > maxGain {
			maxGain = gain
		}
		sweep = append(sweep, Row{
			fmt.Sprintf("%d clients", n), "FastACK wins",
			fmt.Sprintf("%.0f -> %.0f Mbps (%+.1f%%)", b.total, f.total, gain),
		})
	}
	sweep = append(sweep, Row{"max gain", "up to +38%", pc(maxGain)})
	fig16 := Report{
		ID: "Fig 16", Title: "Aggregate client throughput",
		Rows:  sweep,
		Notes: "Deviation: the paper reports gains that broadly grow with client count; here the largest gains sit at low client counts because the simulated baseline recovers efficiency through statistical multiplexing at high counts. FastACK still wins at every point.",
	}

	// Fig 17: fairness.
	fig17 := Report{
		ID: "Fig 17", Title: "Per-client throughput fairness, 30 clients",
		Rows: []Row{
			{"Jain index (base/fastack)", "0.88 / 0.94", f2(stats.JainFairness(b30.perClient)) + " / " + f2(stats.JainFairness(f30.perClient))},
			{"top-80% Jain (base/fastack)", "0.88 / 0.99", f2(top80(b30.perClient)) + " / " + f2(top80(f30.perClient))},
		},
	}

	// Fig 18: multi-AP matrix, averaged over seeds (two-AP runs have high
	// channel-realisation variance). ap1/ap2 split the total by serving
	// AP (clients 0-9 on AP1, 10-19 on AP2).
	type multiRes struct{ total, ap1, ap2 float64 }
	multi := func(key string, m1, m2 testbed.Mode) multiRes {
		var avg multiRes
		const seeds = 3
		for s := int64(0); s < seeds; s++ {
			r := run(fmt.Sprintf("%s-%d", key, s), m1, 10, func(o *testbed.Options) {
				o.Seed = opt.Seed + s
				o.APModes = []testbed.Mode{m1, m2}
			})
			avg.total += r.total / seeds
			for i, g := range r.perClient {
				if i < 10 {
					avg.ap1 += g / seeds
				} else {
					avg.ap2 += g / seeds
				}
			}
		}
		return avg
	}
	bb := multi("m-bb", testbed.Baseline, testbed.Baseline)
	bf := multi("m-bf", testbed.Baseline, testbed.FastACK)
	ff := multi("m-ff", testbed.FastACK, testbed.FastACK)
	fig18 := Report{
		ID: "Fig 18", Title: "Multi-AP deployment (2 APs x 10 clients, 3-seed mean)",
		Rows: []Row{
			{"both baseline", "251 Mbps", f1(bb.total) + " Mbps"},
			{"mixed total", "325 Mbps (net positive)", fmt.Sprintf("%.1f Mbps (%+.1f%% vs both-baseline)", bf.total, 100*(bf.total-bb.total)/bb.total)},
			{"mixed split: FastACK AP vs baseline AP", "240 vs 85 Mbps (FastACK AP wins airtime)", fmt.Sprintf("%.1f vs %.1f Mbps", bf.ap2, bf.ap1)},
			{"both FastACK", "395 Mbps (+51%)", fmt.Sprintf("%.1f Mbps (%+.1f%%)", ff.total, 100*(ff.total-bb.total)/bb.total)},
		},
		Notes: "Deviation: the paper's multi-AP totals grow up to +51%; in this substrate the three cases land within ~10% of each other because the baseline APs already keep the shared channel busy. The robust qualitative result is the mixed split: the FastACK AP outperforms its baseline neighbor on the same air.",
	}

	return []Report{fig10, fig14, fig15, fig16, fig17, fig18}
}

func top80(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return stats.JainFairness(s[len(s)/5:])
}

// Markdown renders reports as the EXPERIMENTS.md body.
func Markdown(reports []Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
		fmt.Fprintf(&b, "| metric | paper | measured |\n|---|---|---|\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", row.Metric, row.Paper, row.Measured)
		}
		if r.Notes != "" {
			fmt.Fprintf(&b, "\n%s\n", r.Notes)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Text renders reports for terminals.
func Text(reports []Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "=== %s — %s\n", r.ID, r.Title)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "  %-32s paper: %-28s measured: %s\n", row.Metric, row.Paper, row.Measured)
		}
		if r.Notes != "" {
			fmt.Fprintf(&b, "  note: %s\n", r.Notes)
		}
		b.WriteString("\n")
	}
	return b.String()
}
