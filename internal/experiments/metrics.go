package experiments

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// MetricsReport renders the observability activity accumulated during a
// run as a regular Report, so every experiment sweep ends with the same
// counters and latency distributions a live -metrics endpoint would show.
// delta should be the end-of-run snapshot diffed against the start-of-run
// one (obs.Snapshot.Delta), so repeated sweeps in one process report only
// their own activity.
func MetricsReport(delta obs.Snapshot) Report {
	var rows []Row
	names := make([]string, 0, len(delta.Counters))
	for name := range delta.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows = append(rows, Row{name, "-", fmt.Sprintf("%d", delta.Counters[name])})
	}
	names = names[:0]
	for name := range delta.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := delta.Histograms[name]
		if h.Count == 0 {
			continue
		}
		rows = append(rows, Row{name, "-",
			fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d p99=%d %s", h.Count, h.Mean, h.P50, h.P95, h.P99, h.Unit)})
	}
	return Report{
		ID: "Metrics", Title: "Run metrics (internal/obs)",
		Rows:  rows,
		Notes: fmt.Sprintf("scopes: %v; gauges omitted (instantaneous). Wall-time histograms vary by host; value histograms are deterministic per seed.", delta.Scopes()),
	}
}
