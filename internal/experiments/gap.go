package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/oracle"
)

// gapSeeds returns the per-scenario seed count of the optimality-gap
// campaign.
func (o Options) gapSeeds() int {
	if o.Quick {
		return 4
	}
	return 12
}

// gapBudget caps each exact solve. Dense 12-AP cliques can want millions
// of nodes; the campaign's contract only needs a certified bound, so
// exhausted runs honestly report proven=false instead of stalling the
// suite.
func (o Options) gapBudget() oracle.Options {
	if o.Quick {
		return oracle.Options{MaxNodes: 50_000}
	}
	return oracle.Options{MaxNodes: 100_000}
}

// OptimalityGap measures how far the paper's greedy NBO sits from the
// exact optimum on small topologies: for every scenario family and size,
// the branch-and-bound oracle either proves the optimal NetP or returns a
// certified upper bound, and NBO and ReservedCA are scored against it.
// Gaps are reported in ln NetP (a gap of g means NBO's NetP is e^-g of
// optimal). The paper never quantifies this — the campaign is this
// repository's answer to "how good is the heuristic?".
func OptimalityGap(opt Options) Report {
	sizes := []int{6, 9, 12}
	seeds := opt.gapSeeds()
	rep := Report{
		ID:    "Oracle",
		Title: "NBO optimality gap vs exact branch-and-bound (ln NetP)",
		Notes: fmt.Sprintf("%d seeds per (family, size); gap = oracle − NBO; reserved = oracle − ReservedCA(W20); unproven runs report against the certified bound.", seeds),
	}

	var allGaps []float64
	total, proven := 0, 0
	for _, kind := range oracle.Kinds {
		for _, n := range sizes {
			var worstBound, sumGap, sumRCA float64
			for seed := 0; seed < seeds; seed++ {
				base := int64(n)*1_000_003 + opt.Seed*7919 + int64(seed)
				cfg, in := oracle.Scenario(kind, n, rand.New(rand.NewSource(base)))
				g := oracle.Gap(cfg, in, oracle.GapOptions{Seed: base + 1, Solve: opt.gapBudget()})
				total++
				if g.Proven {
					proven++
				}
				sumGap += g.BoundGap
				sumRCA += g.Bound - g.ReservedLogNetP
				if g.BoundGap > worstBound {
					worstBound = g.BoundGap
				}
				allGaps = append(allGaps, g.BoundGap)
			}
			rep.Rows = append(rep.Rows, Row{
				Metric:   fmt.Sprintf("%s n=%d: mean gap / worst gap / mean rca gap", kind, n),
				Paper:    "n/a (not measured)",
				Measured: f3(sumGap/float64(seeds)) + " / " + f3(worstBound) + " / " + f3(sumRCA/float64(seeds)),
			})
		}
	}

	sort.Float64s(allGaps)
	q := func(p float64) float64 { return allGaps[int(p*float64(len(allGaps)-1))] }
	rep.Rows = append(rep.Rows,
		Row{
			Metric:   "gap distribution p50 / p90 / max",
			Paper:    "n/a",
			Measured: f3(q(0.50)) + " / " + f3(q(0.90)) + " / " + f3(allGaps[len(allGaps)-1]),
		},
		Row{
			Metric:   "scenarios proven optimal",
			Paper:    "n/a",
			Measured: fmt.Sprintf("%d/%d", proven, total),
		},
	)
	return rep
}
