package oracle

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/spectrum"
	"repro/internal/turboca"
)

// tol absorbs the solver's bound-pruning slack: a pruned subtree may hide
// a leaf up to `slack` better than the incumbent, so "proven optimal"
// means optimal within this tolerance.
const tol = 1e-6

// propertySeeds matches the planner's own property suite.
const propertySeeds = 120

// randomNetwork builds a pinned-free random planning problem of at most
// maxAPs APs. It mirrors the turboca property generator (random band,
// widths, loads, interference, greenfield APs, even DFS residue currents)
// but never pins: RunReservedCA ignores pinning, so a pinned input would
// let the static baseline move APs the oracle must hold fixed.
func randomNetwork(r *rand.Rand, maxAPs int) turboca.Input {
	in := turboca.Input{Band: spectrum.Band5, AllowDFS: r.Intn(2) == 0}
	if r.Intn(8) == 0 {
		in.Band = spectrum.Band2G4
	}
	widths := []spectrum.Width{spectrum.W20, spectrum.W40, spectrum.W80, spectrum.W160}
	in.MaxWidth = widths[r.Intn(len(widths))]
	if in.Band == spectrum.Band2G4 {
		in.MaxWidth = spectrum.W20
	}
	currents := spectrum.AllChannels(in.Band, in.MaxWidth, true)

	n := 3 + r.Intn(maxAPs-2)
	for i := 0; i < n; i++ {
		v := turboca.APView{
			ID:          i,
			MaxWidth:    widths[r.Intn(len(widths))],
			HasClients:  r.Float64() < 0.7,
			CSAFraction: r.Float64(),
			Load:        r.Float64() * 8,
			Utilization: r.Float64(),
			WidthLoad:   map[spectrum.Width]float64{},
		}
		if in.Band == spectrum.Band2G4 {
			v.MaxWidth = spectrum.W20
		}
		if r.Float64() < 0.8 {
			v.Current = currents[r.Intn(len(currents))]
		}
		for k := 1 + r.Intn(3); k > 0; k-- {
			v.WidthLoad[widths[r.Intn(len(widths))]] = 0.05 + r.Float64()
		}
		for k := r.Intn(4); k > 0; k-- {
			c := currents[r.Intn(len(currents))]
			if v.ExternalUtil == nil {
				v.ExternalUtil = map[int]float64{}
			}
			for _, sub := range c.Sub20Numbers() {
				v.ExternalUtil[sub] = r.Float64()
			}
		}
		in.APs = append(in.APs, v)
	}
	for i := 0; i < n; i++ {
		for k := r.Intn(4); k > 0; k-- {
			j := r.Intn(n)
			if j == i {
				continue
			}
			in.APs[i].Neighbors = append(in.APs[i].Neighbors, j)
			in.APs[j].Neighbors = append(in.APs[j].Neighbors, i)
		}
	}
	in.Sanitize()
	return in
}

// permuted returns a deep-enough copy of in with its AP slice shuffled.
func permuted(in turboca.Input, r *rand.Rand) turboca.Input {
	out := in
	out.APs = append([]turboca.APView(nil), in.APs...)
	r.Shuffle(len(out.APs), func(i, j int) { out.APs[i], out.APs[j] = out.APs[j], out.APs[i] })
	return out
}

func plansIdentical(a, b turboca.Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for id, aa := range a {
		ba, ok := b[id]
		if !ok || aa.Channel != ba.Channel {
			return false
		}
		switch {
		case aa.Fallback == nil && ba.Fallback == nil:
		case aa.Fallback != nil && ba.Fallback != nil && *aa.Fallback == *ba.Fallback:
		default:
			return false
		}
	}
	return true
}

// TestOracleDominatesHeuristics is the headline property: across 120
// random ≤8-AP networks the oracle proves optimality and its optimum
// dominates both heuristics' plans (all scores re-evaluated through the
// one public NetP), and re-solving a permuted AP order reproduces the
// plan byte for byte with a bitwise-equal score.
func TestOracleDominatesHeuristics(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randomNetwork(r, 8)
		cfg := turboca.DefaultConfig()
		cin := turboca.CanonicalInput(in)

		res := Solve(cfg, in, Options{})
		if !res.Proven {
			t.Errorf("seed %d: %d-AP solve exhausted %d nodes without proof", seed, len(in.APs), res.Nodes)
			continue
		}
		if res.Bound != res.LogNetP {
			t.Errorf("seed %d: proven solve Bound %f != LogNetP %f", seed, res.Bound, res.LogNetP)
		}
		if got := turboca.NetP(cfg, cin, res.Plan); got != res.LogNetP {
			t.Errorf("seed %d: oracle plan re-evaluates to %v, solver reported %v", seed, got, res.LogNetP)
		}

		nbo := turboca.RunNBO(cfg, cin, rand.New(rand.NewSource(seed*7919+1)), []int{1, 0})
		if sc := turboca.NetP(cfg, cin, nbo.Plan); sc > res.LogNetP+tol {
			t.Errorf("seed %d: NBO %f beats proven oracle optimum %f", seed, sc, res.LogNetP)
		}
		rca := turboca.RunReservedCA(cfg, cin, spectrum.W20)
		if sc := turboca.NetP(cfg, cin, rca.Plan); sc > res.LogNetP+tol {
			t.Errorf("seed %d: ReservedCA %f beats proven oracle optimum %f", seed, sc, res.LogNetP)
		}

		// Determinism pin: a shuffled AP slice is the same problem.
		res2 := Solve(cfg, permuted(in, r), Options{})
		if res2.LogNetP != res.LogNetP || res2.Bound != res.Bound ||
			res2.Proven != res.Proven || res2.Nodes != res.Nodes {
			t.Errorf("seed %d: permuted solve (%v, %v, %v, %d) != original (%v, %v, %v, %d)",
				seed, res2.LogNetP, res2.Bound, res2.Proven, res2.Nodes,
				res.LogNetP, res.Bound, res.Proven, res.Nodes)
		}
		if !plansIdentical(res.Plan, res2.Plan) {
			t.Errorf("seed %d: permuted AP order changed the plan", seed)
		}
	}
}

// TestOracleRespectsPinning checks the solver against inputs with pinned
// APs: a pinned AP with a valid current channel never moves, and NBO —
// which honors pinning the same way — stays within the proven bound.
func TestOracleRespectsPinning(t *testing.T) {
	for seed := int64(500); seed < 530; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randomNetwork(r, 8)
		for i := range in.APs {
			if r.Float64() < 0.3 {
				in.APs[i].Pinned = true
			}
		}
		cfg := turboca.DefaultConfig()
		cin := turboca.CanonicalInput(in)

		res := Solve(cfg, in, Options{})
		for i := range cin.APs {
			v := &cin.APs[i]
			if !v.Pinned || !v.Current.Width.Valid() {
				continue
			}
			if a, ok := res.Plan[v.ID]; ok && a.Channel != v.Current {
				t.Errorf("seed %d: pinned AP %d moved %v -> %v", seed, v.ID, v.Current, a.Channel)
			}
		}
		if !res.Proven {
			continue
		}
		nbo := turboca.RunNBO(cfg, cin, rand.New(rand.NewSource(seed)), []int{1, 0})
		if sc := turboca.NetP(cfg, cin, nbo.Plan); sc > res.Bound+tol {
			t.Errorf("seed %d: NBO %f outside proven bound %f on pinned input", seed, sc, res.Bound)
		}
	}
}

// TestOracleBudgetExhaustion pins the budget contract: a starved solve
// returns the warm-start incumbent with Proven=false and a bound that
// (a) is no smaller than the incumbent and (b) still certifies the true
// optimum found by an unbudgeted solve on the same input.
func TestOracleBudgetExhaustion(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg, in := Scenario(Clique, 8, r)

		full := Solve(cfg, in, Options{})
		if !full.Proven {
			t.Fatalf("seed %d: reference solve exhausted its budget", seed)
		}
		for _, maxNodes := range []int{1, 17, 400} {
			res := Solve(cfg, in, Options{MaxNodes: maxNodes})
			if res.Proven {
				// A tiny budget can still suffice on a tiny tree; then the
				// result must simply be the reference optimum.
				if res.LogNetP != full.LogNetP {
					t.Errorf("seed %d budget %d: proven %f != reference %f",
						seed, maxNodes, res.LogNetP, full.LogNetP)
				}
				continue
			}
			if res.Nodes > maxNodes {
				t.Errorf("seed %d budget %d: expanded %d nodes", seed, maxNodes, res.Nodes)
			}
			if res.Bound < res.LogNetP-tol {
				t.Errorf("seed %d budget %d: bound %f below incumbent %f",
					seed, maxNodes, res.Bound, res.LogNetP)
			}
			if res.Bound < full.LogNetP-tol {
				t.Errorf("seed %d budget %d: bound %f fails to certify true optimum %f",
					seed, maxNodes, res.Bound, full.LogNetP)
			}
			if res.LogNetP > full.LogNetP+tol {
				t.Errorf("seed %d budget %d: incumbent %f beats proven optimum %f",
					seed, maxNodes, res.LogNetP, full.LogNetP)
			}
			if got := turboca.NetP(cfg, turboca.CanonicalInput(in), res.Plan); got != res.LogNetP {
				t.Errorf("seed %d budget %d: incumbent re-evaluates to %v, solver reported %v",
					seed, maxNodes, got, res.LogNetP)
			}
		}
	}
}

// TestOracleTimeout covers the wall-clock budget: an already-expired
// deadline stops the search at once, leaving the baseline incumbent and
// an honest bound.
func TestOracleTimeout(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg, in := Scenario(Clique, 10, r)
	res := Solve(cfg, in, Options{Timeout: time.Nanosecond})
	if res.Proven {
		t.Fatal("expired deadline still proved optimality")
	}
	if res.Bound < res.LogNetP-tol {
		t.Errorf("bound %f below incumbent %f", res.Bound, res.LogNetP)
	}
	full := Solve(cfg, in, Options{MaxNodes: -1})
	if full.Proven && res.Bound < full.LogNetP-tol {
		t.Errorf("timeout bound %f fails to certify optimum %f", res.Bound, full.LogNetP)
	}
}

// TestOracleEmptyAndTiny covers degenerate inputs.
func TestOracleEmptyAndTiny(t *testing.T) {
	cfg := turboca.DefaultConfig()
	res := Solve(cfg, turboca.Input{Band: spectrum.Band5}, Options{})
	if !res.Proven || res.LogNetP != 0 || len(res.Plan) != 0 {
		t.Errorf("empty input: got (%v, %v, %d assignments)", res.Proven, res.LogNetP, len(res.Plan))
	}

	in := turboca.Input{Band: spectrum.Band5, MaxWidth: spectrum.W40, APs: []turboca.APView{{
		ID: 7, MaxWidth: spectrum.W40, HasClients: true, Load: 1,
	}}}
	in.Sanitize()
	res = Solve(cfg, in, Options{})
	if !res.Proven {
		t.Fatal("single-AP solve not proven")
	}
	if _, ok := res.Plan[7]; !ok {
		t.Error("greenfield single AP left unassigned by the optimum")
	}
}

// TestGap exercises the Gap API across every scenario family: NBO must
// sit within the proven bound, the static baseline within the oracle, and
// the two gap fields must be consistent.
func TestGap(t *testing.T) {
	for _, kind := range Kinds {
		for seed := int64(0); seed < 4; seed++ {
			cfg, in := Scenario(kind, 6, rand.New(rand.NewSource(seed)))
			g := Gap(cfg, in, GapOptions{Seed: seed})
			if !g.Proven {
				t.Errorf("%s seed %d: 6-AP gap run not proven (%d nodes)", kind, seed, g.Nodes)
				continue
			}
			if g.NBOLogNetP > g.Bound+tol {
				t.Errorf("%s seed %d: NBO %f outside proven bound %f", kind, seed, g.NBOLogNetP, g.Bound)
			}
			if g.ReservedLogNetP > g.OracleLogNetP+tol {
				t.Errorf("%s seed %d: ReservedCA %f beats oracle %f", kind, seed, g.ReservedLogNetP, g.OracleLogNetP)
			}
			if g.Gap != g.OracleLogNetP-g.NBOLogNetP || g.BoundGap != g.Bound-g.NBOLogNetP {
				t.Errorf("%s seed %d: inconsistent gap fields", kind, seed)
			}
			if g.Gap < -tol {
				t.Errorf("%s seed %d: negative gap %f against proven optimum", kind, seed, g.Gap)
			}
		}
	}
}
