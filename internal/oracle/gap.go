package oracle

import (
	"math/rand"

	"repro/internal/spectrum"
	"repro/internal/turboca"
)

// GapResult measures the heuristics against the oracle on one scenario.
// All four scores are computed by re-evaluating each plan through
// turboca.NetP on the same canonicalized input, so they share one
// summation order and are directly comparable.
type GapResult struct {
	// OracleLogNetP is the oracle incumbent's ln NetP; Bound its proven
	// upper bound (equal when Proven).
	OracleLogNetP float64
	Bound         float64
	Proven        bool
	// Nodes the oracle expanded for this scenario.
	Nodes int

	// NBOLogNetP / ReservedLogNetP score the two heuristics' plans.
	NBOLogNetP      float64
	ReservedLogNetP float64

	// Gap is OracleLogNetP − NBOLogNetP: how much ln NetP the greedy
	// planner left on the table against the best *found* plan (≥ 0 up to
	// float tolerance whenever Proven). BoundGap is Bound − NBOLogNetP:
	// the worst case against the unexplored remainder — the honest number
	// to report when Proven is false.
	Gap      float64
	BoundGap float64

	// The plans themselves, for callers that want to diff assignments.
	OraclePlan   turboca.Plan
	NBOPlan      turboca.Plan
	ReservedPlan turboca.Plan
}

// GapOptions parameterizes one Gap evaluation.
type GapOptions struct {
	// Solve budget for the oracle (zero values take Solve's defaults).
	Solve Options
	// Seed drives NBO's randomized rounds (deterministic per seed).
	Seed int64
	// Hops is NBO's refinement schedule (nil = [2, 1, 0], the backend's
	// production schedule).
	Hops []int
	// ReservedWidth is the static allocation's fixed width (zero =
	// spectrum.W20, the backend default).
	ReservedWidth spectrum.Width
}

// Gap runs the oracle, NBO, and ReservedCA on one scenario and reports the
// optimality gap. The input is canonicalized once so all three see APs in
// the same dense order and every score is bitwise comparable.
func Gap(cfg turboca.Config, in turboca.Input, opt GapOptions) GapResult {
	in = turboca.CanonicalInput(in)
	hops := opt.Hops
	if hops == nil {
		hops = []int{2, 1, 0}
	}
	width := opt.ReservedWidth
	if width == 0 {
		width = spectrum.W20
	}

	orc := Solve(cfg, in, opt.Solve)
	nbo := turboca.RunNBO(cfg, in, rand.New(rand.NewSource(opt.Seed)), hops)
	rca := turboca.RunReservedCA(cfg, in, width)

	g := GapResult{
		Bound:        orc.Bound,
		Proven:       orc.Proven,
		Nodes:        orc.Nodes,
		OraclePlan:   orc.Plan,
		NBOPlan:      nbo.Plan,
		ReservedPlan: rca.Plan,
	}
	// Re-score every plan through the one public evaluator. For the
	// oracle this must agree with Result.LogNetP bitwise: same planner
	// construction, same dense order, same reduction.
	g.OracleLogNetP = turboca.NetP(cfg, in, orc.Plan)
	g.NBOLogNetP = turboca.NetP(cfg, in, nbo.Plan)
	g.ReservedLogNetP = turboca.NetP(cfg, in, rca.Plan)
	g.Gap = g.OracleLogNetP - g.NBOLogNetP
	g.BoundGap = g.Bound - g.NBOLogNetP
	return g
}
