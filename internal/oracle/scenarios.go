package oracle

import (
	"math/rand"

	"repro/internal/spectrum"
	"repro/internal/turboca"
)

// Kind names a small-topology family for gap campaigns. The families span
// the contention regimes the planner faces: chains and rings (sparse,
// 2-regular), grids (the campus floor-plan shape), cliques (everyone hears
// everyone — the hardest case for greedy assignment), and random sparse
// graphs.
type Kind string

const (
	Line   Kind = "line"
	Ring   Kind = "ring"
	Grid   Kind = "grid"
	Clique Kind = "clique"
	Sparse Kind = "sparse"
)

// Kinds lists every scenario family, in campaign order.
var Kinds = []Kind{Line, Ring, Grid, Clique, Sparse}

// Scenario builds a deterministic n-AP planning problem of the given
// family from one RNG stream. The problems are sized for exact solving:
// 5 GHz, DFS off, width capped at 80 MHz (so the candidate set stays
// small and every ReservedCA 20 MHz choice is oracle-feasible), no pinned
// APs (RunReservedCA ignores pinning, so pinned inputs would let the
// static baseline cheat outside the oracle's feasible set). Roughly 60%
// of APs start with an on-air 20/40 MHz channel; the rest are greenfield.
func Scenario(kind Kind, n int, r *rand.Rand) (turboca.Config, turboca.Input) {
	cfg := turboca.DefaultConfig()
	in := turboca.Input{
		Band:     spectrum.Band5,
		AllowDFS: false,
		MaxWidth: spectrum.W80,
	}
	currents := spectrum.AllChannels(spectrum.Band5, spectrum.W40, false)
	for i := 0; i < n; i++ {
		v := turboca.APView{
			ID:          i,
			MaxWidth:    spectrum.W80,
			HasClients:  r.Float64() < 0.8,
			CSAFraction: r.Float64(),
			Load:        0.2 + r.Float64()*4,
			Utilization: r.Float64() * 0.8,
			WidthLoad: map[spectrum.Width]float64{
				spectrum.W20: 0.1 + r.Float64(),
				spectrum.W40: r.Float64(),
				spectrum.W80: r.Float64(),
			},
		}
		if r.Float64() < 0.6 {
			v.Current = currents[r.Intn(len(currents))]
		}
		for k := r.Intn(3); k > 0; k-- {
			c := currents[r.Intn(len(currents))]
			if v.ExternalUtil == nil {
				v.ExternalUtil = map[int]float64{}
			}
			for _, sub := range c.Sub20Numbers() {
				v.ExternalUtil[sub] = r.Float64() * 0.7
			}
		}
		in.APs = append(in.APs, v)
	}

	edge := func(i, j int) {
		in.APs[i].Neighbors = append(in.APs[i].Neighbors, j)
		in.APs[j].Neighbors = append(in.APs[j].Neighbors, i)
	}
	switch kind {
	case Line:
		for i := 0; i+1 < n; i++ {
			edge(i, i+1)
		}
	case Ring:
		for i := 0; i+1 < n; i++ {
			edge(i, i+1)
		}
		if n > 2 {
			edge(n-1, 0)
		}
	case Grid:
		// Nearly-square grid with 4-neighborhoods: cols = ceil(sqrt(n)).
		cols := 1
		for cols*cols < n {
			cols++
		}
		for i := 0; i < n; i++ {
			if (i+1)%cols != 0 && i+1 < n {
				edge(i, i+1)
			}
			if i+cols < n {
				edge(i, i+cols)
			}
		}
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edge(i, j)
			}
		}
	case Sparse:
		// Connected backbone plus ~n/2 random chords.
		for i := 1; i < n; i++ {
			edge(i, r.Intn(i))
		}
		for k := n / 2; k > 0; k-- {
			i, j := r.Intn(n), r.Intn(n)
			if i != j {
				edge(i, j)
			}
		}
	}
	in.Sanitize()
	return cfg, in
}
