package oracle

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/turboca"
)

// BenchmarkOracleSolve times exact solves at the three campaign sizes on
// the grid family (the campus floor-plan shape — dense enough to make the
// search work, sparse enough to finish). When BENCH_JSON_DIR is set
// (`make bench-json`) it persists per-size solve latency and nodes
// expanded as BENCH_oracle.json.
func BenchmarkOracleSolve(b *testing.B) {
	payload := map[string]float64{}
	for _, aps := range []int{6, 9, 12} {
		var cfgs []turboca.Config
		var ins []turboca.Input
		const variants = 8
		for seed := int64(0); seed < variants; seed++ {
			cfg, in := Scenario(Grid, aps, rand.New(rand.NewSource(seed)))
			cfgs = append(cfgs, cfg)
			ins = append(ins, in)
		}
		b.Run(fmt.Sprintf("aps=%d", aps), func(b *testing.B) {
			var nodes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % variants
				res := Solve(cfgs[k], ins[k], Options{})
				nodes += int64(res.Nodes)
			}
			b.StopTimer()
			payload[fmt.Sprintf("aps_%d_ns_per_solve", aps)] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			payload[fmt.Sprintf("aps_%d_nodes", aps)] = float64(nodes) / float64(b.N)
		})
	}

	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" {
		return
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Logf("bench json: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_oracle.json"), append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: %v", err)
	}
}
