// Package oracle answers the question the greedy planner cannot answer
// about itself: how far from optimal is NBO? It solves the (channel,
// width) assignment problem exactly on small topologies (≲12 APs) with a
// branch-and-bound search over the same NodeP/NetP objective TurboCA
// maximizes (§4.4.1), using the per-AP best-case NodeP as an admissible
// upper bound — the exact-formulation counterpart of Kai et al.'s optimal
// channel-bonding allocation, evaluated on this repository's metric.
//
// The search is deterministic (fixed branch order, stable value order,
// first-found-wins on ties) and budgeted: when the node or wall-clock
// budget exhausts, the incumbent is returned together with a proven upper
// bound on the unexplored remainder, so every run yields either a
// certificate of optimality (Proven) or a bracket the heuristic can be
// measured against.
package oracle

import (
	"math"
	"sort"
	"time"

	"repro/internal/turboca"
)

// DefaultMaxNodes bounds the search when Options.MaxNodes is zero. At
// ~1 µs per node it caps a solve at a few seconds — enough to prove
// optimality on most ≤12-AP scenarios while keeping a pathological one
// from wedging a campaign.
const DefaultMaxNodes = 2_000_000

// slack is the floating-point tolerance of every bound comparison. Bounds
// and leaf scores are sums of the same float64 terms in different
// association orders, so they can disagree in the last bits; pruning
// demands the bound clear the incumbent by more than this noise floor.
const slack = 1e-9

// Options budgets one solve.
type Options struct {
	// MaxNodes caps expanded search nodes (0 = DefaultMaxNodes; negative
	// = unlimited). The node budget is deterministic: two runs over the
	// same input stop at the same node.
	MaxNodes int
	// Timeout caps wall-clock time (0 = none). A timeout stop is NOT
	// deterministic — the incumbent and bound are still correct, but
	// where the search stopped depends on the machine. Budget with
	// MaxNodes when reproducibility matters.
	Timeout time.Duration
}

// Result is one solve's outcome.
type Result struct {
	// Plan is the incumbent — the best full assignment found.
	Plan turboca.Plan
	// LogNetP is the incumbent's exact ln NetP.
	LogNetP float64
	// Bound is a proven upper bound on the optimal ln NetP: equal to
	// LogNetP when Proven, possibly larger when the budget exhausted.
	Bound float64
	// Proven reports the search ran to completion — LogNetP is the
	// optimum (within the slack tolerance of bound pruning).
	Proven bool
	// Nodes counts expanded search nodes.
	Nodes int
}

// Solve finds the (channel, width) assignment maximizing ln NetP over the
// evaluator's feasibility superset (see turboca.NewEvaluator: everything
// RunNBO can produce is feasible, so Result.LogNetP ≥ any NBO score on the
// same input). The input is canonicalized (APs sorted by ID) first, so a
// permuted AP slice yields a byte-identical plan and bitwise-equal score.
func Solve(cfg turboca.Config, in turboca.Input, opt Options) Result {
	in = turboca.CanonicalInput(in)
	e := turboca.NewEvaluator(cfg, in)
	n := e.NumAPs()

	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	if maxNodes < 0 {
		maxNodes = math.MaxInt
	}
	s := &solver{
		e:        e,
		n:        n,
		maxNodes: maxNodes,
		decided:  make([]bool, n),
		cur:      make([]int, n),
		contrib:  make([]float64, n),
		ub:       make([]float64, n),
		residual: math.Inf(-1),
	}
	if opt.Timeout > 0 {
		s.deadline = time.Now().Add(opt.Timeout)
		s.hasDeadline = true
	}

	// Branch order: forced APs (single candidate — the pinned ones) first,
	// so their contention is visible to every bound below them; then by
	// neighbor degree (most-constraining first), load (heaviest first),
	// and index — a fixed total order, part of the determinism contract.
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(x, y int) bool {
		a, b := s.order[x], s.order[y]
		fa, fb := len(e.Candidates(a)) == 1, len(e.Candidates(b)) == 1
		if fa != fb {
			return fa
		}
		da, db := len(e.Neighbors(a)), len(e.Neighbors(b))
		if da != db {
			return da > db
		}
		la, lb := e.Load(a), e.Load(b)
		if la != lb {
			return la > lb
		}
		return a < b
	})

	// Warm-start incumbent: the baseline (every AP on its on-air channel,
	// never-assigned APs off the air) — the implicit plan RunNBO's
	// accept-if-better loop scores against. Starting here guarantees
	// LogNetP ≥ baseline even on immediate budget exhaustion, and every
	// baseline choice is in the candidate lists by construction.
	s.bestAssign = make([]int, n)
	for i := 0; i < n; i++ {
		s.bestAssign[i] = baselineChoice(e, i)
		e.Assign(i, s.bestAssign[i])
	}
	s.best = e.LogNetP()
	for i := 0; i < n; i++ {
		e.Assign(i, turboca.Unassigned)
	}

	// Initial per-AP optimistic contributions: no contention anywhere.
	for i := 0; i < n; i++ {
		s.ub[i] = s.maxNodeP(i)
	}
	s.ordBuf = make([][]int, n)
	s.scBuf = make([][]float64, n)
	s.undoBuf = make([][]undoEntry, n)

	s.search(0)

	bound := s.best
	if s.stopped && s.residual > bound {
		bound = s.residual
	}
	for i := 0; i < n; i++ {
		e.Assign(i, s.bestAssign[i])
	}
	return Result{
		Plan:    e.Plan(),
		LogNetP: s.best,
		Bound:   bound,
		Proven:  !s.stopped,
		Nodes:   s.nodes,
	}
}

// baselineChoice is AP i's assignment in the do-nothing plan.
func baselineChoice(e *turboca.Evaluator, i int) int {
	if c := e.OnAir(i); c != turboca.Unassigned {
		return c
	}
	return turboca.Unassigned
}

// undoEntry restores one refreshed bookkeeping slot on backtrack.
type undoEntry struct {
	idx     int
	val     float64
	contrib bool // true: contrib[idx]; false: ub[idx]
}

type solver struct {
	e *turboca.Evaluator
	n int

	order   []int
	decided []bool
	cur     []int // decided AP -> chosen candidate
	// contrib[i] (decided) is i's exact ln NodeP under the partial
	// assignment; ub[i] (undecided) is i's best-case ln NodeP. Both only
	// shrink as neighbors are assigned (contention is monotone), so
	// bound() — their sum — is admissible at every node.
	contrib []float64
	ub      []float64

	best       float64
	bestAssign []int
	// residual accumulates, on budget exhaustion, the largest upper bound
	// over every subtree the stopped search never entered — folded in at
	// each unwinding level, so Bound stays a certificate.
	residual float64

	nodes       int
	maxNodes    int
	deadline    time.Time
	hasDeadline bool
	stopped     bool

	// Per-depth scratch (recursion is depth-linear, so one buffer per
	// depth never aliases a live frame).
	ordBuf  [][]int
	scBuf   [][]float64
	undoBuf [][]undoEntry
}

// bound sums the current admissible per-AP bounds — a fresh O(n) reduction
// every time, so bookkeeping refreshes cannot accumulate float drift.
func (s *solver) bound() float64 {
	sum := 0.0
	for i := 0; i < s.n; i++ {
		if s.decided[i] {
			sum += s.contrib[i]
		} else {
			sum += s.ub[i]
		}
	}
	return sum
}

// maxNodeP is AP i's best-case contribution under the current partial
// assignment.
func (s *solver) maxNodeP(i int) float64 {
	best := math.Inf(-1)
	for _, c := range s.e.Candidates(i) {
		if v := s.e.NodeP(i, c); v > best {
			best = v
		}
	}
	return best
}

// apply decides AP i onto candidate c at depth d, refreshing its own
// contribution and every neighbor's bookkeeping (journaled for undo).
// Deciding Unassigned adds no contention, so neighbors keep their values.
func (s *solver) apply(d, i, c int) {
	s.e.Assign(i, c)
	s.decided[i] = true
	s.cur[i] = c
	s.contrib[i] = s.e.NodeP(i, c)
	undo := s.undoBuf[d][:0]
	if c != turboca.Unassigned {
		for _, j := range s.e.Neighbors(i) {
			if s.decided[j] {
				undo = append(undo, undoEntry{idx: j, val: s.contrib[j], contrib: true})
				s.contrib[j] = s.e.NodeP(j, s.cur[j])
			} else {
				undo = append(undo, undoEntry{idx: j, val: s.ub[j]})
				s.ub[j] = s.maxNodeP(j)
			}
		}
	}
	s.undoBuf[d] = undo
}

// undo reverts apply at depth d.
func (s *solver) undo(d, i int) {
	for _, u := range s.undoBuf[d] {
		if u.contrib {
			s.contrib[u.idx] = u.val
		} else {
			s.ub[u.idx] = u.val
		}
	}
	s.decided[i] = false
	s.e.Assign(i, turboca.Unassigned)
}

// outOfBudget consults the node and wall-clock budgets. The wall check
// runs every 1024 nodes (time.Now is not free, and a coarse check only
// stretches a timeout, never the node budget).
func (s *solver) outOfBudget() bool {
	if s.nodes >= s.maxNodes {
		return true
	}
	return s.hasDeadline && s.nodes&1023 == 0 && time.Now().After(s.deadline)
}

// fold records an upper bound over subtrees the stopped search skipped.
func (s *solver) fold(v float64) {
	if v > s.residual {
		s.residual = v
	}
}

// search expands depth d. Candidates are tried in order of their
// contextual NodeP (stable-sorted, so equal scores keep candidate-list
// order): the greedy-best child first, which both finds strong incumbents
// early and makes the sorted cheap bound a valid break condition.
func (s *solver) search(d int) {
	if d == s.n {
		// Leaf: exact full re-sum. Strictly-greater keeps the first-found
		// optimum on ties — the determinism pin.
		if sc := s.e.LogNetP(); sc > s.best {
			s.best = sc
			s.bestAssign = append(s.bestAssign[:0], s.cur...)
		}
		return
	}
	i := s.order[d]
	cands := s.e.Candidates(i)
	scs := s.scBuf[d][:0]
	ord := s.ordBuf[d][:0]
	for k, c := range cands {
		scs = append(scs, s.e.NodeP(i, c))
		ord = append(ord, k)
	}
	sort.SliceStable(ord, func(a, b int) bool { return scs[ord[a]] > scs[ord[b]] })
	s.scBuf[d], s.ordBuf[d] = scs, ord

	nodeBound := s.bound()
	for oi, k := range ord {
		c := cands[k]
		// Cheap child bound: swap i's optimistic term for this candidate's
		// contextual score. An upper bound on the child's real bound, and
		// non-increasing along the sorted order — the first prune ends the
		// whole level.
		cheap := nodeBound - s.ub[i] + scs[k]
		if cheap <= s.best+slack {
			return
		}
		if s.outOfBudget() {
			s.stopped = true
			s.fold(cheap)
			return
		}
		s.nodes++
		s.apply(d, i, c)
		// Real child bound: apply refreshed the neighborhood, so this is
		// tighter than cheap. Recurse only when it can still win.
		if s.bound() > s.best+slack {
			s.search(d + 1)
		}
		s.undo(d, i)
		if s.stopped {
			if oi+1 < len(ord) {
				// Everything untried at this level is bounded by the next
				// (sorted) candidate's cheap bound.
				s.fold(nodeBound - s.ub[i] + scs[ord[oi+1]])
			}
			return
		}
	}
}
