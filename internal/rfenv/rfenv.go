// Package rfenv models a hostile RF environment for the control-plane
// simulation: WACA-style per-channel occupancy traces (bursty,
// heavy-tailed non-WiFi energy, deterministic per (seed, channel)),
// correlated DFS radar storms that clear whole frequency ranges in one
// sweep, and the regulatory non-occupancy quarantine a radar detection
// imposes on every covered 20 MHz sub-channel.
//
// The package is pure environment state — it schedules nothing itself.
// The backend samples Traces into each planner input, fires Storms from
// its engine, and consults the Quarantine at every point a channel could
// be assigned (planner candidates, radar fallbacks, plan pushes).
package rfenv

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/spectrum"
)

// NOPDuration is the FCC non-occupancy period: after a radar detection,
// every covered 20 MHz sub-channel must stay silent for 30 minutes.
const NOPDuration = 30 * sim.Minute

// Env bundles the hostile-RF state for one network. Traces and Storms
// are optional (nil/empty disables them); Q is always present so strike
// handling never needs a nil check. An Env is engine-affine state like
// the backend that owns it: not safe for concurrent use.
type Env struct {
	Traces *TraceSet
	Storms []Storm
	Q      *Quarantine
}

// NewEnv assembles an environment around an always-present quarantine
// table. storms must be sorted by At ascending (StormSchedule's output
// already is).
func NewEnv(traces *TraceSet, storms []Storm) *Env {
	return &Env{Traces: traces, Storms: storms, Q: NewQuarantine()}
}

// Quarantine is the non-occupancy table: 20 MHz sub-channel number to
// NOP expiry instant. A sub-channel is blocked for t in
// [strike, strike+NOPDuration) and free again exactly at expiry.
type Quarantine struct {
	expiry map[int]sim.Time
}

// NewQuarantine returns an empty table.
func NewQuarantine() *Quarantine {
	return &Quarantine{expiry: make(map[int]sim.Time)}
}

// Strike starts (or extends) a NOP on every listed sub-channel.
func (q *Quarantine) Strike(subs []int, at sim.Time) {
	for _, s := range subs {
		if e := at + NOPDuration; e > q.expiry[s] {
			q.expiry[s] = e
		}
	}
}

// SubBlocked reports whether 20 MHz sub-channel n is inside an active
// NOP window at time t.
func (q *Quarantine) SubBlocked(n int, t sim.Time) bool {
	return q.expiry[n] > t
}

// Blocked reports whether any 20 MHz sub-channel covered by c is inside
// an active NOP window — quarantine propagates to every bonded channel
// that touches a struck sub-channel. Only 5 GHz channels can be radar
// quarantined; other bands are never blocked.
func (q *Quarantine) Blocked(c spectrum.Channel, t sim.Time) bool {
	if c.Band != spectrum.Band5 || len(q.expiry) == 0 {
		return false
	}
	if !c.Width.Valid() {
		return q.SubBlocked(c.Number, t)
	}
	for _, s := range c.Sub20Numbers() {
		if q.SubBlocked(s, t) {
			return true
		}
	}
	return false
}

// BlockedSet returns the sub-channel numbers under an active NOP at t as
// a set, or nil when none are. Expired entries are dropped from the
// table on the way, bounding its size to one storm's worth of strikes.
func (q *Quarantine) BlockedSet(t sim.Time) map[int]bool {
	var out map[int]bool
	for s, e := range q.expiry {
		if e <= t {
			delete(q.expiry, s)
			continue
		}
		if out == nil {
			out = make(map[int]bool)
		}
		out[s] = true
	}
	return out
}

// Active counts sub-channels under an active NOP at t.
func (q *Quarantine) Active(t sim.Time) int {
	n := 0
	for _, e := range q.expiry {
		if e > t {
			n++
		}
	}
	return n
}

// ActiveSubs lists the quarantined sub-channel numbers at t, sorted.
func (q *Quarantine) ActiveSubs(t sim.Time) []int {
	var out []int
	for s, e := range q.expiry {
		if e > t {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Default5GHzChannels returns the 20 MHz channel numbers a trace set
// covers by default: all 25 US 5 GHz channels (the 24 bondable ones plus
// ch 165).
func Default5GHzChannels() []int {
	chans := spectrum.Channels(spectrum.Band5, spectrum.W20, true)
	out := make([]int, len(chans))
	for i, c := range chans {
		out[i] = c.Number
	}
	return out
}
