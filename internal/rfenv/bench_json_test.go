package rfenv_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchmarkRFEnv times the hostile-RF hot paths: trace-occupancy sampling
// (on every planner input build, 25 channels per poll) and full storm
// recovery (strike → quarantine → fallback → expiry → re-converge) on an
// office deployment. When BENCH_JSON_DIR is set (`make bench-json`) it
// persists BENCH_rfenv.json for bench-check.
func BenchmarkRFEnv(b *testing.B) {
	payload := map[string]float64{}

	b.Run("trace-sampling", func(b *testing.B) {
		ts := rfenv.NewTraceSet(1, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
		chans := ts.Channels()
		// Pre-walk a week so steady-state sampling, not lazy extension,
		// dominates the measurement.
		for _, ch := range chans {
			ts.Occupancy(ch, 7*sim.Day)
		}
		var sink float64
		samples := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := sim.Time(i%10080) * sim.Minute // wrap inside the walked week
			for _, ch := range chans {
				sink += ts.Occupancy(ch, at)
				samples++
			}
		}
		b.StopTimer()
		if sink < 0 {
			b.Fatal("impossible occupancy")
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			payload["trace_samples_per_sec"] = float64(samples) / secs
		}
	})

	b.Run("storm-recovery", func(b *testing.B) {
		var passes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := topo.Office(int64(11 + i))
			engine := sim.NewEngine(1)
			opt := backend.DefaultOptions(backend.AlgTurboCA)
			traces := rfenv.NewTraceSet(1, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
			opt.RF = rfenv.NewEnv(traces, []rfenv.Storm{{At: 3 * sim.Hour, LowSub: 52, HighSub: 64}})
			be := backend.New(opt, sc, engine)
			be.Start()
			// Night planning admits DFS; the storm lands at 3h and its NOP
			// expires at 3h30. Recovery = planner passes between the strike
			// and the first post-expiry instant where intent and on-air
			// channels agree again.
			engine.RunUntil(3 * sim.Hour)
			preRuns := be.Service.RunsTotal
			at := engine.Now()
			rounds := 0
			for {
				at += be.Opt.ReconcileInterval
				engine.RunUntil(at)
				if at > 3*sim.Hour+30*sim.Minute && be.Converged() && be.Service.RunsTotal > preRuns {
					break
				}
				if rounds++; rounds > 64 {
					b.Fatal("storm recovery never converged")
				}
			}
			passes = be.Service.RunsTotal - preRuns
		}
		b.StopTimer()
		payload["storm_recovery_passes"] = float64(passes)
	})

	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" {
		return
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Logf("bench json: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_rfenv.json"), append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: %v", err)
	}
}
