package rfenv

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// WACA-style spectrum traces (arXiv 2008.11978): per-channel occupancy
// measured by a sub-6 GHz analyzer comes out as an alternating on-off
// renewal process — idle gaps and energy bursts whose durations are
// heavy-tailed. We reproduce that shape with bounded-Pareto on/off
// durations and a per-burst occupancy level, one independent SplitMix64
// stream per (seed, channel) so any channel's trace is deterministic
// regardless of which other channels exist or in which order they are
// sampled.

// TraceOptions shapes the on-off process.
type TraceOptions struct {
	// MeanOn and MeanOff are the mean burst and gap durations.
	MeanOn  sim.Time
	MeanOff sim.Time
	// Alpha is the Pareto tail exponent for both duration draws; must be
	// > 1 for the mean to exist. Smaller is heavier-tailed.
	Alpha float64
	// OccLo and OccHi bound the per-burst occupancy level, drawn
	// uniformly once per burst.
	OccLo, OccHi float64
}

// DefaultTraceOptions matches the qualitative WACA shape: mostly-idle
// channels with minutes-long energy bursts and a heavy tail.
func DefaultTraceOptions() TraceOptions {
	return TraceOptions{
		MeanOn:  2 * sim.Minute,
		MeanOff: 18 * sim.Minute,
		Alpha:   1.6,
		OccLo:   0.15,
		OccHi:   0.85,
	}
}

func (o TraceOptions) withDefaults() TraceOptions {
	d := DefaultTraceOptions()
	if o.MeanOn <= 0 {
		o.MeanOn = d.MeanOn
	}
	if o.MeanOff <= 0 {
		o.MeanOff = d.MeanOff
	}
	if !(o.Alpha > 1) {
		o.Alpha = d.Alpha
	}
	if o.OccHi <= 0 {
		o.OccLo, o.OccHi = d.OccLo, d.OccHi
	}
	if o.OccLo < 0 {
		o.OccLo = 0
	}
	if o.OccHi > 1 {
		o.OccHi = 1
	}
	if o.OccLo > o.OccHi {
		o.OccLo = o.OccHi
	}
	return o
}

// trace is one channel's lazily-extended step sequence: step i covers
// [end[i-1], end[i]) at occupancy occ[i], abutting from t=0.
type trace struct {
	rng *rand.Rand
	end []sim.Time
	occ []float64
	on  bool // whether the next generated step is a burst
}

func (tr *trace) horizon() sim.Time {
	if len(tr.end) == 0 {
		return 0
	}
	return tr.end[len(tr.end)-1]
}

// TraceSet holds one trace per 20 MHz channel. Sampling lazily extends
// the queried channel's steps, so a TraceSet is cheap until used and
// never pays for channels nobody asks about. Not safe for concurrent
// use — it is engine-affine state like the backend that samples it.
type TraceSet struct {
	opt   TraceOptions
	chans []int // sorted channel numbers
	by    map[int]*trace
}

// NewTraceSet builds traces for the given 20 MHz channel numbers. Every
// channel's process is seeded from (seed, channel) alone.
func NewTraceSet(seed int64, chans []int, opt TraceOptions) *TraceSet {
	ts := &TraceSet{
		opt:   opt.withDefaults(),
		chans: append([]int(nil), chans...),
		by:    make(map[int]*trace, len(chans)),
	}
	sort.Ints(ts.chans)
	for _, ch := range ts.chans {
		ts.by[ch] = &trace{rng: sim.NewRNG(traceSeed(seed, ch))}
	}
	return ts
}

// traceSeed mixes (seed, channel) with the same SplitMix64 finalizer the
// rest of the tree uses for derived streams.
func traceSeed(seed int64, ch int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(ch+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Channels returns the covered channel numbers, sorted. Callers must not
// mutate the returned slice.
func (ts *TraceSet) Channels() []int { return ts.chans }

// Occupancy samples channel ch at time t: 0 when idle (or when ch is not
// covered), the burst's level in (0,1] when occupied.
func (ts *TraceSet) Occupancy(ch int, t sim.Time) float64 {
	tr := ts.by[ch]
	if tr == nil || t < 0 {
		return 0
	}
	ts.extend(tr, t)
	i := sort.Search(len(tr.end), func(i int) bool { return tr.end[i] > t })
	return tr.occ[i]
}

// extend generates steps until the trace covers t. Steps are only ever
// appended in time order from the channel's own stream, so samples are
// independent of query order.
func (ts *TraceSet) extend(tr *trace, t sim.Time) {
	for tr.horizon() <= t {
		var dur sim.Time
		occ := 0.0
		if tr.on {
			dur = boundedPareto(tr.rng, ts.opt.MeanOn, ts.opt.Alpha)
			occ = ts.opt.OccLo + tr.rng.Float64()*(ts.opt.OccHi-ts.opt.OccLo)
		} else {
			dur = boundedPareto(tr.rng, ts.opt.MeanOff, ts.opt.Alpha)
		}
		tr.end = append(tr.end, tr.horizon()+dur)
		tr.occ = append(tr.occ, occ)
		tr.on = !tr.on
	}
}

// boundedPareto draws a Pareto(alpha) duration with the given mean,
// capped at 64x the scale so a single draw cannot freeze a channel for
// a simulated month.
func boundedPareto(rng *rand.Rand, mean sim.Time, alpha float64) sim.Time {
	// Scale xm such that the uncapped mean alpha*xm/(alpha-1) equals mean.
	xm := float64(mean) * (alpha - 1) / alpha
	d := xm / math.Pow(1-rng.Float64(), 1/alpha)
	if max := 64 * xm; d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	return sim.Time(d)
}

// NoiseMap samples every channel at t and returns the occupied ones as
// channel -> occupancy, or nil when the whole band is quiet. The result
// is freshly allocated; callers may keep it.
func (ts *TraceSet) NoiseMap(t sim.Time) map[int]float64 {
	var m map[int]float64
	for _, ch := range ts.chans {
		if o := ts.Occupancy(ch, t); o > 0 {
			if m == nil {
				m = make(map[int]float64)
			}
			m[ch] = o
		}
	}
	return m
}

// Step is one recorded-trace step: the channel holds Occ from the
// previous step's End (0 for the first) until End.
type Step struct {
	End sim.Time
	Occ float64
}

// Recording is a materialized trace in WACA's recorded-trace shape: per
// channel, an abutting step sequence from t=0 to the recording horizon.
type Recording struct {
	ByChan map[int][]Step
}

// Record materializes every channel's trace up to horizon. The final
// step of each channel is clamped to end exactly at horizon, so two
// recordings of the same set at different horizons agree on the overlap.
func (ts *TraceSet) Record(horizon sim.Time) *Recording {
	r := &Recording{ByChan: make(map[int][]Step, len(ts.chans))}
	for _, ch := range ts.chans {
		tr := ts.by[ch]
		ts.extend(tr, horizon)
		var steps []Step
		for i, end := range tr.end {
			if end > horizon {
				steps = append(steps, Step{End: horizon, Occ: tr.occ[i]})
				break
			}
			steps = append(steps, Step{End: end, Occ: tr.occ[i]})
		}
		r.ByChan[ch] = steps
	}
	return r
}

// Occupancy samples a recording; 0 beyond its horizon or off-trace.
func (r *Recording) Occupancy(ch int, t sim.Time) float64 {
	steps := r.ByChan[ch]
	if len(steps) == 0 || t < 0 {
		return 0
	}
	i := sort.Search(len(steps), func(i int) bool { return steps[i].End > t })
	if i == len(steps) {
		return 0
	}
	return steps[i].Occ
}

// Marshal renders the recording in the interchange format: one
// "channel end_us occupancy" line per step, channels ascending, steps in
// time order. Occupancy uses shortest round-tripping notation so
// Marshal/ParseRecording is lossless.
func (r *Recording) Marshal() []byte {
	var chans []int
	for ch := range r.ByChan {
		chans = append(chans, ch)
	}
	sort.Ints(chans)
	var buf bytes.Buffer
	buf.WriteString("# rfenv trace v1: chan end_us occupancy\n")
	for _, ch := range chans {
		for _, s := range r.ByChan[ch] {
			buf.WriteString(strconv.Itoa(ch))
			buf.WriteByte(' ')
			buf.WriteString(strconv.FormatInt(int64(s.End), 10))
			buf.WriteByte(' ')
			buf.WriteString(strconv.FormatFloat(s.Occ, 'g', -1, 64))
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// ParseRecording parses Marshal's output (comment lines starting with
// '#' and blank lines are skipped).
func ParseRecording(data []byte) (*Recording, error) {
	r := &Recording{ByChan: make(map[int][]Step)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		fields := bytes.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("rfenv: line %d: want 3 fields, got %d", line, len(fields))
		}
		ch, err := strconv.Atoi(string(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("rfenv: line %d: channel: %v", line, err)
		}
		end, err := strconv.ParseInt(string(fields[1]), 10, 64)
		if err != nil || end < 0 {
			return nil, fmt.Errorf("rfenv: line %d: bad end %q", line, fields[1])
		}
		occ, err := strconv.ParseFloat(string(fields[2]), 64)
		if err != nil || occ < 0 || occ > 1 || math.IsNaN(occ) {
			return nil, fmt.Errorf("rfenv: line %d: bad occupancy %q", line, fields[2])
		}
		steps := r.ByChan[ch]
		if n := len(steps); n > 0 && sim.Time(end) <= steps[n-1].End {
			return nil, fmt.Errorf("rfenv: line %d: non-increasing step end for chan %d", line, ch)
		}
		r.ByChan[ch] = append(steps, Step{End: sim.Time(end), Occ: occ})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rfenv: %v", err)
	}
	return r, nil
}
