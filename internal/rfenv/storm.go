package rfenv

import (
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// Radar storms. A weather-radar sweep is not a per-AP event: every AP
// whose bonded channel touches the swept frequency range detects it in
// the same cadence window. A Storm therefore names a frequency range,
// and the backend strikes every covered DFS sub-channel at once —
// vacating every AP on them and quarantining the range for NOPDuration.

// Storm is one correlated sweep: at At, radar appears across the 20 MHz
// DFS sub-channels numbered LowSub..HighSub inclusive.
type Storm struct {
	At      sim.Time
	LowSub  int
	HighSub int
}

// Subs lists the struck DFS 20 MHz sub-channel numbers, ascending.
// Non-DFS numbers inside the range are skipped — radar detection only
// exists on DFS channels.
func (s Storm) Subs() []int {
	var out []int
	for n := s.LowSub; n <= s.HighSub; n += 4 {
		if spectrum.IsDFS20(n) {
			out = append(out, n)
		}
	}
	return out
}

// RadarBands are the contiguous DFS ranges a single sweep covers: the
// two halves of U-NII-2C split around the weather-radar sub-band, and
// U-NII-2A. A storm strikes one of these wholesale.
var RadarBands = [][2]int{
	{52, 64},   // U-NII-2A
	{100, 112}, // U-NII-2C lower
	{116, 128}, // U-NII-2C terminal-doppler weather radar range
	{132, 144}, // U-NII-2C upper
}

// StormSchedule generates a deterministic storm timeline: Poisson
// arrivals at perDay sweeps per day over [0, horizon), each striking one
// RadarBands entry. The schedule depends only on (seed, horizon,
// perDay), so a fleet controller can hand the same slice to every
// network and the whole fleet is struck at the same instants — the
// correlated-hostility case uncorrelated per-AP injection cannot model.
func StormSchedule(seed int64, horizon sim.Time, perDay float64) []Storm {
	if perDay <= 0 || horizon <= 0 {
		return nil
	}
	rng := sim.NewRNG(seed ^ 0x5707_2a2a)
	mean := float64(sim.Day) / perDay
	var out []Storm
	t := sim.Time(0)
	for {
		t += sim.Time(rng.ExpFloat64() * mean)
		if t >= horizon {
			return out
		}
		band := RadarBands[rng.Intn(len(RadarBands))]
		out = append(out, Storm{At: t, LowSub: band[0], HighSub: band[1]})
	}
}
