package rfenv_test

import (
	"bytes"
	"testing"

	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// TestTraceDeterminism pins the per-(seed, channel) independence
// contract: a channel's trace must not depend on which other channels the
// set covers or in which order samples are taken.
func TestTraceDeterminism(t *testing.T) {
	opt := rfenv.DefaultTraceOptions()
	a := rfenv.NewTraceSet(7, []int{36, 52, 149}, opt)
	b := rfenv.NewTraceSet(7, []int{52}, opt)

	// Query a forward, b backward, over the same grid across 12 hours.
	var grid []sim.Time
	for ts := sim.Time(0); ts < 12*sim.Hour; ts += 7 * sim.Minute {
		grid = append(grid, ts)
	}
	fwd := make([]float64, len(grid))
	bwd := make([]float64, len(grid))
	for i, ts := range grid {
		fwd[i] = a.Occupancy(52, ts)
	}
	for i := len(grid) - 1; i >= 0; i-- {
		bwd[i] = b.Occupancy(52, grid[i])
	}
	for i := range fwd {
		if fwd[i] != bwd[i] {
			t.Fatalf("sample %d: forward big set %v != backward small set %v", i, fwd[i], bwd[i])
		}
	}

	// A different seed must produce a different trace.
	c := rfenv.NewTraceSet(8, []int{52}, opt)
	same := true
	for ts := sim.Time(0); ts < 12*sim.Hour; ts += 7 * sim.Minute {
		if c.Occupancy(52, ts) != a.Occupancy(52, ts) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical traces")
	}
}

// TestTraceShape checks the on-off renewal shape: occupancy stays inside
// [0,1], burst levels stay inside [OccLo, OccHi], and a day of samples
// sees both idle gaps and bursts on a default-parameter channel.
func TestTraceShape(t *testing.T) {
	opt := rfenv.DefaultTraceOptions()
	ts := rfenv.NewTraceSet(3, rfenv.Default5GHzChannels(), opt)
	idle, busy := 0, 0
	for _, ch := range ts.Channels() {
		for at := sim.Time(0); at < sim.Day; at += sim.Minute {
			o := ts.Occupancy(ch, at)
			switch {
			case o == 0:
				idle++
			case o >= opt.OccLo && o <= opt.OccHi:
				busy++
			default:
				t.Fatalf("chan %d at %v: occupancy %v outside {0} ∪ [%v,%v]", ch, at, o, opt.OccLo, opt.OccHi)
			}
		}
	}
	if idle == 0 || busy == 0 {
		t.Fatalf("degenerate trace: idle=%d busy=%d samples", idle, busy)
	}
	// Mostly-idle by construction (MeanOff >> MeanOn).
	if busy > idle {
		t.Fatalf("band busier than idle (busy=%d idle=%d) under mostly-idle defaults", busy, idle)
	}
	if ts.Occupancy(999, sim.Hour) != 0 {
		t.Fatal("uncovered channel must sample 0")
	}
	if ts.Occupancy(36, -sim.Second) != 0 {
		t.Fatal("negative time must sample 0")
	}
}

// TestNoiseMap checks the planner-facing view: only occupied channels
// appear, nil when the band is quiet, and values match Occupancy.
func TestNoiseMap(t *testing.T) {
	ts := rfenv.NewTraceSet(5, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
	sawEntries := false
	for at := sim.Time(0); at < 12*sim.Hour; at += 13 * sim.Minute {
		m := ts.NoiseMap(at)
		for ch, v := range m {
			sawEntries = true
			if v <= 0 || v > 1 {
				t.Fatalf("noise map value %v out of (0,1]", v)
			}
			if got := ts.Occupancy(ch, at); got != v {
				t.Fatalf("map %v != occupancy %v", v, got)
			}
		}
	}
	if !sawEntries {
		t.Fatal("12 hours with no occupied sample on any channel")
	}
}

// TestRecordingRoundTrip pins the recorded-trace interchange: a marshaled
// recording parses back losslessly and agrees with the live trace inside
// the horizon, and samples 0 beyond it.
func TestRecordingRoundTrip(t *testing.T) {
	const horizon = 6 * sim.Hour
	ts := rfenv.NewTraceSet(11, []int{36, 52, 100, 165}, rfenv.DefaultTraceOptions())
	rec := ts.Record(horizon)
	data := rec.Marshal()
	back, err := rfenv.ParseRecording(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !bytes.Equal(back.Marshal(), data) {
		t.Fatal("marshal -> parse -> marshal not byte-identical")
	}
	for _, ch := range ts.Channels() {
		for at := sim.Time(0); at < horizon; at += 97 * sim.Second {
			if live, got := ts.Occupancy(ch, at), back.Occupancy(ch, at); live != got {
				t.Fatalf("chan %d at %v: recording %v != live %v", ch, at, got, live)
			}
		}
		if back.Occupancy(ch, horizon+sim.Second) != 0 {
			t.Fatal("recording must sample 0 beyond its horizon")
		}
	}
}

func TestParseRecordingRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"36 100",                 // field count
		"x 100 0.5",              // channel
		"36 -1 0.5",              // negative end
		"36 100 1.5",             // occupancy range
		"36 100 NaN",             // occupancy NaN
		"36 200 0.5\n36 100 0.2", // non-increasing
	} {
		if _, err := rfenv.ParseRecording([]byte(bad)); err == nil {
			t.Fatalf("ParseRecording(%q) accepted malformed input", bad)
		}
	}
	r, err := rfenv.ParseRecording([]byte("# comment\n\n36 100 0.5\n"))
	if err != nil || len(r.ByChan[36]) != 1 {
		t.Fatalf("comment/blank skipping broken: %v %v", r, err)
	}
}

// TestQuarantineWindow pins the NOP semantics: a struck sub-channel is
// blocked for exactly [strike, strike+NOPDuration) — still blocked one
// microsecond before expiry, free exactly at it — and a second strike
// extends, never shortens.
func TestQuarantineWindow(t *testing.T) {
	q := rfenv.NewQuarantine()
	const t0 = 2 * sim.Hour
	q.Strike([]int{52}, t0)
	if !q.SubBlocked(52, t0) || !q.SubBlocked(52, t0+rfenv.NOPDuration-1) {
		t.Fatal("not blocked inside the NOP window")
	}
	if q.SubBlocked(52, t0+rfenv.NOPDuration) {
		t.Fatal("still blocked exactly at expiry — the window must be half-open")
	}
	// Re-strike mid-window: expiry moves to the later strike's.
	q.Strike([]int{52}, t0+10*sim.Minute)
	if !q.SubBlocked(52, t0+rfenv.NOPDuration+9*sim.Minute) {
		t.Fatal("re-strike did not extend the NOP")
	}
	// A strike never shortens an existing window.
	q2 := rfenv.NewQuarantine()
	q2.Strike([]int{60}, t0+20*sim.Minute)
	q2.Strike([]int{60}, t0)
	if !q2.SubBlocked(60, t0+20*sim.Minute+rfenv.NOPDuration-1) {
		t.Fatal("earlier strike shortened a later window")
	}
}

// TestQuarantinePropagation pins bonded-width propagation: striking one
// 20 MHz sub-channel blocks every 5 GHz channel whose bond covers it, at
// every width, and nothing else.
func TestQuarantinePropagation(t *testing.T) {
	q := rfenv.NewQuarantine()
	at := sim.Hour
	q.Strike([]int{52}, at)

	blocked := 0
	for _, w := range []spectrum.Width{spectrum.W20, spectrum.W40, spectrum.W80, spectrum.W160} {
		for _, c := range spectrum.Channels(spectrum.Band5, w, true) {
			covers := false
			for _, s := range c.Sub20Numbers() {
				if s == 52 {
					covers = true
				}
			}
			if got := q.Blocked(c, at); got != covers {
				t.Fatalf("chan %d width %v: Blocked=%v, covers struck sub=%v", c.Number, w, got, covers)
			}
			if covers {
				blocked++
			}
		}
	}
	// Exactly one channel per width covers sub 52: w20 52, w40 54, w80 58,
	// w160 50.
	if blocked != 4 {
		t.Fatalf("expected 4 covering channels across widths, found %d", blocked)
	}
	// Other bands can never be quarantined.
	for _, c := range spectrum.Channels(spectrum.Band2G4, spectrum.W20, true) {
		if q.Blocked(c, at) {
			t.Fatal("2.4 GHz channel reported quarantined")
		}
	}
}

func TestQuarantineBlockedSetAndExpiry(t *testing.T) {
	q := rfenv.NewQuarantine()
	q.Strike([]int{100, 104}, 0)
	set := q.BlockedSet(sim.Minute)
	if len(set) != 2 || !set[100] || !set[104] {
		t.Fatalf("BlockedSet = %v, want {100,104}", set)
	}
	if got := q.ActiveSubs(sim.Minute); len(got) != 2 || got[0] != 100 || got[1] != 104 {
		t.Fatalf("ActiveSubs = %v", got)
	}
	// After expiry: nil set, zero active, and the table GCs itself.
	if set := q.BlockedSet(rfenv.NOPDuration); set != nil {
		t.Fatalf("expired BlockedSet = %v, want nil", set)
	}
	if q.Active(rfenv.NOPDuration) != 0 {
		t.Fatal("Active nonzero after expiry")
	}
}

func TestStormScheduleDeterministicAndShaped(t *testing.T) {
	const horizon = 30 * sim.Day
	a := rfenv.StormSchedule(42, horizon, 2)
	b := rfenv.StormSchedule(42, horizon, 2)
	if len(a) == 0 {
		t.Fatal("no storms in 30 days at 2/day")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storm %d differs between identical calls", i)
		}
	}
	// Poisson at 2/day over 30 days: mean 60; accept a wide band.
	if len(a) < 30 || len(a) > 100 {
		t.Fatalf("storm count %d implausible for 2/day over 30 days", len(a))
	}
	last := sim.Time(-1)
	for _, s := range a {
		if s.At <= last || s.At >= horizon {
			t.Fatalf("storm at %v out of order or beyond horizon", s.At)
		}
		last = s.At
		subs := s.Subs()
		if len(subs) == 0 {
			t.Fatalf("storm %+v strikes nothing", s)
		}
		for _, n := range subs {
			if !spectrum.IsDFS20(n) || n < s.LowSub || n > s.HighSub {
				t.Fatalf("storm %+v struck invalid sub %d", s, n)
			}
		}
	}
	if diff := rfenv.StormSchedule(43, horizon, 2); len(diff) == len(a) && diff[0] == a[0] {
		t.Fatal("different seeds produced the same schedule head")
	}
	if rfenv.StormSchedule(1, horizon, 0) != nil || rfenv.StormSchedule(1, 0, 2) != nil {
		t.Fatal("degenerate schedules must be nil")
	}
}

// TestStormSubsSkipNonDFS: a range reaching into non-DFS spectrum only
// strikes its DFS members — radar detection does not exist elsewhere.
func TestStormSubsSkipNonDFS(t *testing.T) {
	s := rfenv.Storm{LowSub: 36, HighSub: 64}
	for _, n := range s.Subs() {
		if n < 52 {
			t.Fatalf("non-DFS sub %d struck", n)
		}
	}
	got := rfenv.Storm{LowSub: 100, HighSub: 112}.Subs()
	want := []int{100, 104, 108, 112}
	if len(got) != len(want) {
		t.Fatalf("Subs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subs = %v, want %v", got, want)
		}
	}
}

func TestDefault5GHzChannels(t *testing.T) {
	chans := rfenv.Default5GHzChannels()
	if len(chans) != 25 {
		t.Fatalf("expected the 25 US 5 GHz 20MHz channels, got %d", len(chans))
	}
}
