// Package spectrum models the unlicensed spectrum available to 802.11
// devices in the United States: the 2.4 GHz ISM band, the 5 GHz U-NII
// bands, and the 6 GHz U-NII-5/-7 bands, including channel bonding
// (40/80/160 MHz), Dynamic Frequency Selection (DFS) restrictions, and
// channel overlap computation.
//
// The 5 GHz channel inventory matches Section 4.1.1 of the paper:
// twenty-five 20 MHz, twelve 40 MHz, six 80 MHz and two 160 MHz channels,
// of which only nine/four/two/zero are usable without DFS certification;
// plus three non-overlapping channels at 2.4 GHz. The 6 GHz inventory
// covers the two US standard-power ranges (U-NII-5, 5.925-6.425 GHz, and
// U-NII-7, 6.525-6.875 GHz); no 6 GHz channel requires DFS.
package spectrum

import "fmt"

// Band identifies a frequency band.
type Band int

const (
	// Band2G4 is the 2.4 GHz ISM band.
	Band2G4 Band = iota
	// Band5 is the 5 GHz U-NII band.
	Band5
	// Band6 is the 6 GHz band (US standard-power: U-NII-5 and U-NII-7).
	Band6
)

func (b Band) String() string {
	switch b {
	case Band2G4:
		return "2.4GHz"
	case Band5:
		return "5GHz"
	case Band6:
		return "6GHz"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Width is a channel width in MHz.
type Width int

// Channel widths defined by 802.11n/ac.
const (
	W20  Width = 20
	W40  Width = 40
	W80  Width = 80
	W160 Width = 160
)

// Widths lists all widths narrow-to-wide.
var Widths = []Width{W20, W40, W80, W160}

func (w Width) String() string { return fmt.Sprintf("%dMHz", int(w)) }

// Valid reports whether w is a defined 802.11 channel width.
func (w Width) Valid() bool {
	switch w {
	case W20, W40, W80, W160:
		return true
	}
	return false
}

// Channel is one assignable (center, width) tuple.
type Channel struct {
	Band   Band
	Number int   // IEEE channel number of the center frequency
	Width  Width // occupied bandwidth
	DFS    bool  // any covered 20 MHz sub-channel requires DFS
}

func (c Channel) String() string {
	dfs := ""
	if c.DFS {
		dfs = "/DFS"
	}
	return fmt.Sprintf("ch%d@%s%s", c.Number, c.Width, dfs)
}

// CenterMHz returns the channel's center frequency in MHz.
func (c Channel) CenterMHz() float64 {
	switch c.Band {
	case Band2G4:
		return 2407 + 5*float64(c.Number)
	case Band6:
		return 5950 + 5*float64(c.Number)
	}
	return 5000 + 5*float64(c.Number)
}

// LowMHz returns the lower edge of the occupied bandwidth.
func (c Channel) LowMHz() float64 { return c.CenterMHz() - float64(c.Width)/2 }

// HighMHz returns the upper edge of the occupied bandwidth.
func (c Channel) HighMHz() float64 { return c.CenterMHz() + float64(c.Width)/2 }

// Overlaps reports whether the occupied bandwidths of a and b intersect.
// An 80 MHz transmission is corrupted by interference on any of its four
// 20 MHz sub-channels, so any spectral intersection counts (§4.1.1).
func (c Channel) Overlaps(o Channel) bool {
	if c.Band != o.Band {
		return false
	}
	return c.LowMHz() < o.HighMHz() && o.LowMHz() < c.HighMHz()
}

// Sub20Numbers returns the IEEE numbers of the 20 MHz sub-channels covered
// by c, lowest first. For a 20 MHz channel this is just {c.Number}.
func (c Channel) Sub20Numbers() []int {
	if c.Band == Band2G4 || c.Width == W20 {
		return []int{c.Number}
	}
	n := int(c.Width) / 20
	// 20 MHz neighbours at 5 and 6 GHz are 4 channel numbers apart.
	first := c.Number - 2*(n-1)
	out := make([]int, n)
	for i := range out {
		out[i] = first + i*4
	}
	return out
}

// Primary20 returns the default primary 20 MHz sub-channel (the lowest).
func (c Channel) Primary20() int { return c.Sub20Numbers()[0] }

// dfs5 is the set of 5 GHz 20 MHz channel numbers subject to DFS in the US
// (U-NII-2A and U-NII-2C).
var dfs5 = map[int]bool{
	52: true, 56: true, 60: true, 64: true,
	100: true, 104: true, 108: true, 112: true, 116: true,
	120: true, 124: true, 128: true, 132: true, 136: true,
	140: true, 144: true,
}

// IsDFS20 reports whether 5 GHz 20 MHz channel number n requires DFS.
func IsDFS20(n int) bool { return dfs5[n] }

var (
	us5w20  = []int{36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140, 144, 149, 153, 157, 161, 165}
	us5w40  = []int{38, 46, 54, 62, 102, 110, 118, 126, 134, 142, 151, 159}
	us5w80  = []int{42, 58, 106, 122, 138, 155}
	us5w160 = []int{50, 114}
	us24w20 = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	// NonOverlapping24 is the classic 1/6/11 plan.
	NonOverlapping24 = []int{1, 6, 11}
)

// 6 GHz US standard-power channels: U-NII-5 (ch 1-93) and U-NII-7
// (ch 117-181). The two ranges are disjoint — the U-NII-6 gap between
// them is low-power-indoor only — so bonded channels never straddle it:
// sub-channel 117 has no 40 MHz partner (ch 113 sits in U-NII-6) and the
// widest U-NII-7 160 MHz channel is ch 143.
var (
	us6w20 = []int{
		1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 41, 45, 49, 53, 57, 61, 65, 69, 73, 77, 81, 85, 89, 93,
		117, 121, 125, 129, 133, 137, 141, 145, 149, 153, 157, 161, 165, 169, 173, 177, 181,
	}
	us6w40 = []int{
		3, 11, 19, 27, 35, 43, 51, 59, 67, 75, 83, 91,
		123, 131, 139, 147, 155, 163, 171, 179,
	}
	us6w80  = []int{7, 23, 39, 55, 71, 87, 135, 151, 167}
	us6w160 = []int{15, 47, 79, 143}
)

func build5(numbers []int, w Width) []Channel {
	out := make([]Channel, 0, len(numbers))
	for _, n := range numbers {
		c := Channel{Band: Band5, Number: n, Width: w}
		for _, sub := range c.Sub20Numbers() {
			if dfs5[sub] {
				c.DFS = true
				break
			}
		}
		out = append(out, c)
	}
	return out
}

func build6(numbers []int, w Width) []Channel {
	out := make([]Channel, 0, len(numbers))
	for _, n := range numbers {
		// No 6 GHz channel requires DFS in the US.
		out = append(out, Channel{Band: Band6, Number: n, Width: w})
	}
	return out
}

// Channels returns the US-regulatory channel list for band and width.
// When allowDFS is false, channels whose bandwidth touches a DFS
// sub-channel are excluded. The result is freshly allocated.
//
// The 2.4 GHz band only supports 20 MHz here: 40 MHz at 2.4 GHz is
// catastrophic in enterprise deployments and Meraki APs do not use it.
func Channels(band Band, w Width, allowDFS bool) []Channel {
	if band == Band2G4 {
		if w != W20 {
			return nil
		}
		out := make([]Channel, 0, len(NonOverlapping24))
		for _, n := range NonOverlapping24 {
			out = append(out, Channel{Band: Band2G4, Number: n, Width: W20})
		}
		return out
	}
	if band == Band6 {
		var src []int
		switch w {
		case W20:
			src = us6w20
		case W40:
			src = us6w40
		case W80:
			src = us6w80
		case W160:
			src = us6w160
		default:
			return nil
		}
		return build6(src, w)
	}
	var src []int
	switch w {
	case W20:
		src = us5w20
	case W40:
		src = us5w40
	case W80:
		src = us5w80
	case W160:
		src = us5w160
	default:
		return nil
	}
	all := build5(src, w)
	if allowDFS {
		return all
	}
	out := all[:0:0]
	for _, c := range all {
		if !c.DFS {
			out = append(out, c)
		}
	}
	return out
}

// AllChannels returns every assignable channel on band up to maxWidth.
func AllChannels(band Band, maxWidth Width, allowDFS bool) []Channel {
	var out []Channel
	for _, w := range Widths {
		if w > maxWidth {
			break
		}
		out = append(out, Channels(band, w, allowDFS)...)
	}
	return out
}

// ChannelAt returns the channel with the given band/number/width, or false
// if it is not a valid US channel.
func ChannelAt(band Band, number int, w Width) (Channel, bool) {
	for _, c := range Channels(band, w, true) {
		if c.Number == number {
			return c, true
		}
	}
	return Channel{}, false
}

// Narrower returns the same spectrum position at the next narrower width,
// anchored at the primary 20 MHz sub-channel. Narrowing a 20 MHz channel
// returns it unchanged.
func Narrower(c Channel) Channel {
	if c.Width == W20 {
		return c
	}
	want := c.Primary20()
	for _, cand := range Channels(c.Band, c.Width/2, true) {
		if cand.Primary20() == want {
			return cand
		}
	}
	// Should be unreachable for valid channels; fall back to 20 MHz primary.
	out, _ := ChannelAt(c.Band, want, W20)
	return out
}

// Wider returns the bonded channel one width step up that contains c, or
// ok=false if no such US channel exists (e.g. widening ch165).
func Wider(c Channel) (Channel, bool) {
	if c.Band == Band2G4 || c.Width == W160 {
		return Channel{}, false
	}
	for _, cand := range Channels(c.Band, c.Width*2, true) {
		if containsAll(cand.Sub20Numbers(), c.Sub20Numbers()) {
			return cand, true
		}
	}
	return Channel{}, false
}

func containsAll(haystack, needles []int) bool {
	set := make(map[int]bool, len(haystack))
	for _, h := range haystack {
		set[h] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}

// CACDuration is the Channel Availability Check wait mandated before
// transmitting on a DFS channel (§4.5.2): one minute, expressed in
// microseconds to match sim.Time.
const CACDuration = 60 * 1000 * 1000
