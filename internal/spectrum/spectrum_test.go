package spectrum

import (
	"testing"
	"testing/quick"
)

// TestUSChannelInventory pins the §4.1.1 regulatory counts: twenty-five
// 20 MHz, twelve 40 MHz, six 80 MHz and two 160 MHz channels at 5 GHz;
// without DFS certification only nine/four/two/zero remain.
func TestUSChannelInventory(t *testing.T) {
	cases := []struct {
		w        Width
		all, non int
	}{
		{W20, 25, 9},
		{W40, 12, 4},
		{W80, 6, 2},
		{W160, 2, 0},
	}
	for _, c := range cases {
		if got := len(Channels(Band5, c.w, true)); got != c.all {
			t.Errorf("%v with DFS: %d channels, want %d", c.w, got, c.all)
		}
		if got := len(Channels(Band5, c.w, false)); got != c.non {
			t.Errorf("%v without DFS: %d channels, want %d", c.w, got, c.non)
		}
	}
	if got := len(Channels(Band2G4, W20, true)); got != 3 {
		t.Errorf("2.4 GHz: %d channels, want 3 non-overlapping", got)
	}
	if Channels(Band2G4, W40, true) != nil {
		t.Error("2.4 GHz should not offer 40 MHz")
	}
}

func TestSub20Numbers(t *testing.T) {
	c, ok := ChannelAt(Band5, 42, W80)
	if !ok {
		t.Fatal("ch42@80 not found")
	}
	want := []int{36, 40, 44, 48}
	got := c.Sub20Numbers()
	if len(got) != 4 {
		t.Fatalf("sub20 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sub20 = %v, want %v", got, want)
		}
	}
	if c.Primary20() != 36 {
		t.Fatalf("primary = %d", c.Primary20())
	}
}

func TestDFSPropagation(t *testing.T) {
	// ch50@160 spans 36-64; 52-64 are DFS, so the bonded channel is DFS.
	c, ok := ChannelAt(Band5, 50, W160)
	if !ok || !c.DFS {
		t.Fatalf("ch50@160 should exist and be DFS: %+v ok=%v", c, ok)
	}
	// ch42@80 spans 36-48, all non-DFS.
	c, _ = ChannelAt(Band5, 42, W80)
	if c.DFS {
		t.Fatal("ch42@80 should not be DFS")
	}
	if !IsDFS20(52) || IsDFS20(36) || IsDFS20(149) {
		t.Fatal("IsDFS20 misclassifies")
	}
}

func TestOverlaps(t *testing.T) {
	ch36, _ := ChannelAt(Band5, 36, W20)
	ch40, _ := ChannelAt(Band5, 40, W20)
	ch42, _ := ChannelAt(Band5, 42, W80)
	ch155, _ := ChannelAt(Band5, 155, W80)
	if ch36.Overlaps(ch40) {
		t.Error("adjacent 20 MHz channels should not overlap")
	}
	if !ch42.Overlaps(ch36) || !ch42.Overlaps(ch40) {
		t.Error("80 MHz channel must overlap its 20 MHz sub-channels")
	}
	if ch42.Overlaps(ch155) {
		t.Error("ch42 and ch155 are disjoint")
	}
	// Cross-band never overlaps.
	ch1 := Channel{Band: Band2G4, Number: 1, Width: W20}
	if ch1.Overlaps(ch36) {
		t.Error("cross-band overlap")
	}
	// 2.4 GHz adjacent channels DO overlap (5 MHz spacing, 20 MHz width).
	ch3 := Channel{Band: Band2G4, Number: 3, Width: W20}
	if !ch1.Overlaps(ch3) {
		t.Error("2.4 GHz ch1/ch3 should overlap")
	}
	ch6 := Channel{Band: Band2G4, Number: 6, Width: W20}
	if ch1.Overlaps(ch6) {
		t.Error("2.4 GHz ch1/ch6 should not overlap")
	}
}

func TestWiderNarrowerRoundTrip(t *testing.T) {
	for _, c := range Channels(Band5, W20, true) {
		wide, ok := Wider(c)
		if !ok {
			if c.Number != 165 {
				t.Errorf("only ch165 lacks a 40 MHz parent, got %v", c)
			}
			continue
		}
		if wide.Width != W40 {
			t.Errorf("Wider(%v) = %v", c, wide)
		}
		if !wide.Overlaps(c) {
			t.Errorf("Wider(%v) = %v does not contain it", c, wide)
		}
	}
	c80, _ := ChannelAt(Band5, 42, W80)
	n := Narrower(c80)
	if n.Width != W40 || n.Primary20() != 36 {
		t.Fatalf("Narrower(ch42@80) = %v", n)
	}
	n20 := Narrower(Narrower(n))
	if n20.Width != W20 || n20.Number != 36 {
		t.Fatalf("double Narrower = %v", n20)
	}
}

// Property: every bonded channel's sub-channels are valid 20 MHz US
// channels, and overlap is symmetric.
func TestQuickChannelProperties(t *testing.T) {
	all := AllChannels(Band5, W160, true)
	valid20 := map[int]bool{}
	for _, c := range Channels(Band5, W20, true) {
		valid20[c.Number] = true
	}
	for _, c := range all {
		for _, s := range c.Sub20Numbers() {
			if !valid20[s] {
				t.Fatalf("%v contains invalid sub-channel %d", c, s)
			}
		}
	}
	f := func(i, j uint8) bool {
		a := all[int(i)%len(all)]
		b := all[int(j)%len(all)]
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencies(t *testing.T) {
	ch36, _ := ChannelAt(Band5, 36, W20)
	if ch36.CenterMHz() != 5180 {
		t.Fatalf("ch36 center = %v", ch36.CenterMHz())
	}
	ch1 := Channel{Band: Band2G4, Number: 1, Width: W20}
	if ch1.CenterMHz() != 2412 {
		t.Fatalf("ch1 center = %v", ch1.CenterMHz())
	}
	if ch36.LowMHz() != 5170 || ch36.HighMHz() != 5190 {
		t.Fatalf("ch36 edges = %v..%v", ch36.LowMHz(), ch36.HighMHz())
	}
}

func TestAllChannelsWidthCap(t *testing.T) {
	for _, c := range AllChannels(Band5, W40, true) {
		if c.Width > W40 {
			t.Fatalf("width cap violated: %v", c)
		}
	}
	// 25 + 12 channels up to 40 MHz.
	if got := len(AllChannels(Band5, W40, true)); got != 37 {
		t.Fatalf("AllChannels(<=40) = %d, want 37", got)
	}
}

func TestChannelAtUnknown(t *testing.T) {
	if _, ok := ChannelAt(Band5, 37, W20); ok {
		t.Fatal("ch37 should not exist")
	}
	if _, ok := ChannelAt(Band5, 36, W160); ok {
		t.Fatal("ch36@160 should not exist (center is 50)")
	}
}

func TestStrings(t *testing.T) {
	c, _ := ChannelAt(Band5, 58, W80)
	if c.String() != "ch58@80MHz/DFS" {
		t.Fatalf("String = %q", c.String())
	}
	if Band5.String() != "5GHz" || Band2G4.String() != "2.4GHz" {
		t.Fatal("band strings")
	}
}
