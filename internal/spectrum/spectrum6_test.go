package spectrum

import "testing"

// 6 GHz (U-NII-5/-7) channelization tests. The band uses the
// center = 5950 + 5*number formula; bonded channels must stay inside one
// U-NII range (no bond straddles the U-NII-6 gap between channels 93 and
// 117), and nothing at 6 GHz is DFS.

func TestBand6ChannelCounts(t *testing.T) {
	for _, tc := range []struct {
		w    Width
		want int
	}{
		{W20, 24 + 17},
		{W40, 12 + 8},
		{W80, 6 + 3},
		{W160, 3 + 1},
	} {
		got := Channels(Band6, tc.w, true)
		if len(got) != tc.want {
			t.Fatalf("Band6 %v: %d channels, want %d", tc.w, len(got), tc.want)
		}
		// allowDFS must not matter: 6 GHz has no DFS.
		if n := len(Channels(Band6, tc.w, false)); n != tc.want {
			t.Fatalf("Band6 %v without DFS: %d channels, want %d", tc.w, n, tc.want)
		}
		for _, c := range got {
			if c.DFS {
				t.Fatalf("6 GHz channel %v marked DFS", c)
			}
			if c.Band != Band6 || c.Width != tc.w {
				t.Fatalf("malformed channel %+v", c)
			}
		}
	}
}

func TestBand6CenterFrequencies(t *testing.T) {
	for _, tc := range []struct {
		number int
		w      Width
		center float64
	}{
		{1, W20, 5955},    // first U-NII-5 20 MHz
		{93, W20, 6415},   // last U-NII-5 20 MHz
		{117, W20, 6535},  // first U-NII-7 20 MHz
		{181, W20, 6855},  // last U-NII-7 20 MHz
		{7, W80, 5985},    // first U-NII-5 80 MHz
		{15, W160, 6025},  // first U-NII-5 160 MHz
		{143, W160, 6665}, // the single U-NII-7 160 MHz
	} {
		c, ok := ChannelAt(Band6, tc.number, tc.w)
		if !ok {
			t.Fatalf("ChannelAt(Band6, %d, %v) missing", tc.number, tc.w)
		}
		if got := c.CenterMHz(); got != tc.center {
			t.Fatalf("chan %d %v center %v MHz, want %v", tc.number, tc.w, got, tc.center)
		}
	}
	if _, ok := ChannelAt(Band6, 97, W20); ok {
		t.Fatal("channel 97 sits in the U-NII-6 gap and must not exist")
	}
}

// TestBand6BondingConsistency: every bonded channel's 20 MHz sub-channels
// exist as Band6 20 MHz channels, and its frequency span equals the union
// of theirs — so a bond can never straddle the U-NII-6 gap.
func TestBand6BondingConsistency(t *testing.T) {
	valid20 := map[int]bool{}
	for _, c := range Channels(Band6, W20, true) {
		valid20[c.Number] = true
	}
	for _, w := range []Width{W40, W80, W160} {
		for _, c := range Channels(Band6, w, true) {
			subs := c.Sub20Numbers()
			if len(subs) != int(w)/20 {
				t.Fatalf("%v: %d sub-channels, want %d", c, len(subs), int(w)/20)
			}
			for _, n := range subs {
				if !valid20[n] {
					t.Fatalf("%v covers sub %d, which is not a Band6 20 MHz channel", c, n)
				}
				sc, _ := ChannelAt(Band6, n, W20)
				if sc.LowMHz() < c.LowMHz()-1e-9 || sc.HighMHz() > c.HighMHz()+1e-9 {
					t.Fatalf("%v sub %d [%v,%v] outside bond [%v,%v]",
						c, n, sc.LowMHz(), sc.HighMHz(), c.LowMHz(), c.HighMHz())
				}
			}
		}
	}
}

// TestBand6OverlapMatrix: two Band6 channels overlap exactly when they
// share a 20 MHz sub-channel, at every width pairing.
func TestBand6OverlapMatrix(t *testing.T) {
	all := AllChannels(Band6, W160, true)
	shares := func(a, b Channel) bool {
		for _, x := range a.Sub20Numbers() {
			for _, y := range b.Sub20Numbers() {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	for _, a := range all {
		for _, b := range all {
			if got, want := a.Overlaps(b), shares(a, b); got != want {
				t.Fatalf("%v vs %v: Overlaps=%v, shares-sub=%v", a, b, got, want)
			}
		}
	}
}

// TestBand6WiderNarrowerLadder: Narrower/Wider walk the bonding tree
// inside Band6 exactly as at 5 GHz.
func TestBand6WiderNarrowerLadder(t *testing.T) {
	for _, c := range Channels(Band6, W160, true) {
		n := Narrower(c)
		if n.Width != W80 || n.Band != Band6 {
			t.Fatalf("Narrower(%v) = %v", c, n)
		}
		if !c.Overlaps(n) {
			t.Fatalf("Narrower(%v) = %v does not overlap its parent", c, n)
		}
	}
	for _, c := range Channels(Band6, W80, true) {
		w, ok := Wider(c)
		// Every 80 MHz inside a 160 MHz block widens; 6 of the 9 do.
		if ok {
			if w.Width != W160 || !w.Overlaps(c) {
				t.Fatalf("Wider(%v) = %v", c, w)
			}
		}
	}
	// Cross-band isolation: no Band6 channel overlaps any Band5 channel.
	for _, a := range AllChannels(Band6, W160, true) {
		for _, b := range AllChannels(Band5, W160, true) {
			if a.Overlaps(b) {
				t.Fatalf("%v overlaps 5 GHz %v", a, b)
			}
		}
	}
}
