package mac

// deque is a simple slice-backed double-ended queue of MPDUs. Head pops are
// the hot path (building aggregates); front pushes happen on retry.
type deque struct {
	items []*MPDU
}

func (d *deque) len() int { return len(d.items) }

func (d *deque) pushBack(m *MPDU) { d.items = append(d.items, m) }

func (d *deque) pushFront(m *MPDU) {
	d.items = append(d.items, nil)
	copy(d.items[1:], d.items)
	d.items[0] = m
}

func (d *deque) popFront() *MPDU {
	if len(d.items) == 0 {
		return nil
	}
	m := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return m
}

func (d *deque) peek(i int) *MPDU {
	if i >= len(d.items) {
		return nil
	}
	return d.items[i]
}

// acQueue holds per-destination deques within one access category and
// serves destinations round-robin, mirroring the per-TID-per-STA queue
// structure of real AP drivers. Round-robin among stations is what gives
// CSMA its per-station (not per-packet) fairness.
type acQueue struct {
	byDst   map[StationID]*deque
	order   []StationID        // round-robin rotation, one entry per dst
	inOrder map[StationID]bool // membership guard: rotation stays unique
	next    int                // round-robin cursor
	count   int                // total queued MPDUs
	bytes   int                // total queued payload bytes
}

func newACQueue() *acQueue {
	return &acQueue{byDst: map[StationID]*deque{}, inOrder: map[StationID]bool{}}
}

// joinRotation adds dst to the round-robin exactly once. Without the
// uniqueness guard, destinations whose queues drain and refill would
// accumulate duplicate rotation slots and starve always-backlogged peers.
func (q *acQueue) joinRotation(dst StationID) {
	if !q.inOrder[dst] {
		q.inOrder[dst] = true
		q.order = append(q.order, dst)
	}
}

func (q *acQueue) enqueue(m *MPDU) {
	d, ok := q.byDst[m.Dst]
	if !ok {
		d = &deque{}
		q.byDst[m.Dst] = d
	}
	q.joinRotation(m.Dst)
	d.pushBack(m)
	q.count++
	q.bytes += m.Dgram.WireLen()
}

// requeueFront puts a failed MPDU back at the head of its destination deque.
func (q *acQueue) requeueFront(m *MPDU) {
	d, ok := q.byDst[m.Dst]
	if !ok {
		d = &deque{}
		q.byDst[m.Dst] = d
	}
	q.joinRotation(m.Dst)
	d.pushFront(m)
	q.count++
	q.bytes += m.Dgram.WireLen()
}

// nextDst returns the next destination with queued traffic, advancing the
// round-robin cursor, or ok=false when the queue is empty.
func (q *acQueue) nextDst() (StationID, bool) {
	for len(q.order) > 0 {
		if q.next >= len(q.order) {
			q.next = 0
		}
		dst := q.order[q.next]
		if d := q.byDst[dst]; d != nil && d.len() > 0 {
			q.next++
			return dst, true
		}
		// Destination drained; drop it from the rotation.
		q.order = append(q.order[:q.next], q.order[q.next+1:]...)
		delete(q.inOrder, dst)
	}
	return 0, false
}

// popFor removes and returns up to max MPDUs destined for dst.
func (q *acQueue) popFor(dst StationID, max int) []*MPDU {
	d := q.byDst[dst]
	if d == nil {
		return nil
	}
	n := d.len()
	if n > max {
		n = max
	}
	out := make([]*MPDU, 0, n)
	for i := 0; i < n; i++ {
		m := d.popFront()
		q.count--
		q.bytes -= m.Dgram.WireLen()
		out = append(out, m)
	}
	return out
}

// depthFor returns the number of MPDUs queued for dst.
func (q *acQueue) depthFor(dst StationID) int {
	if d := q.byDst[dst]; d != nil {
		return d.len()
	}
	return 0
}

// dropTail removes the newest MPDU for dst (queue-limit enforcement) and
// returns it, or nil.
func (q *acQueue) dropTail(dst StationID) *MPDU {
	d := q.byDst[dst]
	if d == nil || d.len() == 0 {
		return nil
	}
	m := d.items[d.len()-1]
	d.items = d.items[:d.len()-1]
	q.count--
	q.bytes -= m.Dgram.WireLen()
	return m
}
