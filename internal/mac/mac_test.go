package mac

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

func newTestMedium(snr float64) *Medium {
	return NewMedium(sim.NewEngine(11), snr)
}

func stationCfg(name string) StationConfig {
	return StationConfig{Name: name, NSS: 2, Width: spectrum.W80, GI: phy.SGI}
}

func dgram(n int) *packet.Datagram {
	return packet.NewTCPDatagram(
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000},
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 1}, Port: 80}, n)
}

func TestSingleFrameDelivery(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))

	var delivered *MPDU
	var ackOK bool
	rx.OnReceive = func(m *MPDU, now sim.Time) { delivered = m }
	tx.OnDelivered = func(m *MPDU, ok bool, now sim.Time) { ackOK = ok }

	d := dgram(1400)
	if !tx.Enqueue(d, rx.ID, phy.ACBE) {
		t.Fatal("enqueue rejected")
	}
	md.Engine().Run()

	if delivered == nil || delivered.Dgram != d {
		t.Fatal("datagram not delivered")
	}
	if !ackOK {
		t.Fatal("no 802.11 ACK callback")
	}
	st := tx.Stats()
	if st.TxFrames != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if md.Stats().BusyUs <= 0 {
		t.Fatal("no airtime accounted")
	}
}

func TestAggregationFromQueueDepth(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	rx.OnReceive = func(*MPDU, sim.Time) {}

	// 40 packets queued before the medium is kicked: with a contention
	// round they should leave in one (or very few) A-MPDUs.
	var reports []FrameReport
	md.OnFrame = func(fr FrameReport) { reports = append(reports, fr) }
	for i := 0; i < 40; i++ {
		tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	if len(reports) == 0 {
		t.Fatal("no frames")
	}
	if reports[0].AggSize < 30 {
		t.Fatalf("first aggregate = %d, want ~40 (queue-depth driven)", reports[0].AggSize)
	}
	st := tx.Stats()
	if st.MeanAggregate() < 10 {
		t.Fatalf("mean aggregate = %.1f", st.MeanAggregate())
	}
}

func TestPerMPDUErrorsRetryAndRecover(t *testing.T) {
	md := newTestMedium(18) // marginal link: real PER at chosen rates
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	got := 0
	rx.OnReceive = func(*MPDU, sim.Time) { got++ }
	fails := 0
	tx.OnDelivered = func(m *MPDU, ok bool, now sim.Time) {
		if !ok {
			fails++
		}
	}
	const n = 200
	for i := 0; i < n; i++ {
		tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	if got+fails != n {
		t.Fatalf("delivered %d + dropped %d != %d", got, fails, n)
	}
	if got < n*8/10 {
		t.Fatalf("only %d/%d delivered on a marginal link", got, n)
	}
	if tx.Stats().TxMPDUs <= int64(n) {
		t.Fatal("no MAC retransmissions on a marginal link?")
	}
}

func TestInOrderDeliveryUnderLoss(t *testing.T) {
	// The block-ack reorder buffer must hide per-subframe loss: the
	// receiver sees MSDUs strictly in transmit order.
	md := newTestMedium(20)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	var seqs []uint32
	rx.OnReceive = func(m *MPDU, now sim.Time) { seqs = append(seqs, m.Dgram.TCP.Seq) }
	const n = 300
	for i := 0; i < n; i++ {
		d := dgram(1400)
		d.TCP.Seq = uint32(i)
		tx.Enqueue(d, rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("out-of-order delivery at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
	if len(seqs) < n*8/10 {
		t.Fatalf("too few delivered: %d", len(seqs))
	}
}

func TestReorderAdvanceOnDrop(t *testing.T) {
	// With a terrible link and a tiny retry limit, drops must not stall
	// the reorder buffer: later packets still reach the receiver.
	md := newTestMedium(-1) // below even MCS0's requirement

	tx := md.AddStation(StationConfig{Name: "tx", NSS: 1, Width: spectrum.W20, RetryLimit: 1})
	rx := md.AddStation(stationCfg("rx"))
	got := 0
	rx.OnReceive = func(*MPDU, sim.Time) { got++ }
	for i := 0; i < 100; i++ {
		tx.Enqueue(dgram(1000), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	st := tx.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected drops on a 5 dB link")
	}
	if got == 0 {
		t.Fatal("reorder buffer stalled after drops")
	}
	if got+int(st.Dropped) != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", got, st.Dropped)
	}
}

func TestMediumSharingRoughlyFair(t *testing.T) {
	// Two saturated transmitters to one receiver: CSMA should split
	// airtime roughly evenly.
	md := newTestMedium(40)
	a := md.AddStation(stationCfg("a"))
	b := md.AddStation(stationCfg("b"))
	rx := md.AddStation(stationCfg("rx"))
	rx.OnReceive = func(*MPDU, sim.Time) {}
	// Keep both queues shallow so many contention rounds happen.
	refill := md.Engine().Ticker(500*sim.Microsecond, func(*sim.Engine) {
		for a.QueueDepth(phy.ACBE, rx.ID) < 8 {
			a.Enqueue(dgram(1400), rx.ID, phy.ACBE)
		}
		for b.QueueDepth(phy.ACBE, rx.ID) < 8 {
			b.Enqueue(dgram(1400), rx.ID, phy.ACBE)
		}
	})
	md.Engine().RunUntil(2 * sim.Second)
	refill()
	at, bt := a.Stats().AirtimeUs, b.Stats().AirtimeUs
	ratio := at / bt
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("airtime ratio %.2f, want ~1", ratio)
	}
	if md.Stats().Collisions == 0 {
		t.Fatal("two saturated stations never collided?")
	}
}

func TestEDCAPriority(t *testing.T) {
	// Voice traffic must see lower MAC latency than background traffic
	// under contention (Fig 4's ordering).
	md := newTestMedium(40)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	rx.OnReceive = func(*MPDU, sim.Time) {}
	var voSum, bkSum sim.Time
	var voN, bkN int
	tx.OnDelivered = func(m *MPDU, ok bool, now sim.Time) {
		if !ok {
			return
		}
		lat := now - m.EnqueuedAt
		if m.AC == phy.ACVO {
			voSum += lat
			voN++
		} else if m.AC == phy.ACBK {
			bkSum += lat
			bkN++
		}
	}
	for i := 0; i < 150; i++ {
		tx.Enqueue(dgram(400), rx.ID, phy.ACVO)
		tx.Enqueue(dgram(1400), rx.ID, phy.ACBK)
	}
	md.Engine().Run()
	if voN == 0 || bkN == 0 {
		t.Fatalf("vo=%d bk=%d", voN, bkN)
	}
	voMean := float64(voSum) / float64(voN)
	bkMean := float64(bkSum) / float64(bkN)
	if voMean >= bkMean {
		t.Fatalf("VO latency %.0fµs >= BK %.0fµs", voMean, bkMean)
	}
}

func TestEnqueueFrontJumpsQueue(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	var first uint32
	seen := false
	rx.OnReceive = func(m *MPDU, now sim.Time) {
		if !seen {
			first = m.Dgram.TCP.Seq
			seen = true
		}
	}
	// Fill the queue, then front-insert a marked packet before any
	// contention resolution runs.
	for i := 0; i < 10; i++ {
		d := dgram(1400)
		d.TCP.Seq = uint32(i + 100)
		tx.Enqueue(d, rx.ID, phy.ACBE)
	}
	urgent := dgram(1400)
	urgent.TCP.Seq = 7
	tx.EnqueueFront(urgent, rx.ID, phy.ACBE)
	md.Engine().Run()
	if !seen || first != 7 {
		t.Fatalf("front-inserted packet delivered %v first=%d", seen, first)
	}
}

func TestQueueLimits(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(StationConfig{Name: "tx", NSS: 1, Width: spectrum.W20, QueueLimit: 5})
	rx := md.AddStation(stationCfg("rx"))
	drops := 0
	tx.OnDrop = func(*MPDU, sim.Time) { drops++ }
	accepted := 0
	for i := 0; i < 10; i++ {
		if tx.Enqueue(dgram(100), rx.ID, phy.ACBE) {
			accepted++
		}
	}
	if accepted != 5 || drops != 5 {
		t.Fatalf("accepted=%d drops=%d, want 5/5", accepted, drops)
	}
}

func TestSharedPoolLimit(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(StationConfig{Name: "tx", NSS: 1, Width: spectrum.W20, SharedPoolLimit: 8, QueueLimit: 100})
	rx1 := md.AddStation(stationCfg("rx1"))
	rx2 := md.AddStation(stationCfg("rx2"))
	accepted := 0
	for i := 0; i < 6; i++ {
		if tx.Enqueue(dgram(100), rx1.ID, phy.ACBE) {
			accepted++
		}
		if tx.Enqueue(dgram(100), rx2.ID, phy.ACBE) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d, pool limit 8", accepted)
	}
	if tx.Stats().PoolDrops != 4 {
		t.Fatalf("pool drops = %d", tx.Stats().PoolDrops)
	}
}

func TestRoundRobinAcrossDestinations(t *testing.T) {
	// One AP serving three clients: deliveries should interleave rather
	// than drain one client completely first.
	md := newTestMedium(45)
	ap := md.AddStation(stationCfg("ap"))
	var order []StationID
	for i := 0; i < 3; i++ {
		c := md.AddStation(stationCfg("c"))
		c.OnReceive = func(m *MPDU, now sim.Time) { order = append(order, m.Dst) }
		for j := 0; j < 100; j++ {
			ap.Enqueue(dgram(1400), c.ID, phy.ACBE)
		}
	}
	md.Engine().Run()
	// The first three frames must hit three distinct destinations.
	distinct := map[StationID]bool{}
	for _, id := range order[:minInt(len(order), 130)] {
		distinct[id] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("round robin broken: %d destinations early on", len(distinct))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestInterfererStealsAirtime(t *testing.T) {
	mdClean := newTestMedium(45)
	mdBusy := newTestMedium(45)
	run := func(md *Medium, interfere bool) float64 {
		tx := md.AddStation(stationCfg("tx"))
		rx := md.AddStation(stationCfg("rx"))
		var bytes int64
		rx.OnReceive = func(m *MPDU, now sim.Time) { bytes += int64(m.Dgram.PayloadLen) }
		if interfere {
			md.AddInterferer(10*sim.Millisecond, 0.6)
		}
		refill := md.Engine().Ticker(sim.Millisecond, func(*sim.Engine) {
			for tx.QueueDepth(phy.ACBE, rx.ID) < 64 {
				tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
			}
		})
		md.Engine().RunUntil(2 * sim.Second)
		refill()
		return float64(bytes) * 8 / 2e6
	}
	clean := run(mdClean, false)
	busy := run(mdBusy, true)
	if busy > clean*0.7 {
		t.Fatalf("60%% duty interferer barely hurt: %.0f vs %.0f Mbps", busy, clean)
	}
	if busy < clean*0.1 {
		t.Fatalf("interferer killed the link entirely: %.0f vs %.0f", busy, clean)
	}
}

func TestRateControllerAdaptsDown(t *testing.T) {
	md := newTestMedium(45)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	rx.OnReceive = func(*MPDU, sim.Time) {}
	for i := 0; i < 50; i++ {
		tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	before := tx.rateFor(rx.ID).Current().Mbps()

	// The link collapses: SNR drops 30 dB.
	md.SetSNR(tx.ID, rx.ID, 15)
	for i := 0; i < 300; i++ {
		tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	after := tx.rateFor(rx.ID).Current().Mbps()
	if after >= before {
		t.Fatalf("rate did not adapt down: %.0f -> %.0f Mbps", before, after)
	}
}

func TestRateControllerEfficiency(t *testing.T) {
	rc := NewRateController(2, spectrum.W80, phy.SGI, 45, sim.NewEngine(5).Rand())
	if e := rc.Efficiency(); e < 0.5 || e > 1 {
		t.Fatalf("efficiency at 45 dB = %.2f", e)
	}
	low := NewRateController(2, spectrum.W80, phy.SGI, 12, sim.NewEngine(5).Rand())
	if low.Current().Mbps() >= rc.Current().Mbps() {
		t.Fatal("low-SNR link starts at a higher rate")
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	md := newTestMedium(40)
	tx := md.AddStation(stationCfg("tx"))
	rx := md.AddStation(stationCfg("rx"))
	rx.OnReceive = func(*MPDU, sim.Time) {}
	refill := md.Engine().Ticker(sim.Millisecond, func(*sim.Engine) {
		for tx.QueueDepth(phy.ACBE, rx.ID) < 32 {
			tx.Enqueue(dgram(1400), rx.ID, phy.ACBE)
		}
	})
	md.Engine().RunUntil(sim.Second)
	refill()
	if u := md.Utilization(); u < 0.5 || u > 1.05 {
		t.Fatalf("saturated utilization = %.2f", u)
	}
}
