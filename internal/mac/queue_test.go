package mac

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

func mkMPDU(dst StationID, n int) *MPDU {
	return &MPDU{
		Dgram: packet.NewTCPDatagram(
			packet.Endpoint{Addr: packet.IPv4Addr{1}, Port: 1},
			packet.Endpoint{Addr: packet.IPv4Addr{2}, Port: 2}, n),
		Dst: dst, AC: phy.ACBE,
	}
}

func TestDequeOrder(t *testing.T) {
	var d deque
	for i := 0; i < 5; i++ {
		d.pushBack(mkMPDU(0, i+1))
	}
	d.pushFront(mkMPDU(0, 99))
	if d.len() != 6 {
		t.Fatalf("len = %d", d.len())
	}
	if got := d.popFront(); got.Dgram.PayloadLen != 99 {
		t.Fatalf("front = %d", got.Dgram.PayloadLen)
	}
	for i := 0; i < 5; i++ {
		if got := d.popFront(); got.Dgram.PayloadLen != i+1 {
			t.Fatalf("fifo broken at %d", i)
		}
	}
	if d.popFront() != nil {
		t.Fatal("pop from empty")
	}
}

// Property: under any interleaving of enqueue/requeue/pop operations, the
// acQueue's count and bytes match the ground truth and the round-robin
// rotation never contains duplicates.
func TestQuickACQueueInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		q := newACQueue()
		count, bytes := 0, 0
		for _, op := range ops {
			dst := StationID(op % 4)
			switch op % 5 {
			case 0, 1: // enqueue
				m := mkMPDU(dst, int(op)+1)
				q.enqueue(m)
				count++
				bytes += m.Dgram.WireLen()
			case 2: // requeue front
				m := mkMPDU(dst, int(op)+1)
				q.requeueFront(m)
				count++
				bytes += m.Dgram.WireLen()
			case 3: // pop a burst for the next dst
				if d, ok := q.nextDst(); ok {
					for _, m := range q.popFor(d, 3) {
						count--
						bytes -= m.Dgram.WireLen()
					}
				}
			case 4: // drop tail
				if m := q.dropTail(dst); m != nil {
					count--
					bytes -= m.Dgram.WireLen()
				}
			}
			if q.count != count || q.bytes != bytes {
				return false
			}
			seen := map[StationID]bool{}
			for _, id := range q.order {
				if seen[id] {
					return false // duplicate rotation slot
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the receive-side reorder buffer releases every delivered
// MPDU exactly once and in tidSeq order, for any delivery/drop pattern.
func TestQuickReorderBufferInvariants(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) == 0 {
			return true
		}
		var released []uint32
		md := newTestMedium(45)
		tx := md.AddStation(stationCfg("tx"))
		rx := md.AddStation(stationCfg("rx"))
		rx.OnReceive = func(m *MPDU, _ sim.Time) { released = append(released, m.tidSeq) }

		held := map[uint32]*MPDU{}
		for i, delivered := range pattern {
			m := mkMPDU(rx.ID, 100)
			m.Src = tx.ID
			m.tidSeq = uint32(i)
			m.tidSeqSet = true
			if delivered {
				held[uint32(i)] = m
			}
		}
		// Deliver the survivors in a scrambled order, then advance over
		// the dropped ones in order (as the transmitter would).
		for i := len(pattern) - 1; i >= 0; i-- {
			if m, ok := held[uint32(i)]; ok {
				rx.reorderDeliver(m, 0)
			}
		}
		for i, delivered := range pattern {
			if !delivered {
				rx.reorderAdvance(tx.ID, phy.ACBE, uint32(i), 0)
			}
		}
		// Every delivered MPDU released exactly once, in order.
		want := 0
		for _, delivered := range pattern {
			if delivered {
				want++
			}
		}
		if len(released) != want {
			return false
		}
		for i := 1; i < len(released); i++ {
			if released[i] <= released[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
