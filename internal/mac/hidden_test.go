package mac

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// hiddenPair builds the classic topology: A and B both transmit to RX,
// but cannot hear each other.
func hiddenPair(rts int) (md *Medium, a, b, rx *Station, got *int) {
	md = newTestMedium(40)
	cfg := func(name string) StationConfig {
		return StationConfig{Name: name, NSS: 2, Width: spectrum.W80, GI: phy.SGI, RTSThreshold: rts}
	}
	a = md.AddStation(cfg("a"))
	b = md.AddStation(cfg("b"))
	rx = md.AddStation(stationCfg("rx"))
	n := 0
	got = &n
	rx.OnReceive = func(*MPDU, sim.Time) { n++ }
	md.SetHearing(a.ID, b.ID, false)
	return
}

func saturate(md *Medium, sts []*Station, dst StationID, dur sim.Time) {
	stop := md.Engine().Ticker(sim.Millisecond, func(*sim.Engine) {
		for _, st := range sts {
			for st.QueueDepth(phy.ACBE, dst) < 16 {
				st.Enqueue(dgram(1400), dst, phy.ACBE)
			}
		}
	})
	md.Engine().RunUntil(dur)
	stop()
}

func TestHiddenNodesCorruptWithoutRTS(t *testing.T) {
	// Without RTS/CTS, two mutually hidden saturated transmitters should
	// overlap constantly and lose most frames at the shared receiver.
	md, a, b, rx, got := hiddenPair(0)
	saturate(md, []*Station{a, b}, rx.ID, sim.Second)
	sent := a.Stats().TxMPDUs + b.Stats().TxMPDUs
	if sent == 0 {
		t.Fatal("nothing transmitted")
	}
	lossRate := 1 - float64(*got)/float64(sent)
	if lossRate < 0.3 {
		t.Fatalf("hidden-node loss rate %.2f, expected severe", lossRate)
	}
}

func TestRTSCTSRecoversHiddenNodes(t *testing.T) {
	// §4.1.2: the virtual carrier sense lets hidden neighbors share the
	// medium. The CTS from RX silences whichever side did not win.
	without := func() float64 {
		md, a, b, rx, got := hiddenPair(0)
		saturate(md, []*Station{a, b}, rx.ID, sim.Second)
		_ = got
		return float64(*got)
	}()
	with := func() float64 {
		md, a, b, rx, got := hiddenPair(500) // all data frames protected
		saturate(md, []*Station{a, b}, rx.ID, sim.Second)
		return float64(*got)
	}()
	if with <= without*1.5 {
		t.Fatalf("RTS/CTS did not help: %v delivered with vs %v without", with, without)
	}
}

func TestRTSCTSAirtimeFairShare(t *testing.T) {
	// §5.6.3 verifies that co-channel neighbors share airtime roughly
	// fairly once virtual carrier sense works.
	md, a, b, rx, _ := hiddenPair(500)
	saturate(md, []*Station{a, b}, rx.ID, 2*sim.Second)
	at, bt := a.Stats().AirtimeUs, b.Stats().AirtimeUs
	if at == 0 || bt == 0 {
		t.Fatal("a transmitter starved")
	}
	ratio := at / bt
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("airtime ratio %.2f under RTS/CTS", ratio)
	}
}

func TestFullAudibilityUnchanged(t *testing.T) {
	// With no hearing matrix, hidden-collision machinery must never
	// corrupt anything on a clean channel.
	md := newTestMedium(45)
	a := md.AddStation(stationCfg("a"))
	rx := md.AddStation(stationCfg("rx"))
	n := 0
	rx.OnReceive = func(*MPDU, sim.Time) { n++ }
	for i := 0; i < 200; i++ {
		a.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	if n != 200 {
		t.Fatalf("delivered %d/200 on a clean audible channel", n)
	}
}

func TestDeferUntilAudibleTransmissionEnds(t *testing.T) {
	// B hears A; while A transmits a long frame, B must not start.
	md := newTestMedium(45)
	a := md.AddStation(stationCfg("a"))
	b := md.AddStation(stationCfg("b"))
	rx := md.AddStation(stationCfg("rx"))
	var order []StationID
	rx.OnReceive = func(m *MPDU, now sim.Time) { order = append(order, m.Src) }
	// A queues a big aggregate first; B queues one packet mid-flight.
	for i := 0; i < 64; i++ {
		a.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().After(200*sim.Microsecond, func(*sim.Engine) {
		b.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	})
	md.Engine().Run()
	if len(order) < 65 {
		t.Fatalf("missing deliveries: %d", len(order))
	}
	// All of A's MPDUs from the first frame must precede B's packet.
	bPos := -1
	for i, src := range order {
		if src == b.ID {
			bPos = i
			break
		}
	}
	if bPos >= 0 && bPos < 60 {
		t.Fatalf("B transmitted at position %d, inside A's frame", bPos)
	}
	if md.Stats().Collisions != 0 {
		t.Fatalf("audible stations collided mid-frame: %d", md.Stats().Collisions)
	}
}

func TestHiddenPairConcurrentTransmissions(t *testing.T) {
	// Two hidden stations with different backoff draws both transmit;
	// the medium records overlapping activity (no global serialization).
	md, a, b, rx, _ := hiddenPair(0)
	for i := 0; i < 64; i++ {
		a.Enqueue(dgram(1400), rx.ID, phy.ACBE)
		b.Enqueue(dgram(1400), rx.ID, phy.ACBE)
	}
	md.Engine().Run()
	// Both transmitted: neither deferred to the other.
	if a.Stats().TxFrames == 0 || b.Stats().TxFrames == 0 {
		t.Fatalf("hidden station deferred: %d / %d frames", a.Stats().TxFrames, b.Stats().TxFrames)
	}
}
