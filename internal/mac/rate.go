package mac

import (
	"math/rand"

	"repro/internal/phy"
	"repro/internal/spectrum"
)

// RateController performs Minstrel-style rate adaptation for one link: it
// tracks an EWMA of per-MPDU delivery probability for every candidate rate,
// transmits at the rate with the best expected throughput, and spends a
// small fraction of frames probing other rates to keep estimates fresh.
//
// Probability estimates are initialised from the PHY's SNR->PER model so a
// freshly associated station starts near its ideal rate, as vendor
// firmware does using the association RSSI.
type RateController struct {
	table   []phy.Rate
	ewma    []float64 // delivery probability per table entry
	current int
	rng     *rand.Rand
	// ProbeFraction is the share of frames used to sample a neighbour
	// rate (Minstrel's lookaround), default 10%.
	ProbeFraction float64
	probing       bool
	probeIdx      int
}

// ewmaWeight is the weight of history when folding in a new observation.
const ewmaWeight = 0.75

// NewRateController builds a controller for a link with the given
// capability intersection and initial SNR estimate.
func NewRateController(nss int, width spectrum.Width, gi phy.GuardInterval, snrDB float64, rng *rand.Rand) *RateController {
	table := phy.RatesForWidth(nss, width, gi)
	rc := &RateController{
		table:         table,
		ewma:          make([]float64, len(table)),
		rng:           rng,
		ProbeFraction: 0.10,
	}
	for i, r := range table {
		rc.ewma[i] = 1 - r.PER(snrDB, 1500)
	}
	rc.current = rc.bestIndex()
	return rc
}

// bestIndex returns the table index with the highest expected throughput,
// ignoring rates whose delivery probability is hopeless (<5%).
func (rc *RateController) bestIndex() int {
	best, bestTp := 0, -1.0
	for i, r := range rc.table {
		p := rc.ewma[i]
		if p < 0.05 && i > 0 {
			continue
		}
		tp := r.Mbps() * p
		if tp > bestTp {
			best, bestTp = i, tp
		}
	}
	return best
}

// Select returns the rate to use for the next frame. A probe frame samples
// one step above or below the current best.
func (rc *RateController) Select() phy.Rate {
	rc.probing = false
	if rc.rng.Float64() < rc.ProbeFraction && len(rc.table) > 1 {
		idx := rc.current
		if rc.rng.Intn(2) == 0 && idx+1 < len(rc.table) {
			idx++
		} else if idx > 0 {
			idx--
		}
		if idx != rc.current {
			rc.probing = true
			rc.probeIdx = idx
			return rc.table[idx]
		}
	}
	return rc.table[rc.current]
}

// Update folds block-ACK feedback (delivered of attempted MPDUs at the
// frame's rate) into the estimate and re-selects the best rate.
func (rc *RateController) Update(rate phy.Rate, attempted, delivered int) {
	if attempted <= 0 {
		return
	}
	idx := rc.indexOf(rate)
	if idx < 0 {
		return
	}
	obs := float64(delivered) / float64(attempted)
	rc.ewma[idx] = ewmaWeight*rc.ewma[idx] + (1-ewmaWeight)*obs
	rc.current = rc.bestIndex()
}

func (rc *RateController) indexOf(rate phy.Rate) int {
	for i, r := range rc.table {
		if r == rate {
			return i
		}
	}
	return -1
}

// Probing reports whether the last Select returned a lookaround rate.
// Probe frames must carry small aggregates (real minstrel_ht does the
// same): a 5.3 ms A-MPDU at a mis-guessed rate is airtime the link never
// gets back.
func (rc *RateController) Probing() bool { return rc.probing }

// MaxProbeAggregate caps the subframe count of probe frames.
const MaxProbeAggregate = 4

// Current returns the rate the controller currently considers best.
func (rc *RateController) Current() phy.Rate { return rc.table[rc.current] }

// MaxRate returns the top rate in the link's table.
func (rc *RateController) MaxRate() phy.Rate { return rc.table[len(rc.table)-1] }

// Efficiency returns the current rate's throughput as a fraction of the
// link's maximum — the "bit rate efficiency" metric of §4.6.2.
func (rc *RateController) Efficiency() float64 {
	return rc.Current().Mbps() / rc.MaxRate().Mbps()
}
