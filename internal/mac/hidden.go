package mac

import (
	"repro/internal/sim"
)

// Hidden-terminal support (§4.1.2). By default every station hears every
// other station (one room, physical carrier sense suffices — the
// testbed's situation). Calling SetHearing builds an explicit audibility
// matrix; stations that cannot hear each other contend independently,
// which creates classic hidden-node collisions at a shared receiver. The
// RTS/CTS virtual carrier sense (StationConfig.RTSThreshold) then
// recovers most of the loss: a successful RTS/CTS exchange silences every
// station that hears *either* side for the frame's duration (NAV).
//
// Implementation notes: contention rounds remain global (one event
// resolves all contenders), but a "winner" only blocks — and only
// collides with — stations that can hear it. Frames whose receiver is
// inside another winner's interference range are marked corrupted.

// SetHearing declares whether a hears b (and symmetric by default).
// Unset pairs default to audible.
func (md *Medium) SetHearing(a, b StationID, audible bool) {
	if md.hearing == nil {
		md.hearing = map[[2]StationID]bool{}
	}
	md.hearing[linkKey(a, b)] = audible
}

// hears reports whether a and b are within carrier-sense range.
func (md *Medium) hears(a, b StationID) bool {
	if a == b {
		return true
	}
	if md.hearing == nil {
		return true
	}
	if v, ok := md.hearing[linkKey(a, b)]; ok {
		return v
	}
	return true
}

// navUntil returns the time until which st must defer: the later of the
// medium busy time caused by audible transmissions and st's virtual
// carrier sense (NAV set by an overheard RTS/CTS).
func (md *Medium) navUntil(st *Station) sim.Time {
	t := st.physBusyUntil
	if st.navBusyUntil > t {
		t = st.navBusyUntil
	}
	return t
}

// occupy marks the air busy for every station that hears src, for the
// exchange ending at end. Returns the set of stations that did NOT hear
// it (potential hidden interferers).
func (md *Medium) occupy(src StationID, end sim.Time) {
	for _, other := range md.stations {
		if md.hears(src, other.ID) {
			if end > other.physBusyUntil {
				other.physBusyUntil = end
			}
		}
	}
}

// setNAV raises the virtual carrier sense of every station that hears
// either endpoint of a protected exchange (RTS from src, CTS from dst).
func (md *Medium) setNAV(src, dst StationID, end sim.Time) {
	for _, other := range md.stations {
		if md.hears(src, other.ID) || md.hears(dst, other.ID) {
			if end > other.navBusyUntil {
				other.navBusyUntil = end
			}
		}
	}
}

// hiddenOverlap returns the total time inside [start, end) during which a
// transmission from a station hidden from tx — but audible at dst — was
// on the air (CSMA at tx could not prevent the overlap).
func (md *Medium) hiddenOverlap(tx, dst StationID, start, end sim.Time) sim.Time {
	var total sim.Time
	for _, o := range md.activeTx {
		if o.src == tx {
			continue
		}
		lo, hi := o.start, o.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue // no temporal overlap
		}
		if md.hears(dst, o.src) && !md.hears(tx, o.src) {
			total += hi - lo
		}
	}
	if total > end-start {
		total = end - start
	}
	return total
}

// activeTxRecord tracks an in-flight transmission for hidden-node
// interference checks.
type activeTxRecord struct {
	src        StationID
	start, end sim.Time
}

// registerTx records a transmission window and schedules pruning. Records
// linger one maximum frame time past their end so a frame completing
// later can still detect the overlap.
func (md *Medium) registerTx(src StationID, start, end sim.Time) {
	const grace = 6 * sim.Millisecond // > MaxAMPDUDurationUs
	md.activeTx = append(md.activeTx, activeTxRecord{src: src, start: start, end: end})
	md.engine.Schedule(end+grace, func(*sim.Engine) {
		keep := md.activeTx[:0]
		now := md.engine.Now()
		for _, r := range md.activeTx {
			if r.end+grace > now {
				keep = append(keep, r)
			}
		}
		md.activeTx = keep
	})
}

// rtsProtects reports whether this frame will use RTS/CTS based on the
// transmitter's threshold (§4.1.2's mitigation).
func rtsProtects(st *Station, mpdus []*MPDU) bool {
	th := st.cfg.RTSThreshold
	return th > 0 && len(mpdus) > 0 && mpdus[0].Dgram.WireLen() > th
}

// receiverBusy reports whether dst is inside another in-flight
// transmission's range at time start — the condition under which dst
// withholds the CTS. This is how RTS/CTS actually defuses hidden
// terminals: the hidden loser wastes an RTS, not a 5 ms A-MPDU.
func (md *Medium) receiverBusy(tx, dst StationID, start sim.Time) bool {
	for _, o := range md.activeTx {
		if o.src == tx {
			continue
		}
		if o.end <= start || o.start > start {
			continue
		}
		if md.hears(dst, o.src) {
			return true
		}
	}
	return false
}
