package mac

import (
	"math"
	"sort"

	"repro/internal/phy"
	"repro/internal/sim"
)

// FrameReport describes one completed frame exchange, for instrumentation.
type FrameReport struct {
	At        sim.Time // transmission start
	Src, Dst  StationID
	AC        phy.AccessCategory
	Rate      phy.Rate
	AggSize   int     // MPDUs in the A-MPDU
	Delivered int     // MPDUs acknowledged by the block ACK
	AirtimeUs float64 // full exchange airtime including BA (and RTS/CTS)
	Collision bool
}

// MediumStats aggregates channel-level counters.
type MediumStats struct {
	BusyUs       float64 // airtime consumed by frames + interference
	Frames       int64
	Collisions   int64 // collision events (>= 2 winners)
	InterfererUs float64
}

// Medium is one collision domain on one channel. By default all attached
// stations hear each other (the paper's single-room testbed); SetHearing
// installs a partial audibility matrix for hidden-terminal topologies,
// with RTS/CTS virtual carrier sense as the §4.1.2 mitigation.
type Medium struct {
	engine   *sim.Engine
	stations []*Station

	snr        map[[2]StationID]float64
	defaultSNR float64

	busyUntil         sim.Time
	contentionPending bool

	// hearing is the optional audibility matrix (nil = everyone hears
	// everyone); activeTx tracks in-flight transmissions for hidden-node
	// interference checks. See hidden.go.
	hearing  map[[2]StationID]bool
	activeTx []activeTxRecord

	stats MediumStats

	// OnFrame, if set, receives a report for every frame exchange.
	OnFrame func(FrameReport)
	// OnTransmit, if set, receives the concrete MPDU list of every
	// (non-collided) frame exchange at completion — the hook air-capture
	// tooling uses to encode real 802.11 frames.
	OnTransmit func(FrameReport, []*MPDU)
}

// NewMedium creates an empty collision domain. defaultSNR is used for any
// link without an explicit SetSNR.
func NewMedium(engine *sim.Engine, defaultSNR float64) *Medium {
	return &Medium{
		engine:     engine,
		snr:        map[[2]StationID]float64{},
		defaultSNR: defaultSNR,
	}
}

// Engine returns the underlying simulation engine.
func (md *Medium) Engine() *sim.Engine { return md.engine }

// Stats returns a snapshot of medium counters.
func (md *Medium) Stats() MediumStats { return md.stats }

// AddStation attaches a new station and returns it.
func (md *Medium) AddStation(cfg StationConfig) *Station {
	if cfg.NSS <= 0 {
		cfg.NSS = 1
	}
	st := &Station{
		ID:     StationID(len(md.stations)),
		cfg:    cfg,
		medium: md,
		rate:   map[StationID]*RateController{},
	}
	for i := range st.queues {
		st.queues[i] = newACQueue()
	}
	for ac := range st.backoffs {
		st.backoffs[ac] = backoffState{cw: phy.AccessCategory(ac).EDCA().CWMin, counter: -1}
	}
	md.stations = append(md.stations, st)
	return st
}

// Station returns the station with the given ID.
func (md *Medium) Station(id StationID) *Station { return md.stations[id] }

// Stations returns all attached stations.
func (md *Medium) Stations() []*Station { return md.stations }

func linkKey(a, b StationID) [2]StationID {
	if a > b {
		a, b = b, a
	}
	return [2]StationID{a, b}
}

// SetSNR sets the symmetric link SNR between two stations in dB.
func (md *Medium) SetSNR(a, b StationID, snrDB float64) {
	md.snr[linkKey(a, b)] = snrDB
}

// SNR returns the link SNR between two stations.
func (md *Medium) SNR(a, b StationID) float64 {
	if v, ok := md.snr[linkKey(a, b)]; ok {
		return v
	}
	return md.defaultSNR
}

// Busy reports whether the medium is currently occupied.
func (md *Medium) Busy() bool { return md.engine.Now() < md.busyUntil }

// Utilization returns lifetime busy airtime as a fraction of elapsed time.
func (md *Medium) Utilization() float64 {
	now := md.engine.Now()
	if now == 0 {
		return 0
	}
	return md.stats.BusyUs / (float64(now) / float64(sim.Microsecond))
}

// Seize occupies the medium for burst, modeling a non-CSMA interferer or a
// co-channel transmission from outside the network. If the medium is
// already busy the seizure starts when it frees.
func (md *Medium) Seize(burst sim.Time) {
	start := md.engine.Now()
	if md.busyUntil > start {
		start = md.busyUntil
	}
	md.busyUntil = start + burst
	// An interferer is audible to the whole domain.
	for _, st := range md.stations {
		if md.busyUntil > st.physBusyUntil {
			st.physBusyUntil = md.busyUntil
		}
	}
	md.stats.BusyUs += float64(burst)
	md.stats.InterfererUs += float64(burst)
	md.kickContention()
}

// AddInterferer schedules a duty-cycled interferer: every period it seizes
// the medium for period*dutyCycle. Returns a stop function.
func (md *Medium) AddInterferer(period sim.Time, dutyCycle float64) (stop func()) {
	burst := sim.Time(float64(period) * dutyCycle)
	if burst <= 0 {
		return func() {}
	}
	return md.engine.Ticker(period, func(e *sim.Engine) {
		md.Seize(burst)
	})
}

// kickContention arranges for a contention round now, unless one is
// already scheduled. Per-station deferral (carrier sense + NAV) is
// resolved inside contend, which reschedules itself if every station
// with traffic is still deferring.
func (md *Medium) kickContention() {
	if md.contentionPending {
		return
	}
	md.contentionPending = true
	md.engine.Schedule(md.engine.Now(), md.contend)
}

type contender struct {
	st *Station
	ac phy.AccessCategory
	// accessDelayUs is AIFS + backoff counter in slots, the station's bid
	// for this round.
	accessDelayUs float64
}

// contend resolves one channel-access round: every station-AC pair with
// queued traffic whose carrier sense (physical + NAV) is clear bids
// AIFS + backoff. A contender transmits when it hears no lower bid; equal
// audible bids collide; mutually hidden contenders transmit concurrently
// and corrupt each other at receivers that hear both (hidden.go). Losers
// freeze their decremented counters (802.11 backoff semantics), which
// preserves short-term fairness.
func (md *Medium) contend(e *sim.Engine) {
	md.contentionPending = false
	now := md.engine.Now()

	var cs []contender
	var nextFree sim.Time = -1
	for _, st := range md.stations {
		if !st.hasTraffic() {
			continue
		}
		if free := md.navUntil(st); free > now {
			// Still deferring; make sure a round happens when it frees.
			if nextFree < 0 || free < nextFree {
				nextFree = free
			}
			continue
		}
		for ac := range st.queues {
			if st.queues[ac].count == 0 {
				continue
			}
			bs := &st.backoffs[ac]
			if bs.counter < 0 {
				bs.counter = md.engine.Rand().Intn(bs.cw + 1)
			}
			p := phy.AccessCategory(ac).EDCA()
			cs = append(cs, contender{
				st:            st,
				ac:            phy.AccessCategory(ac),
				accessDelayUs: p.AIFSus() + float64(bs.counter)*phy.SlotUs,
			})
		}
	}
	if len(cs) == 0 {
		if nextFree >= 0 {
			md.contentionPending = true
			md.engine.Schedule(nextFree, md.contend)
		}
		return // idle; next Enqueue kicks us again
	}

	// A contender proceeds unless it hears a strictly lower bid.
	proceeds := func(c contender) bool {
		for _, o := range cs {
			if o.st == c.st {
				continue
			}
			if o.accessDelayUs < c.accessDelayUs && md.hears(c.st.ID, o.st.ID) {
				return false
			}
		}
		return true
	}

	var winners []contender
	minDelay := math.Inf(1)
	for _, c := range cs {
		if proceeds(c) {
			winners = append(winners, c)
			if c.accessDelayUs < minDelay {
				minDelay = c.accessDelayUs
			}
		}
	}
	// Losers freeze: decrement by the slots that elapsed after their AIFS
	// before someone they can hear seized the air.
	for _, c := range cs {
		if proceeds(c) {
			continue
		}
		bs := &c.st.backoffs[c.ac]
		elapsed := int((minDelay - c.ac.EDCA().AIFSus()) / phy.SlotUs)
		if elapsed > 0 {
			bs.counter -= elapsed
			if bs.counter < 0 {
				bs.counter = 0
			}
		}
	}

	// Process winners in bid order so earlier transmissions register
	// before later ones check the receiver's air (CTS suppression).
	sort.Slice(winners, func(i, j int) bool {
		return winners[i].accessDelayUs < winners[j].accessDelayUs
	})

	// Partition winners into audible collision groups: same bid AND
	// mutually audible -> classic collision. Everything else transmits
	// independently (possibly overlapping as hidden terminals).
	used := make([]bool, len(winners))
	for i, c := range winners {
		if used[i] {
			continue
		}
		group := []contender{c}
		used[i] = true
		for j := i + 1; j < len(winners); j++ {
			if used[j] {
				continue
			}
			o := winners[j]
			if o.accessDelayUs == c.accessDelayUs && md.hears(c.st.ID, o.st.ID) {
				group = append(group, o)
				used[j] = true
			}
		}
		start := now + usToTime(c.accessDelayUs)
		if len(group) == 1 {
			md.transmit(c, start)
		} else {
			md.collide(group, start)
		}
	}
}

// usToTime converts float microseconds to sim.Time, rounding up.
func usToTime(us float64) sim.Time { return sim.Time(math.Ceil(us)) }

// buildFrame pops an A-MPDU for the contender's next destination.
func (md *Medium) buildFrame(c contender) (dst StationID, rate phy.Rate, mpdus []*MPDU, ok bool) {
	q := c.st.queues[c.ac]
	dst, ok = q.nextDst()
	if !ok {
		return 0, phy.Rate{}, nil, false
	}
	rc := c.st.rateFor(dst)
	rate = rc.Select()
	head := q.byDst[dst].peek(0)
	headLen := 1500
	if head != nil {
		headLen = head.Dgram.WireLen()
	}
	maxAgg := phy.MaxAggregateForRate(rate, headLen)
	if rc.Probing() && maxAgg > MaxProbeAggregate {
		maxAgg = MaxProbeAggregate
	}
	mpdus = q.popFor(dst, maxAgg)
	// Assign per-TID sequence numbers at first transmission attempt;
	// retried MPDUs keep theirs.
	if c.st.tidCounters == nil {
		c.st.tidCounters = map[tidKey]uint32{}
	}
	tk := tidKey{src: dst, ac: c.ac} // keyed by peer on the tx side
	for _, m := range mpdus {
		if !m.tidSeqSet {
			m.tidSeq = c.st.tidCounters[tk]
			c.st.tidCounters[tk]++
			m.tidSeqSet = true
		}
	}
	return dst, rate, mpdus, len(mpdus) > 0
}

// frameAirtimeUs computes the exchange airtime for a concrete MPDU list.
func (md *Medium) frameAirtimeUs(c contender, rate phy.Rate, mpdus []*MPDU) float64 {
	bits := 0.0
	for _, m := range mpdus {
		per := m.Dgram.WireLen() + phy.MACHeaderLen
		if len(mpdus) > 1 {
			per += phy.MPDUDelimiter
		}
		bits += float64(per) * 8
	}
	air := phy.VHTPreambleUs + bits/rate.Mbps()
	if th := c.st.cfg.RTSThreshold; th > 0 && len(mpdus) > 0 && mpdus[0].Dgram.WireLen() > th {
		air += phy.RTSCTSOverheadUs()
	}
	return air
}

// transmit performs a successful (collision-free) frame exchange starting
// at start: airtime, per-MPDU PER draws, block ACK, callbacks, backoff
// reset, rate-controller update.
func (md *Medium) transmit(c contender, start sim.Time) {
	dst, rate, mpdus, ok := md.buildFrame(c)
	if !ok {
		md.kickContention()
		return
	}
	st0 := c.st
	if rtsProtects(st0, mpdus) && md.receiverBusy(st0.ID, dst, start) {
		// The RTS draws no CTS: the receiver's air is occupied by a
		// transmitter we cannot hear. Abort cheaply — RTS plus the CTS
		// timeout — re-queue the frame, and back off.
		rtsUs := phy.RTSCTSOverheadUs() + phy.AckTimeoutUs
		rtsEnd := start + usToTime(rtsUs)
		md.occupy(st0.ID, rtsEnd)
		md.registerTx(st0.ID, start, rtsEnd)
		md.stats.BusyUs += rtsUs
		st0.stats.RTSFailures++
		for i := len(mpdus) - 1; i >= 0; i-- {
			st0.queues[c.ac].requeueFront(mpdus[i])
		}
		bs := &st0.backoffs[c.ac]
		p := c.ac.EDCA()
		bs.cw = bs.cw*2 + 1
		if bs.cw > p.CWMax {
			bs.cw = p.CWMax
		}
		bs.counter = -1
		md.engine.Schedule(rtsEnd, func(*sim.Engine) { md.kickContention() })
		return
	}

	airUs := md.frameAirtimeUs(c, rate, mpdus) + phy.BlockAckAirtimeUs()
	end := start + usToTime(airUs)
	if end > md.busyUntil {
		md.busyUntil = end
	}
	md.stats.BusyUs += airUs
	md.stats.Frames++

	st := c.st
	st.stats.TxFrames++
	st.stats.TxMPDUs += int64(len(mpdus))
	st.stats.AirtimeUs += airUs
	if len(mpdus) <= phy.MaxAMPDUSubframes {
		st.stats.AggHistogram[len(mpdus)]++
	}

	// Physical carrier sense: everyone who hears the transmitter defers;
	// with RTS/CTS, everyone who hears the *receiver* defers too (NAV).
	md.occupy(st.ID, end)
	if rtsProtects(st, mpdus) {
		md.setNAV(st.ID, dst, end)
	}
	md.registerTx(st.ID, start, end)

	snr := md.SNR(st.ID, dst)
	md.engine.Schedule(end, func(e *sim.Engine) {
		md.completeFrame(c, dst, rate, mpdus, snr, start, airUs)
	})
}

func (md *Medium) completeFrame(c contender, dst StationID, rate phy.Rate, mpdus []*MPDU, snr float64, start sim.Time, airUs float64) {
	st := c.st
	now := md.engine.Now()
	rx := md.stations[dst]

	// A hidden transmitter overlapping this frame at the receiver
	// corrupts the overlapped share of its MPDUs: a brief RTS clips a
	// few subframes, a full concurrent A-MPDU destroys everything.
	hiddenFrac := 0.0
	if dur := float64(now - start); dur > 0 {
		hiddenFrac = float64(md.hiddenOverlap(st.ID, dst, start, now)) / dur
	}

	delivered := 0
	var failed []*MPDU
	for _, m := range mpdus {
		per := rate.PER(snr, m.Dgram.WireLen())
		if hiddenFrac > 0 && md.engine.Rand().Float64() < hiddenFrac {
			per = 1
		}
		if md.engine.Rand().Float64() >= per {
			delivered++
			st.stats.Delivered++
			st.stats.BytesDeliverd += int64(m.Dgram.PayloadLen)
			rx.reorderDeliver(m, now)
			if st.OnDelivered != nil {
				st.OnDelivered(m, true, now)
			}
		} else {
			failed = append(failed, m)
		}
	}

	// Re-queue failures at the head in original order (pushFront reverses,
	// so iterate from the back).
	limit := perACRetryLimit(c.ac)
	if st.cfg.RetryLimit > 0 {
		limit = st.cfg.RetryLimit
	}
	for i := len(failed) - 1; i >= 0; i-- {
		m := failed[i]
		m.Retries++
		if m.Retries > limit {
			st.stats.Dropped++
			// Advance the receiver's reorder window past the abandoned
			// MPDU so held frames behind it are released (BAR semantics).
			rx.reorderAdvance(st.ID, c.ac, m.tidSeq, now)
			if st.OnDelivered != nil {
				st.OnDelivered(m, false, now)
			}
			if st.OnDrop != nil {
				st.OnDrop(m, now)
			}
			continue
		}
		st.queues[c.ac].requeueFront(m)
	}

	st.rateFor(dst).Update(rate, len(mpdus), delivered)

	bs := &st.backoffs[c.ac]
	p := c.ac.EDCA()
	if delivered > 0 {
		bs.cw = p.CWMin
	} else {
		bs.cw = bs.cw*2 + 1
		if bs.cw > p.CWMax {
			bs.cw = p.CWMax
		}
	}
	bs.counter = -1

	report := FrameReport{
		At: start, Src: st.ID, Dst: dst, AC: c.ac, Rate: rate,
		AggSize: len(mpdus), Delivered: delivered, AirtimeUs: airUs,
	}
	if md.OnFrame != nil {
		md.OnFrame(report)
	}
	if md.OnTransmit != nil {
		md.OnTransmit(report, mpdus)
	}
	md.kickContention()
}

// collide handles >= 2 winners transmitting simultaneously: every frame is
// lost, the medium is busy for the longest of them plus an ACK timeout.
func (md *Medium) collide(winners []contender, start sim.Time) {
	type txAttempt struct {
		c     contender
		dst   StationID
		rate  phy.Rate
		mpdus []*MPDU
		airUs float64
	}
	var attempts []txAttempt
	maxAir := 0.0
	for _, c := range winners {
		dst, rate, mpdus, ok := md.buildFrame(c)
		if !ok {
			continue
		}
		air := md.frameAirtimeUs(c, rate, mpdus)
		if air > maxAir {
			maxAir = air
		}
		attempts = append(attempts, txAttempt{c, dst, rate, mpdus, air})
	}
	if len(attempts) == 0 {
		md.kickContention()
		return
	}
	if len(attempts) == 1 {
		// Everyone else's queue turned out to be empty; transmit normally.
		// Re-queue and go through transmit for uniform handling.
		a := attempts[0]
		for i := len(a.mpdus) - 1; i >= 0; i-- {
			a.c.st.queues[a.c.ac].requeueFront(a.mpdus[i])
		}
		md.transmit(a.c, start)
		return
	}

	totalUs := maxAir + phy.SlotUs + phy.AckTimeoutUs
	end := start + usToTime(totalUs)
	if end > md.busyUntil {
		md.busyUntil = end
	}
	for _, a := range attempts {
		md.occupy(a.c.st.ID, end)
		md.registerTx(a.c.st.ID, start, end)
	}
	md.stats.BusyUs += totalUs
	md.stats.Collisions++

	md.engine.Schedule(end, func(e *sim.Engine) {
		now := md.engine.Now()
		for _, a := range attempts {
			st := a.c.st
			st.stats.TxFrames++
			st.stats.TxMPDUs += int64(len(a.mpdus))
			st.stats.Collisions++
			st.stats.AirtimeUs += a.airUs

			limit := perACRetryLimit(a.c.ac)
			if st.cfg.RetryLimit > 0 {
				limit = st.cfg.RetryLimit
			}
			for i := len(a.mpdus) - 1; i >= 0; i-- {
				m := a.mpdus[i]
				m.Retries++
				if m.Retries > limit {
					st.stats.Dropped++
					md.stations[a.dst].reorderAdvance(st.ID, a.c.ac, m.tidSeq, now)
					if st.OnDelivered != nil {
						st.OnDelivered(m, false, now)
					}
					if st.OnDrop != nil {
						st.OnDrop(m, now)
					}
					continue
				}
				st.queues[a.c.ac].requeueFront(m)
			}

			st.rateFor(a.dst).Update(a.rate, len(a.mpdus), 0)

			bs := &st.backoffs[a.c.ac]
			p := a.c.ac.EDCA()
			bs.cw = bs.cw*2 + 1
			if bs.cw > p.CWMax {
				bs.cw = p.CWMax
			}
			bs.counter = -1

			if md.OnFrame != nil {
				md.OnFrame(FrameReport{
					At: start, Src: st.ID, Dst: a.dst, AC: a.c.ac, Rate: a.rate,
					AggSize: len(a.mpdus), Delivered: 0, AirtimeUs: a.airUs, Collision: true,
				})
			}
		}
		md.kickContention()
	})
}
