package mac

import (
	"repro/internal/phy"
	"repro/internal/sim"
)

// reorderBuf implements the receive-side block-ack reordering buffer of
// 802.11: MPDUs within a TID (here: a (transmitter, AC) pair) carry
// sequence numbers assigned at first transmission, and the receiver
// releases MSDUs to the upper layer strictly in order, holding
// out-of-order arrivals until the hole fills or the transmitter advances
// the window (the Block Ack Request path, which we model as a direct
// advance when the transmitter drops an MPDU after exhausting retries).
//
// Without this buffer, per-subframe losses inside an A-MPDU would surface
// as packet reordering to TCP and trigger spurious fast retransmits —
// something real 802.11 hides completely.
type reorderBuf struct {
	next uint32
	held map[uint32]*MPDU
}

type tidKey struct {
	src StationID
	ac  phy.AccessCategory
}

// reorderDeliver accepts an in-flight MPDU at the receiver and releases
// any in-order run to OnReceive.
func (s *Station) reorderDeliver(m *MPDU, now sim.Time) {
	if s.reorder == nil {
		s.reorder = map[tidKey]*reorderBuf{}
	}
	key := tidKey{src: m.Src, ac: m.AC}
	rb, ok := s.reorder[key]
	if !ok {
		// Sequence counters start at zero on the transmit side, so a new
		// buffer always expects zero: the first MPDU of a TID may itself
		// arrive out of order if an earlier subframe failed.
		rb = &reorderBuf{next: 0, held: map[uint32]*MPDU{}}
		s.reorder[key] = rb
	}
	if m.tidSeq < rb.next {
		// Duplicate of something already released; drop silently.
		return
	}
	rb.held[m.tidSeq] = m
	s.reorderFlush(rb, now)
}

// reorderFlush releases the contiguous run starting at rb.next.
func (s *Station) reorderFlush(rb *reorderBuf, now sim.Time) {
	for {
		m, ok := rb.held[rb.next]
		if !ok {
			return
		}
		delete(rb.held, rb.next)
		rb.next++
		if s.OnReceive != nil {
			s.OnReceive(m, now)
		}
	}
}

// reorderAdvance moves the window past a dropped sequence number and
// flushes: the transmitter gave up on tidSeq, so the receiver must not
// wait for it (802.11 BAR semantics).
func (s *Station) reorderAdvance(src StationID, ac phy.AccessCategory, droppedSeq uint32, now sim.Time) {
	if s.reorder == nil {
		return
	}
	rb, ok := s.reorder[tidKey{src: src, ac: ac}]
	if !ok {
		return
	}
	// Release, in order, everything held below the new window start: the
	// transmitter will never fill those gaps, but data already received
	// must still reach the upper layer.
	for seq := rb.next; seq <= droppedSeq; seq++ {
		if m, held := rb.held[seq]; held {
			delete(rb.held, seq)
			if s.OnReceive != nil {
				s.OnReceive(m, now)
			}
		}
	}
	if rb.next <= droppedSeq {
		rb.next = droppedSeq + 1
	}
	s.reorderFlush(rb, now)
}
