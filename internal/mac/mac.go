// Package mac implements a discrete-event IEEE 802.11ac MAC simulator:
// EDCA channel access (per-access-category AIFS/CW contention), A-MPDU
// aggregation with block acknowledgements, per-MPDU error rates from the
// PHY model, retransmission with per-AC retry limits, Minstrel-style rate
// adaptation, and airtime accounting.
//
// The simulator is the testbed substrate for the FastACK evaluation
// (Figs 10, 14-18) and the access-category study (Fig 4). Its essential
// property, per §5.1 of the paper, is that aggregate sizes emerge from
// queue depth at transmit opportunity: a TCP sender that is poorly clocked
// leaves shallow queues and therefore small aggregates.
package mac

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// StationID indexes a station within a Medium.
type StationID int

// MPDU is one MAC protocol data unit: an IP datagram plus MAC metadata.
type MPDU struct {
	Dgram      *packet.Datagram
	Src, Dst   StationID
	AC         phy.AccessCategory
	EnqueuedAt sim.Time // wire arrival at the transmitter (for 802.11 latency)
	Retries    int
	seq        uint64 // per-station monotonic, for debugging

	// tidSeq is the 802.11 per-TID sequence number, assigned at first
	// transmission attempt; the receiver's reorder buffer releases MSDUs
	// in tidSeq order.
	tidSeq    uint32
	tidSeqSet bool
}

// TIDSeq returns the 802.11 per-TID sequence number assigned at first
// transmission (0 and false before any attempt).
func (m *MPDU) TIDSeq() (uint32, bool) { return m.tidSeq, m.tidSeqSet }

func (m *MPDU) String() string {
	return fmt.Sprintf("MPDU[%d->%d %v retries=%d %v]", m.Src, m.Dst, m.AC, m.Retries, m.Dgram)
}

// DeliveredFn is invoked on the transmitter when the block ACK for an MPDU
// arrives (ok=true) or the MPDU is dropped after exhausting retries
// (ok=false). This is the 802.11-ACK hook FastACK builds on (§5.2).
type DeliveredFn func(m *MPDU, ok bool, now sim.Time)

// ReceiveFn is invoked on the receiver when an MPDU arrives intact.
type ReceiveFn func(m *MPDU, now sim.Time)

// StationConfig describes one station's radio and stack.
type StationConfig struct {
	Name    string
	NSS     int            // spatial streams (1-4)
	Width   spectrum.Width // operating bandwidth
	GI      phy.GuardInterval
	IsAP    bool
	TxDelay sim.Time // host-stack latency before an enqueued frame may contend
	// QueueLimit caps per-destination queue depth in packets (tail drop).
	// Zero means the default (512).
	QueueLimit int
	// SharedPoolLimit caps the total MPDUs queued across all destinations
	// and access categories, modeling the driver's shared tx-descriptor
	// pool. Zero means unlimited. Front-inserted (elevated) frames bypass
	// the pool check: they replace airtime already accounted for.
	SharedPoolLimit int
	// RetryLimit overrides the per-AC retry limits when > 0.
	RetryLimit int
	// RTSThreshold enables an RTS/CTS exchange for frames whose first MPDU
	// exceeds this many bytes. Zero disables RTS/CTS.
	RTSThreshold int
}

// perACRetryLimit returns how many retransmissions each access category
// attempts before declaring loss. More aggressive categories retry more
// (they regain the medium quickly), which is how VI/VO sustain the low
// loss rates observed in Fig 4.
func perACRetryLimit(ac phy.AccessCategory) int {
	switch ac {
	case phy.ACBK:
		return 4
	case phy.ACVI:
		return 12
	case phy.ACVO:
		return 8
	default:
		return 7
	}
}

const defaultQueueLimit = 512

// backoffState is the per-(station, AC) EDCA contention state.
type backoffState struct {
	cw      int // current contention window
	counter int // remaining backoff slots; -1 = needs fresh draw
}

// Station is one 802.11 transceiver attached to a Medium.
type Station struct {
	ID     StationID
	cfg    StationConfig
	medium *Medium

	queues   [4]*acQueue // indexed by phy.AccessCategory
	backoffs [4]backoffState
	seq      uint64

	rate map[StationID]*RateController // per-peer link adaptation

	// tidCounters assigns transmit-side per-TID sequence numbers (keyed by
	// destination peer + AC); reorder holds the receive-side buffers
	// (keyed by source peer + AC).
	tidCounters map[tidKey]uint32
	reorder     map[tidKey]*reorderBuf

	// Carrier-sense state: physBusyUntil is raised by audible
	// transmissions and interferers; navBusyUntil by overheard RTS/CTS
	// exchanges (virtual carrier sense, §4.1.2).
	physBusyUntil sim.Time
	navBusyUntil  sim.Time

	// Upper-layer hooks.
	OnReceive   ReceiveFn
	OnDelivered DeliveredFn
	// OnDrop is invoked when a frame is tail-dropped at enqueue or dropped
	// after exhausting retries. May be nil.
	OnDrop func(m *MPDU, now sim.Time)

	stats StationStats
}

// StationStats accumulates per-station counters.
type StationStats struct {
	TxMPDUs       int64   // MPDU transmission attempts
	TxFrames      int64   // A-MPDU frames sent
	Delivered     int64   // MPDUs acknowledged
	Dropped       int64   // MPDUs lost (retry exhaustion or tail drop)
	PoolDrops     int64   // tail drops from shared-pool exhaustion
	Collisions    int64   // frames lost to collision
	RTSFailures   int64   // RTS exchanges that drew no CTS (receiver busy)
	AirtimeUs     float64 // airtime consumed transmitting
	BytesDeliverd int64   // payload bytes acknowledged
	AggHistogram  [phy.MaxAMPDUSubframes + 1]int64
}

// MeanAggregate returns the mean A-MPDU subframe count.
func (s *StationStats) MeanAggregate() float64 {
	var n, sum int64
	for size, c := range s.AggHistogram {
		n += c
		sum += int64(size) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Name returns the configured station name.
func (s *Station) Name() string { return s.cfg.Name }

// Config returns the station configuration.
func (s *Station) Config() StationConfig { return s.cfg }

// Stats returns a snapshot of the station counters.
func (s *Station) Stats() StationStats { return s.stats }

// QueueDepth returns the number of MPDUs queued for dst in category ac.
func (s *Station) QueueDepth(ac phy.AccessCategory, dst StationID) int {
	return s.queues[ac].depthFor(dst)
}

// QueuedBytes returns the total bytes queued in category ac.
func (s *Station) QueuedBytes(ac phy.AccessCategory) int { return s.queues[ac].bytes }

// hasTraffic reports whether any AC has queued frames.
func (s *Station) hasTraffic() bool {
	for _, q := range s.queues {
		if q.count > 0 {
			return true
		}
	}
	return false
}

// totalQueued counts MPDUs across all ACs and destinations.
func (s *Station) totalQueued() int {
	n := 0
	for _, q := range s.queues {
		n += q.count
	}
	return n
}

// Enqueue submits a datagram for transmission to dst under category ac.
// It returns false if the per-destination queue limit tail-dropped the
// packet. TxDelay models host-stack latency before the frame can contend
// (the ≥2 ms client TCP-ACK turnaround noted in §5.1).
func (s *Station) Enqueue(d *packet.Datagram, dst StationID, ac phy.AccessCategory) bool {
	limit := s.cfg.QueueLimit
	if limit <= 0 {
		limit = defaultQueueLimit
	}
	q := s.queues[ac]
	m := &MPDU{
		Dgram: d, Src: s.ID, Dst: dst, AC: ac,
		EnqueuedAt: s.medium.engine.Now(),
		seq:        s.seq,
	}
	s.seq++
	if pool := s.cfg.SharedPoolLimit; pool > 0 && s.totalQueued() >= pool {
		s.stats.Dropped++
		s.stats.PoolDrops++
		if s.OnDrop != nil {
			s.OnDrop(m, s.medium.engine.Now())
		}
		return false
	}
	if q.depthFor(dst) >= limit {
		s.stats.Dropped++
		if s.OnDrop != nil {
			s.OnDrop(m, s.medium.engine.Now())
		}
		return false
	}
	if s.cfg.TxDelay > 0 {
		s.medium.engine.After(s.cfg.TxDelay, func(e *sim.Engine) {
			q.enqueue(m)
			s.medium.kickContention()
		})
		return true
	}
	q.enqueue(m)
	s.medium.kickContention()
	return true
}

// FlushDst discards every queued MPDU destined to dst across all access
// categories (used when a client roams away) and returns the count.
func (s *Station) FlushDst(dst StationID) int {
	removed := 0
	for _, q := range s.queues {
		d := q.byDst[dst]
		if d == nil {
			continue
		}
		for d.len() > 0 {
			m := d.popFront()
			q.count--
			q.bytes -= m.Dgram.WireLen()
			removed++
		}
	}
	return removed
}

// EnqueueFront submits a datagram at the head of the destination's queue,
// ahead of already-queued frames — the "priority elevation" FastACK applies
// to end-to-end retransmissions and cache re-drives (§5.4 case ii).
func (s *Station) EnqueueFront(d *packet.Datagram, dst StationID, ac phy.AccessCategory) {
	m := &MPDU{
		Dgram: d, Src: s.ID, Dst: dst, AC: ac,
		EnqueuedAt: s.medium.engine.Now(),
		seq:        s.seq,
	}
	s.seq++
	s.queues[ac].requeueFront(m)
	s.medium.kickContention()
}

// rateFor returns (creating if needed) the rate controller toward peer.
func (s *Station) rateFor(peer StationID) *RateController {
	rc, ok := s.rate[peer]
	if !ok {
		snr := s.medium.SNR(s.ID, peer)
		width := s.cfg.Width
		if pw := s.medium.stations[peer].cfg.Width; pw < width {
			width = pw // operate at the narrower of the two stations
		}
		nss := s.cfg.NSS
		if pn := s.medium.stations[peer].cfg.NSS; pn < nss {
			nss = pn
		}
		rc = NewRateController(nss, width, s.cfg.GI, snr, s.medium.engine.Rand())
		s.rate[peer] = rc
	}
	return rc
}
