// Package phy models the 802.11n/ac physical layer: MCS rate tables across
// channel width, spatial streams and guard interval; a log-distance indoor
// propagation model with shadowing; SNR-dependent packet error rates; and
// over-the-air duration computation for aggregated frames.
package phy

import (
	"fmt"
	"math"

	"repro/internal/spectrum"
)

// GuardInterval selects the OFDM guard interval.
type GuardInterval int

const (
	// LGI is the 800 ns long guard interval.
	LGI GuardInterval = iota
	// SGI is the 400 ns short guard interval.
	SGI
)

func (g GuardInterval) String() string {
	if g == SGI {
		return "SGI"
	}
	return "LGI"
}

// symbolDuration returns the OFDM symbol duration in microseconds.
func (g GuardInterval) symbolDuration() float64 {
	if g == SGI {
		return 3.6
	}
	return 4.0
}

// MCS is a VHT modulation-and-coding-scheme index (0-9).
type MCS int

// MaxMCS is the highest VHT MCS index.
const MaxMCS MCS = 9

// modulation bits per subcarrier per MCS index.
var mcsBits = [10]float64{1, 2, 2, 4, 4, 6, 6, 6, 8, 8}

// coding rate per MCS index.
var mcsCoding = [10]float64{0.5, 0.5, 0.75, 0.5, 0.75, 2.0 / 3, 0.75, 5.0 / 6, 0.75, 5.0 / 6}

// mcsName per index, for reporting.
var mcsName = [10]string{
	"BPSK1/2", "QPSK1/2", "QPSK3/4", "16QAM1/2", "16QAM3/4",
	"64QAM2/3", "64QAM3/4", "64QAM5/6", "256QAM3/4", "256QAM5/6",
}

func (m MCS) String() string {
	if m < 0 || m > MaxMCS {
		return fmt.Sprintf("MCS(%d)", int(m))
	}
	return fmt.Sprintf("MCS%d(%s)", int(m), mcsName[m])
}

// dataSubcarriers per channel width (VHT numerology).
func dataSubcarriers(w spectrum.Width) float64 {
	switch w {
	case spectrum.W20:
		return 52
	case spectrum.W40:
		return 108
	case spectrum.W80:
		return 234
	case spectrum.W160:
		return 468
	default:
		panic(fmt.Sprintf("phy: invalid width %v", w))
	}
}

// Rate is one selectable PHY rate.
type Rate struct {
	MCS   MCS
	NSS   int // spatial streams, 1-4
	Width spectrum.Width
	GI    GuardInterval
}

func (r Rate) String() string {
	return fmt.Sprintf("%v x%dss %v %v = %.1f Mbps", r.MCS, r.NSS, r.Width, r.GI, r.Mbps())
}

// Valid reports whether the (MCS, NSS, width) combination is defined by
// 802.11ac. Two well-known exclusions exist: MCS9 is undefined at 20 MHz
// except for 3 spatial streams, and MCS6 is undefined at 80 MHz with 3
// streams.
func (r Rate) Valid() bool {
	if r.MCS < 0 || r.MCS > MaxMCS || r.NSS < 1 || r.NSS > 4 || !r.Width.Valid() {
		return false
	}
	if r.MCS == 9 && r.Width == spectrum.W20 && r.NSS != 3 {
		return false
	}
	if r.MCS == 6 && r.Width == spectrum.W80 && r.NSS == 3 {
		return false
	}
	return true
}

// Mbps returns the PHY data rate in megabits per second.
func (r Rate) Mbps() float64 {
	if !r.Valid() {
		return 0
	}
	bitsPerSymbol := dataSubcarriers(r.Width) * mcsBits[r.MCS] * mcsCoding[r.MCS] * float64(r.NSS)
	return bitsPerSymbol / r.GI.symbolDuration()
}

// RateTable returns all valid rates for a station capable of up to maxNSS
// streams and maxWidth bandwidth, sorted ascending by throughput.
func RateTable(maxNSS int, maxWidth spectrum.Width, gi GuardInterval) []Rate {
	var out []Rate
	for nss := 1; nss <= maxNSS; nss++ {
		for _, w := range spectrum.Widths {
			if w > maxWidth {
				break
			}
			for m := MCS(0); m <= MaxMCS; m++ {
				r := Rate{MCS: m, NSS: nss, Width: w, GI: gi}
				if r.Valid() {
					out = append(out, r)
				}
			}
		}
	}
	sortRates(out)
	return out
}

// RatesForWidth returns the valid rates at exactly width w, ascending.
func RatesForWidth(maxNSS int, w spectrum.Width, gi GuardInterval) []Rate {
	var out []Rate
	for nss := 1; nss <= maxNSS; nss++ {
		for m := MCS(0); m <= MaxMCS; m++ {
			r := Rate{MCS: m, NSS: nss, Width: w, GI: gi}
			if r.Valid() {
				out = append(out, r)
			}
		}
	}
	sortRates(out)
	return out
}

func sortRates(rs []Rate) {
	// Insertion sort: tables are tiny and this avoids importing sort with
	// a closure allocation on a hot path.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Mbps() < rs[j-1].Mbps(); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// MaxRate returns the top rate for the capability set.
func MaxRate(maxNSS int, maxWidth spectrum.Width, gi GuardInterval) Rate {
	table := RateTable(maxNSS, maxWidth, gi)
	return table[len(table)-1]
}

// requiredSNR is the approximate SNR (dB) at which each MCS achieves a 10%
// PER on a 20 MHz single-stream link, drawn from vendor sensitivity tables.
var requiredSNR = [10]float64{2, 5, 9, 11, 15, 18, 20, 25, 29, 31}

// RequiredSNR returns the SNR (dB) needed for ~10% PER at this rate.
// Doubling bandwidth doubles noise power (+3 dB); each additional spatial
// stream needs ~2.5 dB more SNR for stream separation.
func (r Rate) RequiredSNR() float64 {
	snr := requiredSNR[r.MCS]
	switch r.Width {
	case spectrum.W40:
		snr += 3
	case spectrum.W80:
		snr += 6
	case spectrum.W160:
		snr += 9
	}
	snr += 2.5 * float64(r.NSS-1)
	if r.GI == SGI {
		snr += 0.5
	}
	return snr
}

// PER returns the expected packet error rate for an MPDU of mpduBytes sent
// at rate r with the given SNR (dB). The model is a logistic curve anchored
// at RequiredSNR (10% PER) with a slope calibrated so that +3 dB of margin
// pushes PER below 1%, matching the steep waterfall region of real radios.
// Longer MPDUs fail more often; the length term scales the effective bit
// error exposure relative to a 1500-byte reference frame.
func (r Rate) PER(snrDB float64, mpduBytes int) float64 {
	const slope = 1.4 // logistic steepness per dB
	margin := snrDB - r.RequiredSNR()
	// logistic anchored at 10% PER when margin == 0.
	base := 1.0 / (1.0 + math.Exp(slope*margin)*9.0)
	if mpduBytes <= 0 {
		mpduBytes = 1500
	}
	// Convert to per-bit survival and re-expose for the actual length.
	refBits := 1500.0 * 8
	bits := float64(mpduBytes) * 8
	survive := math.Pow(1-clamp01(base), bits/refBits)
	return clamp01(1 - survive)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
