package phy

import (
	"math"
	"math/rand"

	"repro/internal/spectrum"
)

// Propagation is a log-distance indoor path-loss model with log-normal
// shadowing, the standard model for enterprise office RF planning.
//
//	PL(d) = PL(d0) + 10·n·log10(d/d0) + Xσ
//
// where PL(d0) is the free-space loss at the reference distance (1 m) for
// the carrier frequency, n is the path-loss exponent (≈3 for offices with
// interior walls), and Xσ is zero-mean Gaussian shadowing.
type Propagation struct {
	// Exponent is the path-loss exponent n. Free space is 2.0; dense
	// offices are 3.0-3.5.
	Exponent float64
	// ShadowSigmaDB is the standard deviation of log-normal shadowing.
	ShadowSigmaDB float64
	// WallLossDB is added once per wall crossed (callers supply counts).
	WallLossDB float64
}

// DefaultIndoor is tuned for a drywall-partitioned enterprise office.
func DefaultIndoor() Propagation {
	return Propagation{Exponent: 3.0, ShadowSigmaDB: 4.0, WallLossDB: 5.0}
}

// freeSpaceAt1m returns the free-space path loss at 1 m for the band.
func freeSpaceAt1m(band spectrum.Band) float64 {
	// FSPL(dB) = 20 log10(d) + 20 log10(f MHz) − 27.55, d in meters.
	fMHz := 2437.0
	if band == spectrum.Band5 {
		fMHz = 5250.0
	}
	return 20*math.Log10(fMHz) - 27.55
}

// PathLossDB returns the deterministic path loss over distance meters with
// walls interior walls, excluding shadowing.
func (p Propagation) PathLossDB(band spectrum.Band, meters float64, walls int) float64 {
	if meters < 1 {
		meters = 1
	}
	return freeSpaceAt1m(band) + 10*p.Exponent*math.Log10(meters) + float64(walls)*p.WallLossDB
}

// Shadowed returns path loss including a shadowing draw from rng.
func (p Propagation) Shadowed(band spectrum.Band, meters float64, walls int, rng *rand.Rand) float64 {
	return p.PathLossDB(band, meters, walls) + rng.NormFloat64()*p.ShadowSigmaDB
}

// NoiseFloorDBm returns thermal noise power for the given bandwidth plus a
// typical 7 dB receiver noise figure: −174 dBm/Hz + 10·log10(BW) + NF.
func NoiseFloorDBm(w spectrum.Width) float64 {
	bwHz := float64(w) * 1e6
	return -174 + 10*math.Log10(bwHz) + 7
}

// Link describes one radio link budget.
type Link struct {
	TxPowerDBm float64 // conducted transmit power
	TxGainDBi  float64 // transmit antenna gain
	RxGainDBi  float64 // receive antenna gain
	LossDB     float64 // path loss (deterministic + shadowing)
}

// RSSIDBm returns the received signal strength.
func (l Link) RSSIDBm() float64 {
	return l.TxPowerDBm + l.TxGainDBi + l.RxGainDBi - l.LossDB
}

// SNRDB returns the link SNR for the given receive bandwidth.
func (l Link) SNRDB(w spectrum.Width) float64 {
	return l.RSSIDBm() - NoiseFloorDBm(w)
}

// DefaultAPTxPowerDBm is a typical enterprise AP 5 GHz transmit power.
const DefaultAPTxPowerDBm = 20.0

// DefaultClientTxPowerDBm is a typical laptop/phone transmit power.
const DefaultClientTxPowerDBm = 15.0

// DefaultAntennaGainDBi is a typical integrated omni antenna gain.
const DefaultAntennaGainDBi = 3.0

// CarrierSenseThresholdDBm is the energy level above which a station defers
// (clear channel assessment for valid 802.11 preambles).
const CarrierSenseThresholdDBm = -82.0

// MinAssociationRSSIDBm is the weakest signal at which clients remain
// usefully associated.
const MinAssociationRSSIDBm = -78.0
