package phy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/spectrum"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestKnownRates pins well-known 802.11 data rates from the standard's
// MCS tables.
func TestKnownRates(t *testing.T) {
	cases := []struct {
		r    Rate
		mbps float64
	}{
		// VHT20 MCS0 1SS LGI = 6.5 Mbps.
		{Rate{MCS: 0, NSS: 1, Width: spectrum.W20, GI: LGI}, 6.5},
		// VHT20 MCS7 1SS LGI = 65 Mbps.
		{Rate{MCS: 7, NSS: 1, Width: spectrum.W20, GI: LGI}, 65},
		// VHT40 MCS9 1SS SGI = 200 Mbps.
		{Rate{MCS: 9, NSS: 1, Width: spectrum.W40, GI: SGI}, 200},
		// VHT80 MCS9 1SS SGI = 433.3 Mbps.
		{Rate{MCS: 9, NSS: 1, Width: spectrum.W80, GI: SGI}, 433.3},
		// VHT80 MCS9 3SS SGI = 1300 Mbps (the "1.3 Gbps" headline rate).
		{Rate{MCS: 9, NSS: 3, Width: spectrum.W80, GI: SGI}, 1300},
		// VHT160 MCS9 2SS SGI = 1733.3 Mbps.
		{Rate{MCS: 9, NSS: 2, Width: spectrum.W160, GI: SGI}, 1733.3},
		// The paper's §3.2.4 examples: 40 MHz 2SS -> 300 Mbps (11n-style),
		// 80 MHz 2SS -> 866.7 Mbps.
		{Rate{MCS: 7, NSS: 2, Width: spectrum.W40, GI: SGI}, 300},
		{Rate{MCS: 9, NSS: 2, Width: spectrum.W80, GI: SGI}, 866.7},
	}
	for _, c := range cases {
		if got := c.r.Mbps(); !almostEq(got, c.mbps, 0.1) {
			t.Errorf("%v = %.1f Mbps, want %.1f", c.r, got, c.mbps)
		}
	}
}

func TestInvalidMCSCombos(t *testing.T) {
	// MCS9 at 20 MHz is only defined for 3 streams.
	if (Rate{MCS: 9, NSS: 1, Width: spectrum.W20, GI: LGI}).Valid() {
		t.Error("MCS9 20MHz 1SS should be invalid")
	}
	if !(Rate{MCS: 9, NSS: 3, Width: spectrum.W20, GI: LGI}).Valid() {
		t.Error("MCS9 20MHz 3SS should be valid")
	}
	// MCS6 at 80 MHz with 3 streams is undefined.
	if (Rate{MCS: 6, NSS: 3, Width: spectrum.W80, GI: LGI}).Valid() {
		t.Error("MCS6 80MHz 3SS should be invalid")
	}
	if (Rate{MCS: 10, NSS: 1, Width: spectrum.W20, GI: LGI}).Valid() {
		t.Error("MCS10 should be invalid")
	}
}

func TestRateTableSortedAndValid(t *testing.T) {
	table := RateTable(3, spectrum.W80, SGI)
	if len(table) == 0 {
		t.Fatal("empty table")
	}
	prev := 0.0
	for _, r := range table {
		if !r.Valid() {
			t.Fatalf("invalid rate in table: %v", r)
		}
		if r.Mbps() < prev {
			t.Fatalf("table not sorted at %v", r)
		}
		prev = r.Mbps()
	}
	top := MaxRate(3, spectrum.W80, SGI)
	if !almostEq(top.Mbps(), 1300, 0.1) {
		t.Fatalf("MaxRate(3, 80, SGI) = %v", top)
	}
}

// Property: PER decreases with SNR and increases with frame length.
func TestQuickPERMonotonic(t *testing.T) {
	r := Rate{MCS: 5, NSS: 2, Width: spectrum.W80, GI: SGI}
	f := func(snrRaw, extraRaw uint8) bool {
		snr := float64(snrRaw%50) - 5
		extra := float64(extraRaw%20) + 0.5
		if r.PER(snr+extra, 1500) > r.PER(snr, 1500)+1e-12 {
			return false
		}
		return r.PER(snr, 3000) >= r.PER(snr, 500)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPERAnchor(t *testing.T) {
	r := Rate{MCS: 4, NSS: 1, Width: spectrum.W20, GI: LGI}
	// At the required SNR, PER is ~10%.
	if got := r.PER(r.RequiredSNR(), 1500); !almostEq(got, 0.10, 0.02) {
		t.Fatalf("PER at required SNR = %v, want ~0.10", got)
	}
	// 5 dB of margin should make the link essentially clean.
	if got := r.PER(r.RequiredSNR()+5, 1500); got > 0.01 {
		t.Fatalf("PER at +5 dB = %v, want < 1%%", got)
	}
	// 6 dB below, the link is hopeless.
	if got := r.PER(r.RequiredSNR()-6, 1500); got < 0.9 {
		t.Fatalf("PER at -6 dB = %v, want > 0.9", got)
	}
}

func TestRequiredSNRRises(t *testing.T) {
	prev := -100.0
	for m := MCS(0); m <= MaxMCS; m++ {
		r := Rate{MCS: m, NSS: 1, Width: spectrum.W40, GI: LGI}
		if s := r.RequiredSNR(); s <= prev {
			t.Fatalf("RequiredSNR not increasing at %v", r)
		} else {
			prev = s
		}
	}
	// Wider channels and more streams need more SNR.
	base := Rate{MCS: 4, NSS: 1, Width: spectrum.W20, GI: LGI}
	wide := Rate{MCS: 4, NSS: 1, Width: spectrum.W80, GI: LGI}
	multi := Rate{MCS: 4, NSS: 3, Width: spectrum.W20, GI: LGI}
	if wide.RequiredSNR() <= base.RequiredSNR() || multi.RequiredSNR() <= base.RequiredSNR() {
		t.Fatal("width/stream SNR penalties missing")
	}
}

func TestPathLoss(t *testing.T) {
	p := DefaultIndoor()
	// Free space at 1 m, 5 GHz is ~47 dB.
	at1 := p.PathLossDB(spectrum.Band5, 1, 0)
	if !almostEq(at1, 46.9, 1.0) {
		t.Fatalf("loss at 1 m = %v", at1)
	}
	// Log-distance: +10·n dB per decade.
	at10 := p.PathLossDB(spectrum.Band5, 10, 0)
	if !almostEq(at10-at1, 30, 0.1) {
		t.Fatalf("decade slope = %v, want 30", at10-at1)
	}
	// Walls add loss.
	if p.PathLossDB(spectrum.Band5, 10, 2) <= at10 {
		t.Fatal("wall loss missing")
	}
	// 2.4 GHz propagates better than 5 GHz.
	if p.PathLossDB(spectrum.Band2G4, 10, 0) >= at10 {
		t.Fatal("2.4 GHz should have lower path loss")
	}
	// Sub-meter clamps to 1 m.
	if p.PathLossDB(spectrum.Band5, 0.1, 0) != at1 {
		t.Fatal("sub-meter distance should clamp")
	}
}

func TestNoiseFloor(t *testing.T) {
	// -174 + 10log10(20e6) + 7 = -94 dBm.
	if got := NoiseFloorDBm(spectrum.W20); !almostEq(got, -94, 0.2) {
		t.Fatalf("20 MHz noise floor = %v", got)
	}
	// Doubling bandwidth raises the floor 3 dB.
	if diff := NoiseFloorDBm(spectrum.W40) - NoiseFloorDBm(spectrum.W20); !almostEq(diff, 3.01, 0.01) {
		t.Fatalf("bandwidth noise delta = %v", diff)
	}
}

func TestLinkBudget(t *testing.T) {
	l := Link{TxPowerDBm: 20, TxGainDBi: 3, RxGainDBi: 3, LossDB: 80}
	if got := l.RSSIDBm(); got != -54 {
		t.Fatalf("RSSI = %v", got)
	}
	if got := l.SNRDB(spectrum.W20); !almostEq(got, 40, 0.3) {
		t.Fatalf("SNR = %v", got)
	}
}

func TestFrameAirtime(t *testing.T) {
	r := Rate{MCS: 9, NSS: 3, Width: spectrum.W80, GI: SGI} // 1300 Mbps
	single := FrameAirtimeUs(r, 1, 1500)
	if single <= VHTPreambleUs {
		t.Fatal("airtime must exceed the preamble")
	}
	// 64 aggregated MPDUs cost far less than 64 separate frames.
	agg := FrameAirtimeUs(r, 64, 1500)
	if agg >= 64*single {
		t.Fatal("aggregation saves no airtime?")
	}
	// Preamble amortization: per-MPDU cost shrinks with aggregation.
	if agg/64 >= single {
		t.Fatal("per-MPDU cost did not shrink")
	}
	if FrameAirtimeUs(r, 0, 1500) != 0 {
		t.Fatal("zero MPDUs should cost nothing")
	}
}

func TestMaxAggregateForRate(t *testing.T) {
	fast := Rate{MCS: 9, NSS: 3, Width: spectrum.W80, GI: SGI}
	if got := MaxAggregateForRate(fast, 1500); got != MaxAMPDUSubframes {
		t.Fatalf("fast rate agg = %d, want %d", got, MaxAMPDUSubframes)
	}
	// At 6.5 Mbps, 64 x 1500 B would take ~118 ms; the 5.3 ms cap must
	// bite hard.
	slow := Rate{MCS: 0, NSS: 1, Width: spectrum.W20, GI: LGI}
	got := MaxAggregateForRate(slow, 1500)
	if got >= 10 {
		t.Fatalf("slow rate agg = %d, want small", got)
	}
	if air := FrameAirtimeUs(slow, got, 1500); air > MaxAMPDUDurationUs {
		t.Fatalf("airtime cap violated: %v", air)
	}
}

func TestEDCAOrdering(t *testing.T) {
	// More aggressive categories have shorter AIFS and smaller windows.
	if !(ACVO.EDCA().AIFSus() <= ACVI.EDCA().AIFSus() &&
		ACVI.EDCA().AIFSus() < ACBE.EDCA().AIFSus() &&
		ACBE.EDCA().AIFSus() < ACBK.EDCA().AIFSus()) {
		t.Fatal("AIFS ordering wrong")
	}
	if ACVO.EDCA().CWMin >= ACBE.EDCA().CWMin {
		t.Fatal("CWMin ordering wrong")
	}
	for _, ac := range []AccessCategory{ACBK, ACBE, ACVI, ACVO} {
		if ac.String() == "?" {
			t.Fatal("missing AC string")
		}
	}
}

func TestEffectiveThroughputImproves(t *testing.T) {
	r := Rate{MCS: 9, NSS: 3, Width: spectrum.W80, GI: SGI}
	t1 := EffectiveMACThroughputMbps(r, 1, 1500)
	t64 := EffectiveMACThroughputMbps(r, 64, 1500)
	if t64 <= t1 {
		t.Fatal("aggregation should raise MAC throughput")
	}
	// Single-MPDU MAC efficiency at 1.3 Gbps is terrible (<10%): this is
	// exactly why §5.1 says 802.11ac relies on aggregation.
	if t1/r.Mbps() > 0.10 {
		t.Fatalf("single-MPDU efficiency = %.2f, expected < 0.10", t1/r.Mbps())
	}
	if t64/r.Mbps() < 0.5 {
		t.Fatalf("64-aggregate efficiency = %.2f, expected > 0.5", t64/r.Mbps())
	}
}

func TestUtilizationCapacity(t *testing.T) {
	if UtilizationCapacity(-1) != 1 || UtilizationCapacity(2) != 0 {
		t.Fatal("clamping broken")
	}
	if UtilizationCapacity(0.3) != 0.7 {
		t.Fatal("idle share wrong")
	}
}
