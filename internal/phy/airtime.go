package phy

// MAC/PHY timing constants for 5 GHz OFDM (802.11ac), in microseconds.
// These govern both real airtime computation and the MAC simulator's clock.
const (
	SIFSus        = 16 // short interframe space, 5 GHz
	SlotUs        = 9  // slot time
	DIFSus        = SIFSus + 2*SlotUs
	VHTPreambleUs = 44.0 // L-STF+L-LTF+L-SIG+VHT-SIG-A+VHT-STF+VHT-LTFx2+VHT-SIG-B (3x3 typical)
	LegacyRateMbp = 24.0 // control frame (ACK/BA/RTS/CTS) rate
	BlockAckBytes = 32   // compressed block ack frame
	AckBytes      = 14
	RTSBytes      = 20
	CTSBytes      = 14
	MPDUDelimiter = 4  // A-MPDU delimiter bytes per subframe
	MACHeaderLen  = 34 // QoS data header + FCS
	SGIns         = 400
)

// EDCA access category parameters (802.11e), per Table 8 of the standard.
type EDCAParams struct {
	AIFSN       int
	CWMin       int
	CWMax       int
	TXOPLimitUs int
}

// AccessCategory enumerates the four 802.11e ACs (§3.2.4).
type AccessCategory int

const (
	ACBK AccessCategory = iota // background
	ACBE                       // best effort
	ACVI                       // video
	ACVO                       // voice
)

func (a AccessCategory) String() string {
	switch a {
	case ACBK:
		return "BK"
	case ACBE:
		return "BE"
	case ACVI:
		return "VI"
	case ACVO:
		return "VO"
	}
	return "?"
}

// EDCA returns the standard contention parameters for the category.
func (a AccessCategory) EDCA() EDCAParams {
	switch a {
	case ACBK:
		return EDCAParams{AIFSN: 7, CWMin: 15, CWMax: 1023, TXOPLimitUs: 0}
	case ACVI:
		return EDCAParams{AIFSN: 2, CWMin: 7, CWMax: 15, TXOPLimitUs: 3008}
	case ACVO:
		return EDCAParams{AIFSN: 2, CWMin: 3, CWMax: 7, TXOPLimitUs: 1504}
	default: // ACBE
		return EDCAParams{AIFSN: 3, CWMin: 15, CWMax: 1023, TXOPLimitUs: 2528}
	}
}

// AIFSus returns the arbitration interframe space duration.
func (p EDCAParams) AIFSus() float64 { return SIFSus + float64(p.AIFSN)*SlotUs }

// FrameAirtimeUs returns the over-the-air duration (µs) of an A-MPDU
// carrying mpduCount subframes of mpduBytes each at rate r, excluding
// contention but including preamble. A single-MPDU frame omits delimiters.
func FrameAirtimeUs(r Rate, mpduCount, mpduBytes int) float64 {
	if mpduCount <= 0 {
		return 0
	}
	perMPDU := mpduBytes + MACHeaderLen
	if mpduCount > 1 {
		perMPDU += MPDUDelimiter
	}
	bits := float64(mpduCount*perMPDU) * 8
	return VHTPreambleUs + bits/r.Mbps()
}

// BlockAckAirtimeUs is the duration of the SIFS + block ACK response.
func BlockAckAirtimeUs() float64 {
	return SIFSus + legacyFrameUs(BlockAckBytes)
}

// AckAirtimeUs is the duration of the SIFS + legacy ACK response.
func AckAirtimeUs() float64 {
	return SIFSus + legacyFrameUs(AckBytes)
}

// RTSCTSOverheadUs is the RTS + SIFS + CTS + SIFS exchange preceding data.
func RTSCTSOverheadUs() float64 {
	return legacyFrameUs(RTSBytes) + SIFSus + legacyFrameUs(CTSBytes) + SIFSus
}

// legacyFrameUs is the duration of a control frame at the legacy rate with
// a legacy (20 µs) preamble.
func legacyFrameUs(bytes int) float64 {
	return 20 + float64(bytes)*8/LegacyRateMbp
}

// AckTimeoutUs is how long a transmitter waits for a missing ACK/BA before
// concluding the exchange failed (EIFS-style recovery).
const AckTimeoutUs = SIFSus + SlotUs + 25

// MaxAMPDUSubframes is the block-ack window limit on subframes per A-MPDU.
const MaxAMPDUSubframes = 64

// MaxAMPDUDurationUs caps a single transmission at 5.3 ms of airtime
// (802.11ac wave-2, footnote 6 of the paper).
const MaxAMPDUDurationUs = 5300.0

// MaxAggregateForRate returns the largest subframe count that fits within
// both the block-ack window and the airtime cap at rate r.
func MaxAggregateForRate(r Rate, mpduBytes int) int {
	n := MaxAMPDUSubframes
	for n > 1 && FrameAirtimeUs(r, n, mpduBytes) > MaxAMPDUDurationUs {
		n--
	}
	return n
}

// EffectiveMACThroughputMbps estimates the saturated single-station MAC
// throughput at rate r with aggregation aggr: payload bits divided by the
// full exchange time (DIFS + average backoff + frame + block ACK).
func EffectiveMACThroughputMbps(r Rate, aggr, mpduBytes int) float64 {
	if aggr <= 0 {
		return 0
	}
	be := ACBE.EDCA()
	avgBackoff := float64(be.CWMin) / 2 * SlotUs
	exchange := be.AIFSus() + avgBackoff + FrameAirtimeUs(r, aggr, mpduBytes) + BlockAckAirtimeUs()
	payloadBits := float64(aggr*mpduBytes) * 8
	return payloadBits / exchange
}

// UtilizationCapacity estimates the fraction of nominal capacity available
// on a channel given measured utilization u in [0,1]: a saturating station
// can still grab roughly the idle share.
func UtilizationCapacity(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return 1 - u
}
