package tcpstack

import (
	"math"

	"repro/internal/sim"
)

// Congestion selects the sender's congestion-control algorithm.
type Congestion int

const (
	// Reno is NewReno with SACK (the conservative default).
	Reno Congestion = iota
	// Cubic is RFC 8312 CUBIC, the Linux default in the paper's era. Its
	// window growth is a cubic function of time since the last loss,
	// which makes it far less sensitive to the long and variable RTTs of
	// a congested wireless path.
	Cubic
)

func (c Congestion) String() string {
	if c == Cubic {
		return "cubic"
	}
	return "reno"
}

// cubicState carries the per-connection CUBIC variables.
type cubicState struct {
	wMax       float64  // window before the last reduction (bytes)
	k          float64  // time (seconds) to regrow to wMax
	epochStart sim.Time // start of the current congestion-avoidance epoch
	// estRTT tracks a smoothed RTT copy for the TCP-friendliness term.
	ackCount int
	wTCP     float64
}

// CUBIC constants (RFC 8312): beta is the multiplicative decrease factor
// and c the cubic scaling constant.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// onLoss records a congestion event and returns the reduced window.
func (cs *cubicState) onLoss(cwnd float64, now sim.Time) float64 {
	cs.epochStart = 0
	if cwnd < cs.wMax {
		// Fast convergence: release bandwidth faster when the available
		// capacity shrank since the previous epoch.
		cs.wMax = cwnd * (1 + cubicBeta) / 2
	} else {
		cs.wMax = cwnd
	}
	next := cwnd * cubicBeta
	return next
}

// target computes the cubic window (bytes) at time now with mss-sized
// granularity; it (re)starts the epoch on first use after a loss.
func (cs *cubicState) target(cwnd float64, mss int, srtt, now sim.Time) float64 {
	if cs.epochStart == 0 {
		cs.epochStart = now
		if cwnd < cs.wMax {
			cs.k = math.Cbrt((cs.wMax - cwnd) / float64(mss) / cubicC)
		} else {
			cs.k = 0
			cs.wMax = cwnd
		}
		cs.wTCP = cwnd
		cs.ackCount = 0
	}
	t := (now - cs.epochStart + srtt).Seconds()
	d := t - cs.k
	wCubic := cubicC*d*d*d*float64(mss) + cs.wMax
	// TCP-friendly region: never grow slower than Reno would.
	cs.wTCP += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(mss) * float64(mss) / cwnd
	if cs.wTCP > wCubic {
		return cs.wTCP
	}
	return wCubic
}
