package tcpstack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// SenderStats accumulates sender-side counters.
type SenderStats struct {
	BytesAcked      int64
	SegmentsSent    int64
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	RTTSamples      int64
	SRTT            sim.Time
}

// Sender is a bulk-transfer NewReno TCP sender: it always has data to send
// (the ixChariot-style saturating flow of §5.6) and is clocked purely by
// incoming ACKs, exactly the self-clocking behaviour FastACK exploits.
type Sender struct {
	engine *sim.Engine
	cfg    Config
	out    Output
	local  packet.Endpoint
	remote packet.Endpoint

	state string // "idle", "syn-sent", "established"

	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	cwnd       int // bytes
	ssthresh   int
	dupAcks    int
	recover    uint32 // NewReno recovery point
	inRecovery bool

	rwnd       int // peer-advertised window (bytes, already scaled)
	peerWScale int

	srtt, rttvar sim.Time
	rto          sim.Time
	rtoTimer     *sim.Event
	// sendTimes maps segment end-seq to transmit time for RTT sampling
	// (Karn's rule: cleared on retransmission).
	sendTimes map[uint32]sim.Time

	// sacked tracks SACKed byte ranges beyond sndUna.
	sacked rangeSet

	// cubic holds CUBIC state when cfg.Congestion == Cubic.
	cubic cubicState

	stats SenderStats

	// OnCwnd, if set, is called whenever cwnd changes (tcp_probe-style
	// tracing for Fig 14).
	OnCwnd func(now sim.Time, cwndBytes int)
	// OnEstablished is called once the handshake completes.
	OnEstablished func(now sim.Time)
}

// NewSender builds a sender for the given flow endpoints.
func NewSender(engine *sim.Engine, cfg Config, local, remote packet.Endpoint, out Output) *Sender {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	s := &Sender{
		engine: engine, cfg: cfg, out: out,
		local: local, remote: remote,
		state:      "idle",
		iss:        1000,
		rto:        sim.Second,
		sendTimes:  map[uint32]sim.Time{},
		peerWScale: 0,
	}
	s.cwnd = cfg.InitCwnd * cfg.MSS
	s.ssthresh = cfg.MaxCwnd * cfg.MSS
	s.rwnd = 65535
	return s
}

// Stats returns a snapshot of the counters.
func (s *Sender) Stats() SenderStats {
	st := s.stats
	st.SRTT = s.srtt
	return st
}

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() int { return s.cwnd }

// CwndSegments returns the congestion window in MSS units.
func (s *Sender) CwndSegments() int { return s.cwnd / s.cfg.MSS }

// Established reports whether the handshake has completed.
func (s *Sender) Established() bool { return s.state == "established" }

// Start initiates the connection (sends SYN).
func (s *Sender) Start() {
	if s.state != "idle" {
		return
	}
	s.state = "syn-sent"
	s.sndUna = s.iss
	s.sndNxt = s.iss + 1
	syn := packet.NewTCPDatagram(s.local, s.remote, 0)
	syn.TCP.Seq = s.iss
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.Window = 65535
	syn.TCP.MSS = uint16(s.cfg.MSS)
	syn.TCP.WindowScale = s.cfg.WScale
	syn.TCP.SACKPermitted = s.cfg.SACK
	s.out(syn)
	s.armRTO()
}

// Deliver feeds a datagram from the network (expected: ACKs / SYN-ACK).
func (s *Sender) Deliver(d *packet.Datagram) {
	if d.TCP == nil {
		return
	}
	t := d.TCP
	switch s.state {
	case "syn-sent":
		if t.HasFlag(packet.FlagSYN | packet.FlagACK) {
			s.completeHandshake(t)
		}
	case "established":
		if t.HasFlag(packet.FlagACK) {
			s.handleAck(t)
		}
	}
}

func (s *Sender) completeHandshake(t *packet.TCP) {
	s.state = "established"
	s.peerWScale = 0
	if t.WindowScale >= 0 {
		s.peerWScale = t.WindowScale
	}
	s.rwnd = int(t.Window) << s.peerWScale
	s.sndUna = s.sndNxt
	// Final ACK of the handshake.
	ack := packet.NewTCPDatagram(s.local, s.remote, 0)
	ack.TCP.Seq = s.sndNxt
	ack.TCP.Ack = t.Seq + 1
	ack.TCP.Flags = packet.FlagACK
	ack.TCP.Window = 65535
	s.out(ack)
	s.cancelRTO()
	if s.OnEstablished != nil {
		s.OnEstablished(s.engine.Now())
	}
	s.pump()
}

// flight returns unacknowledged bytes in the network.
func (s *Sender) flight() int { return int(s.sndNxt - s.sndUna) }

// window returns the current usable window in bytes.
func (s *Sender) window() int {
	w := s.cwnd
	if s.rwnd < w {
		w = s.rwnd
	}
	return w
}

// pump transmits new segments while the window allows. This is the
// self-clocking release point: it only runs on ACK arrival (and once at
// connection start), so ACK latency variation directly shapes the data
// release pattern (§5.1 problem one).
func (s *Sender) pump() {
	for s.state == "established" && s.flight()+s.cfg.MSS <= s.window() {
		s.sendSegment(s.sndNxt, false)
		s.sndNxt += uint32(s.cfg.MSS)
	}
}

func (s *Sender) sendSegment(seq uint32, isRetransmit bool) {
	d := packet.NewTCPDatagram(s.local, s.remote, s.cfg.MSS)
	d.TCP.Seq = seq
	d.TCP.Ack = 0
	d.TCP.Flags = packet.FlagACK | packet.FlagPSH
	d.TCP.Window = 65535
	s.out(d)
	s.stats.SegmentsSent++
	end := seq + uint32(s.cfg.MSS)
	if isRetransmit {
		s.stats.Retransmits++
		delete(s.sendTimes, end) // Karn: no RTT sample from retransmits
	} else {
		s.sendTimes[end] = s.engine.Now()
	}
	if s.rtoTimer == nil {
		s.armRTO()
	}
}

func (s *Sender) handleAck(t *packet.TCP) {
	ack := t.Ack
	s.rwnd = int(t.Window) << s.peerWScale
	if len(t.SACK) > 0 {
		for _, b := range t.SACK {
			s.sacked.add(b.Left, b.Right)
		}
	}

	switch {
	case seqLT(s.sndUna, ack): // new data acknowledged
		acked := int(ack - s.sndUna)
		s.stats.BytesAcked += int64(acked)
		s.sampleRTT(ack)
		s.sndUna = ack
		s.sacked.trimBelow(ack)
		s.dupAcks = 0

		if s.inRecovery {
			if seqLT(ack, s.recover) {
				// Partial ACK: retransmit the next hole immediately.
				s.retransmitHole()
				// Deflate by the amount acked (NewReno partial-ACK rule).
				s.cwnd -= acked
				if s.cwnd < s.cfg.MSS {
					s.cwnd = s.cfg.MSS
				}
				s.notifyCwnd()
			} else {
				s.inRecovery = false
				s.cwnd = s.ssthresh
				s.notifyCwnd()
			}
		} else {
			s.growCwnd(acked)
		}
		s.armRTO()
		s.pump()

	case ack == s.sndUna && s.flight() > 0: // duplicate ACK
		s.dupAcks++
		if s.inRecovery {
			// Window inflation keeps the pipe full during recovery.
			s.cwnd += s.cfg.MSS
			s.notifyCwnd()
			s.pump()
		} else if s.dupAcks == 3 {
			s.enterFastRecovery()
		}

	default:
		// A pure window update (ack == sndUna, nothing in flight — the
		// zero-window reopen a FastACK agent sends after clamping
		// rx'_win, §5.5.2) or a stale ACK. The advertised window was
		// refreshed above; transmit if it reopened.
		s.pump()
	}
}

func (s *Sender) growCwnd(ackedBytes int) {
	max := s.cfg.MaxCwnd * s.cfg.MSS
	if s.cwnd >= max {
		return
	}
	switch {
	case s.cwnd < s.ssthresh:
		// Slow start: one MSS per ACKed MSS (ABC, L=1).
		s.cwnd += ackedBytes
	case s.cfg.Congestion == Cubic:
		target := s.cubic.target(float64(s.cwnd), s.cfg.MSS, s.srtt, s.engine.Now())
		if target > float64(s.cwnd) {
			// Approach the cubic target over roughly one RTT of ACKs.
			inc := (target - float64(s.cwnd)) / float64(s.cwnd) * float64(s.cfg.MSS)
			if inc > float64(s.cfg.MSS) {
				inc = float64(s.cfg.MSS)
			}
			s.cwnd += int(inc) + 1
		}
	default:
		// Reno congestion avoidance: ~one MSS per RTT.
		s.cwnd += s.cfg.MSS * s.cfg.MSS / s.cwnd
	}
	if s.cwnd > max {
		s.cwnd = max
	}
	s.notifyCwnd()
}

func (s *Sender) enterFastRecovery() {
	s.stats.FastRetransmits++
	s.inRecovery = true
	s.recover = s.sndNxt
	fl := s.flight()
	if s.cfg.Congestion == Cubic {
		s.ssthresh = int(s.cubic.onLoss(float64(fl), s.engine.Now()))
	} else {
		s.ssthresh = fl / 2
	}
	if s.ssthresh < 2*s.cfg.MSS {
		s.ssthresh = 2 * s.cfg.MSS
	}
	s.cwnd = s.ssthresh + 3*s.cfg.MSS
	s.notifyCwnd()
	s.retransmitHole()
	s.armRTO()
}

// retransmitHole resends the first unSACKed segment at or above sndUna.
func (s *Sender) retransmitHole() {
	seq := s.sndUna
	for s.cfg.SACK && s.sacked.contains(seq, seq+uint32(s.cfg.MSS)) {
		seq += uint32(s.cfg.MSS)
		if !seqLT(seq, s.sndNxt) {
			return
		}
	}
	s.sendSegment(seq, true)
}

func (s *Sender) sampleRTT(ack uint32) {
	// Find an exact sample for the newly acked range; any end <= ack works.
	t, ok := s.sendTimes[ack]
	if !ok {
		return
	}
	delete(s.sendTimes, ack)
	// Drop older entries lazily to bound the map: remove ends below una.
	for end := range s.sendTimes {
		if seqLEQ(end, ack) {
			delete(s.sendTimes, end)
		}
	}
	rtt := s.engine.Now() - t
	s.stats.RTTSamples++
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

func (s *Sender) armRTO() {
	s.cancelRTO()
	if s.flight() == 0 && s.state == "established" {
		return
	}
	s.rtoTimer = s.engine.After(s.rto, func(e *sim.Engine) {
		s.rtoTimer = nil
		s.onTimeout()
	})
}

func (s *Sender) cancelRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
}

// onTimeout handles an RTO: the one loss path FastACK leaves to the end
// host (§5.5.1, "timeout-based retransmissions").
func (s *Sender) onTimeout() {
	if s.state == "syn-sent" {
		s.out(s.rebuildSYN())
		s.rto *= 2
		if s.rto > s.cfg.MaxRTO {
			s.rto = s.cfg.MaxRTO
		}
		s.armRTO()
		return
	}
	if s.flight() == 0 {
		return
	}
	s.stats.Timeouts++
	s.ssthresh = s.flight() / 2
	if s.ssthresh < 2*s.cfg.MSS {
		s.ssthresh = 2 * s.cfg.MSS
	}
	s.cwnd = s.cfg.MSS
	s.inRecovery = false
	s.dupAcks = 0
	s.notifyCwnd()
	s.sendSegment(s.sndUna, true)
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.armRTO()
}

func (s *Sender) rebuildSYN() *packet.Datagram {
	syn := packet.NewTCPDatagram(s.local, s.remote, 0)
	syn.TCP.Seq = s.iss
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.Window = 65535
	syn.TCP.MSS = uint16(s.cfg.MSS)
	syn.TCP.WindowScale = s.cfg.WScale
	syn.TCP.SACKPermitted = s.cfg.SACK
	return syn
}

func (s *Sender) notifyCwnd() {
	if s.OnCwnd != nil {
		s.OnCwnd(s.engine.Now(), s.cwnd)
	}
}

// rangeSet tracks disjoint [left, right) uint32 sequence ranges.
type rangeSet struct {
	ranges []packet.SACKBlock
}

func (r *rangeSet) add(left, right uint32) {
	if !seqLT(left, right) {
		return
	}
	out := r.ranges[:0:0]
	for _, b := range r.ranges {
		if seqLT(right, b.Left) || seqLT(b.Right, left) {
			out = append(out, b) // disjoint
			continue
		}
		if seqLT(b.Left, left) {
			left = b.Left
		}
		if seqLT(right, b.Right) {
			right = b.Right
		}
	}
	out = append(out, packet.SACKBlock{Left: left, Right: right})
	r.ranges = out
}

func (r *rangeSet) contains(left, right uint32) bool {
	for _, b := range r.ranges {
		if seqLEQ(b.Left, left) && seqLEQ(right, b.Right) {
			return true
		}
	}
	return false
}

func (r *rangeSet) trimBelow(seq uint32) {
	out := r.ranges[:0]
	for _, b := range r.ranges {
		if seqLEQ(b.Right, seq) {
			continue
		}
		if seqLT(b.Left, seq) {
			b.Left = seq
		}
		out = append(out, b)
	}
	r.ranges = out
}
