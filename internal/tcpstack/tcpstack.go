// Package tcpstack implements event-driven TCP endpoints — a NewReno
// sender with SACK and a receiver with delayed cumulative ACKs — faithful
// enough to reproduce the pathologies §5.1 of the paper attributes to TCP
// over 802.11ac: self-clocked release of data driven by ACK arrival times,
// congestion-window collapse on spurious loss signals, and receive-window
// flow control.
//
// Endpoints are transport-agnostic: they emit datagrams through an Output
// callback and are fed with Deliver. The testbed glue wires them through
// the wired switch and the MAC simulator.
package tcpstack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// MSS is the TCP maximum segment size used throughout the testbed
// (1500 MTU − 20 IP − 32 TCP w/ options).
const MSS = 1448

// Config parameterises an endpoint pair.
type Config struct {
	MSS        int
	InitCwnd   int      // initial window in segments (RFC 6928 default 10)
	MaxCwnd    int      // send-buffer cap in segments; the paper's OS default is 770
	RcvBuf     int      // receiver buffer in bytes
	WScale     int      // window-scale shift advertised by both ends
	MinRTO     sim.Time // Linux-style 200 ms floor
	MaxRTO     sim.Time
	DelACKSegs int      // delayed-ACK segment threshold (2)
	DelACKTime sim.Time // delayed-ACK timeout (40 ms quickack-era default)
	SACK       bool
	// Congestion selects Reno (default) or Cubic.
	Congestion Congestion
}

// DefaultConfig mirrors a mid-2010s Linux/Windows host. The 512 KiB
// receive buffer matches an autotuned OSX-era client; it is rarely the
// binding constraint, so both modes are shaped by congestion control and
// the AP's driver pool, as in the paper's testbed.
func DefaultConfig() Config {
	return Config{
		MSS:        MSS,
		InitCwnd:   10,
		MaxCwnd:    770,
		RcvBuf:     512 << 10,
		WScale:     7,
		MinRTO:     200 * sim.Millisecond,
		MaxRTO:     60 * sim.Second,
		DelACKSegs: 2,
		DelACKTime: 40 * sim.Millisecond,
		SACK:       true,
	}
}

// Output is how an endpoint hands a datagram to the network.
type Output func(d *packet.Datagram)

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// seqMax returns the later of a, b in sequence space.
func seqMax(a, b uint32) uint32 {
	if seqLT(a, b) {
		return b
	}
	return a
}
