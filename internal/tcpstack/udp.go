package tcpstack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// UDPSource is a constant-bit-rate UDP generator, used as the
// connectionless upper bound on aggregation in Fig 15: with no ACK clock,
// the transmit queue stays as full as the offered load allows.
type UDPSource struct {
	engine  *sim.Engine
	out     Output
	local   packet.Endpoint
	remote  packet.Endpoint
	payload int
	stop    func()
	Sent    int64
}

// NewUDPSource builds a CBR source emitting payload-byte datagrams at
// rateMbps, in small bursts to amortise event overhead.
func NewUDPSource(engine *sim.Engine, local, remote packet.Endpoint, payload int, rateMbps float64, out Output) *UDPSource {
	u := &UDPSource{engine: engine, out: out, local: local, remote: remote, payload: payload}
	if payload <= 0 {
		u.payload = MSS
	}
	const burst = 8
	interval := sim.Time(float64(burst*u.payload*8) / rateMbps) // µs per burst
	if interval < 1 {
		interval = 1
	}
	u.stop = engine.Ticker(interval, func(e *sim.Engine) {
		for i := 0; i < burst; i++ {
			u.out(packet.NewUDPDatagram(u.local, u.remote, u.payload))
			u.Sent++
		}
	})
	return u
}

// Stop halts the source.
func (u *UDPSource) Stop() {
	if u.stop != nil {
		u.stop()
	}
}
