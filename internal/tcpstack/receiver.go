package tcpstack

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ReceiverStats accumulates receiver-side counters.
type ReceiverStats struct {
	BytesReceived int64 // in-order bytes delivered to the application
	SegmentsIn    int64
	DupSegments   int64
	OutOfOrder    int64
	AcksSent      int64
}

// Receiver is a TCP receive endpoint: cumulative ACKs with a delayed-ACK
// policy, SACK generation for out-of-order arrivals, and a fixed receive
// buffer whose free space is advertised (scaled) in every ACK. The
// application is a bulk reader that drains in-order data immediately —
// the client side of a download test.
type Receiver struct {
	engine *sim.Engine
	cfg    Config
	out    Output
	local  packet.Endpoint
	remote packet.Endpoint

	state    string // "listen", "established"
	irs      uint32 // initial remote sequence
	rcvNxt   uint32
	ooo      []packet.SACKBlock // out-of-order ranges, sorted by Left
	oooBytes int

	unackedSegs int
	delAckTimer *sim.Event

	stats ReceiverStats

	// OnData is invoked as in-order payload is delivered to the app.
	OnData func(now sim.Time, bytes int)
}

// NewReceiver builds a passive receiver for the given flow endpoints.
func NewReceiver(engine *sim.Engine, cfg Config, local, remote packet.Endpoint, out Output) *Receiver {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig()
	}
	return &Receiver{
		engine: engine, cfg: cfg, out: out,
		local: local, remote: remote,
		state: "listen",
	}
}

// Stats returns a snapshot of the counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// RcvNxt exposes the next expected sequence number (for tests).
func (r *Receiver) RcvNxt() uint32 { return r.rcvNxt }

// window returns the advertisable free buffer in bytes. The bulk reader
// drains in-order data instantly, so only out-of-order bytes occupy the
// buffer.
func (r *Receiver) window() int {
	w := r.cfg.RcvBuf - r.oooBytes
	if w < 0 {
		w = 0
	}
	return w
}

// scaledWindow converts the byte window to the on-wire (scaled) field.
func (r *Receiver) scaledWindow() uint16 {
	w := r.window() >> r.cfg.WScale
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

// Deliver feeds a datagram from the network.
func (r *Receiver) Deliver(d *packet.Datagram) {
	if d.TCP == nil {
		return
	}
	t := d.TCP
	switch r.state {
	case "listen":
		if t.Flags == packet.FlagSYN {
			r.irs = t.Seq
			r.rcvNxt = t.Seq + 1
			r.state = "established" // we treat the final ACK as implicit
			sa := packet.NewTCPDatagram(r.local, r.remote, 0)
			sa.TCP.Seq = 2000
			sa.TCP.Ack = r.rcvNxt
			sa.TCP.Flags = packet.FlagSYN | packet.FlagACK
			sa.TCP.Window = r.scaledWindow()
			sa.TCP.MSS = uint16(r.cfg.MSS)
			sa.TCP.WindowScale = r.cfg.WScale
			sa.TCP.SACKPermitted = r.cfg.SACK
			r.out(sa)
		}
	case "established":
		if d.PayloadLen > 0 {
			r.handleData(t, d.PayloadLen)
		}
	}
}

func (r *Receiver) handleData(t *packet.TCP, payloadLen int) {
	r.stats.SegmentsIn++
	seq := t.Seq
	end := seq + uint32(payloadLen)

	switch {
	case seqLEQ(end, r.rcvNxt):
		// Entirely old data: spurious retransmission. Re-ACK immediately.
		r.stats.DupSegments++
		r.sendAck(nil)
		return

	case seq == r.rcvNxt:
		// In-order: advance, absorb any contiguous out-of-order ranges.
		r.deliverApp(payloadLen)
		r.rcvNxt = end
		r.absorbOOO()
		r.unackedSegs++
		if r.unackedSegs >= r.cfg.DelACKSegs || len(r.ooo) > 0 {
			r.sendAck(nil)
		} else {
			r.armDelAck()
		}

	case seqLT(r.rcvNxt, seq):
		// Hole: out-of-order arrival. Immediate duplicate ACK with SACK.
		r.stats.OutOfOrder++
		r.addOOO(seq, end, payloadLen)
		r.sendAck(&packet.SACKBlock{Left: seq, Right: end})

	default:
		// Partial overlap below rcvNxt: treat the new portion as in-order.
		fresh := int(end - r.rcvNxt)
		if fresh > 0 {
			r.deliverApp(fresh)
			r.rcvNxt = end
			r.absorbOOO()
		}
		r.sendAck(nil)
	}
}

func (r *Receiver) deliverApp(n int) {
	r.stats.BytesReceived += int64(n)
	if r.OnData != nil {
		r.OnData(r.engine.Now(), n)
	}
}

func (r *Receiver) addOOO(left, right uint32, payloadLen int) {
	for _, b := range r.ooo {
		if seqLEQ(b.Left, left) && seqLEQ(right, b.Right) {
			return // duplicate of buffered data
		}
	}
	r.ooo = append(r.ooo, packet.SACKBlock{Left: left, Right: right})
	r.oooBytes += payloadLen
	sort.Slice(r.ooo, func(i, j int) bool { return seqLT(r.ooo[i].Left, r.ooo[j].Left) })
	// Merge adjacent/overlapping ranges.
	merged := r.ooo[:0]
	for _, b := range r.ooo {
		if n := len(merged); n > 0 && seqLEQ(b.Left, merged[n-1].Right) {
			if seqLT(merged[n-1].Right, b.Right) {
				merged[n-1].Right = b.Right
			}
			continue
		}
		merged = append(merged, b)
	}
	r.ooo = merged
}

// absorbOOO advances rcvNxt over any now-contiguous buffered ranges.
func (r *Receiver) absorbOOO() {
	for len(r.ooo) > 0 && seqLEQ(r.ooo[0].Left, r.rcvNxt) {
		b := r.ooo[0]
		if seqLT(r.rcvNxt, b.Right) {
			n := int(b.Right - r.rcvNxt)
			r.deliverApp(n)
			r.rcvNxt = b.Right
		}
		r.oooBytes -= int(b.Right - b.Left)
		if r.oooBytes < 0 {
			r.oooBytes = 0
		}
		r.ooo = r.ooo[1:]
	}
}

// sendAck emits a cumulative ACK, optionally carrying SACK blocks: the
// most recent block first, then up to two more recent holes.
func (r *Receiver) sendAck(latest *packet.SACKBlock) {
	r.cancelDelAck()
	r.unackedSegs = 0
	ack := packet.NewTCPDatagram(r.local, r.remote, 0)
	ack.TCP.Seq = 2001
	ack.TCP.Ack = r.rcvNxt
	ack.TCP.Flags = packet.FlagACK
	ack.TCP.Window = r.scaledWindow()
	if r.cfg.SACK {
		if latest != nil {
			ack.TCP.SACK = append(ack.TCP.SACK, *latest)
		}
		for i := len(r.ooo) - 1; i >= 0 && len(ack.TCP.SACK) < 4; i-- {
			b := r.ooo[i]
			if latest != nil && b == *latest {
				continue
			}
			ack.TCP.SACK = append(ack.TCP.SACK, b)
		}
	}
	r.stats.AcksSent++
	r.out(ack)
}

func (r *Receiver) armDelAck() {
	if r.delAckTimer != nil {
		return
	}
	r.delAckTimer = r.engine.After(r.cfg.DelACKTime, func(e *sim.Engine) {
		r.delAckTimer = nil
		if r.unackedSegs > 0 {
			r.sendAck(nil)
		}
	})
}

func (r *Receiver) cancelDelAck() {
	if r.delAckTimer != nil {
		r.delAckTimer.Cancel()
		r.delAckTimer = nil
	}
}
