package tcpstack

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

var (
	srvEP = packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000}
	cliEP = packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 2}, Port: 80}
)

// pipe couples a sender and receiver through a delayed, optionally lossy
// link.
type pipe struct {
	engine *sim.Engine
	s      *Sender
	r      *Receiver
	oneWay sim.Time
	// dropData, if set, decides per data segment whether to drop it.
	dropData func(seq uint32) bool
	dropAcks func(n int) bool
	acksSent int
}

func newPipe(cfg Config, oneWay sim.Time) *pipe {
	p := &pipe{engine: sim.NewEngine(3), oneWay: oneWay}
	p.s = NewSender(p.engine, cfg, srvEP, cliEP, func(d *packet.Datagram) {
		if d.PayloadLen > 0 && p.dropData != nil && p.dropData(d.TCP.Seq) {
			return
		}
		p.engine.After(p.oneWay, func(*sim.Engine) { p.r.Deliver(d) })
	})
	p.r = NewReceiver(p.engine, cfg, cliEP, srvEP, func(d *packet.Datagram) {
		p.acksSent++
		if p.dropAcks != nil && p.dropAcks(p.acksSent) {
			return
		}
		p.engine.After(p.oneWay, func(*sim.Engine) { p.s.Deliver(d) })
	})
	return p
}

func TestHandshake(t *testing.T) {
	p := newPipe(DefaultConfig(), sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(100 * sim.Millisecond)
	if !p.s.Established() {
		t.Fatal("handshake did not complete")
	}
}

func TestBulkTransferLossless(t *testing.T) {
	p := newPipe(DefaultConfig(), sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(2 * sim.Second)
	st := p.s.Stats()
	rt := p.r.Stats()
	if st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("lossless pipe retransmitted: %+v", st)
	}
	if rt.BytesReceived == 0 || rt.BytesReceived != st.BytesAcked {
		t.Fatalf("acked %d vs received %d", st.BytesAcked, rt.BytesReceived)
	}
	// RTT 2 ms, window limited by min(cwnd cap, rcvbuf). With the 512 KiB
	// buffer the pipe carries >= 100 MB/s easily; just check saturation.
	if rt.BytesReceived < 10<<20 {
		t.Fatalf("only %d bytes in 2s over a 2ms pipe", rt.BytesReceived)
	}
	// cwnd should have grown substantially from the initial 10 segments.
	if p.s.CwndSegments() < 100 {
		t.Fatalf("cwnd = %d segments", p.s.CwndSegments())
	}
}

func TestRTTEstimation(t *testing.T) {
	p := newPipe(DefaultConfig(), 5*sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(sim.Second)
	srtt := p.s.Stats().SRTT
	if srtt < 9*sim.Millisecond || srtt > 30*sim.Millisecond {
		t.Fatalf("srtt = %v for a 10 ms pipe", srtt)
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	cfg := DefaultConfig()
	p := newPipe(cfg, sim.Millisecond)
	dropped := false
	var droppedSeq uint32
	p.dropData = func(seq uint32) bool {
		// Drop exactly one segment mid-flight, after slow start ramps.
		if !dropped && seq > 1000+uint32(100*cfg.MSS) {
			dropped = true
			droppedSeq = seq
			return true
		}
		return false
	}
	p.s.Start()
	p.engine.RunUntil(2 * sim.Second)
	st := p.s.Stats()
	if !dropped {
		t.Fatal("test never dropped")
	}
	if st.FastRetransmits == 0 {
		t.Fatalf("loss recovered without fast retransmit: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("single loss caused an RTO: %+v", st)
	}
	// The receiver must have healed the hole: everything contiguous.
	if got := p.r.RcvNxt(); seqLT(got, droppedSeq) {
		t.Fatalf("receiver stuck at %d before dropped %d", got, droppedSeq)
	}
	if p.r.Stats().OutOfOrder == 0 {
		t.Fatal("receiver saw no reordering?")
	}
}

func TestCwndHalvesOnLoss(t *testing.T) {
	cfg := DefaultConfig()
	p := newPipe(cfg, sim.Millisecond)
	dropped := false
	p.dropData = func(seq uint32) bool {
		if !dropped && seq > 1000+uint32(200*cfg.MSS) {
			dropped = true
			return true
		}
		return false
	}
	peak, minAfterRecovery := 0, 1<<30
	p.s.OnCwnd = func(now sim.Time, cwnd int) {
		inRecoveryOrLater := p.s.Stats().FastRetransmits > 0
		if !inRecoveryOrLater && cwnd > peak {
			peak = cwnd
		}
		if inRecoveryOrLater && !p.s.inRecovery && cwnd < minAfterRecovery {
			minAfterRecovery = cwnd
		}
	}
	p.s.Start()
	p.engine.RunUntil(sim.Second)
	if !dropped {
		t.Fatal("never dropped")
	}
	// Exiting recovery sets cwnd = ssthresh = flight/2 (NewReno): the
	// post-recovery cwnd must sit well below the pre-loss peak.
	if minAfterRecovery >= peak*3/4 {
		t.Fatalf("cwnd after recovery %d, pre-loss peak %d", minAfterRecovery, peak)
	}
}

func TestBurstLossRecoversViaSACK(t *testing.T) {
	cfg := DefaultConfig()
	p := newPipe(cfg, sim.Millisecond)
	drops := 0
	p.dropData = func(seq uint32) bool {
		// Drop a burst of 5 distinct segments once.
		if drops < 5 && seq > 1000+uint32(150*cfg.MSS) && seq < 1000+uint32(200*cfg.MSS) {
			drops++
			return true
		}
		return false
	}
	p.s.Start()
	p.engine.RunUntil(3 * sim.Second)
	st := p.s.Stats()
	rt := p.r.Stats()
	if drops != 5 {
		t.Fatalf("dropped %d", drops)
	}
	if rt.BytesReceived < 10<<20 {
		t.Fatalf("transfer stalled after burst loss: %d bytes", rt.BytesReceived)
	}
	if st.Retransmits < 5 {
		t.Fatalf("only %d retransmits for 5 losses", st.Retransmits)
	}
}

func TestRTOWhenAllAcksLost(t *testing.T) {
	cfg := DefaultConfig()
	p := newPipe(cfg, sim.Millisecond)
	blackout := false
	p.dropAcks = func(n int) bool { return blackout }
	p.s.Start()
	p.engine.RunUntil(200 * sim.Millisecond)
	blackout = true
	p.engine.RunUntil(1200 * sim.Millisecond)
	if p.s.Stats().Timeouts == 0 {
		t.Fatal("no RTO during total ACK blackout")
	}
	if p.s.Cwnd() > cfg.MSS {
		t.Fatalf("cwnd after RTO = %d, want 1 MSS", p.s.Cwnd())
	}
	blackout = false
	before := p.r.Stats().BytesReceived
	p.engine.RunUntil(3 * sim.Second)
	if p.r.Stats().BytesReceived <= before {
		t.Fatal("did not recover after blackout lifted")
	}
}

func TestDelayedAckCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	p := newPipe(cfg, sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(sim.Second)
	st := p.s.Stats()
	rt := p.r.Stats()
	// Roughly one ACK per two segments (plus timers): the ACK count must
	// be well below the segment count.
	if rt.AcksSent*3 > st.SegmentsSent*2 {
		t.Fatalf("delayed ACK not working: %d acks for %d segments", rt.AcksSent, st.SegmentsSent)
	}
}

func TestReceiverWindowLimitsFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RcvBuf = 64 << 10 // tiny window
	p := newPipe(cfg, 50*sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(3 * sim.Second)
	// Throughput bounded by rwnd/RTT = 64 KiB / 100 ms = 640 KB/s.
	got := p.r.Stats().BytesReceived
	limit := int64(640 << 10 * 3.3)
	if got > limit {
		t.Fatalf("received %d, exceeds rwnd bound %d", got, limit)
	}
	if got < limit/8 {
		t.Fatalf("received %d, window-limited flow far too slow", got)
	}
	if p.s.Stats().Timeouts > 0 {
		t.Fatal("window-limited flow should not time out")
	}
}

func TestMaxCwndCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCwnd = 50
	p := newPipe(cfg, sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(2 * sim.Second)
	if p.s.CwndSegments() > 50 {
		t.Fatalf("cwnd %d exceeds cap 50", p.s.CwndSegments())
	}
}

func TestSpuriousRetransmissionReAcked(t *testing.T) {
	p := newPipe(DefaultConfig(), sim.Millisecond)
	p.s.Start()
	p.engine.RunUntil(100 * sim.Millisecond)
	// Inject an old segment directly: receiver must re-ACK, not deliver.
	before := p.r.Stats().BytesReceived
	old := packet.NewTCPDatagram(srvEP, cliEP, MSS)
	old.TCP.Seq = 1001 // the very first data byte, long since received
	old.TCP.Flags = packet.FlagACK
	p.r.Deliver(old)
	if p.r.Stats().BytesReceived != before {
		t.Fatal("duplicate delivered to app")
	}
	if p.r.Stats().DupSegments == 0 {
		t.Fatal("dup not counted")
	}
}

func TestUDPSourceRate(t *testing.T) {
	engine := sim.NewEngine(1)
	var bytes int64
	src := NewUDPSource(engine, srvEP, cliEP, 1448, 80, func(d *packet.Datagram) {
		bytes += int64(d.PayloadLen)
	})
	engine.RunUntil(sim.Second)
	src.Stop()
	mbps := float64(bytes) * 8 / 1e6
	if mbps < 70 || mbps > 90 {
		t.Fatalf("UDP source rate = %.1f Mbps, want ~80", mbps)
	}
	at := engine.Now()
	engine.RunUntil(at + sim.Second)
	after := float64(bytes) * 8 / 1e6
	if after > mbps+1 {
		t.Fatal("UDP source kept sending after Stop")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xffffff00, 0x00000010) {
		t.Fatal("wraparound comparison broken")
	}
	if seqLT(5, 5) || !seqLEQ(5, 5) {
		t.Fatal("equality cases")
	}
	if seqMax(10, 3) != 10 || seqMax(0xfffffff0, 5) != 5 {
		t.Fatal("seqMax")
	}
}

func TestCubicTransferAndRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Congestion = Cubic
	p := newPipe(cfg, 5*sim.Millisecond)
	dropped := 0
	p.dropData = func(seq uint32) bool {
		// One loss episode mid-transfer.
		if dropped == 0 && seq > 1000+uint32(300*cfg.MSS) {
			dropped++
			return true
		}
		return false
	}
	p.s.Start()
	p.engine.RunUntil(3 * sim.Second)
	st := p.s.Stats()
	if dropped == 0 {
		t.Fatal("never dropped")
	}
	if st.FastRetransmits == 0 || st.Timeouts != 0 {
		t.Fatalf("cubic recovery: %+v", st)
	}
	if st.BytesAcked < 20<<20 {
		t.Fatalf("cubic moved only %d bytes", st.BytesAcked)
	}
	// After recovery, the cubic window must regrow past the reduced
	// point: cwnd should be well above 0.7*wMax eventually.
	if p.s.CwndSegments() < 50 {
		t.Fatalf("cubic cwnd stuck at %d", p.s.CwndSegments())
	}
}

func TestCubicBeatsRenoOnLongFatPipe(t *testing.T) {
	// With periodic losses on a long-RTT pipe, CUBIC's cubic regrowth
	// recovers window faster than Reno's one-MSS-per-RTT.
	run := func(cc Congestion) int64 {
		cfg := DefaultConfig()
		cfg.Congestion = cc
		cfg.MaxCwnd = 4000
		cfg.RcvBuf = 8 << 20
		p := newPipe(cfg, 40*sim.Millisecond)
		n := 0
		p.dropData = func(seq uint32) bool {
			n++
			return n%4000 == 0 // periodic loss
		}
		p.s.Start()
		p.engine.RunUntil(20 * sim.Second)
		return p.s.Stats().BytesAcked
	}
	reno, cubic := run(Reno), run(Cubic)
	if cubic <= reno {
		t.Fatalf("cubic %d <= reno %d on a long fat pipe", cubic, reno)
	}
}
