package core

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

func TestQuickstartFlow(t *testing.T) {
	// The three public workflows, end to end, in miniature.

	// 1. Measurement study.
	f := NewFleetStudy(60, 1)
	if f.APCount() == 0 {
		t.Fatal("empty fleet")
	}
	if f.UtilizationCDF(spectrum.Band2G4, 10).N() == 0 {
		t.Fatal("no utilization samples")
	}

	// 2. Channel planning.
	dp := NewDeployment(Office, backend.AlgNone, 2)
	before := dp.CurrentPlan()
	res := PlanOnce(dp.Scenario, 2)
	after := dp.CurrentPlan()
	if !res.Improved {
		t.Fatal("planning an all-default network must improve")
	}
	if len(after.Channels) <= len(before.Channels) {
		t.Fatalf("plan did not spread channels: %v -> %v", before, after)
	}

	// 3. FastACK testbed.
	opt := DefaultTestbedOptions()
	opt.ClientsPerAP = 3
	opt.APModes = []Mode{FastACK}
	opt.Warmup = sim.Second
	tb := NewTestbed(opt)
	tb.Run(3 * sim.Second)
	total := 0.0
	for _, c := range tb.Clients {
		total += c.GoodputMbps(3 * sim.Second)
	}
	if total <= 0 {
		t.Fatal("testbed moved no traffic")
	}
}

func TestDeploymentMetrics(t *testing.T) {
	dp := NewDeployment(Office, backend.AlgTurboCA, 3)
	dp.Run(2 * sim.Hour)
	if got := dp.UsageTB(0, 2*sim.Hour); got <= 0 {
		t.Fatalf("usage = %f", got)
	}
	if dp.TCPLatency(0, 2*sim.Hour).N() == 0 {
		t.Fatal("no latency samples")
	}
	if dp.BitrateEfficiency(0, 2*sim.Hour).N() == 0 {
		t.Fatal("no efficiency samples")
	}
	if dp.Utilization(0, 2*sim.Hour).N() == 0 {
		t.Fatal("no utilization samples")
	}
	dp.Continue(sim.Hour)
	if dp.Engine.Now() != 3*sim.Hour {
		t.Fatalf("Continue landed at %v", dp.Engine.Now())
	}
}

func TestDeploymentKinds(t *testing.T) {
	for _, k := range []DeploymentKind{Office, Campus, Museum} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if n := len(NewDeployment(Museum, backend.AlgNone, 1).Scenario.APs); n != 300 {
		t.Fatalf("museum deployment has %d APs", n)
	}
}

func TestPlanSummaryString(t *testing.T) {
	dp := NewDeployment(Office, backend.AlgNone, 1)
	if dp.CurrentPlan().String() == "" {
		t.Fatal("empty summary")
	}
}
