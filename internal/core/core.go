// Package core is the library's public facade. It ties the substrates
// together into the three workflows the paper's systems support:
//
//   - Measurement study (Section 3): synthesize a fleet and rerun the
//     population statistics — NewFleetStudy.
//   - Channel planning (Section 4): run TurboCA or ReservedCA over a
//     deployment scenario with the backend's poll/plan/apply loop —
//     NewDeployment.
//   - TCP acceleration (Section 5): run baseline-vs-FastACK testbed
//     experiments — NewTestbed (re-exported from internal/testbed).
//
// Downstream code may also use the substrate packages directly; this
// package exists so the common cases are a few lines.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Re-exported types so most callers only import core.
type (
	// Testbed is the §5.6 FastACK performance lab.
	Testbed = testbed.Testbed
	// TestbedOptions configures it.
	TestbedOptions = testbed.Options
	// Mode selects an AP datapath (Baseline or FastACK).
	Mode = testbed.Mode
	// Scenario is a deployment topology for channel planning.
	Scenario = topo.Scenario
	// Fleet is a synthesized AP/client population.
	Fleet = fleet.Fleet
)

// Testbed mode constants.
const (
	Baseline = testbed.Baseline
	FastACK  = testbed.FastACK
)

// NewTestbed builds a §5.6 testbed; see testbed.Options.
func NewTestbed(opt TestbedOptions) *Testbed { return testbed.New(opt) }

// DefaultTestbedOptions mirrors the paper's lab setup.
func DefaultTestbedOptions() TestbedOptions { return testbed.DefaultOptions() }

// Deployment couples a scenario with a backend running a channel
// assignment algorithm, ready to simulate days of operation.
type Deployment struct {
	Scenario *topo.Scenario
	Backend  *backend.Backend
	Engine   *sim.Engine
}

// DeploymentKind selects a §4.6 evaluation network.
type DeploymentKind int

// Built-in scenario kinds.
const (
	Office DeploymentKind = iota // Meraki-HQ-like dense office
	Campus                       // UNet-like university, uplink-capped
	Museum                       // MNet-like museum
)

func (k DeploymentKind) String() string {
	switch k {
	case Campus:
		return "campus"
	case Museum:
		return "museum"
	default:
		return "office"
	}
}

func (k DeploymentKind) build(seed int64) *topo.Scenario {
	switch k {
	case Campus:
		return topo.Campus(seed)
	case Museum:
		return topo.Museum(seed)
	default:
		return topo.Office(seed)
	}
}

// NewDeployment builds a scenario of the given kind and attaches a
// backend running alg. Call Run to simulate.
func NewDeployment(kind DeploymentKind, alg backend.Algorithm, seed int64) *Deployment {
	sc := kind.build(seed)
	engine := sim.NewEngine(seed)
	be := backend.New(backend.DefaultOptions(alg), sc, engine)
	return &Deployment{Scenario: sc, Backend: be, Engine: engine}
}

// Run starts the backend services and simulates for d.
func (dp *Deployment) Run(d sim.Time) {
	dp.Backend.Start()
	dp.Engine.RunUntil(d)
}

// Continue simulates for another d beyond the current clock.
func (dp *Deployment) Continue(d sim.Time) {
	dp.Engine.RunUntil(dp.Engine.Now() + d)
}

// UsageTB sums network-wide served bytes over [from, to), in terabytes
// (Table 2's unit).
func (dp *Deployment) UsageTB(from, to sim.Time) float64 {
	return dp.Backend.DB.Table("usage").SumField("bytes", from, to) / 1e12
}

// TCPLatency aggregates the per-AP TCP latency samples over [from, to).
func (dp *Deployment) TCPLatency(from, to sim.Time) *stats.Sample {
	return dp.Backend.DB.Table("tcp_latency").AggregateField("ms", from, to)
}

// BitrateEfficiency aggregates bit-rate-efficiency samples over [from, to).
func (dp *Deployment) BitrateEfficiency(from, to sim.Time) *stats.Sample {
	return dp.Backend.DB.Table("bitrate_eff").AggregateField("eff", from, to)
}

// Utilization aggregates per-AP utilization samples over [from, to).
func (dp *Deployment) Utilization(from, to sim.Time) *stats.Sample {
	return dp.Backend.DB.Table("utilization").AggregateField("util", from, to)
}

// PlanSummary describes the current channel plan.
type PlanSummary struct {
	Widths   map[spectrum.Width]int
	Channels map[int]int // 5 GHz primary channel -> AP count
	DFSCount int
}

// CurrentPlan summarizes the scenario's 5 GHz assignments.
func (dp *Deployment) CurrentPlan() PlanSummary {
	s := PlanSummary{Widths: map[spectrum.Width]int{}, Channels: map[int]int{}}
	for _, ap := range dp.Scenario.APs {
		s.Widths[ap.Channel.Width]++
		s.Channels[ap.Channel.Number]++
		if ap.Channel.DFS {
			s.DFSCount++
		}
	}
	return s
}

func (s PlanSummary) String() string {
	return fmt.Sprintf("widths=%v dfs=%d channels=%d distinct",
		s.Widths, s.DFSCount, len(s.Channels))
}

// NewFleetStudy synthesizes a population for the Section 3 measurement
// study.
func NewFleetStudy(networks int, seed int64) *Fleet {
	return fleet.Generate(fleet.Options{Seed: seed, Networks: networks})
}

// PlanOnce runs a single TurboCA pass (hops 2,1,0) over a scenario and
// applies the result — the one-shot planning entry point for tools that
// do not need the full backend loop.
func PlanOnce(sc *topo.Scenario, seed int64) turboca.Result {
	return PlanOnceWith(sc, turboca.DefaultConfig(), seed)
}

// PlanOnceWith is PlanOnce with explicit planner tunables (e.g. a Workers
// override for parallel planning).
func PlanOnceWith(sc *topo.Scenario, cfg turboca.Config, seed int64) turboca.Result {
	engine := sim.NewEngine(seed)
	be := backend.New(backend.DefaultOptions(backend.AlgTurboCA), sc, engine)
	in := be.PlannerInput(spectrum.Band5)
	(&in).Sanitize()
	res := turboca.RunNBO(cfg, in, sc.Rand(), []int{2, 1, 0})
	for _, ap := range sc.APs {
		if a, ok := res.Plan[ap.ID]; ok {
			ap.Channel = a.Channel
		}
	}
	return res
}

// WrapDeployment attaches a backend running alg to an existing scenario
// (for callers that built their own topo.Scenario, e.g. School or Hotel).
func WrapDeployment(sc *topo.Scenario, alg backend.Algorithm, seed int64) *Deployment {
	return WrapDeploymentOptions(sc, backend.DefaultOptions(alg), seed)
}

// WrapDeploymentOptions is WrapDeployment with explicit backend options
// (planner tunables, poll cadence, radar injection, ...).
func WrapDeploymentOptions(sc *topo.Scenario, opt backend.Options, seed int64) *Deployment {
	engine := sim.NewEngine(seed)
	be := backend.New(opt, sc, engine)
	return &Deployment{Scenario: sc, Backend: be, Engine: engine}
}
