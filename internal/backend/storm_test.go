package backend

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Hostile-RF survival campaign: a campus-scale network rides out
// correlated DFS radar storms under spectrum-trace interference. The
// contract: zero NOP-invariant trips, deterministic replay per seed, and
// ground-truth plan quality within 10% of a storm-free twin once the
// quarantine expires.

// stormEnv builds one run's private RF environment: seeded occupancy
// traces plus two correlated sweeps — U-NII-2A at 3h, the lower 2C range
// at 4h30 — both expiring well before the 6-hour horizon.
func stormEnv(seed int64) *rfenv.Env {
	traces := rfenv.NewTraceSet(seed^0x7f5e, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
	return rfenv.NewEnv(traces, []rfenv.Storm{
		{At: 3 * sim.Hour, LowSub: 52, HighSub: 64},
		{At: 4*sim.Hour + 30*sim.Minute, LowSub: 100, HighSub: 112},
	})
}

// runStormCampus drives one campus under the storm environment. withRF
// false runs the storm-free twin (same traces, no storms) on the same
// seed.
func runStormCampus(seed int64, storms bool, d sim.Time) *Backend {
	sc := topo.Campus(seed)
	engine := sim.NewEngine(seed)
	opt := DefaultOptions(AlgTurboCA)
	opt.Seed = seed
	env := stormEnv(seed)
	if !storms {
		env.Storms = nil
	}
	opt.RF = env
	b := New(opt, sc, engine)
	b.Start()
	engine.RunUntil(d)
	return b
}

// assertNoneBlocked fails if any AP is on the air inside an active NOP
// window at the backend's current instant.
func assertNoneBlocked(t *testing.T, b *Backend, when string) {
	t.Helper()
	now := b.Engine.Now()
	for _, ap := range b.Scenario.APs {
		if b.rf.Q.Blocked(ap.Channel, now) {
			t.Fatalf("%s: AP %d transmitting on quarantined %v", when, ap.ID, ap.Channel)
		}
	}
}

func TestStormCampaignSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("campus storm campaign in -short mode")
	}
	const seed = 42
	const horizon = 6 * sim.Hour

	sc := topo.Campus(seed)
	engine := sim.NewEngine(seed)
	opt := DefaultOptions(AlgTurboCA)
	opt.Seed = seed
	opt.RF = stormEnv(seed)
	b := New(opt, sc, engine)
	b.Start()

	// Night planning (0-3h) admits DFS channels; the first storm must
	// find real prey or the campaign tests nothing.
	engine.RunUntil(3*sim.Hour - sim.Minute)
	onStruckRange := 0
	for _, ap := range sc.APs {
		for _, s := range ap.Channel.Sub20Numbers() {
			if s >= 52 && s <= 64 {
				onStruckRange++
				break
			}
		}
	}
	if onStruckRange == 0 {
		t.Fatal("no AP on U-NII-2A before the storm; campaign is inert")
	}

	// Ride through storm 1 and sample inside its NOP window.
	engine.RunUntil(3*sim.Hour + sim.Minute)
	if got := b.Control().RadarStorms; got != 1 {
		t.Fatalf("RadarStorms = %d after the first sweep, want 1", got)
	}
	if b.Control().RadarStrikes == 0 {
		t.Fatalf("storm struck %d on-air APs, want > 0", b.Control().RadarStrikes)
	}
	if b.rf.Q.Active(engine.Now()) == 0 {
		t.Fatal("no active quarantine right after a storm")
	}
	assertNoneBlocked(t, b, "inside storm-1 NOP")

	// Mid-window and through storm 2.
	engine.RunUntil(4*sim.Hour + 31*sim.Minute)
	if got := b.Control().RadarStorms; got != 2 {
		t.Fatalf("RadarStorms = %d after both sweeps, want 2", got)
	}
	assertNoneBlocked(t, b, "inside storm-2 NOP")

	// To the horizon: both NOPs expired (3h30, 5h).
	engine.RunUntil(horizon)
	ctl := b.Control()
	if ctl.NOPViolations != 0 {
		t.Fatalf("NOP invariant tripped %d times", ctl.NOPViolations)
	}
	for _, ap := range sc.APs {
		if !ap.Channel.Width.Valid() {
			t.Fatalf("AP %d lost its channel in the storms", ap.ID)
		}
	}

	// Drain in-flight pushes, then compare ground truth against the
	// storm-free twin: after quarantine expiry the planner must claw back
	// to within 10% of the twin's plan quality.
	b.Service.Stop()
	deadline := horizon
	for i := 0; i < 12 && !b.Converged(); i++ {
		deadline += b.Opt.ReconcileInterval
		b.Engine.RunUntil(deadline)
	}
	if !b.Converged() {
		t.Fatal("storm-era intent never reconciled")
	}
	twin := runStormCampus(seed, false, horizon)
	if tc := twin.Control(); tc.RadarStorms != 0 {
		t.Fatalf("storm-free twin saw %d storms", tc.RadarStorms)
	}
	stormP := groundTruthNetP(b)
	twinP := groundTruthNetP(twin)
	if math.IsNaN(stormP) || math.IsInf(stormP, 0) {
		t.Fatalf("storm NetP = %f", stormP)
	}
	if diff := stormP - twinP; diff < -0.10*math.Abs(twinP) {
		t.Fatalf("post-storm plan quality %f vs storm-free %f (gap %f, allowed %f)",
			stormP, twinP, diff, 0.10*math.Abs(twinP))
	}
}

// TestStormDeterminism: the whole hostile-RF run — traces, storms,
// quarantine, fallbacks — replays byte-identically per seed.
func TestStormDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campus storm replay in -short mode")
	}
	const seed = 7
	run := func() (*Backend, map[int]spectrum.Channel) {
		b := runStormCampus(seed, true, 4*sim.Hour)
		chans := map[int]spectrum.Channel{}
		for _, ap := range b.Scenario.APs {
			chans[ap.ID] = ap.Channel
		}
		return b, chans
	}
	b1, ch1 := run()
	b2, ch2 := run()
	if b1.Control() != b2.Control() {
		t.Fatalf("control stats diverge:\n%+v\n%+v", b1.Control(), b2.Control())
	}
	if b1.Switches() != b2.Switches() || b1.RadarEvents() != b2.RadarEvents() {
		t.Fatalf("switches/radar diverge: %d/%d vs %d/%d",
			b1.Switches(), b1.RadarEvents(), b2.Switches(), b2.RadarEvents())
	}
	for band, v := range b1.Service.LastLogNetP {
		if b2.Service.LastLogNetP[band] != v {
			t.Fatalf("LastLogNetP[%v] diverges", band)
		}
	}
	for id, c := range ch1 {
		if ch2[id] != c {
			t.Fatalf("AP %d channel diverges: %v vs %v", id, c, ch2[id])
		}
	}
}

// TestStormStrikeSemantics pins one strike end to end: the on-air AP
// vacates to an unquarantined non-DFS channel, pending intent pointing
// into the range is retargeted, and the NOP frees exactly 30 minutes
// later.
func TestStormStrikeSemantics(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgTurboCA)
	opt.RF = rfenv.NewEnv(nil, nil)
	b := New(opt, sc, engine)
	engine.RunUntil(sim.Hour)

	ch58, _ := spectrum.ChannelAt(spectrum.Band5, 58, spectrum.W80) // subs 52-64
	ch60, _ := spectrum.ChannelAt(spectrum.Band5, 60, spectrum.W20)
	onAir, pending := sc.APs[0], sc.APs[1]
	onAir.Channel = ch58
	b.intended[spectrum.Band5] = map[int]turboca.Assignment{
		onAir.ID:   {Channel: ch58},
		pending.ID: {Channel: ch60},
	}

	b.radarStorm(rfenv.Storm{At: engine.Now(), LowSub: 52, HighSub: 64})
	now := engine.Now()

	if b.rf.Q.Blocked(onAir.Channel, now) {
		t.Fatalf("struck AP still on a quarantined channel: %v", onAir.Channel)
	}
	if onAir.Channel.DFS {
		t.Fatalf("radar fallback %v is DFS", onAir.Channel)
	}
	if got := b.intended[spectrum.Band5][onAir.ID].Channel; got != onAir.Channel {
		t.Fatalf("intent %v diverges from fallback %v — the reconciler would push the radar channel back", got, onAir.Channel)
	}
	if got := b.intended[spectrum.Band5][pending.ID].Channel; b.rf.Q.Blocked(got, now) {
		t.Fatalf("pending intent still targets quarantined %v", got)
	}
	if got := b.Control().RadarStrikes; got != 1 {
		t.Fatalf("RadarStrikes = %d, want 1 (only the on-air AP)", got)
	}

	// Sub-channels 52..64 are all blocked; exactly at +30 min they free.
	for _, s := range []int{52, 56, 60, 64} {
		if !b.rf.Q.SubBlocked(s, now) {
			t.Fatalf("sub %d not quarantined after the sweep", s)
		}
		if b.rf.Q.SubBlocked(s, now+rfenv.NOPDuration) {
			t.Fatalf("sub %d still blocked at expiry", s)
		}
	}
}

// TestInstallChannelRefusesNOP pins the last-gate invariant: even if
// every upstream filter failed, installChannel refuses a quarantined
// assignment and counts the attempt.
func TestInstallChannelRefusesNOP(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgNone)
	opt.RF = rfenv.NewEnv(nil, nil)
	b := New(opt, sc, engine)

	b.rf.Q.Strike([]int{52, 56, 60, 64}, engine.Now())
	ch58, _ := spectrum.ChannelAt(spectrum.Band5, 58, spectrum.W80)
	before := sc.APs[0].Channel
	b.installChannel(sc.APs[0], spectrum.Band5, turboca.Assignment{Channel: ch58})
	if sc.APs[0].Channel != before {
		t.Fatalf("quarantined channel installed: %v", sc.APs[0].Channel)
	}
	if got := b.Control().NOPViolations; got != 1 {
		t.Fatalf("NOPViolations = %d, want 1 recorded refusal", got)
	}
	// A clean channel still installs.
	ch149, _ := spectrum.ChannelAt(spectrum.Band5, 155, spectrum.W80)
	b.installChannel(sc.APs[0], spectrum.Band5, turboca.Assignment{Channel: ch149})
	if sc.APs[0].Channel != ch149 {
		t.Fatalf("clean install refused: %v", sc.APs[0].Channel)
	}
}

// TestPlannerInputCarriesRF: the planner input folds the environment in —
// quarantined subs in Blocked, trace occupancy in ChannelNoise — and both
// dirty the input digest so fast passes cannot skip across a storm.
func TestPlannerInputCarriesRF(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgNone)
	opt.RF = rfenv.NewEnv(
		rfenv.NewTraceSet(3, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions()), nil)
	b := New(opt, sc, engine)
	b.Start()
	engine.RunUntil(2 * sim.Hour)

	in := b.PlannerInput(spectrum.Band5)
	preDigest := in.Digest()

	b.rf.Q.Strike([]int{100, 104, 108, 112}, engine.Now())
	in2 := b.PlannerInput(spectrum.Band5)
	for _, s := range []int{100, 104, 108, 112} {
		if !in2.Blocked[s] {
			t.Fatalf("sub %d missing from Input.Blocked", s)
		}
	}
	if in2.Digest() == preDigest {
		t.Fatal("quarantine does not dirty the planner-input digest")
	}

	// Trace noise lands in ChannelNoise and matches the trace set.
	foundNoise := false
	for at := sim.Time(0); at < 12*sim.Hour && !foundNoise; at += 15 * sim.Minute {
		for _, ch := range b.rf.Traces.Channels() {
			if b.rf.Traces.Occupancy(ch, at) > 0 {
				foundNoise = true
				break
			}
		}
	}
	if !foundNoise {
		t.Skip("trace quiet for 12h — implausible but not a backend bug")
	}
	// 2.4 GHz inputs must stay untouched: no quarantine, no noise.
	in24 := b.PlannerInput(spectrum.Band2G4)
	if len(in24.Blocked) != 0 || len(in24.ChannelNoise) != 0 {
		t.Fatal("RF environment leaked into the 2.4 GHz input")
	}
}

// TestStormNOPInvariantProperty: across 100 seeds, small networks under
// randomized storms plus aggressive uncorrelated radar never trip the
// no-transmit-during-NOP invariant.
func TestStormNOPInvariantProperty(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := int64(seed)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc := topo.Generate(topo.ScenarioOptions{
				Seed: seed, Name: "prop", APCount: 12,
				AreaW: 120, AreaH: 90, Grid: true,
				MeanClients: 6, DemandMbps: 40, Interferers: 4,
				Load: topo.OfficeLoad, UplinkMbps: 500,
			})
			engine := sim.NewEngine(seed)
			opt := DefaultOptions(AlgTurboCA)
			opt.Seed = seed
			opt.RadarEventsPerDay = 100 // uncorrelated strikes on top of the storm
			traces := rfenv.NewTraceSet(seed, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
			opt.RF = rfenv.NewEnv(traces, rfenv.StormSchedule(seed, 3*sim.Hour, 16))
			b := New(opt, sc, engine)
			b.Start()
			// Sample the invariant between events, not just at the end.
			for at := 30 * sim.Minute; at <= 3*sim.Hour; at += 30 * sim.Minute {
				engine.RunUntil(at)
				now := engine.Now()
				for _, ap := range sc.APs {
					if b.rf.Q.Blocked(ap.Channel, now) {
						t.Fatalf("at %v: AP %d transmitting on quarantined %v", at, ap.ID, ap.Channel)
					}
				}
			}
			if got := b.Control().NOPViolations; got != 0 {
				t.Fatalf("NOP invariant tripped %d times", got)
			}
		})
	}
}
