package backend

import (
	"math"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
)

// APPerf is the modeled state of one AP at an evaluation instant.
type APPerf struct {
	DemandMbps float64
	// AirtimeShare is the fraction of airtime the AP can win on its
	// channel after external interference and co-channel neighbors.
	AirtimeShare float64
	// CapacityMbps is the AP's effective MAC throughput at full airtime.
	CapacityMbps float64
	// ServedMbps = min(demand, capacity*share), then uplink-scaled.
	ServedMbps float64
	// Utilization is the busy fraction the AP's radio observes.
	Utilization float64
	// Contention summarizes co-channel pressure (0 = alone).
	Contention float64
	// ExtUtil is the external (non-network) utilization on the channel.
	ExtUtil float64
}

// Model converts a scenario plus a channel plan into the per-AP
// performance numbers a deployment would measure. It is the analytic
// stand-in for running a packet-level MAC simulation over hundreds of APs
// for simulated weeks, which the planner experiments (Table 2, Figs 8-9)
// require.
type Model struct {
	sc  *topo.Scenario
	rng *rand.Rand

	// Cached per-width effective capacity (Mbps) for a typical client mix.
	capByWidth map[spectrum.Width]float64

	// neighbor cache: scenario geometry is static.
	neighbors map[int][]topo.Neighbor

	// lastEval memoizes Evaluate for one timestamp.
	lastAt   sim.Time
	lastPerf map[int]APPerf
	dirty    bool

	// extCache memoizes extUtilOn per (AP, channel): interferer geometry
	// is static, so the value only depends on the assigned channel.
	extCache map[extKey]float64
}

type extKey struct {
	apID   int
	number int
	width  spectrum.Width
}

// NewModel builds a model over the scenario.
func NewModel(sc *topo.Scenario, seed int64) *Model {
	m := &Model{
		sc:         sc,
		rng:        sim.NewRNG(seed),
		capByWidth: map[spectrum.Width]float64{},
		neighbors:  map[int][]topo.Neighbor{},
		dirty:      true,
	}
	// Effective MAC throughput for a representative mid-cell client
	// (MCS7, 2 streams, the Fig 5 mode) at moderate aggregation.
	for _, w := range spectrum.Widths {
		r := phy.Rate{MCS: 7, NSS: 2, Width: w, GI: phy.SGI}
		m.capByWidth[w] = phy.EffectiveMACThroughputMbps(r, 24, 1400)
	}
	for _, ap := range sc.APs {
		m.neighbors[ap.ID] = sc.NeighborsOf(ap)
	}
	return m
}

// Invalidate drops the memoized evaluation (after a channel change).
func (m *Model) Invalidate() { m.dirty = true }

// Evaluate computes APPerf for every AP at time t. Co-channel contention
// is demand-weighted: a neighbor that overlaps any 20 MHz sub-channel of
// the AP's assignment consumes a share of its airtime proportional to the
// neighbor's own offered load (CSMA sharing, §4.1.2).
func (m *Model) Evaluate(t sim.Time) map[int]APPerf {
	if !m.dirty && t == m.lastAt && m.lastPerf != nil {
		return m.lastPerf
	}
	sc := m.sc
	perf := make(map[int]APPerf, len(sc.APs))

	// Pass 1: demand and normalized load per AP.
	demand := make(map[int]float64, len(sc.APs))
	for _, ap := range sc.APs {
		demand[ap.ID] = sc.DemandAt(ap, t)
	}

	// Pass 2: per-AP airtime demand (offered load as a fraction of the
	// AP's own channel capacity, beacons included).
	airDemand := make(map[int]float64, len(sc.APs))
	for _, ap := range sc.APs {
		cap5 := m.capByWidth[ap.Channel.Width]
		airDemand[ap.ID] = 0.02 + demand[ap.ID]/math.Max(cap5, 1)
	}

	// Pass 3: rationing. The airtime demanded on an AP's channel is its
	// own plus every overlapping in-range neighbor's plus external
	// sources. CSMA shares the medium roughly proportionally, so when
	// the total exceeds 1 every participant is scaled back by it.
	totalServed := 0.0
	for _, ap := range sc.APs {
		cap5 := m.capByWidth[ap.Channel.Width]
		ext := m.extUtilOn(ap, ap.Channel)

		contention := 0.0 // neighbors' airtime demand on our channel
		for _, n := range m.neighbors[ap.ID] {
			if n.AP.Channel.Overlaps(ap.Channel) {
				contention += airDemand[n.AP.ID]
			}
		}
		total := ext + contention + airDemand[ap.ID]

		scale := 1.0
		if total > 1 {
			scale = 1 / total
		}
		served := demand[ap.ID] * scale
		share := airDemand[ap.ID] * scale

		perf[ap.ID] = APPerf{
			DemandMbps:   demand[ap.ID],
			AirtimeShare: share,
			CapacityMbps: cap5,
			ServedMbps:   served,
			Utilization:  clamp01(total),
			Contention:   contention,
			ExtUtil:      ext,
		}
		totalServed += served
	}

	// Uplink cap: scale every AP's served traffic down proportionally
	// (Table 2: UNet's usage is bounded by the WAN).
	if sc.UplinkMbps > 0 && totalServed > sc.UplinkMbps {
		scale := sc.UplinkMbps / totalServed
		for id, p := range perf {
			p.ServedMbps *= scale
			perf[id] = p
		}
	}

	m.lastAt = t
	m.lastPerf = perf
	m.dirty = false
	return perf
}

func (m *Model) extUtilOn(ap *topo.AP, c spectrum.Channel) float64 {
	key := extKey{apID: ap.ID, number: c.Number, width: c.Width}
	if v, ok := m.extCache[key]; ok {
		return v
	}
	worst := 0.0
	for _, sub := range c.Sub20Numbers() {
		if u := m.sc.ExternalUtilization(ap.Pos, c.Band, sub); u > worst {
			worst = u
		}
	}
	if m.extCache == nil {
		m.extCache = map[extKey]float64{}
	}
	m.extCache[key] = worst
	return worst
}

// SampleTCPLatency draws one TCP latency observation (ms) for an AP: a
// base RTT plus contention-driven queueing (M/M/1-shaped), plus the
// heavy tail the paper attributes to arbitrarily slow clients — which is
// algorithm-independent (§4.6.2: "the distribution of latency over 400ms
// is similar for both").
func (m *Model) SampleTCPLatency(p APPerf, rng *rand.Rand) float64 {
	base := 4 + rng.Float64()*6
	rho := p.Utilization
	if rho > 0.97 {
		rho = 0.97
	}
	queue := 30 * rho / (1 - rho) * (0.5 + rng.Float64())
	lat := base + queue
	if rng.Float64() < 0.04 {
		// Slow/non-responsive client tail.
		lat += 400 + rng.ExpFloat64()*300
	}
	return lat
}

// SampleBitrateEff draws one bit-rate-efficiency observation in (0, 1]:
// the achieved rate divided by the client/AP pair's maximum (§4.6.2). A
// busy channel degrades it — collisions and retries drive Minstrel-style
// controllers toward conservative rates — and external interference
// lowers SINR directly.
func (m *Model) SampleBitrateEff(p APPerf, rng *rand.Rand) float64 {
	rho := p.Utilization
	base := 0.92 - 0.38*rho*rho - 0.12*math.Tanh(p.Contention/3) - 0.20*p.ExtUtil
	eff := base + rng.NormFloat64()*0.07
	return clamp01At(eff, 0.05, 1)
}

// SampleRSSI draws a client RSSI (dBm) from the distance distribution of
// an indoor cell; it does not depend on the channel plan (Fig 7's point:
// RSSI is a poor health metric because it is stable across load).
func (m *Model) SampleRSSI(rng *rand.Rand) float64 {
	d := 2 + rng.ExpFloat64()*9 // most clients within ~10 m
	if d > 40 {
		d = 40
	}
	loss := m.sc.Prop.Shadowed(spectrum.Band5, d, int(d/12), rng)
	return phy.DefaultAPTxPowerDBm + 2*phy.DefaultAntennaGainDBi - loss
}

func clamp01(x float64) float64 { return clamp01At(x, 0, 1) }

func clamp01At(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
