package backend

import (
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
)

// Channel-switch disruption accounting (§4.3.1): a CSA-capable client
// follows the AP to the target channel with negligible outage, but a
// client that misses (or does not implement) the announcement must detect
// the loss, rescan, and re-associate — about 5 s on laptops and 8 s on
// mobile devices in the paper's measurements. The backend charges every
// switch with the expected client outage so the stability cost of a
// channel plan is a first-class, queryable metric ("disruption" table),
// and the switch-penalty ablation can show what it buys.

// Outage durations measured in §4.3.1.
const (
	laptopRescan = 5 * sim.Second
	mobileRescan = 8 * sim.Second
)

// disruptionSeconds estimates the total client outage caused by switching
// ap's channel now.
func (b *Backend) disruptionSeconds(ap *topo.AP, now sim.Time) float64 {
	if ap.ClientCount() == 0 {
		return 0
	}
	// Device-class counts come from whichever client representation the
	// AP carries. The aggregate preserves the per-client walk exactly:
	// the same mobile/laptop partition, and — because every rescan term
	// is an integer number of seconds, so float addition is associative
	// here — the same total; the rng below is drawn exactly once per
	// CSA-capable client either way, keeping the stream bit-identical.
	csa, mobile, laptop := 0, 0, 0
	if agg := ap.ClientAgg; agg != nil {
		csa, mobile, laptop = agg.CSACount, agg.NonCSAMobile, agg.NonCSALaptop
	} else {
		for i, c := range ap.Clients {
			switch {
			case c.SupportsCSA:
				csa++
			case i%2 == 0:
				// Half the population behaves like mobile devices.
				mobile++
			default:
				laptop++
			}
		}
	}
	// Clients present only in proportion to the current load.
	activeFrac := 0.0
	if ap.BaseDemandMbps > 0 {
		activeFrac = b.Scenario.DemandAt(ap, now) / ap.BaseDemandMbps
	}
	total := float64(mobile)*mobileRescan.Seconds() + float64(laptop)*laptopRescan.Seconds()
	// CSA-capable clients still occasionally miss the beacons (§4.3.1:
	// "beacons might be missed even by clients that do support CSAs").
	for i := 0; i < csa; i++ {
		if b.rng.Float64() < 0.05 {
			total += laptopRescan.Seconds()
		}
	}
	return total * activeFrac
}

// chargeSwitch records the disruption for one AP channel change.
func (b *Backend) chargeSwitch(ap *topo.AP, band spectrum.Band, now sim.Time) {
	if band != spectrum.Band5 {
		// 2.4 GHz switches hit the CSA-less population hardest, which is
		// exactly why the planner's 2.4 GHz penalty is "very high"
		// (§4.4.1); the same model applies.
		_ = band
	}
	secs := b.disruptionSeconds(ap, now)
	b.disruptionTotal += secs
	if !b.Opt.DisableTelemetryHistory {
		b.DB.Table("disruption").Insert(ap.Name, now, map[string]float64{
			"seconds": secs,
			"band":    float64(band),
		})
	}
}

// DisruptionSeconds returns the cumulative client outage charged to
// channel switches.
func (b *Backend) DisruptionSeconds() float64 { return b.disruptionTotal }
