package backend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/spectrum"
)

// Automated reporting (§2.1: the backend "post-processes this data, and
// generates automated reports"). NetworkReport summarises a time window
// the way the dashboard's summary page would: usage, busiest APs, channel
// plan composition, latency/efficiency health, and churn.

// ReportTopN is how many busiest APs a report lists.
const ReportTopN = 5

// APUsage is one row of the busiest-AP list.
type APUsage struct {
	Name    string
	UsageGB float64
	UtilP50 float64
}

// NetworkReport is the rendered summary.
type NetworkReport struct {
	From, To     sim.Time
	TotalUsageTB float64
	BusiestAPs   []APUsage
	// Widths and DFSCount describe the channel plan at report time.
	Widths   map[spectrum.Width]int
	DFSCount int
	// Health metrics over the window.
	TCPLatencyP50     float64
	TCPLatencyP90     float64
	BitrateEffP50     float64
	Switches          int
	RadarEvents       int
	DisruptionSeconds float64
}

// Report builds a NetworkReport over [from, to).
func (b *Backend) Report(from, to sim.Time) NetworkReport {
	r := NetworkReport{
		From: from, To: to,
		Widths:            map[spectrum.Width]int{},
		Switches:          b.switches,
		RadarEvents:       b.radarHit,
		DisruptionSeconds: b.disruptionTotal,
	}
	usage := b.DB.Table("usage")
	util := b.DB.Table("utilization")

	r.TotalUsageTB = usage.SumField("bytes", from, to) / 1e12

	type kv struct {
		name  string
		bytes float64
	}
	var per []kv
	for _, key := range usage.Keys() {
		sum := 0.0
		for _, row := range usage.Range(key, from, to) {
			sum += row.Field("bytes")
		}
		per = append(per, kv{key, sum})
	}
	sort.Slice(per, func(i, j int) bool { return per[i].bytes > per[j].bytes })
	for i := 0; i < len(per) && i < ReportTopN; i++ {
		us := APUsage{Name: per[i].name, UsageGB: per[i].bytes / 1e9}
		s := util.AggregateField("util", from, to)
		_ = s
		perUtil := 0.0
		rows := util.Range(per[i].name, from, to)
		if len(rows) > 0 {
			vals := make([]float64, 0, len(rows))
			for _, row := range rows {
				vals = append(vals, row.Field("util"))
			}
			sort.Float64s(vals)
			perUtil = vals[len(vals)/2]
		}
		us.UtilP50 = perUtil
		r.BusiestAPs = append(r.BusiestAPs, us)
	}

	for _, ap := range b.Scenario.APs {
		r.Widths[ap.Channel.Width]++
		if ap.Channel.DFS {
			r.DFSCount++
		}
	}

	lat := b.DB.Table("tcp_latency").AggregateField("ms", from, to)
	r.TCPLatencyP50 = lat.Median()
	r.TCPLatencyP90 = lat.Percentile(90)
	r.BitrateEffP50 = b.DB.Table("bitrate_eff").AggregateField("eff", from, to).Median()
	return r
}

// String renders the report for terminals and logs.
func (r NetworkReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network report %v .. %v\n", r.From, r.To)
	fmt.Fprintf(&sb, "  usage: %.3f TB  switches: %d  radar: %d  disruption: %.0fs\n",
		r.TotalUsageTB, r.Switches, r.RadarEvents, r.DisruptionSeconds)
	fmt.Fprintf(&sb, "  tcp latency p50/p90: %.1f/%.1f ms  bitrate eff p50: %.2f\n",
		r.TCPLatencyP50, r.TCPLatencyP90, r.BitrateEffP50)
	var widths []spectrum.Width
	for w := range r.Widths {
		widths = append(widths, w)
	}
	sort.Slice(widths, func(i, j int) bool { return widths[i] < widths[j] })
	fmt.Fprintf(&sb, "  plan:")
	for _, w := range widths {
		fmt.Fprintf(&sb, " %v x%d", w, r.Widths[w])
	}
	fmt.Fprintf(&sb, " (%d on DFS)\n", r.DFSCount)
	fmt.Fprintf(&sb, "  busiest APs:\n")
	for _, ap := range r.BusiestAPs {
		fmt.Fprintf(&sb, "    %-20s %8.2f GB  util p50 %.0f%%\n", ap.Name, ap.UsageGB, 100*ap.UtilP50)
	}
	return sb.String()
}
