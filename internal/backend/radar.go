package backend

import (
	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// DFS radar handling (§4.5.2): operation on a DFS channel requires
// vacating immediately when radar is detected, and TurboCA therefore
// maintains a non-DFS fallback for every DFS assignment. Two injection
// shapes exist:
//
//   - RadarEventsPerDay draws uncorrelated single detections — one AP at
//     a time, the paper's per-AP model;
//   - Options.RF schedules correlated radar storms (rfenv.Storm): one
//     sweep strikes a whole DFS frequency range, so every AP whose
//     bonded channel touches it vacates in the same instant.
//
// When a hostile-RF environment is attached, every detection also
// starts the regulatory 30-minute non-occupancy period on the covered
// 20 MHz sub-channels. The quarantine is enforced at three layers —
// planner candidate generation (Input.Blocked), fallback selection
// (fallbackFor, below), and plan installation (push.go's installChannel
// guard) — and audited by a periodic sweep (checkNOP) that counts any
// AP caught transmitting inside an active window as an invariant
// violation. The storm campaign asserts that count stays zero.

// radarCheckInterval is how often the injector draws for events (and,
// under an RF env, how often the NOP invariant sweep runs).
const radarCheckInterval = 15 * sim.Minute

// startRadar installs the radar machinery: the random injector when
// RadarEventsPerDay enables it, the scheduled storms and the invariant
// sweep when an RF environment is attached.
func (b *Backend) startRadar() {
	random := b.Opt.RadarEventsPerDay > 0
	if random || b.rf != nil {
		perCheck := b.Opt.RadarEventsPerDay * radarCheckInterval.Seconds() / sim.Day.Seconds()
		b.Engine.Ticker(radarCheckInterval, func(e *sim.Engine) {
			if random && b.rng.Float64() < perCheck {
				b.radarEvent()
			}
			b.checkNOP()
		})
	}
	if b.rf == nil {
		return
	}
	now := b.Engine.Now()
	for _, s := range b.rf.Storms {
		if s.At <= now {
			continue
		}
		storm := s
		b.Engine.After(storm.At-now, func(e *sim.Engine) { b.radarStorm(storm) })
	}
}

// radarEvent picks a random AP operating on a DFS channel and injects a
// detection there. Without an RF environment this vacates just that AP
// (the legacy uncorrelated model, rng-compatible with it); with one, the
// detection quarantines the channel's sub-channels, which vacates every
// co-channel AP too — radar does not strike one AP, it strikes spectrum.
func (b *Backend) radarEvent() {
	var onDFS []int
	for i, ap := range b.Scenario.APs {
		if ap.Channel.DFS {
			onDFS = append(onDFS, i)
		}
	}
	if len(onDFS) == 0 {
		return
	}
	ap := b.Scenario.APs[onDFS[b.rng.Intn(len(onDFS))]]
	b.radarHit++
	if b.rf != nil {
		b.strike(ap.Channel.Sub20Numbers())
		return
	}
	b.vacate(ap)
	b.Model.Invalidate()
}

// radarStorm fires one correlated sweep from the RF environment's
// schedule: quarantine the struck range and vacate everything on it.
func (b *Backend) radarStorm(s rfenv.Storm) {
	b.radarHit++
	b.ctl.radarStorms.Inc()
	b.strike(s.Subs())
}

// strike starts the NOP on the given 20 MHz sub-channels and walks the
// network in Scenario.APs order: any AP on the air inside the struck
// range is vacated immediately, and any in-flight intended assignment
// pointing into it is retargeted so push retries and the reconciler
// cannot re-push a quarantined channel during its NOP window.
func (b *Backend) strike(subs []int) {
	if len(subs) == 0 {
		return
	}
	now := b.Engine.Now()
	b.rf.Q.Strike(subs, now)
	struck := make(map[int]bool, len(subs))
	for _, s := range subs {
		struck[s] = true
	}
	touches := func(c spectrum.Channel) bool {
		if c.Band != spectrum.Band5 || !c.Width.Valid() {
			return false
		}
		for _, s := range c.Sub20Numbers() {
			if struck[s] {
				return true
			}
		}
		return false
	}
	intended := b.intended[spectrum.Band5]
	moved := false
	for _, ap := range b.Scenario.APs {
		switch {
		case touches(ap.Channel):
			b.ctl.radarStrikes.Inc()
			b.vacate(ap)
			moved = true
		case intended != nil:
			if a, ok := intended[ap.ID]; ok && touches(a.Channel) {
				// The AP is not on the struck range but a pending push would
				// put it there (a retry or reconcile in flight).
				intended[ap.ID] = turboca.Assignment{Channel: b.fallbackFor(ap)}
			}
		}
	}
	if moved {
		b.Model.Invalidate()
	}
}

// vacate moves ap off its current channel onto a quarantine-safe
// fallback and makes that the plan of record — otherwise the reconciler
// would immediately push it back onto the radar channel.
func (b *Backend) vacate(ap *topo.AP) {
	fb := b.fallbackFor(ap)
	ap.Channel = fb
	b.switches++
	if m := b.intended[spectrum.Band5]; m != nil {
		if _, ok := m[ap.ID]; ok {
			m[ap.ID] = turboca.Assignment{Channel: fb}
		}
	}
}

// fallbackFor selects the channel an AP falls back to after a radar hit:
// the planner-provided non-DFS fallback when it exists and is not itself
// quarantined (a fallback computed before this strike can point straight
// into it — the NOPBlockedFallbacks counter tracks how often), otherwise
// a random non-DFS channel outside every active NOP window at the AP's
// width, narrowing until one exists.
func (b *Backend) fallbackFor(ap *topo.AP) spectrum.Channel {
	now := b.Engine.Now()
	blocked := func(c spectrum.Channel) bool {
		return b.rf != nil && b.rf.Q.Blocked(c, now)
	}
	if fb, ok := b.fallbacks[ap.ID]; ok && fb.Width != 0 && !fb.DFS {
		if !blocked(fb) {
			return fb
		}
		b.ctl.nopBlockedFallbacks.Inc()
	}
	w := ap.Channel.Width
	if !w.Valid() {
		w = spectrum.W20
	}
	for {
		cands := spectrum.Channels(spectrum.Band5, w, false)
		kept := cands[:0]
		for _, c := range cands {
			if !blocked(c) {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			return kept[b.rng.Intn(len(kept))]
		}
		w /= 2
		if !w.Valid() {
			// Non-DFS channels cannot be radar-quarantined, so this is
			// unreachable under radar strikes; kept as the deterministic
			// floor for malformed widths.
			fb, _ := spectrum.ChannelAt(spectrum.Band5, 36, spectrum.W20)
			return fb
		}
	}
}

// checkNOP audits the no-transmit-during-NOP invariant: with strikes
// enforced at planning, fallback, and install time, no AP should ever be
// found on a quarantined channel. Any hit here is a real bug, surfaced
// as a counter the storm campaign asserts to be zero.
func (b *Backend) checkNOP() {
	if b.rf == nil {
		return
	}
	now := b.Engine.Now()
	if b.rf.Q.Active(now) == 0 {
		return
	}
	for _, ap := range b.Scenario.APs {
		if b.rf.Q.Blocked(ap.Channel, now) {
			b.ctl.nopViolations.Inc()
		}
	}
}

// RadarEvents reports how many radar detections were injected (single
// events and storm sweeps both count once).
func (b *Backend) RadarEvents() int { return b.radarHit }
