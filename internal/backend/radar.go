package backend

import (
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/turboca"
)

// DFS radar handling (§4.5.2): operation on a DFS channel requires
// vacating immediately when radar is detected, and TurboCA therefore
// maintains a non-DFS fallback for every DFS assignment. The backend
// injects radar events at a configurable rate and performs the fallback
// switch the moment one fires; the regular planning cadence then
// re-optimizes from the new state.

// radarCheckInterval is how often the injector draws for events.
const radarCheckInterval = 15 * sim.Minute

// startRadar installs the injector when the options enable it.
func (b *Backend) startRadar() {
	if b.Opt.RadarEventsPerDay <= 0 {
		return
	}
	perCheck := b.Opt.RadarEventsPerDay * radarCheckInterval.Seconds() / sim.Day.Seconds()
	b.Engine.Ticker(radarCheckInterval, func(e *sim.Engine) {
		if b.rng.Float64() >= perCheck {
			return
		}
		b.radarEvent()
	})
}

// radarEvent picks a random AP operating on a DFS channel and forces the
// fallback move.
func (b *Backend) radarEvent() {
	var onDFS []int
	for i, ap := range b.Scenario.APs {
		if ap.Channel.DFS {
			onDFS = append(onDFS, i)
		}
	}
	if len(onDFS) == 0 {
		return
	}
	ap := b.Scenario.APs[onDFS[b.rng.Intn(len(onDFS))]]
	b.radarHit++

	fb, ok := b.fallbacks[ap.ID]
	if !ok || fb.Width == 0 || fb.DFS {
		// No planner-provided fallback (e.g. the initial plan): take the
		// first non-DFS channel at the AP's width, narrowing if needed.
		w := ap.Channel.Width
		for {
			if cands := spectrum.Channels(spectrum.Band5, w, false); len(cands) > 0 {
				fb = cands[b.rng.Intn(len(cands))]
				break
			}
			w /= 2
			if !w.Valid() {
				fb, _ = spectrum.ChannelAt(spectrum.Band5, 36, spectrum.W20)
				break
			}
		}
	}
	ap.Channel = fb
	b.switches++
	// The fallback is now the plan of record for this AP — otherwise the
	// reconciler would immediately push it back onto the radar channel.
	if m := b.intended[spectrum.Band5]; m != nil {
		if _, ok := m[ap.ID]; ok {
			m[ap.ID] = turboca.Assignment{Channel: fb}
		}
	}
	b.Model.Invalidate()
}

// RadarEvents reports how many radar hits were injected.
func (b *Backend) RadarEvents() int { return b.radarHit }
