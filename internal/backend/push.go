package backend

import (
	"time"

	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Plan delivery. An accepted plan first becomes the intent of record
// (b.intended); each AP whose on-air channel diverges from intent is then
// pushed. A failed push retries with bounded exponential backoff and
// deterministic jitter for up to Opt.PushAttempts attempts — and within a
// total-time cap (Opt.PushRetryTimeCap) measured from the chain's first
// attempt, so one delivery's backoff can never outlive the pass that
// started it. Anything that exhausts either budget — or diverges later,
// e.g. a radar fallback — is caught by the periodic Reconcile pass.
// Intent is re-read at every deferred delivery, so a newer plan always
// supersedes a stale retry.

// pushKey identifies one (band, AP) delivery for retry bookkeeping.
type pushKey struct {
	band spectrum.Band
	ap   int
}

// applyPlan records plan as the intent of record for the band and pushes
// it to each diverging AP, returning how many switches landed
// immediately. Deferred deliveries (retries, reconciliations) credit
// Service.SwitchesTotal themselves when they land, so partial
// applications are never over-counted.
func (b *Backend) applyPlan(band spectrum.Band, plan turboca.Plan, res turboca.Result) int {
	m := b.intended[band]
	if m == nil {
		m = map[int]turboca.Assignment{}
		b.intended[band] = m
	}
	applied := 0
	for _, ap := range b.Scenario.APs {
		a, ok := plan[ap.ID]
		if !ok {
			continue
		}
		m[ap.ID] = a
		if b.channelOn(ap, band) == a.Channel {
			// Already there (e.g. a pinned AP planned in place) — just
			// refresh the DFS fallback; no push needed.
			b.noteFallback(ap.ID, band, a)
			continue
		}
		if b.cancelled() {
			return applied
		}
		if b.pushAP(ap, band, a, 0, b.Engine.Now()) {
			applied++
		}
	}
	return applied
}

// pushAP attempts one configuration push. On failure it arms the backoff
// retry chain and reports false. chainStart is the sim time of the
// chain's first attempt (attempt 0); the retry-time cap is measured from
// it.
func (b *Backend) pushAP(ap *topo.AP, band spectrum.Band, a turboca.Assignment, attempt int, chainStart sim.Time) bool {
	now := b.Engine.Now()
	b.ctl.pushesAttempted.Inc()
	if b.faults.Offline(ap.ID, now) || b.faults.FailPush(ap.ID, int(band), now, attempt) {
		b.ctl.pushesFailed.Inc()
		b.scheduleRetry(ap, band, attempt, chainStart)
		return false
	}
	b.installChannel(ap, band, a)
	return true
}

// scheduleRetry arms the next delivery attempt: delay doubles from
// Opt.PushRetryBase, capped at Opt.PushRetryMax, plus up to 50%
// deterministic jitter so a burst of failures does not retry in
// lockstep. When the attempt budget is exhausted — or the next attempt
// would land beyond Opt.PushRetryTimeCap from the chain's first attempt —
// the chain stops and the reconciler owns the divergence.
func (b *Backend) scheduleRetry(ap *topo.AP, band spectrum.Band, attempt int, chainStart sim.Time) {
	if attempt+1 >= b.Opt.PushAttempts {
		return
	}
	key := pushKey{band, ap.ID}
	if b.retrying[key] {
		return
	}
	d := b.Opt.PushRetryBase << uint(attempt)
	if d > b.Opt.PushRetryMax {
		d = b.Opt.PushRetryMax
	}
	d += sim.Time(float64(d) * 0.5 * b.faults.Jitter(ap.ID, int(band), attempt, b.Engine.Now()))
	if cap := b.Opt.PushRetryTimeCap; cap >= 0 && b.Engine.Now()+d-chainStart > cap {
		b.ctl.retryCapHits.Inc()
		return
	}
	b.retrying[key] = true
	b.ctl.pushRetries.Inc()
	b.ctl.pushDelayUS.Observe(int64(d))
	b.Engine.After(d, func(e *sim.Engine) {
		delete(b.retrying, key)
		if b.cancelled() {
			return
		}
		// Re-read intent: a newer plan, or a radar fallback, may have
		// superseded the assignment this retry was armed for.
		a, ok := b.intent(band, ap.ID)
		if !ok || b.channelOn(ap, band) == a.Channel {
			return
		}
		if b.pushAP(ap, band, a, attempt+1, chainStart) && b.Service != nil {
			b.Service.SwitchesTotal++
		}
	})
}

// installChannel applies an assignment to the AP, charging switch
// disruption and invalidating the model when the channel actually
// changes. This is the last gate before an AP transmits on a channel,
// and therefore the mechanical guarantee behind the NOP invariant: a
// quarantined 5 GHz assignment is refused outright. The upstream layers
// (planner candidate filtering, strike-time intent retargeting) should
// make this unreachable — any refusal is counted as a violation attempt
// and the storm campaign asserts the count stays zero. The intent map is
// left alone: the reconciler retries after expiry unless a newer plan
// supersedes it first.
func (b *Backend) installChannel(ap *topo.AP, band spectrum.Band, a turboca.Assignment) {
	if band == spectrum.Band5 && b.rf != nil && b.rf.Q.Blocked(a.Channel, b.Engine.Now()) {
		b.ctl.nopViolations.Inc()
		return
	}
	changed := false
	if band == spectrum.Band2G4 {
		if ap.Channel24 != a.Channel {
			ap.Channel24 = a.Channel
			changed = true
		}
	} else if ap.Channel != a.Channel {
		ap.Channel = a.Channel
		changed = true
	}
	b.noteFallback(ap.ID, band, a)
	if changed {
		b.switches++
		b.chargeSwitch(ap, band, b.Engine.Now())
		b.Model.Invalidate()
	}
}

// Reconcile re-pushes every AP whose on-air channel diverges from the
// intended plan and has no backoff retry already in flight. It iterates
// the scenario's AP slice (never a Go map) so the push order — and with
// it every fault decision and counter — is deterministic.
func (b *Backend) Reconcile() {
	sp := b.obsReg.Tracer().Begin("backend.reconcile")
	passStart := time.Now()
	defer func() {
		b.ctl.reconcilePassUS.Observe(time.Since(passStart).Microseconds())
		sp.End()
	}()
	for _, band := range []spectrum.Band{spectrum.Band5, spectrum.Band2G4} {
		m := b.intended[band]
		if len(m) == 0 {
			continue
		}
		for _, ap := range b.Scenario.APs {
			if b.cancelled() {
				return
			}
			a, ok := m[ap.ID]
			if !ok || b.channelOn(ap, band) == a.Channel || b.retrying[pushKey{band, ap.ID}] {
				continue
			}
			b.ctl.reconciliations.Inc()
			if b.pushAP(ap, band, a, 0, b.Engine.Now()) && b.Service != nil {
				b.Service.SwitchesTotal++
			}
		}
	}
}

// Converged reports whether every AP with an intended assignment is on
// that channel — the control plane's eventual-consistency invariant.
func (b *Backend) Converged() bool {
	for _, band := range []spectrum.Band{spectrum.Band5, spectrum.Band2G4} {
		m := b.intended[band]
		for _, ap := range b.Scenario.APs {
			if a, ok := m[ap.ID]; ok && b.channelOn(ap, band) != a.Channel {
				return false
			}
		}
	}
	return true
}

// channelOn returns the AP's on-air channel for the band.
func (b *Backend) channelOn(ap *topo.AP, band spectrum.Band) spectrum.Channel {
	if band == spectrum.Band2G4 {
		return ap.Channel24
	}
	return ap.Channel
}

// intent returns the intended assignment for (band, AP), if any.
func (b *Backend) intent(band spectrum.Band, apID int) (turboca.Assignment, bool) {
	m := b.intended[band]
	if m == nil {
		return turboca.Assignment{}, false
	}
	a, ok := m[apID]
	return a, ok
}

// noteFallback tracks the planner-provided DFS fallback for 5 GHz
// assignments (radar.go consumes it).
func (b *Backend) noteFallback(apID int, band spectrum.Band, a turboca.Assignment) {
	if band != spectrum.Band5 {
		return
	}
	if a.Fallback != nil {
		b.fallbacks[apID] = *a.Fallback
	} else {
		delete(b.fallbacks, apID)
	}
}
