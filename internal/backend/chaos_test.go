package backend

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Chaos suite: the acceptance scenario for the fault-injected control
// plane. A campus-scale network runs TurboCA under 20% poll loss, 10%
// push failure, delayed and corrupted reports, and hour-long AP outages;
// the plan must still converge to (nearly) the fault-free plan quality,
// every failed push must eventually be reconciled, and the whole run
// must be byte-identical per seed.

// campusChaosProfile is the acceptance fault model: DefaultChaos rates
// plus two 1-hour offline windows, each taking out a block of ten APs.
func campusChaosProfile(seed int64) *faults.Profile {
	p := faults.DefaultChaos(seed)
	for id := 10; id < 20; id++ {
		p.Offline = append(p.Offline, faults.Window{APID: id, From: 2 * sim.Hour, To: 3 * sim.Hour})
	}
	for id := 30; id < 40; id++ {
		p.Offline = append(p.Offline, faults.Window{APID: id, From: 4 * sim.Hour, To: 5 * sim.Hour})
	}
	return p
}

// runCampus drives one campus deployment for d sim-hours under the given
// fault profile and returns the backend (scenario channels mutated in
// place).
func runCampus(seed int64, prof *faults.Profile, d sim.Time) *Backend {
	sc := topo.Campus(seed)
	engine := sim.NewEngine(seed)
	opt := DefaultOptions(AlgTurboCA)
	opt.Seed = seed
	opt.Faults = prof
	b := New(opt, sc, engine)
	b.Start()
	engine.RunUntil(d)
	return b
}

// groundTruthNetP scores the scenario's current on-air channels with a
// fault-free planner input — the same footing for faulted and clean
// runs, regardless of what stale telemetry either backend believed.
func groundTruthNetP(b *Backend) float64 {
	clean := New(DefaultOptions(AlgNone), b.Scenario, sim.NewEngine(1))
	in := clean.PlannerInput(spectrum.Band5)
	plan := turboca.Plan{}
	for _, ap := range b.Scenario.APs {
		plan[ap.ID] = turboca.Assignment{Channel: ap.Channel}
	}
	return turboca.NetP(clean.Opt.Planner, in, plan)
}

func TestChaosCampusConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("campus chaos run in -short mode")
	}
	const seed = 42
	const horizon = 6 * sim.Hour

	faulted := runCampus(seed, campusChaosProfile(seed), horizon)
	ctl := faulted.Control()
	if ctl.PollsDropped == 0 || ctl.PollsDelayed == 0 || ctl.PollsCorrupted == 0 {
		t.Fatalf("fault injection inert: %+v", ctl)
	}
	if ctl.PollsOffline == 0 {
		t.Fatalf("offline windows never fired: %+v", ctl)
	}
	if ctl.PushesFailed == 0 || ctl.PushRetries == 0 {
		t.Fatalf("no push failures at 10%% fail rate: %+v", ctl)
	}

	// Drain: stop planning (no moving target), keep polling and
	// reconciling, and require the eventual-consistency invariant —
	// every AP lands on its intended channel.
	faulted.Service.Stop()
	deadline := horizon
	for i := 0; i < 12 && !faulted.Converged(); i++ {
		deadline += faulted.Opt.ReconcileInterval
		faulted.Engine.RunUntil(deadline)
	}
	if !faulted.Converged() {
		t.Fatal("intended plan never reconciled with on-air channels")
	}
	// (Most failed pushes land via their own retry chain well before the
	// 15-minute reconcile tick; TestChaosOfflineWindowReconciled pins the
	// reconciler path deterministically.)

	// Plan quality: the faulted run's final on-air plan must be within
	// 5% of the fault-free twin's, scored on ground truth.
	clean := runCampus(seed, nil, horizon)
	if cc := clean.Control(); cc.PollsDropped != 0 || cc.PushesFailed != 0 || cc.PollsRejected != 0 {
		t.Fatalf("fault-free twin saw faults: %+v", cc)
	}
	faultedP := groundTruthNetP(faulted)
	cleanP := groundTruthNetP(clean)
	if math.IsNaN(faultedP) || math.IsInf(faultedP, 0) {
		t.Fatalf("faulted NetP = %f", faultedP)
	}
	// ln NetP is negative; "within 5%" is relative to the clean score's
	// magnitude.
	if diff := faultedP - cleanP; diff < -0.05*math.Abs(cleanP) {
		t.Fatalf("faulted plan quality %f vs fault-free %f (gap %f, allowed %f)",
			faultedP, cleanP, diff, 0.05*math.Abs(cleanP))
	}
}

func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campus chaos run in -short mode")
	}
	const seed = 7
	run := func() (*Backend, map[int]spectrum.Channel) {
		b := runCampus(seed, campusChaosProfile(seed), 2*sim.Hour)
		chans := map[int]spectrum.Channel{}
		for _, ap := range b.Scenario.APs {
			chans[ap.ID] = ap.Channel
		}
		return b, chans
	}
	b1, ch1 := run()
	b2, ch2 := run()

	if b1.Control() != b2.Control() {
		t.Fatalf("control stats diverge:\n%+v\n%+v", b1.Control(), b2.Control())
	}
	if b1.Switches() != b2.Switches() {
		t.Fatalf("switches diverge: %d vs %d", b1.Switches(), b2.Switches())
	}
	s1, s2 := b1.Service, b2.Service
	if s1.RunsTotal != s2.RunsTotal || s1.SwitchesTotal != s2.SwitchesTotal ||
		s1.ImprovedTotal != s2.ImprovedTotal || s1.DegradedTotal != s2.DegradedTotal ||
		s1.SanitizedTotal != s2.SanitizedTotal {
		t.Fatal("service counters diverge")
	}
	for band, v := range s1.LastLogNetP {
		if s2.LastLogNetP[band] != v {
			t.Fatalf("LastLogNetP[%v] diverges: %v vs %v", band, v, s2.LastLogNetP[band])
		}
	}
	for id, c := range ch1 {
		if ch2[id] != c {
			t.Fatalf("AP %d channel diverges: %v vs %v", id, c, ch2[id])
		}
	}
}

// TestChaosOfflineWindowReconciled pins the retry/reconcile contract on
// a single AP: pushes during its outage fail and exhaust the retry
// budget; the first reconcile pass after the AP returns lands the plan.
func TestChaosOfflineWindowReconciled(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgTurboCA)
	opt.Faults = &faults.Profile{
		Seed:    1,
		Offline: []faults.Window{{APID: sc.APs[0].ID, From: sim.Hour, To: 2 * sim.Hour}},
	}
	b := New(opt, sc, engine)
	engine.RunUntil(90 * sim.Minute) // mid-outage

	ch155, _ := spectrum.ChannelAt(spectrum.Band5, 155, spectrum.W80)
	plan := turboca.Plan{sc.APs[0].ID: {Channel: ch155}}
	if got := b.applyPlan(spectrum.Band5, plan, turboca.Result{}); got != 0 {
		t.Fatalf("push to offline AP applied %d switches", got)
	}
	// Let the whole backoff chain burn out inside the window
	// (30s+60s+2m+4m ≈ 7.5 min of retries, all offline).
	engine.RunUntil(110 * sim.Minute)
	ctl := b.Control()
	if want := b.Opt.PushAttempts; ctl.PushesAttempted != want {
		t.Fatalf("attempts = %d, want %d", ctl.PushesAttempted, want)
	}
	if ctl.PushRetries != b.Opt.PushAttempts-1 {
		t.Fatalf("retries = %d, want %d", ctl.PushRetries, b.Opt.PushAttempts-1)
	}
	if b.Converged() {
		t.Fatal("converged while the AP was unreachable")
	}

	engine.RunUntil(121 * sim.Minute) // window over
	b.Reconcile()
	if !b.Converged() || sc.APs[0].Channel != ch155 {
		t.Fatalf("reconcile did not land the plan: on %v", sc.APs[0].Channel)
	}
	if b.Control().Reconciliations != 1 {
		t.Fatalf("reconciliations = %d, want 1", b.Control().Reconciliations)
	}
}

// TestChaosStaleDegradesDeepPasses: when the whole network goes silent,
// planner views age into stale and then pinned, and the deep NBO passes
// are skipped rather than bold-moving on dead telemetry.
func TestChaosStaleDegradesDeepPasses(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgTurboCA)
	prof := &faults.Profile{Seed: 1}
	for _, ap := range sc.APs {
		prof.Offline = append(prof.Offline, faults.Window{APID: ap.ID, From: sim.Hour, To: 100 * sim.Hour})
	}
	opt.Faults = prof
	b := New(opt, sc, engine)
	b.Engine.Ticker(b.Opt.PollInterval, func(e *sim.Engine) { b.Poll() })
	engine.RunUntil(2 * sim.Hour) // an hour of silence: age 60m >= PinAfter 30m

	in := b.PlannerInput(spectrum.Band5)
	if f := in.StaleFraction(); f != 1 {
		t.Fatalf("stale fraction %f after an hour of silence, want 1", f)
	}
	pinned := 0
	for _, v := range in.APs {
		if v.Pinned {
			pinned++
		}
	}
	if pinned != len(sc.APs) {
		t.Fatalf("%d/%d APs pinned", pinned, len(sc.APs))
	}

	// One degradation per managed band (5 GHz and 2.4 GHz).
	b.Service.RunOnce([]int{2, 1, 0})
	if b.Service.DegradedTotal != 2 {
		t.Fatalf("DegradedTotal = %d, want 2 (deep pass on all-stale input, both bands)", b.Service.DegradedTotal)
	}
	// Shallow passes are never degraded.
	b.Service.RunOnce([]int{0})
	if b.Service.DegradedTotal != 2 {
		t.Fatal("i=0 invocation counted as degraded")
	}
}

// TestChaosLastKnownGoodDecay walks one AP through the staleness
// ladder: fresh report values, then exponentially decayed load, then
// pinned.
func TestChaosLastKnownGoodDecay(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgNone)
	target := sc.APs[0]
	// The AP goes silent right after its 10:00 poll (business hours, so
	// the last-known-good report carries real load).
	opt.Faults = &faults.Profile{
		Seed:    1,
		Offline: []faults.Window{{APID: target.ID, From: 10*sim.Hour + sim.Minute, To: 100 * sim.Hour}},
	}
	b := New(opt, sc, engine)
	b.Start()

	view := func() turboca.APView {
		in := b.PlannerInput(spectrum.Band5)
		for _, v := range in.APs {
			if v.ID == target.ID {
				return v
			}
		}
		t.Fatal("target AP missing from input")
		return turboca.APView{}
	}

	engine.RunUntil(10 * sim.Hour)
	fresh := view()
	if fresh.Stale || fresh.Pinned {
		t.Fatalf("fresh report marked stale: %+v", fresh)
	}
	if fresh.Load <= 0 {
		t.Fatalf("no load at 10 am: %+v", fresh)
	}
	rep := b.reports[target.ID]
	if rep == nil || rep.At != 10*sim.Hour {
		t.Fatalf("last-known-good not at the poll tick: %+v", rep)
	}

	// Age 10 min <= StaleAfter (15 min): still served from the report,
	// undecayed.
	engine.RunUntil(10*sim.Hour + 10*sim.Minute)
	if v := view(); v.Stale || v.Pinned || v.Load != fresh.Load {
		t.Fatalf("report aged %v already degraded: %+v", 10*sim.Minute, v)
	}

	// Age 25 min: stale, load decayed but not zeroed.
	engine.RunUntil(10*sim.Hour + 25*sim.Minute)
	staleViews := b.Control().StaleViews
	v := view()
	if !v.Stale || v.Pinned {
		t.Fatalf("aged report not marked stale: %+v", v)
	}
	if v.Load <= 0 || v.Load >= fresh.Load {
		t.Fatalf("stale load %f not decayed from %f", v.Load, fresh.Load)
	}
	if b.Control().StaleViews <= staleViews {
		t.Fatal("StaleViews counter did not advance")
	}

	// Age 40 min >= PinAfter (30 min): pinned to the current channel.
	engine.RunUntil(10*sim.Hour + 40*sim.Minute)
	pinnedViews := b.Control().PinnedViews
	if v := view(); !v.Pinned || !v.Stale {
		t.Fatalf("long-silent AP not pinned: %+v", v)
	}
	if b.Control().PinnedViews <= pinnedViews {
		t.Fatal("PinnedViews counter did not advance")
	}
	// Meanwhile healthy APs stayed fresh.
	in := b.PlannerInput(spectrum.Band5)
	if f := in.StaleFraction(); f >= 0.2 {
		t.Fatalf("stale fraction %f with one silent AP of %d", f, len(sc.APs))
	}
}

// TestChaosDelayedPollsStillLand: with every report delayed in transit,
// telemetry arrives late but completely — last-known-good catches up and
// the DB fills.
func TestChaosDelayedPollsStillLand(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	opt := DefaultOptions(AlgNone)
	opt.Faults = &faults.Profile{Seed: 3, PollDelay: 1.0, PollDelayMax: 10 * sim.Minute}
	b := New(opt, sc, engine)
	b.Start()
	engine.RunUntil(sim.Hour + 11*sim.Minute) // first hour's reports all delivered

	ctl := b.Control()
	if ctl.PollsDelayed != ctl.PollsAttempted || ctl.PollsDelayed == 0 {
		t.Fatalf("delayed %d of %d polls, want all", ctl.PollsDelayed, ctl.PollsAttempted)
	}
	for _, ap := range sc.APs {
		rep := b.reports[ap.ID]
		if rep == nil {
			t.Fatalf("AP %d never delivered a report", ap.ID)
		}
		if rep.At < sim.Hour {
			t.Fatalf("AP %d last-known-good stuck at %v", ap.ID, rep.At)
		}
		if n := b.DB.Table("usage").Len(ap.Name); n < 12 {
			t.Fatalf("AP %d has %d usage rows after an hour", ap.ID, n)
		}
	}
}

// TestPollIntervalDefaultedWithoutStart is the regression test for the
// served-bytes bug: Poll used to read Opt.PollInterval directly, so a
// backend whose options left it zero (and that never ran Start) recorded
// zero bytes for every sample. Defaults are now resolved once in New.
func TestPollIntervalDefaultedWithoutStart(t *testing.T) {
	sc := topo.Office(11)
	engine := sim.NewEngine(1)
	b := New(Options{Seed: 1, Algorithm: AlgNone, Planner: turboca.DefaultConfig()}, sc, engine)
	if b.Opt.PollInterval != 5*sim.Minute {
		t.Fatalf("PollInterval = %v, want 5m", b.Opt.PollInterval)
	}
	engine.RunUntil(13 * sim.Hour) // business hours: traffic flows
	b.Poll()
	row, ok := b.DB.Table("usage").Latest(sc.APs[0].Name)
	if !ok {
		t.Fatal("no usage row")
	}
	if row.Field("bytes") <= 0 {
		t.Fatalf("served bytes = %f with a defaulted poll interval", row.Field("bytes"))
	}
}
