package backend

import (
	"repro/internal/obs"
)

// Control-plane observability (scope "backend"). ControlStats used to be a
// one-off struct of plain ints; the counters now live on an obs registry
// so the same numbers are visible through every export path (-metrics
// JSON, text dumps, experiment reports) while the public Control()
// accessor keeps returning a ControlStats value. A Backend built without
// Options.Obs owns a private registry, so its Control() delta is exact
// regardless of what other instances do; with a shared registry the
// construction-time baseline still yields a correct delta as long as
// Control() is read before a later instance starts mutating the counters.
//
// Metric inventory (beyond the ControlStats counters, named in snake_case
// under "backend."):
//
//	backend.poll_pass_us       wall µs per Poll tick across all APs
//	backend.reconcile_pass_us  wall µs per Reconcile pass
//	backend.poll_age_us        sim µs: last-known-good report age at
//	                           planner-input build (the staleness ladder's
//	                           input distribution)
//	backend.poll_delay_us      sim µs: transit delay of delayed reports
//	backend.push_delay_us      sim µs: scheduled push retry backoff
type ctlMetrics struct {
	pollsAttempted  *obs.Counter
	pollsOffline    *obs.Counter
	pollsDropped    *obs.Counter
	pollsDelayed    *obs.Counter
	pollsCorrupted  *obs.Counter
	pollsRejected   *obs.Counter
	pushesAttempted *obs.Counter
	pushesFailed    *obs.Counter
	pushRetries     *obs.Counter
	reconciliations *obs.Counter
	staleViews      *obs.Counter
	pinnedViews     *obs.Counter
	ctxAborts       *obs.Counter
	retryCapHits    *obs.Counter

	radarStorms         *obs.Counter
	radarStrikes        *obs.Counter
	nopBlockedFallbacks *obs.Counter
	nopViolations       *obs.Counter

	pollPassUS      *obs.Histogram
	reconcilePassUS *obs.Histogram
	pollAgeUS       *obs.Histogram
	pollDelayUS     *obs.Histogram
	pushDelayUS     *obs.Histogram
}

func ctlMetricsOn(reg *obs.Registry) *ctlMetrics {
	s := reg.Scope("backend")
	return &ctlMetrics{
		pollsAttempted:  s.Counter("polls_attempted"),
		pollsOffline:    s.Counter("polls_offline"),
		pollsDropped:    s.Counter("polls_dropped"),
		pollsDelayed:    s.Counter("polls_delayed"),
		pollsCorrupted:  s.Counter("polls_corrupted"),
		pollsRejected:   s.Counter("polls_rejected"),
		pushesAttempted: s.Counter("pushes_attempted"),
		pushesFailed:    s.Counter("pushes_failed"),
		pushRetries:     s.Counter("push_retries"),
		reconciliations: s.Counter("reconciliations"),
		staleViews:      s.Counter("stale_views"),
		pinnedViews:     s.Counter("pinned_views"),
		ctxAborts:       s.Counter("ctx_aborts"),
		retryCapHits:    s.Counter("retry_cap_hits"),

		radarStorms:         s.Counter("radar_storms"),
		radarStrikes:        s.Counter("radar_strikes"),
		nopBlockedFallbacks: s.Counter("nop_blocked_fallbacks"),
		nopViolations:       s.Counter("nop_violations"),
		pollPassUS:          s.Histogram("poll_pass_us", "µs"),
		reconcilePassUS:     s.Histogram("reconcile_pass_us", "µs"),
		pollAgeUS:           s.Histogram("poll_age_us", "simµs"),
		pollDelayUS:         s.Histogram("poll_delay_us", "simµs"),
		pushDelayUS:         s.Histogram("push_delay_us", "simµs"),
	}
}

// read returns the absolute counter values as a ControlStats.
func (m *ctlMetrics) read() ControlStats {
	return ControlStats{
		PollsAttempted:  int(m.pollsAttempted.Value()),
		PollsOffline:    int(m.pollsOffline.Value()),
		PollsDropped:    int(m.pollsDropped.Value()),
		PollsDelayed:    int(m.pollsDelayed.Value()),
		PollsCorrupted:  int(m.pollsCorrupted.Value()),
		PollsRejected:   int(m.pollsRejected.Value()),
		PushesAttempted: int(m.pushesAttempted.Value()),
		PushesFailed:    int(m.pushesFailed.Value()),
		PushRetries:     int(m.pushRetries.Value()),
		Reconciliations: int(m.reconciliations.Value()),
		StaleViews:      int(m.staleViews.Value()),
		PinnedViews:     int(m.pinnedViews.Value()),

		RadarStorms:         int(m.radarStorms.Value()),
		RadarStrikes:        int(m.radarStrikes.Value()),
		NOPBlockedFallbacks: int(m.nopBlockedFallbacks.Value()),
		NOPViolations:       int(m.nopViolations.Value()),
	}
}

// sub returns s − o field-wise (the per-Backend delta against its
// construction-time baseline).
func (s ControlStats) sub(o ControlStats) ControlStats {
	return ControlStats{
		PollsAttempted:  s.PollsAttempted - o.PollsAttempted,
		PollsOffline:    s.PollsOffline - o.PollsOffline,
		PollsDropped:    s.PollsDropped - o.PollsDropped,
		PollsDelayed:    s.PollsDelayed - o.PollsDelayed,
		PollsCorrupted:  s.PollsCorrupted - o.PollsCorrupted,
		PollsRejected:   s.PollsRejected - o.PollsRejected,
		PushesAttempted: s.PushesAttempted - o.PushesAttempted,
		PushesFailed:    s.PushesFailed - o.PushesFailed,
		PushRetries:     s.PushRetries - o.PushRetries,
		Reconciliations: s.Reconciliations - o.Reconciliations,
		StaleViews:      s.StaleViews - o.StaleViews,
		PinnedViews:     s.PinnedViews - o.PinnedViews,

		RadarStorms:         s.RadarStorms - o.RadarStorms,
		RadarStrikes:        s.RadarStrikes - o.RadarStrikes,
		NOPBlockedFallbacks: s.NOPBlockedFallbacks - o.NOPBlockedFallbacks,
		NOPViolations:       s.NOPViolations - o.NOPViolations,
	}
}
