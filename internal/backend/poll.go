package backend

import (
	"math"
	"time"

	"repro/internal/littletable"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Hardened statistics collection. Each poll tick asks every AP for one
// sample; the fault injector may drop the exchange, delay the report in
// transit, or mangle its metric values. Whatever arrives intact becomes
// the AP's last-known-good report (apReport), which is what the planner
// input is built from — a lost poll never erases what we knew, it only
// ages it.

// apReport is the poller's last-known-good snapshot of one AP, stamped
// with the simulation time the sample was taken (not delivered).
type apReport struct {
	At          sim.Time
	Demand      float64 // offered load, Mbps
	Utilization float64
	HasClients  bool
}

// maxSaneDemandMbps rejects wild-scale corrupted demand values: no single
// AP in these scenarios offers anywhere near 100 Gbps.
const maxSaneDemandMbps = 1e5

// polledSample is one AP's report in flight from AP to cloud.
type polledSample struct {
	ap          *topo.AP
	at          sim.Time
	demand      float64
	util        float64
	served      float64
	servedBytes float64
	clients     float64
	hasClients  bool
	latencies   []float64
	effs        []float64
}

// Poll collects one statistics sample per AP into the time-series store:
// usage (bytes served this interval), channel utilization, TCP latency
// samples, and bit-rate efficiency. Faults are applied per AP: offline
// and dropped polls vanish (counters only), corrupted polls mangle the
// metric fields, delayed polls deliver the same sample later via the
// engine. All randomness — the latency/efficiency sample draws — is
// consumed here at poll time, so the b.rng stream advances identically
// whether or not a report is delayed or later rejected.
func (b *Backend) Poll() {
	sp := b.obsReg.Tracer().Begin("backend.poll")
	passStart := time.Now()
	defer func() {
		b.ctl.pollPassUS.Observe(time.Since(passStart).Microseconds())
		sp.End()
	}()
	now := b.Engine.Now()
	perf := b.Model.Evaluate(now)
	interval := b.Opt.PollInterval

	for _, ap := range b.Scenario.APs {
		// Supervision abort: a cancelled pass stops polling mid-fleet.
		// The rng stream diverges from an uncancelled run, but cancel only
		// fires under a stuck-pass watchdog, after which the supervising
		// scheduler quarantines this network — its stream is never compared
		// against a healthy twin again.
		if b.cancelled() {
			return
		}
		b.ctl.pollsAttempted.Inc()
		if b.faults.Offline(ap.ID, now) {
			b.ctl.pollsOffline.Inc()
			continue
		}
		if b.faults.DropPoll(ap.ID, now) {
			b.ctl.pollsDropped.Inc()
			continue
		}
		p := perf[ap.ID]
		demand, util := p.DemandMbps, p.Utilization
		if b.faults.CorruptPoll(ap.ID, now) {
			b.ctl.pollsCorrupted.Inc()
			demand = b.faults.CorruptValue(demand, ap.ID, 0, now)
			util = b.faults.CorruptValue(util, ap.ID, 1, now)
		}
		n := 1 + int(p.ServedMbps/20)
		if n > 12 {
			n = 12
		}
		s := polledSample{
			ap: ap, at: now,
			demand: demand, util: util,
			served:      p.ServedMbps,
			servedBytes: p.ServedMbps * 1e6 / 8 * interval.Seconds(),
			clients:     float64(ap.ClientCount()),
			// Clients dissociate off-hours; that is when the deep NBO
			// passes can migrate APs onto DFS channels without stranding
			// anyone through a CAC (§4.5.2).
			hasClients: ap.ClientCount() > 0 && p.DemandMbps > 0.15*ap.BaseDemandMbps,
			latencies:  make([]float64, n),
			effs:       make([]float64, n),
		}
		// Latency and bit-rate observations are per-transmission in the
		// real system, so busy APs and busy hours contribute
		// proportionally more samples to the fleet distributions
		// (Figs 8-9). Importance-weight by served traffic.
		for i := 0; i < n; i++ {
			s.latencies[i] = b.Model.SampleTCPLatency(p, b.rng)
			s.effs[i] = b.Model.SampleBitrateEff(p, b.rng)
		}
		if b.Opt.DisableTelemetryHistory {
			// The draws above still consumed b.rng (the stream must not
			// depend on whether history is kept); only the rows are dropped.
			s.latencies, s.effs = nil, nil
		}
		if d, ok := b.faults.DelayPoll(ap.ID, now); ok {
			b.ctl.pollsDelayed.Inc()
			b.ctl.pollDelayUS.Observe(int64(d))
			b.Engine.After(d, func(e *sim.Engine) { b.ingest(s) })
			continue
		}
		b.ingest(s)
	}
}

// ingest validates a delivered report, records it in the time-series
// store, and promotes it to the AP's last-known-good snapshot. Malformed
// reports (NaN, negative, or wild-scale metrics — every shape
// faults.CorruptValue produces) are rejected whole: no rows, no
// last-known-good update, so a corrupted poll behaves exactly like a
// lost one except for the counter.
func (b *Backend) ingest(s polledSample) {
	if !saneMetric(s.demand, maxSaneDemandMbps) || !saneMetric(s.util, 1) {
		b.ctl.pollsRejected.Inc()
		return
	}
	if !b.Opt.DisableTelemetryHistory {
		key := s.ap.Name
		b.DB.Table("usage").Insert(key, s.at, map[string]float64{
			"bytes":   s.servedBytes,
			"demand":  s.demand,
			"served":  s.served,
			"clients": s.clients,
		})
		b.DB.Table("utilization").InsertValue(key, s.at, "util", s.util)
		// The per-transmission samples land as one batch per table: one
		// lock round-trip for the AP's whole sample set instead of one per
		// sample.
		latRows := make([]littletable.Row, len(s.latencies))
		effRows := make([]littletable.Row, len(s.effs))
		for i := range s.latencies {
			latRows[i] = littletable.Row{At: s.at, Fields: map[string]float64{"ms": s.latencies[i]}}
			effRows[i] = littletable.Row{At: s.at, Fields: map[string]float64{"eff": s.effs[i]}}
		}
		b.DB.Table("tcp_latency").InsertBatch(key, latRows)
		b.DB.Table("bitrate_eff").InsertBatch(key, effRows)
	}
	// A delayed report may arrive after a fresher one already landed;
	// last-known-good is ordered by sample time, not delivery time.
	if rep, ok := b.reports[s.ap.ID]; !ok || s.at >= rep.At {
		b.reports[s.ap.ID] = &apReport{
			At: s.at, Demand: s.demand, Utilization: s.util, HasClients: s.hasClients,
		}
	}
}

// saneMetric accepts finite values in [0, hi].
func saneMetric(v, hi float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 && v <= hi
}

// ReportsDigest returns an FNV-1a content hash of the last-known-good
// report table, folded in Scenario.APs order so the value is independent
// of map iteration. The fleet durability layer records it in checkpoints
// as the telemetry-state anchor: two backends with equal digests have
// byte-identical planner-visible telemetry.
func (b *Backend) ReportsDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, ap := range b.Scenario.APs {
		rep, ok := b.reports[ap.ID]
		if !ok {
			continue
		}
		mix(uint64(ap.ID))
		mix(uint64(rep.At))
		mix(math.Float64bits(rep.Demand))
		mix(math.Float64bits(rep.Utilization))
		if rep.HasClients {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}
