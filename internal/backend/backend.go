// Package backend models the Meraki cloud side of Section 2: it polls
// every AP on a fixed cadence, stores the collected statistics in a
// LittleTable-style time-series database, snapshots the network state into
// planner inputs, runs a channel-assignment service (TurboCA or
// ReservedCA), and pushes accepted channel plans back to the APs.
//
// The control plane is hardened against the degraded-network regime the
// real deployment lives in (§2, §4.5): polls may be lost, delayed, or
// malformed and APs may drop offline (internal/faults injects those
// deterministically), so the poller keeps a last-known-good report per
// AP, planner inputs decay or pin stale APs, plan pushes retry with
// bounded backoff, and a reconciliation loop re-pushes any AP that
// diverged from the intended plan.
//
// The per-AP performance numbers the poller records come from an analytic
// RF/contention model (model.go) evaluated against the scenario's ground
// truth — the same role the real deployment's physics plays for the real
// backend.
package backend

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/littletable"
	"repro/internal/obs"
	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Algorithm selects the channel-assignment service.
type Algorithm int

const (
	// AlgNone leaves the initial (default) channel plan untouched.
	AlgNone Algorithm = iota
	// AlgReservedCA is the sequential greedy baseline, every 5 hours,
	// fixed 20 MHz width (§4.6.1).
	AlgReservedCA
	// AlgTurboCA is the full §4.4 algorithm on the §4.4.4 schedule.
	AlgTurboCA
)

func (a Algorithm) String() string {
	switch a {
	case AlgReservedCA:
		return "ReservedCA"
	case AlgTurboCA:
		return "TurboCA"
	}
	return "None"
}

// Options configures a backend instance. Zero fields are defaulted by New
// (see withDefaults), so every consumer — Start's tickers, Poll's byte
// accounting, the staleness thresholds — sees the same resolved values.
type Options struct {
	Seed         int64
	Algorithm    Algorithm
	PollInterval sim.Time // statistics collection cadence (default 5 min)
	// ReservedCAInterval is the baseline's re-evaluation period (5 h).
	ReservedCAInterval sim.Time
	// ReservedCAWidth is the baseline's fixed channel width.
	ReservedCAWidth spectrum.Width
	// Planner carries TurboCA tunables.
	Planner turboca.Config
	// AllowDFS admits DFS channels on 5 GHz.
	AllowDFS bool
	// DirtySkip lets the planning service elide fast (i=0) passes whose
	// telemetry digest matches the last provably no-op pass (see
	// turboca.Service.DirtySkip — skipping is exact, never heuristic).
	// Off by default for standalone backends; fleetd enables it
	// fleet-wide, where steady-state networks make most fast passes
	// no-ops.
	DirtySkip bool
	// RadarEventsPerDay injects DFS radar detections across the network
	// at this mean rate (0 disables; see radar.go).
	RadarEventsPerDay float64

	// RF, when non-nil, attaches a hostile-RF environment: spectrum-trace
	// interference sampled into every 5 GHz planner input, scheduled
	// correlated radar storms, and the non-occupancy quarantine table
	// every channel decision (planner candidates, radar fallbacks, plan
	// pushes) is checked against. Each backend needs its own Env — the
	// quarantine is per-network mutable state (see internal/rfenv).
	RF *rfenv.Env

	// Faults, when non-nil, threads a deterministic fault injector
	// through the backend↔AP control path (see internal/faults).
	Faults *faults.Profile

	// Obs, when non-nil, routes the backend's control-plane metrics and
	// spans to this registry (cmd/turboca passes its serving registry so
	// -metrics covers the backend scope). When nil each Backend gets a
	// private registry, so Control() deltas stay exact across any number
	// of instances. Either way the registry also becomes the planner's
	// unless Planner.Obs is set explicitly.
	Obs *obs.Registry

	// StaleAfter is the last-known-good report age beyond which an AP is
	// planned from decayed data (default 3 poll intervals).
	StaleAfter sim.Time
	// PinAfter is the report age beyond which a stale AP is pinned to
	// its current channel instead of replanned — an AP unheard-from for
	// that long probably cannot receive a push either (default
	// 2×StaleAfter).
	PinAfter sim.Time
	// MaxStaleFraction degrades deep NBO passes (i>0) to i=0 when more
	// than this fraction of a band's APs is stale (default 0.5; >= 1
	// disables).
	MaxStaleFraction float64

	// PushRetryBase is the first retry delay after a failed plan push;
	// attempts back off exponentially with deterministic jitter, capped
	// at PushRetryMax, for at most PushAttempts total attempts per
	// delivery. The reconciliation loop catches anything that outlives
	// the retry budget.
	PushRetryBase sim.Time // default 30 s
	PushRetryMax  sim.Time // default 8 min
	PushAttempts  int      // default 5
	// PushRetryTimeCap bounds the total sim time one delivery's retry
	// chain may span from its first attempt: a retry that would land
	// beyond the cap is abandoned to the reconciler instead of scheduled.
	// Without it a long backoff chain can outlive the pass (and the
	// scheduler tick) that started it. The default (30 min) exceeds the
	// worst-case chain under the default attempt budget, so it only bites
	// when configured tighter. Negative disables.
	PushRetryTimeCap sim.Time
	// ReconcileInterval is the cadence at which intended-vs-actual plan
	// divergence is detected and re-pushed (default 15 min).
	ReconcileInterval sim.Time

	// Retention bounds the telemetry DB to a trailing window so
	// multi-week simulations do not grow tables unboundedly (default
	// 14 days; negative disables).
	Retention sim.Time

	// DisableTelemetryHistory skips the per-AP history tables (usage,
	// utilization, tcp_latency, bitrate_eff, disruption) that back the
	// Report API. Planning is unaffected: the planner consumes the
	// in-memory last-known-good reports, never the history tables, and
	// every rng draw still happens so all downstream streams are
	// byte-identical with history on or off. fleetd sets this — at fleet
	// scale the history rows dominate per-network resident memory, and
	// fleet reporting runs off the shared fleet store instead.
	DisableTelemetryHistory bool
}

// DefaultOptions returns the production cadences.
func DefaultOptions(alg Algorithm) Options {
	return Options{
		Seed:      7,
		Algorithm: alg,
		Planner:   turboca.DefaultConfig(),
		AllowDFS:  true,
	}.withDefaults()
}

// withDefaults resolves every zero field to its production value — the
// single place interval and threshold defaults live.
func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 5 * sim.Minute
	}
	if o.ReservedCAInterval <= 0 {
		o.ReservedCAInterval = 5 * sim.Hour
	}
	if o.ReservedCAWidth == 0 {
		o.ReservedCAWidth = spectrum.W20
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 3 * o.PollInterval
	}
	if o.PinAfter <= 0 {
		o.PinAfter = 2 * o.StaleAfter
	}
	if o.MaxStaleFraction <= 0 {
		o.MaxStaleFraction = 0.5
	}
	if o.PushRetryBase <= 0 {
		o.PushRetryBase = 30 * sim.Second
	}
	if o.PushRetryMax <= 0 {
		o.PushRetryMax = 8 * sim.Minute
	}
	if o.PushAttempts <= 0 {
		o.PushAttempts = 5
	}
	if o.PushRetryTimeCap == 0 {
		o.PushRetryTimeCap = 30 * sim.Minute
	}
	if o.ReconcileInterval <= 0 {
		o.ReconcileInterval = 15 * sim.Minute
	}
	if o.Retention == 0 {
		o.Retention = 14 * sim.Day
	}
	return o
}

// ControlStats counts control-plane events: what the fault layer did to
// us and what the hardening machinery did about it.
type ControlStats struct {
	PollsAttempted int // one per AP per poll tick
	PollsOffline   int // AP inside an offline window
	PollsDropped   int // lost outright
	PollsDelayed   int // delivered late
	PollsCorrupted int // delivered with mangled metrics
	PollsRejected  int // malformed beyond use; last-known-good kept

	PushesAttempted int // per-AP plan push attempts, retries included
	PushesFailed    int // attempts that did not land
	PushRetries     int // backoff retries scheduled
	Reconciliations int // divergent APs re-pushed by the reconcile loop

	StaleViews  int // planner views built from decayed last-known-good data
	PinnedViews int // planner views pinned to their current channel

	RadarStorms         int // correlated radar-storm sweeps fired
	RadarStrikes        int // APs vacated off a struck channel
	NOPBlockedFallbacks int // planner fallbacks rejected: quarantined at use time
	NOPViolations       int // invariant trips: a transmission inside an active NOP window (must stay 0)
}

// Backend drives one scenario under one algorithm.
type Backend struct {
	Opt      Options
	Scenario *topo.Scenario
	Engine   *sim.Engine
	DB       *littletable.DB
	Model    *Model
	Service  *turboca.Service // non-nil for AlgTurboCA

	rng             *rand.Rand
	faults          *faults.Injector
	rf              *rfenv.Env // Opt.RF; nil when no hostile-RF layer
	switches        int
	radarHit        int
	disruptionTotal float64
	fallbacks       map[int]spectrum.Channel // AP ID -> planner-provided DFS fallback

	// reports holds the poller's last-known-good snapshot per AP, with
	// an age stamp (see poll.go).
	reports map[int]*apReport
	// intended is the channel each AP should be on per band — the plan
	// of record that push retries and the reconciler drive the network
	// toward (see push.go).
	intended map[spectrum.Band]map[int]turboca.Assignment
	// retrying marks (band, AP) deliveries with a backoff retry in
	// flight, so the reconciler does not double-push them.
	retrying map[pushKey]bool
	// ctl holds the control-plane counters on an obs registry; ctlBase is
	// their value at construction, so Control() reports per-instance
	// deltas (see obs.go).
	obsReg  *obs.Registry
	ctl     *ctlMetrics
	ctlBase ControlStats

	// ctx is the cancellation context the control loops honor. It
	// defaults to context.Background (never cancelled); an external
	// scheduler supervising this backend installs a per-pass context via
	// SetPassContext so a stuck-pass watchdog can abort poll, push, and
	// reconcile work mid-flight (see fleetd's supervision layer). A
	// cancelled backend stops doing work but keeps its intent maps, so
	// nothing is lost if the context is later replaced and work resumes.
	ctx context.Context

	// inputTmpl caches the static part of each band's planner input — ID,
	// width cap, client mix, external interference, neighbor lists — all
	// pure functions of the scenario's fixed geometry and population.
	// PlannerInput copies the template and fills in only the measured
	// fields, turning the per-pass snapshot from O(n²) neighbor geometry
	// plus per-client walks into a memcpy. The template's maps and
	// neighbor slices are shared across snapshots: Sanitize only ever
	// mutates invalid entries, which a template built from in-repo
	// generators never contains, and the planner treats views as
	// read-only.
	inputTmpl map[spectrum.Band][]turboca.APView
}

// New wires a backend over a scenario.
func New(opt Options, sc *topo.Scenario, engine *sim.Engine) *Backend {
	opt = opt.withDefaults()
	reg := opt.Obs
	if reg == nil {
		// A private registry per instance keeps Control() deltas exact no
		// matter how many backends a process runs or when their stats are
		// read; pass a shared registry (e.g. obs.Default()) to aggregate
		// across instances for serving.
		reg = obs.NewRegistry()
	}
	if opt.Planner.Obs == nil {
		opt.Planner.Obs = reg.Scope("turboca")
	}
	ctl := ctlMetricsOn(reg)
	b := &Backend{
		Opt:       opt,
		Scenario:  sc,
		Engine:    engine,
		DB:        littletable.NewDB(),
		rng:       sim.NewRNG(opt.Seed),
		faults:    faults.New(opt.Faults),
		rf:        opt.RF,
		fallbacks: map[int]spectrum.Channel{},
		reports:   map[int]*apReport{},
		intended:  map[spectrum.Band]map[int]turboca.Assignment{},
		retrying:  map[pushKey]bool{},
		obsReg:    reg,
		ctl:       ctl,
		ctlBase:   ctl.read(),
		inputTmpl: map[spectrum.Band][]turboca.APView{},
		ctx:       context.Background(),
	}
	if opt.Retention > 0 {
		b.DB.SetRetention(opt.Retention)
	}
	b.Model = NewModel(sc, opt.Seed^0x5eed)
	if opt.Algorithm == AlgTurboCA {
		b.Service = turboca.NewService(opt.Planner, b.PlannerInput, b.applyPlan, opt.Seed)
		b.Service.MaxStaleFraction = opt.MaxStaleFraction
		b.Service.DirtySkip = opt.DirtySkip
	}
	return b
}

// Start registers the poll, planning, and reconciliation schedules.
func (b *Backend) Start() {
	b.StartManaged()
	switch b.Opt.Algorithm {
	case AlgTurboCA:
		b.Service.Start(b.Engine)
	case AlgReservedCA:
		b.Engine.Ticker(b.Opt.ReservedCAInterval, func(e *sim.Engine) { b.runReservedCA() })
	}
}

// StartManaged registers the statistics, radar, and reconciliation
// schedules but NOT the planning cadence: the caller owns when planning
// passes run, invoking Service.RunOnce (or runReservedCA via Start)
// explicitly. This is the entry point for an external scheduler —
// internal/fleetd drives thousands of these per process off one
// fleet-wide priority cadence heap.
func (b *Backend) StartManaged() {
	b.Engine.Ticker(b.Opt.PollInterval, func(e *sim.Engine) { b.Poll() })
	b.startRadar()
	if b.Opt.Algorithm != AlgNone {
		b.Engine.Ticker(b.Opt.ReconcileInterval, func(e *sim.Engine) { b.Reconcile() })
	}
}

// Switches reports how many AP channel changes the service has applied.
func (b *Backend) Switches() int { return b.switches }

// RF exposes the hostile-RF environment this backend runs under (nil
// when none was configured).
func (b *Backend) RF() *rfenv.Env { return b.rf }

// SetPassContext installs the cancellation context the control loops
// check. Pass nil (or context.Background()) to clear supervision. The
// engine events already queued keep firing; a cancelled context makes
// their bodies return early, so a wedged pass drains instead of running
// away.
func (b *Backend) SetPassContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	b.ctx = ctx
}

// cancelled reports whether the supervising context has been cancelled,
// counting each observation.
func (b *Backend) cancelled() bool {
	if b.ctx.Err() == nil {
		return false
	}
	b.ctl.ctxAborts.Inc()
	return true
}

// Control returns a snapshot of the control-plane counters accumulated by
// this Backend instance (the registry totals minus the construction-time
// baseline).
func (b *Backend) Control() ControlStats { return b.ctl.read().sub(b.ctlBase) }

// ObsRegistry exposes the registry this backend's metrics and spans land
// on — Options.Obs when provided, otherwise the instance-private one.
func (b *Backend) ObsRegistry() *obs.Registry { return b.obsReg }

// PlannerInput snapshots the network into a turboca.Input for the band —
// the data a real backend would have: neighbor reports, polled
// utilization and usage, client mixes. Measured values come from the
// poller's last-known-good reports; an AP whose report has aged past
// StaleAfter is planned from decayed data, and one past PinAfter is
// pinned to its current channel. APs that have never reported (e.g. a
// planner invoked before the first poll tick) fall back to a
// provisioning-time model snapshot.
func (b *Backend) PlannerInput(band spectrum.Band) turboca.Input {
	now := b.Engine.Now()
	in := turboca.Input{Band: band, AllowDFS: b.Opt.AllowDFS, MaxWidth: spectrum.W80}
	if band == spectrum.Band2G4 {
		in.MaxWidth = spectrum.W20
	}
	if b.rf != nil && band == spectrum.Band5 {
		// Hostile-RF overlays, sampled at snapshot time: the active NOP
		// set (fresh maps each call — the planner and the digest may
		// outlive this poll window) and the spectrum trace's current
		// occupancy. Both are folded into Input.Digest, so a quarantine
		// starting or expiring dirties an otherwise-skippable fast pass.
		if b.rf.Q != nil {
			in.Blocked = b.rf.Q.BlockedSet(now)
		}
		if b.rf.Traces != nil {
			in.ChannelNoise = b.rf.Traces.NoiseMap(now)
		}
	}
	perf := b.Model.Evaluate(now)
	in.APs = append([]turboca.APView(nil), b.inputTemplate(band, in.MaxWidth)...)
	for i, ap := range b.Scenario.APs {
		v := &in.APs[i]
		cur := ap.Channel
		if band == spectrum.Band2G4 {
			cur = ap.Channel24
		}
		// Bootstrap values (no report yet): live model snapshot.
		demand := b.Scenario.DemandAt(ap, now)
		util := perf[ap.ID].Utilization
		// Clients dissociate off-hours; that is when the deep NBO passes
		// can migrate APs onto DFS channels without stranding anyone
		// through a CAC (§4.5.2).
		hasClients := ap.ClientCount() > 0 && demand > 0.15*ap.BaseDemandMbps
		stale, pinned := false, false
		if rep, ok := b.reports[ap.ID]; ok {
			age := now - rep.At
			b.ctl.pollAgeUS.Observe(int64(age))
			switch {
			case age <= b.Opt.StaleAfter:
				demand, util, hasClients = rep.Demand, rep.Utilization, rep.HasClients
			case age >= b.Opt.PinAfter:
				// Too old to trust at all: plan around the AP where it
				// is. It likely cannot receive a push anyway.
				pinned, stale = true, true
				b.ctl.pinnedViews.Inc()
				demand, util, hasClients = rep.Demand, rep.Utilization, true
			default:
				// Stale: decay the last-known-good load toward zero so a
				// silent AP gradually stops claiming airtime weight, but
				// keep its client picture conservative.
				stale = true
				b.ctl.staleViews.Inc()
				decay := math.Exp(-float64(age-b.Opt.StaleAfter) / float64(b.Opt.StaleAfter))
				demand, util = rep.Demand*decay, rep.Utilization*decay
				hasClients = rep.HasClients
			}
		}
		v.Current = cur
		v.HasClients = hasClients
		v.Load = normalizeLoad(demand)
		v.Utilization = util
		v.Stale = stale
		v.Pinned = pinned
	}
	return in
}

// inputTemplate returns (building on first use) the band's static APView
// skeleton, in Scenario.APs order. Geometry, client populations, and
// interferers never change after scenario generation, so everything here
// is computed exactly once per (backend, band).
func (b *Backend) inputTemplate(band spectrum.Band, maxW spectrum.Width) []turboca.APView {
	if tmpl, ok := b.inputTmpl[band]; ok {
		return tmpl
	}
	// The client width mix and the neighbor graph are band-independent;
	// when the other band's template already exists, alias its maps and
	// slices instead of rebuilding them. Planner views are read-only and
	// Sanitize's in-place neighbor rewrite preserves valid entries, so
	// aliasing is safe — and it halves the template footprint, which
	// matters when fleetd holds one backend per network resident.
	var donor []turboca.APView
	for _, t := range b.inputTmpl {
		donor = t
	}
	tmpl := make([]turboca.APView, 0, len(b.Scenario.APs))
	for i, ap := range b.Scenario.APs {
		v := turboca.APView{
			ID:           ap.ID,
			MaxWidth:     minWidth(maxW, ap.MaxWidth),
			CSAFraction:  csaFraction(ap),
			ExternalUtil: b.externalUtilMap(ap, band),
		}
		if donor != nil {
			v.WidthLoad = donor[i].WidthLoad
			v.Neighbors = donor[i].Neighbors
		} else {
			v.WidthLoad = widthLoad(ap)
			for _, n := range b.Scenario.NeighborsOf(ap) {
				v.Neighbors = append(v.Neighbors, n.AP.ID)
			}
		}
		tmpl = append(tmpl, v)
	}
	b.inputTmpl[band] = tmpl
	return tmpl
}

func minWidth(a, bw spectrum.Width) spectrum.Width {
	if a < bw {
		return a
	}
	return bw
}

func csaFraction(ap *topo.AP) float64 {
	if agg := ap.ClientAgg; agg != nil {
		if agg.Count == 0 {
			return 1
		}
		return float64(agg.CSACount) / float64(agg.Count)
	}
	if len(ap.Clients) == 0 {
		return 1
	}
	n := 0
	for _, c := range ap.Clients {
		if c.SupportsCSA {
			n++
		}
	}
	return float64(n) / float64(len(ap.Clients))
}

// normalizeLoad maps Mbps demand to the planner's load weight scale.
func normalizeLoad(mbps float64) float64 {
	l := mbps / 50
	if l > 4 {
		l = 4
	}
	return l
}

// widthLoad computes load(b): usage-weighted share of clients by max
// width.
func widthLoad(ap *topo.AP) map[spectrum.Width]float64 {
	if agg := ap.ClientAgg; agg != nil {
		// Iterate widths in the fixed spectrum order, not map order: the
		// float sum must be bitwise-stable across calls so telemetry
		// digests (turboca.Input.Digest) are reproducible.
		total := 0.0
		for _, w := range spectrum.Widths {
			total += agg.WidthLoad[w]
		}
		if total == 0 {
			return map[spectrum.Width]float64{spectrum.W20: 1}
		}
		out := map[spectrum.Width]float64{}
		for _, w := range spectrum.Widths {
			if s := agg.WidthLoad[w]; s > 0 {
				out[w] = s / total
			}
		}
		return out
	}
	out := map[spectrum.Width]float64{}
	total := 0.0
	for _, c := range ap.Clients {
		total += c.UsageWeight
	}
	if total == 0 {
		return map[spectrum.Width]float64{spectrum.W20: 1}
	}
	for _, c := range ap.Clients {
		out[c.MaxWidth] += c.UsageWeight / total
	}
	return out
}

func (b *Backend) externalUtilMap(ap *topo.AP, band spectrum.Band) map[int]float64 {
	out := map[int]float64{}
	for _, c := range spectrum.Channels(band, spectrum.W20, true) {
		u := b.Scenario.ExternalUtilization(ap.Pos, band, c.Number)
		if u > 0 {
			out[c.Number] = u
		}
	}
	return out
}

func (b *Backend) runReservedCA() {
	for _, band := range []spectrum.Band{spectrum.Band5, spectrum.Band2G4} {
		in := b.PlannerInput(band)
		(&in).Sanitize()
		w := b.Opt.ReservedCAWidth
		if band == spectrum.Band2G4 {
			w = spectrum.W20
		}
		res := turboca.RunReservedCA(b.Opt.Planner, in, w)
		b.applyPlan(band, res.Plan, res)
	}
}
