// Package backend models the Meraki cloud side of Section 2: it polls
// every AP on a fixed cadence, stores the collected statistics in a
// LittleTable-style time-series database, snapshots the network state into
// planner inputs, runs a channel-assignment service (TurboCA or
// ReservedCA), and pushes accepted channel plans back to the APs.
//
// The per-AP performance numbers the poller records come from an analytic
// RF/contention model (model.go) evaluated against the scenario's ground
// truth — the same role the real deployment's physics plays for the real
// backend.
package backend

import (
	"math/rand"

	"repro/internal/littletable"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Algorithm selects the channel-assignment service.
type Algorithm int

const (
	// AlgNone leaves the initial (default) channel plan untouched.
	AlgNone Algorithm = iota
	// AlgReservedCA is the sequential greedy baseline, every 5 hours,
	// fixed 20 MHz width (§4.6.1).
	AlgReservedCA
	// AlgTurboCA is the full §4.4 algorithm on the §4.4.4 schedule.
	AlgTurboCA
)

func (a Algorithm) String() string {
	switch a {
	case AlgReservedCA:
		return "ReservedCA"
	case AlgTurboCA:
		return "TurboCA"
	}
	return "None"
}

// Options configures a backend instance.
type Options struct {
	Seed         int64
	Algorithm    Algorithm
	PollInterval sim.Time // statistics collection cadence (default 5 min)
	// ReservedCAInterval is the baseline's re-evaluation period (5 h).
	ReservedCAInterval sim.Time
	// ReservedCAWidth is the baseline's fixed channel width.
	ReservedCAWidth spectrum.Width
	// Planner carries TurboCA tunables.
	Planner turboca.Config
	// AllowDFS admits DFS channels on 5 GHz.
	AllowDFS bool
	// RadarEventsPerDay injects DFS radar detections across the network
	// at this mean rate (0 disables; see radar.go).
	RadarEventsPerDay float64
}

// DefaultOptions returns the production cadences.
func DefaultOptions(alg Algorithm) Options {
	return Options{
		Seed:               7,
		Algorithm:          alg,
		PollInterval:       5 * sim.Minute,
		ReservedCAInterval: 5 * sim.Hour,
		ReservedCAWidth:    spectrum.W20,
		Planner:            turboca.DefaultConfig(),
		AllowDFS:           true,
	}
}

// Backend drives one scenario under one algorithm.
type Backend struct {
	Opt      Options
	Scenario *topo.Scenario
	Engine   *sim.Engine
	DB       *littletable.DB
	Model    *Model
	Service  *turboca.Service // non-nil for AlgTurboCA

	rng             *rand.Rand
	switches        int
	radarHit        int
	disruptionTotal float64
	fallbacks       map[int]spectrum.Channel // AP ID -> planner-provided DFS fallback
}

// New wires a backend over a scenario.
func New(opt Options, sc *topo.Scenario, engine *sim.Engine) *Backend {
	b := &Backend{
		Opt:       opt,
		Scenario:  sc,
		Engine:    engine,
		DB:        littletable.NewDB(),
		rng:       rand.New(rand.NewSource(opt.Seed)),
		fallbacks: map[int]spectrum.Channel{},
	}
	b.Model = NewModel(sc, opt.Seed^0x5eed)
	if opt.Algorithm == AlgTurboCA {
		b.Service = turboca.NewService(opt.Planner, b.PlannerInput, b.applyPlan, opt.Seed)
	}
	return b
}

// Start registers the poll and planning schedules.
func (b *Backend) Start() {
	poll := b.Opt.PollInterval
	if poll <= 0 {
		poll = 5 * sim.Minute
	}
	b.Engine.Ticker(poll, func(e *sim.Engine) { b.Poll() })

	b.startRadar()
	switch b.Opt.Algorithm {
	case AlgTurboCA:
		b.Service.Start(b.Engine)
	case AlgReservedCA:
		iv := b.Opt.ReservedCAInterval
		if iv <= 0 {
			iv = 5 * sim.Hour
		}
		b.Engine.Ticker(iv, func(e *sim.Engine) { b.runReservedCA() })
	}
}

// Switches reports how many AP channel changes the service has applied.
func (b *Backend) Switches() int { return b.switches }

// PlannerInput snapshots the scenario into a turboca.Input for the band —
// exactly the data a real backend would have: neighbor reports, scanned
// utilization, client mixes and usage.
func (b *Backend) PlannerInput(band spectrum.Band) turboca.Input {
	now := b.Engine.Now()
	in := turboca.Input{Band: band, AllowDFS: b.Opt.AllowDFS, MaxWidth: spectrum.W80}
	if band == spectrum.Band2G4 {
		in.MaxWidth = spectrum.W20
	}
	perf := b.Model.Evaluate(now)
	for _, ap := range b.Scenario.APs {
		cur := ap.Channel
		if band == spectrum.Band2G4 {
			cur = ap.Channel24
		}
		v := turboca.APView{
			ID:       ap.ID,
			Current:  cur,
			MaxWidth: minWidth(in.MaxWidth, ap.MaxWidth),
			// Clients dissociate off-hours; that is when the deep NBO
			// passes can migrate APs onto DFS channels without stranding
			// anyone through a CAC (§4.5.2).
			HasClients:   len(ap.Clients) > 0 && b.Scenario.DemandAt(ap, now) > 0.15*ap.BaseDemandMbps,
			CSAFraction:  csaFraction(ap),
			Load:         normalizeLoad(b.Scenario.DemandAt(ap, now)),
			WidthLoad:    widthLoad(ap),
			Utilization:  perf[ap.ID].Utilization,
			ExternalUtil: b.externalUtilMap(ap, band),
		}
		for _, n := range b.Scenario.NeighborsOf(ap) {
			v.Neighbors = append(v.Neighbors, n.AP.ID)
		}
		in.APs = append(in.APs, v)
	}
	return in
}

func minWidth(a, bw spectrum.Width) spectrum.Width {
	if a < bw {
		return a
	}
	return bw
}

func csaFraction(ap *topo.AP) float64 {
	if len(ap.Clients) == 0 {
		return 1
	}
	n := 0
	for _, c := range ap.Clients {
		if c.SupportsCSA {
			n++
		}
	}
	return float64(n) / float64(len(ap.Clients))
}

// normalizeLoad maps Mbps demand to the planner's load weight scale.
func normalizeLoad(mbps float64) float64 {
	l := mbps / 50
	if l > 4 {
		l = 4
	}
	return l
}

// widthLoad computes load(b): usage-weighted share of clients by max
// width.
func widthLoad(ap *topo.AP) map[spectrum.Width]float64 {
	out := map[spectrum.Width]float64{}
	total := 0.0
	for _, c := range ap.Clients {
		total += c.UsageWeight
	}
	if total == 0 {
		return map[spectrum.Width]float64{spectrum.W20: 1}
	}
	for _, c := range ap.Clients {
		out[c.MaxWidth] += c.UsageWeight / total
	}
	return out
}

func (b *Backend) externalUtilMap(ap *topo.AP, band spectrum.Band) map[int]float64 {
	out := map[int]float64{}
	for _, c := range spectrum.Channels(band, spectrum.W20, true) {
		u := b.Scenario.ExternalUtilization(ap.Pos, band, c.Number)
		if u > 0 {
			out[c.Number] = u
		}
	}
	return out
}

// applyPlan pushes an accepted plan onto the scenario's APs.
func (b *Backend) applyPlan(band spectrum.Band, plan turboca.Plan, res turboca.Result) {
	for _, ap := range b.Scenario.APs {
		a, ok := plan[ap.ID]
		if !ok {
			continue
		}
		if band == spectrum.Band2G4 {
			if ap.Channel24 != a.Channel {
				b.switches++
				ap.Channel24 = a.Channel
				b.chargeSwitch(ap, band, b.Engine.Now())
			}
			continue
		}
		if ap.Channel != a.Channel {
			b.switches++
			ap.Channel = a.Channel
			b.chargeSwitch(ap, band, b.Engine.Now())
		}
		if a.Fallback != nil {
			b.fallbacks[ap.ID] = *a.Fallback
		} else {
			delete(b.fallbacks, ap.ID)
		}
	}
	b.Model.Invalidate()
}

func (b *Backend) runReservedCA() {
	for _, band := range []spectrum.Band{spectrum.Band5, spectrum.Band2G4} {
		in := b.PlannerInput(band)
		w := b.Opt.ReservedCAWidth
		if band == spectrum.Band2G4 {
			w = spectrum.W20
		}
		res := turboca.RunReservedCA(b.Opt.Planner, in, w)
		b.applyPlan(band, res.Plan, res)
	}
}

// Poll collects one statistics sample per AP into the time-series store:
// usage (bytes served this interval), channel utilization, TCP latency
// samples, bit-rate efficiency, and client RSSIs.
func (b *Backend) Poll() {
	now := b.Engine.Now()
	perf := b.Model.Evaluate(now)
	interval := b.Opt.PollInterval
	usage := b.DB.Table("usage")
	util := b.DB.Table("utilization")
	lat := b.DB.Table("tcp_latency")
	eff := b.DB.Table("bitrate_eff")

	for _, ap := range b.Scenario.APs {
		p := perf[ap.ID]
		servedBytes := p.ServedMbps * 1e6 / 8 * interval.Seconds()
		key := ap.Name
		usage.Insert(key, now, map[string]float64{
			"bytes":   servedBytes,
			"demand":  p.DemandMbps,
			"served":  p.ServedMbps,
			"clients": float64(len(ap.Clients)),
		})
		util.InsertValue(key, now, "util", p.Utilization)
		// Latency and bit-rate observations are per-transmission in the
		// real system, so busy APs and busy hours contribute
		// proportionally more samples to the fleet distributions
		// (Figs 8-9). Importance-weight by served traffic.
		n := 1 + int(p.ServedMbps/20)
		if n > 12 {
			n = 12
		}
		for i := 0; i < n; i++ {
			lat.InsertValue(key, now, "ms", b.Model.SampleTCPLatency(p, b.rng))
			eff.InsertValue(key, now, "eff", b.Model.SampleBitrateEff(p, b.rng))
		}
	}
}
