package backend

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

func office(t *testing.T) *topo.Scenario {
	t.Helper()
	return topo.Office(11)
}

func TestPollPopulatesTables(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgNone), sc, engine)
	b.Start()
	engine.RunUntil(sim.Hour)
	for _, table := range []string{"usage", "utilization", "tcp_latency", "bitrate_eff"} {
		tb := b.DB.Table(table)
		if len(tb.Keys()) != len(sc.APs) {
			t.Fatalf("%s covers %d keys, want %d", table, len(tb.Keys()), len(sc.APs))
		}
	}
	// 12 polls in an hour at the 5-minute cadence.
	if got := b.DB.Table("usage").Len(sc.APs[0].Name); got != 12 {
		t.Fatalf("usage rows = %d, want 12", got)
	}
}

func TestPlannerInputFidelity(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	engine.RunUntil(13 * sim.Hour) // peak: clients associated

	in := b.PlannerInput(spectrum.Band5)
	if len(in.APs) != len(sc.APs) {
		t.Fatalf("input covers %d APs", len(in.APs))
	}
	for i, v := range in.APs {
		ap := sc.APs[i]
		if v.ID != ap.ID || v.Current != ap.Channel {
			t.Fatalf("AP %d mismatch", i)
		}
		if !v.HasClients {
			t.Fatalf("AP %d without clients at peak", i)
		}
		if v.Load <= 0 {
			t.Fatalf("AP %d load %f at peak", i, v.Load)
		}
		sum := 0.0
		for _, s := range v.WidthLoad {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("AP %d width load sums to %f", i, sum)
		}
		if v.CSAFraction < 0 || v.CSAFraction > 1 {
			t.Fatalf("CSA fraction %f", v.CSAFraction)
		}
	}
	// 2.4 GHz input is width-capped.
	in24 := b.PlannerInput(spectrum.Band2G4)
	if in24.MaxWidth != spectrum.W20 {
		t.Fatalf("2.4 GHz max width %v", in24.MaxWidth)
	}

	// Off-hours: clients dissociate (gates DFS, §4.5.2).
	engine.RunUntil(27 * sim.Hour) // 3 am next day
	inNight := b.PlannerInput(spectrum.Band5)
	nightClients := 0
	for _, v := range inNight.APs {
		if v.HasClients {
			nightClients++
		}
	}
	if nightClients > len(inNight.APs)/4 {
		t.Fatalf("%d/%d APs still have clients at 3 am", nightClients, len(inNight.APs))
	}
}

func TestApplyPlanSwitchesChannels(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	ch155, _ := spectrum.ChannelAt(spectrum.Band5, 155, spectrum.W80)
	plan := turboca.Plan{sc.APs[0].ID: {Channel: ch155}}
	b.applyPlan(spectrum.Band5, plan, turboca.Result{})
	if sc.APs[0].Channel != ch155 {
		t.Fatal("plan not applied")
	}
	if b.Switches() != 1 {
		t.Fatalf("switches = %d", b.Switches())
	}
	// Re-applying the same plan is a no-op.
	b.applyPlan(spectrum.Band5, plan, turboca.Result{})
	if b.Switches() != 1 {
		t.Fatal("idempotent apply counted twice")
	}
}

func TestTurboCAServiceImprovesNetwork(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	before := map[int]spectrum.Channel{}
	for _, ap := range sc.APs {
		before[ap.ID] = ap.Channel
	}
	b.Start()
	engine.RunUntil(2 * sim.Hour)
	if b.Switches() == 0 {
		t.Fatal("TurboCA never switched anything on an all-same-channel start")
	}
	distinct := map[int]bool{}
	for _, ap := range sc.APs {
		distinct[ap.Channel.Number] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct channels after planning", len(distinct))
	}
}

func TestReservedCARunsOnSchedule(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgReservedCA), sc, engine)
	b.Start()
	engine.RunUntil(6 * sim.Hour) // one 5-hour tick
	if b.Switches() == 0 {
		t.Fatal("ReservedCA made no changes")
	}
	// Fixed 20 MHz width on 5 GHz.
	for _, ap := range sc.APs {
		if ap.Channel.Width != spectrum.W20 {
			t.Fatalf("ReservedCA width %v", ap.Channel.Width)
		}
	}
}

func TestModelRationing(t *testing.T) {
	sc := office(t)
	m := NewModel(sc, 1)
	perf := m.Evaluate(13 * sim.Hour)
	for id, p := range perf {
		if p.ServedMbps > p.DemandMbps+1e-9 {
			t.Fatalf("AP %d served more than demand", id)
		}
		if p.Utilization < 0 || p.Utilization > 1 {
			t.Fatalf("utilization %f", p.Utilization)
		}
		if p.AirtimeShare < 0 || p.AirtimeShare > 1.000001 {
			t.Fatalf("share %f", p.AirtimeShare)
		}
	}
}

func TestModelMemoization(t *testing.T) {
	sc := office(t)
	m := NewModel(sc, 1)
	a := m.Evaluate(sim.Hour)
	b := m.Evaluate(sim.Hour)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty perf")
	}
	// Same time, no invalidation: identical (memoized) results.
	for id := range a {
		if a[id] != b[id] {
			t.Fatal("memoized evaluation differs")
		}
	}
	// Channel change invalidates.
	ch155, _ := spectrum.ChannelAt(spectrum.Band5, 155, spectrum.W80)
	sc.APs[0].Channel = ch155
	m.Invalidate()
	_ = m.Evaluate(sim.Hour) // must not panic and must recompute
}

func TestUplinkCapScalesServed(t *testing.T) {
	sc := office(t)
	sc.UplinkMbps = 100 // choke the WAN
	m := NewModel(sc, 1)
	perf := m.Evaluate(13 * sim.Hour)
	total := 0.0
	for _, p := range perf {
		total += p.ServedMbps
	}
	if total > 100.0001 {
		t.Fatalf("uplink cap violated: %f", total)
	}
}

func TestLatencySamplesHeavyTail(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(1)
	b := New(DefaultOptions(AlgNone), sc, engine)
	p := APPerf{Utilization: 0.5}
	n, over400 := 20000, 0
	for i := 0; i < n; i++ {
		if b.Model.SampleTCPLatency(p, b.rng) > 400 {
			over400++
		}
	}
	frac := float64(over400) / float64(n)
	// §4.6.2: a small algorithm-independent tail above 400 ms.
	if frac < 0.01 || frac > 0.10 {
		t.Fatalf("tail fraction %f", frac)
	}
}

func TestBitrateEffDegradesWithUtilization(t *testing.T) {
	sc := office(t)
	m := NewModel(sc, 1)
	rngA := sim.NewEngine(9).Rand()
	quiet, busy := 0.0, 0.0
	for i := 0; i < 5000; i++ {
		quiet += m.SampleBitrateEff(APPerf{Utilization: 0.1}, rngA)
		busy += m.SampleBitrateEff(APPerf{Utilization: 0.95}, rngA)
	}
	if busy >= quiet {
		t.Fatal("efficiency does not degrade with utilization")
	}
}

func TestRadarEventsForceFallback(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(2)
	opt := DefaultOptions(AlgTurboCA)
	opt.RadarEventsPerDay = 200 // aggressive so a short sim sees hits
	b := New(opt, sc, engine)
	b.Start()
	// Plan at night so DFS channels get used, then run with radar.
	engine.RunUntil(6 * sim.Hour)
	hadDFS := 0
	for _, ap := range sc.APs {
		if ap.Channel.DFS {
			hadDFS++
		}
	}
	if hadDFS == 0 {
		t.Skip("no DFS assignments this seed")
	}
	engine.RunUntil(30 * sim.Hour)
	if b.RadarEvents() == 0 {
		t.Fatal("no radar events at 200/day over a day")
	}
	// Every radar hit must have landed the AP on a non-DFS channel at
	// that moment (the planner may later move it back legitimately).
	for _, ap := range sc.APs {
		if ap.Channel.Width == 0 {
			t.Fatalf("AP %d lost its channel", ap.ID)
		}
	}
}

func TestFallbacksTracked(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(3)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	b.Start()
	engine.RunUntil(4 * sim.Hour) // includes the nightly-ish deep passes
	dfsAssigned := 0
	for _, ap := range sc.APs {
		if !ap.Channel.DFS {
			continue
		}
		dfsAssigned++
		fb, ok := b.fallbacks[ap.ID]
		if !ok {
			t.Fatalf("AP %d on DFS %v without tracked fallback", ap.ID, ap.Channel)
		}
		if fb.DFS {
			t.Fatalf("AP %d fallback %v is itself DFS", ap.ID, fb)
		}
	}
	if dfsAssigned == 0 {
		t.Skip("no DFS assignments this seed")
	}
}

func TestDisruptionAccounting(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(4)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	b.Start()
	// Run through business hours so switches hit associated clients.
	engine.RunUntil(16 * sim.Hour)
	if b.Switches() == 0 {
		t.Fatal("no switches")
	}
	if b.DisruptionSeconds() <= 0 {
		t.Fatal("switches charged no disruption during business hours")
	}
	// The disruption table holds per-switch rows.
	if len(b.DB.Table("disruption").Keys()) == 0 {
		t.Fatal("disruption table empty")
	}
	// Night switches on idle APs are (nearly) free.
	sc2 := topo.Office(12)
	engine2 := sim.NewEngine(4)
	b2 := New(DefaultOptions(AlgTurboCA), sc2, engine2)
	night := b2.disruptionSeconds(sc2.APs[0], 3*sim.Hour)
	day := b2.disruptionSeconds(sc2.APs[0], 13*sim.Hour)
	if night >= day {
		t.Fatalf("night disruption %f >= day %f", night, day)
	}
}

func TestNetworkReport(t *testing.T) {
	sc := office(t)
	engine := sim.NewEngine(5)
	b := New(DefaultOptions(AlgTurboCA), sc, engine)
	b.Start()
	engine.RunUntil(14 * sim.Hour)
	r := b.Report(0, 14*sim.Hour)
	if r.TotalUsageTB <= 0 {
		t.Fatal("no usage in report")
	}
	if len(r.BusiestAPs) != ReportTopN {
		t.Fatalf("busiest list has %d entries", len(r.BusiestAPs))
	}
	// Busiest list is sorted descending.
	for i := 1; i < len(r.BusiestAPs); i++ {
		if r.BusiestAPs[i].UsageGB > r.BusiestAPs[i-1].UsageGB {
			t.Fatal("busiest APs not sorted")
		}
	}
	total := 0
	for _, n := range r.Widths {
		total += n
	}
	if total != len(sc.APs) {
		t.Fatalf("width histogram covers %d APs", total)
	}
	if r.TCPLatencyP90 < r.TCPLatencyP50 {
		t.Fatal("latency percentiles inverted")
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}
