package packet

import (
	"encoding/binary"
	"fmt"
)

// Ethernet is the 14-byte link-layer header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// HeaderLen is the encoded length of an Ethernet header.
const ethernetHeaderLen = 14

// Encode appends the wire form of e to b and returns the extended slice.
func (e *Ethernet) Encode(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// DecodeEthernet parses an Ethernet header, returning the header and the
// remaining payload bytes.
func DecodeEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < ethernetHeaderLen {
		return Ethernet{}, nil, ErrTruncated
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return e, b[14:], nil
}

// IPv4 is the network-layer header (no IP options are generated; received
// options are preserved only as header length).
type IPv4 struct {
	TOS      uint8 // DSCP (high 6 bits) + ECN
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IPv4Addr
}

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DSCP returns the differentiated-services code point, which maps to an
// 802.11e access category (§3.2.4 of the paper).
func (ip *IPv4) DSCP() uint8 { return ip.TOS >> 2 }

// SetDSCP sets the DSCP bits, preserving ECN.
func (ip *IPv4) SetDSCP(dscp uint8) { ip.TOS = dscp<<2 | ip.TOS&0x3 }

const ipv4HeaderLen = 20

// Encode appends the wire form of ip (with payload length payloadLen used
// to fill TotalLen) and computes the header checksum.
func (ip *IPv4) Encode(b []byte, payloadLen int) []byte {
	start := len(b)
	total := uint16(ipv4HeaderLen + payloadLen)
	b = append(b,
		0x45, // version 4, IHL 5
		ip.TOS,
		byte(total>>8), byte(total),
		byte(ip.ID>>8), byte(ip.ID),
		0x40, 0x00, // don't-fragment, offset 0
		ip.TTL,
		ip.Protocol,
		0, 0, // checksum placeholder
	)
	b = append(b, ip.Src[:]...)
	b = append(b, ip.Dst[:]...)
	cs := ipChecksum(b[start : start+ipv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return b
}

// DecodeIPv4 parses an IPv4 header, returning it and the payload bytes
// bounded by TotalLen.
func DecodeIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < ipv4HeaderLen {
		return IPv4{}, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, fmt.Errorf("%w: IP version %d", ErrBadFormat, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return IPv4{}, nil, fmt.Errorf("%w: IHL %d", ErrBadFormat, ihl)
	}
	var ip IPv4
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	end := int(ip.TotalLen)
	if end > len(b) || end < ihl {
		return IPv4{}, nil, ErrTruncated
	}
	return ip, b[ihl:end], nil
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// SACKBlock is one selective-acknowledgement range [Left, Right).
type SACKBlock struct {
	Left, Right uint32
}

// TCP is the transport header with the option set FastACK needs.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16

	// Options (encoded/decoded when present).
	MSS           uint16 // 0 = absent
	WindowScale   int    // -1 = absent
	SACKPermitted bool
	SACK          []SACKBlock // up to 4 blocks
}

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// NewTCP returns a TCP header with option fields marked absent.
func NewTCP() TCP { return TCP{WindowScale: -1} }

// HasFlag reports whether all bits in mask are set.
func (t *TCP) HasFlag(mask uint8) bool { return t.Flags&mask == mask }

// FlagString renders the flags compactly, e.g. "SA" for SYN|ACK.
func (t *TCP) FlagString() string {
	s := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{FlagFIN, "F"}, {FlagSYN, "S"}, {FlagRST, "R"}, {FlagPSH, "P"}, {FlagACK, "A"}, {FlagURG, "U"}} {
		if t.Flags&f.bit != 0 {
			s += f.name
		}
	}
	if s == "" {
		s = "."
	}
	return s
}

// sackBlocks returns how many SACK blocks fit the 40-byte TCP option
// budget alongside the other options present. A header assembled from
// hostile or fuzzed input may carry more blocks than any real sender
// could encode; emitting them all would push the data offset past its
// 4-bit field and corrupt the header.
func (t *TCP) sackBlocks() int {
	base := 0
	if t.MSS != 0 {
		base += 4
	}
	if t.WindowScale >= 0 {
		base += 3
	}
	if t.SACKPermitted {
		base += 2
	}
	n := len(t.SACK)
	if n > 4 {
		n = 4
	}
	for n > 0 && base+2+8*n > 40 {
		n--
	}
	return n
}

// optionsLen returns the padded length of the encoded options.
func (t *TCP) optionsLen() int {
	n := 0
	if t.MSS != 0 {
		n += 4
	}
	if t.WindowScale >= 0 {
		n += 3
	}
	if t.SACKPermitted {
		n += 2
	}
	if k := t.sackBlocks(); k > 0 {
		n += 2 + 8*k
	}
	return (n + 3) &^ 3 // pad to 4-byte boundary
}

// HeaderLen returns the encoded TCP header length including options.
func (t *TCP) HeaderLen() int { return 20 + t.optionsLen() }

// Encode appends the wire form of t followed by payload, computing the
// checksum over the IPv4 pseudo-header for src/dst.
func (t *TCP) Encode(b []byte, src, dst IPv4Addr, payload []byte) []byte {
	start := len(b)
	hl := t.HeaderLen()
	dataOff := byte(hl/4) << 4
	b = append(b,
		byte(t.SrcPort>>8), byte(t.SrcPort),
		byte(t.DstPort>>8), byte(t.DstPort),
	)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b,
		dataOff,
		t.Flags,
		byte(t.Window>>8), byte(t.Window),
		0, 0, // checksum placeholder
		byte(t.Urgent>>8), byte(t.Urgent),
	)
	b = t.encodeOptions(b)
	b = append(b, payload...)
	seg := b[start:]
	cs := tcpChecksum(src, dst, ProtoTCP, seg)
	binary.BigEndian.PutUint16(seg[16:18], cs)
	return b
}

func (t *TCP) encodeOptions(b []byte) []byte {
	n := 0
	if t.MSS != 0 {
		b = append(b, 2, 4, byte(t.MSS>>8), byte(t.MSS))
		n += 4
	}
	if t.WindowScale >= 0 {
		b = append(b, 3, 3, byte(t.WindowScale))
		n += 3
	}
	if t.SACKPermitted {
		b = append(b, 4, 2)
		n += 2
	}
	if k := t.sackBlocks(); k > 0 {
		b = append(b, 5, byte(2+8*k))
		for _, blk := range t.SACK[:k] {
			b = binary.BigEndian.AppendUint32(b, blk.Left)
			b = binary.BigEndian.AppendUint32(b, blk.Right)
		}
		n += 2 + 8*k
	}
	for n%4 != 0 {
		b = append(b, 0) // end-of-options / pad
		n++
	}
	return b
}

// DecodeTCP parses a TCP header and returns it plus the payload.
func DecodeTCP(b []byte) (TCP, []byte, error) {
	if len(b) < 20 {
		return TCP{}, nil, ErrTruncated
	}
	t := NewTCP()
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	hl := int(b[12]>>4) * 4
	if hl < 20 || hl > len(b) {
		return TCP{}, nil, fmt.Errorf("%w: TCP data offset %d", ErrBadFormat, hl)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	if err := t.decodeOptions(b[20:hl]); err != nil {
		return TCP{}, nil, err
	}
	return t, b[hl:], nil
}

func (t *TCP) decodeOptions(opts []byte) error {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case 0: // end of options
			return nil
		case 1: // NOP
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return fmt.Errorf("%w: truncated TCP option", ErrBadFormat)
		}
		olen := int(opts[1])
		if olen < 2 || olen > len(opts) {
			return fmt.Errorf("%w: TCP option length %d", ErrBadFormat, olen)
		}
		body := opts[2:olen]
		switch kind {
		case 2:
			if len(body) == 2 {
				t.MSS = binary.BigEndian.Uint16(body)
			}
		case 3:
			if len(body) == 1 {
				t.WindowScale = int(body[0])
			}
		case 4:
			t.SACKPermitted = true
		case 5:
			// Cap at the 4 blocks the option format admits on the wire;
			// repeated SACK options cannot accumulate past it.
			for len(body) >= 8 && len(t.SACK) < 4 {
				t.SACK = append(t.SACK, SACKBlock{
					Left:  binary.BigEndian.Uint32(body[0:4]),
					Right: binary.BigEndian.Uint32(body[4:8]),
				})
				body = body[8:]
			}
		}
		opts = opts[olen:]
	}
	return nil
}

// UDP is the 8-byte transport header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// Encode appends the wire form of u followed by payload.
func (u *UDP) Encode(b []byte, src, dst IPv4Addr, payload []byte) []byte {
	start := len(b)
	length := uint16(8 + len(payload))
	b = append(b,
		byte(u.SrcPort>>8), byte(u.SrcPort),
		byte(u.DstPort>>8), byte(u.DstPort),
		byte(length>>8), byte(length),
		0, 0,
	)
	b = append(b, payload...)
	seg := b[start:]
	cs := tcpChecksum(src, dst, ProtoUDP, seg)
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(seg[6:8], cs)
	return b
}

// DecodeUDP parses a UDP header and returns it plus the payload.
func DecodeUDP(b []byte) (UDP, []byte, error) {
	if len(b) < 8 {
		return UDP{}, nil, ErrTruncated
	}
	var u UDP
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(u.Length) < 8 || int(u.Length) > len(b) {
		return UDP{}, nil, ErrTruncated
	}
	return u, b[8:u.Length], nil
}

// ipChecksum is the ones-complement sum over an IPv4 header.
func ipChecksum(hdr []byte) uint16 {
	return finish(sum16(hdr, 0))
}

// tcpChecksum computes the TCP/UDP checksum including the pseudo-header.
func tcpChecksum(src, dst IPv4Addr, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	s := sum16(pseudo[:], 0)
	s = sum16(segment, s)
	return finish(s)
}

func sum16(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func finish(s uint32) uint16 {
	for s>>16 != 0 {
		s = s&0xffff + s>>16
	}
	return ^uint16(s)
}

// VerifyTCPChecksum reports whether the checksum of a decoded TCP segment
// (header+payload bytes) is valid for the given addresses.
func VerifyTCPChecksum(src, dst IPv4Addr, segment []byte) bool {
	return tcpChecksum(src, dst, ProtoTCP, segment) == 0
}
