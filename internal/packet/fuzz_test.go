package packet_test

import (
	"bytes"
	"testing"

	"repro/internal/packet"
)

// seedDatagrams returns well-formed wire images covering each parser arm,
// the corpus the fuzzers start from (alongside the checked-in testdata
// entries).
func seedDatagrams() [][]byte {
	src := packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 443}
	dst := packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 7}, Port: 51000}

	tcp := packet.NewTCPDatagram(src, dst, 100)
	tcp.TCP.Seq, tcp.TCP.Ack = 1000, 2000
	tcp.TCP.Flags = packet.FlagACK | packet.FlagPSH
	tcp.TCP.Window = 8192

	syn := packet.NewTCPDatagram(src, dst, 0)
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.MSS = 1460
	syn.TCP.WindowScale = 7
	syn.TCP.SACKPermitted = true

	sack := packet.NewTCPDatagram(dst, src, 0)
	sack.TCP.Flags = packet.FlagACK
	sack.TCP.SACK = []packet.SACKBlock{{Left: 3000, Right: 4448}, {Left: 6000, Right: 7448}}

	udp := packet.NewUDPDatagram(src, dst, 64)

	return [][]byte{tcp.Marshal(), syn.Marshal(), sack.Marshal(), udp.Marshal()}
}

// FuzzUnmarshal drives the IPv4/TCP/UDP decoders with arbitrary bytes. A
// parse either fails cleanly or yields a datagram whose re-encoded form
// parses back to the same flow and payload (header details like IP
// options and unknown TCP options are deliberately not preserved).
func FuzzUnmarshal(f *testing.F) {
	for _, b := range seedDatagrams() {
		f.Add(b)
	}
	f.Add([]byte{0x45})                              // truncated IPv4
	f.Add(bytes.Repeat([]byte{0xff}, 64))            // version 15
	f.Add(append([]byte{0x4f}, make([]byte, 80)...)) // IHL 60
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := packet.Unmarshal(b)
		if err != nil {
			return
		}
		wire := d.Marshal()
		d2, err := packet.Unmarshal(wire)
		if err != nil {
			t.Fatalf("re-parse of re-encoded datagram failed: %v\ninput: %x\nwire:  %x", err, b, wire)
		}
		if d2.Flow() != d.Flow() {
			t.Fatalf("flow changed across round-trip: %v -> %v", d.Flow(), d2.Flow())
		}
		if d2.PayloadLen != d.PayloadLen {
			t.Fatalf("payload length changed across round-trip: %d -> %d", d.PayloadLen, d2.PayloadLen)
		}
		if (d.TCP != nil) != (d2.TCP != nil) || (d.UDP != nil) != (d2.UDP != nil) {
			t.Fatalf("transport type changed across round-trip: %v -> %v", d, d2)
		}
		if d.TCP != nil {
			if d.TCP.Seq != d2.TCP.Seq || d.TCP.Ack != d2.TCP.Ack || d.TCP.Flags != d2.TCP.Flags || d.TCP.Window != d2.TCP.Window {
				t.Fatalf("TCP header changed across round-trip: %v -> %v", d.TCP, d2.TCP)
			}
			if len(d.TCP.SACK) > 4 {
				t.Fatalf("decoder admitted %d SACK blocks (wire format caps at 4)", len(d.TCP.SACK))
			}
		}
	})
}

// FuzzDecodeEthernet checks the frame decoder: clean failure below 14
// bytes, and a lossless header round-trip above.
func FuzzDecodeEthernet(f *testing.F) {
	eth := packet.Ethernet{
		Dst:       packet.MAC{0xaa, 0xbb, 0xcc, 0x00, 0x01, 0x02},
		Src:       packet.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		EtherType: 0x0800,
	}
	f.Add(eth.Encode(nil))
	f.Add(append(eth.Encode(nil), seedDatagrams()[0]...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		e, rest, err := packet.DecodeEthernet(b)
		if err != nil {
			if len(b) >= 14 {
				t.Fatalf("decode failed on %d bytes: %v", len(b), err)
			}
			return
		}
		if len(rest) != len(b)-14 {
			t.Fatalf("payload length %d, want %d", len(rest), len(b)-14)
		}
		e2, _, err := packet.DecodeEthernet(e.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if e2 != e {
			t.Fatalf("header changed across round-trip: %+v -> %+v", e, e2)
		}
	})
}
