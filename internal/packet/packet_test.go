package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MACFromUint64(0x0011223344556677),
		Src:       MACFromUint64(0xaabbccddeeff),
		EtherType: EtherTypeIPv4,
	}
	b := e.Encode(nil)
	got, rest, err := DecodeEthernet(append(b, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
	if len(rest) != 2 {
		t.Fatalf("payload len %d", len(rest))
	}
	if _, _, err := DecodeEthernet(b[:10]); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
}

func TestMACString(t *testing.T) {
	m := MACFromUint64(0x0000deadbeef0102)
	if m.String() != "de:ad:be:ef:01:02" {
		t.Fatalf("MAC string = %q", m.String())
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{
		TOS: 0xb8, ID: 42, TTL: 64, Protocol: ProtoTCP,
		Src: IPv4Addr{10, 0, 0, 1}, Dst: IPv4Addr{10, 0, 1, 9},
	}
	payload := []byte{1, 2, 3, 4, 5}
	b := ip.Encode(nil, len(payload))
	b = append(b, payload...)
	got, rest, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.Protocol != ProtoTCP || got.TTL != 64 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload %v", rest)
	}
	// The encoded header checksum must verify (ones-complement sum of
	// the header equals zero when the checksum field is in place).
	if cs := ipChecksum(b[:20]); cs != 0 {
		t.Fatalf("checksum verification failed: %04x", cs)
	}
	if got.DSCP() != 0xb8>>2 {
		t.Fatalf("DSCP = %d", got.DSCP())
	}
}

func TestIPv4SetDSCPPreservesECN(t *testing.T) {
	ip := IPv4{TOS: 0x03} // ECN bits set
	ip.SetDSCP(46)        // EF
	if ip.DSCP() != 46 || ip.TOS&0x3 != 0x3 {
		t.Fatalf("TOS = %02x", ip.TOS)
	}
}

func TestIPv4Malformed(t *testing.T) {
	if _, _, err := DecodeIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Fatal("short header accepted")
	}
	b := make([]byte, 20)
	b[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(b); err == nil {
		t.Fatal("wrong version accepted")
	}
	b[0] = 0x43 // IHL 3 (< 5)
	if _, _, err := DecodeIPv4(b); err == nil {
		t.Fatal("bad IHL accepted")
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	tc := NewTCP()
	tc.SrcPort, tc.DstPort = 5001, 80
	tc.Seq, tc.Ack = 1_000_000, 2_000_000
	tc.Flags = FlagSYN | FlagACK
	tc.Window = 8192
	tc.MSS = 1448
	tc.WindowScale = 7
	tc.SACKPermitted = true
	tc.SACK = []SACKBlock{{Left: 100, Right: 200}, {Left: 300, Right: 400}}

	src, dst := IPv4Addr{1, 2, 3, 4}, IPv4Addr{5, 6, 7, 8}
	payload := []byte("hello")
	b := tc.Encode(nil, src, dst, payload)

	got, rest, err := DecodeTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5001 || got.DstPort != 80 || got.Seq != 1_000_000 || got.Ack != 2_000_000 {
		t.Fatalf("fields: %+v", got)
	}
	if got.MSS != 1448 || got.WindowScale != 7 || !got.SACKPermitted {
		t.Fatalf("options: %+v", got)
	}
	if len(got.SACK) != 2 || got.SACK[0] != (SACKBlock{100, 200}) || got.SACK[1] != (SACKBlock{300, 400}) {
		t.Fatalf("SACK: %+v", got.SACK)
	}
	if string(rest) != "hello" {
		t.Fatalf("payload: %q", rest)
	}
	if !VerifyTCPChecksum(src, dst, b) {
		t.Fatal("checksum does not verify")
	}
	// Corrupt a byte: checksum must catch it.
	b[len(b)-1] ^= 0xff
	if VerifyTCPChecksum(src, dst, b) {
		t.Fatal("corruption not detected")
	}
}

func TestTCPNoOptions(t *testing.T) {
	tc := NewTCP()
	tc.Flags = FlagACK
	b := tc.Encode(nil, IPv4Addr{}, IPv4Addr{}, nil)
	if len(b) != 20 {
		t.Fatalf("bare header length = %d", len(b))
	}
	got, _, err := DecodeTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.MSS != 0 || got.WindowScale != -1 || got.SACKPermitted || got.SACK != nil {
		t.Fatalf("phantom options: %+v", got)
	}
}

func TestTCPFlagString(t *testing.T) {
	tc := NewTCP()
	tc.Flags = FlagSYN | FlagACK
	if tc.FlagString() != "SA" {
		t.Fatalf("flags = %q", tc.FlagString())
	}
	tc.Flags = 0
	if tc.FlagString() != "." {
		t.Fatalf("empty flags = %q", tc.FlagString())
	}
	if !(&TCP{Flags: FlagACK | FlagPSH}).HasFlag(FlagACK) {
		t.Fatal("HasFlag")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 53, DstPort: 5353}
	src, dst := IPv4Addr{9, 9, 9, 9}, IPv4Addr{10, 10, 10, 10}
	b := u.Encode(nil, src, dst, []byte{0xca, 0xfe})
	got, payload, err := DecodeUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53 || got.DstPort != 5353 || got.Length != 10 {
		t.Fatalf("%+v", got)
	}
	if !bytes.Equal(payload, []byte{0xca, 0xfe}) {
		t.Fatalf("payload %x", payload)
	}
}

func TestFlowKeys(t *testing.T) {
	d := NewTCPDatagram(
		Endpoint{Addr: IPv4Addr{10, 0, 0, 1}, Port: 5000},
		Endpoint{Addr: IPv4Addr{10, 0, 1, 5}, Port: 80}, 100)
	f := d.Flow()
	if f.Proto != ProtoTCP || f.Src.Port != 5000 || f.Dst.Port != 80 {
		t.Fatalf("flow %v", f)
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Fatalf("reverse %v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse")
	}
	// Flows must be usable as map keys.
	m := map[Flow]int{f: 1, r: 2}
	if m[f] != 1 || m[r] != 2 {
		t.Fatal("map keying broken")
	}
}

func TestDatagramMarshalRoundTrip(t *testing.T) {
	d := NewTCPDatagram(
		Endpoint{Addr: IPv4Addr{10, 0, 0, 1}, Port: 5000},
		Endpoint{Addr: IPv4Addr{10, 0, 1, 5}, Port: 80}, 1448)
	d.TCP.Seq = 777
	d.TCP.Flags = FlagACK | FlagPSH
	d.TCP.Window = 2048

	wire := d.Marshal()
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP == nil || got.TCP.Seq != 777 || got.PayloadLen != 1448 {
		t.Fatalf("round trip: %v", got)
	}
	if got.Flow() != d.Flow() {
		t.Fatalf("flow changed: %v vs %v", got.Flow(), d.Flow())
	}
	if got.WireLen() != d.WireLen() {
		t.Fatalf("wire len: %d vs %d", got.WireLen(), d.WireLen())
	}
	// The embedded TCP checksum must verify after the trip.
	if !VerifyTCPChecksum(got.IP.Src, got.IP.Dst, wire[20:]) {
		t.Fatal("TCP checksum broken through Marshal")
	}
}

func TestDatagramUDPMarshal(t *testing.T) {
	d := NewUDPDatagram(
		Endpoint{Addr: IPv4Addr{1, 1, 1, 1}, Port: 9},
		Endpoint{Addr: IPv4Addr{2, 2, 2, 2}, Port: 10}, 64)
	got, err := Unmarshal(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.UDP == nil || got.PayloadLen != 64 {
		t.Fatalf("%v", got)
	}
}

func TestDatagramClone(t *testing.T) {
	d := NewTCPDatagram(Endpoint{Port: 1}, Endpoint{Port: 2}, 10)
	d.TCP.SACK = []SACKBlock{{1, 2}}
	d.Payload = []byte{9}
	c := d.Clone()
	c.TCP.Seq = 99
	c.TCP.SACK[0].Left = 77
	c.Payload[0] = 0
	if d.TCP.Seq == 99 || d.TCP.SACK[0].Left == 77 || d.Payload[0] == 0 {
		t.Fatal("clone aliases original")
	}
}

// Property: TCP encode/decode is a lossless round trip for arbitrary
// field values.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, wsRaw uint8, payload []byte) bool {
		tc := NewTCP()
		tc.SrcPort, tc.DstPort = sp, dp
		tc.Seq, tc.Ack = seq, ack
		tc.Flags = flags
		tc.Window = win
		tc.WindowScale = int(wsRaw % 15)
		b := tc.Encode(nil, IPv4Addr{1, 2, 3, 4}, IPv4Addr{4, 3, 2, 1}, payload)
		got, rest, err := DecodeTCP(b)
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags && got.Window == win &&
			got.WindowScale == int(wsRaw%15) && bytes.Equal(rest, payload) &&
			VerifyTCPChecksum(IPv4Addr{1, 2, 3, 4}, IPv4Addr{4, 3, 2, 1}, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes and errors are
// reported rather than silent garbage.
func TestQuickUnmarshalRobust(t *testing.T) {
	f := func(b []byte) bool {
		d, err := Unmarshal(b)
		return err != nil || d != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPayloadSynthesis(t *testing.T) {
	d := NewTCPDatagram(Endpoint{Port: 1}, Endpoint{Port: 2}, 100)
	// Payload nil but PayloadLen 100: Marshal synthesizes zeros.
	wire := d.Marshal()
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadLen != 100 {
		t.Fatalf("synthesized payload len = %d", got.PayloadLen)
	}
}
