// Package packet implements wire-format encoding and decoding for the
// protocol layers the FastACK datapath must inspect and synthesize:
// Ethernet, IPv4, TCP (including the options FastACK manipulates: MSS,
// window scale, SACK-permitted and SACK blocks) and UDP.
//
// The design follows the layered-decoding model popularised by gopacket: a
// packet is a []byte decoded into a stack of layers, each layer knows its
// own wire format, and transport flows are identified by hashable
// Flow/Endpoint keys usable directly as map keys.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType int

// Layer types understood by this package.
const (
	LayerTypeEthernet LayerType = iota
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one decoded protocol layer.
type Layer interface {
	LayerType() LayerType
}

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadFormat = errors.New("packet: malformed header")
)

// MAC is a 6-byte link-layer address, usable as a map key.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v; handy for
// generating distinct synthetic station addresses.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// IPv4Addr is a 4-byte network address, usable as a map key.
type IPv4Addr [4]byte

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4AddrFromUint32 builds an address from a 32-bit value.
func IPv4AddrFromUint32(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Endpoint is one side of a transport flow.
type Endpoint struct {
	Addr IPv4Addr
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.Addr, e.Port) }

// Flow identifies a unidirectional transport flow. It is hashable and
// usable as a map key, like gopacket's Flow.
type Flow struct {
	Proto    uint8 // IP protocol number
	Src, Dst Endpoint
}

func (f Flow) String() string { return fmt.Sprintf("%v->%v/%d", f.Src, f.Dst, f.Proto) }

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src} }

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// EtherType values.
const EtherTypeIPv4 = 0x0800
