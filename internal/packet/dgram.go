package packet

import "fmt"

// Datagram is the in-simulator representation of one IP datagram: decoded
// headers plus a payload length. Simulators pass Datagrams by pointer to
// avoid re-encoding on every hop; Marshal/Unmarshal convert to and from
// real wire bytes so that the byte-level codec is exercised end-to-end at
// the network edges and in integration tests.
//
// PayloadLen is authoritative for sizing; Payload may be nil (synthetic
// traffic) or carry real bytes (wire mode).
type Datagram struct {
	IP         IPv4
	TCP        *TCP // exactly one of TCP/UDP is set
	UDP        *UDP
	PayloadLen int
	Payload    []byte
}

// NewTCPDatagram builds a TCP datagram between src and dst.
func NewTCPDatagram(src, dst Endpoint, payloadLen int) *Datagram {
	t := NewTCP()
	t.SrcPort = src.Port
	t.DstPort = dst.Port
	return &Datagram{
		IP:         IPv4{TTL: 64, Protocol: ProtoTCP, Src: src.Addr, Dst: dst.Addr},
		TCP:        &t,
		PayloadLen: payloadLen,
	}
}

// NewUDPDatagram builds a UDP datagram between src and dst.
func NewUDPDatagram(src, dst Endpoint, payloadLen int) *Datagram {
	return &Datagram{
		IP:         IPv4{TTL: 64, Protocol: ProtoUDP, Src: src.Addr, Dst: dst.Addr},
		UDP:        &UDP{SrcPort: src.Port, DstPort: dst.Port},
		PayloadLen: payloadLen,
	}
}

// Flow returns the transport flow key of the datagram.
func (d *Datagram) Flow() Flow {
	switch {
	case d.TCP != nil:
		return Flow{
			Proto: ProtoTCP,
			Src:   Endpoint{Addr: d.IP.Src, Port: d.TCP.SrcPort},
			Dst:   Endpoint{Addr: d.IP.Dst, Port: d.TCP.DstPort},
		}
	case d.UDP != nil:
		return Flow{
			Proto: ProtoUDP,
			Src:   Endpoint{Addr: d.IP.Src, Port: d.UDP.SrcPort},
			Dst:   Endpoint{Addr: d.IP.Dst, Port: d.UDP.DstPort},
		}
	default:
		return Flow{Src: Endpoint{Addr: d.IP.Src}, Dst: Endpoint{Addr: d.IP.Dst}}
	}
}

// WireLen returns the encoded size in bytes (IP header + transport header +
// payload), the quantity that matters for airtime and queue accounting.
func (d *Datagram) WireLen() int {
	n := ipv4HeaderLen + d.PayloadLen
	switch {
	case d.TCP != nil:
		n += d.TCP.HeaderLen()
	case d.UDP != nil:
		n += 8
	}
	return n
}

// Clone returns a deep copy, used by retransmission caches so that later
// header rewrites (e.g. window clamping) do not mutate cached packets.
func (d *Datagram) Clone() *Datagram {
	out := &Datagram{IP: d.IP, PayloadLen: d.PayloadLen}
	if d.TCP != nil {
		t := *d.TCP
		if len(d.TCP.SACK) > 0 {
			t.SACK = append([]SACKBlock(nil), d.TCP.SACK...)
		}
		out.TCP = &t
	}
	if d.UDP != nil {
		u := *d.UDP
		out.UDP = &u
	}
	if d.Payload != nil {
		out.Payload = append([]byte(nil), d.Payload...)
	}
	return out
}

func (d *Datagram) String() string {
	switch {
	case d.TCP != nil:
		return fmt.Sprintf("TCP %v->%v [%s] seq=%d ack=%d len=%d win=%d",
			d.IP.Src, d.IP.Dst, d.TCP.FlagString(), d.TCP.Seq, d.TCP.Ack, d.PayloadLen, d.TCP.Window)
	case d.UDP != nil:
		return fmt.Sprintf("UDP %v:%d->%v:%d len=%d",
			d.IP.Src, d.UDP.SrcPort, d.IP.Dst, d.UDP.DstPort, d.PayloadLen)
	}
	return fmt.Sprintf("IP %v->%v proto=%d len=%d", d.IP.Src, d.IP.Dst, d.IP.Protocol, d.PayloadLen)
}

// Marshal encodes the datagram to wire bytes (IPv4 onward). When Payload is
// nil, a zero-filled payload of PayloadLen is synthesized.
func (d *Datagram) Marshal() []byte {
	payload := d.Payload
	if payload == nil && d.PayloadLen > 0 {
		payload = make([]byte, d.PayloadLen)
	}
	var transport []byte
	switch {
	case d.TCP != nil:
		transport = d.TCP.Encode(nil, d.IP.Src, d.IP.Dst, payload)
	case d.UDP != nil:
		transport = d.UDP.Encode(nil, d.IP.Src, d.IP.Dst, payload)
	default:
		transport = payload
	}
	ip := d.IP
	b := ip.Encode(make([]byte, 0, ipv4HeaderLen+len(transport)), len(transport))
	return append(b, transport...)
}

// Unmarshal decodes wire bytes (IPv4 onward) into a Datagram.
func Unmarshal(b []byte) (*Datagram, error) {
	ip, rest, err := DecodeIPv4(b)
	if err != nil {
		return nil, err
	}
	d := &Datagram{IP: ip}
	switch ip.Protocol {
	case ProtoTCP:
		t, payload, err := DecodeTCP(rest)
		if err != nil {
			return nil, err
		}
		d.TCP = &t
		d.Payload = payload
		d.PayloadLen = len(payload)
	case ProtoUDP:
		u, payload, err := DecodeUDP(rest)
		if err != nil {
			return nil, err
		}
		d.UDP = &u
		d.Payload = payload
		d.PayloadLen = len(payload)
	default:
		d.Payload = rest
		d.PayloadLen = len(rest)
	}
	return d, nil
}
