// Package obs is the repository's unified observability layer: named,
// always-on metrics (atomic counters and gauges, log-bucketed histograms
// with deterministic snapshots) plus a fixed-size ring-buffer event tracer
// with a pluggable clock, so spans can be stamped in wall time or in
// simulated time.
//
// The paper's methodology is measurement-first (§3 fleet study, §5.6
// FastACK evaluation); this package is the in-process counterpart: every
// hot path — the NBO planner, the polling/push control plane, the FastACK
// agent, the LittleTable store — records into a Registry cheaply enough
// that instrumentation never needs to be compiled out. A counter increment
// is a single atomic add; a histogram observation is two atomic adds, a
// bucket add and two bounded CAS loops; a disabled tracer is a nil check.
//
// Metrics live in a Registry under dotted names ("scope.name"). The
// package-level Default registry is what production code records into;
// tests that need isolated, deterministic snapshots create their own with
// NewRegistry. Export paths (Snapshot, Delta, WriteText, JSON, the HTTP
// handler in http.go) are shared by every consumer so there is exactly one
// way metrics leave the process.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry interns metrics by full name. Interning is idempotent: asking
// for the same (kind, name) twice returns the same metric, so package
// initialisers and per-call lookups can coexist.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracer atomic.Pointer[Tracer]
}

// NewRegistry returns an empty registry with tracing disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that production code records
// into.
func Default() *Registry { return defaultRegistry }

// Scope returns a named scope of the registry; metrics created through it
// are registered as "name.metric".
func (r *Registry) Scope(name string) *Scope { return &Scope{r: r, prefix: name} }

// Counter interns a counter under its full dotted name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge interns a gauge under its full dotted name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram interns a histogram under its full dotted name. The unit is
// display-only metadata ("µs", "bytes", "frames"); the first caller's unit
// wins.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(unit)
	r.hists[name] = h
	return h
}

// EnableTracing installs a ring-buffer tracer of the given capacity whose
// spans are stamped by clock (wall nanoseconds, sim microseconds — the
// caller chooses). It replaces any previous tracer and returns the new
// one.
func (r *Registry) EnableTracing(capacity int, clock func() int64) *Tracer {
	t := NewTracer(capacity, clock)
	r.tracer.Store(t)
	return t
}

// DisableTracing removes the tracer; subsequent Tracer() calls return nil
// and spans become no-ops.
func (r *Registry) DisableTracing() { r.tracer.Store(nil) }

// Tracer returns the installed tracer, or nil when tracing is disabled.
// All Tracer methods are nil-safe, so callers write
// reg.Tracer().Begin("x") unconditionally.
func (r *Registry) Tracer() *Tracer { return r.tracer.Load() }

// names returns the sorted full names of one metric kind.
func sortedKeys[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Scope is a named prefix within a registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Name returns the scope's prefix.
func (s *Scope) Name() string { return s.prefix }

// Registry returns the owning registry.
func (s *Scope) Registry() *Registry { return s.r }

// Scope returns a nested scope ("parent.child").
func (s *Scope) Scope(name string) *Scope {
	return &Scope{r: s.r, prefix: s.prefix + "." + name}
}

// Counter interns "scope.name".
func (s *Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + "." + name) }

// Gauge interns "scope.name".
func (s *Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + "." + name) }

// Histogram interns "scope.name".
func (s *Scope) Histogram(name, unit string) *Histogram {
	return s.r.Histogram(s.prefix+"."+name, unit)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n (n may be any sign, but counters are conventionally
// monotonic; use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is an instantaneous atomic value.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { atomic.StoreInt64(&g.v, v) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { atomic.AddInt64(&g.v, n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }
