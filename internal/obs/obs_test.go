package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("s").Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Scope("s").Counter("hits") != c {
		t.Fatal("interning returned a different counter for the same name")
	}
	g := r.Scope("s").Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestBucketIndexMonotoneAndInvertible(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = i
		lo := bucketLow(i)
		if lo > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", i, lo, v)
		}
		if i+1 < numBuckets {
			if hi := bucketLow(i + 1); hi <= v {
				t.Fatalf("value %d beyond bucket %d upper bound %d", v, i, hi)
			}
		}
	}
	// Exhaustive small-range check: consecutive values never map backwards.
	last := 0
	for v := int64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("index regressed at %d", v)
		}
		last = i
	}
}

func TestHistogramQuantilesExactRegion(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "units")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	// Values 1..31 are exact buckets; p50 of 1..100 lands at rank 50 → 50
	// is in the log region, so allow the ~6% bucket resolution.
	if s.P50 < 47 || s.P50 > 53 {
		t.Fatalf("p50 = %d, want ≈50", s.P50)
	}
	if s.P99 < 93 || s.P99 > 104 {
		t.Fatalf("p99 = %d, want ≈99", s.P99)
	}
}

func TestHistogramDeterministicUnderConcurrency(t *testing.T) {
	// The same multiset of observations must yield byte-identical
	// snapshots no matter how recording interleaves.
	values := make([]int64, 5000)
	rng := rand.New(rand.NewSource(1))
	for i := range values {
		values[i] = rng.Int63n(1 << 30)
	}
	snap := func(workers int) HistSnapshot {
		r := NewRegistry()
		h := r.Histogram("h", "")
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(values); i += workers {
					h.Observe(values[i])
				}
			}(w)
		}
		wg.Wait()
		return h.Snapshot()
	}
	a, b := snap(1), snap(8)
	if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max || a.Mean != b.Mean ||
		a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
		t.Fatalf("snapshots diverge:\n%+v\n%+v", a, b)
	}
}

func TestHistogramNegativeClampsToZeroBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	h.Observe(-5)
	h.Observe(10)
	s := h.Snapshot()
	if s.Min != -5 || s.Max != 10 || s.Count != 2 {
		t.Fatalf("min/max/count = %d/%d/%d", s.Min, s.Max, s.Count)
	}
	if s.P50 != 0 {
		t.Fatalf("p50 = %d, want 0 (clamped bucket)", s.P50)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.c")
	h := r.Histogram("a.h", "µs")
	c.Add(3)
	h.Observe(10)
	before := r.Snapshot()
	c.Add(2)
	h.Observe(20)
	h.Observe(20)
	d := r.Snapshot().Delta(before)
	if d.Counters["a.c"] != 2 {
		t.Fatalf("counter delta = %d, want 2", d.Counters["a.c"])
	}
	hd := d.Histograms["a.h"]
	if hd.Count != 2 {
		t.Fatalf("hist delta count = %d, want 2", hd.Count)
	}
	if hd.P50 != 20 || hd.Mean != 20 {
		t.Fatalf("hist delta p50/mean = %d/%v, want 20/20", hd.P50, hd.Mean)
	}
}

func TestScopedAndScopes(t *testing.T) {
	r := NewRegistry()
	r.Counter("planner.rounds").Inc()
	r.Counter("backend.polls").Inc()
	r.Gauge("backend.depth").Set(1)
	s := r.Snapshot()
	if got := s.Scopes(); len(got) != 2 || got[0] != "backend" || got[1] != "planner" {
		t.Fatalf("scopes = %v", got)
	}
	sub := s.Scoped("backend")
	if len(sub.Counters) != 1 || len(sub.Gauges) != 1 {
		t.Fatalf("scoped snapshot = %+v", sub)
	}
	if _, ok := sub.Counters["planner.rounds"]; ok {
		t.Fatal("scoped snapshot leaked another scope")
	}
}

func TestWriteTextSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Histogram("c.h", "ms").Observe(5)
	var buf1, buf2 bytes.Buffer
	if _, err := r.Snapshot().WriteText(&buf1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot().WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("text rendering not stable")
	}
	lines := strings.Split(strings.TrimSpace(buf1.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "counter a.one") {
		t.Fatalf("unexpected rendering:\n%s", buf1.String())
	}
}

func TestTracerRingAndNilSafety(t *testing.T) {
	var nilTracer *Tracer
	sp := nilTracer.Begin("x") // must not panic
	sp.End()
	if ev := nilTracer.Events(); ev != nil {
		t.Fatal("nil tracer returned events")
	}

	clock := int64(0)
	tr := NewTracer(3, func() int64 { clock++; return clock })
	for i := 0; i < 5; i++ {
		s := tr.Begin("span")
		s.End()
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(ev))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatal("events not oldest-first")
		}
	}
	if ev[0].Dur() != 1 {
		t.Fatalf("span duration = %d, want 1", ev[0].Dur())
	}
}

func TestRegistryTracerEnableDisable(t *testing.T) {
	r := NewRegistry()
	if r.Tracer() != nil {
		t.Fatal("tracing enabled by default")
	}
	tr := r.EnableTracing(8, nil)
	if r.Tracer() != tr {
		t.Fatal("EnableTracing did not install the tracer")
	}
	s := r.Tracer().Begin("a")
	s.End()
	if len(r.Tracer().Events()) != 1 {
		t.Fatal("span not recorded")
	}
	r.DisableTracing()
	if r.Tracer() != nil {
		t.Fatal("DisableTracing left a tracer")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("planner.rounds").Add(4)
	r.Histogram("planner.pass_us", "µs").Observe(1000)
	r.EnableTracing(16, nil).Begin("plan").End()

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if snap.Counters["planner.rounds"] != 4 {
		t.Fatalf("served counter = %d", snap.Counters["planner.rounds"])
	}
	if h := snap.Histograms["planner.pass_us"]; h.Count != 1 {
		t.Fatalf("served histogram = %+v", h)
	}
	if txt := get("/metrics.txt?scope=planner"); !strings.Contains(txt, "counter planner.rounds 4") {
		t.Fatalf("text endpoint:\n%s", txt)
	}
	if tr := get("/trace"); !strings.Contains(tr, "plan") {
		t.Fatalf("trace endpoint:\n%s", tr)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatal("pprof index not mounted")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Histogram("x.h", "bytes").Observe(12345)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	h := s.Histograms["x.h"]
	if h.Count != 1 || h.Unit != "bytes" || h.Min != 12345 {
		t.Fatalf("round-tripped histogram = %+v", h)
	}
}
