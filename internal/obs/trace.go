package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Event tracing: span begin/end pairs in a fixed-size ring buffer. The
// clock is pluggable so spans can be stamped in wall nanoseconds (real
// runs) or simulation microseconds (deterministic tests) — the tracer
// never reads time itself.
//
// Tracing is off by default and costs one nil check per span when off:
// every method is nil-safe, so instrumented code calls
// reg.Tracer().Begin(...) unconditionally.

// SpanEvent is one completed span.
type SpanEvent struct {
	Name  string `json:"name"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Dur returns the span length in clock units.
func (e SpanEvent) Dur() int64 { return e.End - e.Start }

// Tracer records completed spans into a ring buffer, keeping the most
// recent capacity events.
type Tracer struct {
	clock func() int64

	mu      sync.Mutex
	ring    []SpanEvent
	next    int
	wrapped bool
	dropped int64 // spans overwritten after wrap
}

// NewTracer builds a tracer with the given ring capacity and clock.
func NewTracer(capacity int, clock func() int64) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Tracer{clock: clock, ring: make([]SpanEvent, capacity)}
}

// Span is an in-flight trace region; End completes it. The zero Span (from
// a nil tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	start int64
}

// Begin opens a span stamped with the tracer's clock. Safe on a nil
// tracer, in which case the returned span is a no-op.
func (t *Tracer) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clock()}
}

// End completes the span and commits it to the ring.
func (s Span) End() {
	if s.t == nil {
		return
	}
	ev := SpanEvent{Name: s.name, Start: s.start, End: s.t.clock()}
	t := s.t
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Events returns the buffered spans oldest-first. Safe on a nil tracer.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]SpanEvent(nil), t.ring[:t.next]...)
	}
	out := make([]SpanEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Dropped returns how many spans were overwritten after the ring wrapped.
// Safe on a nil tracer.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// String renders the buffered spans one per line, for debugging dumps.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%12d %12d %s\n", e.Start, e.Dur(), e.Name)
	}
	return b.String()
}
