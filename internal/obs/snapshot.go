package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every metric in a registry, the unit
// of export: rendered as text or JSON, diffed with Delta, served over HTTP
// by Handler.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Delta returns the activity between prev and s: counters and histogram
// populations subtract, gauges keep their current value (an instantaneous
// reading has no meaningful difference). Metrics absent from prev are
// treated as zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.Delta(prev.Histograms[name])
	}
	return d
}

// Scoped returns the subset of the snapshot whose names start with
// "scope." (or equal scope exactly).
func (s Snapshot) Scoped(scope string) Snapshot {
	in := func(name string) bool {
		return name == scope || (len(name) > len(scope) &&
			name[:len(scope)] == scope && name[len(scope)] == '.')
	}
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, v := range s.Counters {
		if in(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if in(name) {
			out.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		if in(name) {
			out.Histograms[name] = h
		}
	}
	return out
}

// WriteText renders the snapshot as sorted, line-oriented text:
//
//	counter turboca.nbo_rounds 96
//	hist    fastack.ampdu_bytes count=10 min=... p50=... unit=bytes
func (s Snapshot) WriteText(w io.Writer) (int64, error) {
	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emit("counter %s %d\n", name, s.Counters[name]); err != nil {
			return n, err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emit("gauge   %s %d\n", name, s.Gauges[name]); err != nil {
			return n, err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		unit := h.Unit
		if unit == "" {
			unit = "-"
		}
		if err := emit("hist    %s count=%d min=%d max=%d mean=%.1f p50=%d p95=%d p99=%d unit=%s\n",
			name, h.Count, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99, unit); err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteTo implements io.WriterTo with the text rendering.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) { return s.WriteText(w) }

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json orders map keys), the expvar-style payload the HTTP
// handler serves.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Scopes lists the distinct first name components present in the
// snapshot, sorted — the set of subsystems that have recorded anything.
func (s Snapshot) Scopes() []string {
	set := map[string]bool{}
	add := func(name string) {
		for i := 0; i < len(name); i++ {
			if name[i] == '.' {
				set[name[:i]] = true
				return
			}
		}
		set[name] = true
	}
	for name := range s.Counters {
		add(name)
	}
	for name := range s.Gauges {
		add(name)
	}
	for name := range s.Histograms {
		add(name)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
