package obs

import (
	"math/bits"
	"sync/atomic"
)

// Log-bucketed (HDR-style) histogram over non-negative int64 values.
//
// Bucketing: values below 2·subCount are recorded exactly (one bucket per
// value); above that, each power-of-two octave is split into subCount
// sub-buckets keyed by the top subBits mantissa bits, giving a constant
// relative resolution of 1/subCount (≈6% with subBits=4) across the whole
// 63-bit range. The scheme is the one HdrHistogram popularised: bucket
// index is computed from the value's bit length, no floating point, no
// search.
//
// Snapshots are deterministic: every recorded value maps to exactly one
// bucket, bucket counts and the int64 sum are order-independent under
// concurrent recording, and quantiles are derived from bucket boundaries
// alone — the same multiset of observations yields byte-identical
// count/min/max/mean/p50/p95/p99 regardless of recording interleaving.
const (
	subBits  = 4
	subCount = 1 << subBits // 16 sub-buckets per octave

	// exactLimit is the value below which buckets are exact.
	exactLimit = 2 * subCount

	// numBuckets covers bit lengths up to 63.
	numBuckets = exactLimit + (63-subBits)*subCount
)

// Histogram records int64 observations into log-spaced buckets. Negative
// values clamp into bucket zero (Min still records the true value).
type Histogram struct {
	unit    string
	count   int64
	sum     int64
	min     int64 // valid only when count > 0
	max     int64
	buckets [numBuckets]int64
}

func newHistogram(unit string) *Histogram {
	h := &Histogram{unit: unit}
	h.min = int64(^uint64(0) >> 1) // MaxInt64 sentinel until first observation
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < exactLimit {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= subBits+1
	mant := int((v >> uint(exp-subBits)) & (subCount - 1))
	return (exp-subBits)*subCount + subCount + mant
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < exactLimit {
		return int64(i)
	}
	exp := (i-subCount)/subCount + subBits
	mant := (i - subCount) % subCount
	return int64(subCount|mant) << uint(exp-subBits)
}

// bucketMid returns the deterministic representative value reported for
// bucket i: the exact value in the exact region, the bucket midpoint in
// the log region.
func bucketMid(i int) int64 {
	lo := bucketLow(i)
	if i < exactLimit {
		return lo
	}
	width := lo >> subBits // bucket width = low / subCount in the log region
	return lo + width/2
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	b := v
	if b < 0 {
		b = 0
	}
	atomic.AddInt64(&h.buckets[bucketIndex(b)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		cur := atomic.LoadInt64(&h.min)
		if v >= cur || atomic.CompareAndSwapInt64(&h.min, cur, v) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&h.max)
		if v <= cur || atomic.CompareAndSwapInt64(&h.max, cur, v) {
			break
		}
	}
}

// Unit returns the display unit.
func (h *Histogram) Unit() string { return h.unit }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// HistSnapshot is a point-in-time summary of a histogram. Quantiles are
// bucket representatives, so they are deterministic for a given multiset
// of observations.
type HistSnapshot struct {
	Unit  string  `json:"unit,omitempty"`
	Count int64   `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`

	sum     int64
	buckets []int64 // sparse-copied only when non-empty; used by Delta
}

// Snapshot summarises the histogram. Concurrent Observe calls may land
// between field loads; quiescent snapshots are exact.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Unit: h.unit, Count: atomic.LoadInt64(&h.count)}
	if s.Count == 0 {
		return s
	}
	s.sum = atomic.LoadInt64(&h.sum)
	s.Min = atomic.LoadInt64(&h.min)
	s.Max = atomic.LoadInt64(&h.max)
	s.Mean = float64(s.sum) / float64(s.Count)
	s.buckets = make([]int64, numBuckets)
	for i := range h.buckets {
		s.buckets[i] = atomic.LoadInt64(&h.buckets[i])
	}
	s.P50 = quantile(s.buckets, s.Count, 0.50)
	s.P95 = quantile(s.buckets, s.Count, 0.95)
	s.P99 = quantile(s.buckets, s.Count, 0.99)
	s.clampQuantiles()
	return s
}

// clampQuantiles bounds the bucket-representative quantiles to the true
// observed range: a representative is the bucket midpoint, which can fall
// up to half a bucket width (~3%) outside [Min, Max] and read as p50 < min
// in rendered output.
func (s *HistSnapshot) clampQuantiles() {
	clamp := func(v int64) int64 {
		if v < s.Min {
			return s.Min
		}
		if v > s.Max {
			return s.Max
		}
		return v
	}
	s.P50, s.P95, s.P99 = clamp(s.P50), clamp(s.P95), clamp(s.P99)
}

// Delta returns the histogram activity between prev and s: bucket-wise
// subtraction with quantiles recomputed over the difference. Min and Max
// cannot be windowed and carry the current (cumulative) values.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Unit:  s.Unit,
		Count: s.Count - prev.Count,
		Min:   s.Min,
		Max:   s.Max,
		sum:   s.sum - prev.sum,
	}
	if d.Count <= 0 {
		d.Count = 0
		return d
	}
	d.Mean = float64(d.sum) / float64(d.Count)
	d.buckets = make([]int64, numBuckets)
	for i := range d.buckets {
		var a, b int64
		if s.buckets != nil {
			a = s.buckets[i]
		}
		if prev.buckets != nil {
			b = prev.buckets[i]
		}
		d.buckets[i] = a - b
	}
	d.P50 = quantile(d.buckets, d.Count, 0.50)
	d.P95 = quantile(d.buckets, d.Count, 0.95)
	d.P99 = quantile(d.buckets, d.Count, 0.99)
	d.clampQuantiles()
	return d
}

// quantile returns the representative value of the bucket holding the
// q-quantile observation (rank ceil(q·n), 1-based).
func quantile(buckets []int64, n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(len(buckets) - 1)
}
