package obs

import (
	"net/http"
	"net/http/pprof"
)

// HTTP export: the one way metrics and profiles leave a running process.
// Handler mounts the registry's JSON and text snapshots alongside
// net/http/pprof on a private mux (never http.DefaultServeMux, so two
// registries — or two tests — can serve independently).
//
//	/metrics       expvar-style JSON snapshot of every metric
//	/metrics.txt   line-oriented text rendering (sorted, grep-friendly)
//	/trace         buffered tracer spans, text, oldest first
//	/debug/pprof/  the standard pprof index, profiles, and traces
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s := r.Snapshot()
		if scope := req.URL.Query().Get("scope"); scope != "" {
			s = s.Scoped(scope)
		}
		_ = s.WriteJSON(w)
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := r.Snapshot()
		if scope := req.URL.Query().Get("scope"); scope != "" {
			s = s.Scoped(scope)
		}
		_, _ = s.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(r.Tracer().String()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for the registry on addr in a background
// goroutine and returns it; callers Close it on shutdown. Listen errors
// are reported on the returned channel (buffered, at most one).
func Serve(addr string, r *Registry) (*http.Server, <-chan error) {
	srv := &http.Server{Addr: addr, Handler: Handler(r)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	return srv, errc
}
