package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleBasics(t *testing.T) {
	s := NewSample(8)
	s.AddAll(4, 1, 3, 2, 5)
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Variance(), 2, 1e-12) {
		t.Fatalf("Variance = %v", s.Variance())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.CDF(1) != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(4)
	s.AddAll(10, 20, 30, 40)
	if got := s.Percentile(50); !almostEq(got, 25, 1e-9) {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(4)
	s.AddAll(1, 2, 3, 4)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFSeriesMonotonic(t *testing.T) {
	s := NewSample(100)
	for i := 0; i < 100; i++ {
		s.Add(float64(i * i % 37))
	}
	series := s.CDFSeries(11)
	for i := 1; i < len(series); i++ {
		if series[i].X < series[i-1].X || series[i].P < series[i-1].P {
			t.Fatalf("CDF series not monotonic at %d: %+v", i, series)
		}
	}
	if series[0].P != 0 || series[len(series)-1].P != 1 {
		t.Fatalf("CDF endpoints wrong: %+v", series)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{5, 5, 5, 5}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("equal allocations: %v", got)
	}
	// One dominant entity approaches 1/n.
	if got := JainFairness([]float64{100, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("dominant entity: %v", got)
	}
	if got := JainFairness(nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := JainFairness([]float64{0, 0}); got != 0 {
		t.Fatalf("all zero: %v", got)
	}
}

// Property: Jain's index is scale-invariant and within (0, 1].
func TestQuickJainProperties(t *testing.T) {
	f := func(xs []float64, scale float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && x < 1e100 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 || scale <= 0 || math.IsInf(scale, 0) || scale > 1e50 {
			return true
		}
		j := JainFairness(pos)
		if j <= 0 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(pos))
		for i, x := range pos {
			scaled[i] = x * scale
		}
		return almostEq(j, JainFairness(scaled), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, 11, -2} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// -2 clamps into the first bin, 11 into the last.
	if h.Counts[0] != 3 {
		t.Fatalf("first bin = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 {
		t.Fatalf("last bin = %d, want 2", h.Counts[4])
	}
	sum := 0.0
	for _, p := range h.PDF() {
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("PDF sums to %v", sum)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		h.Add(42)
	}
	h.Add(7)
	if got := h.Mode(); got != 45 { // center of the 40-50 bin
		t.Fatalf("Mode = %v, want 45", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.AddN("b", 3)
	if c.Total() != 4 {
		t.Fatalf("total = %d", c.Total())
	}
	if !almostEq(c.Fraction("b"), 0.75, 1e-12) {
		t.Fatalf("Fraction(b) = %v", c.Fraction("b"))
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if NewCounter().Fraction("x") != 0 {
		t.Fatal("empty counter fraction should be 0")
	}
}

func TestWelfordMatchesSample(t *testing.T) {
	s := NewSample(100)
	var w Welford
	for i := 0; i < 100; i++ {
		x := float64(i%17) * 1.3
		s.Add(x)
		w.Add(x)
	}
	if !almostEq(s.Mean(), w.Mean(), 1e-9) {
		t.Fatalf("means differ: %v vs %v", s.Mean(), w.Mean())
	}
	if !almostEq(s.Variance(), w.Variance(), 1e-9) {
		t.Fatalf("variances differ: %v vs %v", s.Variance(), w.Variance())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(3)
	s.AddAll(1, 2, 3)
	if got := s.Summarize().String(); got == "" {
		t.Fatal("empty summary string")
	}
}
