// Package stats provides the summary statistics used throughout the
// measurement study and evaluation: empirical CDFs/PDFs, percentiles,
// histograms, Jain's fairness index, and streaming mean/variance.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations for offline summarisation.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the sorted observations. The returned slice is owned by the
// Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance, or 0 for fewer than two samples.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDF returns the empirical cumulative probability P(X <= x).
func (s *Sample) CDF(x float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.sort()
	// Number of values <= x.
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(n)
}

// CDFPoint is one (value, cumulative-probability) pair of an empirical CDF.
type CDFPoint struct {
	X float64 // observation value
	P float64 // P(X <= x)
}

// CDFSeries returns n evenly spaced quantile points suitable for plotting or
// tabulating the distribution. n must be >= 2.
func (s *Sample) CDFSeries(n int) []CDFPoint {
	if n < 2 {
		panic("stats: CDFSeries needs n >= 2")
	}
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1) * 100
		out[i] = CDFPoint{X: s.Percentile(p), P: p / 100}
	}
	return out
}

// Summary is a compact distribution description.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P10, P25, P50 float64
	P75, P90, P99, Max float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Std: s.Stddev(),
		Min: s.Min(), P10: s.Percentile(10), P25: s.Percentile(25),
		P50: s.Median(), P75: s.Percentile(75), P90: s.Percentile(90),
		P99: s.Percentile(99), Max: s.Max(),
	}
}

func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
		sm.N, sm.Mean, sm.Std, sm.Min, sm.P50, sm.P90, sm.P99, sm.Max)
}

// JainFairness computes Jain's fairness index over per-entity allocations:
// (sum x)^2 / (n * sum x^2). It is 1.0 for perfectly equal allocations and
// approaches 1/n when one entity dominates. Empty or all-zero input yields 0.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Histogram counts observations into fixed-width bins over [lo, hi). Values
// outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins bins spanning [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// PDF returns the fraction of observations in each bin.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Counter tallies string-keyed categorical observations, e.g. access
// categories or channel widths.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: map[string]int{}} }

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Total returns the total count across keys.
func (c *Counter) Total() int { return c.total }

// Count returns the count for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Fraction returns the fraction of the total attributed to key.
func (c *Counter) Fraction(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns the keys in deterministic (sorted) order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (c *Counter) String() string {
	var b strings.Builder
	for i, k := range c.Keys() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.1f%%", k, 100*c.Fraction(k))
	}
	return b.String()
}

// Welford is a streaming mean/variance accumulator (Welford's algorithm),
// used where retaining every observation would be too expensive.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
