package fastack

import (
	"testing"

	"repro/internal/sim"
)

// Two self-healing paths keep a chaos-stressed flow out of permanent
// stalls (found by the data-path fault campaign):
//
//   - lost 802.11 block-ACK feedback must not wedge seq_fack — the
//     client's cumulative TCP ACK is ground truth for delivery;
//   - a spurious retransmission (below seq_fack) must be answered with a
//     duplicate fast ACK, the way the client itself would answer a
//     duplicate segment, or a sender that missed the original fast ACK
//     RTO-loops forever while the agent eats every retry.

func TestClientAckHealsLostFeedback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	h := newHarness(cfg)
	h.handshake(t)
	d0, d1, d2 := data(1000), data(2000), data(3000)
	h.a.HandleDownlink(d0)
	h.a.HandleDownlink(d1)
	h.a.HandleDownlink(d2)

	h.a.HandleWirelessAck(d0, true)
	// d1's block-ACK report is lost in the driver (never delivered to the
	// agent); d2's arrives but cannot extend the fast-ack point past the
	// feedback gap.
	if disp := h.a.HandleWirelessAck(d2, true); len(disp.ToSender) != 0 {
		t.Fatalf("fast ACK across a feedback gap: %+v", disp)
	}
	f := h.a.flows[d0.Flow()]
	if f.seqFack != 2000 {
		t.Fatalf("seqFack=%d, want 2000 (wedged behind the gap)", f.seqFack)
	}

	// The client acknowledges everything: all three segments were in fact
	// delivered. The ACK must be forwarded (it is news to the sender) and
	// must heal the fast-ack point.
	disp := h.a.HandleUplink(clientAck(4000, 4096))
	if !disp.Forward {
		t.Fatal("client ACK beyond seq_fack must be forwarded")
	}
	if f.seqFack != 4000 {
		t.Fatalf("seqFack=%d after heal, want 4000", f.seqFack)
	}
	if f.qSeq.Len() != 0 {
		t.Fatalf("q_seq still holds %d entries after heal", f.qSeq.Len())
	}
	if st := h.a.Stats(); st.FeedbackHeals != 1 {
		t.Fatalf("FeedbackHeals=%d, want 1", st.FeedbackHeals)
	}

	// Fast-acking resumes cleanly past the healed point.
	d3 := data(4000)
	h.a.HandleDownlink(d3)
	if disp := h.a.HandleWirelessAck(d3, true); len(disp.ToSender) != 1 || disp.ToSender[0].TCP.Ack != 5000 {
		t.Fatalf("fast-acking did not resume after heal: %+v", disp)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestClientAckHealClampsAtWireFrontier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	h := newHarness(cfg)
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	h.a.HandleWirelessAck(d0, true)
	f := h.a.flows[d0.Flow()]
	// An upstream hole: 3000 arrives, 2000 never does. seq_high=4000 but
	// the wire frontier stays at 2000.
	h.a.HandleDownlink(data(3000))
	// A client ACK claiming 4000 passes the wild-ack screen (it is within
	// seq_high) but the heal must not push seq_fack past seq_exp.
	h.a.HandleUplink(clientAck(4000, 4096))
	if f.seqFack != 2000 {
		t.Fatalf("seqFack=%d, want clamp at wire frontier 2000", f.seqFack)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestSpuriousRetransmissionReacked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	h := newHarness(cfg)
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	h.a.HandleWirelessAck(d0, true) // fast ACK 2000 toward the sender

	// The sender missed the fast ACK and retransmits. The agent drops the
	// duplicate data but must answer with a duplicate fast ACK so the
	// sender stops retrying.
	disp := h.a.HandleDownlink(data(1000))
	if disp.Forward {
		t.Fatal("spurious retransmission must not reach the client")
	}
	if len(disp.ToSender) != 1 || disp.ToSender[0].TCP.Ack != 2000 {
		t.Fatalf("expected re-ACK at 2000, got %+v", disp)
	}
	st := h.a.Stats()
	if st.SpuriousDrops != 1 || st.SpuriousReacks != 1 {
		t.Fatalf("stats: drops=%d reacks=%d, want 1/1", st.SpuriousDrops, st.SpuriousReacks)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

// TestDebtAccessors pins the agent-level debt aggregates the testbed's
// chaos suite polls: DebtBytes across flows and the undrained-bypass
// count through a full bypass -> drain cycle.
func TestDebtAccessors(t *testing.T) {
	h := newHarness(guardConfig())
	if h.a.DebtBytes() != 0 || h.a.UndrainedBypassedFlows() != 0 {
		t.Fatal("fresh agent reports debt")
	}
	buildDebt(t, h)
	if got := h.a.DebtBytes(); got != 3000 {
		t.Fatalf("DebtBytes=%d, want 3000", got)
	}
	if h.a.UndrainedBypassedFlows() != 0 {
		t.Fatal("active flow counted as undrained bypass")
	}
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000)) // trips the debt-stall detector
	if h.a.UndrainedBypassedFlows() != 1 {
		t.Fatal("bypassed indebted flow not counted")
	}
	h.a.HandleUplink(clientAck(4000, 4096)) // client makes the debt good
	if h.a.DebtBytes() != 0 || h.a.UndrainedBypassedFlows() != 0 {
		t.Fatalf("debt not drained: bytes=%d undrained=%d",
			h.a.DebtBytes(), h.a.UndrainedBypassedFlows())
	}
}
