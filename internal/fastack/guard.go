package fastack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// The safety guard makes FastACK first-do-no-harm: the agent only keeps
// impersonating the client's TCP receiver while the impersonation is
// demonstrably safe. Each flow runs a one-way state machine
//
//	Active ──anomaly──▶ Suspect ──2nd anomaly──▶ Bypass ──ack progress──▶ Draining ──debt=0──▶ PassThrough
//	   │  ▲                │                        ▲
//	   │  └──clean window──┘                        │
//	   └──storm / stalled debt / cache thrash───────┘
//
// driven by pathology detectors: local-retransmit storms that make no
// forward progress, fast-ACK'd-but-undelivered bytes ("debt") stalled past
// an age threshold, out-of-window / wild-sequence anomalies, and cache
// thrash that would evict vouched-for bytes. Once bypassed, the agent
// stops generating fast ACKs and stops suppressing the client's real
// ACKs — but it cannot simply walk away: the sender already believes the
// debt range [seq_TCP, seq_fack) was delivered and will never retransmit
// it. The agent therefore retains retransmit responsibility for exactly
// that range, backed by the retransmission cache, until the client's real
// cumulative ACKs catch up to seq_fack; then the flow detaches cleanly
// into pass-through. There is deliberately no Bypass → Active recovery: a
// flow that wobbled once runs end-to-end TCP for the rest of its life.

// GuardState is a flow's position in the safety state machine.
type GuardState uint8

const (
	// GuardActive: full FastACK operation.
	GuardActive GuardState = iota
	// GuardSuspect: one soft anomaly observed; full operation continues,
	// but a second anomaly inside the suspect window trips Bypass.
	GuardSuspect
	// GuardBypass: no fast ACKs, no suppression; the agent still owes the
	// debt range and serves it from the cache.
	GuardBypass
	// GuardDraining: Bypass with client ACK progress observed; the debt is
	// shrinking.
	GuardDraining
	// GuardPassThrough: debt fully repaid; the flow is detached and every
	// packet passes untouched until Sweep reaps the tombstone.
	GuardPassThrough
)

func (s GuardState) String() string {
	switch s {
	case GuardActive:
		return "active"
	case GuardSuspect:
		return "suspect"
	case GuardBypass:
		return "bypass"
	case GuardDraining:
		return "draining"
	case GuardPassThrough:
		return "passthrough"
	}
	return "unknown"
}

// GuardReason labels why a flow was bypassed.
type GuardReason string

const (
	// GuardReasonStorm: StormThreshold segments locally retransmitted with
	// zero client ACK progress in between.
	GuardReasonStorm GuardReason = "storm"
	// GuardReasonDebtStall: debt made no progress for DebtStallTimeout.
	GuardReasonDebtStall GuardReason = "debt_stall"
	// GuardReasonSeqJump: downlink sequence implausibly far beyond seq_exp.
	GuardReasonSeqJump GuardReason = "seq_jump"
	// GuardReasonWildAck: client cumulative ACK beyond seq_high.
	GuardReasonWildAck GuardReason = "wild_ack"
	// GuardReasonCacheThrash: the cache limit tried to evict vouched bytes.
	GuardReasonCacheThrash GuardReason = "cache_thrash"
	// GuardReasonRST: sender RST on a flow still carrying debt.
	GuardReasonRST GuardReason = "rst"
	// GuardReasonIdleDebt: Sweep found an expired-idle flow with debt.
	GuardReasonIdleDebt GuardReason = "idle_debt"
)

// guardReasons enumerates every reason for obs counter pre-registration.
var guardReasons = []GuardReason{
	GuardReasonStorm, GuardReasonDebtStall, GuardReasonSeqJump,
	GuardReasonWildAck, GuardReasonCacheThrash, GuardReasonRST,
	GuardReasonIdleDebt,
}

// GuardConfig tunes the safety guard. The zero value enables the guard
// with production defaults; set Disable to recover the unguarded agent.
type GuardConfig struct {
	// Disable turns the guard off entirely (ablation / regression runs).
	Disable bool
	// StormThreshold is how many locally retransmitted segments, with zero
	// client ACK progress in between, constitute a retransmit storm.
	// Healthy §5.7 bad-hint repair advances the client's ACK every burst;
	// a storm redrives the same range without moving it.
	StormThreshold int
	// DebtStallTimeout bypasses a flow whose debt (fast-ACK'd bytes the
	// client has not acknowledged) makes no progress for this long.
	DebtStallTimeout sim.Time
	// SuspectWindow: a second soft anomaly within this window of the first
	// trips Bypass; a clean window returns the flow to Active.
	SuspectWindow sim.Time
	// MaxSeqJump is the largest credible gap between seq_exp and an
	// arriving downlink sequence; anything larger is treated as header
	// corruption, not an upstream hole.
	MaxSeqJump uint32
	// DrainExpiry is how long past IdleExpiry Sweep retains an idle flow
	// that still carries debt before giving up on the drain.
	DrainExpiry sim.Time
}

func (g *GuardConfig) applyDefaults() {
	if g.StormThreshold == 0 {
		g.StormThreshold = 96
	}
	if g.DebtStallTimeout == 0 {
		g.DebtStallTimeout = 1500 * sim.Millisecond
	}
	if g.SuspectWindow == 0 {
		g.SuspectWindow = 250 * sim.Millisecond
	}
	if g.MaxSeqJump == 0 {
		g.MaxSeqJump = 16 << 20
	}
	if g.DrainExpiry == 0 {
		g.DrainExpiry = sim.Minute
	}
}

// FlowGuardState reports a tracked flow's guard state.
func (a *Agent) FlowGuardState(key packet.Flow) (GuardState, bool) {
	f, ok := a.flows[key]
	if !ok {
		return GuardActive, false
	}
	return f.gstate, true
}

// guardTick runs the time-based detectors on every event touching an
// Active or Suspect flow: Suspect decays back to Active after a clean
// window, and stalled debt trips Bypass.
func (a *Agent) guardTick(f *flowState) {
	if a.cfg.Guard.Disable || f.gstate >= GuardBypass {
		return
	}
	now := a.now()
	if f.gstate == GuardSuspect && now-f.suspectAt > a.cfg.Guard.SuspectWindow {
		f.gstate = GuardActive
	}
	if f.debtBytes() == 0 {
		f.debtProgressAt = now
	} else if now-f.debtProgressAt > a.cfg.Guard.DebtStallTimeout {
		a.guardTrip(f, GuardReasonDebtStall)
	}
}

// guardSoftAnomaly records one suspicious-but-survivable observation. The
// first parks the flow in Suspect; a second inside the suspect window
// trips Bypass — unless the client's cumulative ACK advanced within that
// window. Anomalies on a stream that is still making end-to-end progress
// are corrupted headers riding a healthy flow (the agent forwards them
// untouched and loses nothing); anomalies on a progress-free stream mean
// the agent's model of the flow can no longer be trusted.
func (a *Agent) guardSoftAnomaly(f *flowState, reason GuardReason) {
	if a.cfg.Guard.Disable || f.gstate >= GuardBypass {
		return
	}
	now := a.now()
	switch f.gstate {
	case GuardActive:
		f.gstate = GuardSuspect
		f.suspectAt = now
		a.stats.GuardSuspects++
		obsm.guardSuspects.Inc()
	case GuardSuspect:
		if now-f.suspectAt > a.cfg.Guard.SuspectWindow {
			// The earlier anomaly aged out; this one starts a fresh window.
			f.suspectAt = now
			a.stats.GuardSuspects++
			obsm.guardSuspects.Inc()
			return
		}
		if now-f.ackProgressAt <= a.cfg.Guard.SuspectWindow {
			// Still delivering: stay Suspect instead of giving up FastACK
			// for good on what is so far survivable noise.
			f.suspectAt = now
			return
		}
		a.guardTrip(f, reason)
	}
}

// guardNoteRetransmits feeds the storm detector: n locally retransmitted
// segments. The counter resets whenever the client's cumulative ACK
// advances, so only progress-free redriving accumulates.
func (a *Agent) guardNoteRetransmits(f *flowState, n int) {
	if a.cfg.Guard.Disable || n == 0 || f.gstate >= GuardBypass {
		return
	}
	f.stormCount += n
	if f.stormCount >= a.cfg.Guard.StormThreshold {
		a.guardTrip(f, GuardReasonStorm)
	}
}

// guardTrip moves a flow into Bypass (or straight to PassThrough when it
// carries no debt). From here the agent generates no fast ACKs and
// suppresses nothing; it keeps serving [seq_TCP, seq_fack) from the cache.
func (a *Agent) guardTrip(f *flowState, reason GuardReason) {
	if a.cfg.Guard.Disable || f.gstate >= GuardBypass {
		return
	}
	now := a.now()
	f.bypassAt = now
	f.bypassReason = reason
	f.debtAtBypass = int64(f.debtBytes())
	a.stats.GuardBypasses++
	obsm.guardBypasses.Inc()
	if c := obsm.bypassReasons[reason]; c != nil {
		c.Inc()
	}
	obsm.guardDebtBytes.Observe(f.debtAtBypass)
	// The fast-ACK pipeline state is dead weight now: q_seq entries will
	// never be fast-ACKed and the holes vector will never emulate another
	// dup-ACK.
	f.qSeq.Drop()
	f.above = nil
	f.stormCount = 0
	f.dupAcksFromClient = 0
	if f.debtBytes() == 0 {
		f.gstate = GuardBypass
		a.guardDetach(f)
		return
	}
	f.gstate = GuardBypass
	f.debtProgressAt = now
	// Shrink the cache to exactly the debt range: bytes below seq_TCP are
	// acknowledged, bytes at or above seq_fack are still the sender's
	// end-to-end responsibility (we never vouched for them).
	f.cacheTrimToDebt()
	a.finishFlow(f)
}

// guardDetach completes a drain: the debt is repaid, the flow becomes a
// pass-through tombstone holding no packet state.
func (a *Agent) guardDetach(f *flowState) {
	a.stats.GuardDrains++
	obsm.guardDrained.Inc()
	obsm.guardDrainMs.Observe(int64((a.now() - f.bypassAt) / sim.Millisecond))
	f.gstate = GuardPassThrough
	f.releaseCache()
	if f.bud != nil {
		f.bud.lruRemove(f)
	}
	f.cache.Drop()
	f.qSeq.Drop()
	f.above = nil
	a.accountFlow(f)
}

// bypassDownlink handles sender→client traffic for a bypassed flow: pure
// forwarding. Only seq_high keeps following the stream (it bounds the
// wild-ACK check and roam export); nothing is cached and no state machine
// runs.
func (a *Agent) bypassDownlink(f *flowState, end uint32) Disposition {
	if f.gstate != GuardPassThrough && seqLT(f.seqHigh, end) {
		f.seqHigh = end
	}
	a.finishFlow(f)
	return forwardOnly
}

// bypassUplinkAck handles a pure client ACK for a bypassed flow. The ACK
// always reaches the sender (no suppression). While debt remains, the
// agent watches the client's cumulative ACK: progress purges the cache and
// moves Bypass → Draining; a duplicate-ACK hole *inside the debt range* is
// repaired locally, because the sender believes those bytes delivered and
// will never resend them; debt gone detaches the flow.
func (a *Agent) bypassUplinkAck(f *flowState, t *packet.TCP) Disposition {
	disp := forwardOnly
	if f.gstate == GuardPassThrough {
		return disp
	}
	now := a.now()
	f.lastFastAckAt = now // drain liveness for Sweep
	wscale := f.clientWScale
	if wscale < 0 {
		wscale = 0
	}
	f.clientWindow = int(t.Window) << wscale

	ack := t.Ack
	if seqLT(f.seqHigh, ack) {
		return disp // wild ACK: forward, but never learn from it
	}
	switch {
	case seqLT(f.seqTCP, ack):
		f.seqTCP = ack
		f.cachePurge(ack)
		f.dupAcksFromClient = 0
		f.lastClientAck = ack
		f.debtProgressAt = now
		if f.gstate == GuardBypass {
			f.gstate = GuardDraining
		}
	case ack == f.lastClientAck:
		f.dupAcksFromClient++
		if f.dupAcksFromClient >= a.cfg.DupAckThreshold &&
			seqLT(ack, f.seqFack) && !a.cfg.DisableCache {
			f.dupAcksFromClient = 0
			if ack != f.lastRtxSeq || now-f.lastRtxAt >= a.cfg.RtxGuard {
				f.lastRtxSeq = ack
				f.lastRtxAt = now
				a.retransmitFromCache(&disp, f, ack, t.SACK)
			}
		}
	default:
		f.lastClientAck = ack
		f.dupAcksFromClient = 0
	}

	// Drain belt: if the debt head stops moving (e.g. the local repair
	// itself was lost over the air), proactively redrive it.
	if f.debtBytes() > 0 && !a.cfg.DisableCache &&
		now-f.debtProgressAt > a.cfg.Guard.DebtStallTimeout {
		if f.seqTCP != f.lastRtxSeq || now-f.lastRtxAt >= a.cfg.RtxGuard {
			f.lastRtxSeq = f.seqTCP
			f.lastRtxAt = now
			f.debtProgressAt = now // one belt redrive per stall timeout
			a.retransmitFromCache(&disp, f, f.seqTCP, nil)
		}
	}
	if f.debtBytes() == 0 {
		a.guardDetach(f)
	}
	a.finishFlow(f)
	return disp
}
