package fastack

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// traceRecorder renders every agent interaction as one deterministic text
// line, the format of testdata/golden_trace.txt.
type traceRecorder struct {
	h     *harness
	lines []string
}

func (r *traceRecorder) record(event string, disp Disposition) {
	var b strings.Builder
	b.WriteString(event)
	b.WriteString(" ->")
	if disp.Forward {
		b.WriteString(" fwd")
	}
	if disp.Elevate {
		b.WriteString(" elevate")
	}
	if !disp.Forward && !disp.Elevate {
		b.WriteString(" drop")
	}
	for _, d := range disp.ToSender {
		fmt.Fprintf(&b, " | toSender ack=%d win=%d", d.TCP.Ack, d.TCP.Window)
		for _, s := range d.TCP.SACK {
			fmt.Fprintf(&b, " sack=%d-%d", s.Left, s.Right)
		}
	}
	for _, d := range disp.ToClient {
		fmt.Fprintf(&b, " | toClient seq=%d len=%d", d.TCP.Seq, d.PayloadLen)
	}
	r.lines = append(r.lines, b.String())
}

func (r *traceRecorder) downlink(d *packet.Datagram) {
	r.record(fmt.Sprintf("t=%-6d downlink  seq=%d len=%d", r.h.now, d.TCP.Seq, d.PayloadLen),
		r.h.a.HandleDownlink(d))
}

func (r *traceRecorder) wirelessAck(d *packet.Datagram, ok bool) {
	r.record(fmt.Sprintf("t=%-6d 80211ack  seq=%d ok=%v", r.h.now, d.TCP.Seq, ok),
		r.h.a.HandleWirelessAck(d, ok))
}

func (r *traceRecorder) uplink(d *packet.Datagram) {
	ev := fmt.Sprintf("t=%-6d uplink    ack=%d win=%d", r.h.now, d.TCP.Ack, d.TCP.Window)
	for _, s := range d.TCP.SACK {
		ev += fmt.Sprintf(" sack=%d-%d", s.Left, s.Right)
	}
	r.record(ev, r.h.a.HandleUplink(d))
}

// TestGoldenTrace replays a fixed end-to-end scenario — handshake,
// in-order delivery, an A-MPDU ACKed out of order, a MAC drop with cache
// redrive, client dup-ACKs triggering a SACK-guided local retransmission,
// an upstream hole with emulated dup-ACK, and its repair — and compares
// every disposition the agent returns, byte for byte, against the golden
// transcript. Any behavioral change to the agent shows up as a readable
// trace diff; regenerate deliberately with `go test -run GoldenTrace
// -update`.
func TestGoldenTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupAckThreshold = 2
	r := &traceRecorder{h: newHarness(cfg)}
	r.h.handshake(t)

	// Phase 1: three segments delivered in order, each 802.11-ACKed.
	for i := uint32(0); i < 3; i++ {
		r.downlink(data(1000 + i*segLen))
	}
	r.h.now += sim.Millisecond
	for i := uint32(0); i < 3; i++ {
		r.wirelessAck(data(1000+i*segLen), true)
	}

	// Phase 2: an A-MPDU of three more segments whose block ACK arrives
	// out of order — no fast ACK may pass the gap; the drain coalesces.
	for i := uint32(3); i < 6; i++ {
		r.downlink(data(1000 + i*segLen))
	}
	r.h.now += sim.Millisecond
	r.wirelessAck(data(1000+4*segLen), true)
	r.wirelessAck(data(1000+5*segLen), true)
	r.wirelessAck(data(1000+3*segLen), true)

	// Phase 3: a seventh segment's MPDU is dropped by the MAC after
	// retries; the agent re-drives it from the cache.
	r.downlink(data(7000))
	r.h.now += sim.Millisecond
	r.wirelessAck(data(7000), false)
	r.wirelessAck(data(7000), true)

	// Phase 4: the client turns out to be missing 5000..7000 (bad hints):
	// it dup-ACKs 5000 with SACK for 7000..8000. The second dup-ACK
	// triggers a local retransmission of exactly the uncovered segments.
	r.h.now += sim.Millisecond
	dup := func() *packet.Datagram {
		d := clientAck(5000, 2048)
		d.TCP.SACK = []packet.SACKBlock{{Left: 7000, Right: 8000}}
		return d
	}
	r.uplink(clientAck(5000, 2048))
	r.uplink(dup())
	r.uplink(dup())

	// Phase 5: client catches up; cumulative progress purges the cache.
	r.h.now += sim.Millisecond
	r.uplink(clientAck(8000, 2048))

	// Phase 6: upstream loss — 8000..9000 never reaches the AP; 9000
	// arrives, the agent emulates the client's dup-ACK with SACK, then the
	// sender's retransmission fills the hole.
	r.h.now += sim.Millisecond
	r.downlink(data(9000))
	r.downlink(data(8000))

	got := strings.Join(r.lines, "\n") + "\n"
	golden := filepath.Join("testdata", "golden_trace.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden trace (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("agent trace diverged from golden transcript.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
