package fastack

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// seqLT reports a < b in 32-bit TCP sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// ackedSeg is one TCP segment acknowledged at the 802.11 layer but not yet
// fast-ACKed: an entry of the paper's q_seq.
type ackedSeg struct {
	seq uint32
	len int
}

// cachedSeg is one retransmission-cache entry.
type cachedSeg struct {
	seq   uint32
	end   uint32
	dgram *packet.Datagram
}

// flowState is the per-flow FastACK state, Table 3 of the paper:
//
//	holes_vec  TCP holes vector                         -> above (rangeSet)
//	seq_high   highest TCP data seq seen                -> seqHigh
//	seq_exp    expected TCP data seq from the sender    -> seqExp
//	seq_fack   last fast-acked TCP data seq by the AP   -> seqFack
//	seq_TCP    last TCP data seq ACKed at the TCP layer -> seqTCP
//	q_seq      queue of seqs waiting to be fast-ACKed   -> qSeq
//
// All sequence fields hold "next byte" cumulative positions, so seqFack is
// directly usable as the Ack field of a generated fast ACK.
type flowState struct {
	flow packet.Flow // downlink direction: sender -> client

	seqHigh uint32
	seqExp  uint32
	seqFack uint32
	seqTCP  uint32

	qSeq ring[ackedSeg] // sorted by seq, disjoint

	// above records byte ranges received from the sender beyond seqExp
	// (the holes vector complement: the data we *do* have above a hole).
	above []packet.SACKBlock

	// cache is the local retransmission cache, ordered by seq.
	cache      ring[cachedSeg]
	cacheBytes int

	// bud is the owning agent's shared cache budget / pool; nil for a
	// standalone flowState (unit tests), in which case every cache method
	// degrades to plain per-flow behavior with heap clones.
	bud              *cacheBudget
	lruPrev, lruNext *flowState // intrusive links in bud's eviction order
	inLRU            bool

	// Running-counter shadows (see Agent.accountFlow): the values last
	// folded into bud.debtTotal / bud.undrained for this flow.
	acctDebt      int64
	acctUndrained bool

	// inBatch marks the flow as already collected by the current
	// HandleWirelessAckBatch invocation.
	inBatch bool

	// vouchNeedsCache (set by the agent unless DisableCache) refuses to
	// advance the fast-ack point over a segment whose cache entry is gone:
	// an entry evicted by cache pressure *before* its 802.11 feedback
	// arrived must never be vouched for afterward, because the agent could
	// not repair it. The drain stalls at the evicted segment instead; the
	// debt-stall detector then degrades the flow into bypass, which is
	// safe. Standalone flowState unit tests leave it false.
	vouchNeedsCache bool

	// sawData records whether this connection incarnation has carried
	// downlink payload. A flow tracked only through its handshake — e.g.
	// the ACK-only downlink direction of an uplink-dominant transfer —
	// must never be fast-ACK-managed: there is nothing to vouch for, and
	// suppressing the client's real ACKs would strangle its upload.
	sawData bool

	// Client-side knowledge for window rewriting (§5.5.2).
	clientWindow      int // last advertised rx_win in bytes (unscaled)
	clientWScale      int
	senderWScale      int
	clientSACKOK      bool
	initialized       bool
	lastFastAckAt     sim.Time
	dupAcksFromClient int
	lastClientAck     uint32
	zeroWindowSent    bool

	// Local-retransmission guard: a hole is redriven at most once per
	// guard window, however many duplicate ACKs the client emits for it
	// (an A-MPDU landing behind a hole produces one dup-ACK per subframe).
	lastRtxSeq uint32
	lastRtxAt  sim.Time

	// Flow-selection state (footnote 10): when MarkAllFlows is false, a
	// flow is only promoted to fast-acking after it has carried
	// MinFlowBytes of downlink payload — short flows are not worth the
	// state.
	bytesSeen int64
	promoted  bool

	// Safety-guard state (guard.go).
	gstate         GuardState
	suspectAt      sim.Time   // entered Suspect
	stormCount     int        // local retransmits since last client progress
	debtProgressAt sim.Time   // last time the debt shrank (or was zero)
	ackProgressAt  sim.Time   // last genuine client cumulative-ACK advance
	bypassAt       sim.Time   // entered Bypass
	bypassReason   GuardReason
	debtAtBypass   int64
	evictBlocked   bool // cacheInsert refused to evict vouched bytes
}

func (f *flowState) String() string {
	return fmt.Sprintf("flow %v %s exp=%d fack=%d tcp=%d high=%d q=%d cache=%d",
		f.flow, f.gstate, f.seqExp, f.seqFack, f.seqTCP, f.seqHigh, f.qSeq.Len(), f.cache.Len())
}

// debtBytes is the fast-ACK debt [seq_TCP, seq_fack): bytes already
// acknowledged to the sender on the client's behalf that the client itself
// has not acknowledged. While it is non-zero the agent — and only the
// agent — can repair losses in that range.
func (f *flowState) debtBytes() int {
	d := int32(f.seqFack - f.seqTCP)
	if d <= 0 {
		return 0
	}
	return int(d)
}

// resetForNewConnection discards per-incarnation packet state and guard
// verdicts when a fresh SYN reuses the 5-tuple. Sequence pointers are
// re-seeded by the caller via initAt.
func (f *flowState) resetForNewConnection() {
	f.qSeq.Reset()
	f.above = nil
	f.releaseCache()
	f.sawData = false
	f.dupAcksFromClient = 0
	f.zeroWindowSent = false
	f.gstate = GuardActive
	f.suspectAt = 0
	f.stormCount = 0
	f.debtProgressAt = 0
	f.ackProgressAt = 0
	f.bypassAt = 0
	f.bypassReason = ""
	f.debtAtBypass = 0
	f.evictBlocked = false
}

// initAt seeds the sequence pointers when the first data (or handshake)
// packet is observed.
func (f *flowState) initAt(seq uint32) {
	f.seqExp = seq
	f.seqFack = seq
	f.seqTCP = seq
	f.seqHigh = seq
	f.initialized = true
}

// outstandingBytes is out_bytes = seq_high − seq_TCP: everything the client
// has not actually acknowledged at the TCP layer, including data still
// queued in the AP driver (§5.5.2).
func (f *flowState) outstandingBytes() int {
	return int(f.seqHigh - f.seqTCP)
}

// advertisedWindow computes rx'_win = rx_win − out_bytes, additionally
// clamped so the flow's unacknowledged-at-802.11 backlog (seq_high −
// seq_fack ≈ bytes in the AP driver queue or in the air) stays within the
// per-flow queue budget. Clamped at 0.
func (f *flowState) advertisedWindow(queueBudget int) int {
	w := f.clientWindow - f.outstandingBytes()
	if queueBudget > 0 {
		if q := queueBudget - int(f.seqHigh-f.seqFack); q < w {
			w = q
		}
	}
	if w < 0 {
		w = 0
	}
	return w
}

// qSeqSearch returns the first q_seq index whose seq is >= seq.
func (f *flowState) qSeqSearch(seq uint32) int {
	lo, hi := 0, f.qSeq.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seqLT(f.qSeq.At(mid).seq, seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// enqueueAcked inserts an 802.11-acknowledged segment into q_seq, keeping
// the queue sorted and dropping duplicates (MAC-layer retransmissions can
// deliver the same MPDU's ACK twice). Block-ACK feedback is mostly
// in-order, so the common case is a plain append at the back.
func (f *flowState) enqueueAcked(seq uint32, length int) {
	if n := f.qSeq.Len(); n == 0 || seqLT(f.qSeq.At(n-1).seq, seq) {
		f.qSeq.PushBack(ackedSeg{seq: seq, len: length})
		return
	}
	i := f.qSeqSearch(seq)
	if i < f.qSeq.Len() && f.qSeq.At(i).seq == seq {
		return
	}
	f.qSeq.Insert(i, ackedSeg{seq: seq, len: length})
}

// drainContiguous pops entries off q_seq while they continue seq_fack,
// returning the new cumulative fast-ack point and how many segments it
// advanced over (Fig 12's continuity loop). segs > 0 means the fast-ack
// point moved; the segment count is also the caller's best proxy for the
// A-MPDU the block ACK covered.
func (f *flowState) drainContiguous() (newFack uint32, segs int) {
	for f.qSeq.Len() > 0 {
		head := *f.qSeq.At(0)
		if head.seq != f.seqFack {
			// Continuity broken: wait for the missing 802.11 ACK.
			if seqLT(head.seq, f.seqFack) {
				// Stale entry below the fast-ack point; discard.
				f.qSeq.PopFront()
				continue
			}
			break
		}
		if f.vouchNeedsCache && f.cacheLookup(head.seq) == nil {
			// Evicted before its feedback arrived: the agent cannot repair
			// this segment, so it must not vouch for it. Stall here — the
			// debt-stall guard will bypass the flow, whose remaining debt
			// is still fully covered.
			break
		}
		f.seqFack = head.seq + uint32(head.len)
		f.qSeq.PopFront()
		segs++
	}
	return f.seqFack, segs
}

// cloneDgram copies a datagram for the cache or a retransmission: pooled
// when the flow belongs to an agent, a plain heap clone otherwise.
func (f *flowState) cloneDgram(d *packet.Datagram) *packet.Datagram {
	if f.bud != nil {
		return f.bud.pool.clone(d)
	}
	return d.Clone()
}

// releaseSeg returns an evicted/purged cache entry's bytes to the flow and
// the shared budget, and its datagram to the pool.
func (f *flowState) releaseSeg(s cachedSeg) {
	n := int(s.end - s.seq)
	f.cacheBytes -= n
	if f.bud != nil {
		f.bud.used -= n
		f.bud.pool.put(s.dgram)
		if f.cacheBytes == 0 {
			f.bud.lruRemove(f)
		}
	}
}

// releaseCache returns every cache entry to the shared accounting.
func (f *flowState) releaseCache() {
	for f.cache.Len() > 0 {
		f.releaseSeg(f.cache.PopFront())
	}
}

// cacheSearch returns the first cache index whose seq is >= seq.
func (f *flowState) cacheSearch(seq uint32) int {
	lo, hi := 0, f.cache.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seqLT(f.cache.At(mid).seq, seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cacheInsert stores a clone of the data packet for local retransmission.
// Returns the evicted byte count if the per-flow cache limit forced
// eviction.
func (f *flowState) cacheInsert(d *packet.Datagram, limitBytes int) (evicted int) {
	seq := d.TCP.Seq
	end := seq + uint32(d.PayloadLen)
	if n := f.cache.Len(); n == 0 || seqLT(f.cache.At(n-1).seq, seq) {
		f.cache.PushBack(cachedSeg{seq: seq, end: end, dgram: f.cloneDgram(d)})
	} else {
		i := f.cacheSearch(seq)
		if i < f.cache.Len() && f.cache.At(i).seq == seq {
			return 0 // already cached (end-to-end retransmission)
		}
		f.cache.Insert(i, cachedSeg{seq: seq, end: end, dgram: f.cloneDgram(d)})
	}
	f.cacheBytes += d.PayloadLen
	if f.bud != nil {
		f.bud.used += d.PayloadLen
		f.bud.touch(f)
	}
	for limitBytes > 0 && f.cacheBytes > limitBytes && f.cache.Len() > 1 {
		// Evict the oldest (lowest seq): it is the most likely to have
		// been delivered already. But never a segment overlapping the
		// fast-ACK debt range [seq_TCP, seq_fack): those bytes were
		// vouched for toward the sender and this cache is the only place
		// they can ever be repaired from. The cache overruns its budget
		// instead, and the blocked eviction is surfaced as a thrash
		// signal for the guard.
		old := *f.cache.At(0)
		if f.debtBytes() > 0 && seqLT(f.seqTCP, old.end) && seqLT(old.seq, f.seqFack) {
			f.evictBlocked = true
			break
		}
		f.releaseSeg(f.cache.PopFront())
		evicted += int(old.end - old.seq)
	}
	return evicted
}

// cacheTrimToDebt shrinks the cache to exactly the debt range: entries
// fully acknowledged by the client and entries at or above seq_fack
// (never vouched for) are dropped. Entered on bypass, when the cache's
// only remaining job is making good on [seq_TCP, seq_fack).
func (f *flowState) cacheTrimToDebt() {
	f.cachePurge(f.seqTCP)
	for f.cache.Len() > 0 {
		last := *f.cache.At(f.cache.Len() - 1)
		if seqLT(last.seq, f.seqFack) {
			break // starts inside the debt range: keep
		}
		f.releaseSeg(f.cache.PopBack())
	}
}

// cachePurge drops cache entries fully acknowledged at or below ack.
func (f *flowState) cachePurge(ack uint32) {
	for f.cache.Len() > 0 && seqLEQ(f.cache.At(0).end, ack) {
		f.releaseSeg(f.cache.PopFront())
	}
}

// cacheLookup returns the cached segment starting at seq, or nil.
func (f *flowState) cacheLookup(seq uint32) *packet.Datagram {
	i := f.cacheSearch(seq)
	if i < f.cache.Len() && f.cache.At(i).seq == seq {
		return f.cache.At(i).dgram
	}
	return nil
}

// cacheRange returns cached segments overlapping [left, right).
func (f *flowState) cacheRange(left, right uint32) []*packet.Datagram {
	var out []*packet.Datagram
	for i := 0; i < f.cache.Len(); i++ {
		c := f.cache.At(i)
		if seqLT(c.seq, right) && seqLT(left, c.end) {
			out = append(out, c.dgram)
		}
	}
	return out
}

// addAbove records a received byte range beyond seqExp and merges overlaps.
func (f *flowState) addAbove(left, right uint32) {
	f.above = append(f.above, packet.SACKBlock{Left: left, Right: right})
	sort.Slice(f.above, func(i, j int) bool { return seqLT(f.above[i].Left, f.above[j].Left) })
	merged := f.above[:0]
	for _, b := range f.above {
		if n := len(merged); n > 0 && seqLEQ(b.Left, merged[n-1].Right) {
			if seqLT(merged[n-1].Right, b.Right) {
				merged[n-1].Right = b.Right
			}
			continue
		}
		merged = append(merged, b)
	}
	f.above = merged
}

// advanceExp moves seqExp past end and then over any contiguous ranges
// already received above it (hole filling).
func (f *flowState) advanceExp(end uint32) {
	if seqLT(f.seqExp, end) {
		f.seqExp = end
	}
	for len(f.above) > 0 && seqLEQ(f.above[0].Left, f.seqExp) {
		if seqLT(f.seqExp, f.above[0].Right) {
			f.seqExp = f.above[0].Right
		}
		f.above = f.above[1:]
	}
}

// hasHole reports whether upstream losses left gaps below seqHigh.
func (f *flowState) hasHole() bool { return len(f.above) > 0 }
