package fastack

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// seqLT reports a < b in 32-bit TCP sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// ackedSeg is one TCP segment acknowledged at the 802.11 layer but not yet
// fast-ACKed: an entry of the paper's q_seq.
type ackedSeg struct {
	seq uint32
	len int
}

// cachedSeg is one retransmission-cache entry.
type cachedSeg struct {
	seq   uint32
	end   uint32
	dgram *packet.Datagram
}

// flowState is the per-flow FastACK state, Table 3 of the paper:
//
//	holes_vec  TCP holes vector                         -> above (rangeSet)
//	seq_high   highest TCP data seq seen                -> seqHigh
//	seq_exp    expected TCP data seq from the sender    -> seqExp
//	seq_fack   last fast-acked TCP data seq by the AP   -> seqFack
//	seq_TCP    last TCP data seq ACKed at the TCP layer -> seqTCP
//	q_seq      queue of seqs waiting to be fast-ACKed   -> qSeq
//
// All sequence fields hold "next byte" cumulative positions, so seqFack is
// directly usable as the Ack field of a generated fast ACK.
type flowState struct {
	flow packet.Flow // downlink direction: sender -> client

	seqHigh uint32
	seqExp  uint32
	seqFack uint32
	seqTCP  uint32

	qSeq []ackedSeg // sorted by seq, disjoint

	// above records byte ranges received from the sender beyond seqExp
	// (the holes vector complement: the data we *do* have above a hole).
	above []packet.SACKBlock

	// cache is the local retransmission cache, ordered by seq.
	cache      []cachedSeg
	cacheBytes int

	// Client-side knowledge for window rewriting (§5.5.2).
	clientWindow      int // last advertised rx_win in bytes (unscaled)
	clientWScale      int
	senderWScale      int
	clientSACKOK      bool
	initialized       bool
	lastFastAckAt     sim.Time
	dupAcksFromClient int
	lastClientAck     uint32
	zeroWindowSent    bool

	// Local-retransmission guard: a hole is redriven at most once per
	// guard window, however many duplicate ACKs the client emits for it
	// (an A-MPDU landing behind a hole produces one dup-ACK per subframe).
	lastRtxSeq uint32
	lastRtxAt  sim.Time

	// Flow-selection state (footnote 10): when MarkAllFlows is false, a
	// flow is only promoted to fast-acking after it has carried
	// MinFlowBytes of downlink payload — short flows are not worth the
	// state.
	bytesSeen int64
	promoted  bool

	// Safety-guard state (guard.go).
	gstate         GuardState
	suspectAt      sim.Time   // entered Suspect
	stormCount     int        // local retransmits since last client progress
	debtProgressAt sim.Time   // last time the debt shrank (or was zero)
	ackProgressAt  sim.Time   // last genuine client cumulative-ACK advance
	bypassAt       sim.Time   // entered Bypass
	bypassReason   GuardReason
	debtAtBypass   int64
	evictBlocked   bool // cacheInsert refused to evict vouched bytes
}

func (f *flowState) String() string {
	return fmt.Sprintf("flow %v %s exp=%d fack=%d tcp=%d high=%d q=%d cache=%d",
		f.flow, f.gstate, f.seqExp, f.seqFack, f.seqTCP, f.seqHigh, len(f.qSeq), len(f.cache))
}

// debtBytes is the fast-ACK debt [seq_TCP, seq_fack): bytes already
// acknowledged to the sender on the client's behalf that the client itself
// has not acknowledged. While it is non-zero the agent — and only the
// agent — can repair losses in that range.
func (f *flowState) debtBytes() int {
	d := int32(f.seqFack - f.seqTCP)
	if d <= 0 {
		return 0
	}
	return int(d)
}

// resetForNewConnection discards per-incarnation packet state and guard
// verdicts when a fresh SYN reuses the 5-tuple. Sequence pointers are
// re-seeded by the caller via initAt.
func (f *flowState) resetForNewConnection() {
	f.qSeq = nil
	f.above = nil
	f.cache = nil
	f.cacheBytes = 0
	f.dupAcksFromClient = 0
	f.zeroWindowSent = false
	f.gstate = GuardActive
	f.suspectAt = 0
	f.stormCount = 0
	f.debtProgressAt = 0
	f.ackProgressAt = 0
	f.bypassAt = 0
	f.bypassReason = ""
	f.debtAtBypass = 0
	f.evictBlocked = false
}

// initAt seeds the sequence pointers when the first data (or handshake)
// packet is observed.
func (f *flowState) initAt(seq uint32) {
	f.seqExp = seq
	f.seqFack = seq
	f.seqTCP = seq
	f.seqHigh = seq
	f.initialized = true
}

// outstandingBytes is out_bytes = seq_high − seq_TCP: everything the client
// has not actually acknowledged at the TCP layer, including data still
// queued in the AP driver (§5.5.2).
func (f *flowState) outstandingBytes() int {
	return int(f.seqHigh - f.seqTCP)
}

// advertisedWindow computes rx'_win = rx_win − out_bytes, additionally
// clamped so the flow's unacknowledged-at-802.11 backlog (seq_high −
// seq_fack ≈ bytes in the AP driver queue or in the air) stays within the
// per-flow queue budget. Clamped at 0.
func (f *flowState) advertisedWindow(queueBudget int) int {
	w := f.clientWindow - f.outstandingBytes()
	if queueBudget > 0 {
		if q := queueBudget - int(f.seqHigh-f.seqFack); q < w {
			w = q
		}
	}
	if w < 0 {
		w = 0
	}
	return w
}

// enqueueAcked inserts an 802.11-acknowledged segment into q_seq, keeping
// the queue sorted and dropping duplicates (MAC-layer retransmissions can
// deliver the same MPDU's ACK twice).
func (f *flowState) enqueueAcked(seq uint32, length int) {
	i := sort.Search(len(f.qSeq), func(i int) bool { return !seqLT(f.qSeq[i].seq, seq) })
	if i < len(f.qSeq) && f.qSeq[i].seq == seq {
		return
	}
	f.qSeq = append(f.qSeq, ackedSeg{})
	copy(f.qSeq[i+1:], f.qSeq[i:])
	f.qSeq[i] = ackedSeg{seq: seq, len: length}
}

// drainContiguous pops entries off q_seq while they continue seq_fack,
// returning the new cumulative fast-ack point and how many segments it
// advanced over (Fig 12's continuity loop). segs > 0 means the fast-ack
// point moved; the segment count is also the caller's best proxy for the
// A-MPDU the block ACK covered.
func (f *flowState) drainContiguous() (newFack uint32, segs int) {
	for len(f.qSeq) > 0 {
		head := f.qSeq[0]
		if head.seq != f.seqFack {
			// Continuity broken: wait for the missing 802.11 ACK.
			if seqLT(head.seq, f.seqFack) {
				// Stale entry below the fast-ack point; discard.
				f.qSeq = f.qSeq[1:]
				continue
			}
			break
		}
		f.seqFack = head.seq + uint32(head.len)
		f.qSeq = f.qSeq[1:]
		segs++
	}
	return f.seqFack, segs
}

// cacheInsert stores a clone of the data packet for local retransmission.
// Returns the evicted byte count if the cache limit forced eviction.
func (f *flowState) cacheInsert(d *packet.Datagram, limitBytes int) (evicted int) {
	seq := d.TCP.Seq
	end := seq + uint32(d.PayloadLen)
	i := sort.Search(len(f.cache), func(i int) bool { return !seqLT(f.cache[i].seq, seq) })
	if i < len(f.cache) && f.cache[i].seq == seq {
		return 0 // already cached (end-to-end retransmission)
	}
	f.cache = append(f.cache, cachedSeg{})
	copy(f.cache[i+1:], f.cache[i:])
	f.cache[i] = cachedSeg{seq: seq, end: end, dgram: d.Clone()}
	f.cacheBytes += d.PayloadLen
	for limitBytes > 0 && f.cacheBytes > limitBytes && len(f.cache) > 1 {
		// Evict the oldest (lowest seq): it is the most likely to have
		// been delivered already. But never a segment overlapping the
		// fast-ACK debt range [seq_TCP, seq_fack): those bytes were
		// vouched for toward the sender and this cache is the only place
		// they can ever be repaired from. The cache overruns its budget
		// instead, and the blocked eviction is surfaced as a thrash
		// signal for the guard.
		old := f.cache[0]
		if f.debtBytes() > 0 && seqLT(f.seqTCP, old.end) && seqLT(old.seq, f.seqFack) {
			f.evictBlocked = true
			break
		}
		f.cache = f.cache[1:]
		n := int(old.end - old.seq)
		f.cacheBytes -= n
		evicted += n
	}
	return evicted
}

// cacheTrimToDebt shrinks the cache to exactly the debt range: entries
// fully acknowledged by the client and entries at or above seq_fack
// (never vouched for) are dropped. Entered on bypass, when the cache's
// only remaining job is making good on [seq_TCP, seq_fack).
func (f *flowState) cacheTrimToDebt() {
	f.cachePurge(f.seqTCP)
	for len(f.cache) > 0 {
		last := f.cache[len(f.cache)-1]
		if seqLT(last.seq, f.seqFack) {
			break // starts inside the debt range: keep
		}
		f.cacheBytes -= int(last.end - last.seq)
		f.cache = f.cache[:len(f.cache)-1]
	}
}

// cachePurge drops cache entries fully acknowledged at or below ack.
func (f *flowState) cachePurge(ack uint32) {
	i := 0
	for i < len(f.cache) && seqLEQ(f.cache[i].end, ack) {
		f.cacheBytes -= int(f.cache[i].end - f.cache[i].seq)
		i++
	}
	if i > 0 {
		f.cache = f.cache[i:]
	}
}

// cacheLookup returns the cached segment starting at seq, or nil.
func (f *flowState) cacheLookup(seq uint32) *packet.Datagram {
	i := sort.Search(len(f.cache), func(i int) bool { return !seqLT(f.cache[i].seq, seq) })
	if i < len(f.cache) && f.cache[i].seq == seq {
		return f.cache[i].dgram
	}
	return nil
}

// cacheRange returns cached segments overlapping [left, right).
func (f *flowState) cacheRange(left, right uint32) []*packet.Datagram {
	var out []*packet.Datagram
	for _, c := range f.cache {
		if seqLT(c.seq, right) && seqLT(left, c.end) {
			out = append(out, c.dgram)
		}
	}
	return out
}

// addAbove records a received byte range beyond seqExp and merges overlaps.
func (f *flowState) addAbove(left, right uint32) {
	f.above = append(f.above, packet.SACKBlock{Left: left, Right: right})
	sort.Slice(f.above, func(i, j int) bool { return seqLT(f.above[i].Left, f.above[j].Left) })
	merged := f.above[:0]
	for _, b := range f.above {
		if n := len(merged); n > 0 && seqLEQ(b.Left, merged[n-1].Right) {
			if seqLT(merged[n-1].Right, b.Right) {
				merged[n-1].Right = b.Right
			}
			continue
		}
		merged = append(merged, b)
	}
	f.above = merged
}

// advanceExp moves seqExp past end and then over any contiguous ranges
// already received above it (hole filling).
func (f *flowState) advanceExp(end uint32) {
	if seqLT(f.seqExp, end) {
		f.seqExp = end
	}
	for len(f.above) > 0 && seqLEQ(f.above[0].Left, f.seqExp) {
		if seqLT(f.seqExp, f.above[0].Right) {
			f.seqExp = f.above[0].Right
		}
		f.above = f.above[1:]
	}
}

// hasHole reports whether upstream losses left gaps below seqHigh.
func (f *flowState) hasHole() bool { return len(f.above) > 0 }
