package fastack

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

var (
	serverEP = packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000}
	clientEP = packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 7}, Port: 80}
)

const segLen = 1000

// harness drives an agent with a controllable clock.
type harness struct {
	a   *Agent
	now sim.Time
}

func newHarness(cfg Config) *harness {
	h := &harness{}
	h.a = New(cfg, func() sim.Time { return h.now })
	return h
}

// handshake walks the agent through SYN / SYN-ACK so the flow state is
// seeded with ISS 1000 (sender) and window scaling.
func (h *harness) handshake(t *testing.T) {
	t.Helper()
	syn := packet.NewTCPDatagram(serverEP, clientEP, 0)
	syn.TCP.Seq = 999 // first data byte will be 1000
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.WindowScale = 7
	if d := h.a.HandleDownlink(syn); !d.Forward {
		t.Fatal("SYN must be forwarded")
	}
	synAck := packet.NewTCPDatagram(clientEP, serverEP, 0)
	synAck.TCP.Flags = packet.FlagSYN | packet.FlagACK
	synAck.TCP.Window = 4096 // 4096 << 7 = 512 KiB
	synAck.TCP.WindowScale = 7
	synAck.TCP.SACKPermitted = true
	if d := h.a.HandleUplink(synAck); !d.Forward {
		t.Fatal("SYN-ACK must be forwarded")
	}
}

// data builds a downlink data segment with the given sequence number.
func data(seq uint32) *packet.Datagram {
	d := packet.NewTCPDatagram(serverEP, clientEP, segLen)
	d.TCP.Seq = seq
	d.TCP.Flags = packet.FlagACK | packet.FlagPSH
	return d
}

// clientAck builds a pure client ACK.
func clientAck(ack uint32, window uint16) *packet.Datagram {
	d := packet.NewTCPDatagram(clientEP, serverEP, 0)
	d.TCP.Ack = ack
	d.TCP.Flags = packet.FlagACK
	d.TCP.Window = window
	return d
}

func TestCaseIIIInOrderData(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	for i := 0; i < 3; i++ {
		d := data(1000 + uint32(i*segLen))
		disp := h.a.HandleDownlink(d)
		if !disp.Forward || disp.Elevate || len(disp.ToSender) != 0 {
			t.Fatalf("case iii segment %d: %+v", i, disp)
		}
	}
	f := h.a.flows[data(1000).Flow()]
	if f.seqExp != 4000 || f.seqHigh != 4000 {
		t.Fatalf("seqExp=%d seqHigh=%d, want 4000", f.seqExp, f.seqHigh)
	}
	if f.cache.Len() != 3 {
		t.Fatalf("cache has %d segments", f.cache.Len())
	}
}

func TestFastAckOnWirelessAck(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0, d1 := data(1000), data(2000)
	h.a.HandleDownlink(d0)
	h.a.HandleDownlink(d1)

	disp := h.a.HandleWirelessAck(d0, true)
	if len(disp.ToSender) != 1 {
		t.Fatalf("expected a fast ACK, got %+v", disp)
	}
	fa := disp.ToSender[0]
	if fa.TCP.Ack != 2000 {
		t.Fatalf("fast ACK = %d, want 2000", fa.TCP.Ack)
	}
	// It impersonates the client.
	if fa.IP.Src != clientEP.Addr || fa.IP.Dst != serverEP.Addr {
		t.Fatalf("fast ACK addressing: %v", fa)
	}
	// Second delivery advances cumulatively.
	disp = h.a.HandleWirelessAck(d1, true)
	if len(disp.ToSender) != 1 || disp.ToSender[0].TCP.Ack != 3000 {
		t.Fatalf("cumulative fast ACK: %+v", disp)
	}
	if h.a.Stats().FastAcksSent != 2 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

// TestQSeqContinuity reproduces Fig 12's ordering rule: 802.11 ACKs
// arriving out of order must not produce a fast ACK past a hole.
func TestQSeqContinuity(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0, d1, d2 := data(1000), data(2000), data(3000)
	for _, d := range []*packet.Datagram{d0, d1, d2} {
		h.a.HandleDownlink(d)
	}
	// d1 and d2 are 802.11-ACKed first (d0's MPDU failed in the A-MPDU).
	if disp := h.a.HandleWirelessAck(d1, true); len(disp.ToSender) != 0 {
		t.Fatalf("fast ACK before continuity: %+v", disp)
	}
	if disp := h.a.HandleWirelessAck(d2, true); len(disp.ToSender) != 0 {
		t.Fatalf("fast ACK before continuity: %+v", disp)
	}
	// d0 arrives: one cumulative fast ACK to 4000 covers all three.
	disp := h.a.HandleWirelessAck(d0, true)
	if len(disp.ToSender) != 1 || disp.ToSender[0].TCP.Ack != 4000 {
		t.Fatalf("cumulative drain: %+v", disp)
	}
}

func TestCaseISpuriousRetransmissionDropped(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	h.a.HandleWirelessAck(d0, true) // fast-acked to 2000

	// The sender retransmits the already fast-ACKed segment.
	disp := h.a.HandleDownlink(data(1000))
	if disp.Forward {
		t.Fatal("case i retransmission must be dropped")
	}
	if h.a.Stats().SpuriousDrops != 1 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

func TestCaseIIElevatedForward(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	h.a.HandleDownlink(data(2000))
	// Neither 802.11-ACKed yet; an end-to-end retransmission of 1000 is
	// seqFack <= seq < seqExp: forward with priority elevation.
	disp := h.a.HandleDownlink(data(1000))
	if !disp.Forward || !disp.Elevate {
		t.Fatalf("case ii: %+v", disp)
	}
	if h.a.Stats().ElevatedForwards != 1 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

// TestCaseIVUpstreamHole verifies §5.5.3: a sequence gap at the AP
// triggers an emulated duplicate ACK (with SACK) toward the sender.
func TestCaseIVUpstreamHole(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	// 2000 lost upstream; 3000 arrives.
	disp := h.a.HandleDownlink(data(3000))
	if !disp.Forward {
		t.Fatal("hole data still forwards")
	}
	if len(disp.ToSender) != 1 {
		t.Fatalf("expected hole dup-ACK: %+v", disp)
	}
	dup := disp.ToSender[0]
	if dup.TCP.Ack != 2000 {
		t.Fatalf("dup ACK = %d, want 2000 (the missing seq)", dup.TCP.Ack)
	}
	if len(dup.TCP.SACK) != 1 || dup.TCP.SACK[0].Left != 3000 || dup.TCP.SACK[0].Right != 4000 {
		t.Fatalf("SACK = %+v", dup.TCP.SACK)
	}
	// The retransmission of 2000 fills the hole: seqExp jumps past the
	// buffered range.
	h.a.HandleDownlink(data(2000))
	f := h.a.flows[data(1000).Flow()]
	if f.seqExp != 4000 {
		t.Fatalf("seqExp after hole fill = %d, want 4000", f.seqExp)
	}
	if f.hasHole() {
		t.Fatal("hole not cleared")
	}
}

func TestClientAckSuppression(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	h.a.HandleWirelessAck(d0, true)

	// Client's own cumulative ACK for fast-acked data: suppressed.
	disp := h.a.HandleUplink(clientAck(2000, 4096))
	if disp.Forward {
		t.Fatal("duplicate client ACK must be suppressed")
	}
	if h.a.Stats().ClientAcksDropped != 1 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
	// Cache purged up to the acknowledged point.
	f := h.a.flows[d0.Flow()]
	if f.cache.Len() != 0 {
		t.Fatalf("cache not purged: %d entries", f.cache.Len())
	}
	if f.seqTCP != 2000 {
		t.Fatalf("seqTCP = %d", f.seqTCP)
	}
}

func TestClientAckBeyondFastAckForwards(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	// No 802.11 ACK yet, but the client acks 2000 (e.g. state imported
	// from a roam). Information the sender lacks: forward it.
	disp := h.a.HandleUplink(clientAck(2000, 4096))
	if !disp.Forward {
		t.Fatal("ACK beyond seqFack must be forwarded")
	}
}

func TestDupAckTriggersLocalRetransmit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupAckThreshold = 2
	h := newHarness(cfg)
	h.handshake(t)
	d0, d1, d2 := data(1000), data(2000), data(3000)
	for _, d := range []*packet.Datagram{d0, d1, d2} {
		h.a.HandleDownlink(d)
		h.a.HandleWirelessAck(d, true)
	}
	// The client's transport never got 2000 (bad hint): it acks 2000
	// repeatedly.
	h.a.HandleUplink(clientAck(2000, 4096))
	h.a.HandleUplink(clientAck(2000, 4096)) // dup #1
	disp := h.a.HandleUplink(clientAck(2000, 4096))
	if len(disp.ToClient) == 0 {
		t.Fatalf("no local retransmit after threshold: %+v", disp)
	}
	if disp.ToClient[0].TCP.Seq != 2000 {
		t.Fatalf("retransmitted %d, want 2000", disp.ToClient[0].TCP.Seq)
	}
	if h.a.Stats().LocalRetransmits == 0 || h.a.Stats().BadHints == 0 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

func TestRtxGuardAbsorbsDupAckBursts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupAckThreshold = 2
	cfg.RtxGuard = 15 * sim.Millisecond
	h := newHarness(cfg)
	h.handshake(t)
	for _, d := range []*packet.Datagram{data(1000), data(2000), data(3000)} {
		h.a.HandleDownlink(d)
		h.a.HandleWirelessAck(d, true)
	}
	h.a.HandleUplink(clientAck(2000, 4096))
	retransmits := 0
	// A 30-dup-ACK burst (one per A-MPDU subframe) within the guard.
	for i := 0; i < 30; i++ {
		h.now += sim.Millisecond / 4
		disp := h.a.HandleUplink(clientAck(2000, 4096))
		retransmits += len(disp.ToClient)
	}
	if retransmits != 1 {
		t.Fatalf("guard failed: %d retransmits in one burst", retransmits)
	}
	// After the guard expires, the hole may be redriven once more.
	h.now += 20 * sim.Millisecond
	h.a.HandleUplink(clientAck(2000, 4096))
	disp := h.a.HandleUplink(clientAck(2000, 4096))
	if len(disp.ToClient) != 1 {
		t.Fatalf("guard never re-opens: %+v", disp)
	}
}

// TestWindowClamp checks §5.5.2: rx'_win = rx_win − out_bytes.
func TestWindowClamp(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	// Client advertised 4096<<7 = 524288 bytes.
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	disp := h.a.HandleWirelessAck(d0, true)
	fa := disp.ToSender[0]
	// out_bytes = seqHigh(2000) - seqTCP(1000) = 1000.
	wantBytes := 524288 - 1000
	gotBytes := int(fa.TCP.Window) << 7
	// Scaling rounds down by up to (1<<7)-1 bytes.
	if gotBytes > wantBytes || gotBytes < wantBytes-127 {
		t.Fatalf("advertised %d bytes, want ~%d", gotBytes, wantBytes)
	}
}

func TestWindowZeroThenUpdate(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(cfg)
	h.handshake(t)
	// Shrink the client window by re-advertising a small value.
	h.a.HandleUplink(clientAck(1000, 16)) // 16<<7 = 2048 bytes
	d0, d1 := data(1000), data(2000)
	h.a.HandleDownlink(d0)
	h.a.HandleDownlink(d1)
	// 2000 outstanding of 2048: the fast ACK must advertise ~0.
	disp := h.a.HandleWirelessAck(d0, true)
	if w := disp.ToSender[0].TCP.Window; w != 0 {
		t.Fatalf("window = %d, want 0", w)
	}
	// Client acks everything: a window update must be generated.
	disp = h.a.HandleUplink(clientAck(3000, 4096))
	if len(disp.ToSender) != 1 {
		t.Fatalf("no window update: %+v", disp)
	}
	if w := int(disp.ToSender[0].TCP.Window) << 7; w < 100000 {
		t.Fatalf("window update too small: %d", w)
	}
	if h.a.Stats().WindowUpdates != 1 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

func TestFlowQueueBudgetClampsWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowQueueBudget = 3 * segLen
	h := newHarness(cfg)
	h.handshake(t)
	for i := uint32(0); i < 4; i++ {
		h.a.HandleDownlink(data(1000 + i*segLen))
	}
	// 4 segments un-802.11-acked, budget 3: window must clamp to 0 on
	// the next fast ACK even though the client buffer is huge.
	disp := h.a.HandleWirelessAck(data(1000), true)
	// After this ACK, seqHigh-seqFack = 3 segments = budget: window 0.
	if w := disp.ToSender[0].TCP.Window; w != 0 {
		t.Fatalf("window = %d, want 0 (budget-clamped)", w)
	}
}

func TestWirelessDropRedrive(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	disp := h.a.HandleWirelessAck(d0, false) // MAC gave up
	if len(disp.ToClient) != 1 || disp.ToClient[0].TCP.Seq != 1000 {
		t.Fatalf("no cache redrive: %+v", disp)
	}
	if h.a.Stats().WirelessRedrives != 1 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
	// The redrive is a clone, not the cached packet itself.
	if disp.ToClient[0] == h.a.flows[d0.Flow()].cache.At(0).dgram {
		t.Fatal("redrive aliases the cache")
	}
}

func TestRoamingExportImport(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0, d1 := data(1000), data(2000)
	h.a.HandleDownlink(d0)
	h.a.HandleDownlink(d1)
	h.a.HandleWirelessAck(d0, true)

	ex, ok := h.a.Export(d0.Flow())
	if !ok {
		t.Fatal("export failed")
	}
	if ex.SeqFack != 2000 || ex.SeqExp != 3000 || len(ex.Cache) != 2 {
		t.Fatalf("exported: %+v", ex)
	}

	// Roam-to AP imports and can serve a duplicate ACK from its cache.
	h2 := newHarness(DefaultConfig())
	h2.a.Import(ex)
	f := h2.a.flows[d0.Flow()]
	if f.seqFack != 2000 || f.cache.Len() != 2 {
		t.Fatalf("imported: %v", f)
	}
	if h2.a.flows[d0.Flow()].cacheLookup(2000) == nil {
		t.Fatal("imported cache lookup failed")
	}
}

func TestSweepExpiresIdleFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleExpiry = sim.Minute
	h := newHarness(cfg)
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	if h.a.FlowCount() != 1 {
		t.Fatalf("flows = %d", h.a.FlowCount())
	}
	h.now = 30 * sim.Second
	if removed := h.a.Sweep(); removed != 0 {
		t.Fatal("swept a fresh flow")
	}
	h.now = 5 * sim.Minute
	if removed := h.a.Sweep(); removed != 1 {
		t.Fatalf("sweep removed %d", removed)
	}
}

func TestRSTClearsFlow(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	rst := packet.NewTCPDatagram(serverEP, clientEP, 0)
	rst.TCP.Flags = packet.FlagRST
	if d := h.a.HandleDownlink(rst); !d.Forward {
		t.Fatal("RST must forward")
	}
	if h.a.FlowCount() != 0 {
		t.Fatalf("flow survived RST: %d", h.a.FlowCount())
	}
}

func TestNonTCPAndClientDataPassThrough(t *testing.T) {
	h := newHarness(DefaultConfig())
	udp := packet.NewUDPDatagram(serverEP, clientEP, 100)
	if d := h.a.HandleDownlink(udp); !d.Forward {
		t.Fatal("UDP downlink must forward")
	}
	if d := h.a.HandleUplink(packet.NewUDPDatagram(clientEP, serverEP, 100)); !d.Forward {
		t.Fatal("UDP uplink must forward")
	}
	// Client data (uplink payload) passes through untouched.
	h.handshake(t)
	up := packet.NewTCPDatagram(clientEP, serverEP, 50)
	up.TCP.Flags = packet.FlagACK | packet.FlagPSH
	if d := h.a.HandleUplink(up); !d.Forward {
		t.Fatal("client data must forward")
	}
}

func TestMidFlowAdoption(t *testing.T) {
	// No handshake observed: the agent adopts the flow at the first data
	// segment.
	h := newHarness(DefaultConfig())
	d := data(555000)
	disp := h.a.HandleDownlink(d)
	if !disp.Forward {
		t.Fatal("adopted data must forward")
	}
	f := h.a.flows[d.Flow()]
	if !f.initialized || f.seqExp != 555000+segLen {
		t.Fatalf("adoption state: %v", f)
	}
	// Wireless ACK still produces a fast ACK.
	if disp := h.a.HandleWirelessAck(d, true); len(disp.ToSender) != 1 {
		t.Fatalf("no fast ACK after adoption: %+v", disp)
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheLimitBytes = 2 * segLen
	h := newHarness(cfg)
	h.handshake(t)
	for i := uint32(0); i < 4; i++ {
		h.a.HandleDownlink(data(1000 + i*segLen))
	}
	f := h.a.flows[data(1000).Flow()]
	if f.cacheBytes > 2*segLen {
		t.Fatalf("cache over limit: %d", f.cacheBytes)
	}
	if h.a.Stats().CacheEvictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// The newest segments survive.
	if f.cacheLookup(1000+3*uint32(segLen)) == nil {
		t.Fatal("newest segment evicted")
	}
}

// Property: for any order of 802.11 ACK arrivals over a contiguous block
// of segments, the final fast-ack point is the end of the block, no fast
// ACK ever exceeds it, and fast acks are monotonically increasing.
func TestQuickQSeqAnyOrder(t *testing.T) {
	f := func(perm []uint8, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		h := newHarness(DefaultConfig())
		ht := &testing.T{}
		h.handshake(ht)
		segs := make([]*packet.Datagram, n)
		for i := 0; i < n; i++ {
			segs[i] = data(1000 + uint32(i*segLen))
			h.a.HandleDownlink(segs[i])
		}
		// Build a permutation from the fuzz input.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, p := range perm {
			j := int(p) % n
			k := i % n
			order[j], order[k] = order[k], order[j]
		}
		last := uint32(0)
		for _, idx := range order {
			disp := h.a.HandleWirelessAck(segs[idx], true)
			for _, fa := range disp.ToSender {
				if fa.TCP.Ack <= last {
					return false // not monotonic
				}
				last = fa.TCP.Ack
			}
		}
		return last == uint32(1000+n*segLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateWirelessAckIgnored(t *testing.T) {
	h := newHarness(DefaultConfig())
	h.handshake(t)
	d0 := data(1000)
	h.a.HandleDownlink(d0)
	h.a.HandleWirelessAck(d0, true)
	// The MAC can report the same MPDU delivered twice (retry + stale
	// BA); no second fast ACK may be emitted.
	disp := h.a.HandleWirelessAck(d0, true)
	if len(disp.ToSender) != 0 {
		t.Fatalf("duplicate 802.11 ACK produced traffic: %+v", disp)
	}
}

func TestFlowSelectionThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MarkAllFlows = false
	cfg.MinFlowBytes = 3 * segLen
	h := newHarness(cfg)
	h.handshake(t)

	// Below the threshold: pure forwarding, no fast ACKs, no ACK
	// suppression.
	d0, d1 := data(1000), data(2000)
	for _, d := range []*packet.Datagram{d0, d1} {
		disp := h.a.HandleDownlink(d)
		if !disp.Forward || disp.Elevate || len(disp.ToSender) > 0 {
			t.Fatalf("unpromoted flow mangled: %+v", disp)
		}
	}
	if disp := h.a.HandleWirelessAck(d0, true); len(disp.ToSender) != 0 {
		t.Fatalf("fast ACK before promotion: %+v", disp)
	}
	if disp := h.a.HandleUplink(clientAck(3000, 4096)); !disp.Forward {
		t.Fatal("client ACK suppressed before promotion")
	}

	// Crossing the threshold promotes the flow mid-stream.
	d2, d3 := data(3000), data(4000)
	h.a.HandleDownlink(d2)
	h.a.HandleDownlink(d3)
	if disp := h.a.HandleWirelessAck(d3, true); len(disp.ToSender) == 0 {
		// d3 is the first cached/promoted segment at the frontier... the
		// promotion happened at d2, so d2's ACK must fast-ack first.
		disp2 := h.a.HandleWirelessAck(d2, true)
		if len(disp2.ToSender) == 0 {
			t.Fatal("no fast ACKs after promotion")
		}
	}
	// Suppression engages after promotion.
	if disp := h.a.HandleUplink(clientAck(4000, 4096)); disp.Forward {
		t.Fatal("client ACK not suppressed after promotion")
	}
}
