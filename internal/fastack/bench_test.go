package fastack

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/packet"
)

// mergeBenchJSON folds payload into $BENCH_JSON_DIR/<name>, preserving keys
// written by other benchmarks in the same file (the 1k- and 10k-flow runs
// share BENCH_fastack.json). No-op when BENCH_JSON_DIR is unset.
func mergeBenchJSON(b *testing.B, name string, payload map[string]float64) {
	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" || name == "" {
		return
	}
	path := filepath.Join(dir, name)
	merged := map[string]float64{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &merged)
	}
	for k, v := range payload {
		merged[k] = v
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		b.Logf("bench json: %v", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: %v", err)
	}
}

// benchEPs returns the wired-server / wireless-client endpoint pair for the
// i-th benchmark flow (distinct client addresses, one server).
func benchEPs(i int) (srv, cli packet.Endpoint) {
	srv = packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000}
	cli = packet.Endpoint{Addr: packet.IPv4Addr{10, 1, byte(i >> 8), byte(i)}, Port: 80}
	return srv, cli
}

// benchHandshake walks one flow through SYN / SYN-ACK (ISS 1000, wscale 7,
// SACK permitted — the same shape the unit harness uses).
func benchHandshake(a *Agent, srv, cli packet.Endpoint) {
	syn := packet.NewTCPDatagram(srv, cli, 0)
	syn.TCP.Seq = 999
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.WindowScale = 7
	a.HandleDownlink(syn)
	synAck := packet.NewTCPDatagram(cli, srv, 0)
	synAck.TCP.Flags = packet.FlagSYN | packet.FlagACK
	synAck.TCP.Window = 4096 // 512 KiB scaled
	synAck.TCP.WindowScale = 7
	synAck.TCP.SACKPermitted = true
	a.HandleUplink(synAck)
}

// hotPathDriver drives the steady-state many-flow segment lifecycle:
// downlink data → 802.11 delivery feedback (fast ACK) → client cumulative
// ACK (suppressed, cache purge). One step is one segment through the full
// pipeline on one flow, round-robin across all flows.
type hotPathDriver struct {
	a    *Agent
	segs []*packet.Datagram // one reusable data datagram per flow
	acks []*packet.Datagram // one reusable client-ACK datagram per flow
	seqs []uint32
}

func newHotPathDriver(a *Agent, nflows int) *hotPathDriver {
	d := &hotPathDriver{
		a:    a,
		segs: make([]*packet.Datagram, nflows),
		acks: make([]*packet.Datagram, nflows),
		seqs: make([]uint32, nflows),
	}
	for i := 0; i < nflows; i++ {
		srv, cli := benchEPs(i)
		benchHandshake(a, srv, cli)
		d.segs[i] = packet.NewTCPDatagram(srv, cli, segLen)
		d.segs[i].TCP.Flags = packet.FlagACK | packet.FlagPSH
		d.acks[i] = packet.NewTCPDatagram(cli, srv, 0)
		d.acks[i].TCP.Flags = packet.FlagACK
		d.acks[i].TCP.Window = 4096
		d.seqs[i] = 1000
	}
	return d
}

func (d *hotPathDriver) step(i int) {
	fi := i % len(d.segs)
	seg := d.segs[fi]
	seg.TCP.Seq = d.seqs[fi]
	d.a.HandleDownlink(seg)
	disp := d.a.HandleWirelessAck(seg, true)
	for _, fa := range disp.ToSender {
		d.a.Recycle(fa)
	}
	d.seqs[fi] += segLen
	d.acks[fi].TCP.Ack = d.seqs[fi]
	d.a.HandleUplink(d.acks[fi])
}

// warm runs two full rounds over every flow so rings, the flow map, the
// datagram pool, and the scratch slices reach their steady-state sizes.
func (d *hotPathDriver) warm() {
	for i := 0; i < 2*len(d.segs); i++ {
		d.step(i)
	}
}

// BenchmarkAgentHotPath measures steady-state segment processing with 1k
// and 10k concurrent flows: one op is one segment's full lifecycle
// (downlink + wireless feedback + client ACK). Steady state must be
// allocation-free; mergeBenchJSON lands segments/sec and allocs/op in
// BENCH_fastack.json under `make bench-json`.
func BenchmarkAgentHotPath(b *testing.B) {
	for _, nflows := range []int{1000, 10000} {
		nflows := nflows
		b.Run(fmt.Sprintf("flows=%d", nflows), func(b *testing.B) {
			d := newHotPathDriver(New(DefaultConfig(), nil), nflows)
			d.warm()
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.step(i)
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
			segsPerSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(segsPerSec, "segs/s")
			mergeBenchJSON(b, "BENCH_fastack.json", map[string]float64{
				fmt.Sprintf("flows_%d_segments_per_sec", nflows): segsPerSec,
				fmt.Sprintf("flows_%d_allocs_per_op", nflows):    allocsPerOp,
			})
		})
	}
}

// BenchmarkAgentHotPathBatched is the same lifecycle with the wireless
// feedback delivered through HandleWirelessAckBatch in A-MPDU-sized groups
// of 16 segments per flow: one agent entry drains sixteen segments' ACK
// work into one coalesced fast ACK.
func BenchmarkAgentHotPathBatched(b *testing.B) {
	const nflows = 1000
	const burst = 16
	d := newHotPathDriver(New(DefaultConfig(), nil), nflows)
	d.warm()
	evs := make([]SegFate, 0, burst)
	bseg := make([]*packet.Datagram, burst)
	for i := range bseg {
		srv, cli := benchEPs(0)
		bseg[i] = packet.NewTCPDatagram(srv, cli, segLen)
		bseg[i].TCP.Flags = packet.FlagACK | packet.FlagPSH
	}
	step := func(i int) {
		fi := i % nflows
		srv, cli := benchEPs(fi)
		evs = evs[:0]
		for j := 0; j < burst; j++ {
			seg := bseg[j]
			seg.IP.Src, seg.IP.Dst = srv.Addr, cli.Addr
			seg.TCP.SrcPort, seg.TCP.DstPort = srv.Port, cli.Port
			seg.TCP.Seq = d.seqs[fi] + uint32(j*segLen)
			d.a.HandleDownlink(seg)
			evs = append(evs, SegFate{Dgram: seg, OK: true})
		}
		disp := d.a.HandleWirelessAckBatch(evs)
		for _, fa := range disp.ToSender {
			d.a.Recycle(fa)
		}
		d.seqs[fi] += burst * segLen
		d.acks[fi].TCP.Ack = d.seqs[fi]
		d.a.HandleUplink(d.acks[fi])
	}
	for i := 0; i < 2*nflows; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i)
	}
	b.StopTimer()
	segsPerSec := float64(b.N) * burst / b.Elapsed().Seconds()
	b.ReportMetric(segsPerSec, "segs/s")
	mergeBenchJSON(b, "BENCH_fastack.json", map[string]float64{
		"flows_1000_batched_segments_per_sec": segsPerSec,
	})
}
