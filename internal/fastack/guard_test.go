package fastack

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// guardConfig returns a checked, guard-enabled config with thresholds
// small enough to exercise transitions inside a unit test.
func guardConfig() Config {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	return cfg
}

// flowKey is the downlink 5-tuple the harness helpers produce.
func flowKey() packet.Flow { return data(1000).Flow() }

// buildDebt walks a flow through handshake and three delivered segments
// with no client ACKs: fack = 4000, seqTCP = 1000, debt = 3000.
func buildDebt(t *testing.T, h *harness) {
	t.Helper()
	h.handshake(t)
	for i := uint32(0); i < 3; i++ {
		h.a.HandleDownlink(data(1000 + i*segLen))
	}
	for i := uint32(0); i < 3; i++ {
		h.a.HandleWirelessAck(data(1000+i*segLen), true)
	}
	f := h.a.flows[flowKey()]
	if f.debtBytes() != 3000 {
		t.Fatalf("debt = %d, want 3000", f.debtBytes())
	}
}

func TestGuardDebtStallBypassesThenDrains(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)

	// Debt frozen past the stall timeout: the next event trips Bypass.
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass", st)
	}
	if s := h.a.Stats(); s.GuardBypasses != 1 {
		t.Fatalf("GuardBypasses = %d", s.GuardBypasses)
	}

	// No suppression in bypass: the client's ACK reaches the sender, and
	// progress moves the flow to Draining.
	disp := h.a.HandleUplink(clientAck(2000, 2048))
	if !disp.Forward {
		t.Fatal("bypassed flow suppressed a client ACK")
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardDraining {
		t.Fatalf("state = %v, want draining", st)
	}

	// Debt repaid: clean detach into pass-through, cache released.
	h.a.HandleUplink(clientAck(4000, 2048))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardPassThrough {
		t.Fatalf("state = %v, want passthrough", st)
	}
	if s := h.a.Stats(); s.GuardDrains != 1 {
		t.Fatalf("GuardDrains = %d", s.GuardDrains)
	}
	f := h.a.flows[flowKey()]
	if f.cache.Len() != 0 || f.cacheBytes != 0 {
		t.Fatalf("detached flow retains cache: %d entries %dB", f.cache.Len(), f.cacheBytes)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestGuardBypassStopsFastAcks(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000)) // trips debt_stall

	// Delivered segments no longer generate fast ACKs.
	if disp := h.a.HandleWirelessAck(data(4000), true); len(disp.ToSender) != 0 {
		t.Fatalf("bypassed flow emitted a fast ACK: %+v", disp)
	}
	// Downlink passes through untouched: nothing cached, no hole dup-ACKs
	// even for a gap.
	holes := h.a.Stats().HolesDetected
	if disp := h.a.HandleDownlink(data(9000)); !disp.Forward || len(disp.ToSender) != 0 {
		t.Fatalf("bypassed downlink: %+v", disp)
	}
	if h.a.Stats().HolesDetected != holes {
		t.Fatal("bypassed flow recorded a hole")
	}
}

func TestGuardBypassRepairsDebtHole(t *testing.T) {
	cfg := guardConfig()
	cfg.DupAckThreshold = 2
	h := newHarness(cfg)
	buildDebt(t, h)
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000))

	// The client is missing 2000..3000 — inside the debt range, so only
	// the agent can repair it. Dup-ACKs at threshold pull it from the
	// cache; the ACKs themselves still reach the sender.
	h.a.HandleUplink(clientAck(2000, 2048))
	h.a.HandleUplink(clientAck(2000, 2048))
	disp := h.a.HandleUplink(clientAck(2000, 2048))
	if !disp.Forward {
		t.Fatal("bypassed dup-ACK suppressed")
	}
	if len(disp.ToClient) != 1 || disp.ToClient[0].TCP.Seq != 2000 {
		t.Fatalf("expected local repair of 2000: %+v", disp)
	}

	// A MAC drop inside the debt range is also still repaired.
	if disp := h.a.HandleWirelessAck(data(3000), false); len(disp.ToClient) != 1 {
		t.Fatalf("expected debt redrive after MAC drop: %+v", disp)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestGuardWildAckSuspectThenBypass(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	f := h.a.flows[flowKey()]
	// No client progress for a full suspect window: anomalies now escalate.
	h.now += h.a.cfg.Guard.SuspectWindow + 50*sim.Millisecond

	// A cumulative ACK far beyond seq_high is corruption: forwarded, but
	// never folded into the flow state.
	wild := clientAck(f.seqHigh+5_000_000, 2048)
	if disp := h.a.HandleUplink(wild); !disp.Forward {
		t.Fatal("wild ACK must be forwarded")
	}
	if f.seqTCP != 1000 {
		t.Fatalf("wild ACK advanced seqTCP to %d", f.seqTCP)
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardSuspect {
		t.Fatalf("state = %v, want suspect", st)
	}
	// A second anomaly inside the suspect window is no coincidence.
	h.a.HandleUplink(clientAck(f.seqHigh+6_000_000, 2048))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass", st)
	}
	if s := h.a.Stats(); s.GuardSuspects != 1 || s.GuardBypasses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGuardSuspectDecaysToActive(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	f := h.a.flows[flowKey()]
	h.a.HandleUplink(clientAck(f.seqHigh+5_000_000, 2048))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardSuspect {
		t.Fatalf("state = %v, want suspect", st)
	}
	// A clean suspect window clears the verdict; fast-acking continues.
	h.now += h.a.cfg.Guard.SuspectWindow + sim.Millisecond
	h.a.HandleUplink(clientAck(2000, 2048))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardActive {
		t.Fatalf("state = %v, want active", st)
	}
	if disp := h.a.HandleDownlink(data(4000)); !disp.Forward {
		t.Fatal("recovered flow must keep forwarding")
	}
	if disp := h.a.HandleWirelessAck(data(4000), true); len(disp.ToSender) != 1 {
		t.Fatalf("recovered flow must keep fast-acking: %+v", disp)
	}
}

// TestGuardAnomaliesToleratedWhileProgressing pins the escalation gate:
// corrupted headers riding a stream that keeps delivering hold the flow in
// Suspect indefinitely instead of burning its FastACK service for good.
func TestGuardAnomaliesToleratedWhileProgressing(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	f := h.a.flows[flowKey()]
	next := uint32(2000)
	for i := 0; i < 10; i++ {
		h.now += 20 * sim.Millisecond
		h.a.HandleUplink(clientAck(f.seqHigh+5_000_000, 2048)) // corrupt ack
		h.a.HandleUplink(clientAck(next, 2048))                // real progress
		next += 100
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st == GuardBypass {
		t.Fatal("progressing flow tripped to bypass on survivable noise")
	}
	if h.a.Stats().GuardBypasses != 0 {
		t.Fatalf("stats: %+v", h.a.Stats())
	}
}

func TestGuardSeqJumpAnomaly(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	// No client progress for a full suspect window: anomalies now escalate.
	h.now += h.a.cfg.Guard.SuspectWindow + 50*sim.Millisecond

	// A sequence an implausible distance past seq_exp is treated as a
	// mangled header, not an upstream hole: forwarded untouched.
	jump := data(4000 + h.a.cfg.Guard.MaxSeqJump + 1)
	disp := h.a.HandleDownlink(jump)
	if !disp.Forward || len(disp.ToSender) != 0 {
		t.Fatalf("seq jump handling: %+v", disp)
	}
	if h.a.Stats().HolesDetected != 0 {
		t.Fatal("seq jump recorded as a hole")
	}
	f := h.a.flows[flowKey()]
	if f.hasHole() || f.seqHigh != 4000 {
		t.Fatalf("seq jump polluted flow state: %s", f)
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardSuspect {
		t.Fatalf("state = %v, want suspect", st)
	}
	h.a.HandleDownlink(jump)
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass", st)
	}
}

func TestGuardRetransmitStorm(t *testing.T) {
	cfg := guardConfig()
	cfg.DupAckThreshold = 2
	cfg.Guard.StormThreshold = 3
	h := newHarness(cfg)
	buildDebt(t, h)

	// The client dup-ACKs 2000 forever and the repairs change nothing:
	// after StormThreshold progress-free local retransmits the guard
	// concludes the repair loop is pathological.
	for round := 0; round < 3; round++ {
		h.a.HandleUplink(clientAck(2000, 2048))
		h.a.HandleUplink(clientAck(2000, 2048))
		h.a.HandleUplink(clientAck(2000, 2048))
		h.now += h.a.cfg.RtxGuard + sim.Millisecond
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass after storm", st)
	}
	if s := h.a.Stats(); s.GuardBypasses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGuardStormResetOnProgress(t *testing.T) {
	cfg := guardConfig()
	cfg.DupAckThreshold = 2
	cfg.Guard.StormThreshold = 3
	h := newHarness(cfg)
	buildDebt(t, h)

	// Two retransmits, then the client advances: healthy §5.7 bad-hint
	// repair, not a storm.
	h.a.HandleUplink(clientAck(2000, 2048))
	h.a.HandleUplink(clientAck(2000, 2048))
	h.a.HandleUplink(clientAck(2000, 2048))
	h.now += h.a.cfg.RtxGuard + sim.Millisecond
	h.a.HandleUplink(clientAck(2000, 2048))
	h.a.HandleUplink(clientAck(2000, 2048))
	h.a.HandleUplink(clientAck(3000, 2048)) // progress resets the counter
	h.now += h.a.cfg.RtxGuard + sim.Millisecond
	h.a.HandleUplink(clientAck(3000, 2048))
	h.a.HandleUplink(clientAck(3000, 2048))
	h.a.HandleUplink(clientAck(3000, 2048))
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardActive {
		t.Fatalf("state = %v, want active (progress between bursts)", st)
	}
}

func TestRSTWithDebtDrainsFirst(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)

	rst := data(4000)
	rst.TCP.Flags = packet.FlagRST
	rst.PayloadLen = 0
	if disp := h.a.HandleDownlink(rst); !disp.Forward {
		t.Fatal("RST must be forwarded")
	}
	// The flow still owes [1000, 4000): state is retained in Bypass until
	// the client's ACKs catch up.
	f, ok := h.a.flows[flowKey()]
	if !ok {
		t.Fatal("RST discarded a flow carrying fast-ACK debt")
	}
	if f.gstate != GuardBypass {
		t.Fatalf("state = %v, want bypass", f.gstate)
	}
	if !f.cacheCovers(f.seqTCP, f.seqFack) {
		t.Fatal("cache no longer covers the debt range")
	}

	// Debt repaid: the tombstone is debt-free, so a second RST (or Sweep)
	// may discard it.
	h.a.HandleUplink(clientAck(4000, 2048))
	if disp := h.a.HandleDownlink(rst); !disp.Forward {
		t.Fatal("RST must be forwarded")
	}
	if _, ok := h.a.flows[flowKey()]; ok {
		t.Fatal("debt-free RST should drop the flow")
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestSweepRetainsDebtUntilDrainExpiry(t *testing.T) {
	cfg := guardConfig()
	cfg.IdleExpiry = sim.Minute
	cfg.Guard.DrainExpiry = sim.Minute
	h := newHarness(cfg)
	buildDebt(t, h)

	// Past IdleExpiry but inside the drain grace: retained and bypassed.
	h.now += 90 * sim.Second
	if n := h.a.Sweep(); n != 0 {
		t.Fatalf("Sweep removed %d flows carrying debt", n)
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass (idle_debt)", st)
	}
	// Past IdleExpiry + DrainExpiry: the drain failed; give up.
	h.now += 60 * sim.Second
	if n := h.a.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d flows, want 1", n)
	}
}

func TestSweepStillExpiresDebtFreeFlows(t *testing.T) {
	cfg := guardConfig()
	cfg.IdleExpiry = sim.Minute
	h := newHarness(cfg)
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	h.a.HandleWirelessAck(data(1000), true)
	h.a.HandleUplink(clientAck(2000, 2048)) // debt repaid
	h.now += 2 * sim.Minute
	if n := h.a.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d flows, want 1", n)
	}
}

func TestExportImportCarriesGuardState(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000)) // bypass via debt_stall

	ex, ok := h.a.Export(flowKey())
	if !ok {
		t.Fatal("export failed")
	}
	if ex.Guard != GuardBypass || ex.DebtAtBypass != 3000 {
		t.Fatalf("exported guard = %v debt = %d", ex.Guard, ex.DebtAtBypass)
	}

	// The roam-to agent must not resurrect the flow into fast-acking, and
	// must not impersonate the client with a resync ACK.
	h2 := newHarness(guardConfig())
	h2.now = h.now
	if resync := h2.a.Import(ex); resync != nil {
		t.Fatalf("bypassed import returned a resync ACK: %+v", resync)
	}
	if st, _ := h2.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("imported state = %v, want bypass", st)
	}
	// The debt drains on the new AP.
	h2.a.HandleUplink(clientAck(4000, 2048))
	if st, _ := h2.a.FlowGuardState(flowKey()); st != GuardPassThrough {
		t.Fatalf("state = %v, want passthrough", st)
	}
	if v := append(h.a.Violations(), h2.a.Violations()...); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestCacheEvictionNeverTouchesDebt(t *testing.T) {
	cfg := guardConfig()
	cfg.CacheLimitBytes = 2 * segLen
	h := newHarness(cfg)
	h.handshake(t)
	// Two segments delivered and fast-ACKed: debt = [1000, 3000), and the
	// cache is exactly at its budget holding that range.
	h.a.HandleDownlink(data(1000))
	h.a.HandleDownlink(data(2000))
	h.a.HandleWirelessAck(data(1000), true)
	h.a.HandleWirelessAck(data(2000), true)
	// A third segment needs cache space, but every evictable byte is
	// vouched for: eviction is refused (budget overrun) and the guard
	// trips cache_thrash.
	h.a.HandleDownlink(data(3000))

	f := h.a.flows[flowKey()]
	if !f.cacheCovers(f.seqTCP, f.seqFack) {
		t.Fatal("eviction broke debt coverage")
	}
	if st, _ := h.a.FlowGuardState(flowKey()); st != GuardBypass {
		t.Fatalf("state = %v, want bypass (cache_thrash)", st)
	}
	if v := h.a.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestSYNResetsStaleStateAndGuard(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	h.now += h.a.cfg.Guard.DebtStallTimeout + sim.Millisecond
	h.a.HandleDownlink(data(4000)) // bypass

	// A fresh SYN on the same 5-tuple is a new connection: old cache,
	// debt, and guard verdicts must not leak into it.
	syn := packet.NewTCPDatagram(serverEP, clientEP, 0)
	syn.TCP.Seq = 70000
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.WindowScale = 7
	h.a.HandleDownlink(syn)
	f := h.a.flows[flowKey()]
	if f.gstate != GuardActive || f.cache.Len() != 0 || f.debtBytes() != 0 {
		t.Fatalf("SYN left stale state: %s", f)
	}
	if f.seqExp != 70001 {
		t.Fatalf("seqExp = %d, want 70001", f.seqExp)
	}
}

// TestInvariantCheckerFires is the positive control: a hand-corrupted flow
// must trip the checker (everything else in this file asserts it stays
// silent on legal histories).
func TestInvariantCheckerFires(t *testing.T) {
	h := newHarness(guardConfig())
	buildDebt(t, h)
	f := h.a.flows[flowKey()]

	f.seqFack = f.seqExp + 5000 // fast-ACK beyond the wire frontier
	h.a.checkFlow(f)
	if h.a.Stats().InvariantViolations == 0 || len(h.a.Violations()) == 0 {
		t.Fatal("checker missed seq_fack > seq_exp")
	}

	h2 := newHarness(guardConfig())
	buildDebt(t, h2)
	f2 := h2.a.flows[flowKey()]
	f2.gstate = GuardDraining
	f2.releaseCache() // debt range now uncovered
	f2.cacheBytes = 0
	h2.a.checkFlow(f2)
	if h2.a.Stats().InvariantViolations == 0 {
		t.Fatal("checker missed an uncovered debt range")
	}
}

func TestGuardDisableRestoresLegacyLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Guard.Disable = true
	h := newHarness(cfg)
	buildDebt(t, h)

	// With the guard off, RST discards the flow debt or not — the
	// pre-guard contract.
	rst := data(4000)
	rst.TCP.Flags = packet.FlagRST
	rst.PayloadLen = 0
	h.a.HandleDownlink(rst)
	if _, ok := h.a.flows[flowKey()]; ok {
		t.Fatal("disabled guard must not retain RST flows")
	}
}
