package fastack

import (
	"repro/internal/obs"
)

// FastACK observability (scope "fastack" on the process-wide default
// registry). Agents are per-AP and their Stats() snapshots stay the
// per-instance API; the obs counters aggregate across every agent in the
// process so one -metrics endpoint shows fleet-wide FastACK activity.
// Each counter bump is a single atomic add on the datapath.
//
// Metric inventory:
//
//	fastack.fast_acks_sent      proactive TCP ACKs generated toward senders
//	fastack.client_acks_dropped client duplicate ACKs suppressed
//	fastack.cache_hits          retransmission-cache lookups that served
//	fastack.cache_misses        lookups for segments not (or no longer) held
//	fastack.cache_evictions     per-flow limit-forced evictions (limit too
//	                            small or purge outrun by the sender)
//	fastack.cache_evictions_shared
//	                            segments reclaimed from LRU flows by the
//	                            cross-flow cache budget
//	fastack.cache_budget_overruns
//	                            inserts that left the shared budget overrun
//	                            (every evictable byte vouched) — each trips
//	                            the inserting flow's cache_thrash guard
//	fastack.local_retransmits   segments re-driven from the cache
//	fastack.window_updates      explicit window-update ACKs after a clamp
//	fastack.ampdu_bytes         bytes coalesced per fast ACK — the agent's
//	                            proxy for delivered A-MPDU size (§5.2: one
//	                            block ACK covers one aggregate)
//	fastack.ampdu_segs          MPDUs coalesced per fast ACK
//	fastack.adv_window_bytes    rewritten advertised window per generated
//	                            ACK (0 ⇒ sender deliberately stalled)
//	fastack.guard_suspects      flows parked in Suspect by a soft anomaly
//	fastack.guard_bypasses      flows tripped into Bypass (all reasons)
//	fastack.guard_bypass_<r>    bypasses by reason: storm, debt_stall,
//	                            seq_jump, wild_ack, cache_thrash, rst,
//	                            idle_debt
//	fastack.guard_drained       bypassed flows whose debt drained to zero
//	fastack.guard_invariant_violations
//	                            runtime safety-invariant trips (must be 0)
//	fastack.guard_debt_bytes    fast-ACK debt carried into Bypass
//	fastack.guard_drain_ms      Bypass → PassThrough drain duration
type fastackMetrics struct {
	fastAcksSent      *obs.Counter
	clientAcksDropped *obs.Counter
	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	cacheEvictions    *obs.Counter
	sharedEvictions   *obs.Counter
	sharedOverruns    *obs.Counter
	localRetransmits  *obs.Counter
	windowUpdates     *obs.Counter
	ampduBytes        *obs.Histogram
	ampduSegs         *obs.Histogram
	advWindow         *obs.Histogram

	guardSuspects       *obs.Counter
	guardBypasses       *obs.Counter
	bypassReasons       map[GuardReason]*obs.Counter
	guardDrained        *obs.Counter
	invariantViolations *obs.Counter
	guardDebtBytes      *obs.Histogram
	guardDrainMs        *obs.Histogram
}

var obsm = func() *fastackMetrics {
	s := obs.Default().Scope("fastack")
	m := &fastackMetrics{
		fastAcksSent:      s.Counter("fast_acks_sent"),
		clientAcksDropped: s.Counter("client_acks_dropped"),
		cacheHits:         s.Counter("cache_hits"),
		cacheMisses:       s.Counter("cache_misses"),
		cacheEvictions:    s.Counter("cache_evictions"),
		sharedEvictions:   s.Counter("cache_evictions_shared"),
		sharedOverruns:    s.Counter("cache_budget_overruns"),
		localRetransmits:  s.Counter("local_retransmits"),
		windowUpdates:     s.Counter("window_updates"),
		ampduBytes:        s.Histogram("ampdu_bytes", "B"),
		ampduSegs:         s.Histogram("ampdu_segs", "segs"),
		advWindow:         s.Histogram("adv_window_bytes", "B"),

		guardSuspects:       s.Counter("guard_suspects"),
		guardBypasses:       s.Counter("guard_bypasses"),
		bypassReasons:       map[GuardReason]*obs.Counter{},
		guardDrained:        s.Counter("guard_drained"),
		invariantViolations: s.Counter("guard_invariant_violations"),
		guardDebtBytes:      s.Histogram("guard_debt_bytes", "B"),
		guardDrainMs:        s.Histogram("guard_drain_ms", "ms"),
	}
	for _, r := range guardReasons {
		m.bypassReasons[r] = s.Counter("guard_bypass_" + string(r))
	}
	return m
}()
