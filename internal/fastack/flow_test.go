package fastack

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func seg(seq uint32, n int) *packet.Datagram {
	d := packet.NewTCPDatagram(serverEP, clientEP, n)
	d.TCP.Seq = seq
	return d
}

// Property: whatever order 802.11 ACKs are enqueued in, q_seq stays
// sorted and disjoint, and drainContiguous never advances past a gap.
func TestQuickQSeqSortedDisjoint(t *testing.T) {
	f := func(raw []uint8) bool {
		fl := &flowState{}
		fl.initAt(0)
		present := map[uint32]bool{}
		for _, r := range raw {
			s := uint32(r%32) * 100
			fl.enqueueAcked(s, 100)
			present[s] = true
		}
		for i := 1; i < fl.qSeq.Len(); i++ {
			if !seqLT(fl.qSeq.At(i-1).seq, fl.qSeq.At(i).seq) {
				return false
			}
		}
		fack, _ := fl.drainContiguous()
		// fack must equal the length of the contiguous prefix 0,100,...
		want := uint32(0)
		for present[want] {
			want += 100
		}
		return fack == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache stays sorted, within its byte limit, and lookups
// find exactly the inserted, unpurged segments.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(inserts []uint8, purgeAt uint8) bool {
		fl := &flowState{}
		fl.initAt(0)
		const limit = 10 * 100
		live := map[uint32]bool{}
		for _, r := range inserts {
			s := uint32(r%64) * 100
			fl.cacheInsert(seg(s, 100), limit)
			live[s] = true
		}
		if fl.cacheBytes > limit {
			return false
		}
		for i := 1; i < fl.cache.Len(); i++ {
			if !seqLT(fl.cache.At(i-1).seq, fl.cache.At(i).seq) {
				return false
			}
		}
		purge := uint32(purgeAt%64) * 100
		fl.cachePurge(purge)
		for ci := 0; ci < fl.cache.Len(); ci++ {
			c := fl.cache.At(ci)
			if seqLT(c.seq, purge) && seqLEQ(c.end, purge) {
				return false // purged range still present
			}
			if d := fl.cacheLookup(c.seq); d == nil || d.TCP.Seq != c.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: addAbove + advanceExp behave like a hole tracker: after
// receiving any set of segments above seqExp and then filling the gap up
// to their start, seqExp lands at the end of the merged contiguous run.
func TestQuickHoleAbsorption(t *testing.T) {
	f := func(raw []uint8) bool {
		fl := &flowState{}
		fl.initAt(1000)
		received := map[uint32]bool{}
		for _, r := range raw {
			s := 1000 + uint32(r%20+1)*100 // strictly above seqExp
			fl.addAbove(s, s+100)
			received[s] = true
		}
		// The sender retransmits the first missing segment at 1000.
		fl.advanceExp(1100)
		want := uint32(1100)
		for received[want] {
			want += 100
		}
		return fl.seqExp == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdvertisedWindowClamps(t *testing.T) {
	fl := &flowState{}
	fl.initAt(0)
	fl.clientWindow = 1000
	fl.seqHigh = 600
	fl.seqTCP = 0
	if got := fl.advertisedWindow(0); got != 400 {
		t.Fatalf("rxwin-outbytes = %d", got)
	}
	// Queue budget binds harder.
	fl.seqFack = 100 // 500 bytes un-802.11-acked
	if got := fl.advertisedWindow(300); got != 0 {
		t.Fatalf("budget clamp = %d, want 0 (500 > 300)", got)
	}
	// Never negative.
	fl.seqHigh = 5000
	if got := fl.advertisedWindow(0); got != 0 {
		t.Fatalf("negative window leaked: %d", got)
	}
}
