package fastack

import "fmt"

// Runtime invariant checker (enabled by Config.CheckInvariants, used by
// the chaos suite and the fuzz targets). It asserts the safety core the
// guard exists to protect:
//
//  1. the agent never fast-ACKs beyond bytes actually received from the
//     wire (seq_fack ≤ seq_exp ≤ seq_high);
//  2. a generated ACK's advertised window never exceeds the client's
//     scaled window;
//  3. while a bypassed flow drains, the retransmission cache covers the
//     entire debt range [seq_TCP, seq_fack) — the agent can always make
//     good on what it vouched for.
//
// A violation is a bug in the agent, never in the network: the checks
// count into Stats().InvariantViolations, the fastack obs scope, and a
// bounded message log readable via Violations().

// maxViolationLog bounds the retained violation messages.
const maxViolationLog = 32

func (a *Agent) violate(f *flowState, format string, args ...any) {
	a.stats.InvariantViolations++
	obsm.invariantViolations.Inc()
	if len(a.violations) < maxViolationLog {
		msg := fmt.Sprintf(format, args...)
		a.violations = append(a.violations, fmt.Sprintf("%s [%s]", msg, f))
	}
}

// Violations returns the retained invariant-violation messages.
func (a *Agent) Violations() []string { return a.violations }

// checkFastAck validates a generated ACK at emission time (invariants 1
// and 2).
func (a *Agent) checkFastAck(f *flowState, ackNo uint32, advBytes int) {
	if !a.cfg.CheckInvariants {
		return
	}
	if seqLT(f.seqExp, ackNo) {
		a.violate(f, "fast-ACK %d beyond wire frontier seq_exp=%d", ackNo, f.seqExp)
	}
	if cw := f.clientWindow; cw >= 0 && advBytes > cw {
		a.violate(f, "advertised %dB exceeds client window %dB", advBytes, cw)
	}
}

// checkFlow validates a flow's structural invariants after a mutation.
func (a *Agent) checkFlow(f *flowState) {
	if !a.cfg.CheckInvariants || !f.initialized {
		return
	}
	if seqLT(f.seqExp, f.seqFack) {
		a.violate(f, "seq_fack=%d ahead of seq_exp=%d", f.seqFack, f.seqExp)
	}
	if seqLT(f.seqHigh, f.seqExp) {
		a.violate(f, "seq_exp=%d ahead of seq_high=%d", f.seqExp, f.seqHigh)
	}
	if (f.gstate == GuardBypass || f.gstate == GuardDraining) && !a.cfg.DisableCache {
		if !f.cacheCovers(f.seqTCP, f.seqFack) {
			a.violate(f, "cache does not cover debt range [%d, %d)", f.seqTCP, f.seqFack)
		}
	}
}

// cacheCovers reports whether the cache, walked in seq order, covers every
// byte of [left, right) with no gap.
func (f *flowState) cacheCovers(left, right uint32) bool {
	if !seqLT(left, right) {
		return true
	}
	cur := left
	for i := 0; i < f.cache.Len(); i++ {
		c := f.cache.At(i)
		if seqLEQ(c.end, cur) {
			continue
		}
		if seqLT(cur, c.seq) {
			return false // gap before this entry
		}
		cur = c.end
		if seqLEQ(right, cur) {
			return true
		}
	}
	return false
}
