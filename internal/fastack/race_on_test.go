//go:build race

package fastack

// raceEnabled: see race_off_test.go.
const raceEnabled = true
