package fastack

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

// TestHoleHandlingTable drives the holes-vector machinery (addAbove /
// advanceExp / hasHole) through named scenarios: each case applies a
// sequence of out-of-order arrivals and hole fills and checks where
// seqExp lands and whether holes remain.
func TestHoleHandlingTable(t *testing.T) {
	type above struct{ left, right uint32 }
	cases := []struct {
		name    string
		above   []above  // out-of-order ranges received beyond seqExp
		fills   []uint32 // successive advanceExp(end) calls (hole fills)
		wantExp uint32
		wantHol bool
	}{
		{
			name:    "single hole filled exactly",
			above:   []above{{2000, 3000}},
			fills:   []uint32{2000}, // retransmit of 1000..2000 arrives
			wantExp: 3000,
		},
		{
			name:    "fill bridges two merged ranges",
			above:   []above{{2000, 3000}, {3000, 4000}},
			fills:   []uint32{2000},
			wantExp: 4000,
		},
		{
			name:    "overlapping ranges merge",
			above:   []above{{2000, 3500}, {3000, 4000}},
			fills:   []uint32{2000},
			wantExp: 4000,
		},
		{
			name:    "second hole survives the first fill",
			above:   []above{{2000, 3000}, {5000, 6000}},
			fills:   []uint32{2000},
			wantExp: 3000,
			wantHol: true,
		},
		{
			name:    "two fills drain two holes",
			above:   []above{{2000, 3000}, {5000, 6000}},
			fills:   []uint32{2000, 5000},
			wantExp: 6000,
		},
		{
			name:    "fill below current exp is a no-op",
			above:   []above{{5000, 6000}},
			fills:   []uint32{500},
			wantExp: 1000,
			wantHol: true,
		},
		{
			name:    "duplicate range collapses to one hole",
			above:   []above{{2000, 3000}, {2000, 3000}, {2000, 3000}},
			fills:   []uint32{2000},
			wantExp: 3000,
		},
		{
			name:    "fill overshooting into a range absorbs it",
			above:   []above{{2000, 3000}},
			fills:   []uint32{2500},
			wantExp: 3000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &flowState{}
			f.initAt(1000)
			for _, a := range tc.above {
				f.addAbove(a.left, a.right)
			}
			for _, end := range tc.fills {
				f.advanceExp(end)
			}
			if f.seqExp != tc.wantExp {
				t.Errorf("seqExp = %d, want %d", f.seqExp, tc.wantExp)
			}
			if f.hasHole() != tc.wantHol {
				t.Errorf("hasHole = %v, want %v (above=%v)", f.hasHole(), tc.wantHol, f.above)
			}
		})
	}
}

// TestAdvertisedWindowTable pins rx'_win = rx_win − out_bytes with the
// queue-budget clamp (§5.5.2 plus the driver-queue guard) across the
// boundary cases.
func TestAdvertisedWindowTable(t *testing.T) {
	cases := []struct {
		name                     string
		clientWindow             int
		seqTCP, seqFack, seqHigh uint32
		budget                   int
		want                     int
	}{
		{name: "no outstanding data", clientWindow: 1000, seqTCP: 0, seqFack: 0, seqHigh: 0, want: 1000},
		{name: "outstanding subtracts", clientWindow: 1000, seqTCP: 0, seqFack: 600, seqHigh: 600, want: 400},
		{name: "exactly full", clientWindow: 1000, seqTCP: 0, seqFack: 1000, seqHigh: 1000, want: 0},
		{name: "overfull clamps to zero", clientWindow: 1000, seqTCP: 0, seqFack: 1000, seqHigh: 5000, want: 0},
		{name: "budget binds below client window", clientWindow: 100000, seqTCP: 0, seqFack: 100, seqHigh: 600, budget: 800, want: 300},
		{name: "budget exhausted", clientWindow: 100000, seqTCP: 0, seqFack: 100, seqHigh: 600, budget: 500, want: 0},
		{name: "budget slack keeps client bound", clientWindow: 700, seqTCP: 0, seqFack: 600, seqHigh: 600, budget: 100000, want: 100},
		{name: "zero budget disables the clamp", clientWindow: 100000, seqTCP: 0, seqFack: 0, seqHigh: 90000, budget: 0, want: 10000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &flowState{}
			f.initAt(0)
			f.clientWindow = tc.clientWindow
			f.seqTCP = tc.seqTCP
			f.seqFack = tc.seqFack
			f.seqHigh = tc.seqHigh
			if got := f.advertisedWindow(tc.budget); got != tc.want {
				t.Errorf("advertisedWindow(%d) = %d, want %d", tc.budget, got, tc.want)
			}
		})
	}
}

// TestCacheEvictionTable exercises the retransmission cache's byte-limit
// eviction: oldest-first, duplicate inserts free, the newest entry always
// survives, and accounting stays exact.
func TestCacheEvictionTable(t *testing.T) {
	type ins struct {
		seq     uint32
		n       int
		evicted int // bytes the insert must report evicted
	}
	cases := []struct {
		name      string
		limit     int
		inserts   []ins
		wantSeqs  []uint32 // surviving cache entries, in order
		wantBytes int
	}{
		{
			name:      "under limit keeps everything",
			limit:     5000,
			inserts:   []ins{{1000, 1000, 0}, {2000, 1000, 0}, {3000, 1000, 0}},
			wantSeqs:  []uint32{1000, 2000, 3000},
			wantBytes: 3000,
		},
		{
			name:      "overflow evicts oldest first",
			limit:     2000,
			inserts:   []ins{{1000, 1000, 0}, {2000, 1000, 0}, {3000, 1000, 1000}},
			wantSeqs:  []uint32{2000, 3000},
			wantBytes: 2000,
		},
		{
			name:      "duplicate insert is free",
			limit:     2000,
			inserts:   []ins{{1000, 1000, 0}, {2000, 1000, 0}, {1000, 1000, 0}},
			wantSeqs:  []uint32{1000, 2000},
			wantBytes: 2000,
		},
		{
			name:      "oversized segment evicts all but itself",
			limit:     1500,
			inserts:   []ins{{1000, 1000, 0}, {2000, 1000, 1000}, {3000, 2000, 1000}},
			wantSeqs:  []uint32{3000},
			wantBytes: 2000, // over limit, but the newest entry never self-evicts
		},
		{
			name:      "zero limit disables eviction",
			limit:     0,
			inserts:   []ins{{1000, 1000, 0}, {2000, 1000, 0}, {3000, 1000, 0}, {4000, 1000, 0}},
			wantSeqs:  []uint32{1000, 2000, 3000, 4000},
			wantBytes: 4000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &flowState{}
			f.initAt(0)
			for _, in := range tc.inserts {
				if got := f.cacheInsert(seg(in.seq, in.n), tc.limit); got != in.evicted {
					t.Errorf("insert seq=%d evicted %d bytes, want %d", in.seq, got, in.evicted)
				}
			}
			if f.cacheBytes != tc.wantBytes {
				t.Errorf("cacheBytes = %d, want %d", f.cacheBytes, tc.wantBytes)
			}
			if f.cache.Len() != len(tc.wantSeqs) {
				t.Fatalf("cache holds %d entries, want %d", f.cache.Len(), len(tc.wantSeqs))
			}
			for i, want := range tc.wantSeqs {
				if f.cache.At(i).seq != want {
					t.Errorf("cache[%d].seq = %d, want %d", i, f.cache.At(i).seq, want)
				}
			}
		})
	}
}

// TestCacheRange covers the SACK-repair lookup: overlap semantics on
// half-open [left, right) ranges.
func TestCacheRange(t *testing.T) {
	f := &flowState{}
	f.initAt(0)
	for _, s := range []uint32{1000, 2000, 3000, 4000} {
		f.cacheInsert(seg(s, 1000), 0)
	}
	cases := []struct {
		name        string
		left, right uint32
		want        []uint32
	}{
		{"full span", 1000, 5000, []uint32{1000, 2000, 3000, 4000}},
		{"interior", 2000, 4000, []uint32{2000, 3000}},
		{"partial overlap on both edges", 2500, 3500, []uint32{2000, 3000}},
		{"empty window", 2000, 2000, nil},
		{"before all entries", 0, 1000, nil},
		{"after all entries", 5000, 9000, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := f.cacheRange(tc.left, tc.right)
			if len(got) != len(tc.want) {
				t.Fatalf("cacheRange(%d, %d) returned %d segments, want %d",
					tc.left, tc.right, len(got), len(tc.want))
			}
			for i, d := range got {
				if d.TCP.Seq != tc.want[i] {
					t.Errorf("segment %d: seq %d, want %d", i, d.TCP.Seq, tc.want[i])
				}
			}
		})
	}
}

// TestSACKDrivenLocalRetransmit covers the SACK arm of
// retransmitFromCache: holes between the cumulative ACK and the SACKed
// blocks are repaired from the cache, SACK-covered data is not resent,
// and the per-event bound holds.
func TestSACKDrivenLocalRetransmit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupAckThreshold = 2
	h := newHarness(cfg)
	h.handshake(t)
	for i := uint32(0); i < 5; i++ {
		d := data(1000 + i*segLen)
		h.a.HandleDownlink(d)
		h.a.HandleWirelessAck(d, true)
	}
	// Client: has 1000 and 4000..6000, missing 2000 and 3000.
	sacked := []packet.SACKBlock{{Left: 4000, Right: 6000}}
	mkDup := func() *packet.Datagram {
		d := clientAck(2000, 4096)
		d.TCP.SACK = sacked
		return d
	}
	h.a.HandleUplink(mkDup())
	h.a.HandleUplink(mkDup()) // dup #1
	disp := h.a.HandleUplink(mkDup())
	var seqs []uint32
	for _, d := range disp.ToClient {
		seqs = append(seqs, d.TCP.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 2000 || seqs[1] != 3000 {
		t.Fatalf("retransmitted %v, want [2000 3000]", seqs)
	}
	if got := h.a.Stats().LocalRetransmits; got != 2 {
		t.Fatalf("LocalRetransmits = %d, want 2", got)
	}
}

// TestAgentHousekeeping covers the small API surface around the flow
// table: zero-value config defaults, Export on an unknown flow, Drop, and
// the debug String rendering.
func TestAgentHousekeeping(t *testing.T) {
	a := New(Config{}, nil)
	if a.cfg.CacheLimitBytes != 4<<20 || a.cfg.DupAckThreshold != 2 ||
		a.cfg.RtxGuard == 0 || a.cfg.IdleExpiry == 0 {
		t.Fatalf("zero-value config not defaulted: %+v", a.cfg)
	}
	if _, ok := a.Export(data(1000).Flow()); ok {
		t.Fatal("Export of an untracked flow succeeded")
	}

	h := newHarness(DefaultConfig())
	h.handshake(t)
	h.a.HandleDownlink(data(1000))
	key := data(1000).Flow()
	if s := h.a.flows[key].String(); !strings.Contains(s, "exp=2000") {
		t.Fatalf("String() = %q, want it to render exp=2000", s)
	}
	h.a.Drop(key)
	if h.a.FlowCount() != 0 {
		t.Fatalf("Drop left %d flows", h.a.FlowCount())
	}
}
