package fastack

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestSteadyStateZeroAllocs pins the tentpole guarantee as a tier-1 test,
// not just a benchmark number: with 1k concurrent flows warmed up, the
// steady-state segment lifecycle (HandleDownlink + HandleWirelessAck +
// HandleUplink) performs zero heap allocations per segment.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc regression is pinned in non-race runs")
	}
	const nflows = 1000
	d := newHotPathDriver(New(DefaultConfig(), nil), nflows)
	d.warm()
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		d.step(i)
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state hot path allocates %.2f allocs/op, want 0", avg)
	}
}

// TestRunningCountersMatchScan drives randomized many-flow traffic —
// including guard trips, sweeps, drops, and roaming export/import — and
// asserts after every operation that the O(1) running counters behind
// DebtBytes, UndrainedBypassedFlows, and SharedCacheBytes agree with a
// full flow-table scan.
func TestRunningCountersMatchScan(t *testing.T) {
	for _, seed := range []int64{1, 17, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultConfig()
			cfg.CheckInvariants = true
			cfg.IdleExpiry = 2 * sim.Second
			cfg.Guard.DrainExpiry = 2 * sim.Second
			h := newHarness(cfg)
			st := newScenario(h, 12)
			for op := 0; op < 4000; op++ {
				st.randomOp(rng)
				if got, want := h.a.DebtBytes(), h.a.debtBytesScan(); got != want {
					t.Fatalf("op %d: DebtBytes=%d scan=%d", op, got, want)
				}
				if got, want := h.a.UndrainedBypassedFlows(), h.a.undrainedScan(); got != want {
					t.Fatalf("op %d: UndrainedBypassedFlows=%d scan=%d", op, got, want)
				}
				if got, want := h.a.SharedCacheBytes(), h.a.sharedCacheScan(); got != want {
					t.Fatalf("op %d: SharedCacheBytes=%d scan=%d", op, got, want)
				}
			}
			if v := h.a.Violations(); len(v) != 0 {
				t.Fatalf("invariant violations: %v", v)
			}
		})
	}
}

// TestSharedBudgetProperties drives random insert/vouch/drain/drop/sweep
// interleavings across N flows against a deliberately tiny shared budget
// and asserts the budget's safety contract after every operation:
//
//  1. the shared byte accounting is exact (counter == scan) and never
//     negative;
//  2. vouched [seq_TCP, seq_fack) bytes are never evicted — the cache
//     covers the debt range of every flow that has one;
//  3. whenever the budget stands overrun after an insert, every flow's
//     front cache entry is vouched (or is the inserting flow's only
//     entry): there was nothing legal left to evict;
//  4. flows holding no cache bytes are not members of the eviction list;
//  5. Drop/Sweep return every flow's bytes: after removing all flows the
//     shared accounting reads zero and the datagram pool holds no
//     duplicate entries (no leak, no double-free).
func TestSharedBudgetProperties(t *testing.T) {
	for _, seed := range []int64{3, 42, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultConfig()
			cfg.CheckInvariants = true
			cfg.CacheLimitBytes = 24 * segLen
			cfg.SharedCacheBudgetBytes = 40 * segLen
			cfg.IdleExpiry = 2 * sim.Second
			cfg.Guard.DrainExpiry = 2 * sim.Second
			h := newHarness(cfg)
			st := newScenario(h, 10)
			for op := 0; op < 5000; op++ {
				inserted := st.randomOp(rng)
				bud := h.a.bud
				if bud.used != h.a.sharedCacheScan() || bud.used < 0 {
					t.Fatalf("op %d: budget accounting used=%d scan=%d", op, bud.used, h.a.sharedCacheScan())
				}
				for _, f := range h.a.flows {
					if f.debtBytes() > 0 && !f.cacheCovers(f.seqTCP, f.seqFack) {
						t.Fatalf("op %d: vouched range [%d,%d) evicted on %v", op, f.seqTCP, f.seqFack, f.flow)
					}
					if f.cacheBytes == 0 && f.inLRU {
						t.Fatalf("op %d: empty flow still in eviction list: %v", op, f.flow)
					}
					if f.cacheBytes > 0 && !f.inLRU {
						t.Fatalf("op %d: flow holding %dB not in eviction list: %v", op, f.cacheBytes, f.flow)
					}
				}
				if inserted != nil && bud.used > bud.limit {
					for v := bud.lruHead; v != nil; v = v.lruNext {
						old := v.cache.At(0)
						vouched := v.debtBytes() > 0 && seqLT(v.seqTCP, old.end) && seqLT(old.seq, v.seqFack)
						if !vouched && !(v == inserted && v.cache.Len() == 1) {
							t.Fatalf("op %d: budget overrun (%d > %d) with evictable front seq=%d on %v",
								op, bud.used, bud.limit, old.seq, v.flow)
						}
					}
				}
			}
			// Tear everything down: all bytes must come home.
			for key := range h.a.flows {
				h.a.Drop(key)
			}
			if h.a.bud.used != 0 || h.a.DebtBytes() != 0 || h.a.UndrainedBypassedFlows() != 0 {
				t.Fatalf("leak after dropping all flows: used=%d debt=%d undrained=%d",
					h.a.bud.used, h.a.DebtBytes(), h.a.UndrainedBypassedFlows())
			}
			seen := map[*packet.Datagram]bool{}
			for _, d := range h.a.bud.pool.free {
				if seen[d] {
					t.Fatal("datagram pooled twice (double-free)")
				}
				seen[d] = true
			}
			if v := h.a.Violations(); len(v) != 0 {
				t.Fatalf("invariant violations: %v", v)
			}
		})
	}
}

// TestBatchFeedbackEquivalence drives the same downlink traffic and the
// same wireless-feedback event sequence through two agents — one receiving
// feedback per segment via HandleWirelessAck, one receiving it as a single
// HandleWirelessAckBatch — and asserts the per-flow protocol state (fast-ack
// point, cache contents, debt, q_seq) ends identical, the batched agent's
// coalesced fast ACKs land on the same cumulative ACK numbers, and MAC-drop
// cache redrives are emitted for the same segments.
func TestBatchFeedbackEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	perSeg := newHarness(DefaultConfig())
	batched := newHarness(DefaultConfig())
	const nflows = 6

	type sent struct {
		fi  int
		seg *packet.Datagram
		ok  bool
	}
	nextSeq := make([]uint32, nflows)
	for i := 0; i < nflows; i++ {
		srv, cli := benchEPs(i)
		benchHandshake(perSeg.a, srv, cli)
		benchHandshake(batched.a, srv, cli)
		nextSeq[i] = 1000
	}
	for round := 0; round < 50; round++ {
		var events []sent
		for i := 0; i < 40; i++ {
			fi := rng.Intn(nflows)
			srv, cli := benchEPs(fi)
			seg := packet.NewTCPDatagram(srv, cli, segLen)
			seg.TCP.Flags = packet.FlagACK | packet.FlagPSH
			seg.TCP.Seq = nextSeq[fi]
			nextSeq[fi] += segLen
			perSeg.a.HandleDownlink(seg)
			batched.a.HandleDownlink(seg.Clone())
			events = append(events, sent{fi: fi, seg: seg, ok: rng.Intn(10) != 0})
		}
		// Shuffle fates so feedback interleaves flows like a real TXOP.
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

		var perAcks, perRedrives []uint32
		lastAck := map[int]uint32{}
		for _, ev := range events {
			disp := perSeg.a.HandleWirelessAck(ev.seg, ev.ok)
			for _, d := range disp.ToSender {
				perAcks = append(perAcks, d.TCP.Ack)
				lastAck[ev.fi] = d.TCP.Ack
			}
			for _, d := range disp.ToClient {
				perRedrives = append(perRedrives, d.TCP.Seq)
			}
		}
		evs := make([]SegFate, len(events))
		for i, ev := range events {
			evs[i] = SegFate{Dgram: ev.seg, OK: ev.ok}
		}
		bd := batched.a.HandleWirelessAckBatch(evs)
		var batchRedrives []uint32
		for _, d := range bd.ToClient {
			batchRedrives = append(batchRedrives, d.TCP.Seq)
		}
		if len(batchRedrives) != len(perRedrives) {
			t.Fatalf("round %d: redrives differ: per-seg %v batch %v", round, perRedrives, batchRedrives)
		}
		for i := range batchRedrives {
			if batchRedrives[i] != perRedrives[i] {
				t.Fatalf("round %d: redrive %d: per-seg seq %d, batch seq %d", round, i, perRedrives[i], batchRedrives[i])
			}
		}
		// The batched agent coalesces: at most one fast ACK per flow, each
		// landing on the same final cumulative point the per-segment agent
		// reached.
		if len(bd.ToSender) > nflows {
			t.Fatalf("round %d: %d fast ACKs from one batch across %d flows", round, len(bd.ToSender), nflows)
		}
		for _, d := range bd.ToSender {
			key := d.Flow().Reverse() // generated ACK travels client→server
			if f := batched.a.flows[key]; f == nil || d.TCP.Ack != f.seqFack {
				t.Fatalf("round %d: batch fast ACK %d does not land on seq_fack", round, d.TCP.Ack)
			}
		}
		for fi := 0; fi < nflows; fi++ {
			srv, cli := benchEPs(fi)
			key := packet.Flow{Proto: packet.ProtoTCP, Src: srv, Dst: cli}
			fp, fb := perSeg.a.flows[key], batched.a.flows[key]
			if fp.seqFack != fb.seqFack || fp.seqExp != fb.seqExp || fp.seqTCP != fb.seqTCP {
				t.Fatalf("round %d flow %d: per-seg %v, batched %v", round, fi, fp, fb)
			}
			if fp.cacheBytes != fb.cacheBytes || fp.qSeq.Len() != fb.qSeq.Len() {
				t.Fatalf("round %d flow %d: cache/qseq diverge: per-seg %v, batched %v", round, fi, fp, fb)
			}
			if want, ok := lastAck[fi]; ok && want != fb.seqFack {
				// The per-segment agent's final fast ACK for the flow must
				// match the batched agent's coalesced cumulative point.
				t.Fatalf("round %d flow %d: final per-seg ack %d, batched seq_fack %d", round, fi, want, fb.seqFack)
			}
			// Keep debt bounded so rounds stay in steady state.
			ack := packet.NewTCPDatagram(cli, srv, 0)
			ack.TCP.Flags = packet.FlagACK
			ack.TCP.Window = 4096
			ack.TCP.Ack = fp.seqFack
			perSeg.a.HandleUplink(ack)
			batched.a.HandleUplink(ack.Clone())
		}
	}
	sp, sb := perSeg.a.Stats(), batched.a.Stats()
	if sp.ClientAcksDropped != sb.ClientAcksDropped || sp.WirelessRedrives != sb.WirelessRedrives {
		t.Fatalf("stats diverge: per-seg %+v, batched %+v", sp, sb)
	}
}

// scenario drives one agent with randomized but protocol-shaped many-flow
// traffic for the counter-equivalence and budget property tests. Operations
// cover the whole lifecycle: in-order data, holes, wireless feedback (both
// fates), client ACKs (progress, duplicates, wild), RSTs, sweeps, drops,
// and roaming export/import.
type scenario struct {
	h     *harness
	flows []*scenarioFlow
}

type scenarioFlow struct {
	idx     int
	srv     packet.Endpoint
	cli     packet.Endpoint
	nextSeq uint32 // next downlink byte
	sent    []*packet.Datagram
	acked   uint32 // client cumulative ACK
}

func newScenario(h *harness, nflows int) *scenario {
	s := &scenario{h: h}
	for i := 0; i < nflows; i++ {
		s.flows = append(s.flows, s.open(i))
	}
	return s
}

func (s *scenario) open(i int) *scenarioFlow {
	srv, cli := benchEPs(i)
	benchHandshake(s.h.a, srv, cli)
	return &scenarioFlow{idx: i, srv: srv, cli: cli, nextSeq: 1000, acked: 1000}
}

func (s *scenario) key(f *scenarioFlow) packet.Flow {
	return packet.Flow{Proto: packet.ProtoTCP, Src: f.srv, Dst: f.cli}
}

// randomOp performs one random operation; it returns the flow state a
// downlink insert landed on (for the budget-overrun assertion), or nil.
func (s *scenario) randomOp(rng *rand.Rand) *flowState {
	f := s.flows[rng.Intn(len(s.flows))]
	switch op := rng.Intn(20); {
	case op < 8: // downlink data, occasionally jumping a hole
		seq := f.nextSeq
		if rng.Intn(8) == 0 {
			seq += segLen * uint32(1+rng.Intn(3)) // upstream loss
		}
		d := packet.NewTCPDatagram(f.srv, f.cli, segLen)
		d.TCP.Flags = packet.FlagACK | packet.FlagPSH
		d.TCP.Seq = seq
		f.nextSeq = seq + segLen
		s.h.a.HandleDownlink(d)
		f.sent = append(f.sent, d)
		if len(f.sent) > 64 {
			f.sent = f.sent[len(f.sent)-64:]
		}
		return s.h.a.flows[s.key(f)]
	case op < 13: // wireless feedback for a recently sent segment
		if len(f.sent) == 0 {
			return nil
		}
		d := f.sent[rng.Intn(len(f.sent))]
		s.h.a.HandleWirelessAck(d, rng.Intn(6) != 0)
	case op < 17: // client cumulative ACK: progress, duplicate, or wild
		ack := f.acked
		switch rng.Intn(4) {
		case 0: // duplicate (dup-ACK retransmit path)
		case 1:
			ack = f.nextSeq + 100000*uint32(rng.Intn(2)) // frontier or wild
		default:
			if st := s.h.a.flows[s.key(f)]; st != nil && seqLT(f.acked, st.seqFack) {
				span := st.seqFack - f.acked
				ack = f.acked + uint32(rng.Int63n(int64(span))+1)
			}
		}
		a := packet.NewTCPDatagram(f.cli, f.srv, 0)
		a.TCP.Flags = packet.FlagACK
		a.TCP.Window = 4096
		a.TCP.Ack = ack
		s.h.a.HandleUplink(a)
		if seqLT(f.acked, ack) && !seqLT(f.nextSeq, ack) {
			f.acked = ack
		}
	case op < 18: // advance time; occasionally sweep
		s.h.now += sim.Time(rng.Intn(500)) * sim.Millisecond
		if rng.Intn(4) == 0 {
			s.h.a.Sweep()
		}
	case op < 19: // RST / drop, then reopen
		if rng.Intn(2) == 0 {
			r := packet.NewTCPDatagram(f.srv, f.cli, 0)
			r.TCP.Flags = packet.FlagRST
			s.h.a.HandleDownlink(r)
		} else {
			s.h.a.Drop(s.key(f))
		}
		s.flows[f.idx] = s.open(f.idx)
	default: // roam: export, drop, re-import
		key := s.key(f)
		if ex, ok := s.h.a.Export(key); ok {
			s.h.a.Drop(key)
			s.h.a.Import(ex)
		}
	}
	return nil
}
