package fastack

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// FuzzAgentDatagram throws arbitrary wire images at a live agent on every
// datapath entry point. The agent carries an established flow with
// outstanding fast-ACK debt — the state most exposed to a mangled header —
// and runs with the invariant checker armed. Whatever the input, the agent
// must neither panic nor violate its safety contract (never fast-ACK beyond
// the wire, never advertise beyond the client's window, keep the cache
// covering the debt range while draining), and a healthy segment processed
// afterwards must still flow.
func FuzzAgentDatagram(f *testing.F) {
	seg := data(4000)
	ack := clientAck(2000, 2048)
	syn := packet.NewTCPDatagram(serverEP, clientEP, 0)
	syn.TCP.Seq = 999
	syn.TCP.Flags = packet.FlagSYN
	syn.TCP.WindowScale = 7
	sack := clientAck(1000, 2048)
	sack.TCP.SACK = []packet.SACKBlock{{Left: 2000, Right: 3000}}
	rst := data(1000)
	rst.TCP.Flags = packet.FlagRST
	rst.PayloadLen = 0

	f.Add(byte(0), seg.Marshal())  // downlink data
	f.Add(byte(1), ack.Marshal())  // uplink ACK
	f.Add(byte(2), seg.Marshal())  // wireless ACK ok
	f.Add(byte(5), seg.Marshal())  // wireless ACK failed (dir%3==2, dir&4)
	f.Add(byte(0), syn.Marshal())  // connection restart
	f.Add(byte(1), sack.Marshal()) // uplink SACK
	f.Add(byte(0), rst.Marshal())  // teardown
	f.Add(byte(3), []byte{0x45})   // truncated junk

	f.Fuzz(func(t *testing.T, dir byte, raw []byte) {
		cfg := DefaultConfig()
		cfg.CheckInvariants = true
		h := newHarness(cfg)

		// Scripted healthy prefix: handshake, one client-ACKed segment and
		// two fast-ACKed ones, so debt = [2000, 4000) with a warm cache.
		h.handshake(t)
		for i := uint32(0); i < 3; i++ {
			h.a.HandleDownlink(data(1000 + i*segLen))
			h.a.HandleWirelessAck(data(1000+i*segLen), true)
		}
		h.a.HandleUplink(clientAck(2000, 2048))

		d, err := packet.Unmarshal(raw)
		if err == nil && d.TCP != nil {
			switch dir % 3 {
			case 0:
				h.a.HandleDownlink(d)
			case 1:
				h.a.HandleUplink(d)
			case 2:
				h.a.HandleWirelessAck(d, dir&4 == 0)
			}
		}

		// The flow keeps working afterwards: time moves, more data lands,
		// the client catches up, idle flows sweep.
		h.now += 10 * sim.Millisecond
		h.a.HandleDownlink(data(4000))
		h.a.HandleWirelessAck(data(4000), true)
		h.a.HandleUplink(clientAck(5000, 2048))
		h.now += 2 * cfg.IdleExpiry
		h.a.Sweep()

		if v := h.a.Violations(); len(v) != 0 {
			t.Fatalf("invariant violations after dir=%d raw=%x: %v", dir, raw, v)
		}
	})
}
