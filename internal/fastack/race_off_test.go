//go:build !race

package fastack

// raceEnabled reports whether the race detector instruments this build;
// alloc-count assertions are skipped under -race because the detector's
// shadow bookkeeping allocates.
const raceEnabled = false
