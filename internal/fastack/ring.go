package fastack

// ring is a growable power-of-two circular buffer. The per-flow q_seq and
// retransmission cache are deques: entries land at (or near) the back while
// purges pop the front, so a ring recycles one backing array where a slice
// would either shift O(n) per pop or leak capacity off the front
// (`s = s[1:]`) and reallocate every time the window slides. Once a flow's
// ring has grown to its working-set size, steady-state traffic allocates
// nothing.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of elements held.
func (r *ring[T]) Len() int { return r.n }

// At returns a pointer to the i-th element (0 = front). The pointer is
// valid until the next mutation.
func (r *ring[T]) At(i int) *T {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = *r.At(i)
	}
	r.buf = nb
	r.head = 0
}

// PushBack appends v at the back.
func (r *ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PopFront removes and returns the front element. The vacated slot is
// zeroed so the ring never pins pointers the caller released.
func (r *ring[T]) PopFront() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return v
}

// PopBack removes and returns the back element.
func (r *ring[T]) PopBack() T {
	var zero T
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	v := r.buf[i]
	r.buf[i] = zero
	r.n--
	return v
}

// Insert places v at index i (0..Len()), shifting whichever side is
// shorter.
func (r *ring[T]) Insert(i int, v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	if i <= r.n-i {
		r.head = (r.head - 1 + len(r.buf)) & (len(r.buf) - 1)
		r.n++
		for j := 0; j < i; j++ {
			*r.At(j) = *r.At(j + 1)
		}
	} else {
		r.n++
		for j := r.n - 1; j > i; j-- {
			*r.At(j) = *r.At(j - 1)
		}
	}
	*r.At(i) = v
}

// Reset empties the ring, zeroing held slots but keeping the backing
// array for reuse.
func (r *ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		*r.At(i) = zero
	}
	r.head, r.n = 0, 0
}

// Drop empties the ring and releases the backing array (bypassed and
// detached flows must not pin their working-set capacity).
func (r *ring[T]) Drop() { *r = ring[T]{} }
