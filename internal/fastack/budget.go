package fastack

import "repro/internal/packet"

// dgramPool recycles the datagrams the agent mints on its hot path: cache
// clones, retransmit clones, and generated ACKs. Freed datagrams keep
// their TCP header struct, SACK backing array, and payload buffer, so a
// steady-state clone or buildAck touches no allocator. The pool is
// internal to one agent (single-goroutine like the agent itself).
//
// Ownership rule: a datagram obtained from the pool is owned by exactly
// one holder — the cache, or the caller a Disposition handed it to. It
// returns via put (cache purge/eviction) or Agent.Recycle (callers that
// opt in); callers that never recycle simply let the GC take it, which is
// always safe.
type dgramPool struct {
	free []*packet.Datagram
	// bufs holds spare payload buffers from recycled datagrams whose next
	// incarnation carries no payload (pure ACKs): Marshal distinguishes a
	// nil Payload (synthesized zeros) from an allocated one, so blanked
	// datagrams must not keep a stale buffer attached.
	bufs [][]byte
}

// get returns a blank TCP datagram: zeroed IP, zeroed TCP header with
// window scaling absent (mirroring packet.NewTCP), empty SACK slice with
// retained capacity, nil payload.
func (p *dgramPool) get() *packet.Datagram {
	n := len(p.free)
	if n == 0 {
		return &packet.Datagram{TCP: &packet.TCP{WindowScale: -1}}
	}
	d := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	t := d.TCP
	sack := t.SACK[:0]
	if d.Payload != nil {
		p.bufs = append(p.bufs, d.Payload)
	}
	*d = packet.Datagram{TCP: t}
	*t = packet.TCP{WindowScale: -1, SACK: sack}
	return d
}

// clone returns a pooled deep copy of src, byte-equivalent to src.Clone():
// the payload buffer is copied (nil stays nil) and the SACK slice does not
// alias src's.
func (p *dgramPool) clone(src *packet.Datagram) *packet.Datagram {
	d := p.get()
	d.IP = src.IP
	d.PayloadLen = src.PayloadLen
	if src.Payload != nil {
		var buf []byte
		if n := len(p.bufs); n > 0 {
			buf = p.bufs[n-1]
			p.bufs[n-1] = nil
			p.bufs = p.bufs[:n-1]
		}
		d.Payload = append(buf[:0], src.Payload...)
	}
	if src.TCP != nil {
		sack := d.TCP.SACK
		*d.TCP = *src.TCP
		d.TCP.SACK = append(sack, src.TCP.SACK...)
	}
	if src.UDP != nil {
		u := *src.UDP
		d.UDP = &u
	}
	return d
}

// put returns a datagram to the pool. Non-TCP datagrams are dropped (get
// assumes a reusable TCP header); a nil is ignored.
func (p *dgramPool) put(d *packet.Datagram) {
	if d == nil || d.TCP == nil {
		return
	}
	d.UDP = nil
	p.free = append(p.free, d)
}

// cacheBudget is the agent-wide shared state behind every flow: the
// cross-flow retransmission-cache byte budget with its LRU eviction order,
// the datagram pool, and the running debt counters that replace the old
// O(flows) reporting scans.
//
// The budget complements the per-flow CacheLimitBytes: each flow is still
// individually capped, but the sum across flows is additionally bounded by
// limit. When an insert pushes the total over, flows yield their oldest
// segments in least-recently-inserted order — with the same refusal the
// per-flow limit honors: bytes inside any flow's vouched debt range
// [seq_TCP, seq_fack) are never evicted, because this cache is the only
// place they can ever be repaired from. If every remaining byte is
// vouched, the budget stays overrun and the inserting flow is tripped into
// bypass (cache_thrash), which trims its cache to exactly its debt.
type cacheBudget struct {
	limit int // bytes; 0 disables the cross-flow bound
	used  int // bytes across every flow's cache

	// Intrusive LRU over flows holding cache bytes, ordered by last
	// insert: head is the least-recently-inserted (first victim), tail the
	// most recent. Intrusive links keep membership changes allocation-free
	// and the eviction order independent of map iteration, so chaos
	// campaigns replay byte-identically.
	lruHead, lruTail *flowState

	pool dgramPool

	// Running aggregates maintained at flow state transitions (accountFlow
	// / removeFlow), so DebtBytes and UndrainedBypassedFlows are O(1).
	debtTotal int64
	undrained int
}

// touch moves f to the most-recently-inserted end, linking it in if it is
// not yet a member.
func (b *cacheBudget) touch(f *flowState) {
	if b.lruTail == f {
		return
	}
	if f.inLRU {
		b.unlink(f)
	}
	f.lruPrev = b.lruTail
	f.lruNext = nil
	if b.lruTail != nil {
		b.lruTail.lruNext = f
	} else {
		b.lruHead = f
	}
	b.lruTail = f
	f.inLRU = true
}

// lruRemove drops f from the eviction order (no cache bytes left).
func (b *cacheBudget) lruRemove(f *flowState) {
	if !f.inLRU {
		return
	}
	b.unlink(f)
	f.inLRU = false
}

func (b *cacheBudget) unlink(f *flowState) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		b.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		b.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
}

// reclaim enforces the cross-flow budget after an insert by f: flows yield
// their oldest non-vouched segments in LRU order until the total fits.
// The entry f just inserted is spared (evicting it would turn the insert
// into a no-op and thrash). Returns the segments evicted and whether the
// budget is still overrun after every evictable byte was reclaimed.
func (b *cacheBudget) reclaim(f *flowState) (evicted int, overrun bool) {
	if b.limit <= 0 || b.used <= b.limit {
		return 0, false
	}
	for v := b.lruHead; v != nil && b.used > b.limit; {
		next := v.lruNext
		for b.used > b.limit && v.cache.Len() > 0 {
			if v == f && v.cache.Len() == 1 {
				break // the just-inserted entry
			}
			old := v.cache.At(0)
			if v.debtBytes() > 0 && seqLT(v.seqTCP, old.end) && seqLT(old.seq, v.seqFack) {
				break // vouched: this flow yields nothing more from the front
			}
			v.releaseSeg(v.cache.PopFront())
			evicted++
		}
		v = next
	}
	return evicted, b.used > b.limit
}
