// Package fastack implements the FastACK agent of Section 5: an AP-side
// mechanism that converts 802.11 block-acknowledgement feedback into
// proactively generated TCP ACKs ("fast ACKs") toward the sender,
// suppresses the client's now-duplicate TCP ACKs, serves duplicate-ACK and
// SACK retransmissions from a local cache, rewrites the advertised receive
// window to prevent client buffer overflow, and emulates the client for
// upstream packet loss (TCP holes).
//
// The agent is transport-glue agnostic: it consumes decoded datagrams and
// returns dispositions (forward / drop / elevate) plus any packets to
// inject toward the sender or the client. The testbed package wires it
// between the wired port and the MAC layer of an AP.
package fastack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config tunes the agent.
type Config struct {
	// CacheLimitBytes bounds the per-flow retransmission cache. Zero
	// means the default of 4 MiB (a full receive window).
	CacheLimitBytes int
	// DupAckThreshold is how many duplicate client ACKs trigger a local
	// retransmission. The classic value is 3; FastACK can afford 2
	// because the AP knows link-layer delivery state.
	DupAckThreshold int
	// RtxGuard is the minimum interval between local retransmissions of
	// the same hole; duplicate ACKs arriving inside the window are
	// absorbed. Roughly one over-the-air round trip.
	RtxGuard sim.Time
	// FlowQueueBudget bounds the bytes one flow may hold in the AP's
	// driver queue: the generated window is additionally clamped to
	// budget − (seq_high − seq_fack). §5.5.2 clamps only against the
	// client's buffer; any deployment must also avoid overrunning the
	// AP's own tx-descriptor pool, which would turn the fast-ACK
	// pipeline's pressure into tail drops. Zero disables the clamp.
	FlowQueueBudget int
	// MarkAllFlows fast-acks every TCP flow when true (footnote 10 of the
	// paper). When false, only flows that have carried MinFlowBytes of
	// downlink payload are promoted.
	MarkAllFlows bool
	MinFlowBytes int
	// IdleExpiry is how long a flow may be quiet before Sweep drops its
	// state.
	IdleExpiry sim.Time

	// Guard tunes the per-flow safety state machine (guard.go). The zero
	// value enables it with production defaults.
	Guard GuardConfig
	// CheckInvariants enables the runtime invariant checker
	// (invariants.go): every violation counts into
	// Stats().InvariantViolations and the bounded Violations() log.
	CheckInvariants bool

	// Ablation switches (benchmarked in bench_test.go; off in production).
	//
	// DisableSuppression forwards the client's duplicate TCP ACKs to the
	// sender instead of dropping them: the sender then sees dup-ACK
	// storms for data it believes acknowledged.
	DisableSuppression bool
	// DisableCache turns off the local retransmission cache: duplicate
	// ACKs are forwarded so the sender repairs end-to-end (§5.5.1 asks
	// "why not let the TCP sender handle these retransmissions?").
	DisableCache bool
}

// DefaultConfig returns the production-like defaults.
func DefaultConfig() Config {
	return Config{
		CacheLimitBytes: 4 << 20,
		DupAckThreshold: 2,
		RtxGuard:        15 * sim.Millisecond,
		MarkAllFlows:    true,
		MinFlowBytes:    64 << 10,
		IdleExpiry:      5 * sim.Minute,
	}
}

// Stats counts agent activity.
type Stats struct {
	FastAcksSent      int64
	ClientAcksDropped int64
	SpuriousDrops     int64 // case (i): retransmissions below seq_fack
	SpuriousReacks    int64 // duplicate fast ACKs answering spurious retransmissions
	ElevatedForwards  int64 // case (ii): end-to-end retransmissions
	HolesDetected     int64 // case (iv): upstream losses
	HoleDupAcksSent   int64
	LocalRetransmits  int64
	WirelessRedrives  int64 // cache re-injections after MAC drop
	BadHints          int64 // client dup-ACK for data we fast-acked
	FeedbackHeals     int64 // seq_fack advanced by a client ACK after lost 802.11 feedback
	CacheEvictions    int64
	WindowUpdates     int64
	FlowsTracked      int64

	// Safety guard activity (guard.go).
	GuardSuspects       int64
	GuardBypasses       int64
	GuardDrains         int64 // bypassed flows whose debt reached zero
	InvariantViolations int64
}

// Disposition tells the AP datapath what to do with a packet and what to
// inject.
type Disposition struct {
	// Forward: pass the packet along its normal path.
	Forward bool
	// Elevate: transmit ahead of queued packets (priority elevation for
	// end-to-end retransmissions, case (ii)).
	Elevate bool
	// ToSender carries generated packets (fast ACKs, hole dup-ACKs,
	// window updates) to inject toward the wired TCP sender.
	ToSender []*packet.Datagram
	// ToClient carries local retransmissions to enqueue toward the
	// wireless client, ahead of new data.
	ToClient []*packet.Datagram
}

var forwardOnly = Disposition{Forward: true}

// Agent is one AP's FastACK engine. It is single-goroutine like the Click
// datapath it models; the owning simulator serialises calls.
type Agent struct {
	cfg        Config
	now        func() sim.Time
	flows      map[packet.Flow]*flowState
	stats      Stats
	violations []string
}

// New creates an agent. now supplies the current simulation time (used for
// idle expiry).
func New(cfg Config, now func() sim.Time) *Agent {
	if cfg.CacheLimitBytes == 0 {
		cfg.CacheLimitBytes = 4 << 20
	}
	if cfg.DupAckThreshold == 0 {
		cfg.DupAckThreshold = 2
	}
	if cfg.RtxGuard == 0 {
		cfg.RtxGuard = 15 * sim.Millisecond
	}
	if cfg.IdleExpiry == 0 {
		cfg.IdleExpiry = 5 * sim.Minute
	}
	cfg.Guard.applyDefaults()
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Agent{cfg: cfg, now: now, flows: map[packet.Flow]*flowState{}}
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// FlowCount returns the number of tracked flows.
func (a *Agent) FlowCount() int { return len(a.flows) }

// DebtBytes sums the fast-ACK debt [seq_TCP, seq_fack) across every
// tracked flow.
func (a *Agent) DebtBytes() int64 {
	var n int64
	for _, f := range a.flows {
		n += int64(f.debtBytes())
	}
	return n
}

// UndrainedBypassedFlows counts flows sitting in Bypass or Draining that
// still carry debt — after a drain window, a healthy agent reads zero.
func (a *Agent) UndrainedBypassedFlows() int {
	n := 0
	for _, f := range a.flows {
		if (f.gstate == GuardBypass || f.gstate == GuardDraining) && f.debtBytes() > 0 {
			n++
		}
	}
	return n
}

// flowFor returns (creating if needed) state for the downlink flow key.
func (a *Agent) flowFor(key packet.Flow) *flowState {
	f, ok := a.flows[key]
	if !ok {
		f = &flowState{flow: key, senderWScale: -1, clientWScale: -1}
		a.flows[key] = f
		a.stats.FlowsTracked++
	}
	return f
}

// HandleDownlink processes a packet travelling wired -> wireless (TCP
// sender to client). It implements the four §5.4 data-flow cases.
func (a *Agent) HandleDownlink(d *packet.Datagram) Disposition {
	if d.TCP == nil {
		return forwardOnly
	}
	t := d.TCP
	key := d.Flow()

	// Handshake: learn the sender's window scale and seed pointers. A SYN
	// on an already-tracked 5-tuple is a new connection incarnation: any
	// cached segments, q_seq entries, holes, or guard verdicts from the
	// previous one would poison the new stream, so they are discarded.
	if t.HasFlag(packet.FlagSYN) {
		f := a.flowFor(key)
		f.senderWScale = 0
		if t.WindowScale >= 0 {
			f.senderWScale = t.WindowScale
		}
		f.resetForNewConnection()
		f.initAt(t.Seq + 1)
		return forwardOnly
	}
	if t.HasFlag(packet.FlagRST) {
		if f, ok := a.flows[key]; ok {
			if f.debtBytes() > 0 && !a.cfg.Guard.Disable {
				// The flow still carries fast-ACK debt: the sender believes
				// [seq_TCP, seq_fack) delivered and will never resend it. If
				// the RST is spurious (or injected), dropping the cache now
				// would strand the client; drain first, and let Sweep's
				// DrainExpiry reap the state if the connection really died.
				a.guardTrip(f, GuardReasonRST)
			} else {
				delete(a.flows, key)
			}
		}
		return forwardOnly
	}
	if d.PayloadLen == 0 {
		return forwardOnly // bare ACK (e.g. handshake completion)
	}

	f := a.flowFor(key)
	f.lastFastAckAt = a.now()

	// Flow selection (footnote 10): below the promotion threshold the
	// packet passes through untouched and no state machine runs. The
	// sequence pointers keep following the stream so promotion can start
	// cleanly mid-flow.
	if !a.cfg.MarkAllFlows && !f.promoted {
		f.bytesSeen += int64(d.PayloadLen)
		if f.bytesSeen < int64(a.cfg.MinFlowBytes) {
			f.initAt(t.Seq + uint32(d.PayloadLen)) // track the frontier
			return forwardOnly
		}
		f.promoted = true
	}

	if !f.initialized {
		f.initAt(t.Seq) // mid-flow adoption
	}

	seqIn := t.Seq
	end := seqIn + uint32(d.PayloadLen)

	if f.gstate >= GuardBypass {
		return a.bypassDownlink(f, end)
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass { // stalled debt tripped just now
		return a.bypassDownlink(f, end)
	}

	disp := Disposition{Forward: true}

	switch {
	case seqLT(seqIn, f.seqFack):
		// (i) Spurious retransmission: already fast-ACKed. Drop — but
		// re-ACK, the way the client itself would answer a duplicate
		// segment. The retransmission means the sender missed the original
		// fast ACK (ACKs get lost too); if the agent just ate the retry the
		// sender would RTO-loop forever on data the client already holds.
		a.stats.SpuriousDrops++
		a.stats.SpuriousReacks++
		reack := Disposition{Forward: false}
		reack.ToSender = append(reack.ToSender, a.buildAck(f, f.seqFack))
		a.checkFlow(f)
		return reack

	case seqLT(seqIn, f.seqExp):
		// (ii) End-to-end retransmission of data the AP has seen but the
		// client has not acknowledged at the 802.11 layer. Forward with
		// priority elevation.
		a.stats.ElevatedForwards++
		disp.Elevate = true
		a.cacheInsert(f, d)
		a.checkFlow(f)
		return disp

	case seqIn == f.seqExp:
		// (iii) In order: cache, forward, advance expectations.
		a.cacheInsert(f, d)
		f.advanceExp(end)
		if seqLT(f.seqHigh, end) {
			f.seqHigh = end
		}
		a.checkFlow(f)
		return disp

	default:
		// (iv) seqIn > seqExp: a queue upstream dropped packets. Record
		// the hole, emulate the client's duplicate ACK (with SACK when
		// supported) so the sender repairs it early (§5.5.3), then treat
		// the packet as (iii).
		if !a.cfg.Guard.Disable && seqIn-f.seqExp > a.cfg.Guard.MaxSeqJump {
			// A hole this wide is not congestion, it is a mangled header.
			// Forward the packet untouched — adopting the garbage sequence
			// into the holes vector or the cache would corrupt the flow.
			a.guardSoftAnomaly(f, GuardReasonSeqJump)
			a.checkFlow(f)
			return forwardOnly
		}
		a.stats.HolesDetected++
		f.addAbove(seqIn, end)
		if seqLT(f.seqHigh, end) {
			f.seqHigh = end
		}
		dup := a.buildAck(f, f.seqExp)
		if f.clientSACKOK || f.clientWScale < 0 {
			dup.TCP.SACK = append(dup.TCP.SACK, packet.SACKBlock{Left: seqIn, Right: end})
		}
		a.stats.HoleDupAcksSent++
		disp.ToSender = append(disp.ToSender, dup)
		a.cacheInsert(f, d)
		a.checkFlow(f)
		return disp
	}
}

func (a *Agent) cacheInsert(f *flowState, d *packet.Datagram) {
	if a.cfg.DisableCache {
		return
	}
	if ev := f.cacheInsert(d, a.cfg.CacheLimitBytes); ev > 0 {
		a.stats.CacheEvictions++
		obsm.cacheEvictions.Inc()
	}
	if f.evictBlocked {
		// The limit wanted to evict vouched-for bytes: the cache is
		// thrashing against the debt range. Safety beats memory — the
		// eviction was refused — but a flow in this regime must stop
		// growing the debt.
		f.evictBlocked = false
		a.guardTrip(f, GuardReasonCacheThrash)
	}
}

// HandleWirelessAck reports link-layer fate for a downlink data packet:
// ok=true when the block ACK covered it (the 802.11 ACK of §5.2), ok=false
// when the MAC dropped it after exhausting retries.
func (a *Agent) HandleWirelessAck(d *packet.Datagram, ok bool) Disposition {
	if d.TCP == nil || d.PayloadLen == 0 {
		return Disposition{}
	}
	f, tracked := a.flows[d.Flow()]
	if !tracked || !f.initialized {
		return Disposition{}
	}
	if !a.cfg.MarkAllFlows && !f.promoted {
		return Disposition{} // not fast-acked yet (footnote 10 gating)
	}
	if f.gstate >= GuardBypass {
		// No fast ACKs are generated in bypass. A MAC drop inside the debt
		// range is still the agent's to repair.
		var disp Disposition
		if !ok && f.gstate != GuardPassThrough && seqLT(d.TCP.Seq, f.seqFack) {
			if cached := f.cacheLookup(d.TCP.Seq); cached != nil {
				obsm.cacheHits.Inc()
				a.stats.WirelessRedrives++
				disp.ToClient = append(disp.ToClient, cached.Clone())
			} else {
				obsm.cacheMisses.Inc()
			}
		}
		return disp
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass {
		return Disposition{}
	}
	var disp Disposition
	if !ok {
		// The MAC gave up on this MPDU. Re-drive it from the cache so the
		// transfer continues without waiting for the sender's RTO; if the
		// link stays bad, no fast ACKs advance and the sender times out,
		// which is the desired §5.5.1 fallback.
		if cached := f.cacheLookup(d.TCP.Seq); cached != nil {
			obsm.cacheHits.Inc()
			a.stats.WirelessRedrives++
			disp.ToClient = append(disp.ToClient, cached.Clone())
		} else {
			obsm.cacheMisses.Inc()
		}
		return disp
	}

	if end := d.TCP.Seq + uint32(d.PayloadLen); seqLT(f.seqExp, end) {
		// Feedback for bytes that never crossed the wire: the radio cannot
		// have transmitted them, so the report is garbage (mangled header,
		// stale feedback from a prior connection). Folding it in would
		// fast-ACK data the agent does not hold.
		a.guardSoftAnomaly(f, GuardReasonWildAck)
		a.checkFlow(f)
		return disp
	}
	f.enqueueAcked(d.TCP.Seq, d.PayloadLen)
	fackBefore := f.seqFack
	if newFack, segs := f.drainContiguous(); segs > 0 {
		// One cumulative fast ACK covers the whole contiguous run (the
		// production agent coalesces; the sender's byte-counting cwnd
		// growth is unaffected).
		fa := a.buildAck(f, f.seqFack)
		a.stats.FastAcksSent++
		obsm.fastAcksSent.Inc()
		obsm.ampduBytes.Observe(int64(newFack - fackBefore))
		obsm.ampduSegs.Observe(int64(segs))
		f.lastFastAckAt = a.now()
		disp.ToSender = append(disp.ToSender, fa)
	}
	a.checkFlow(f)
	return disp
}

// HandleUplink processes a packet travelling wireless -> wired (client to
// sender). Pure ACKs for fast-acked flows are suppressed; duplicate ACKs
// trigger local retransmission from the cache.
func (a *Agent) HandleUplink(d *packet.Datagram) Disposition {
	if d.TCP == nil {
		return forwardOnly
	}
	t := d.TCP
	// The downlink flow key is the reverse of this packet's flow.
	key := d.Flow().Reverse()
	f, tracked := a.flows[key]

	if t.HasFlag(packet.FlagSYN | packet.FlagACK) {
		// Client's half of the handshake: learn its window scaling and
		// SACK capability.
		f = a.flowFor(key)
		f.clientWScale = 0
		if t.WindowScale >= 0 {
			f.clientWScale = t.WindowScale
		}
		f.clientSACKOK = t.SACKPermitted
		f.clientWindow = int(t.Window) << f.clientWScale
		return forwardOnly
	}
	if !tracked || !f.initialized || t.HasFlag(packet.FlagRST) || t.HasFlag(packet.FlagFIN) || d.PayloadLen > 0 {
		return forwardOnly
	}
	if !a.cfg.MarkAllFlows && !f.promoted {
		// Unpromoted flows keep their native end-to-end ACK loop.
		return forwardOnly
	}
	if !t.HasFlag(packet.FlagACK) {
		return forwardOnly
	}

	if f.gstate >= GuardBypass {
		return a.bypassUplinkAck(f, t)
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass { // stalled debt tripped just now
		return a.bypassUplinkAck(f, t)
	}

	// Pure TCP ACK from the client.
	wscale := f.clientWScale
	if wscale < 0 {
		wscale = 0
	}
	f.clientWindow = int(t.Window) << wscale

	ack := t.Ack
	if !a.cfg.Guard.Disable && seqLT(f.seqHigh, ack) {
		// Cumulative ACK beyond anything the sender has transmitted:
		// header corruption. Forward it untouched — folding it into
		// seq_TCP would poison the window and debt accounting.
		a.guardSoftAnomaly(f, GuardReasonWildAck)
		a.checkFlow(f)
		return forwardOnly
	}
	var disp Disposition // suppress by default (Forward=false)
	if a.cfg.DisableSuppression {
		disp.Forward = true
	} else {
		a.stats.ClientAcksDropped++
		obsm.clientAcksDropped.Inc()
	}

	switch {
	case seqLT(f.seqTCP, ack):
		wasZero := f.zeroWindowSent
		f.seqTCP = ack
		f.cachePurge(ack)
		f.dupAcksFromClient = 0
		f.lastClientAck = ack
		f.debtProgressAt = a.now()
		f.ackProgressAt = a.now()
		f.stormCount = 0 // forward progress: not a retransmit storm
		if wasZero && f.advertisedWindow(a.cfg.FlowQueueBudget) >= lowWindowBytes {
			// The sender was window-limited on our clamped advertisement;
			// release it now that the client drained (§5.5.2).
			up := a.buildAck(f, f.seqFack)
			a.stats.WindowUpdates++
			obsm.windowUpdates.Inc()
			disp.ToSender = append(disp.ToSender, up)
		}

	case ack == f.lastClientAck:
		f.dupAcksFromClient++
		if seqLT(ack, f.seqFack) {
			// We vouched for this data with a fast ACK and the client
			// disagrees: an inaccurate 802.11 ACK (§5.7).
			a.stats.BadHints++
		}
		if f.dupAcksFromClient >= a.cfg.DupAckThreshold {
			f.dupAcksFromClient = 0
			if a.cfg.DisableCache {
				// Ablation: no cache, so the sender must repair — let its
				// dup-ACK through even under suppression.
				disp.Forward = true
			} else {
				now := a.now()
				if ack != f.lastRtxSeq || now-f.lastRtxAt >= a.cfg.RtxGuard {
					f.lastRtxSeq = ack
					f.lastRtxAt = now
					rtx := a.retransmitFromCache(f, ack, t.SACK)
					disp.ToClient = append(disp.ToClient, rtx...)
					a.guardNoteRetransmits(f, len(rtx))
				}
			}
		}
	default:
		f.lastClientAck = ack
	}

	if seqLT(f.seqFack, ack) {
		// The client acknowledged beyond our fast-ack point. Forward rather
		// than lose information — and treat the cumulative ACK as ground
		// truth for delivery: every byte below it reached the client, so the
		// fast-ack point advances even though the 802.11 feedback for those
		// segments never arrived. Without this, one lost block-ACK report
		// wedges seq_fack forever: fast ACKs stop, q_seq grows without
		// bound, and the queue-budget clamp (budget − (seq_high − seq_fack))
		// goes negative so every generated ACK advertises a zero window.
		if !a.cfg.DisableSuppression {
			a.stats.ClientAcksDropped--
			obsm.clientAcksDropped.Add(-1)
		}
		disp.Forward = true
		heal := ack
		if seqLT(f.seqExp, heal) {
			heal = f.seqExp // never past the wire frontier
		}
		if seqLT(f.seqFack, heal) {
			f.seqFack = heal
			f.drainContiguous() // ride over q_seq entries the heal reconnected
			a.stats.FeedbackHeals++
		}
	}
	a.checkFlow(f)
	return disp
}

// retransmitFromCache returns clones of cached segments the client is
// missing: the segment at ack, plus any holes implied by SACK blocks,
// bounded per invocation so one duplicate ACK cannot flood the air.
func (a *Agent) retransmitFromCache(f *flowState, ack uint32, sack []packet.SACKBlock) []*packet.Datagram {
	const maxPerEvent = 16
	var out []*packet.Datagram
	if d := f.cacheLookup(ack); d != nil {
		obsm.cacheHits.Inc()
		a.stats.LocalRetransmits++
		obsm.localRetransmits.Inc()
		out = append(out, d.Clone())
	} else {
		obsm.cacheMisses.Inc()
	}
	// SACK-based: retransmit cached data between ack and the lowest SACK
	// edge that is not covered by any block.
	for _, blk := range sack {
		for _, d := range f.cacheRange(ack, blk.Left) {
			if len(out) >= maxPerEvent {
				return out
			}
			if covered(d.TCP.Seq, sack) || d.TCP.Seq == ack {
				continue
			}
			a.stats.LocalRetransmits++
			obsm.localRetransmits.Inc()
			out = append(out, d.Clone())
		}
	}
	return out
}

func covered(seq uint32, sack []packet.SACKBlock) bool {
	for _, b := range sack {
		if seqLEQ(b.Left, seq) && seqLT(seq, b.Right) {
			return true
		}
	}
	return false
}

// buildAck constructs a TCP ACK from the client toward the sender with the
// clamped advertised window rx'_win = rx_win − out_bytes.
func (a *Agent) buildAck(f *flowState, ackNo uint32) *packet.Datagram {
	// The generated packet impersonates the client: source is the
	// downlink flow's destination.
	d := packet.NewTCPDatagram(f.flow.Dst, f.flow.Src, 0)
	d.TCP.Ack = ackNo
	d.TCP.Flags = packet.FlagACK
	wscale := f.clientWScale
	if wscale < 0 {
		wscale = 0
	}
	advBytes := f.advertisedWindow(a.cfg.FlowQueueBudget)
	obsm.advWindow.Observe(int64(advBytes))
	adv := advBytes >> wscale
	if adv > 65535 {
		adv = 65535
	}
	// Anything below a couple of segments stalls the sender as surely as
	// zero; remember it so the next client-ACK progress triggers a window
	// update toward the sender.
	f.zeroWindowSent = advBytes < lowWindowBytes
	d.TCP.Window = uint16(adv)
	a.checkFastAck(f, ackNo, advBytes)
	return d
}

// lowWindowBytes is the advertised-window level below which the sender is
// effectively stalled and must be woken by a window update.
const lowWindowBytes = 3 * 1448

// Sweep drops state for flows idle longer than the configured expiry and
// returns how many were removed. A flow still carrying fast-ACK debt is
// not discarded at IdleExpiry — its cache is the only repair source for
// bytes the agent vouched for — it is bypassed (so the client's next real
// ACKs drain it) and only reaped after a further Guard.DrainExpiry.
func (a *Agent) Sweep() int {
	now := a.now()
	removed := 0
	for key, f := range a.flows {
		idle := now - f.lastFastAckAt
		if idle <= a.cfg.IdleExpiry {
			continue
		}
		if f.debtBytes() > 0 && !a.cfg.Guard.Disable {
			if f.gstate < GuardBypass {
				a.guardTrip(f, GuardReasonIdleDebt)
			}
			if idle <= a.cfg.IdleExpiry+a.cfg.Guard.DrainExpiry {
				continue
			}
		}
		delete(a.flows, key)
		removed++
	}
	return removed
}

// ExportedFlow serialises a flow's state for roaming transfer (§5.5.4);
// the roam-to AP imports it so local retransmissions and window
// accounting continue seamlessly.
type ExportedFlow struct {
	Flow    packet.Flow
	SeqHigh uint32
	SeqExp  uint32
	SeqFack uint32
	SeqTCP  uint32
	// Client-side window knowledge: without it the roam-to agent would
	// advertise rx'_win = 0 and strand the sender.
	ClientWindow int
	ClientWScale int
	ClientSACKOK bool
	Cache        []*packet.Datagram
	// Guard state travels with the flow: a bypassed flow keeps draining on
	// the roam-to AP instead of being resurrected into full FastACK.
	Guard        GuardState
	BypassAt     sim.Time
	DebtAtBypass int64
}

// Drop removes a flow's state (after exporting it to a roam-to AP).
func (a *Agent) Drop(key packet.Flow) { delete(a.flows, key) }

// Export returns the state for a flow, or false if untracked.
func (a *Agent) Export(key packet.Flow) (ExportedFlow, bool) {
	f, ok := a.flows[key]
	if !ok {
		return ExportedFlow{}, false
	}
	ex := ExportedFlow{
		Flow: key, SeqHigh: f.seqHigh, SeqExp: f.seqExp,
		SeqFack: f.seqFack, SeqTCP: f.seqTCP,
		ClientWindow: f.clientWindow, ClientWScale: f.clientWScale,
		ClientSACKOK: f.clientSACKOK,
		Guard:        f.gstate, BypassAt: f.bypassAt, DebtAtBypass: f.debtAtBypass,
	}
	for _, c := range f.cache {
		ex.Cache = append(ex.Cache, c.dgram.Clone())
	}
	return ex, true
}

// Import installs exported state on this agent (the roam-to AP) and
// returns a resynchronisation ACK the caller must forward to the TCP
// sender: it re-advertises the window from the new AP, so a sender
// stalled on the roam-from AP's last (possibly zero) advertisement
// resumes immediately. For a flow that arrives bypassed or draining no
// resync ACK is returned (nil): a bypassed flow no longer impersonates
// the client, and the client's own ACKs reach the sender unsuppressed.
func (a *Agent) Import(ex ExportedFlow) *packet.Datagram {
	f := a.flowFor(ex.Flow)
	f.initialized = true
	f.seqHigh = ex.SeqHigh
	f.seqExp = ex.SeqExp
	f.seqFack = ex.SeqFack
	f.seqTCP = ex.SeqTCP
	f.clientWindow = ex.ClientWindow
	f.clientWScale = ex.ClientWScale
	f.clientSACKOK = ex.ClientSACKOK
	f.lastFastAckAt = a.now()
	f.gstate = ex.Guard
	f.bypassAt = ex.BypassAt
	f.debtAtBypass = ex.DebtAtBypass
	// Detector state restarts cleanly on the new AP: the roam itself is
	// not evidence of pathology.
	f.debtProgressAt = a.now()
	f.ackProgressAt = a.now()
	f.stormCount = 0
	for _, d := range ex.Cache {
		f.cacheInsert(d, a.cfg.CacheLimitBytes)
	}
	if f.gstate >= GuardBypass {
		a.checkFlow(f)
		return nil
	}
	return a.buildAck(f, f.seqFack)
}
