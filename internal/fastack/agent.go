// Package fastack implements the FastACK agent of Section 5: an AP-side
// mechanism that converts 802.11 block-acknowledgement feedback into
// proactively generated TCP ACKs ("fast ACKs") toward the sender,
// suppresses the client's now-duplicate TCP ACKs, serves duplicate-ACK and
// SACK retransmissions from a local cache, rewrites the advertised receive
// window to prevent client buffer overflow, and emulates the client for
// upstream packet loss (TCP holes).
//
// The agent is transport-glue agnostic: it consumes decoded datagrams and
// returns dispositions (forward / drop / elevate) plus any packets to
// inject toward the sender or the client. The testbed package wires it
// between the wired port and the MAC layer of an AP.
//
// The hot path is allocation-free in steady state: cache entries and
// generated ACKs come from a per-agent datagram pool, per-flow queues are
// ring buffers, and Disposition inject slices are scratch buffers owned by
// the agent (see Disposition for the lifetime contract).
package fastack

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config tunes the agent.
type Config struct {
	// CacheLimitBytes bounds the per-flow retransmission cache. Zero
	// means the default of 4 MiB (a full receive window).
	CacheLimitBytes int
	// SharedCacheBudgetBytes bounds the retransmission-cache bytes summed
	// across every flow the agent tracks. When an insert pushes the total
	// over, least-recently-inserted flows yield their oldest non-vouched
	// segments (see budget.go); if every remaining byte is vouched the
	// inserting flow trips the cache_thrash guard. Zero means the default
	// of 64 MiB; negative disables the cross-flow bound.
	SharedCacheBudgetBytes int
	// DupAckThreshold is how many duplicate client ACKs trigger a local
	// retransmission. The classic value is 3; FastACK can afford 2
	// because the AP knows link-layer delivery state.
	DupAckThreshold int
	// RtxGuard is the minimum interval between local retransmissions of
	// the same hole; duplicate ACKs arriving inside the window are
	// absorbed. Roughly one over-the-air round trip.
	RtxGuard sim.Time
	// FlowQueueBudget bounds the bytes one flow may hold in the AP's
	// driver queue: the generated window is additionally clamped to
	// budget − (seq_high − seq_fack). §5.5.2 clamps only against the
	// client's buffer; any deployment must also avoid overrunning the
	// AP's own tx-descriptor pool, which would turn the fast-ACK
	// pipeline's pressure into tail drops. Zero disables the clamp.
	FlowQueueBudget int
	// MarkAllFlows fast-acks every TCP flow when true (footnote 10 of the
	// paper). When false, only flows that have carried MinFlowBytes of
	// downlink payload are promoted.
	MarkAllFlows bool
	MinFlowBytes int
	// IdleExpiry is how long a flow may be quiet before Sweep drops its
	// state.
	IdleExpiry sim.Time

	// Guard tunes the per-flow safety state machine (guard.go). The zero
	// value enables it with production defaults.
	Guard GuardConfig
	// CheckInvariants enables the runtime invariant checker
	// (invariants.go): every violation counts into
	// Stats().InvariantViolations and the bounded Violations() log.
	CheckInvariants bool

	// Ablation switches (benchmarked in bench_test.go; off in production).
	//
	// DisableSuppression forwards the client's duplicate TCP ACKs to the
	// sender instead of dropping them: the sender then sees dup-ACK
	// storms for data it believes acknowledged.
	DisableSuppression bool
	// DisableCache turns off the local retransmission cache: duplicate
	// ACKs are forwarded so the sender repairs end-to-end (§5.5.1 asks
	// "why not let the TCP sender handle these retransmissions?").
	DisableCache bool
}

// DefaultConfig returns the production-like defaults.
func DefaultConfig() Config {
	return Config{
		CacheLimitBytes:        4 << 20,
		SharedCacheBudgetBytes: 64 << 20,
		DupAckThreshold:        2,
		RtxGuard:               15 * sim.Millisecond,
		MarkAllFlows:           true,
		MinFlowBytes:           64 << 10,
		IdleExpiry:             5 * sim.Minute,
	}
}

// Stats counts agent activity.
type Stats struct {
	FastAcksSent      int64
	ClientAcksDropped int64
	SpuriousDrops     int64 // case (i): retransmissions below seq_fack
	SpuriousReacks    int64 // duplicate fast ACKs answering spurious retransmissions
	ElevatedForwards  int64 // case (ii): end-to-end retransmissions
	HolesDetected     int64 // case (iv): upstream losses
	HoleDupAcksSent   int64
	LocalRetransmits  int64
	WirelessRedrives  int64 // cache re-injections after MAC drop
	BadHints          int64 // client dup-ACK for data we fast-acked
	FeedbackHeals     int64 // seq_fack advanced by a client ACK after lost 802.11 feedback
	CacheEvictions    int64
	WindowUpdates     int64
	FlowsTracked      int64

	// Cross-flow cache budget activity (budget.go).
	SharedCacheEvictions int64 // segments reclaimed from LRU flows by the shared budget
	SharedBudgetOverruns int64 // inserts that left the budget overrun (all evictable bytes vouched)

	// Safety guard activity (guard.go).
	GuardSuspects       int64
	GuardBypasses       int64
	GuardDrains         int64 // bypassed flows whose debt reached zero
	InvariantViolations int64
}

// Disposition tells the AP datapath what to do with a packet and what to
// inject.
//
// Lifetime contract: ToSender and ToClient are scratch slices owned by the
// agent, valid only until the next Handle* call on the same agent — the
// datapath must consume (enqueue or forward) them before re-entering the
// agent. The pointed-to datagrams themselves are caller-owned from this
// moment; a caller that fully relinquishes one may hand it back via
// Recycle.
type Disposition struct {
	// Forward: pass the packet along its normal path.
	Forward bool
	// Elevate: transmit ahead of queued packets (priority elevation for
	// end-to-end retransmissions, case (ii)).
	Elevate bool
	// ToSender carries generated packets (fast ACKs, hole dup-ACKs,
	// window updates) to inject toward the wired TCP sender.
	ToSender []*packet.Datagram
	// ToClient carries local retransmissions to enqueue toward the
	// wireless client, ahead of new data.
	ToClient []*packet.Datagram
}

var forwardOnly = Disposition{Forward: true}

// SegFate reports the link-layer fate of one downlink data packet for
// batched feedback processing: the 802.11 block ACK covered it (OK) or the
// MAC dropped it after exhausting retries.
type SegFate struct {
	Dgram *packet.Datagram
	OK    bool
}

// Agent is one AP's FastACK engine. It is single-goroutine like the Click
// datapath it models; the owning simulator serialises calls.
type Agent struct {
	cfg        Config
	now        func() sim.Time
	flows      map[packet.Flow]*flowState
	stats      Stats
	violations []string

	// bud carries the cross-flow shared state: cache budget, LRU eviction
	// order, datagram pool, running debt counters.
	bud *cacheBudget

	// Scratch backing for Disposition inject slices, reset at each entry
	// point (see the Disposition lifetime contract).
	sndScratch []*packet.Datagram
	cliScratch []*packet.Datagram
	// batch collects the distinct flows touched by one
	// HandleWirelessAckBatch invocation.
	batch []*flowState
}

// New creates an agent. now supplies the current simulation time (used for
// idle expiry).
func New(cfg Config, now func() sim.Time) *Agent {
	if cfg.CacheLimitBytes == 0 {
		cfg.CacheLimitBytes = 4 << 20
	}
	if cfg.SharedCacheBudgetBytes == 0 {
		cfg.SharedCacheBudgetBytes = 64 << 20
	}
	if cfg.DupAckThreshold == 0 {
		cfg.DupAckThreshold = 2
	}
	if cfg.RtxGuard == 0 {
		cfg.RtxGuard = 15 * sim.Millisecond
	}
	if cfg.IdleExpiry == 0 {
		cfg.IdleExpiry = 5 * sim.Minute
	}
	cfg.Guard.applyDefaults()
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	limit := cfg.SharedCacheBudgetBytes
	if limit < 0 {
		limit = 0 // negative disables the cross-flow bound
	}
	return &Agent{
		cfg: cfg, now: now,
		flows: map[packet.Flow]*flowState{},
		bud:   &cacheBudget{limit: limit},
	}
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// FlowCount returns the number of tracked flows.
func (a *Agent) FlowCount() int { return len(a.flows) }

// SharedCacheBytes returns the retransmission-cache bytes held across
// every tracked flow — the quantity bounded by SharedCacheBudgetBytes.
func (a *Agent) SharedCacheBytes() int { return a.bud.used }

// DebtBytes returns the fast-ACK debt [seq_TCP, seq_fack) summed across
// every tracked flow. O(1): maintained as a running counter at flow state
// transitions (accountFlow), not by scanning the flow table.
func (a *Agent) DebtBytes() int64 { return a.bud.debtTotal }

// UndrainedBypassedFlows counts flows sitting in Bypass or Draining that
// still carry debt — after a drain window, a healthy agent reads zero.
// O(1), like DebtBytes.
func (a *Agent) UndrainedBypassedFlows() int { return a.bud.undrained }

// debtBytesScan recomputes DebtBytes by full scan (equivalence tests).
func (a *Agent) debtBytesScan() int64 {
	var n int64
	for _, f := range a.flows {
		n += int64(f.debtBytes())
	}
	return n
}

// undrainedScan recomputes UndrainedBypassedFlows by full scan.
func (a *Agent) undrainedScan() int {
	n := 0
	for _, f := range a.flows {
		if (f.gstate == GuardBypass || f.gstate == GuardDraining) && f.debtBytes() > 0 {
			n++
		}
	}
	return n
}

// sharedCacheScan recomputes SharedCacheBytes by full scan.
func (a *Agent) sharedCacheScan() int {
	n := 0
	for _, f := range a.flows {
		n += f.cacheBytes
	}
	return n
}

// accountFlow folds a flow's debt and undrained status into the running
// agent-wide counters. Called after every mutation that can move
// seq_TCP/seq_fack or the guard state; idempotent.
func (a *Agent) accountFlow(f *flowState) {
	d := int64(f.debtBytes())
	if d != f.acctDebt {
		a.bud.debtTotal += d - f.acctDebt
		f.acctDebt = d
	}
	und := (f.gstate == GuardBypass || f.gstate == GuardDraining) && d > 0
	if und != f.acctUndrained {
		if und {
			a.bud.undrained++
		} else {
			a.bud.undrained--
		}
		f.acctUndrained = und
	}
}

// finishFlow closes out a handler's work on a flow: running counters, then
// structural invariants.
func (a *Agent) finishFlow(f *flowState) {
	a.accountFlow(f)
	a.checkFlow(f)
}

// removeFlow releases a flow's cache to the shared accounting and pool,
// unwinds its running-counter contributions, and deletes it.
func (a *Agent) removeFlow(key packet.Flow, f *flowState) {
	f.releaseCache()
	a.bud.lruRemove(f)
	f.cache.Drop()
	f.qSeq.Drop()
	if f.acctDebt != 0 {
		a.bud.debtTotal -= f.acctDebt
		f.acctDebt = 0
	}
	if f.acctUndrained {
		a.bud.undrained--
		f.acctUndrained = false
	}
	delete(a.flows, key)
}

// begin resets the scratch inject slices at an agent entry point.
func (a *Agent) begin() {
	a.sndScratch = a.sndScratch[:0]
	a.cliScratch = a.cliScratch[:0]
}

func (a *Agent) emitSender(disp *Disposition, d *packet.Datagram) {
	a.sndScratch = append(a.sndScratch, d)
	disp.ToSender = a.sndScratch
}

func (a *Agent) emitClient(disp *Disposition, d *packet.Datagram) {
	a.cliScratch = append(a.cliScratch, d)
	disp.ToClient = a.cliScratch
}

// clone makes a pooled deep copy of a datagram for injection.
func (a *Agent) clone(d *packet.Datagram) *packet.Datagram { return a.bud.pool.clone(d) }

// Recycle returns a datagram the caller has finished with to the agent's
// pool. Only datagrams the agent handed out (fast ACKs, hole dup-ACKs,
// window updates, retransmit clones) may be recycled, and only once the
// caller holds no further reference. Callers that never recycle are
// correct too — unreturned datagrams are simply garbage collected.
func (a *Agent) Recycle(d *packet.Datagram) { a.bud.pool.put(d) }

// flowFor returns (creating if needed) state for the downlink flow key.
func (a *Agent) flowFor(key packet.Flow) *flowState {
	f, ok := a.flows[key]
	if !ok {
		f = &flowState{flow: key, senderWScale: -1, clientWScale: -1, bud: a.bud,
			vouchNeedsCache: !a.cfg.DisableCache}
		a.flows[key] = f
		a.stats.FlowsTracked++
	}
	return f
}

// HandleDownlink processes a packet travelling wired -> wireless (TCP
// sender to client). It implements the four §5.4 data-flow cases.
func (a *Agent) HandleDownlink(d *packet.Datagram) Disposition {
	if d.TCP == nil {
		return forwardOnly
	}
	a.begin()
	t := d.TCP
	key := d.Flow()

	// Handshake: learn the sender's window scale and seed pointers. A SYN
	// on an already-tracked 5-tuple is a new connection incarnation: any
	// cached segments, q_seq entries, holes, or guard verdicts from the
	// previous one would poison the new stream, so they are discarded.
	if t.HasFlag(packet.FlagSYN) {
		f := a.flowFor(key)
		f.senderWScale = 0
		if t.WindowScale >= 0 {
			f.senderWScale = t.WindowScale
		}
		f.resetForNewConnection()
		f.initAt(t.Seq + 1)
		a.accountFlow(f)
		return forwardOnly
	}
	if t.HasFlag(packet.FlagRST) {
		if f, ok := a.flows[key]; ok {
			if f.debtBytes() > 0 && !a.cfg.Guard.Disable {
				// The flow still carries fast-ACK debt: the sender believes
				// [seq_TCP, seq_fack) delivered and will never resend it. If
				// the RST is spurious (or injected), dropping the cache now
				// would strand the client; drain first, and let Sweep's
				// DrainExpiry reap the state if the connection really died.
				a.guardTrip(f, GuardReasonRST)
			} else {
				a.removeFlow(key, f)
			}
		}
		return forwardOnly
	}
	if d.PayloadLen == 0 {
		return forwardOnly // bare ACK (e.g. handshake completion)
	}

	f := a.flowFor(key)
	f.lastFastAckAt = a.now()
	f.sawData = true

	// Flow selection (footnote 10): below the promotion threshold the
	// packet passes through untouched and no state machine runs. The
	// sequence pointers keep following the stream so promotion can start
	// cleanly mid-flow.
	if !a.cfg.MarkAllFlows && !f.promoted {
		f.bytesSeen += int64(d.PayloadLen)
		if f.bytesSeen < int64(a.cfg.MinFlowBytes) {
			f.initAt(t.Seq + uint32(d.PayloadLen)) // track the frontier
			a.accountFlow(f)
			return forwardOnly
		}
		f.promoted = true
	}

	if !f.initialized {
		f.initAt(t.Seq) // mid-flow adoption
	}

	seqIn := t.Seq
	end := seqIn + uint32(d.PayloadLen)

	if f.gstate >= GuardBypass {
		return a.bypassDownlink(f, end)
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass { // stalled debt tripped just now
		return a.bypassDownlink(f, end)
	}

	disp := Disposition{Forward: true}

	switch {
	case seqLT(seqIn, f.seqFack):
		// (i) Spurious retransmission: already fast-ACKed. Drop — but
		// re-ACK, the way the client itself would answer a duplicate
		// segment. The retransmission means the sender missed the original
		// fast ACK (ACKs get lost too); if the agent just ate the retry the
		// sender would RTO-loop forever on data the client already holds.
		a.stats.SpuriousDrops++
		a.stats.SpuriousReacks++
		reack := Disposition{Forward: false}
		a.emitSender(&reack, a.buildAck(f, f.seqFack))
		a.finishFlow(f)
		return reack

	case seqLT(seqIn, f.seqExp):
		// (ii) End-to-end retransmission of data the AP has seen but the
		// client has not acknowledged at the 802.11 layer. Forward with
		// priority elevation.
		a.stats.ElevatedForwards++
		disp.Elevate = true
		a.cacheInsert(f, d)
		a.finishFlow(f)
		return disp

	case seqIn == f.seqExp:
		// (iii) In order: cache, forward, advance expectations.
		a.cacheInsert(f, d)
		f.advanceExp(end)
		if seqLT(f.seqHigh, end) {
			f.seqHigh = end
		}
		a.finishFlow(f)
		return disp

	default:
		// (iv) seqIn > seqExp: a queue upstream dropped packets. Record
		// the hole, emulate the client's duplicate ACK (with SACK when
		// supported) so the sender repairs it early (§5.5.3), then treat
		// the packet as (iii).
		if !a.cfg.Guard.Disable && seqIn-f.seqExp > a.cfg.Guard.MaxSeqJump {
			// A hole this wide is not congestion, it is a mangled header.
			// Forward the packet untouched — adopting the garbage sequence
			// into the holes vector or the cache would corrupt the flow.
			a.guardSoftAnomaly(f, GuardReasonSeqJump)
			a.finishFlow(f)
			return forwardOnly
		}
		a.stats.HolesDetected++
		f.addAbove(seqIn, end)
		if seqLT(f.seqHigh, end) {
			f.seqHigh = end
		}
		dup := a.buildAck(f, f.seqExp)
		if f.clientSACKOK || f.clientWScale < 0 {
			dup.TCP.SACK = append(dup.TCP.SACK, packet.SACKBlock{Left: seqIn, Right: end})
		}
		a.stats.HoleDupAcksSent++
		a.emitSender(&disp, dup)
		a.cacheInsert(f, d)
		a.finishFlow(f)
		return disp
	}
}

func (a *Agent) cacheInsert(f *flowState, d *packet.Datagram) {
	if a.cfg.DisableCache {
		return
	}
	if ev := f.cacheInsert(d, a.cfg.CacheLimitBytes); ev > 0 {
		a.stats.CacheEvictions++
		obsm.cacheEvictions.Inc()
	}
	if ev, overrun := a.bud.reclaim(f); ev > 0 || overrun {
		if ev > 0 {
			a.stats.SharedCacheEvictions += int64(ev)
			obsm.sharedEvictions.Add(int64(ev))
		}
		if overrun {
			// Every byte the budget could reclaim across all flows is
			// vouched debt: the shared cache is thrashing. Trip the
			// inserting flow — bypassing it trims its cache to exactly its
			// debt and stops it growing the pressure.
			a.stats.SharedBudgetOverruns++
			obsm.sharedOverruns.Inc()
			f.evictBlocked = true
		}
	}
	if f.evictBlocked {
		// The limit wanted to evict vouched-for bytes: the cache is
		// thrashing against the debt range. Safety beats memory — the
		// eviction was refused — but a flow in this regime must stop
		// growing the debt.
		f.evictBlocked = false
		a.guardTrip(f, GuardReasonCacheThrash)
	}
}

// HandleWirelessAck reports link-layer fate for a downlink data packet:
// ok=true when the block ACK covered it (the 802.11 ACK of §5.2), ok=false
// when the MAC dropped it after exhausting retries.
func (a *Agent) HandleWirelessAck(d *packet.Datagram, ok bool) Disposition {
	a.begin()
	var disp Disposition
	if f := a.feedbackEvent(d, ok, &disp); f != nil {
		a.drainFastAck(f, &disp)
		a.finishFlow(f)
	}
	return disp
}

// HandleWirelessAckBatch processes one wireless feedback event covering
// many segments — a block ACK spanning an A-MPDU, or a transmit-completion
// batch spanning flows — in one agent entry. Per-segment bookkeeping is
// identical to calling HandleWirelessAck per segment; the difference is
// that each touched flow drains its contiguous run once at the end, so a
// flow whose segments were interleaved in the batch emits one coalesced
// fast ACK instead of one per re-entry. Cache re-drives for MAC-dropped
// segments are emitted inline, in batch order.
func (a *Agent) HandleWirelessAckBatch(evs []SegFate) Disposition {
	a.begin()
	var disp Disposition
	for i := range evs {
		if f := a.feedbackEvent(evs[i].Dgram, evs[i].OK, &disp); f != nil && !f.inBatch {
			f.inBatch = true
			a.batch = append(a.batch, f)
		}
	}
	for _, f := range a.batch {
		f.inBatch = false
		if f.gstate < GuardBypass { // guard may have tripped later in the batch
			a.drainFastAck(f, &disp)
		}
		a.finishFlow(f)
	}
	a.batch = a.batch[:0]
	return disp
}

// feedbackEvent applies one segment's link-layer fate: guard ticks, cache
// re-drives for MAC drops (into disp), wild-feedback rejection, and the
// q_seq enqueue. It returns the flow when a drain pass is still owed, nil
// when the event was fully handled.
func (a *Agent) feedbackEvent(d *packet.Datagram, ok bool, disp *Disposition) *flowState {
	if d == nil || d.TCP == nil || d.PayloadLen == 0 {
		return nil
	}
	f, tracked := a.flows[d.Flow()]
	if !tracked || !f.initialized || !f.sawData {
		return nil
	}
	if !a.cfg.MarkAllFlows && !f.promoted {
		return nil // not fast-acked yet (footnote 10 gating)
	}
	if f.gstate >= GuardBypass {
		// No fast ACKs are generated in bypass. A MAC drop inside the debt
		// range is still the agent's to repair.
		if !ok && f.gstate != GuardPassThrough && seqLT(d.TCP.Seq, f.seqFack) {
			if cached := f.cacheLookup(d.TCP.Seq); cached != nil {
				obsm.cacheHits.Inc()
				a.stats.WirelessRedrives++
				a.emitClient(disp, a.clone(cached))
			} else {
				obsm.cacheMisses.Inc()
			}
		}
		return nil
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass {
		return nil
	}
	if !ok {
		// The MAC gave up on this MPDU. Re-drive it from the cache so the
		// transfer continues without waiting for the sender's RTO; if the
		// link stays bad, no fast ACKs advance and the sender times out,
		// which is the desired §5.5.1 fallback.
		if cached := f.cacheLookup(d.TCP.Seq); cached != nil {
			obsm.cacheHits.Inc()
			a.stats.WirelessRedrives++
			a.emitClient(disp, a.clone(cached))
		} else {
			obsm.cacheMisses.Inc()
		}
		return nil
	}

	if end := d.TCP.Seq + uint32(d.PayloadLen); seqLT(f.seqExp, end) {
		// Feedback for bytes that never crossed the wire: the radio cannot
		// have transmitted them, so the report is garbage (mangled header,
		// stale feedback from a prior connection). Folding it in would
		// fast-ACK data the agent does not hold.
		a.guardSoftAnomaly(f, GuardReasonWildAck)
		a.finishFlow(f)
		return nil
	}
	f.enqueueAcked(d.TCP.Seq, d.PayloadLen)
	return f
}

// drainFastAck advances the fast-ack point over the contiguous q_seq run
// and emits one coalesced cumulative fast ACK if it moved.
func (a *Agent) drainFastAck(f *flowState, disp *Disposition) {
	fackBefore := f.seqFack
	if newFack, segs := f.drainContiguous(); segs > 0 {
		// One cumulative fast ACK covers the whole contiguous run (the
		// production agent coalesces; the sender's byte-counting cwnd
		// growth is unaffected).
		fa := a.buildAck(f, f.seqFack)
		a.stats.FastAcksSent++
		obsm.fastAcksSent.Inc()
		obsm.ampduBytes.Observe(int64(newFack - fackBefore))
		obsm.ampduSegs.Observe(int64(segs))
		f.lastFastAckAt = a.now()
		a.emitSender(disp, fa)
	}
}

// HandleUplink processes a packet travelling wireless -> wired (client to
// sender). Pure ACKs for fast-acked flows are suppressed; duplicate ACKs
// trigger local retransmission from the cache.
func (a *Agent) HandleUplink(d *packet.Datagram) Disposition {
	if d.TCP == nil {
		return forwardOnly
	}
	a.begin()
	t := d.TCP
	// The downlink flow key is the reverse of this packet's flow.
	key := d.Flow().Reverse()
	f, tracked := a.flows[key]

	if t.HasFlag(packet.FlagSYN | packet.FlagACK) {
		// Client's half of the handshake: learn its window scaling and
		// SACK capability.
		f = a.flowFor(key)
		f.clientWScale = 0
		if t.WindowScale >= 0 {
			f.clientWScale = t.WindowScale
		}
		f.clientSACKOK = t.SACKPermitted
		f.clientWindow = int(t.Window) << f.clientWScale
		return forwardOnly
	}
	if !tracked || !f.initialized || t.HasFlag(packet.FlagRST) || t.HasFlag(packet.FlagFIN) || d.PayloadLen > 0 {
		return forwardOnly
	}
	if !f.sawData {
		// This connection incarnation has carried no downlink payload —
		// the reverse direction of an uplink-dominant transfer. The agent
		// never vouched for anything, so the client's ACK stream must
		// reach the sender untouched: suppressing it would strangle the
		// client's own upload. Window advertisements are still learned
		// passively so the first fast ACK after data does appear clamps
		// against fresh knowledge.
		if wscale := f.clientWScale; wscale >= 0 {
			f.clientWindow = int(t.Window) << wscale
		} else {
			f.clientWindow = int(t.Window)
		}
		return forwardOnly
	}
	if !a.cfg.MarkAllFlows && !f.promoted {
		// Unpromoted flows keep their native end-to-end ACK loop.
		return forwardOnly
	}
	if !t.HasFlag(packet.FlagACK) {
		return forwardOnly
	}

	if f.gstate >= GuardBypass {
		return a.bypassUplinkAck(f, t)
	}
	a.guardTick(f)
	if f.gstate >= GuardBypass { // stalled debt tripped just now
		return a.bypassUplinkAck(f, t)
	}

	// Pure TCP ACK from the client.
	wscale := f.clientWScale
	if wscale < 0 {
		wscale = 0
	}
	f.clientWindow = int(t.Window) << wscale

	ack := t.Ack
	if !a.cfg.Guard.Disable && seqLT(f.seqHigh, ack) {
		// Cumulative ACK beyond anything the sender has transmitted:
		// header corruption. Forward it untouched — folding it into
		// seq_TCP would poison the window and debt accounting.
		a.guardSoftAnomaly(f, GuardReasonWildAck)
		a.finishFlow(f)
		return forwardOnly
	}
	var disp Disposition // suppress by default (Forward=false)
	if a.cfg.DisableSuppression {
		disp.Forward = true
	} else {
		a.stats.ClientAcksDropped++
		obsm.clientAcksDropped.Inc()
	}

	switch {
	case seqLT(f.seqTCP, ack):
		wasZero := f.zeroWindowSent
		f.seqTCP = ack
		f.cachePurge(ack)
		f.dupAcksFromClient = 0
		f.lastClientAck = ack
		f.debtProgressAt = a.now()
		f.ackProgressAt = a.now()
		f.stormCount = 0 // forward progress: not a retransmit storm
		if wasZero && f.advertisedWindow(a.cfg.FlowQueueBudget) >= lowWindowBytes {
			// The sender was window-limited on our clamped advertisement;
			// release it now that the client drained (§5.5.2).
			up := a.buildAck(f, f.seqFack)
			a.stats.WindowUpdates++
			obsm.windowUpdates.Inc()
			a.emitSender(&disp, up)
		}

	case ack == f.lastClientAck:
		f.dupAcksFromClient++
		if seqLT(ack, f.seqFack) {
			// We vouched for this data with a fast ACK and the client
			// disagrees: an inaccurate 802.11 ACK (§5.7).
			a.stats.BadHints++
		}
		if f.dupAcksFromClient >= a.cfg.DupAckThreshold {
			f.dupAcksFromClient = 0
			if a.cfg.DisableCache {
				// Ablation: no cache, so the sender must repair — let its
				// dup-ACK through even under suppression.
				disp.Forward = true
			} else {
				now := a.now()
				if ack != f.lastRtxSeq || now-f.lastRtxAt >= a.cfg.RtxGuard {
					f.lastRtxSeq = ack
					f.lastRtxAt = now
					n := a.retransmitFromCache(&disp, f, ack, t.SACK)
					a.guardNoteRetransmits(f, n)
				}
			}
		}
	default:
		f.lastClientAck = ack
	}

	if seqLT(f.seqFack, ack) {
		// The client acknowledged beyond our fast-ack point. Forward rather
		// than lose information — and treat the cumulative ACK as ground
		// truth for delivery: every byte below it reached the client, so the
		// fast-ack point advances even though the 802.11 feedback for those
		// segments never arrived. Without this, one lost block-ACK report
		// wedges seq_fack forever: fast ACKs stop, q_seq grows without
		// bound, and the queue-budget clamp (budget − (seq_high − seq_fack))
		// goes negative so every generated ACK advertises a zero window.
		if !a.cfg.DisableSuppression {
			a.stats.ClientAcksDropped--
			obsm.clientAcksDropped.Add(-1)
		}
		disp.Forward = true
		heal := ack
		if seqLT(f.seqExp, heal) {
			heal = f.seqExp // never past the wire frontier
		}
		if seqLT(f.seqFack, heal) {
			f.seqFack = heal
			f.drainContiguous() // ride over q_seq entries the heal reconnected
			a.stats.FeedbackHeals++
		}
	}
	a.finishFlow(f)
	return disp
}

// retransmitFromCache appends clones of cached segments the client is
// missing to disp.ToClient: the segment at ack, plus any holes implied by
// SACK blocks, bounded per invocation so one duplicate ACK cannot flood
// the air. Returns how many segments were queued.
func (a *Agent) retransmitFromCache(disp *Disposition, f *flowState, ack uint32, sack []packet.SACKBlock) int {
	const maxPerEvent = 16
	queued := 0
	if d := f.cacheLookup(ack); d != nil {
		obsm.cacheHits.Inc()
		a.stats.LocalRetransmits++
		obsm.localRetransmits.Inc()
		a.emitClient(disp, a.clone(d))
		queued++
	} else {
		obsm.cacheMisses.Inc()
	}
	// SACK-based: retransmit cached data between ack and the lowest SACK
	// edge that is not covered by any block.
	for _, blk := range sack {
		for i := 0; i < f.cache.Len(); i++ {
			c := f.cache.At(i)
			if !(seqLT(c.seq, blk.Left) && seqLT(ack, c.end)) {
				continue
			}
			if queued >= maxPerEvent {
				return queued
			}
			if covered(c.seq, sack) || c.seq == ack {
				continue
			}
			a.stats.LocalRetransmits++
			obsm.localRetransmits.Inc()
			a.emitClient(disp, a.clone(c.dgram))
			queued++
		}
	}
	return queued
}

func covered(seq uint32, sack []packet.SACKBlock) bool {
	for _, b := range sack {
		if seqLEQ(b.Left, seq) && seqLT(seq, b.Right) {
			return true
		}
	}
	return false
}

// buildAck constructs a TCP ACK from the client toward the sender with the
// clamped advertised window rx'_win = rx_win − out_bytes. The datagram
// comes from the agent's pool; field-for-field it matches what
// packet.NewTCPDatagram would build.
func (a *Agent) buildAck(f *flowState, ackNo uint32) *packet.Datagram {
	// The generated packet impersonates the client: source is the
	// downlink flow's destination.
	d := a.bud.pool.get()
	d.IP = packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: f.flow.Dst.Addr, Dst: f.flow.Src.Addr}
	d.TCP.SrcPort = f.flow.Dst.Port
	d.TCP.DstPort = f.flow.Src.Port
	d.TCP.Ack = ackNo
	d.TCP.Flags = packet.FlagACK
	wscale := f.clientWScale
	if wscale < 0 {
		wscale = 0
	}
	advBytes := f.advertisedWindow(a.cfg.FlowQueueBudget)
	obsm.advWindow.Observe(int64(advBytes))
	adv := advBytes >> wscale
	if adv > 65535 {
		adv = 65535
	}
	// Anything below a couple of segments stalls the sender as surely as
	// zero; remember it so the next client-ACK progress triggers a window
	// update toward the sender.
	f.zeroWindowSent = advBytes < lowWindowBytes
	d.TCP.Window = uint16(adv)
	a.checkFastAck(f, ackNo, advBytes)
	return d
}

// lowWindowBytes is the advertised-window level below which the sender is
// effectively stalled and must be woken by a window update.
const lowWindowBytes = 3 * 1448

// Sweep drops state for flows idle longer than the configured expiry and
// returns how many were removed. A flow still carrying fast-ACK debt is
// not discarded at IdleExpiry — its cache is the only repair source for
// bytes the agent vouched for — it is bypassed (so the client's next real
// ACKs drain it) and only reaped after a further Guard.DrainExpiry.
func (a *Agent) Sweep() int {
	now := a.now()
	removed := 0
	for key, f := range a.flows {
		idle := now - f.lastFastAckAt
		if idle <= a.cfg.IdleExpiry {
			continue
		}
		if f.debtBytes() > 0 && !a.cfg.Guard.Disable {
			if f.gstate < GuardBypass {
				a.guardTrip(f, GuardReasonIdleDebt)
			}
			if idle <= a.cfg.IdleExpiry+a.cfg.Guard.DrainExpiry {
				continue
			}
		}
		a.removeFlow(key, f)
		removed++
	}
	return removed
}

// ExportedFlow serialises a flow's state for roaming transfer (§5.5.4);
// the roam-to AP imports it so local retransmissions and window
// accounting continue seamlessly.
type ExportedFlow struct {
	Flow    packet.Flow
	SeqHigh uint32
	SeqExp  uint32
	SeqFack uint32
	SeqTCP  uint32
	// Client-side window knowledge: without it the roam-to agent would
	// advertise rx'_win = 0 and strand the sender.
	ClientWindow int
	ClientWScale int
	ClientSACKOK bool
	// SawData records whether the incarnation carried downlink payload: a
	// flow tracked only through its handshake (the reverse direction of an
	// uplink transfer) must stay dormant on the roam-to AP too.
	SawData bool
	Cache   []*packet.Datagram
	// Guard state travels with the flow: a bypassed flow keeps draining on
	// the roam-to AP instead of being resurrected into full FastACK.
	Guard        GuardState
	BypassAt     sim.Time
	DebtAtBypass int64
}

// Drop removes a flow's state (after exporting it to a roam-to AP).
func (a *Agent) Drop(key packet.Flow) {
	if f, ok := a.flows[key]; ok {
		a.removeFlow(key, f)
	}
}

// Export returns the state for a flow, or false if untracked. The cache
// copies are plain heap clones — they cross agents, so they must not
// alias this agent's pool.
func (a *Agent) Export(key packet.Flow) (ExportedFlow, bool) {
	f, ok := a.flows[key]
	if !ok {
		return ExportedFlow{}, false
	}
	ex := ExportedFlow{
		Flow: key, SeqHigh: f.seqHigh, SeqExp: f.seqExp,
		SeqFack: f.seqFack, SeqTCP: f.seqTCP,
		ClientWindow: f.clientWindow, ClientWScale: f.clientWScale,
		ClientSACKOK: f.clientSACKOK, SawData: f.sawData,
		Guard: f.gstate, BypassAt: f.bypassAt, DebtAtBypass: f.debtAtBypass,
	}
	for i := 0; i < f.cache.Len(); i++ {
		ex.Cache = append(ex.Cache, f.cache.At(i).dgram.Clone())
	}
	return ex, true
}

// Import installs exported state on this agent (the roam-to AP) and
// returns a resynchronisation ACK the caller must forward to the TCP
// sender: it re-advertises the window from the new AP, so a sender
// stalled on the roam-from AP's last (possibly zero) advertisement
// resumes immediately. For a flow that arrives bypassed or draining no
// resync ACK is returned (nil): a bypassed flow no longer impersonates
// the client, and the client's own ACKs reach the sender unsuppressed.
func (a *Agent) Import(ex ExportedFlow) *packet.Datagram {
	f := a.flowFor(ex.Flow)
	f.initialized = true
	f.sawData = ex.SawData
	f.seqHigh = ex.SeqHigh
	f.seqExp = ex.SeqExp
	f.seqFack = ex.SeqFack
	f.seqTCP = ex.SeqTCP
	f.clientWindow = ex.ClientWindow
	f.clientWScale = ex.ClientWScale
	f.clientSACKOK = ex.ClientSACKOK
	f.lastFastAckAt = a.now()
	f.gstate = ex.Guard
	f.bypassAt = ex.BypassAt
	f.debtAtBypass = ex.DebtAtBypass
	// Detector state restarts cleanly on the new AP: the roam itself is
	// not evidence of pathology.
	f.debtProgressAt = a.now()
	f.ackProgressAt = a.now()
	f.stormCount = 0
	for _, d := range ex.Cache {
		f.cacheInsert(d, a.cfg.CacheLimitBytes)
	}
	if ev, _ := a.bud.reclaim(f); ev > 0 {
		a.stats.SharedCacheEvictions += int64(ev)
		obsm.sharedEvictions.Add(int64(ev))
	}
	a.accountFlow(f)
	if f.gstate >= GuardBypass || !ex.SawData {
		// A bypassed flow no longer impersonates the client; a dormant
		// (never-saw-data) flow never started. Neither gets a resync ACK.
		a.checkFlow(f)
		return nil
	}
	return a.buildAck(f, f.seqFack)
}
