package littletable

import (
	"testing"

	"repro/internal/sim"
)

// TestRetentionPrunesOldRows drives enough inserts through a
// retention-bounded table to trigger several amortized prune passes and
// checks the trailing window is what survives.
func TestRetentionPrunesOldRows(t *testing.T) {
	db := NewDB()
	db.SetRetention(1 * sim.Hour)
	tbl := db.Table("usage")

	// One row per minute for 10 hours: far past the window, and far more
	// than pruneBatch inserts.
	for i := 0; i < 600; i++ {
		tbl.InsertValue("ap1", sim.Time(i)*sim.Minute, "v", float64(i))
	}
	last := 599 * sim.Minute
	cutoff := last - 1*sim.Hour

	rows := tbl.Range("ap1", 0, last+1)
	if len(rows) == 0 {
		t.Fatal("all rows pruned")
	}
	// Nothing older than the cutoff beyond the amortization overshoot.
	if oldest := rows[0].At; oldest < cutoff-pruneBatch*sim.Minute {
		t.Fatalf("oldest surviving row at %v, cutoff %v", oldest, cutoff)
	}
	// Everything inside the window must survive (61 rows: both the
	// cutoff minute and the last minute are in the half-open range).
	inWindow := tbl.Range("ap1", cutoff, last+1)
	if want := 61; len(inWindow) != want {
		t.Fatalf("%d rows in window, want %d", len(inWindow), want)
	}
}

// TestRetentionRangeNearCutoff checks range queries straddling the
// retention boundary: rows inside the window are returned exactly, in
// order, with correct values; the pruned region simply reads empty.
func TestRetentionRangeNearCutoff(t *testing.T) {
	db := NewDB()
	db.SetRetention(30 * sim.Minute)
	tbl := db.Table("util")
	for i := 0; i < 300; i++ {
		tbl.InsertValue("k", sim.Time(i)*sim.Minute, "v", float64(i))
	}
	last := 299 * sim.Minute
	cutoff := last - 30*sim.Minute

	// A query straddling the cutoff returns only surviving rows, still in
	// time order with values intact.
	got := tbl.Range("k", cutoff-10*sim.Minute, cutoff+10*sim.Minute)
	for i, r := range got {
		if i > 0 && got[i-1].At >= r.At {
			t.Fatalf("rows out of order at %d", i)
		}
		if want := float64(r.At / sim.Minute); r.Field("v") != want {
			t.Fatalf("row at %v has value %f, want %f", r.At, r.Field("v"), want)
		}
	}
	// The most recent 30 minutes are fully intact (31 rows inclusive of
	// both the cutoff minute and the final minute).
	fresh := tbl.Range("k", cutoff, last+1)
	if len(fresh) != 31 {
		t.Fatalf("%d rows in the retention window, want 31", len(fresh))
	}
	if fresh[len(fresh)-1].At != last {
		t.Fatalf("newest row at %v, want %v", fresh[len(fresh)-1].At, last)
	}
}

// TestRetentionDisabled verifies zero/negative windows keep everything.
func TestRetentionDisabled(t *testing.T) {
	for _, window := range []sim.Time{0, -1} {
		db := NewDB()
		db.SetRetention(window)
		tbl := db.Table("x")
		for i := 0; i < 200; i++ {
			tbl.InsertValue("k", sim.Time(i)*sim.Hour, "v", 1)
		}
		if n := tbl.Len("k"); n != 200 {
			t.Fatalf("window %v: %d rows survived, want 200", window, n)
		}
	}
}

// TestRetentionAppliesToLaterTables checks the window set on the DB
// governs tables created after the call too.
func TestRetentionAppliesToLaterTables(t *testing.T) {
	db := NewDB()
	db.SetRetention(10 * sim.Minute)
	if db.Retention() != 10*sim.Minute {
		t.Fatalf("Retention() = %v", db.Retention())
	}
	tbl := db.Table("made-later")
	for i := 0; i < 2*pruneBatch; i++ {
		tbl.InsertValue("k", sim.Time(i)*sim.Minute, "v", 1)
	}
	if n := tbl.Len("k"); n >= 2*pruneBatch {
		t.Fatalf("no pruning happened: %d rows", n)
	}
}

// TestRetentionQuietTableTrimsOnRead is the regression for the staleness
// bug: pruning used to run only every pruneBatch inserts, so a table that
// went quiet below the threshold retained rows past the window forever.
// The read path now trims pending rows first, so every query of a quiet
// table converges to the window.
func TestRetentionQuietTableTrimsOnRead(t *testing.T) {
	db := NewDB()
	db.SetRetention(10 * sim.Minute)
	tbl := db.Table("quiet")
	// Far fewer inserts than pruneBatch: the insert-path amortization
	// alone would never trim these, no matter how long we wait.
	for i := 0; i < 20; i++ {
		tbl.InsertValue("k", sim.Time(i)*sim.Minute, "v", float64(i))
	}
	cutoff := 19*sim.Minute - 10*sim.Minute

	rows := tbl.Range("k", 0, 100*sim.Minute)
	if len(rows) == 0 {
		t.Fatal("all rows pruned")
	}
	if rows[0].At < cutoff {
		t.Fatalf("quiet table served row at %v, cutoff %v", rows[0].At, cutoff)
	}
	if want := 11; len(rows) != want {
		t.Fatalf("%d rows served, want %d (the full window)", len(rows), want)
	}
	// The trim actually removed the stale rows from storage, not just
	// from this response.
	if n := tbl.Len("k"); n != 11 {
		t.Fatalf("Len = %d after read-path trim, want 11", n)
	}
}

// TestRetentionQuietTableAllReadPaths drives each read entry point on its
// own quiet table and checks none of them serves out-of-window rows.
func TestRetentionQuietTableAllReadPaths(t *testing.T) {
	build := func() *Table {
		db := NewDB()
		db.SetRetention(5 * sim.Minute)
		tbl := db.Table("x")
		for i := 0; i < 12; i++ {
			tbl.InsertValue("k", sim.Time(i)*sim.Minute, "v", float64(i))
		}
		return tbl // newest row at 11m; window covers [6m, 11m]
	}
	if pts := build().FieldRange("k", "v", 0, sim.Hour); len(pts) != 6 || pts[0].At != 6*sim.Minute {
		t.Errorf("FieldRange served %d points starting at %v, want 6 from 6m", len(pts), pts[0].At)
	}
	if row, ok := build().Latest("k"); !ok || row.At != 11*sim.Minute {
		t.Errorf("Latest = (%v, %v), want row at 11m", row.At, ok)
	}
	if s := build().AggregateField("v", 0, sim.Hour); s.N() != 6 {
		t.Errorf("AggregateField saw %d values, want 6", s.N())
	}
	if sum := build().SumField("v", 0, sim.Hour); sum != 6+7+8+9+10+11 {
		t.Errorf("SumField = %f, want %d", sum, 6+7+8+9+10+11)
	}
}

// TestRetentionOutOfOrderInserts checks that a late-arriving old row
// (a delayed poll delivery) does not drag the cutoff backwards and is
// itself pruned once it falls out of the window.
func TestRetentionOutOfOrderInserts(t *testing.T) {
	db := NewDB()
	db.SetRetention(1 * sim.Hour)
	tbl := db.Table("usage")
	for i := 0; i < 200; i++ {
		tbl.InsertValue("k", sim.Time(i)*sim.Minute, "v", float64(i))
		if i == 150 {
			// Late delivery of a sample taken long ago: already outside
			// the window, must not survive the next prune pass.
			tbl.InsertValue("k", 5*sim.Minute, "v", -1)
		}
	}
	for _, r := range tbl.Range("k", 0, 200*sim.Minute) {
		if r.Field("v") == -1 {
			t.Fatal("stale out-of-order row survived retention")
		}
	}
}
