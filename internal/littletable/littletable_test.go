package littletable

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestInsertAndRange(t *testing.T) {
	db := NewDB()
	tb := db.Table("usage")
	for i := 0; i < 10; i++ {
		tb.InsertValue("ap1", sim.Time(i)*sim.Minute, "bytes", float64(i))
	}
	rows := tb.Range("ap1", 2*sim.Minute, 5*sim.Minute)
	if len(rows) != 3 {
		t.Fatalf("range returned %d rows", len(rows))
	}
	if rows[0].Field("bytes") != 2 || rows[2].Field("bytes") != 4 {
		t.Fatalf("wrong rows: %+v", rows)
	}
	// Half-open interval: to is exclusive.
	if len(tb.Range("ap1", 0, 0)) != 0 {
		t.Fatal("empty interval returned rows")
	}
	if tb.Len("ap1") != 10 || tb.Len("nope") != 0 {
		t.Fatal("Len wrong")
	}
}

func TestOutOfOrderInsert(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	tb.InsertValue("k", 30, "v", 3)
	tb.InsertValue("k", 10, "v", 1)
	tb.InsertValue("k", 20, "v", 2)
	rows := tb.Range("k", 0, 100)
	if len(rows) != 3 || rows[0].At != 10 || rows[1].At != 20 || rows[2].At != 30 {
		t.Fatalf("not resorted: %+v", rows)
	}
}

func TestLatest(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	if _, ok := tb.Latest("k"); ok {
		t.Fatal("latest on empty key")
	}
	tb.InsertValue("k", 10, "v", 1)
	tb.InsertValue("k", 30, "v", 3)
	tb.InsertValue("k", 20, "v", 2)
	row, ok := tb.Latest("k")
	if !ok || row.At != 30 || row.Field("v") != 3 {
		t.Fatalf("latest = %+v", row)
	}
}

func TestDownsample(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	// Two values in each 10-unit bucket: (0,2), (4,6), ...
	for i := sim.Time(0); i < 40; i += 5 {
		tb.InsertValue("k", i, "v", float64(i))
	}
	pts := tb.Downsample("k", "v", 0, 40, 10)
	if len(pts) != 4 {
		t.Fatalf("buckets = %d", len(pts))
	}
	if pts[0].V != 2.5 || pts[1].V != 12.5 {
		t.Fatalf("bucket means: %+v", pts)
	}
}

func TestDownsampleSkipsEmptyBuckets(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	tb.InsertValue("k", 5, "v", 1)
	tb.InsertValue("k", 35, "v", 2)
	pts := tb.Downsample("k", "v", 0, 40, 10)
	if len(pts) != 2 {
		t.Fatalf("buckets = %+v", pts)
	}
	if pts[1].At != 30 {
		t.Fatalf("second bucket at %v", pts[1].At)
	}
}

func TestAggregateAndSum(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	tb.InsertValue("a", 1, "v", 10)
	tb.InsertValue("b", 2, "v", 20)
	tb.InsertValue("b", 3, "v", 30)
	s := tb.AggregateField("v", 0, 100)
	if s.N() != 3 || s.Mean() != 20 {
		t.Fatalf("aggregate: %v", s.Summarize())
	}
	if got := tb.SumField("v", 0, 100); got != 60 {
		t.Fatalf("sum = %v", got)
	}
	if got := tb.SumField("v", 2, 3); got != 20 {
		t.Fatalf("windowed sum = %v", got)
	}
}

func TestTrim(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	for i := sim.Time(0); i < 10; i++ {
		tb.InsertValue("k", i, "v", 1)
	}
	if removed := tb.Trim(5); removed != 5 {
		t.Fatalf("trim removed %d", removed)
	}
	if tb.Len("k") != 5 {
		t.Fatalf("remaining %d", tb.Len("k"))
	}
	if rows := tb.Range("k", 0, 100); rows[0].At != 5 {
		t.Fatalf("oldest after trim: %v", rows[0].At)
	}
}

func TestTableIsolationAndNames(t *testing.T) {
	db := NewDB()
	db.Table("a").InsertValue("k", 1, "v", 1)
	db.Table("b").InsertValue("k", 1, "v", 2)
	if db.Table("a").Range("k", 0, 10)[0].Field("v") != 1 {
		t.Fatal("tables not isolated")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if db.Table("a") != db.Table("a") {
		t.Fatal("Table not idempotent")
	}
}

func TestFieldRange(t *testing.T) {
	db := NewDB()
	tb := db.Table("t")
	tb.Insert("k", 1, map[string]float64{"a": 1, "b": 2})
	tb.Insert("k", 2, map[string]float64{"b": 3})
	pts := tb.FieldRange("k", "a", 0, 10)
	if len(pts) != 1 || pts[0].V != 1 {
		t.Fatalf("FieldRange skips missing fields: %+v", pts)
	}
}

// Property: for any insertion order, Range(key, lo, hi) returns exactly
// the rows with lo <= At < hi in sorted order.
func TestQuickRangeCorrect(t *testing.T) {
	f := func(times []uint16, loRaw, spanRaw uint16) bool {
		db := NewDB()
		tb := db.Table("t")
		for _, at := range times {
			tb.InsertValue("k", sim.Time(at), "v", float64(at))
		}
		lo := sim.Time(loRaw)
		hi := lo + sim.Time(spanRaw)
		got := tb.Range("k", lo, hi)
		want := 0
		for _, at := range times {
			if sim.Time(at) >= lo && sim.Time(at) < hi {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].At < got[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringer(t *testing.T) {
	db := NewDB()
	tb := db.Table("x")
	tb.InsertValue("k", 1, "v", 1)
	if tb.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	db.Table("usage").Insert("ap1", 100, map[string]float64{"bytes": 42, "served": 1.5})
	db.Table("usage").InsertValue("ap2", 200, "bytes", 7)
	db.Table("latency").InsertValue("ap1", 150, "ms", 12.5)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("usage").Len("ap1"); got != 1 {
		t.Fatalf("ap1 rows = %d", got)
	}
	row, ok := db2.Table("usage").Latest("ap1")
	if !ok || row.At != 100 || row.Field("bytes") != 42 || row.Field("served") != 1.5 {
		t.Fatalf("row = %+v", row)
	}
	if db2.Table("latency").Len("ap1") != 1 {
		t.Fatal("latency table lost")
	}
	names := db2.TableNames()
	if len(names) != 2 {
		t.Fatalf("tables = %v", names)
	}
}

func TestSaveDeterministic(t *testing.T) {
	build := func() *DB {
		db := NewDB()
		db.Table("b").InsertValue("z", 3, "v", 1)
		db.Table("a").InsertValue("y", 1, "v", 2)
		db.Table("a").InsertValue("x", 2, "v", 3)
		return db
	}
	var b1, b2 bytes.Buffer
	if err := build().Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Save(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("save output not deterministic")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := db.Load(strings.NewReader(`{"t":"","k":"x","at":1,"f":{}}`)); err == nil {
		t.Fatal("empty table name accepted")
	}
	// Empty input is fine.
	if err := db.Load(strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
}
