package littletable

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

func batchRows(n int, start, step sim.Time) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{At: start + sim.Time(i)*step, Fields: map[string]float64{"v": float64(i)}}
	}
	return rows
}

func TestInsertBatchOrdered(t *testing.T) {
	db := NewDB()
	tab := db.Table("m")
	tab.InsertBatch("ap1", batchRows(10, 0, sim.Second))
	tab.InsertBatch("ap1", batchRows(10, 10*sim.Second, sim.Second))
	if got := tab.Len("ap1"); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	rows := tab.Range("ap1", 0, sim.Hour)
	for i := 1; i < len(rows); i++ {
		if rows[i-1].At > rows[i].At {
			t.Fatalf("rows out of order at %d: %v > %v", i, rows[i-1].At, rows[i].At)
		}
	}
	if last, ok := tab.Latest("ap1"); !ok || last.At != 19*sim.Second {
		t.Fatalf("Latest = %v, %v; want 19s", last.At, ok)
	}
}

func TestInsertBatchEmptyIsNoop(t *testing.T) {
	db := NewDB()
	tab := db.Table("m")
	tab.InsertBatch("k", nil)
	tab.InsertBatch("k", []Row{})
	if got := tab.Len("k"); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if len(tab.Keys()) != 0 {
		t.Fatalf("Keys = %v, want empty", tab.Keys())
	}
}

// TestInsertBatchUnsorted covers the two disorder shapes: a batch that is
// internally unsorted, and a sorted batch that lands before already-stored
// rows. Both must read back in time order.
func TestInsertBatchUnsorted(t *testing.T) {
	db := NewDB()
	tab := db.Table("m")
	tab.InsertBatch("k", []Row{
		{At: 5 * sim.Second, Fields: map[string]float64{"v": 5}},
		{At: 1 * sim.Second, Fields: map[string]float64{"v": 1}},
		{At: 3 * sim.Second, Fields: map[string]float64{"v": 3}},
	})
	// Sorted batch, but older than the stored maximum.
	tab.InsertBatch("k", batchRows(2, 0, sim.Second))
	rows := tab.Range("k", 0, sim.Hour)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].At > rows[i].At {
			t.Fatalf("rows out of order at %d", i)
		}
	}
	if rows[0].At != 0 || rows[len(rows)-1].At != 5*sim.Second {
		t.Fatalf("range bounds wrong: %v .. %v", rows[0].At, rows[len(rows)-1].At)
	}
}

// TestInsertBatchMixedWithInsert interleaves the two write paths on one
// key and checks they observe a single consistent series.
func TestInsertBatchMixedWithInsert(t *testing.T) {
	db := NewDB()
	tab := db.Table("m")
	tab.Insert("k", 2*sim.Second, map[string]float64{"v": 2})
	tab.InsertBatch("k", batchRows(3, 10*sim.Second, sim.Second))
	tab.Insert("k", 1*sim.Second, map[string]float64{"v": 1}) // out of order
	rows := tab.Range("k", 0, sim.Hour)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if rows[0].At != sim.Second || rows[1].At != 2*sim.Second {
		t.Fatalf("lazy re-sort failed: first rows at %v, %v", rows[0].At, rows[1].At)
	}
}

// TestInsertBatchRetention verifies a batch advances the amortized
// retention counter by its row count, not by one call.
func TestInsertBatchRetention(t *testing.T) {
	db := NewDB()
	db.SetRetention(10 * sim.Second)
	tab := db.Table("m")
	// pruneBatch rows in one batch must trigger exactly one trim pass,
	// leaving only the trailing window.
	tab.InsertBatch("k", batchRows(pruneBatch, 0, sim.Second))
	if got, want := tab.Len("k"), 11; got != want {
		// Rows at 53s..63s survive the cutoff (63s - 10s).
		t.Fatalf("Len after batched retention = %d, want %d", got, want)
	}
}

// TestInsertBatchConcurrent hammers one shared table from many
// goroutines, the fleetd ingest shape; run under -race this is the
// locking contract's regression test.
func TestInsertBatchConcurrent(t *testing.T) {
	db := NewDB()
	tab := db.Table("m")
	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("net%d", w)
			for i := 0; i < 50; i++ {
				tab.InsertBatch(key, batchRows(4, sim.Time(i)*sim.Minute, sim.Second))
			}
		}(w)
	}
	wg.Wait()
	if got := len(tab.Keys()); got != writers {
		t.Fatalf("keys = %d, want %d", got, writers)
	}
	for _, k := range tab.Keys() {
		if got := tab.Len(k); got != 200 {
			t.Fatalf("key %s has %d rows, want 200", k, got)
		}
	}
}

// BenchmarkInsert and BenchmarkInsertBatch quantify the amortization win:
// a batch pays one lock round-trip, one sort check, and one metrics
// observation for the whole sample set instead of one per row. Each
// iteration writes and then trims the same 32-row window, so both
// benchmarks measure steady-state cost on a bounded table and the Trim
// overhead cancels out of the comparison.
func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	tab := db.Table("bench")
	rows := batchRows(32, 0, sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * sim.Minute
		for _, r := range rows {
			tab.Insert("k", at+r.At, r.Fields)
		}
		tab.Trim(at + sim.Minute)
	}
}

func BenchmarkInsertBatch(b *testing.B) {
	db := NewDB()
	tab := db.Table("bench")
	rows := batchRows(32, 0, sim.Second)
	buf := make([]Row, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * sim.Minute
		for j, r := range rows {
			buf[j] = Row{At: at + r.At, Fields: r.Fields}
		}
		tab.InsertBatch("k", buf)
		tab.Trim(at + sim.Minute)
	}
}
