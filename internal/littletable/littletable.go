// Package littletable is a small in-memory time-series store modeled on
// LittleTable (Rhea et al., SIGMOD '17), the database the Meraki backend
// uses to hold per-AP statistics (§2.2). It stores rows clustered by
// (table, key) and ordered by timestamp, and supports the access patterns
// the backend needs: time-ordered appends, time-range scans, latest-value
// lookups, downsampling, and retention trimming.
//
// Storage is columnar (struct-of-arrays): a series keeps one flat
// []float64 of field values plus a compact header per row pointing at an
// interned field schema. A fleet DB ingesting millions of rows pays ~20
// bytes of header and 8 bytes per field instead of a map[string]float64
// per row; the handful of distinct field sets a table ever sees (usage,
// utilization, pass summaries…) are interned once per table and shared by
// every row.
package littletable

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Row is one observation: a timestamp plus named numeric fields.
type Row struct {
	At     sim.Time
	Fields map[string]float64
}

// Field returns the named field value, or 0 if absent.
func (r Row) Field(name string) float64 { return r.Fields[name] }

// rowSchema is an interned field set: names in sorted order, and the
// value-slot index of each. Rows reference a schema instead of carrying
// their own map; all rows with the same field set share one schema.
type rowSchema struct {
	names []string
	idx   map[string]int
}

// crow is one stored row: its timestamp, its schema, and the offset of
// its first value in the series' flat value array (the row owns
// len(schema.names) consecutive slots).
type crow struct {
	at     sim.Time
	schema *rowSchema
	off    int32
}

type series struct {
	rows []crow
	vals []float64
	// dead counts value slots in vals that belong to pruned rows; when
	// they outnumber the live slots, trim compacts the array.
	dead int
	// unsorted marks that an out-of-order append happened and rows need
	// re-sorting before the next read. Only the headers move on a sort —
	// offsets into vals stay valid.
	unsorted bool
}

func (s *series) ensureSorted() {
	if s.unsorted {
		sort.SliceStable(s.rows, func(i, j int) bool { return s.rows[i].at < s.rows[j].at })
		s.unsorted = false
	}
}

// materialize converts a stored row back to the exported map form.
func (s *series) materialize(r crow) Row {
	fields := make(map[string]float64, len(r.schema.names))
	for i, name := range r.schema.names {
		fields[name] = s.vals[int(r.off)+i]
	}
	return Row{At: r.at, Fields: fields}
}

// value returns the named field of a stored row without materializing it.
func (s *series) value(r crow, field string) (float64, bool) {
	i, ok := r.schema.idx[field]
	if !ok {
		return 0, false
	}
	return s.vals[int(r.off)+i], true
}

// Table holds the series of every key within one logical table.
//
// A Table is safe for concurrent use: every accessor takes the table
// lock. Single-writer callers (one simulation engine feeding one DB) pay
// an uncontended mutex; multi-writer callers — internal/fleetd's worker
// pool ingesting per-network telemetry into one shared DB — should
// prefer InsertBatch, which amortizes the lock, the sort check, the
// retention pass, and the store metrics over a whole batch of rows.
// Read methods (Range, Latest) return freshly materialized rows that do
// not alias internal storage.
type Table struct {
	mu     sync.Mutex
	name   string
	byKey  map[string]*series
	nowRef func() sim.Time

	// Schema interning: every distinct sorted field set a row ever used,
	// keyed by its joined names, plus the last schema seen — consecutive
	// inserts almost always repeat the previous row's field set.
	schemas    map[string]*rowSchema
	lastSchema *rowSchema

	// db links back to the owning DB for the retention setting; nil for
	// a standalone table (no retention).
	db *DB
	// maxAt is the newest timestamp ever inserted — the reference point
	// retention prunes against (monotonic even when inserts arrive out
	// of order).
	maxAt sim.Time
	// sincePrune counts inserts since the last retention pass, so
	// pruning costs are amortized over pruneBatch appends. Reads treat a
	// non-zero count as "rows may have aged out" and trim before
	// answering (see pruneOnReadLocked).
	sincePrune int
}

// pruneBatch is how many inserts a table accepts between insert-path
// retention passes. Trimming re-slices every key, so doing it on every
// append would be quadratic; once per batch keeps the overshoot bounded
// (at most pruneBatch rows past the window) and the amortized cost
// constant. The read path trims pending rows regardless, so queries never
// observe the overshoot of a table that has gone quiet.
const pruneBatch = 64

// DB is a collection of named tables. Table lookup and the retention
// setting are guarded by the DB lock, so independent goroutines (e.g. the
// fleetd ingest path) may resolve tables concurrently; row access is
// guarded per table.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	retention sim.Time
}

// NewDB returns an empty store.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// SetRetention bounds every table to a trailing window: rows older than
// (newest insert - window) are pruned during inserts and before reads.
// Zero or negative disables retention. The window applies to tables
// created before or after the call.
func (db *DB) SetRetention(window sim.Time) {
	db.mu.Lock()
	db.retention = window
	db.mu.Unlock()
}

// Retention returns the configured trailing window (0 = unlimited).
func (db *DB) Retention() sim.Time {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retention
}

// Table returns (creating if needed) the named table.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok = db.tables[name]; ok {
		return t
	}
	t = &Table{name: name, byKey: map[string]*series{}, schemas: map[string]*rowSchema{}, db: db}
	db.tables[name] = t
	return t
}

// TableNames returns all table names in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// schemaFor interns the field set of one row. The fast path — the same
// field set as the previous insert — is a length check plus one map
// lookup per field, no allocation, no sort.
func (t *Table) schemaFor(fields map[string]float64) *rowSchema {
	if last := t.lastSchema; last != nil && len(last.names) == len(fields) {
		match := true
		for name := range fields {
			if _, ok := last.idx[name]; !ok {
				match = false
				break
			}
		}
		if match {
			return last
		}
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	key := strings.Join(names, "\x00")
	sc, ok := t.schemas[key]
	if !ok {
		idx := make(map[string]int, len(names))
		for i, name := range names {
			idx[name] = i
		}
		sc = &rowSchema{names: names, idx: idx}
		t.schemas[key] = sc
	}
	t.lastSchema = sc
	return sc
}

// Insert appends a row for key. Appends are expected to be in time order
// (the common case for a poller); out-of-order inserts are accepted and
// lazily re-sorted.
func (t *Table) Insert(key string, at sim.Time, fields map[string]float64) {
	start := time.Now()
	defer func() { obsm.insertNS.Observe(time.Since(start).Nanoseconds()) }()
	obsm.rowsInserted.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(key, []Row{{At: at, Fields: fields}})
	t.maybePruneLocked(1)
}

// InsertBatch appends a batch of rows for key, taking the table lock once
// and deferring the sort check, the amortized retention pass, and the
// store metrics to a single pass over the batch. This is the bulk-ingest
// path: a poller delivering one AP's whole sample set, or fleetd draining
// a network's per-pass telemetry into the shared fleet DB, pays one lock
// round-trip instead of len(rows).
//
// Rows need not be sorted among themselves or against existing rows;
// disorder is detected here and repaired lazily on the next read, exactly
// as for Insert.
func (t *Table) InsertBatch(key string, rows []Row) {
	if len(rows) == 0 {
		return
	}
	start := time.Now()
	defer func() { obsm.insertNS.Observe(time.Since(start).Nanoseconds()) }()
	obsm.rowsInserted.Add(int64(len(rows)))
	obsm.batchRows.Observe(int64(len(rows)))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(key, rows)
	t.maybePruneLocked(len(rows))
}

// appendLocked appends rows to key's series, interning each row's field
// set and copying its values into the flat array, maintaining the
// unsorted flag and the table's newest-timestamp watermark. Caller holds
// t.mu.
func (t *Table) appendLocked(key string, rows []Row) {
	s, ok := t.byKey[key]
	if !ok {
		s = &series{}
		t.byKey[key] = s
	}
	last := sim.Time(0)
	if n := len(s.rows); n > 0 {
		last = s.rows[n-1].at
	} else if len(rows) > 0 {
		last = rows[0].At
	}
	for _, r := range rows {
		if r.At < last {
			s.unsorted = true
		} else {
			last = r.At
		}
		if r.At > t.maxAt {
			t.maxAt = r.At
		}
		sc := t.schemaFor(r.Fields)
		off := int32(len(s.vals))
		for _, name := range sc.names {
			s.vals = append(s.vals, r.Fields[name])
		}
		s.rows = append(s.rows, crow{at: r.At, schema: sc, off: off})
	}
}

// maybePruneLocked advances the amortized-retention counter by n inserts
// and runs a trim pass when the batch threshold is crossed. Caller holds
// t.mu.
func (t *Table) maybePruneLocked(n int) {
	if t.db == nil {
		return
	}
	retention := t.db.Retention()
	if retention <= 0 {
		return
	}
	t.sincePrune += n
	if t.sincePrune >= pruneBatch {
		t.sincePrune = 0
		if cutoff := t.maxAt - retention; cutoff > 0 {
			t.trimLocked(cutoff)
		}
	}
}

// pruneOnReadLocked trims rows that aged out of the retention window
// before a read answers, so a table that has gone quiet — its amortized
// insert-path counter stuck below pruneBatch forever — still never serves
// rows past the window. A zero counter means no insert happened since the
// last pass, so there is nothing new to age out relative to maxAt and the
// read proceeds without rescanning. Caller holds t.mu.
func (t *Table) pruneOnReadLocked() {
	if t.db == nil || t.sincePrune == 0 {
		return
	}
	retention := t.db.Retention()
	if retention <= 0 {
		return
	}
	t.sincePrune = 0
	if cutoff := t.maxAt - retention; cutoff > 0 {
		t.trimLocked(cutoff)
	}
}

// InsertValue appends a single-field row.
func (t *Table) InsertValue(key string, at sim.Time, field string, v float64) {
	t.Insert(key, at, map[string]float64{field: v})
}

// Keys returns every key with at least one row, sorted.
func (t *Table) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.keysLocked()
}

func (t *Table) keysLocked() []string {
	out := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of rows stored for key.
func (t *Table) Len(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byKey[key]; ok {
		return len(s.rows)
	}
	return 0
}

// Range returns the rows for key with from <= At < to, in time order.
// Rows are freshly materialized: the result does not alias internal
// storage and stays valid indefinitely.
func (t *Table) Range(key string, from, to sim.Time) []Row {
	start := time.Now()
	defer func() { obsm.queryNS.Observe(time.Since(start).Nanoseconds()) }()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneOnReadLocked()
	s, ok := t.byKey[key]
	if !ok {
		return nil
	}
	lo, hi := s.search(from, to)
	if lo == hi {
		return nil
	}
	out := make([]Row, 0, hi-lo)
	for _, r := range s.rows[lo:hi] {
		out = append(out, s.materialize(r))
	}
	return out
}

// search returns the [lo, hi) header range covering from <= at < to,
// sorting first if needed.
func (s *series) search(from, to sim.Time) (int, int) {
	s.ensureSorted()
	lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].at >= from })
	hi := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].at >= to })
	return lo, hi
}

// Latest returns the most recent row for key.
func (t *Table) Latest(key string) (Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneOnReadLocked()
	s, ok := t.byKey[key]
	if !ok || len(s.rows) == 0 {
		return Row{}, false
	}
	s.ensureSorted()
	return s.materialize(s.rows[len(s.rows)-1]), true
}

// FieldSeries extracts one field across a time range as (time, value) pairs.
type Point struct {
	At sim.Time
	V  float64
}

// FieldRange returns the named field over [from, to). It reads the
// columnar storage directly — no per-row map materialization.
func (t *Table) FieldRange(key, field string, from, to sim.Time) []Point {
	start := time.Now()
	defer func() { obsm.queryNS.Observe(time.Since(start).Nanoseconds()) }()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneOnReadLocked()
	s, ok := t.byKey[key]
	if !ok {
		return nil
	}
	lo, hi := s.search(from, to)
	out := make([]Point, 0, hi-lo)
	for _, r := range s.rows[lo:hi] {
		if v, ok := s.value(r, field); ok {
			out = append(out, Point{At: r.at, V: v})
		}
	}
	return out
}

// Downsample buckets the named field over [from, to) into fixed-width
// windows, averaging within each bucket. Buckets with no data are skipped.
func (t *Table) Downsample(key, field string, from, to, bucket sim.Time) []Point {
	if bucket <= 0 {
		panic("littletable: bucket must be positive")
	}
	var out []Point
	var acc stats.Welford
	bucketStart := from
	flush := func() {
		if acc.N() > 0 {
			out = append(out, Point{At: bucketStart, V: acc.Mean()})
		}
		acc = stats.Welford{}
	}
	for _, p := range t.FieldRange(key, field, from, to) {
		for p.At >= bucketStart+bucket {
			flush()
			bucketStart += bucket
		}
		acc.Add(p.V)
	}
	flush()
	return out
}

// AggregateField collects the named field across ALL keys over [from, to)
// into a Sample, the operation behind every fleet-wide CDF in Section 3.
// One lock acquisition covers the whole scan; keys are visited in sorted
// order so the sample fills deterministically.
func (t *Table) AggregateField(field string, from, to sim.Time) *stats.Sample {
	sample := stats.NewSample(1024)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneOnReadLocked()
	for _, k := range t.keysLocked() {
		s := t.byKey[k]
		lo, hi := s.search(from, to)
		for _, r := range s.rows[lo:hi] {
			if v, ok := s.value(r, field); ok {
				sample.Add(v)
			}
		}
	}
	return sample
}

// SumField sums the named field across all keys over [from, to), e.g. total
// network usage per day (Table 2). Keys are visited in sorted order, so
// the float accumulation order is deterministic.
func (t *Table) SumField(field string, from, to sim.Time) float64 {
	sum := 0.0
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneOnReadLocked()
	for _, k := range t.keysLocked() {
		s := t.byKey[k]
		lo, hi := s.search(from, to)
		for _, r := range s.rows[lo:hi] {
			if v, ok := s.value(r, field); ok {
				sum += v
			}
		}
	}
	return sum
}

// Trim discards rows older than cutoff for all keys (retention).
func (t *Table) Trim(cutoff sim.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trimLocked(cutoff)
}

func (t *Table) trimLocked(cutoff sim.Time) int {
	removed := 0
	for _, s := range t.byKey {
		s.ensureSorted()
		lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].at >= cutoff })
		if lo == 0 {
			continue
		}
		removed += lo
		for _, r := range s.rows[:lo] {
			s.dead += len(r.schema.names)
		}
		s.rows = append(s.rows[:0], s.rows[lo:]...)
		s.compact()
	}
	if removed > 0 {
		obsm.rowsPruned.Add(int64(removed))
	}
	return removed
}

// compact rewrites the flat value array when pruned rows' slots outnumber
// the live ones, keeping the store's resident size proportional to the
// retention window rather than to everything ever inserted.
func (s *series) compact() {
	if s.dead <= len(s.vals)-s.dead {
		return
	}
	vals := make([]float64, 0, len(s.vals)-s.dead)
	for i := range s.rows {
		r := &s.rows[i]
		n := len(r.schema.names)
		off := int32(len(vals))
		vals = append(vals, s.vals[int(r.off):int(r.off)+n]...)
		r.off = off
	}
	s.vals = vals
	s.dead = 0
}

func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	rows := 0
	for _, s := range t.byKey {
		rows += len(s.rows)
	}
	return fmt.Sprintf("table %s: %d keys, %d rows", t.name, len(t.byKey), rows)
}
