// Package littletable is a small in-memory time-series store modeled on
// LittleTable (Rhea et al., SIGMOD '17), the database the Meraki backend
// uses to hold per-AP statistics (§2.2). It stores rows clustered by
// (table, key) and ordered by timestamp, and supports the access patterns
// the backend needs: time-ordered appends, time-range scans, latest-value
// lookups, downsampling, and retention trimming.
package littletable

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Row is one observation: a timestamp plus named numeric fields.
type Row struct {
	At     sim.Time
	Fields map[string]float64
}

// Field returns the named field value, or 0 if absent.
func (r Row) Field(name string) float64 { return r.Fields[name] }

type series struct {
	rows []Row
	// unsorted marks that an out-of-order append happened and rows need
	// re-sorting before the next read.
	unsorted bool
}

func (s *series) ensureSorted() {
	if s.unsorted {
		sort.SliceStable(s.rows, func(i, j int) bool { return s.rows[i].At < s.rows[j].At })
		s.unsorted = false
	}
}

// Table holds the series of every key within one logical table.
type Table struct {
	name   string
	byKey  map[string]*series
	nowRef func() sim.Time

	// db links back to the owning DB for the retention setting; nil for
	// a standalone table (no retention).
	db *DB
	// maxAt is the newest timestamp ever inserted — the reference point
	// retention prunes against (monotonic even when inserts arrive out
	// of order).
	maxAt sim.Time
	// sincePrune counts inserts since the last retention pass, so
	// pruning costs are amortized over pruneBatch appends.
	sincePrune int
}

// pruneBatch is how many inserts a table accepts between retention
// passes. Trimming re-slices every key, so doing it on every append
// would be quadratic; once per batch keeps the overshoot bounded (at
// most pruneBatch rows past the window) and the amortized cost constant.
const pruneBatch = 64

// DB is a collection of named tables.
type DB struct {
	tables    map[string]*Table
	retention sim.Time
}

// NewDB returns an empty store.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// SetRetention bounds every table to a trailing window: rows older than
// (newest insert - window) are pruned during inserts. Zero or negative
// disables retention. The window applies to tables created before or
// after the call.
func (db *DB) SetRetention(window sim.Time) { db.retention = window }

// Retention returns the configured trailing window (0 = unlimited).
func (db *DB) Retention() sim.Time { return db.retention }

// Table returns (creating if needed) the named table.
func (db *DB) Table(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		t = &Table{name: name, byKey: map[string]*series{}, db: db}
		db.tables[name] = t
	}
	return t
}

// TableNames returns all table names in sorted order.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row for key. Appends are expected to be in time order
// (the common case for a poller); out-of-order inserts are accepted and
// lazily re-sorted.
func (t *Table) Insert(key string, at sim.Time, fields map[string]float64) {
	start := time.Now()
	defer func() { obsm.insertNS.Observe(time.Since(start).Nanoseconds()) }()
	obsm.rowsInserted.Inc()
	s, ok := t.byKey[key]
	if !ok {
		s = &series{}
		t.byKey[key] = s
	}
	if n := len(s.rows); n > 0 && s.rows[n-1].At > at {
		s.unsorted = true
	}
	s.rows = append(s.rows, Row{At: at, Fields: fields})
	if at > t.maxAt {
		t.maxAt = at
	}
	if t.db != nil && t.db.retention > 0 {
		t.sincePrune++
		if t.sincePrune >= pruneBatch {
			t.sincePrune = 0
			if cutoff := t.maxAt - t.db.retention; cutoff > 0 {
				t.Trim(cutoff)
			}
		}
	}
}

// InsertValue appends a single-field row.
func (t *Table) InsertValue(key string, at sim.Time, field string, v float64) {
	t.Insert(key, at, map[string]float64{field: v})
}

// Keys returns every key with at least one row, sorted.
func (t *Table) Keys() []string {
	out := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of rows stored for key.
func (t *Table) Len(key string) int {
	if s, ok := t.byKey[key]; ok {
		return len(s.rows)
	}
	return 0
}

// Range returns the rows for key with from <= At < to, in time order. The
// returned slice aliases internal storage and must not be modified.
func (t *Table) Range(key string, from, to sim.Time) []Row {
	start := time.Now()
	defer func() { obsm.queryNS.Observe(time.Since(start).Nanoseconds()) }()
	s, ok := t.byKey[key]
	if !ok {
		return nil
	}
	s.ensureSorted()
	lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= from })
	hi := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= to })
	return s.rows[lo:hi]
}

// Latest returns the most recent row for key.
func (t *Table) Latest(key string) (Row, bool) {
	s, ok := t.byKey[key]
	if !ok || len(s.rows) == 0 {
		return Row{}, false
	}
	s.ensureSorted()
	return s.rows[len(s.rows)-1], true
}

// FieldSeries extracts one field across a time range as (time, value) pairs.
type Point struct {
	At sim.Time
	V  float64
}

// FieldRange returns the named field over [from, to).
func (t *Table) FieldRange(key, field string, from, to sim.Time) []Point {
	rows := t.Range(key, from, to)
	out := make([]Point, 0, len(rows))
	for _, r := range rows {
		if v, ok := r.Fields[field]; ok {
			out = append(out, Point{At: r.At, V: v})
		}
	}
	return out
}

// Downsample buckets the named field over [from, to) into fixed-width
// windows, averaging within each bucket. Buckets with no data are skipped.
func (t *Table) Downsample(key, field string, from, to, bucket sim.Time) []Point {
	if bucket <= 0 {
		panic("littletable: bucket must be positive")
	}
	var out []Point
	var acc stats.Welford
	bucketStart := from
	flush := func() {
		if acc.N() > 0 {
			out = append(out, Point{At: bucketStart, V: acc.Mean()})
		}
		acc = stats.Welford{}
	}
	for _, p := range t.FieldRange(key, field, from, to) {
		for p.At >= bucketStart+bucket {
			flush()
			bucketStart += bucket
		}
		acc.Add(p.V)
	}
	flush()
	return out
}

// AggregateField collects the named field across ALL keys over [from, to)
// into a Sample, the operation behind every fleet-wide CDF in Section 3.
func (t *Table) AggregateField(field string, from, to sim.Time) *stats.Sample {
	sample := stats.NewSample(1024)
	for _, k := range t.Keys() {
		for _, r := range t.Range(k, from, to) {
			if v, ok := r.Fields[field]; ok {
				sample.Add(v)
			}
		}
	}
	return sample
}

// SumField sums the named field across all keys over [from, to), e.g. total
// network usage per day (Table 2).
func (t *Table) SumField(field string, from, to sim.Time) float64 {
	sum := 0.0
	for _, k := range t.Keys() {
		for _, r := range t.Range(k, from, to) {
			sum += r.Fields[field]
		}
	}
	return sum
}

// Trim discards rows older than cutoff for all keys (retention).
func (t *Table) Trim(cutoff sim.Time) int {
	removed := 0
	for _, s := range t.byKey {
		s.ensureSorted()
		lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= cutoff })
		if lo > 0 {
			removed += lo
			s.rows = append(s.rows[:0], s.rows[lo:]...)
		}
	}
	if removed > 0 {
		obsm.rowsPruned.Add(int64(removed))
	}
	return removed
}

func (t *Table) String() string {
	rows := 0
	for _, s := range t.byKey {
		rows += len(s.rows)
	}
	return fmt.Sprintf("table %s: %d keys, %d rows", t.name, len(t.byKey), rows)
}
