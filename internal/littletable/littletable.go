// Package littletable is a small in-memory time-series store modeled on
// LittleTable (Rhea et al., SIGMOD '17), the database the Meraki backend
// uses to hold per-AP statistics (§2.2). It stores rows clustered by
// (table, key) and ordered by timestamp, and supports the access patterns
// the backend needs: time-ordered appends, time-range scans, latest-value
// lookups, downsampling, and retention trimming.
package littletable

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Row is one observation: a timestamp plus named numeric fields.
type Row struct {
	At     sim.Time
	Fields map[string]float64
}

// Field returns the named field value, or 0 if absent.
func (r Row) Field(name string) float64 { return r.Fields[name] }

type series struct {
	rows []Row
	// unsorted marks that an out-of-order append happened and rows need
	// re-sorting before the next read.
	unsorted bool
}

func (s *series) ensureSorted() {
	if s.unsorted {
		sort.SliceStable(s.rows, func(i, j int) bool { return s.rows[i].At < s.rows[j].At })
		s.unsorted = false
	}
}

// Table holds the series of every key within one logical table.
//
// A Table is safe for concurrent use: every accessor takes the table
// lock. Single-writer callers (one simulation engine feeding one DB) pay
// an uncontended mutex; multi-writer callers — internal/fleetd's worker
// pool ingesting per-network telemetry into one shared DB — should
// prefer InsertBatch, which amortizes the lock, the sort check, the
// retention pass, and the store metrics over a whole batch of rows.
// Slices returned by read methods (Range, Latest) alias internal storage
// and are only stable until the next insert for that key.
type Table struct {
	mu     sync.Mutex
	name   string
	byKey  map[string]*series
	nowRef func() sim.Time

	// db links back to the owning DB for the retention setting; nil for
	// a standalone table (no retention).
	db *DB
	// maxAt is the newest timestamp ever inserted — the reference point
	// retention prunes against (monotonic even when inserts arrive out
	// of order).
	maxAt sim.Time
	// sincePrune counts inserts since the last retention pass, so
	// pruning costs are amortized over pruneBatch appends.
	sincePrune int
}

// pruneBatch is how many inserts a table accepts between retention
// passes. Trimming re-slices every key, so doing it on every append
// would be quadratic; once per batch keeps the overshoot bounded (at
// most pruneBatch rows past the window) and the amortized cost constant.
const pruneBatch = 64

// DB is a collection of named tables. Table lookup and the retention
// setting are guarded by the DB lock, so independent goroutines (e.g. the
// fleetd ingest path) may resolve tables concurrently; row access is
// guarded per table.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	retention sim.Time
}

// NewDB returns an empty store.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// SetRetention bounds every table to a trailing window: rows older than
// (newest insert - window) are pruned during inserts. Zero or negative
// disables retention. The window applies to tables created before or
// after the call.
func (db *DB) SetRetention(window sim.Time) {
	db.mu.Lock()
	db.retention = window
	db.mu.Unlock()
}

// Retention returns the configured trailing window (0 = unlimited).
func (db *DB) Retention() sim.Time {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retention
}

// Table returns (creating if needed) the named table.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok = db.tables[name]; ok {
		return t
	}
	t = &Table{name: name, byKey: map[string]*series{}, db: db}
	db.tables[name] = t
	return t
}

// TableNames returns all table names in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row for key. Appends are expected to be in time order
// (the common case for a poller); out-of-order inserts are accepted and
// lazily re-sorted.
func (t *Table) Insert(key string, at sim.Time, fields map[string]float64) {
	start := time.Now()
	defer func() { obsm.insertNS.Observe(time.Since(start).Nanoseconds()) }()
	obsm.rowsInserted.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(key, []Row{{At: at, Fields: fields}})
	t.maybePruneLocked(1)
}

// InsertBatch appends a batch of rows for key, taking the table lock once
// and deferring the sort check, the amortized retention pass, and the
// store metrics to a single pass over the batch. This is the bulk-ingest
// path: a poller delivering one AP's whole sample set, or fleetd draining
// a network's per-pass telemetry into the shared fleet DB, pays one lock
// round-trip instead of len(rows).
//
// Rows need not be sorted among themselves or against existing rows;
// disorder is detected here and repaired lazily on the next read, exactly
// as for Insert.
func (t *Table) InsertBatch(key string, rows []Row) {
	if len(rows) == 0 {
		return
	}
	start := time.Now()
	defer func() { obsm.insertNS.Observe(time.Since(start).Nanoseconds()) }()
	obsm.rowsInserted.Add(int64(len(rows)))
	obsm.batchRows.Observe(int64(len(rows)))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(key, rows)
	t.maybePruneLocked(len(rows))
}

// appendLocked appends rows to key's series, maintaining the unsorted
// flag and the table's newest-timestamp watermark. Caller holds t.mu.
func (t *Table) appendLocked(key string, rows []Row) {
	s, ok := t.byKey[key]
	if !ok {
		s = &series{}
		t.byKey[key] = s
	}
	last := sim.Time(0)
	if n := len(s.rows); n > 0 {
		last = s.rows[n-1].At
	} else if len(rows) > 0 {
		last = rows[0].At
	}
	for _, r := range rows {
		if r.At < last {
			s.unsorted = true
		} else {
			last = r.At
		}
		if r.At > t.maxAt {
			t.maxAt = r.At
		}
	}
	s.rows = append(s.rows, rows...)
}

// maybePruneLocked advances the amortized-retention counter by n inserts
// and runs a trim pass when the batch threshold is crossed. Caller holds
// t.mu.
func (t *Table) maybePruneLocked(n int) {
	if t.db == nil {
		return
	}
	retention := t.db.Retention()
	if retention <= 0 {
		return
	}
	t.sincePrune += n
	if t.sincePrune >= pruneBatch {
		t.sincePrune = 0
		if cutoff := t.maxAt - retention; cutoff > 0 {
			t.trimLocked(cutoff)
		}
	}
}

// InsertValue appends a single-field row.
func (t *Table) InsertValue(key string, at sim.Time, field string, v float64) {
	t.Insert(key, at, map[string]float64{field: v})
}

// Keys returns every key with at least one row, sorted.
func (t *Table) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of rows stored for key.
func (t *Table) Len(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byKey[key]; ok {
		return len(s.rows)
	}
	return 0
}

// Range returns the rows for key with from <= At < to, in time order. The
// returned slice aliases internal storage and must not be modified; it is
// stable only until the next insert for the same key.
func (t *Table) Range(key string, from, to sim.Time) []Row {
	start := time.Now()
	defer func() { obsm.queryNS.Observe(time.Since(start).Nanoseconds()) }()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byKey[key]
	if !ok {
		return nil
	}
	s.ensureSorted()
	lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= from })
	hi := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= to })
	return s.rows[lo:hi]
}

// Latest returns the most recent row for key.
func (t *Table) Latest(key string) (Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byKey[key]
	if !ok || len(s.rows) == 0 {
		return Row{}, false
	}
	s.ensureSorted()
	return s.rows[len(s.rows)-1], true
}

// FieldSeries extracts one field across a time range as (time, value) pairs.
type Point struct {
	At sim.Time
	V  float64
}

// FieldRange returns the named field over [from, to).
func (t *Table) FieldRange(key, field string, from, to sim.Time) []Point {
	rows := t.Range(key, from, to)
	out := make([]Point, 0, len(rows))
	for _, r := range rows {
		if v, ok := r.Fields[field]; ok {
			out = append(out, Point{At: r.At, V: v})
		}
	}
	return out
}

// Downsample buckets the named field over [from, to) into fixed-width
// windows, averaging within each bucket. Buckets with no data are skipped.
func (t *Table) Downsample(key, field string, from, to, bucket sim.Time) []Point {
	if bucket <= 0 {
		panic("littletable: bucket must be positive")
	}
	var out []Point
	var acc stats.Welford
	bucketStart := from
	flush := func() {
		if acc.N() > 0 {
			out = append(out, Point{At: bucketStart, V: acc.Mean()})
		}
		acc = stats.Welford{}
	}
	for _, p := range t.FieldRange(key, field, from, to) {
		for p.At >= bucketStart+bucket {
			flush()
			bucketStart += bucket
		}
		acc.Add(p.V)
	}
	flush()
	return out
}

// AggregateField collects the named field across ALL keys over [from, to)
// into a Sample, the operation behind every fleet-wide CDF in Section 3.
func (t *Table) AggregateField(field string, from, to sim.Time) *stats.Sample {
	sample := stats.NewSample(1024)
	for _, k := range t.Keys() {
		for _, r := range t.Range(k, from, to) {
			if v, ok := r.Fields[field]; ok {
				sample.Add(v)
			}
		}
	}
	return sample
}

// SumField sums the named field across all keys over [from, to), e.g. total
// network usage per day (Table 2).
func (t *Table) SumField(field string, from, to sim.Time) float64 {
	sum := 0.0
	for _, k := range t.Keys() {
		for _, r := range t.Range(k, from, to) {
			sum += r.Fields[field]
		}
	}
	return sum
}

// Trim discards rows older than cutoff for all keys (retention).
func (t *Table) Trim(cutoff sim.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trimLocked(cutoff)
}

func (t *Table) trimLocked(cutoff sim.Time) int {
	removed := 0
	for _, s := range t.byKey {
		s.ensureSorted()
		lo := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].At >= cutoff })
		if lo > 0 {
			removed += lo
			s.rows = append(s.rows[:0], s.rows[lo:]...)
		}
	}
	if removed > 0 {
		obsm.rowsPruned.Add(int64(removed))
	}
	return removed
}

func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	rows := 0
	for _, s := range t.byKey {
		rows += len(s.rows)
	}
	return fmt.Sprintf("table %s: %d keys, %d rows", t.name, len(t.byKey), rows)
}
