package littletable

import (
	"repro/internal/obs"
)

// Store observability (scope "littletable" on the process-wide default
// registry), aggregated across every DB in the process.
//
//	littletable.rows_inserted  rows appended across all tables
//	littletable.rows_pruned    rows discarded by retention trimming
//	littletable.insert_ns      wall ns per Insert (including any amortized
//	                           retention pass it triggered)
//	littletable.query_ns       wall ns per Range scan
var obsm = func() *storeMetrics {
	s := obs.Default().Scope("littletable")
	return &storeMetrics{
		rowsInserted: s.Counter("rows_inserted"),
		rowsPruned:   s.Counter("rows_pruned"),
		insertNS:     s.Histogram("insert_ns", "ns"),
		queryNS:      s.Histogram("query_ns", "ns"),
	}
}()

type storeMetrics struct {
	rowsInserted *obs.Counter
	rowsPruned   *obs.Counter
	insertNS     *obs.Histogram
	queryNS      *obs.Histogram
}
