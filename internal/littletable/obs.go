package littletable

import (
	"repro/internal/obs"
)

// Store observability (scope "littletable" on the process-wide default
// registry), aggregated across every DB in the process.
//
//	littletable.rows_inserted  rows appended across all tables
//	littletable.rows_pruned    rows discarded by retention trimming
//	littletable.insert_ns      wall ns per Insert/InsertBatch call
//	                           (including any amortized retention pass)
//	littletable.batch_rows     rows per InsertBatch call
//	littletable.query_ns       wall ns per Range scan
var obsm = func() *storeMetrics {
	s := obs.Default().Scope("littletable")
	return &storeMetrics{
		rowsInserted: s.Counter("rows_inserted"),
		rowsPruned:   s.Counter("rows_pruned"),
		insertNS:     s.Histogram("insert_ns", "ns"),
		batchRows:    s.Histogram("batch_rows", "rows"),
		queryNS:      s.Histogram("query_ns", "ns"),
	}
}()

type storeMetrics struct {
	rowsInserted *obs.Counter
	rowsPruned   *obs.Counter
	insertNS     *obs.Histogram
	batchRows    *obs.Histogram
	queryNS      *obs.Histogram
}
