package littletable

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Persistence: the store serialises to a line-oriented JSON format (one
// row per line, clustered by table and key, in time order) so experiment
// runs can be archived, diffed, and re-queried without re-simulating.
// The format mirrors how LittleTable's on-disk layout clusters rows by
// (table, key, time).

// rowRecord is the on-disk form of one row.
type rowRecord struct {
	Table  string             `json:"t"`
	Key    string             `json:"k"`
	At     int64              `json:"at"` // microseconds
	Fields map[string]float64 `json:"f"`
}

// Save writes every table to w. Rows stream in deterministic order
// (tables sorted, keys sorted, time ascending).
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tname := range db.TableNames() {
		t := db.Table(tname)
		for _, key := range t.Keys() {
			for _, row := range t.Range(key, 0, sim.Time(1)<<62) {
				rec := rowRecord{Table: tname, Key: key, At: int64(row.At), Fields: row.Fields}
				if err := enc.Encode(&rec); err != nil {
					return fmt.Errorf("littletable: save: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads rows from r into the store (merging with existing content).
func (db *DB) Load(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var rec rowRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("littletable: load row %d: %w", n, err)
		}
		if rec.Table == "" {
			return fmt.Errorf("littletable: load row %d: empty table name", n)
		}
		db.Table(rec.Table).Insert(rec.Key, sim.Time(rec.At), rec.Fields)
		n++
	}
}
