package dot11

import (
	"encoding/binary"
	"fmt"

	"repro/internal/spectrum"
)

// Information element IDs used by the systems in this repository.
const (
	IESSID            = 0
	IESupportedRates  = 1
	IEDSParameter     = 3 // current channel
	IECSA             = 37
	IEHTCapabilities  = 45
	IEExtCSA          = 60
	IEVHTCapabilities = 191
	IEVHTOperation    = 192
)

// IE is one raw information element.
type IE struct {
	ID   uint8
	Body []byte
}

// EncodeIEs appends a list of elements.
func EncodeIEs(b []byte, ies []IE) []byte {
	for _, ie := range ies {
		b = append(b, ie.ID, uint8(len(ie.Body)))
		b = append(b, ie.Body...)
	}
	return b
}

// DecodeIEs parses elements until the buffer ends; a truncated trailing
// element is an error.
func DecodeIEs(b []byte) ([]IE, error) {
	var out []IE
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrTruncated
		}
		n := int(b[1])
		if len(b) < 2+n {
			return nil, ErrTruncated
		}
		out = append(out, IE{ID: b[0], Body: append([]byte(nil), b[2:2+n]...)})
		b = b[2+n:]
	}
	return out, nil
}

// Find returns the first element with the given ID.
func Find(ies []IE, id uint8) (IE, bool) {
	for _, ie := range ies {
		if ie.ID == id {
			return ie, true
		}
	}
	return IE{}, false
}

// Capabilities is the station-capability summary carried in HT/VHT
// elements — exactly what the Fig 1 study tallies from association
// requests.
type Capabilities struct {
	HT       bool
	VHT      bool
	MaxWidth spectrum.Width
	NSS      int
	SGI      bool
}

// CapabilityIEs renders the capability set as HT (and, if VHT, VHT)
// elements.
func CapabilityIEs(c Capabilities) []IE {
	var out []IE
	if !c.HT {
		return out
	}
	// HT capabilities: 26-byte body; we populate the info field's
	// 40 MHz bit, SGI bit, and the MCS-set bitmap's stream count.
	ht := make([]byte, 26)
	var info uint16
	if c.MaxWidth >= spectrum.W40 {
		info |= 1 << 1 // supported channel width set
	}
	if c.SGI {
		info |= 1 << 5
	}
	binary.LittleEndian.PutUint16(ht[0:2], info)
	for s := 0; s < c.NSS && s < 4; s++ {
		ht[3+s] = 0xff // MCS 0-7 per stream
	}
	out = append(out, IE{ID: IEHTCapabilities, Body: ht})

	if c.VHT {
		vht := make([]byte, 12)
		var vinfo uint32
		if c.MaxWidth >= spectrum.W160 {
			vinfo |= 1 << 2 // supported channel width: 160 MHz
		}
		if c.SGI {
			vinfo |= 1 << 5 // SGI for 80 MHz
		}
		binary.LittleEndian.PutUint32(vht[0:4], vinfo)
		// VHT MCS map: 2 bits per stream, 0b10 = MCS 0-9, 0b11 = none.
		mcsMap := uint16(0xffff)
		for s := 0; s < c.NSS && s < 8; s++ {
			mcsMap &^= 0x3 << (2 * s)
			mcsMap |= 0x2 << (2 * s)
		}
		binary.LittleEndian.PutUint16(vht[4:6], mcsMap) // rx map
		binary.LittleEndian.PutUint16(vht[8:10], mcsMap)
		out = append(out, IE{ID: IEVHTCapabilities, Body: vht})
	}
	return out
}

// ParseCapabilities recovers a Capabilities summary from elements.
func ParseCapabilities(ies []IE) Capabilities {
	var c Capabilities
	c.MaxWidth = spectrum.W20
	if ht, ok := Find(ies, IEHTCapabilities); ok && len(ht.Body) >= 7 {
		c.HT = true
		info := binary.LittleEndian.Uint16(ht.Body[0:2])
		if info&(1<<1) != 0 {
			c.MaxWidth = spectrum.W40
		}
		c.SGI = info&(1<<5) != 0
		for s := 0; s < 4; s++ {
			if ht.Body[3+s] != 0 {
				c.NSS = s + 1
			}
		}
	}
	if vht, ok := Find(ies, IEVHTCapabilities); ok && len(vht.Body) >= 6 {
		c.VHT = true
		vinfo := binary.LittleEndian.Uint32(vht.Body[0:4])
		c.MaxWidth = spectrum.W80
		if vinfo&(1<<2) != 0 {
			c.MaxWidth = spectrum.W160
		}
		mcsMap := binary.LittleEndian.Uint16(vht.Body[4:6])
		nss := 0
		for s := 0; s < 8; s++ {
			if mcsMap>>(2*s)&0x3 != 0x3 {
				nss = s + 1
			}
		}
		if nss > c.NSS {
			c.NSS = nss
		}
	}
	if c.NSS == 0 {
		c.NSS = 1
	}
	return c
}

// CSA is the Channel Switch Announcement element (§4.3.1): the AP
// advertises the target channel and a beacon countdown so CSA-capable
// clients follow without rescanning.
type CSA struct {
	Mode        uint8 // 1 = stop transmitting until the switch
	NewChannel  uint8
	SwitchCount uint8 // beacons remaining
}

// ToIE renders the element.
func (c CSA) ToIE() IE {
	return IE{ID: IECSA, Body: []byte{c.Mode, c.NewChannel, c.SwitchCount}}
}

// ParseCSA extracts a CSA element if present.
func ParseCSA(ies []IE) (CSA, bool) {
	ie, ok := Find(ies, IECSA)
	if !ok || len(ie.Body) != 3 {
		return CSA{}, false
	}
	return CSA{Mode: ie.Body[0], NewChannel: ie.Body[1], SwitchCount: ie.Body[2]}, true
}

// Beacon is the parsed form of a beacon or probe response body.
type Beacon struct {
	Timestamp uint64
	Interval  uint16 // TUs
	CapInfo   uint16
	SSID      string
	Channel   int
	CSA       *CSA
	Caps      Capabilities
	IEs       []IE
}

// EncodeBeacon renders a beacon management-frame body.
func EncodeBeacon(bc Beacon) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint64(b, bc.Timestamp)
	b = binary.LittleEndian.AppendUint16(b, bc.Interval)
	b = binary.LittleEndian.AppendUint16(b, bc.CapInfo)
	ies := []IE{{ID: IESSID, Body: []byte(bc.SSID)}}
	if bc.Channel > 0 && bc.Channel < 256 {
		ies = append(ies, IE{ID: IEDSParameter, Body: []byte{uint8(bc.Channel)}})
	}
	ies = append(ies, CapabilityIEs(bc.Caps)...)
	if bc.CSA != nil {
		ies = append(ies, bc.CSA.ToIE())
	}
	ies = append(ies, bc.IEs...)
	return EncodeIEs(b, ies)
}

// DecodeBeacon parses a beacon body.
func DecodeBeacon(b []byte) (Beacon, error) {
	if len(b) < 12 {
		return Beacon{}, ErrTruncated
	}
	var bc Beacon
	bc.Timestamp = binary.LittleEndian.Uint64(b[0:8])
	bc.Interval = binary.LittleEndian.Uint16(b[8:10])
	bc.CapInfo = binary.LittleEndian.Uint16(b[10:12])
	ies, err := DecodeIEs(b[12:])
	if err != nil {
		return Beacon{}, err
	}
	bc.IEs = ies
	if ssid, ok := Find(ies, IESSID); ok {
		bc.SSID = string(ssid.Body)
	}
	if ds, ok := Find(ies, IEDSParameter); ok && len(ds.Body) == 1 {
		bc.Channel = int(ds.Body[0])
	}
	if csa, ok := ParseCSA(ies); ok {
		bc.CSA = &csa
	}
	bc.Caps = ParseCapabilities(ies)
	return bc, nil
}

// AssocRequest is the parsed form of an association request body.
type AssocRequest struct {
	CapInfo  uint16
	Interval uint16
	SSID     string
	Caps     Capabilities
}

// EncodeAssocRequest renders an association-request body — the frame the
// fleet study parses capabilities out of.
func EncodeAssocRequest(ar AssocRequest) []byte {
	b := make([]byte, 0, 48)
	b = binary.LittleEndian.AppendUint16(b, ar.CapInfo)
	b = binary.LittleEndian.AppendUint16(b, ar.Interval)
	ies := []IE{{ID: IESSID, Body: []byte(ar.SSID)}}
	ies = append(ies, CapabilityIEs(ar.Caps)...)
	return EncodeIEs(b, ies)
}

// DecodeAssocRequest parses an association-request body.
func DecodeAssocRequest(b []byte) (AssocRequest, error) {
	if len(b) < 4 {
		return AssocRequest{}, ErrTruncated
	}
	var ar AssocRequest
	ar.CapInfo = binary.LittleEndian.Uint16(b[0:2])
	ar.Interval = binary.LittleEndian.Uint16(b[2:4])
	ies, err := DecodeIEs(b[4:])
	if err != nil {
		return AssocRequest{}, err
	}
	if ssid, ok := Find(ies, IESSID); ok {
		ar.SSID = string(ssid.Body)
	}
	ar.Caps = ParseCapabilities(ies)
	return ar, nil
}

// BlockAck is the compressed Block Ack control frame: the starting
// sequence number plus a 64-bit bitmap of acknowledged MPDUs — the
// link-layer feedback FastACK converts into fast TCP ACKs (§5.2).
type BlockAck struct {
	RA, TA   MAC
	TID      int
	StartSeq uint16
	Bitmap   uint64
}

// Acked reports whether the MPDU with sequence number seq is covered.
func (ba *BlockAck) Acked(seq uint16) bool {
	off := int(seq-ba.StartSeq) & 0xfff
	if off >= 64 {
		return false
	}
	return ba.Bitmap&(1<<off) != 0
}

// SetAcked marks seq as received.
func (ba *BlockAck) SetAcked(seq uint16) {
	off := int(seq-ba.StartSeq) & 0xfff
	if off < 64 {
		ba.Bitmap |= 1 << off
	}
}

// Encode renders the control frame (header + BA control + SSC + bitmap).
func (ba *BlockAck) Encode(b []byte) []byte {
	h := Header{Type: TypeControl, Subtype: SubtypeBlockAck, Addr1: ba.RA, Addr2: ba.TA}
	// Control frames have no Addr3/seq on the air; we keep the common
	// header for simplicity and mark the unused fields zero.
	b = h.Encode(b)
	ctl := uint16(0x0004) | uint16(ba.TID)<<12 // compressed bitmap
	b = binary.LittleEndian.AppendUint16(b, ctl)
	b = binary.LittleEndian.AppendUint16(b, ba.StartSeq<<4)
	b = binary.LittleEndian.AppendUint64(b, ba.Bitmap)
	return b
}

// DecodeBlockAck parses a Block Ack frame previously encoded by Encode.
func DecodeBlockAck(b []byte) (BlockAck, error) {
	h, body, err := DecodeHeader(b)
	if err != nil {
		return BlockAck{}, err
	}
	if h.Type != TypeControl || h.Subtype != SubtypeBlockAck {
		return BlockAck{}, fmt.Errorf("%w: not a block ack", ErrBadFormat)
	}
	if len(body) < 12 {
		return BlockAck{}, ErrTruncated
	}
	var ba BlockAck
	ba.RA, ba.TA = h.Addr1, h.Addr2
	ctl := binary.LittleEndian.Uint16(body[0:2])
	ba.TID = int(ctl >> 12)
	ba.StartSeq = binary.LittleEndian.Uint16(body[2:4]) >> 4
	ba.Bitmap = binary.LittleEndian.Uint64(body[4:12])
	return ba, nil
}
