// Package dot11 implements wire formats for the IEEE 802.11 frames the
// paper's systems exchange over the air and parse in their control
// planes: the MAC header, beacons and probe/association management frames
// with their information elements (SSID, supported rates, HT/VHT
// capabilities — the fields behind Fig 1's advertised-capability study),
// the Channel Switch Announcement element TurboCA relies on (§4.3.1), and
// the compressed Block Ack frame FastACK's 802.11-ACK hint derives from
// (§5.2).
//
// Encoding follows the standard's little-endian layout so captures export
// cleanly (see internal/pcap); decoding is defensive and never panics on
// truncated input.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("dot11: truncated frame")
	ErrBadFormat = errors.New("dot11: malformed frame")
)

// MAC is a 48-bit 802.11 address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones address beacons are sent to.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FrameType is the 2-bit type field.
type FrameType int

// Frame types.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// Management subtypes used here.
const (
	SubtypeAssocReq  = 0
	SubtypeAssocResp = 1
	SubtypeProbeReq  = 4
	SubtypeProbeResp = 5
	SubtypeBeacon    = 8
	SubtypeDisassoc  = 10
	SubtypeAuth      = 11
)

// Control subtypes used here.
const (
	SubtypeBlockAckReq = 8
	SubtypeBlockAck    = 9
	SubtypeRTS         = 11
	SubtypeCTS         = 12
	SubtypeAck         = 13
)

// Data subtypes used here.
const (
	SubtypeData    = 0
	SubtypeQoSData = 8
)

// Header is the common 802.11 MAC header (3-address form, as used
// between an AP and its clients).
type Header struct {
	Type     FrameType
	Subtype  int
	ToDS     bool
	FromDS   bool
	Retry    bool
	Duration uint16 // NAV, microseconds
	Addr1    MAC    // receiver
	Addr2    MAC    // transmitter
	Addr3    MAC    // BSSID / DA / SA depending on DS bits
	Seq      uint16 // 12-bit sequence number
	Frag     uint8  // 4-bit fragment number
	// QoS holds the QoS-control field for QoS data frames; TID in the
	// low 4 bits.
	QoS    uint16
	HasQoS bool
}

// headerLen returns the encoded header size.
func (h *Header) headerLen() int {
	n := 24
	if h.HasQoS {
		n += 2
	}
	return n
}

// Encode appends the wire form of the header.
func (h *Header) Encode(b []byte) []byte {
	fc := uint16(h.Type)<<2 | uint16(h.Subtype)<<4 // protocol version 0
	var flags uint16
	if h.ToDS {
		flags |= 1 << 8
	}
	if h.FromDS {
		flags |= 1 << 9
	}
	if h.Retry {
		flags |= 1 << 11
	}
	fc |= flags
	b = binary.LittleEndian.AppendUint16(b, fc)
	b = binary.LittleEndian.AppendUint16(b, h.Duration)
	b = append(b, h.Addr1[:]...)
	b = append(b, h.Addr2[:]...)
	b = append(b, h.Addr3[:]...)
	sc := h.Seq<<4 | uint16(h.Frag&0x0f)
	b = binary.LittleEndian.AppendUint16(b, sc)
	if h.HasQoS {
		b = binary.LittleEndian.AppendUint16(b, h.QoS)
	}
	return b
}

// DecodeHeader parses a MAC header, returning it and the body.
func DecodeHeader(b []byte) (Header, []byte, error) {
	if len(b) < 24 {
		return Header{}, nil, ErrTruncated
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	if fc&0x3 != 0 {
		return Header{}, nil, fmt.Errorf("%w: protocol version %d", ErrBadFormat, fc&0x3)
	}
	var h Header
	h.Type = FrameType(fc >> 2 & 0x3)
	h.Subtype = int(fc >> 4 & 0xf)
	h.ToDS = fc&(1<<8) != 0
	h.FromDS = fc&(1<<9) != 0
	h.Retry = fc&(1<<11) != 0
	h.Duration = binary.LittleEndian.Uint16(b[2:4])
	copy(h.Addr1[:], b[4:10])
	copy(h.Addr2[:], b[10:16])
	copy(h.Addr3[:], b[16:22])
	sc := binary.LittleEndian.Uint16(b[22:24])
	h.Seq = sc >> 4
	h.Frag = uint8(sc & 0xf)
	body := b[24:]
	if h.Type == TypeData && h.Subtype >= 8 { // QoS data
		if len(body) < 2 {
			return Header{}, nil, ErrTruncated
		}
		h.HasQoS = true
		h.QoS = binary.LittleEndian.Uint16(body[0:2])
		body = body[2:]
	}
	return h, body, nil
}

// TID returns the traffic identifier of a QoS data frame.
func (h *Header) TID() int { return int(h.QoS & 0xf) }

func (h *Header) String() string {
	return fmt.Sprintf("802.11[%s seq=%d %v->%v]", subtypeName(h.Type, h.Subtype), h.Seq, h.Addr2, h.Addr1)
}

func subtypeName(t FrameType, s int) string {
	switch t {
	case TypeManagement:
		switch s {
		case SubtypeBeacon:
			return "beacon"
		case SubtypeProbeReq:
			return "probe-req"
		case SubtypeProbeResp:
			return "probe-resp"
		case SubtypeAssocReq:
			return "assoc-req"
		case SubtypeAssocResp:
			return "assoc-resp"
		case SubtypeAuth:
			return "auth"
		case SubtypeDisassoc:
			return "disassoc"
		}
		return "mgmt"
	case TypeControl:
		switch s {
		case SubtypeRTS:
			return "rts"
		case SubtypeCTS:
			return "cts"
		case SubtypeAck:
			return "ack"
		case SubtypeBlockAck:
			return "block-ack"
		case SubtypeBlockAckReq:
			return "bar"
		}
		return "ctl"
	default:
		if s >= 8 {
			return "qos-data"
		}
		return "data"
	}
}
