package dot11

import (
	"testing"
	"testing/quick"

	"repro/internal/spectrum"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Type: TypeData, Subtype: SubtypeQoSData,
		FromDS: true, Retry: true, Duration: 1500,
		Addr1: MAC{1, 2, 3, 4, 5, 6},
		Addr2: MAC{7, 8, 9, 10, 11, 12},
		Addr3: MAC{13, 14, 15, 16, 17, 18},
		Seq:   3001, Frag: 2, QoS: 0x0005, HasQoS: true,
	}
	b := h.Encode(nil)
	got, body, err := DecodeHeader(append(b, 0xaa, 0xbb))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
	}
	if got.TID() != 5 {
		t.Fatalf("TID = %d", got.TID())
	}
	if len(body) != 2 {
		t.Fatalf("body len %d", len(body))
	}
}

func TestHeaderTruncatedAndBadVersion(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 10)); err != ErrTruncated {
		t.Fatal("short header accepted")
	}
	b := (&Header{Type: TypeData}).Encode(nil)
	b[0] |= 0x3 // protocol version 3
	if _, _, err := DecodeHeader(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSeqNumber12Bit(t *testing.T) {
	h := Header{Type: TypeData, Seq: 4095}
	got, _, _ := DecodeHeader(h.Encode(nil))
	if got.Seq != 4095 {
		t.Fatalf("seq = %d", got.Seq)
	}
}

func TestIEsRoundTrip(t *testing.T) {
	ies := []IE{
		{ID: IESSID, Body: []byte("corp")},
		{ID: IEDSParameter, Body: []byte{36}},
	}
	b := EncodeIEs(nil, ies)
	got, err := DecodeIEs(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Body) != "corp" || got[1].Body[0] != 36 {
		t.Fatalf("ies: %+v", got)
	}
	if _, err := DecodeIEs(b[:3]); err != ErrTruncated {
		t.Fatal("truncated IE accepted")
	}
	if _, ok := Find(got, IECSA); ok {
		t.Fatal("phantom CSA")
	}
}

func TestCapabilityRoundTrip(t *testing.T) {
	cases := []Capabilities{
		{HT: true, MaxWidth: spectrum.W20, NSS: 1},
		{HT: true, MaxWidth: spectrum.W40, NSS: 2, SGI: true},
		{HT: true, VHT: true, MaxWidth: spectrum.W80, NSS: 3, SGI: true},
		{HT: true, VHT: true, MaxWidth: spectrum.W160, NSS: 4},
	}
	for _, c := range cases {
		got := ParseCapabilities(CapabilityIEs(c))
		if got.HT != c.HT || got.VHT != c.VHT || got.MaxWidth != c.MaxWidth || got.NSS != c.NSS {
			t.Fatalf("round trip: got %+v want %+v", got, c)
		}
	}
	// No HT element at all: a legacy client.
	legacy := ParseCapabilities(nil)
	if legacy.HT || legacy.VHT || legacy.MaxWidth != spectrum.W20 || legacy.NSS != 1 {
		t.Fatalf("legacy parse: %+v", legacy)
	}
}

func TestBeaconRoundTripWithCSA(t *testing.T) {
	bc := Beacon{
		Timestamp: 123456789,
		Interval:  100,
		CapInfo:   0x0431,
		SSID:      "museum-wifi",
		Channel:   44,
		CSA:       &CSA{Mode: 1, NewChannel: 157, SwitchCount: 5},
		Caps:      Capabilities{HT: true, VHT: true, MaxWidth: spectrum.W80, NSS: 3},
	}
	got, err := DecodeBeacon(EncodeBeacon(bc))
	if err != nil {
		t.Fatal(err)
	}
	if got.SSID != "museum-wifi" || got.Channel != 44 || got.Interval != 100 {
		t.Fatalf("beacon: %+v", got)
	}
	if got.CSA == nil || got.CSA.NewChannel != 157 || got.CSA.SwitchCount != 5 {
		t.Fatalf("CSA: %+v", got.CSA)
	}
	if got.Caps.MaxWidth != spectrum.W80 || got.Caps.NSS != 3 {
		t.Fatalf("caps: %+v", got.Caps)
	}
}

func TestAssocRequestRoundTrip(t *testing.T) {
	ar := AssocRequest{
		CapInfo: 0x21, Interval: 10, SSID: "corp",
		Caps: Capabilities{HT: true, VHT: true, MaxWidth: spectrum.W80, NSS: 2, SGI: true},
	}
	got, err := DecodeAssocRequest(EncodeAssocRequest(ar))
	if err != nil {
		t.Fatal(err)
	}
	if got.SSID != "corp" || got.Caps.NSS != 2 || !got.Caps.VHT {
		t.Fatalf("assoc: %+v", got)
	}
}

func TestBlockAckBitmap(t *testing.T) {
	ba := BlockAck{
		RA: MAC{1}, TA: MAC{2}, TID: 5, StartSeq: 100,
	}
	for _, s := range []uint16{100, 101, 103, 163} {
		ba.SetAcked(s)
	}
	ba.SetAcked(164) // beyond the 64-frame window: ignored
	got, err := DecodeBlockAck(ba.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 5 || got.StartSeq != 100 {
		t.Fatalf("ba: %+v", got)
	}
	for _, c := range []struct {
		seq  uint16
		want bool
	}{{100, true}, {101, true}, {102, false}, {103, true}, {163, true}, {164, false}} {
		if got.Acked(c.seq) != c.want {
			t.Fatalf("Acked(%d) = %v", c.seq, got.Acked(c.seq))
		}
	}
}

func TestBlockAckRejectsOtherFrames(t *testing.T) {
	h := Header{Type: TypeData}
	if _, err := DecodeBlockAck(h.Encode(nil)); err == nil {
		t.Fatal("data frame decoded as block ack")
	}
}

// Property: DecodeHeader and DecodeIEs never panic on arbitrary bytes.
func TestQuickDecodersRobust(t *testing.T) {
	f := func(b []byte) bool {
		DecodeHeader(b)
		DecodeIEs(b)
		DecodeBeacon(b)
		DecodeAssocRequest(b)
		DecodeBlockAck(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: header encode/decode round-trips for arbitrary field values
// within their wire widths.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(seq uint16, dur uint16, a1, a2 [6]byte, retry bool) bool {
		h := Header{
			Type: TypeData, Subtype: SubtypeQoSData, HasQoS: true,
			Seq: seq & 0xfff, Duration: dur, Retry: retry,
			Addr1: MAC(a1), Addr2: MAC(a2),
		}
		got, _, err := DecodeHeader(h.Encode(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	h := Header{Type: TypeManagement, Subtype: SubtypeBeacon}
	if h.String() == "" || subtypeName(TypeControl, SubtypeRTS) != "rts" {
		t.Fatal("names")
	}
}
