package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRawIP)

	d1 := packet.NewTCPDatagram(
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 0, 1}, Port: 5000},
		packet.Endpoint{Addr: packet.IPv4Addr{10, 0, 1, 2}, Port: 80}, 100)
	d1.TCP.Seq = 42
	wire1 := d1.Marshal()
	if err := w.WritePacket(1500*sim.Millisecond, wire1); err != nil {
		t.Fatal(err)
	}
	d2 := packet.NewUDPDatagram(
		packet.Endpoint{Addr: packet.IPv4Addr{1, 1, 1, 1}, Port: 53},
		packet.Endpoint{Addr: packet.IPv4Addr{2, 2, 2, 2}, Port: 53}, 10)
	if err := w.WritePacket(2*sim.Second, d2.Marshal()); err != nil {
		t.Fatal(err)
	}
	if w.Packets() != 2 {
		t.Fatalf("packets = %d", w.Packets())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Link != LinkTypeRawIP {
		t.Fatalf("link = %d", r.Link)
	}
	at, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if at != 1500*sim.Millisecond {
		t.Fatalf("timestamp = %v", at)
	}
	got, err := packet.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP == nil || got.TCP.Seq != 42 || got.PayloadLen != 100 {
		t.Fatalf("decoded %v", got)
	}
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil { // idempotent
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != 105 {
		t.Fatal("bad link type")
	}
}

func TestSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRawIP)
	w.snaplen = 8
	big := make([]byte, 100)
	if err := w.WritePacket(0, big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 {
		t.Fatalf("caplen = %d, want snapped 8", len(data))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file accepted")
	}
}
