// Package pcap writes libpcap capture files, so traffic from the
// simulators — raw IP datagrams at the AP's wired port, or 802.11 frames
// on the air — can be opened in Wireshark/tcpdump for inspection. Only
// the classic (non-ng) format is implemented; it is universally readable.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim"
)

// LinkType selects the capture's link-layer header type (see
// https://www.tcpdump.org/linktypes.html).
type LinkType uint32

// Link types used by this repository's simulators.
const (
	// LinkTypeRawIP frames begin directly with an IPv4/IPv6 header.
	LinkTypeRawIP LinkType = 101
	// LinkTypeIEEE80211 frames begin with an 802.11 MAC header.
	LinkTypeIEEE80211 LinkType = 105
	// LinkTypeEthernet frames begin with an Ethernet header.
	LinkTypeEthernet LinkType = 1
)

const (
	magicMicros = 0xa1b2c3d4
	versionMaj  = 2
	versionMin  = 4
	defaultSnap = 262144
)

// Writer streams capture records to an io.Writer.
type Writer struct {
	w       io.Writer
	snaplen uint32
	packets int
	wrote   bool
	link    LinkType
}

// NewWriter creates a writer; the global header is emitted lazily on the
// first packet (or explicitly via Flush-like WriteHeader).
func NewWriter(w io.Writer, link LinkType) *Writer {
	return &Writer{w: w, snaplen: defaultSnap, link: link}
}

// WriteHeader emits the global file header. Calling it more than once is
// a no-op; WritePacket calls it automatically.
func (pw *Writer) WriteHeader() error {
	if pw.wrote {
		return nil
	}
	pw.wrote = true
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(pw.link))
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket records one packet captured at simulation time at. The
// simulation epoch maps to Unix time zero, which keeps captures
// deterministic and diffable.
func (pw *Writer) WritePacket(at sim.Time, data []byte) error {
	if err := pw.WriteHeader(); err != nil {
		return err
	}
	capLen := uint32(len(data))
	if capLen > pw.snaplen {
		capLen = pw.snaplen
	}
	var rec [16]byte
	sec := uint32(at / sim.Second)
	usec := uint32(at % sim.Second)
	binary.LittleEndian.PutUint32(rec[0:4], sec)
	binary.LittleEndian.PutUint32(rec[4:8], usec)
	binary.LittleEndian.PutUint32(rec[8:12], capLen)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(data[:capLen]); err != nil {
		return err
	}
	pw.packets++
	return nil
}

// Packets returns how many records were written.
func (pw *Writer) Packets() int { return pw.packets }

// Reader parses capture files produced by Writer (and any classic
// little-endian microsecond pcap).
type Reader struct {
	r    io.Reader
	Link LinkType
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	return &Reader{r: r, Link: LinkType(binary.LittleEndian.Uint32(hdr[20:24]))}, nil
}

// Next returns the next packet, or io.EOF at end of file.
func (pr *Reader) Next() (at sim.Time, data []byte, err error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		return 0, nil, err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	if capLen > 1<<24 {
		return 0, nil, fmt.Errorf("pcap: unreasonable record length %d", capLen)
	}
	data = make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return 0, nil, err
	}
	return sim.Time(sec)*sim.Second + sim.Time(usec), data, nil
}
