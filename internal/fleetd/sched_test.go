package fleetd

import (
	"testing"

	"repro/internal/sim"
)

// Two networks sharing a deadline must resolve in ascending (id, level)
// order no matter how their entries were pushed.
func TestSchedulerTieOrderIsInsertionIndependent(t *testing.T) {
	at := 15 * sim.Minute
	want := []passEntry{
		{at: at, id: 1, level: levelFast},
		{at: at, id: 1, level: levelDeep},
		{at: at, id: 2, level: levelMid},
		{at: at, id: 5, level: levelFast},
	}
	pushOrders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3, 0, 2},
	}
	for _, order := range pushOrders {
		var s scheduler
		s.push(passEntry{at: at + sim.Hour, id: 0, level: levelFast}) // later deadline stays queued
		for _, i := range order {
			s.push(want[i])
		}
		gotAt, due := s.popDue(at)
		if gotAt != at {
			t.Fatalf("popDue time = %v, want %v", gotAt, at)
		}
		if len(due) != len(want) {
			t.Fatalf("popDue returned %d entries, want %d", len(due), len(want))
		}
		for i := range want {
			if due[i] != want[i] {
				t.Fatalf("push order %v: due[%d] = %+v, want %+v", order, i, due[i], want[i])
			}
		}
		if next, ok := s.next(); !ok || next != at+sim.Hour {
			t.Fatalf("later entry lost: next=%v ok=%v", next, ok)
		}
	}
}

func TestSchedulerPopDueRespectsHorizon(t *testing.T) {
	var s scheduler
	s.push(passEntry{at: sim.Hour, id: 0, level: levelFast})
	if at, due := s.popDue(sim.Minute); due != nil {
		t.Fatalf("popDue past horizon returned %v at %v", due, at)
	}
	if _, due := s.popDue(sim.Hour); len(due) != 1 {
		t.Fatalf("popDue at horizon returned %d entries, want 1", len(due))
	}
	if _, due := s.popDue(sim.Day); due != nil {
		t.Fatal("empty scheduler returned entries")
	}
}

// A cadence change between ticks moves the pending entry in place: the
// heap never gains a duplicate for the pair, the new deadline wins the
// pop order, and a pair with no pending entry reports the miss so the
// caller can push a fresh entry instead.
func TestSchedulerRescheduleReplacesInPlace(t *testing.T) {
	var s scheduler
	s.push(passEntry{at: 10 * sim.Minute, id: 0, level: levelFast})
	s.push(passEntry{at: 3 * sim.Hour, id: 0, level: levelMid})
	s.push(passEntry{at: 10 * sim.Minute, id: 1, level: levelFast})

	if !s.reschedule(0, levelFast, 2*sim.Minute) {
		t.Fatal("reschedule of a pending entry = false")
	}
	if got := len(s.entries()); got != 3 {
		t.Fatalf("heap has %d entries after reschedule, want 3 (replaced, not duplicated)", got)
	}
	if at, ok := s.when(0, levelFast); !ok || at != 2*sim.Minute {
		t.Fatalf("when(0, fast) = %v, %v; want 2m, true", at, ok)
	}
	at, due := s.popDue(sim.Day)
	if at != 2*sim.Minute || len(due) != 1 || due[0].id != 0 || due[0].level != levelFast {
		t.Fatalf("rescheduled entry did not pop first: at=%v due=%+v", at, due)
	}
	// Once popped the pair has no pending entry: reschedule must miss.
	if s.reschedule(0, levelFast, sim.Hour) {
		t.Fatal("reschedule of a popped entry = true")
	}
	if s.reschedule(0, levelDeep, sim.Hour) {
		t.Fatal("reschedule of a never-scheduled level = true")
	}
	if _, due := s.popDue(2 * sim.Minute); due != nil {
		t.Fatalf("phantom entries remain: %+v", due)
	}
}

func TestSchedulerDropLevelAndWhen(t *testing.T) {
	var s scheduler
	for id := 0; id < 3; id++ {
		s.push(passEntry{at: 10 * sim.Minute, id: id, level: levelFast})
		s.push(passEntry{at: 3 * sim.Hour, id: id, level: levelMid})
	}
	if !s.dropLevel(1, levelMid) {
		t.Fatal("dropLevel of a pending entry = false")
	}
	if s.dropLevel(1, levelMid) {
		t.Fatal("second dropLevel = true")
	}
	if _, ok := s.when(1, levelMid); ok {
		t.Fatal("dropped level still pending")
	}
	if at, ok := s.when(1, levelFast); !ok || at != 10*sim.Minute {
		t.Fatalf("sibling level perturbed by dropLevel: %v, %v", at, ok)
	}
	if got := len(s.entries()); got != 5 {
		t.Fatalf("heap has %d entries, want 5", got)
	}
}

func TestSchedulerDropNetwork(t *testing.T) {
	var s scheduler
	for id := 0; id < 4; id++ {
		s.push(passEntry{at: 10 * sim.Minute, id: id, level: levelFast})
		s.push(passEntry{at: 3 * sim.Hour, id: id, level: levelMid})
	}
	if got := s.dropNetwork(2); got != 2 {
		t.Fatalf("dropNetwork removed %d entries, want 2", got)
	}
	if got := s.dropNetwork(2); got != 0 {
		t.Fatalf("second dropNetwork removed %d entries, want 0", got)
	}
	for {
		_, due := s.popDue(sim.Day)
		if due == nil {
			break
		}
		for _, e := range due {
			if e.id == 2 {
				t.Fatalf("dropped network still scheduled: %+v", e)
			}
		}
	}
}
