package fleetd

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// Durable storage for the controller's intent journal and checkpoint.
//
// The journal is append-only: one record per line, each synced before the
// work it describes executes (write-ahead). The checkpoint is a single
// blob replaced atomically (write-to-temp, sync, rename), so a reader
// always sees either the previous or the next checkpoint, never a torn
// one. The journal's tail, by contrast, CAN tear — a crash mid-append
// leaves a prefix of the final record — which is why the decoder drops a
// malformed final record and Open truncates the file back to the clean
// prefix before appending anything new.

// ErrKilled is returned by a Store whose process "died": every subsequent
// durable write fails with it. The in-memory store uses it to simulate
// SIGKILL at seeded write instants; a Controller that sees it abandons
// the run immediately (the next Open replays the journal and continues).
var ErrKilled = errors.New("fleetd: process killed")

// Store is the durability interface the controller writes through.
// Reads (JournalBytes, Checkpoint) are recovery-time operations; writes
// (AppendJournal, CommitCheckpoint) are the durable points a crash can
// land on.
type Store interface {
	// AppendJournal durably appends one encoded record (no trailing
	// newline; the store adds framing).
	AppendJournal(line []byte) error
	// JournalBytes returns the journal's full current contents.
	JournalBytes() ([]byte, error)
	// Truncate discards journal bytes past n — the torn-tail repair.
	Truncate(n int64) error
	// CommitCheckpoint atomically replaces the checkpoint blob.
	CommitCheckpoint(data []byte) error
	// Checkpoint returns the current checkpoint blob, if one exists.
	Checkpoint() ([]byte, bool, error)
}

// DirStore is the on-disk store: <dir>/journal.jsonl plus
// <dir>/checkpoint, with fsync on every journal append and a
// write-sync-rename cycle per checkpoint commit.
type DirStore struct {
	dir string
	jf  *os.File
}

// NewDirStore opens (creating if needed) a durability directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleetd: store dir: %w", err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleetd: open journal: %w", err)
	}
	return &DirStore{dir: dir, jf: jf}, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

// Close releases the journal handle (the store is unusable afterwards).
func (s *DirStore) Close() error { return s.jf.Close() }

func (s *DirStore) AppendJournal(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := s.jf.Write(buf); err != nil {
		return fmt.Errorf("fleetd: journal append: %w", err)
	}
	if err := s.jf.Sync(); err != nil {
		return fmt.Errorf("fleetd: journal sync: %w", err)
	}
	return nil
}

func (s *DirStore) JournalBytes() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "journal.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("fleetd: read journal: %w", err)
	}
	return data, nil
}

func (s *DirStore) Truncate(n int64) error {
	if err := s.jf.Truncate(n); err != nil {
		return fmt.Errorf("fleetd: journal truncate: %w", err)
	}
	// The handle is O_APPEND, so the next write lands at the new end.
	return s.jf.Sync()
}

func (s *DirStore) CommitCheckpoint(data []byte) error {
	tmp := filepath.Join(s.dir, "checkpoint.tmp")
	final := filepath.Join(s.dir, "checkpoint")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fleetd: checkpoint tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("fleetd: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleetd: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleetd: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("fleetd: checkpoint rename: %w", err)
	}
	// Sync the directory so the rename itself is durable.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (s *DirStore) Checkpoint() ([]byte, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "checkpoint"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("fleetd: read checkpoint: %w", err)
	}
	return data, true, nil
}

// MemStore is the in-memory store the kill-chaos campaign drives. It
// models SIGKILL faithfully at the durability layer: a faults.ProcProfile
// dooms each process instance to die immediately after a seeded durable
// write (the write itself lands — or tears, for journal appends under
// TornTail), after which every operation fails with ErrKilled until
// Revive starts the next instance. Any in-run kill instant is equivalent
// to a durable-write boundary because nothing else the controller does
// touches the store.
type MemStore struct {
	inj      *faults.ProcInjector
	instance int
	writes   int
	killAt   int // durable-write index this instance dies on; -1 = immortal
	dead     bool
	kills    int

	journal bytes.Buffer
	ckpt    []byte
}

// NewMemStore builds an in-memory store; prof may be nil (no kills).
func NewMemStore(prof *faults.ProcProfile) *MemStore {
	s := &MemStore{inj: faults.NewProc(prof)}
	s.killAt = s.inj.KillAfterWrites(0)
	return s
}

// Dead reports whether the current process instance has been killed.
func (s *MemStore) Dead() bool { return s.dead }

// Kills reports how many kills have fired so far.
func (s *MemStore) Kills() int { return s.kills }

// Revive starts the next process instance: the store works again, with a
// fresh seeded kill point. The campaign calls it before each re-Open.
func (s *MemStore) Revive() {
	s.dead = false
	s.instance++
	s.writes = 0
	s.killAt = s.inj.KillAfterWrites(s.instance)
}

// kill marks the instance dead; returns the error every caller gets.
func (s *MemStore) kill() error {
	s.dead = true
	s.kills++
	return ErrKilled
}

func (s *MemStore) AppendJournal(line []byte) error {
	if s.dead {
		return ErrKilled
	}
	s.writes++
	if s.writes == s.killAt {
		if frac, torn := s.inj.TornTailFrac(s.instance); torn {
			// The crash lands mid-write: a prefix of the record's bytes
			// reach the disk, unterminated.
			n := int(frac * float64(len(line)))
			if n >= len(line) {
				n = len(line) - 1
			}
			if n > 0 {
				s.journal.Write(line[:n])
			}
			return s.kill()
		}
		s.journal.Write(line)
		s.journal.WriteByte('\n')
		return s.kill()
	}
	s.journal.Write(line)
	s.journal.WriteByte('\n')
	return nil
}

func (s *MemStore) JournalBytes() ([]byte, error) {
	return append([]byte(nil), s.journal.Bytes()...), nil
}

func (s *MemStore) Truncate(n int64) error {
	s.journal.Truncate(int(n))
	return nil
}

func (s *MemStore) CommitCheckpoint(data []byte) error {
	if s.dead {
		return ErrKilled
	}
	s.writes++
	s.ckpt = append([]byte(nil), data...)
	if s.writes == s.killAt {
		// The rename happened, then the process died: the commit is
		// durable but its journal confirmation never lands.
		return s.kill()
	}
	return nil
}

func (s *MemStore) Checkpoint() ([]byte, bool, error) {
	if s.ckpt == nil {
		return nil, false, nil
	}
	return append([]byte(nil), s.ckpt...), true, nil
}
