package fleetd

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faults"
)

func TestDirStoreRoundTrip(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, ok, err := st.Checkpoint(); err != nil || ok {
		t.Fatalf("fresh store checkpoint ok=%v err=%v, want absent", ok, err)
	}
	for i, line := range []string{`{"seq":1}`, `{"seq":2}`} {
		if err := st.AppendJournal([]byte(line)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	data, err := st.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	want := "{\"seq\":1}\n{\"seq\":2}\n"
	if string(data) != want {
		t.Fatalf("journal = %q, want %q", data, want)
	}

	// Torn-tail repair: truncate to the first record, then append — the
	// new record must land immediately after the clean prefix.
	if err := st.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJournal([]byte(`{"seq":2,"v":1}`)); err != nil {
		t.Fatal(err)
	}
	data, _ = st.JournalBytes()
	if string(data) != "{\"seq\":1}\n{\"seq\":2,\"v\":1}\n" {
		t.Fatalf("post-truncate journal = %q", data)
	}

	if err := st.CommitCheckpoint([]byte("blob-1")); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitCheckpoint([]byte("blob-2")); err != nil {
		t.Fatal(err)
	}
	blob, ok, err := st.Checkpoint()
	if err != nil || !ok || string(blob) != "blob-2" {
		t.Fatalf("checkpoint = %q ok=%v err=%v, want blob-2", blob, ok, err)
	}
}

func TestMemStoreKillsAndRevives(t *testing.T) {
	prof := &faults.ProcProfile{Seed: 11, Kills: 3, KillSpan: 4}
	st := NewMemStore(prof)

	line := []byte(`{"seq":1,"op":"x","crc":0}`)
	kills := 0
	writes := 0
	for kills < 3 {
		err := st.AppendJournal(line)
		writes++
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("write %d: %v", writes, err)
		}
		kills++
		if !st.Dead() {
			t.Fatal("store not dead after kill")
		}
		// Every operation fails until revival.
		if err := st.AppendJournal(line); !errors.Is(err, ErrKilled) {
			t.Fatalf("dead store append err = %v, want ErrKilled", err)
		}
		if err := st.CommitCheckpoint([]byte("b")); !errors.Is(err, ErrKilled) {
			t.Fatalf("dead store commit err = %v, want ErrKilled", err)
		}
		st.Revive()
		if st.Dead() {
			t.Fatal("store still dead after Revive")
		}
	}
	if st.Kills() != 3 {
		t.Fatalf("kills = %d, want 3", st.Kills())
	}
	// Instances past Kills are immortal.
	for i := 0; i < 100; i++ {
		if err := st.AppendJournal(line); err != nil {
			t.Fatalf("immortal instance write %d: %v", i, err)
		}
	}
}

func TestMemStoreTornTailLeavesPrefix(t *testing.T) {
	// With TornTail=1 every kill tears; find a seed/instance whose first
	// kill lands on a journal append and verify a strict prefix landed.
	for seed := int64(0); seed < 64; seed++ {
		st := NewMemStore(&faults.ProcProfile{Seed: seed, Kills: 1, KillSpan: 3, TornTail: 1})
		line := []byte(`{"seq":1,"op":"advance","to":12345,"crc":99}`)
		var before []byte
		for {
			before, _ = st.JournalBytes()
			if err := st.AppendJournal(line); err != nil {
				break
			}
		}
		after, _ := st.JournalBytes()
		tail := after[len(before):]
		if len(tail) >= len(line) {
			t.Fatalf("seed %d: torn write landed %d bytes of a %d-byte record", seed, len(tail), len(line))
		}
		if !bytes.HasPrefix(line, tail) {
			t.Fatalf("seed %d: torn tail %q is not a prefix of the record", seed, tail)
		}
		return // one torn seed is enough
	}
	t.Fatal("no seed in range produced a torn kill")
}
