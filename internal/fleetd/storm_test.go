package fleetd

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fleet-level hostile RF: the StormRF knob derives one correlated radar
// schedule from the fleet seed, every network's backend survives it with
// zero NOP-invariant trips, and the adaptive controller treats the storm
// volatility as churn.

func TestStormRFFleetCorrelated(t *testing.T) {
	c := New(Config{
		Seed: 5, StormRF: true, StormsPerDay: 24, StormHorizon: sim.Day,
		Fast: 15 * sim.Minute, Mid: -1, Deep: -1,
		AdaptiveCadence: true, Obs: obs.NewRegistry(),
	})
	for id := 0; id < 3; id++ {
		if err := c.Add(testNetwork(id, 6), NetOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(12 * sim.Hour)

	storms := -1
	for id := 0; id < 3; id++ {
		ns := c.shardFor(id).get(id)
		ctl := ns.be.Control()
		if ctl.NOPViolations != 0 {
			t.Fatalf("network %d: NOP invariant tripped %d times", id, ctl.NOPViolations)
		}
		if ctl.RadarStorms == 0 {
			t.Fatalf("network %d saw no storms in 12h at 24/day", id)
		}
		// Correlation is the point: the schedule comes from the fleet seed,
		// so every network sees the same sweeps.
		if storms == -1 {
			storms = ctl.RadarStorms
		} else if ctl.RadarStorms != storms {
			t.Fatalf("network %d saw %d storms, network 0 saw %d — schedule not fleet-correlated",
				id, ctl.RadarStorms, storms)
		}
	}
}

// TestStormRadarCountsAsChurn: a radar-bearing pass is volatility by
// definition — it snaps a stretched network back to base cadence even
// when NetP has not moved yet (the vacated APs re-plan on the next pass,
// not this one).
func TestStormRadarCountsAsChurn(t *testing.T) {
	c := New(Config{
		Seed: 17, Fast: 15 * sim.Minute, Mid: -1, Deep: -1,
		AdaptiveCadence: true, Obs: obs.NewRegistry(),
	})
	if err := c.Add(testNetwork(0, 4), NetOptions{}); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * sim.Hour) // quiet network: the multiplier climbs
	ns := c.shardFor(0).get(0)
	if ns.mult < 2 {
		t.Fatalf("quiet network never stretched: mult=%d", ns.mult)
	}
	pre := c.AdaptiveEscalated()
	// A pass that absorbed a radar sweep but saw identical NetP.
	c.adaptObserve(c.now, &passJob{ns: ns}, &passResult{
		radar: 1, logNetP5: ns.lastNP5, logNetP24: ns.lastNP24,
	})
	if ns.mult != 1 {
		t.Fatalf("radar pass left mult=%d, want snap back to 1", ns.mult)
	}
	if c.AdaptiveEscalated() == pre {
		t.Fatal("radar pass did not count as an escalation")
	}
}

// TestStormRFSnapshotInvariance: the storm path inherits the determinism
// contract — snapshots and checkpoint bytes are byte-identical across
// shard/worker shapes.
func TestStormRFSnapshotInvariance(t *testing.T) {
	f := fleet.Generate(fleet.Options{Seed: 42, Networks: 4})
	shapes := []struct{ shards, workers int }{{1, 1}, {3, 2}, {1, 4}}
	var base Snapshot
	var baseCkpt []byte
	for i, shape := range shapes {
		c := New(Config{
			Seed:   99,
			Shards: shape.shards, Workers: shape.workers,
			StormRF: true, StormsPerDay: 12, StormHorizon: sim.Day,
			Fast: 15 * sim.Minute, Mid: -1, Deep: -1,
			AdaptiveCadence: true, Obs: obs.NewRegistry(),
		})
		if err := c.AddFleet(f); err != nil {
			t.Fatal(err)
		}
		c.Run(8 * sim.Hour)
		snap := c.Snapshot()
		ckpt := c.CheckpointBytes()
		if i == 0 {
			base, baseCkpt = snap, ckpt
			continue
		}
		if !reflect.DeepEqual(snap, base) {
			t.Fatalf("snapshot diverged for shards=%d workers=%d:\n%s\nvs\n%s",
				shape.shards, shape.workers, snap.String(), base.String())
		}
		if !bytes.Equal(ckpt, baseCkpt) {
			t.Fatalf("checkpoint bytes diverged for shards=%d workers=%d", shape.shards, shape.workers)
		}
	}
}

// TestStormRFConfigDigest: the storm knobs are part of the config
// identity, so a checkpoint from a storm-free run can never be replayed
// into a storm run (and vice versa).
func TestStormRFConfigDigest(t *testing.T) {
	mk := func(mut func(*Config)) uint64 {
		cfg := Config{Seed: 1, Fast: 15 * sim.Minute}
		mut(&cfg)
		c := cfg.withDefaults()
		return c.digest()
	}
	off := mk(func(*Config) {})
	on := mk(func(c *Config) { c.StormRF = true })
	if off == on {
		t.Fatal("StormRF does not change the config digest")
	}
	if mk(func(c *Config) { c.StormRF = true; c.StormsPerDay = 6 }) == on {
		t.Fatal("StormsPerDay does not change the config digest")
	}
	if mk(func(c *Config) { c.StormRF = true; c.StormHorizon = 2 * sim.Day }) == on {
		t.Fatal("StormHorizon does not change the config digest")
	}
}
