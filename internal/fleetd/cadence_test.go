package fleetd

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SetCadence between ticks: the affected levels' pending heap entries
// move in place (exactly one entry per (network, level) pair survives — a
// cadence change must never make a level fire twice), a disabled level is
// dropped, a re-enabled one arms fresh, and subsequent ticks honor the
// new periods.
func TestSetCadenceBetweenTicksUpdatesInPlace(t *testing.T) {
	c := New(Config{Seed: 11, Fast: 15 * sim.Minute, Mid: 45 * sim.Minute, Deep: -1, Obs: obs.NewRegistry()})
	c.Add(testNetwork(0, 2), NetOptions{})
	c.Add(testNetwork(1, 2), NetOptions{})
	c.Run(15 * sim.Minute) // one fast tick each; pending: fast@30m ×2, mid@45m ×2

	if !c.SetCadence(0, NetOptions{Fast: 5 * sim.Minute, Mid: -1}) {
		t.Fatal("SetCadence(0) = false")
	}
	if c.SetCadence(99, NetOptions{Fast: 5 * sim.Minute}) {
		t.Fatal("SetCadence on an unknown network = true")
	}

	counts := map[[2]int]int{}
	for _, e := range c.sched.entries() {
		counts[[2]int{e.id, e.level}]++
	}
	want := map[[2]int]sim.Time{
		{0, levelFast}: 20 * sim.Minute, // moved in place: now(15m) + new 5m period
		{1, levelFast}: 30 * sim.Minute, // untouched
		{1, levelMid}:  45 * sim.Minute, // untouched
	}
	if len(counts) != len(want) {
		t.Fatalf("pending pairs = %v, want exactly %d pairs", counts, len(want))
	}
	for pair, at := range want {
		if counts[pair] != 1 {
			t.Fatalf("pair %v has %d heap entries, want exactly 1", pair, counts[pair])
		}
		if got, ok := c.sched.when(pair[0], pair[1]); !ok || got != at {
			t.Fatalf("when(%v) = %v, %v; want %v", pair, got, ok, at)
		}
	}

	// The new schedule drives the next hour: net 0 fires every 5 minutes
	// with its mid level silent; net 1 stays on the original cadences
	// (its 45m mid coalesces the coincident fast entry).
	c.Run(sim.Hour)
	snap := c.Snapshot()
	if got := snap.Networks[0].Passes; got != [numLevels]int{13, 0, 0} {
		t.Fatalf("net 0 passes = %v, want [13 0 0]", got)
	}
	if got := snap.Networks[1].Passes; got != [numLevels]int{4, 1, 0} {
		t.Fatalf("net 1 passes = %v, want [4 1 0]", got)
	}

	// Re-enabling a disabled level (override 0 inherits the controller
	// default) arms one fresh entry at now+period.
	if !c.SetCadence(0, NetOptions{Fast: 5 * sim.Minute}) {
		t.Fatal("re-enabling SetCadence(0) = false")
	}
	if at, ok := c.sched.when(0, levelMid); !ok || at != c.Now()+45*sim.Minute {
		t.Fatalf("re-enabled mid level at %v, %v; want %v", at, ok, c.Now()+45*sim.Minute)
	}
	counts = map[[2]int]int{}
	for _, e := range c.sched.entries() {
		counts[[2]int{e.id, e.level}]++
	}
	if len(counts) != 4 {
		t.Fatalf("pending pairs after re-enable = %v, want 4", counts)
	}
	for pair, n := range counts {
		if n != 1 {
			t.Fatalf("pair %v has %d heap entries, want exactly 1", pair, n)
		}
	}
}

// A journaled SetCadence replays through the same replace-in-place path:
// a reopened controller matches its uncrashed twin byte for byte, and
// both continue identically past the replay point.
func TestSetCadenceJournalReplay(t *testing.T) {
	cfg := testConfig(61)
	f := testFleet(61, 4)
	store := NewMemStore(nil)
	live := mustOpen(t, cfg, store)
	if err := live.AddFleet(f); err != nil {
		t.Fatalf("addfleet: %v", err)
	}
	if err := live.RunTo(30 * sim.Minute); err != nil {
		t.Fatalf("runto 30m: %v", err)
	}
	if !live.SetCadence(2, NetOptions{Fast: 5 * sim.Minute, Mid: -1}) {
		t.Fatal("SetCadence(2) = false")
	}
	// An unknown ID is journaled anyway and must replay as the same no-op.
	if live.SetCadence(999, NetOptions{Fast: sim.Minute}) {
		t.Fatal("SetCadence(999) = true")
	}
	if err := live.RunTo(sim.Hour); err != nil {
		t.Fatalf("runto 1h: %v", err)
	}

	reopened := mustOpen(t, testConfig(61), store)
	requireEquivalent(t, "reopened", reopened, live)

	if err := live.RunTo(2 * sim.Hour); err != nil {
		t.Fatalf("live continue: %v", err)
	}
	if err := reopened.RunTo(2 * sim.Hour); err != nil {
		t.Fatalf("reopened continue: %v", err)
	}
	requireEquivalent(t, "continued", reopened, live)

	// The re-parameterized network really runs at the 5-minute cadence:
	// 2 fast passes before the change, then 18 over the remaining 90m.
	snap := live.Snapshot()
	if got := snap.Networks[2].Passes[levelFast]; got != 20 {
		t.Fatalf("net 2 fast passes = %d, want 20", got)
	}
	if got := snap.Networks[0].Passes[levelFast]; got != 8 {
		t.Fatalf("net 0 fast passes = %d, want 8", got)
	}
}
