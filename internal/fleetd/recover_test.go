package fleetd

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// testConfig is the small-fleet configuration the recovery tests share.
// Every controller gets a private registry so shared-default counters
// cannot couple a recovered controller to its twin.
func testConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		Shards:          4,
		Workers:         2,
		CheckpointEvery: sim.Hour,
		Obs:             obs.NewRegistry(),
	}
}

func testFleet(seed int64, n int) *fleet.Fleet {
	return fleet.Generate(fleet.Options{Networks: n, Seed: seed, MaxAPs: 4})
}

// mustOpen opens a controller over a fault-free store path.
func mustOpen(t *testing.T, cfg Config, store Store) *Controller {
	t.Helper()
	c, err := Open(cfg, store)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return c
}

// runTwin drives an uncrashed controller through the reference schedule
// and returns it: the ground truth every recovered controller must
// match. cfg.Proc is kept — clock-keyed fault decisions (checkpoint
// failures, pass panics) are part of the deterministic history both
// sides must share; only process kills live in the crashed run's store.
func runTwin(t *testing.T, cfg Config, f *fleet.Fleet, targets []sim.Time) *Controller {
	t.Helper()
	cfg.Obs = obs.NewRegistry()
	twin := mustOpen(t, cfg, NewMemStore(nil))
	if err := twin.AddFleet(f); err != nil {
		t.Fatalf("twin addfleet: %v", err)
	}
	for _, target := range targets {
		if err := twin.RunTo(target); err != nil {
			t.Fatalf("twin runto %v: %v", target, err)
		}
	}
	return twin
}

// driveWithKills pushes a controller through the target schedule against
// a killable store, reviving and re-Opening after every process death —
// the crash-recovery loop the fleetd binary's supervisor would run.
func driveWithKills(t *testing.T, cfg Config, store *MemStore, f *fleet.Fleet, targets []sim.Time) *Controller {
	t.Helper()
	var c *Controller
	idx := 0
	for attempts := 0; ; attempts++ {
		if attempts > 10_000 {
			t.Fatal("recovery loop did not converge")
		}
		if c == nil {
			cc, err := Open(cfg, store)
			if err != nil {
				if !errors.Is(err, ErrKilled) {
					t.Fatalf("open: %v", err)
				}
				store.Revive()
				continue
			}
			c = cc
		}
		if c.Len() == 0 {
			if err := c.AddFleet(f); err != nil {
				if !errors.Is(err, ErrKilled) {
					t.Fatalf("addfleet: %v", err)
				}
				store.Revive()
				c = nil
				continue
			}
		}
		for idx < len(targets) && c.Now() >= targets[idx] {
			idx++ // replay already finished this advance
		}
		if idx == len(targets) {
			return c
		}
		if err := c.RunTo(targets[idx]); err != nil {
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("runto %v: %v", targets[idx], err)
			}
			store.Revive()
			c = nil
			continue
		}
		idx++
	}
}

// requireEquivalent asserts the recovered controller converged to the
// twin exactly: canonical state bytes and the full fleet snapshot.
func requireEquivalent(t *testing.T, label string, got, want *Controller) {
	t.Helper()
	if got.Now() != want.Now() {
		t.Fatalf("%s: clock %v, want %v", label, got.Now(), want.Now())
	}
	if !bytes.Equal(got.CheckpointBytes(), want.CheckpointBytes()) {
		t.Fatalf("%s: checkpoint bytes diverge from uncrashed twin", label)
	}
	gs, ws := got.Snapshot(), want.Snapshot()
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: snapshot diverges from uncrashed twin:\n got: %+v\nwant: %+v", label, gs, ws)
	}
}

func advanceTargets(steps int, step sim.Time) []sim.Time {
	out := make([]sim.Time, steps)
	for i := range out {
		out[i] = sim.Time(i+1) * step
	}
	return out
}

// TestCleanRestartReplay: run, close cleanly, reopen — the replayed
// controller must land exactly where the original stopped, and keep
// running to the same future as an uninterrupted twin.
func TestCleanRestartReplay(t *testing.T) {
	cfg := testConfig(41)
	f := testFleet(41, 30)
	targets := advanceTargets(4, 45*sim.Minute)

	store := NewMemStore(nil)
	orig := mustOpen(t, cfg, store)
	if err := orig.AddFleet(f); err != nil {
		t.Fatal(err)
	}
	for _, target := range targets[:2] {
		if err := orig.RunTo(target); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wantBytes := orig.CheckpointBytes()

	cfg.Obs = obs.NewRegistry()
	re := mustOpen(t, cfg, store)
	if re.Now() != orig.Now() {
		t.Fatalf("reopened clock %v, want %v", re.Now(), orig.Now())
	}
	if !bytes.Equal(re.CheckpointBytes(), wantBytes) {
		t.Fatal("reopened state bytes differ from pre-close state")
	}

	// The reopened controller keeps running identically.
	for _, target := range targets[2:] {
		if err := re.RunTo(target); err != nil {
			t.Fatal(err)
		}
	}
	requireEquivalent(t, "post-restart run", re, runTwin(t, cfg, f, targets))
}

// TestRestartEquivalenceAtEveryWriteBoundary is the PR's property test:
// kill the process immediately after EVERY durable write a clean run
// performs, one run per boundary, and require each recovery to converge
// byte-identically to the uncrashed twin. With MemStore modeling kills at
// durable-write granularity, these boundaries are exactly the crash
// instants that can change recovery's input.
func TestRestartEquivalenceAtEveryWriteBoundary(t *testing.T) {
	cfg := testConfig(97)
	f := testFleet(97, 16)
	targets := advanceTargets(3, 50*sim.Minute)

	// Count the clean run's durable writes.
	clean := NewMemStore(nil)
	driveWithKills(t, cfg, clean, f, targets)
	total := clean.writes
	if total < 6 {
		t.Fatalf("clean run performed only %d durable writes; schedule too small", total)
	}
	twin := runTwin(t, cfg, f, targets)

	boundaries := total
	if testing.Short() && boundaries > 8 {
		boundaries = 8
	}
	for k := 1; k <= boundaries; k++ {
		store := NewMemStore(nil)
		store.killAt = k // die right after the k-th durable write lands
		cfg := cfg
		cfg.Obs = obs.NewRegistry()
		c := driveWithKills(t, cfg, store, f, targets)
		if store.Kills() != 1 {
			t.Fatalf("boundary %d: %d kills fired, want 1", k, store.Kills())
		}
		requireEquivalent(t, "kill after write "+itoa(k), c, twin)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v = v / 10
	}
	return string(b[i:])
}

// TestDegradedModeDeterminism: checkpoint-commit failures push the fleet
// into degraded (i=0-only) cadence with journaled demotions; a crashed
// run replays the same degradation history and still converges to the
// twin, and demoted deep intent eventually executes (never dropped).
func TestDegradedModeDeterminism(t *testing.T) {
	cfg := testConfig(53)
	cfg.Mid = 2 * sim.Hour
	cfg.CheckpointEvery = 30 * sim.Minute
	cfg.Proc = &faults.ProcProfile{Seed: 53, CheckpointFail: 0.5}
	f := testFleet(53, 12)
	targets := advanceTargets(6, sim.Hour)

	twin := runTwin(t, cfg, f, targets)
	tm := twin.met
	if tm.ckptFailures.Value() == 0 {
		t.Fatal("fault profile produced no checkpoint failures; test is vacuous")
	}
	if tm.degradedEnters.Value() == 0 || tm.degradedDemoted.Value() == 0 {
		t.Fatalf("degradation never engaged: enters=%d demoted=%d",
			tm.degradedEnters.Value(), tm.degradedDemoted.Value())
	}
	// Deep intent survives degradation: mid passes still ran.
	if twin.Snapshot().Passes[levelMid] == 0 {
		t.Fatal("no mid-level passes ran; demoted intent was dropped")
	}

	store := NewMemStore(&faults.ProcProfile{Seed: 77, Kills: 4, KillSpan: 8, TornTail: 0.5})
	cfg2 := cfg
	cfg2.Obs = obs.NewRegistry()
	c := driveWithKills(t, cfg2, store, f, targets)
	if store.Kills() == 0 {
		t.Fatal("kill profile never fired; crashed-run coverage is vacuous")
	}
	requireEquivalent(t, "degraded crashed run", c, twin)
}

// TestOpenRejectsConfigMismatch: a journal must not replay under a
// configuration that would rebuild different state.
func TestOpenRejectsConfigMismatch(t *testing.T) {
	cfg := testConfig(5)
	store := NewMemStore(nil)
	c := mustOpen(t, cfg, store)
	if err := c.AddFleet(testFleet(5, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunTo(30 * sim.Minute); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Obs = obs.NewRegistry()
	bad.Seed = 6
	if _, err := Open(bad, store); err == nil {
		t.Fatal("Open accepted a journal written under a different seed")
	}
	bad = cfg
	bad.Obs = obs.NewRegistry()
	bad.DisableDirtySkip = true
	if _, err := Open(bad, store); err == nil {
		t.Fatal("Open accepted a journal written under different dirty-skip policy")
	}
}

// TestOpenTruncatesTornTail: a torn final record is dropped, truncated
// away, and the next append lands cleanly after the surviving prefix.
func TestOpenTruncatesTornTail(t *testing.T) {
	cfg := testConfig(19)
	store := NewMemStore(nil)
	c := mustOpen(t, cfg, store)
	if err := c.AddFleet(testFleet(19, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunTo(20 * sim.Minute); err != nil {
		t.Fatal(err)
	}

	// Tear the tail by hand: append half of a valid next record.
	line, err := encodeRecord(jrec{Seq: c.seq + 1, Op: opAdvance, To: int64(sim.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	store.journal.Write(line[:len(line)/2])

	cfg.Obs = obs.NewRegistry()
	re := mustOpen(t, cfg, store)
	if re.met.tornDropped.Value() != 1 {
		t.Fatalf("tornDropped = %d, want 1", re.met.tornDropped.Value())
	}
	if re.Now() != 20*sim.Minute {
		t.Fatalf("clock after torn recovery = %v, want %v", re.Now(), 20*sim.Minute)
	}
	// The journal is clean again: run further and reopen once more.
	if err := re.RunTo(sim.Hour); err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	re2 := mustOpen(t, cfg, store)
	if re2.Now() != sim.Hour {
		t.Fatalf("clock after second recovery = %v, want %v", re2.Now(), sim.Hour)
	}
	if !bytes.Equal(re2.CheckpointBytes(), re.CheckpointBytes()) {
		t.Fatal("second recovery diverged from the live controller")
	}
}
