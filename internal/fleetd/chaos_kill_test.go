package fleetd

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestChaosKillCampaign is the PR's acceptance campaign: across many
// seeds, a 600-network fleet is driven while SIGKILL-style process
// deaths land at seeded durable-write instants (half of them tearing the
// journal's final record). After every death the store is revived and
// the controller re-Opened — replaying the journal from the start — and
// at the end of the schedule the survivor must be byte-identical to an
// uncrashed twin: same canonical checkpoint bytes, same full snapshot,
// zero quarantines (kills are process faults, not pass faults — no
// network may be collateral damage).
//
// Full mode runs 50 seeds; -short keeps CI latency sane with 8.
func TestChaosKillCampaign(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	const networks = 600

	targets := advanceTargets(4, 30*sim.Minute)
	for s := 0; s < seeds; s++ {
		seed := int64(1000 + 17*s)
		cfg := Config{
			Seed:            seed,
			Shards:          8,
			CheckpointEvery: 45 * sim.Minute,
			Obs:             obs.NewRegistry(),
		}
		f := fleet.Generate(fleet.Options{Networks: networks, Seed: seed, MaxAPs: 3})

		twin := runTwin(t, cfg, f, targets)

		store := NewMemStore(&faults.ProcProfile{
			Seed:     seed,
			Kills:    5,
			KillSpan: 10,
			TornTail: 0.5,
		})
		c := driveWithKills(t, cfg, store, f, targets)

		if store.Kills() == 0 {
			t.Fatalf("seed %d: no kills fired; campaign coverage is vacuous", seed)
		}
		if c.met.recoveries.Value() == 0 {
			t.Fatalf("seed %d: no journal replays happened", seed)
		}
		requireEquivalent(t, "campaign seed "+itoa(int(seed)), c, twin)
		if snap := c.Snapshot(); snap.QuarantinedNets != 0 {
			t.Fatalf("seed %d: %d networks quarantined by process kills", seed, snap.QuarantinedNets)
		}
	}
}
