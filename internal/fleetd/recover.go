package fleetd

import (
	"bytes"
	"fmt"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// Restart and recovery. Open is the durable entry point: on an empty
// store it starts a fresh journal; otherwise it rebuilds the controller
// by replaying every journaled intent from the beginning. Replay is
// exact — seeds, scenarios, fault decisions, and pass schedules are all
// pure functions of journaled inputs — so the rebuilt controller's state
// bytes match an uncrashed twin's, which the replayed checkpoint records
// verify en route.
//
// The crash point needs no bookkeeping of its own: the final advance
// record was written ahead of its work, so replay simply re-executes the
// whole advance. The moment the record stream runs out, the controller
// flips from replay to live mode mid-run — everything past the last
// durable record is new execution, with real checkpoint commits and
// journal appends (and, under the chaos campaign, real kill points).

// errReplayDiverged formats the hard failure every replay verification
// raises: the journal promises state the rebuilt controller did not
// reproduce.
func errReplayDiverged(format string, a ...any) error {
	return fmt.Errorf("fleetd: replay diverged: "+format, a...)
}

// replayState is the unconsumed suffix of the journal during recovery.
type replayState struct {
	recs []jrec
	p    int
}

// replaying reports whether journal records remain to be consumed. The
// moment it turns false, every append/commit path operates live again.
func (c *Controller) replaying() bool {
	return c.replay != nil && c.replay.p < len(c.replay.recs)
}

// replayHead peeks the next unconsumed record.
func (c *Controller) replayHead() (jrec, bool) {
	if !c.replaying() {
		return jrec{}, false
	}
	return c.replay.recs[c.replay.p], true
}

func (c *Controller) replayPop() { c.replay.p++ }

// Open attaches a Controller to a durable store. An empty journal starts
// a fresh one (writing the config record); otherwise the journal is
// replayed to reconstruct the pre-crash controller. A torn final record
// (crash mid-append) is dropped and truncated away. The returned error
// is ErrKilled when the store's fault model kills the process during the
// live continuation — re-Open after Revive to continue recovery.
func Open(cfg Config, store Store) (*Controller, error) {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = sim.Hour
	}
	cfg = cfg.withDefaults()
	c := New(cfg)
	c.store = store

	raw, err := store.JournalBytes()
	if err != nil {
		return nil, err
	}
	recs, cleanLen, torn, err := decodeJournal(raw)
	if err != nil {
		return nil, err
	}
	if torn {
		c.met.tornDropped.Inc()
		if err := store.Truncate(int64(cleanLen)); err != nil {
			return nil, err
		}
	}
	if len(recs) == 0 {
		if err := c.appendRecord(jrec{Op: opConfig, Digest: cfg.digest()}); err != nil {
			return nil, err
		}
		return c, nil
	}

	if recs[0].Op != opConfig {
		return nil, fmt.Errorf("fleetd: journal does not start with a config record (got %q)", recs[0].Op)
	}
	if recs[0].Digest != cfg.digest() {
		return nil, fmt.Errorf("fleetd: journal config digest %#x does not match configuration %#x", recs[0].Digest, cfg.digest())
	}
	if data, ok, err := store.Checkpoint(); err != nil {
		return nil, err
	} else if ok {
		at, err := ckptClock(data)
		if err != nil {
			return nil, err
		}
		c.storedCkpt, c.storedCkptAt = data, at
	}

	c.seq = len(recs)
	c.replay = &replayState{recs: recs, p: 1}
	c.met.recoveries.Inc()
	for {
		r, ok := c.replayHead()
		if !ok {
			break
		}
		switch r.Op {
		case opAddFleet:
			c.replayPop()
			if r.Fleet == nil {
				return nil, fmt.Errorf("fleetd: journal addfleet record %d has no options", r.Seq)
			}
			c.addFleet(fleet.Generate(*r.Fleet))
		case opAdd:
			c.replayPop()
			if r.Net == nil {
				return nil, fmt.Errorf("fleetd: journal add record %d has no network", r.Seq)
			}
			opt := NetOptions{}
			if r.Opt != nil {
				opt = *r.Opt
			}
			c.add(r.Net, opt)
		case opRemove:
			c.replayPop()
			c.remove(r.ID)
		case opCadence:
			c.replayPop()
			opt := NetOptions{}
			if r.Opt != nil {
				opt = *r.Opt
			}
			c.setCadence(r.ID, opt)
		case opAdvance:
			c.replayPop()
			if err := c.runTo(sim.Time(r.To)); err != nil {
				return nil, err
			}
		case opCkpt:
			// A forced commit (Checkpoint/Close) at its stream position.
			c.replayPop()
			if err := c.replayForcedCkpt(r); err != nil {
				return nil, err
			}
		case opShutdown:
			c.replayPop()
		default:
			return nil, fmt.Errorf("fleetd: unexpected journal record %q at seq %d", r.Op, r.Seq)
		}
	}
	c.replay = nil
	return c, nil
}

// replayForcedCkpt re-applies a forced (schedule-independent) commit:
// the state bytes recomputed at its stream position must carry the
// recorded digest, and must equal the stored blob when it is this
// commit's.
func (c *Controller) replayForcedCkpt(r jrec) error {
	if at := sim.Time(r.To); at != c.now {
		return fmt.Errorf("fleetd: replay diverged: forced checkpoint at clock %v but state is at %v", at, c.now)
	}
	data := c.checkpointBytes()
	if fnvBytes(data) != r.Digest {
		return fmt.Errorf("fleetd: replay diverged: forced checkpoint digest mismatch at %v", c.now)
	}
	if c.storedCkpt != nil && c.storedCkptAt == c.now && !bytes.Equal(data, c.storedCkpt) {
		return fmt.Errorf("fleetd: replay diverged: stored checkpoint at %v does not match replayed state", c.now)
	}
	c.met.ckptCommits.Inc()
	c.ckptSucceeded()
	return nil
}
