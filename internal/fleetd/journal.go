package fleetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/fleet"
)

// The intent journal. Every externally-visible controller mutation is
// appended (and synced) as one self-checking JSON record BEFORE the work
// it describes executes, so a crash at any instant loses at most work the
// journal already promises to redo. Because every per-network control
// plane is a pure function of (config, network set, clock) — seeds are
// content-derived, fault decisions are positional hashes — replaying the
// journal from the beginning reconstructs the exact pre-crash state:
// determinism IS the recovery mechanism, and checkpoints are verification
// anchors rather than replay shortcuts.
//
// Record ops:
//
//	config    digest of the result-affecting configuration; always seq 1.
//	addfleet  a generative fleet registration (fleet.Options — replay
//	          re-runs fleet.Generate, so 10k networks cost one record).
//	add       one hand-built network, inlined (fleet.Network JSON).
//	remove    network deregistration.
//	cadence   per-network cadence re-parameterization (ID + NetOptions):
//	          SetCadence between ticks, replayed through the same
//	          replace-in-place scheduler path.
//	advance   RunTo target clock, written ahead of the run. Replaying an
//	          advance re-executes every pass it covered.
//	demote    a degraded-mode tick: deep passes due at To ran at i=0 and
//	          their deep intent was re-queued. Journaled so wall-clock
//	          (lag) and IO-failure degradations replay exactly.
//	ckpt      a checkpoint committed at clock To with the given content
//	          digest, appended after the atomic rename.
//	ckptfail  a checkpoint attempt at clock To failed; the controller
//	          entered (or escalated) degraded mode.
//	shutdown  clean shutdown marker (Close, after a final checkpoint).
//
// Each record carries its 1-based sequence number and a CRC32 over its
// own encoding with the CRC field zeroed. The decoder drops a torn or
// CRC-bad FINAL record (the crash-mid-append case, which Open then
// truncates away); anything malformed earlier is hard corruption.
const (
	opConfig   = "config"
	opAddFleet = "addfleet"
	opAdd      = "add"
	opRemove   = "remove"
	opCadence  = "cadence"
	opAdvance  = "advance"
	opDemote   = "demote"
	opCkpt     = "ckpt"
	opCkptFail = "ckptfail"
	opShutdown = "shutdown"
)

// jrec is one journal record. CRC must stay the last field so that any
// torn prefix of the line is guaranteed to be invalid JSON.
type jrec struct {
	Seq    int            `json:"seq"`
	Op     string         `json:"op"`
	To     int64          `json:"to,omitempty"` // clock, µs
	ID     int            `json:"id,omitempty"`
	Fleet  *fleet.Options `json:"fleet,omitempty"`
	Net    *fleet.Network `json:"net,omitempty"`
	Opt    *NetOptions    `json:"opt,omitempty"`
	Digest uint64         `json:"digest,omitempty"`
	CRC    uint32         `json:"crc"`
}

// encodeRecord renders a record as its journal line (no trailing
// newline), stamping the CRC.
func encodeRecord(r jrec) ([]byte, error) {
	r.CRC = 0
	base, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("fleetd: encode journal record: %w", err)
	}
	r.CRC = crc32.ChecksumIEEE(base)
	line, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("fleetd: encode journal record: %w", err)
	}
	return line, nil
}

// decodeJournal parses the journal. It returns the intact records, the
// byte length of the clean prefix (what the file should be truncated to
// if torn), and whether a torn final record was dropped. A malformed or
// out-of-sequence record anywhere but the tail is hard corruption.
func decodeJournal(data []byte) (recs []jrec, cleanLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: the append never completed. Torn
			// even if the prefix happens to parse.
			return recs, off, true, nil
		}
		line := data[off : off+nl]
		atTail := off+nl+1 == len(data)
		var r jrec
		bad := ""
		if uerr := json.Unmarshal(line, &r); uerr != nil {
			bad = uerr.Error()
		} else {
			chk := r
			chk.CRC = 0
			base, merr := json.Marshal(&chk)
			if merr != nil || crc32.ChecksumIEEE(base) != r.CRC {
				bad = "crc mismatch"
			}
		}
		if bad != "" {
			if atTail {
				// Tail damage: drop the final record, keep the clean prefix.
				return recs, off, true, nil
			}
			return nil, 0, false, fmt.Errorf("fleetd: journal record %d corrupt: %s", len(recs)+1, bad)
		}
		if r.Seq != len(recs)+1 {
			return nil, 0, false, fmt.Errorf("fleetd: journal record %d has seq %d", len(recs)+1, r.Seq)
		}
		recs = append(recs, r)
		off += nl + 1
		cleanLen = off
	}
	return recs, cleanLen, false, nil
}
