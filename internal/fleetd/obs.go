package fleetd

import "repro/internal/obs"

// Controller observability (scope "fleetd"):
//
//	fleetd.networks          registered (non-removed) networks
//	fleetd.passes_i{0,1,2}   planning passes executed, by cadence level
//	fleetd.skipped_i0        fast band-invocations the planning service
//	                         elided as provable no-ops (dirty-skip);
//	                         observability only — a skipped invocation
//	                         changes no planner-visible state
//	fleetd.shed_i{0,1,2}     passes shed under overload, by level
//	fleetd.coalesced         shallower passes subsumed by a deeper pass
//	                         due at the same tick (the §4.4.4 schedule
//	                         composition: every deep pass ends in i=0)
//	fleetd.removed_dropped   heap entries dropped because their network
//	                         was removed
//	fleetd.ingest_rows       telemetry rows batch-ingested into the
//	                         shared fleet DB
//	fleetd.due_per_tick      passes due at one scheduler tick
//	fleetd.shed_per_tick     passes shed at one scheduler tick
//	fleetd.sched_lag_us      wall µs a dispatched pass waited for a
//	                         worker (scheduler lag under load)
//	fleetd.pass_us           wall µs per executed pass (engine advance +
//	                         planning + telemetry collection)
//	fleetd.ingest_us         wall µs per per-tick batched ingest section
type metrics struct {
	networks       *obs.Gauge
	passesRun      [numLevels]*obs.Counter
	skippedI0      *obs.Counter
	passesShed     [numLevels]*obs.Counter
	coalesced      *obs.Counter
	removedDropped *obs.Counter
	ingestRows     *obs.Counter
	duePerTick     *obs.Histogram
	shedPerTick    *obs.Histogram
	schedLagUS     *obs.Histogram
	passUS         *obs.Histogram
	ingestUS       *obs.Histogram
}

func metricsOn(reg *obs.Registry) *metrics {
	s := reg.Scope("fleetd")
	m := &metrics{
		networks:       s.Gauge("networks"),
		skippedI0:      s.Counter("skipped_i0"),
		coalesced:      s.Counter("coalesced"),
		removedDropped: s.Counter("removed_dropped"),
		ingestRows:     s.Counter("ingest_rows"),
		duePerTick:     s.Histogram("due_per_tick", "passes"),
		shedPerTick:    s.Histogram("shed_per_tick", "passes"),
		schedLagUS:     s.Histogram("sched_lag_us", "µs"),
		passUS:         s.Histogram("pass_us", "µs"),
		ingestUS:       s.Histogram("ingest_us", "µs"),
	}
	for level := 0; level < numLevels; level++ {
		m.passesRun[level] = s.Counter("passes_" + levelName(level))
		m.passesShed[level] = s.Counter("shed_" + levelName(level))
	}
	return m
}
