package fleetd

import "repro/internal/obs"

// Controller observability (scope "fleetd"):
//
//	fleetd.networks          registered (non-removed) networks
//	fleetd.passes_i{0,1,2}   planning passes executed, by cadence level
//	fleetd.skipped_i0        fast band-invocations the planning service
//	                         elided as provable no-ops (dirty-skip);
//	                         observability only — a skipped invocation
//	                         changes no planner-visible state
//	fleetd.shed_i{0,1,2}     passes shed under overload, by level
//	fleetd.coalesced         shallower passes subsumed by a deeper pass
//	                         due at the same tick (the §4.4.4 schedule
//	                         composition: every deep pass ends in i=0)
//	fleetd.removed_dropped   heap entries dropped because their network
//	                         was removed
//	fleetd.ingest_rows       telemetry rows batch-ingested into the
//	                         shared fleet DB
//	fleetd.due_per_tick      passes due at one scheduler tick
//	fleetd.shed_per_tick     passes shed at one scheduler tick
//	fleetd.sched_lag_us      wall µs a dispatched pass waited for a
//	                         worker (scheduler lag under load)
//	fleetd.pass_us           wall µs per executed pass (engine advance +
//	                         planning + telemetry collection)
//	fleetd.ingest_us         wall µs per per-tick batched ingest section
//
// Durability and supervision (PR 7):
//
//	fleetd.journal_records   intent-journal records durably appended
//	fleetd.ckpt_commits      checkpoints committed (periodic + forced)
//	fleetd.ckpt_failures     checkpoint attempts that failed (injected or
//	                         real IO), entering/escalating degraded mode
//	fleetd.torn_dropped      torn journal tail records dropped at Open
//	fleetd.recoveries        journal replays performed by Open
//	fleetd.degraded_enters   transitions into checkpoint-degraded mode
//	fleetd.degraded_demoted  deep passes demoted to i=0 under degradation
//	fleetd.lag_degraded      transitions into scheduler-lag degraded mode
//	fleetd.pass_panics       panicking passes caught by the supervisor
//	fleetd.watchdog_cancels  stuck passes cancelled past their deadline
//	fleetd.quarantined       networks quarantined after a faulted pass
//
// Adaptive cadence (Config.AdaptiveCadence; adaptive.go):
//
//	fleetd.adapt_stretched   schedule-stretch decisions (multiplier
//	                         doublings after a calm streak)
//	fleetd.adapt_escalated   volatility escalations (multiplier snapped
//	                         back to 1x)
//	fleetd.adapt_pulled      pending deadlines pulled forward by an
//	                         escalation
type metrics struct {
	networks       *obs.Gauge
	passesRun      [numLevels]*obs.Counter
	skippedI0      *obs.Counter
	passesShed     [numLevels]*obs.Counter
	coalesced      *obs.Counter
	removedDropped *obs.Counter
	ingestRows     *obs.Counter
	duePerTick     *obs.Histogram
	shedPerTick    *obs.Histogram
	schedLagUS     *obs.Histogram
	passUS         *obs.Histogram
	ingestUS       *obs.Histogram

	journalRecords  *obs.Counter
	ckptCommits     *obs.Counter
	ckptFailures    *obs.Counter
	tornDropped     *obs.Counter
	recoveries      *obs.Counter
	degradedEnters  *obs.Counter
	degradedDemoted *obs.Counter
	lagDegraded     *obs.Counter
	passPanics      *obs.Counter
	watchdogCancels *obs.Counter
	quarantined     *obs.Counter

	adaptStretched *obs.Counter
	adaptEscalated *obs.Counter
	adaptPulled    *obs.Counter
}

func metricsOn(reg *obs.Registry) *metrics {
	s := reg.Scope("fleetd")
	m := &metrics{
		networks:       s.Gauge("networks"),
		skippedI0:      s.Counter("skipped_i0"),
		coalesced:      s.Counter("coalesced"),
		removedDropped: s.Counter("removed_dropped"),
		ingestRows:     s.Counter("ingest_rows"),
		duePerTick:     s.Histogram("due_per_tick", "passes"),
		shedPerTick:    s.Histogram("shed_per_tick", "passes"),
		schedLagUS:     s.Histogram("sched_lag_us", "µs"),
		passUS:         s.Histogram("pass_us", "µs"),
		ingestUS:       s.Histogram("ingest_us", "µs"),

		journalRecords:  s.Counter("journal_records"),
		ckptCommits:     s.Counter("ckpt_commits"),
		ckptFailures:    s.Counter("ckpt_failures"),
		tornDropped:     s.Counter("torn_dropped"),
		recoveries:      s.Counter("recoveries"),
		degradedEnters:  s.Counter("degraded_enters"),
		degradedDemoted: s.Counter("degraded_demoted"),
		lagDegraded:     s.Counter("lag_degraded"),
		passPanics:      s.Counter("pass_panics"),
		watchdogCancels: s.Counter("watchdog_cancels"),
		quarantined:     s.Counter("quarantined"),

		adaptStretched: s.Counter("adapt_stretched"),
		adaptEscalated: s.Counter("adapt_escalated"),
		adaptPulled:    s.Counter("adapt_pulled"),
	}
	for level := 0; level < numLevels; level++ {
		m.passesRun[level] = s.Counter("passes_" + levelName(level))
		m.passesShed[level] = s.Counter("shed_" + levelName(level))
	}
	return m
}
