package fleetd

import (
	"fmt"
	"strings"

	"repro/internal/spectrum"
	"repro/internal/stats"
)

// NetworkStatus is one network's row in a fleet snapshot.
type NetworkStatus struct {
	ID  int
	Key string
	APs int
	// LogNetP5 / LogNetP24 are the planner's last objective values per
	// band (0 until the first pass runs).
	LogNetP5, LogNetP24 float64
	// Converged reports intended-vs-actual plan agreement across the
	// network's APs.
	Converged bool
	// Switches counts applied AP channel changes since registration.
	Switches int
	// Passes / Shed / Coalesced count scheduler outcomes by cadence
	// level.
	Passes    [numLevels]int
	Shed      [numLevels]int
	Coalesced int
	// Degraded counts band-invocations whose deep passes the staleness
	// guard downgraded to i=0.
	Degraded int
	// Quarantined marks a network isolated after a faulted pass (panic or
	// watchdog cancellation). Its planner-derived fields read as zero: the
	// fault froze its backend at a wall-clock-dependent point, so those
	// values are not deterministic and are excluded here exactly as they
	// are from checkpoint bytes.
	Quarantined bool
}

// Snapshot is the fleet-wide state at one instant: every network's
// status in ascending ID order plus cross-network distribution
// summaries. It is a pure function of the controller's configuration and
// network set — byte-identical across shard and worker counts.
type Snapshot struct {
	Networks []NetworkStatus

	// TotalAPs, TotalSwitches, ConvergedNets aggregate the rows above.
	TotalAPs, TotalSwitches, ConvergedNets int
	Passes, Shed                           [numLevels]int
	// QuarantinedNets counts networks isolated by pass supervision.
	QuarantinedNets int

	// LogNetP5 summarizes the per-network 5 GHz objective across networks
	// that have completed at least one pass; Util summarizes the modeled
	// per-AP utilization rows ingested into the shared fleet DB.
	LogNetP5 stats.Summary
	Util     stats.Summary
}

// Snapshot captures the fleet's current state. Call it from the control
// loop (after Run returns); it reads per-network planner state that
// in-flight passes would be writing.
func (c *Controller) Snapshot() Snapshot {
	var snap Snapshot
	logNetP := stats.NewSample(0)
	for _, ns := range c.nets() {
		st := NetworkStatus{
			ID:        ns.id,
			Key:       ns.key,
			APs:       ns.apCount,
			Passes:    ns.passes,
			Shed:      ns.shed,
			Coalesced: ns.coalesced,
			// A network the scheduler has not touched yet (lazy build
			// pending) has run nothing and diverged from nothing; it reads
			// as a converged zero row, exactly like a built network before
			// its first pass.
			Converged:   true,
			Quarantined: ns.quarantined,
		}
		if ns.be != nil && !ns.quarantined {
			st.LogNetP5 = ns.be.Service.LastLogNetP[spectrum.Band5]
			st.LogNetP24 = ns.be.Service.LastLogNetP[spectrum.Band2G4]
			st.Converged = ns.be.Converged()
			st.Switches = ns.be.Switches()
			st.Degraded = ns.be.Service.DegradedTotal
		}
		if ns.quarantined {
			st.Converged = false
			snap.QuarantinedNets++
		}
		snap.Networks = append(snap.Networks, st)
		snap.TotalAPs += st.APs
		snap.TotalSwitches += st.Switches
		if st.Converged {
			snap.ConvergedNets++
		}
		for level := 0; level < numLevels; level++ {
			snap.Passes[level] += st.Passes[level]
			snap.Shed[level] += st.Shed[level]
		}
		if st.Passes[levelFast]+st.Passes[levelMid]+st.Passes[levelDeep] > 0 {
			logNetP.Add(st.LogNetP5)
		}
	}
	snap.LogNetP5 = logNetP.Summarize()
	// Section 3-style fleet query over the shared store: the modeled
	// utilization distribution across every AP pass ingested so far.
	snap.Util = c.db.Table("fleet_ap").AggregateField("util", 0, c.now+1).Summarize()
	return snap
}

// WriteText renders the snapshot's fleet-level summary plus the worst
// networks by 5 GHz objective — the operator's overview page.
func (s Snapshot) WriteText(w *strings.Builder) {
	fmt.Fprintf(w, "fleet: %d networks, %d APs, %d/%d converged, %d switches\n",
		len(s.Networks), s.TotalAPs, s.ConvergedNets, len(s.Networks), s.TotalSwitches)
	fmt.Fprintf(w, "passes: i0=%d i1=%d i2=%d  shed: i0=%d i1=%d i2=%d\n",
		s.Passes[0], s.Passes[1], s.Passes[2], s.Shed[0], s.Shed[1], s.Shed[2])
	if s.QuarantinedNets > 0 {
		fmt.Fprintf(w, "quarantined: %d networks isolated after faulted passes\n", s.QuarantinedNets)
	}
	fmt.Fprintf(w, "logNetP5 across networks: %v\n", s.LogNetP5)
	fmt.Fprintf(w, "AP utilization across fleet: %v\n", s.Util)
	worst := s.worstNetworks(5)
	if len(worst) > 0 {
		fmt.Fprintf(w, "worst networks by logNetP5:\n")
		for _, st := range worst {
			if st.Quarantined {
				fmt.Fprintf(w, "  %s  aps=%-4d QUARANTINED\n", st.Key, st.APs)
				continue
			}
			fmt.Fprintf(w, "  %s  aps=%-4d logNetP5=%8.2f converged=%-5v switches=%d\n",
				st.Key, st.APs, st.LogNetP5, st.Converged, st.Switches)
		}
	}
}

// worstNetworks returns up to n networks needing attention, worst first:
// quarantined networks lead (a faulted control plane beats any bad
// objective), then planned networks by lowest 5 GHz objective, ties
// broken by ascending ID.
func (s Snapshot) worstNetworks(n int) []NetworkStatus {
	var planned []NetworkStatus
	for _, st := range s.Networks {
		if st.Quarantined ||
			st.Passes[levelFast]+st.Passes[levelMid]+st.Passes[levelDeep] > 0 {
			planned = append(planned, st)
		}
	}
	rank := func(st NetworkStatus) int {
		if st.Quarantined {
			return 0
		}
		return 1
	}
	// Selection by repeated minimum keeps this dependency-free and the
	// order fully deterministic.
	var out []NetworkStatus
	for len(out) < n && len(planned) > 0 {
		best := 0
		for i, st := range planned {
			b := planned[best]
			if rank(st) != rank(b) {
				if rank(st) < rank(b) {
					best = i
				}
				continue
			}
			if st.LogNetP5 < b.LogNetP5 ||
				(st.LogNetP5 == b.LogNetP5 && st.ID < b.ID) {
				best = i
			}
		}
		out = append(out, planned[best])
		planned = append(planned[:best], planned[best+1:]...)
	}
	return out
}

func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}
