package fleetd

import (
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// testNetwork synthesizes a small hand-built network (bypassing
// fleet.Generate) so tests control the exact AP count.
func testNetwork(id, aps int) *fleet.Network {
	ch5, _ := spectrum.ChannelAt(spectrum.Band5, 36, spectrum.W20)
	ch24, _ := spectrum.ChannelAt(spectrum.Band2G4, 1, spectrum.W20)
	n := &fleet.Network{ID: id, AreaM: 60}
	for i := 0; i < aps; i++ {
		n.APs = append(n.APs, &fleet.AP{
			NetworkID: id,
			X:         float64(15 * (i % 4)),
			Y:         float64(15 * (i / 4)),
			Standard:  "ac", Chains: 2, ConfiguredWidth: spectrum.W80,
			Channel5: ch5, Channel24: ch24,
			MaxClients: 5, Util5: 0.3, Util24: 0.4,
		})
	}
	return n
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{Seed: 1})
	if got := len(c.sh); got != 8 {
		t.Fatalf("default shards = %d, want 8", got)
	}
	if c.cfg.Fast != 15*sim.Minute || c.cfg.Mid != 3*sim.Hour || c.cfg.Deep != 24*sim.Hour {
		t.Fatalf("default cadences = %v/%v/%v", c.cfg.Fast, c.cfg.Mid, c.cfg.Deep)
	}
	if c.cfg.Backend.Planner.MetricFloor == 0 {
		t.Fatal("planner config not defaulted")
	}
}

// The §4.4.4 composition: when a deep and a shallow level fall due at the
// same tick, one pass at the deepest level runs and subsumes the rest.
func TestCoalesceDeepestLevelWins(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Seed: 3, Fast: 10 * sim.Minute, Mid: 10 * sim.Minute, Deep: -1, Obs: reg})
	c.Add(testNetwork(0, 3), NetOptions{})
	c.Run(10 * sim.Minute)

	snap := c.Snapshot()
	st := snap.Networks[0]
	if st.Passes[levelMid] != 1 || st.Passes[levelFast] != 0 {
		t.Fatalf("passes = %v, want one i1 pass only", st.Passes)
	}
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
	if got := reg.Counter("fleetd.coalesced").Value(); got != 1 {
		t.Fatalf("fleetd.coalesced = %d, want 1", got)
	}
	// Both levels reschedule independently: the next 10-minute tick
	// coalesces again.
	c.Run(10 * sim.Minute)
	if st := c.Snapshot().Networks[0]; st.Passes[levelMid] != 2 || st.Coalesced != 2 {
		t.Fatalf("after second tick: passes=%v coalesced=%d", st.Passes, st.Coalesced)
	}
}

// Overload sheds deep passes first: with three networks due at one tick at
// levels i0, i1, i2 and a budget of 2, the i2 pass is shed; with a budget
// of 1 only the i0 pass survives.
func TestOverloadShedsDeepestFirst(t *testing.T) {
	build := func(budget int, reg *obs.Registry) *Controller {
		c := New(Config{Seed: 5, MaxPassesPerTick: budget, Obs: reg})
		c.Add(testNetwork(0, 2), NetOptions{Fast: 10 * sim.Minute, Mid: -1, Deep: -1})
		c.Add(testNetwork(1, 2), NetOptions{Fast: -1, Mid: 10 * sim.Minute, Deep: -1})
		c.Add(testNetwork(2, 2), NetOptions{Fast: -1, Mid: -1, Deep: 10 * sim.Minute})
		return c
	}

	reg := obs.NewRegistry()
	c := build(2, reg)
	c.Run(10 * sim.Minute)
	snap := c.Snapshot()
	if snap.Passes != [numLevels]int{1, 1, 0} {
		t.Fatalf("budget 2: passes = %v, want [1 1 0]", snap.Passes)
	}
	if snap.Shed != [numLevels]int{0, 0, 1} {
		t.Fatalf("budget 2: shed = %v, want [0 0 1]", snap.Shed)
	}
	for level, want := range map[string]int64{"i0": 0, "i1": 0, "i2": 1} {
		if got := reg.Counter("fleetd.shed_" + level).Value(); got != want {
			t.Fatalf("budget 2: fleetd.shed_%s = %d, want %d", level, got, want)
		}
	}

	reg = obs.NewRegistry()
	c = build(1, reg)
	c.Run(10 * sim.Minute)
	snap = c.Snapshot()
	if snap.Passes != [numLevels]int{1, 0, 0} {
		t.Fatalf("budget 1: passes = %v, want [1 0 0]", snap.Passes)
	}
	if snap.Shed != [numLevels]int{0, 1, 1} {
		t.Fatalf("budget 1: shed = %v, want [0 1 1]", snap.Shed)
	}
	if got := reg.Counter("fleetd.passes_i0").Value(); got != 1 {
		t.Fatalf("budget 1: fleetd.passes_i0 = %d, want 1", got)
	}

	// A shed pass is rescheduled, not dropped: the next tick sheds again
	// under the same pressure, so the counter keeps growing.
	c.Run(10 * sim.Minute)
	if got := c.Snapshot().Shed; got != [numLevels]int{0, 2, 2} {
		t.Fatalf("after second tick: shed = %v, want [0 2 2]", got)
	}
}

// A removed network never fires again — not from entries dropped at
// removal, and not from entries that somehow survive (covered by pushing
// one behind the scheduler's back).
func TestRemovedNetworkNeverFires(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Seed: 7, Fast: 10 * sim.Minute, Mid: -1, Deep: -1, Obs: reg})
	c.Add(testNetwork(0, 2), NetOptions{})
	c.Add(testNetwork(1, 2), NetOptions{})
	c.Run(10 * sim.Minute)

	if !c.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// A stale entry for the removed network must be discarded on pop.
	c.sched.push(passEntry{at: c.now + 10*sim.Minute, id: 1, level: levelFast})

	c.Run(30 * sim.Minute)
	snap := c.Snapshot()
	if len(snap.Networks) != 1 || snap.Networks[0].ID != 0 {
		t.Fatalf("snapshot networks = %+v, want only net 0", snap.Networks)
	}
	if got := snap.Networks[0].Passes[levelFast]; got != 4 {
		t.Fatalf("net 0 ran %d fast passes, want 4", got)
	}
	// 1 entry dropped at Remove + 1 stale entry discarded on pop.
	if got := reg.Counter("fleetd.removed_dropped").Value(); got != 2 {
		t.Fatalf("fleetd.removed_dropped = %d, want 2", got)
	}
	if got := reg.Gauge("fleetd.networks").Value(); got != 1 {
		t.Fatalf("fleetd.networks = %d, want 1", got)
	}
}

// The determinism contract: same seed and network set produce a
// byte-identical snapshot for every shard and worker count — and for
// either dirty-skip setting, since a skipped fast pass is a provable
// replay of the pass it elides.
func TestSnapshotInvariantAcrossShardsAndWorkers(t *testing.T) {
	f := fleet.Generate(fleet.Options{Seed: 42, Networks: 6})
	shapes := []struct {
		shards, workers int
		noskip          bool
	}{
		{1, 1, false}, {7, 8, true}, {3, 2, false}, {1, 2, true},
	}
	var base Snapshot
	var baseText string
	for i, shape := range shapes {
		reg := obs.NewRegistry()
		c := New(Config{
			Seed:   99,
			Shards: shape.shards, Workers: shape.workers,
			Fast: 15 * sim.Minute, Mid: 45 * sim.Minute, Deep: -1,
			DisableDirtySkip: shape.noskip,
			Obs:              reg,
		})
		c.AddFleet(f)
		if c.Len() != 6 {
			t.Fatalf("Len = %d, want 6", c.Len())
		}
		c.Run(45 * sim.Minute)
		snap := c.Snapshot()
		if shape.noskip && c.SkippedFastPasses() != 0 {
			t.Fatalf("DisableDirtySkip controller skipped %d passes", c.SkippedFastPasses())
		}
		if i == 0 {
			base, baseText = snap, snap.String()
			if snap.Passes[levelFast] == 0 || snap.Passes[levelMid] == 0 {
				t.Fatalf("no passes ran: %v", snap.Passes)
			}
			if snap.Util.N == 0 {
				t.Fatal("no AP telemetry ingested into the fleet DB")
			}
			continue
		}
		if !reflect.DeepEqual(snap, base) {
			t.Fatalf("snapshot with shards=%d workers=%d noskip=%v diverged:\n%s\nvs base\n%s",
				shape.shards, shape.workers, shape.noskip, snap.String(), baseText)
		}
		if snap.String() != baseText {
			t.Fatalf("snapshot text diverged for shards=%d workers=%d noskip=%v",
				shape.shards, shape.workers, shape.noskip)
		}
	}
}

// buildScenario is a pure function of (network, seed).
func TestBuildScenarioDeterministic(t *testing.T) {
	n := testNetwork(3, 6)
	n.Foreign = append(n.Foreign, &fleet.AP{X: 10, Y: 10, Channel24: n.APs[0].Channel24, Channel5: n.APs[0].Channel5})
	a, b := buildScenario(n, 1234), buildScenario(n, 1234)
	if len(a.APs) != 6 || len(a.Interferers) != 2 {
		t.Fatalf("scenario shape: %d APs, %d interferers", len(a.APs), len(a.Interferers))
	}
	for i := range a.APs {
		if !reflect.DeepEqual(a.APs[i], b.APs[i]) {
			t.Fatalf("AP %d differs across identical builds", i)
		}
	}
	if c := buildScenario(n, 999); reflect.DeepEqual(a.APs[0], c.APs[0]) {
		t.Fatal("different seeds produced identical APs")
	}
}

// Two networks on coprime cadences produce due instants that fall
// strictly inside one Run window (7,11,14,21,22 minutes); Run's popDue
// loop must fire every one of them, not just the first. Regression guard
// for the scheduler-drain audit: a Run that resolved only one deadline
// instant per call would undercount both networks here.
func TestRunFiresDistinctInstantsInOneCall(t *testing.T) {
	c := New(Config{Seed: 13, Mid: -1, Deep: -1})
	c.Add(testNetwork(0, 2), NetOptions{Fast: 7 * sim.Minute})
	c.Add(testNetwork(1, 2), NetOptions{Fast: 11 * sim.Minute})
	c.Run(22 * sim.Minute)
	snap := c.Snapshot()
	if got := snap.Networks[0].Passes[levelFast]; got != 3 {
		t.Fatalf("net 0 ran %d fast passes in one Run(22m), want 3 (t=7,14,21m)", got)
	}
	if got := snap.Networks[1].Passes[levelFast]; got != 2 {
		t.Fatalf("net 1 ran %d fast passes in one Run(22m), want 2 (t=11,22m)", got)
	}
}

// Dirty-skip must actually pay off on a steady-state fleet: once plans
// converge and telemetry digests stop changing (the flat overnight load
// window), well over half of the fast band-invocations are elided — the
// tentpole's scaling claim. The passes themselves still run and ingest at
// the fleetd level; only the planner invocation inside is skipped.
func TestDirtySkipRateSteadyState(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Seed: 21, Fast: 15 * sim.Minute, Mid: -1, Deep: -1, Obs: reg})
	c.AddFleet(fleet.Generate(fleet.Options{Seed: 77, Networks: 8}))
	// 5 h stays inside OfficeLoad's flat pre-7am window for every AP even
	// after per-AP phase jitter (≤ 78 min), so demand — and with it every
	// telemetry digest on a converged network — holds still.
	c.Run(5 * sim.Hour)
	snap := c.Snapshot()
	fast := snap.Passes[levelFast]
	if fast == 0 {
		t.Fatal("no fast passes ran")
	}
	invocations := 2 * fast // each pass plans both bands
	skipped := int(c.SkippedFastPasses())
	if skipped*2 <= invocations {
		t.Fatalf("skip rate %d/%d ≤ 50%% on a steady-state fleet", skipped, invocations)
	}
}

// AddFleet must not materialize control planes: registration records only
// the shell (ID, cadences, AP count, build closure), snapshots of the
// unbuilt fleet still report correct AP totals, and the first Run builds
// what it touches.
func TestLazyBuildDefersConstruction(t *testing.T) {
	f := fleet.Generate(fleet.Options{Seed: 5, Networks: 4})
	c := New(Config{Seed: 9, Fast: 15 * sim.Minute, Mid: -1, Deep: -1})
	c.AddFleet(f)
	for _, ns := range c.nets() {
		if ns.be != nil || ns.sc != nil || ns.engine != nil {
			t.Fatal("AddFleet built a network's control plane eagerly")
		}
		if ns.apCount == 0 {
			t.Fatal("registration lost the AP count")
		}
	}
	before := c.Snapshot()
	if before.TotalAPs == 0 {
		t.Fatal("snapshot of an unbuilt fleet lost AP totals")
	}
	for _, st := range before.Networks {
		if !st.Converged {
			t.Fatalf("unbuilt network %d reads as unconverged", st.ID)
		}
	}
	c.Run(15 * sim.Minute)
	for _, ns := range c.nets() {
		if ns.be == nil || ns.build != nil {
			t.Fatalf("net %d still unbuilt after Run", ns.id)
		}
	}
	if after := c.Snapshot(); after.TotalAPs != before.TotalAPs {
		t.Fatalf("AP totals changed across build: %d then %d", before.TotalAPs, after.TotalAPs)
	}
}

// Fleet clock semantics: Run advances Now by exactly d and leaves every
// network's engine synced to it.
func TestRunSyncsClocks(t *testing.T) {
	c := New(Config{Seed: 11, Fast: 10 * sim.Minute, Mid: -1, Deep: -1})
	c.Add(testNetwork(0, 2), NetOptions{})
	c.Add(testNetwork(1, 2), NetOptions{Fast: -1}) // never planned, still polled
	c.Run(25 * sim.Minute)
	if c.Now() != 25*sim.Minute {
		t.Fatalf("Now = %v, want 25m", c.Now())
	}
	for _, ns := range c.nets() {
		if ns.engine.Now() != 25*sim.Minute {
			t.Fatalf("net %d engine at %v, want 25m", ns.id, ns.engine.Now())
		}
	}
}
