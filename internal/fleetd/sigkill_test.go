package fleetd

import (
	"bytes"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

const (
	sigkillHelperEnv = "FLEETD_SIGKILL_HELPER"
	sigkillDirEnv    = "FLEETD_SIGKILL_DIR"
	sigkillSeed      = int64(2024)
	sigkillNetworks  = 24
)

func sigkillConfig() Config {
	return Config{
		Seed:            sigkillSeed,
		Shards:          4,
		CheckpointEvery: 30 * sim.Minute,
		Obs:             obs.NewRegistry(),
	}
}

// sigkillHelper is the child process: it opens a DirStore and advances a
// small fleet 15 simulated minutes at a time until its parent SIGKILLs
// it mid-flight. Progress is journaled write-ahead, so wherever the kill
// lands the parent can replay to an equivalent state.
func sigkillHelper() {
	store, err := NewDirStore(os.Getenv(sigkillDirEnv))
	if err != nil {
		os.Exit(3)
	}
	c, err := Open(sigkillConfig(), store)
	if err != nil {
		os.Exit(3)
	}
	if c.Len() == 0 {
		if err := c.AddFleet(fleet.Generate(fleet.Options{Networks: sigkillNetworks, Seed: sigkillSeed, MaxAPs: 3})); err != nil {
			os.Exit(3)
		}
	}
	for i := 1; i <= 10_000; i++ {
		if err := c.RunTo(sim.Time(i) * 15 * sim.Minute); err != nil {
			os.Exit(3)
		}
	}
	os.Exit(0)
}

// TestRealSIGKILLRecovery drives the whole durable stack — DirStore,
// fsynced journal appends, atomic checkpoint renames — under an actual
// SIGKILL: re-exec this test binary as a worker, kill it mid-run with no
// chance to clean up, then recover from its directory and require the
// replayed controller to match a fault-free twin run over the same
// journaled schedule.
func TestRealSIGKILLRecovery(t *testing.T) {
	if os.Getenv(sigkillHelperEnv) == "1" {
		sigkillHelper() // never returns
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestRealSIGKILLRecovery")
	cmd.Env = append(os.Environ(), sigkillHelperEnv+"=1", sigkillDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill helper: %v", err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("helper exited cleanly before the kill; raise its workload")
	}

	// Recover from the dead process's directory.
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, err := Open(sigkillConfig(), store)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if c.Now() == 0 {
		t.Fatal("helper journaled no progress before the kill; nothing recovered")
	}

	// The twin executes exactly the advances the journal promised.
	raw, err := store.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := decodeJournal(raw)
	if err != nil {
		t.Fatalf("post-recovery journal decode: %v", err)
	}
	var targets []sim.Time
	for _, r := range recs {
		if r.Op == opAdvance {
			targets = append(targets, sim.Time(r.To))
		}
	}
	twin := runTwin(t, sigkillConfig(), fleet.Generate(fleet.Options{Networks: sigkillNetworks, Seed: sigkillSeed, MaxAPs: 3}), targets)
	if c.Now() != twin.Now() {
		t.Fatalf("recovered clock %v, twin %v", c.Now(), twin.Now())
	}
	if !bytes.Equal(c.CheckpointBytes(), twin.CheckpointBytes()) {
		t.Fatal("SIGKILL recovery diverged from the fault-free twin")
	}

	// And the recovered controller can close cleanly.
	if err := c.Close(); err != nil {
		t.Fatalf("post-recovery close: %v", err)
	}
}
