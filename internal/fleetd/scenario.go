package fleetd

import (
	"fmt"
	"math/rand"

	"repro/internal/fleet"
	"repro/internal/spectrum"
	"repro/internal/topo"
)

// Scenario synthesis: a fleet.Network (the Section 3 population model —
// AP placement, standards, configured widths, channel assignments,
// client-density and utilization draws) becomes a topo.Scenario (the
// planning environment the backend polls and TurboCA plans over). The
// conversion is a pure function of (network, seed): fleetd derives every
// stochastic detail — client capability mixes, usage weights, interferer
// duty cycles — from its own deterministic stream, so the same fleet and
// controller seed always produce byte-identical scenarios regardless of
// registration order, shard layout, or worker count.

const (
	// maxModeledClients caps the per-AP client snapshot handed to the
	// planner. The paper's planner only consumes the capability/usage
	// *mixture*, which stabilizes well below the observed 338-client
	// maximum; capping keeps a million-AP fleet's memory bounded.
	maxModeledClients = 48
	// maxModeledInterferers caps the foreign-AP interferer set per
	// network: external utilization queries scan interferers linearly,
	// and the nearest few dozen dominate the airtime loss.
	maxModeledInterferers = 64
)

// netKey is the network's row key in the shared fleet DB and its name in
// reports.
func netKey(id int) string { return fmt.Sprintf("net%05d", id) }

// buildScenario converts one fleet network into a planning scenario.
func buildScenario(n *fleet.Network, seed int64) *topo.Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := topo.NewScenario(netKey(n.ID), seed^0x5ce9a510)
	caps := fleet.Cohort2017
	for i, fap := range n.APs {
		ap := &topo.AP{
			ID:       i,
			Name:     fmt.Sprintf("%s-ap%03d", sc.Name, i),
			Pos:      topo.Point{X: fap.X, Y: fap.Y},
			MaxWidth: radioWidth(fap),
			NSS:      maxInt(fap.Chains, 1),
			// The fleet generator's assignment is the incumbent plan the
			// controller must improve on.
			Channel:   fap.Channel5,
			Channel24: fap.Channel24,
			// Demand scales with the AP's observed 5 GHz utilization and
			// client density: a busy, dense AP offers more load.
			BaseDemandMbps: 6 + 90*fap.Util5 + 1.2*float64(minInt(fap.MaxClients, 50)) + 8*rng.Float64(),
		}
		nClients := minInt(fap.MaxClients, maxModeledClients)
		for j := 0; j < nClients; j++ {
			c := caps.Sample(rng)
			w := c.MaxWidth
			if !c.VHT && w > spectrum.W40 {
				w = spectrum.W40
			}
			ap.Clients = append(ap.Clients, topo.ClientInfo{
				MaxWidth:    w,
				NSS:         c.NSS,
				SupportsCSA: rng.Float64() < 0.7,
				UsageWeight: 0.2 + rng.ExpFloat64(),
			})
		}
		// The backend only ever reads the client *mixture*; fold the slice
		// into its aggregate and drop it, so per-network resident memory
		// does not scale with client count. Aggregating after all draws
		// keeps the rng stream (and thus every derived value) identical to
		// the slice-carrying construction.
		ap.ClientAgg = topo.AggregateClients(ap.Clients)
		ap.Clients = nil
		sc.APs = append(sc.APs, ap)
	}
	for i, fap := range n.Foreign {
		if i >= maxModeledInterferers {
			break
		}
		pos := topo.Point{X: fap.X, Y: fap.Y}
		duty := 0.05 + 0.35*rng.Float64()
		rangeM := 25 + 25*rng.Float64()
		sc.Interferers = append(sc.Interferers, &topo.Interferer{
			Pos:    pos,
			Band:   spectrum.Band2G4,
			Chan20: fap.Channel24.Number,
			Width:  spectrum.W20,
			Duty:   duty,
			RangeM: rangeM,
		})
		if fap.Channel5.Width != 0 {
			sc.Interferers = append(sc.Interferers, &topo.Interferer{
				Pos:    pos,
				Band:   spectrum.Band5,
				Chan20: fap.Channel5.Sub20Numbers()[0],
				Width:  fap.Channel5.Width,
				Duty:   duty * 0.6, // 5 GHz foreign gear is lighter-duty
				RangeM: rangeM,
			})
		}
	}
	// The interference graph is static geometry; cache it so every poll
	// and planner snapshot over this network reuses one O(n²) pass.
	sc.CacheNeighbors()
	return sc
}

// radioWidth maps the AP's generation to its radio capability.
func radioWidth(ap *fleet.AP) spectrum.Width {
	switch ap.Standard {
	case "ac":
		return spectrum.W80
	case "n":
		return spectrum.W40
	default:
		return spectrum.W20
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
