// Package fleetd is the fleet control plane: one process driving
// thousands of networks, each with its own deterministic control plane —
// the production shape of the paper's system, where TurboCA runs
// centrally over the whole Meraki fleet (§4.4.4) rather than per site.
//
// The architecture has four moving parts:
//
//   - A sharded registry of per-network control planes. Each network
//     wraps today's backend.Backend — private simulation engine, private
//     telemetry store, private RNG streams, optionally a private chaos
//     profile — built from a seed derived from (controller seed, network
//     ID) alone.
//
//   - A priority cadence scheduler: a deadline min-heap with one entry
//     per (network, cadence level), honoring the paper's multi-cadence
//     schedule (i=0 every 15 min, i=1 every 3 h, i=2 daily). Ties on a
//     deadline resolve in ascending network-ID order; when a tick's due
//     passes exceed the configured budget, deep passes shed first (i=2,
//     then i=1, then i=0) — the same "don't do expensive work under
//     pressure" policy as the backend's MaxStaleFraction degradation.
//
//   - A bounded worker pool that executes one tick's surviving passes
//     concurrently. Networks are mutually independent, so parallel
//     execution cannot perturb results: a fleet snapshot is byte-identical
//     for any -shards/-workers setting.
//
//   - Batched telemetry ingest: each pass emits its network's telemetry
//     as row batches that land in a shared littletable.DB via
//     Table.InsertBatch (one lock round-trip per network per table), in
//     ascending network-ID order at the tick barrier. Fleet-wide
//     aggregation (Snapshot) then runs Section 3-style percentile queries
//     across networks over that store.
package fleetd

import (
	"errors"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/littletable"
	"repro/internal/obs"
	"repro/internal/rfenv"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/topo"
	"repro/internal/turboca"
)

// Config sizes and parameterizes a Controller.
type Config struct {
	// Seed anchors every per-network derivation (scenario synthesis,
	// engine, backend, chaos). Two controllers with equal Seed and equal
	// network sets produce byte-identical snapshots.
	Seed int64
	// Shards partitions the network registry (default 8). Sharding
	// bounds registry lock contention; it never affects results.
	Shards int
	// Workers bounds concurrently executing passes (default GOMAXPROCS).
	// Results are identical for any value.
	Workers int
	// Fast, Mid, Deep are the default cadences for the three pass levels
	// (defaults 15 min, 3 h, 24 h; the §4.4.4 schedule). Negative
	// disables a level fleet-wide.
	Fast, Mid, Deep sim.Time
	// MaxPassesPerTick is the overload budget: when more passes share a
	// deadline tick than this, the excess is shed, deepest level first.
	// 0 means unlimited.
	MaxPassesPerTick int
	// DisableDirtySkip turns off the planning service's dirty-driven fast
	// passes. Fleetd enables turboca.Service.DirtySkip by default: on a
	// steady-state fleet most i=0 passes are provable no-op replays, and
	// skipping them is exact — snapshots are byte-identical either way
	// (the invariant TestSnapshotInvariantAcrossShardsAndWorkers pins).
	// Deep (i>0) passes are never skipped.
	DisableDirtySkip bool
	// AdaptiveCadence enables the churn-driven cadence controller (see
	// adaptive.go): networks whose NetP has stopped moving stretch their
	// schedule by doubling steps up to 8x the base cadence, and any sign
	// of volatility (a planner improvement, a radar detection, or NetP
	// churn above the EWMA threshold) snaps them back to 1x and pulls their pending deadlines
	// forward. Off by default; snapshots remain byte-identical across
	// shard/worker settings either way, but an adaptive fleet's snapshot
	// differs from a fixed-cadence fleet's (fewer passes run), so the flag
	// is folded into the config digest.
	AdaptiveCadence bool
	// Retention bounds both the shared fleet store and every per-network
	// telemetry DB to a trailing window (default 24 h; negative disables).
	// The fleet control plane only ever reads recent telemetry, and at
	// 100k networks the per-network history dominates resident memory, so
	// the fleet default is much tighter than a standalone backend's 14
	// days.
	Retention sim.Time
	// Backend is the per-network control-plane template. Seed is
	// overridden per network; a non-nil Faults profile is cloned with a
	// per-network seed; Obs is overridden with the controller's registry
	// (per-network private registries would dominate resident memory at
	// fleet scale); per-network telemetry history is disabled (the fleet
	// store is the reporting surface). Zero value means backend defaults
	// with AlgTurboCA.
	Backend backend.Options
	// Obs receives the controller's own "fleetd" scope (default
	// obs.Default()).
	Obs *obs.Registry
	// CheckpointEvery is the periodic checkpoint cadence on the fleet
	// clock when the controller runs against a Store (Open defaults it to
	// one hour; negative disables periodic checkpoints — forced
	// Checkpoint/Close still work). Ignored without a store.
	CheckpointEvery sim.Time
	// PassDeadline is the wall-clock watchdog per planning pass: a pass
	// still running this long after dispatch has its backend context
	// cancelled and its network quarantined. 0 disables the watchdog.
	PassDeadline time.Duration
	// LagBudget is the wall-clock budget per scheduler tick: a tick's
	// serial+parallel work exceeding it drops the fleet to degraded (i=0
	// only) cadence until ticks run at half the budget again. 0 disables
	// lag degradation.
	LagBudget time.Duration
	// Proc injects process-level chaos (seeded kills, checkpoint-write
	// failures, torn journal tails, pass panics and wedges) for the
	// crash-safety campaign. Nil means no injected process faults.
	Proc *faults.ProcProfile
	// StormRF attaches a hostile-RF environment to every network: seeded
	// per-20MHz spectrum-occupancy traces (private to each network, derived
	// from its network seed) plus one fleet-correlated radar-storm schedule
	// derived from Seed alone — a storm strikes every network's copy of the
	// struck DFS range in the same instant, so the whole fleet sees the
	// quarantine within one cadence window. Off by default; folded into the
	// config digest because it changes state bytes.
	StormRF bool
	// StormsPerDay is the mean correlated-storm arrival rate when StormRF
	// is on (default 2 per day; Poisson arrivals).
	StormsPerDay float64
	// StormHorizon bounds the generated storm schedule (default 7 days).
	StormHorizon sim.Time
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Fast == 0 {
		c.Fast = 15 * sim.Minute
	}
	if c.Mid == 0 {
		c.Mid = 3 * sim.Hour
	}
	if c.Deep == 0 {
		c.Deep = 24 * sim.Hour
	}
	if c.Backend.Algorithm == backend.AlgNone {
		// An all-zero template means "production defaults" (TurboCA, DFS
		// admitted, paper cadences), not "no algorithm".
		c.Backend = backend.DefaultOptions(backend.AlgTurboCA)
	}
	if c.Backend.Planner.MetricFloor == 0 {
		c.Backend.Planner = turboca.DefaultConfig()
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Retention == 0 {
		c.Retention = 24 * sim.Hour
	}
	if c.StormRF {
		if c.StormsPerDay == 0 {
			c.StormsPerDay = 2
		}
		if c.StormHorizon == 0 {
			c.StormHorizon = 7 * sim.Day
		}
	}
	return c
}

// digest folds the result-affecting configuration into the journal's
// config record, so a journal is never replayed under a configuration
// that would reconstruct different state. Shards/Workers/Obs and the
// wall-clock knobs are deliberately excluded: they never affect state
// bytes.
func (c Config) digest() uint64 {
	h := fnv.New64a()
	wr := func(vs ...int64) {
		for _, v := range vs {
			h.Write([]byte(strconv.FormatInt(v, 10)))
			h.Write([]byte{0})
		}
	}
	wr(c.Seed, int64(c.Fast), int64(c.Mid), int64(c.Deep),
		int64(c.MaxPassesPerTick), int64(c.Retention), int64(c.CheckpointEvery))
	if c.DisableDirtySkip {
		wr(1)
	} else {
		wr(0)
	}
	if c.AdaptiveCadence {
		wr(1)
	} else {
		wr(0)
	}
	if c.StormRF {
		wr(1, int64(math.Float64bits(c.StormsPerDay)), int64(c.StormHorizon))
	} else {
		wr(0)
	}
	return h.Sum64()
}

// NetOptions customizes one network's registration.
type NetOptions struct {
	// Fast, Mid, Deep override the controller's cadences for this
	// network: 0 inherits, negative disables the level.
	Fast, Mid, Deep sim.Time
}

// netState is one registered network's control plane plus its scheduling
// accounting. The backend/engine/scenario are touched only by the single
// worker executing this network's pass (ticks never run a network twice);
// the accounting fields are written in the controller's serial tick
// section.
//
// Construction is lazy: registration stores only a build closure plus the
// AP count, and the scenario/engine/backend materialize on the first pass
// or engine sync (ensureBuilt). Registering a fleet is therefore O(1) per
// network, and a network's full control plane is only ever resident once
// the scheduler actually touches it. Laziness cannot perturb results:
// the engine is deterministic and replays its whole schedule on the first
// RunUntil, so building at time T is indistinguishable from having built
// at registration.
type netState struct {
	id      int
	key     string
	cadence [numLevels]sim.Time // 0 = disabled
	apCount int
	build   func() // non-nil until first ensureBuilt
	sc      *topo.Scenario
	engine  *sim.Engine
	be      *backend.Backend

	passes    [numLevels]int
	shed      [numLevels]int
	coalesced int

	// Adaptive-cadence accounting (Config.AdaptiveCadence; adaptive.go).
	// All written in the serial tick section only; mult starts at 1 and
	// stays there when the controller is off, so the reschedule arithmetic
	// is shared between modes.
	mult     int     // cadence multiplier, power of two in [1, adaptMaxMult]
	ewma     float64 // EWMA of relative NetP movement per executed pass
	calm     int     // consecutive quiet observations since the last reset
	lastNP5  float64 // previous pass's 5 GHz objective
	lastNP24 float64 // previous pass's 2.4 GHz objective
	havePass bool    // lastNP* hold a real observation

	// quarantined marks a network whose pass faulted (panic or watchdog
	// cancellation): it is dropped from the scheduler, skipped by engine
	// syncs, and its backend-derived state is excluded from checkpoints.
	quarantined bool
}

// ensureBuilt materializes the network's control plane. Callers must hold
// exclusive use of the netState (the per-tick single-worker rule); the
// build closure is dropped after running so the captured fleet.Network
// can be collected.
func (ns *netState) ensureBuilt() {
	if ns.build != nil {
		f := ns.build
		ns.build = nil
		f()
	}
}

type shard struct {
	mu   sync.RWMutex
	nets map[int]*netState
}

func (s *shard) get(id int) *netState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nets[id]
}

// Controller drives a fleet of networks off one cadence scheduler.
// Run, Add*, Remove, and Snapshot must be called from one goroutine (the
// control loop); the worker pool is internal.
type Controller struct {
	cfg   Config
	sh    []*shard
	sched scheduler
	now   sim.Time
	db    *littletable.DB
	met   *metrics

	// Durability (nil store = ephemeral controller, PR 1-6 behavior).
	// storms is the fleet-correlated radar schedule (Config.StormRF),
	// derived from cfg.Seed alone and shared read-only by every network's
	// RF environment — correlation is the point.
	storms []rfenv.Storm

	store        Store
	seq          int          // last journal sequence number written or replayed
	replay       *replayState // non-nil while Open replays; nil once live
	proc         *faults.ProcInjector
	dead         bool // the store reported ErrKilled; every run refuses
	storedCkpt   []byte
	storedCkptAt sim.Time
	nextCkptAt   sim.Time
	deg          degradedState
	lagDegraded  bool
	wallNow      func() time.Time // injectable for lag tests
}

// New builds an empty controller; register networks with Add or AddFleet.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, db: littletable.NewDB(), met: metricsOn(cfg.Obs)}
	c.proc = faults.NewProc(cfg.Proc)
	c.wallNow = time.Now
	if cfg.StormRF {
		c.storms = rfenv.StormSchedule(cfg.Seed, cfg.StormHorizon, cfg.StormsPerDay)
	}
	if cfg.CheckpointEvery > 0 {
		c.nextCkptAt = cfg.CheckpointEvery
	}
	if cfg.Retention > 0 {
		c.db.SetRetention(cfg.Retention)
	}
	for i := 0; i < cfg.Shards; i++ {
		c.sh = append(c.sh, &shard{nets: map[int]*netState{}})
	}
	return c
}

// appendRecord stamps the next sequence number and durably appends one
// journal record. A store kill marks the controller dead; the caller's
// run aborts with ErrKilled.
func (c *Controller) appendRecord(r jrec) error {
	if c.store == nil {
		return nil
	}
	c.seq++
	r.Seq = c.seq
	line, err := encodeRecord(r)
	if err != nil {
		c.seq--
		return err
	}
	if err := c.store.AppendJournal(line); err != nil {
		if errors.Is(err, ErrKilled) {
			c.dead = true
		}
		return err
	}
	c.met.journalRecords.Inc()
	return nil
}

// DB exposes the shared fleet telemetry store for ad-hoc Section 3-style
// queries.
func (c *Controller) DB() *littletable.DB { return c.db }

// Now returns the fleet clock.
func (c *Controller) Now() sim.Time { return c.now }

// SkippedFastPasses reports how many fast band-invocations the planning
// services elided as provable no-ops (the fleetd.skipped_i0 counter on
// this controller's registry). Deliberately not part of Snapshot: a
// snapshot is byte-identical whether or not skipping is enabled.
func (c *Controller) SkippedFastPasses() int64 { return c.met.skippedI0.Value() }

// Len returns the number of registered (non-removed) networks.
func (c *Controller) Len() int {
	n := 0
	for _, s := range c.sh {
		s.mu.RLock()
		n += len(s.nets)
		s.mu.RUnlock()
	}
	return n
}

// shardFor maps a network ID to its shard.
func (c *Controller) shardFor(id int) *shard { return c.sh[id%len(c.sh)] }

// netSeed derives a network's seed from the controller seed and the
// network ID alone (splitmix64-style), so registration order, shard
// count, and worker count cannot perturb any network's behavior.
func netSeed(seed int64, id int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// AddFleet registers every network of a synthesized fleet. Registration
// only records the build closure and cadence deadlines (see netState), so
// this is cheap even at 100k networks; the control planes materialize on
// the worker pool as the scheduler first reaches them.
//
// Against a store, the registration intent is journaled first: a
// generated fleet costs one record (its fleet.Options — replay re-runs
// fleet.Generate), a hand-assembled one falls back to one record per
// network. A journal-append failure leaves nothing registered.
func (c *Controller) AddFleet(f *fleet.Fleet) error {
	if c.store != nil {
		if f.Opt.Networks > 0 {
			opt := f.Opt
			if err := c.appendRecord(jrec{Op: opAddFleet, Fleet: &opt}); err != nil {
				return err
			}
		} else {
			for _, n := range f.Networks {
				if err := c.appendRecord(jrec{Op: opAdd, Net: n, Opt: &NetOptions{}}); err != nil {
					return err
				}
			}
		}
	}
	c.addFleet(f)
	return nil
}

func (c *Controller) addFleet(f *fleet.Fleet) {
	for _, n := range f.Networks {
		c.register(c.buildNet(n, NetOptions{}))
	}
}

// Add registers one network with optional per-network cadence overrides,
// journaling the intent (network inlined) when a store is attached.
func (c *Controller) Add(n *fleet.Network, opt NetOptions) error {
	if err := c.appendRecord(jrec{Op: opAdd, Net: n, Opt: &opt}); err != nil {
		return err
	}
	c.add(n, opt)
	return nil
}

func (c *Controller) add(n *fleet.Network, opt NetOptions) {
	c.register(c.buildNet(n, opt))
}

// buildNet prepares a network's registration shell and its deferred
// control-plane constructor: scenario, engine, backend, chaos clone —
// everything derived from netSeed, so the build runs identically whenever
// it fires.
func (c *Controller) buildNet(n *fleet.Network, opt NetOptions) *netState {
	seed := netSeed(c.cfg.Seed, n.ID)
	bopt := c.cfg.Backend
	bopt.Seed = seed
	// All per-network backends share the controller's registry: a private
	// registry per network would cost ~60 KB of histogram buckets each —
	// the dominant per-network resident term at fleet scale — and fleetd
	// never reads per-network Control() deltas. Counters and histograms
	// are order-independent atomics, so fleet-wide aggregation cannot
	// perturb results.
	bopt.Obs = c.cfg.Obs
	bopt.Planner.Obs = nil // derive from the shared registry's turboca scope
	bopt.DirtySkip = !c.cfg.DisableDirtySkip
	bopt.Retention = c.cfg.Retention
	// Per-network report history is the standalone Report API's data; the
	// fleet control plane reports off the shared fleet store instead, so
	// keeping per-AP history rows resident in every network would only
	// burn memory (see backend.Options.DisableTelemetryHistory — planning
	// and rng streams are unaffected).
	bopt.DisableTelemetryHistory = true
	if bopt.Faults != nil {
		prof := *bopt.Faults
		prof.Seed = seed ^ 0xfa17
		bopt.Faults = &prof
	}
	ns := &netState{
		id:      n.ID,
		key:     netKey(n.ID),
		apCount: len(n.APs),
		mult:    1,
	}
	ns.build = func() {
		ns.sc = buildScenario(n, seed)
		ns.engine = sim.NewEngineCompact(seed ^ 0x0e1f)
		if c.cfg.StormRF {
			// The Env is per network (the quarantine table is mutable
			// control-plane state) but the storm schedule is the
			// controller's shared, fleet-correlated one; only the
			// interference traces derive from the network seed.
			traces := rfenv.NewTraceSet(seed^0x7f5e, rfenv.Default5GHzChannels(), rfenv.DefaultTraceOptions())
			bopt.RF = rfenv.NewEnv(traces, c.storms)
		}
		ns.be = backend.New(bopt, ns.sc, ns.engine)
		ns.be.StartManaged()
	}
	ns.cadence[levelFast] = resolveCadence(opt.Fast, c.cfg.Fast)
	ns.cadence[levelMid] = resolveCadence(opt.Mid, c.cfg.Mid)
	ns.cadence[levelDeep] = resolveCadence(opt.Deep, c.cfg.Deep)
	return ns
}

func resolveCadence(override, def sim.Time) sim.Time {
	v := def
	if override != 0 {
		v = override
	}
	if v < 0 {
		return 0 // disabled
	}
	return v
}

// register inserts the network and seeds its deadlines at now+cadence.
func (c *Controller) register(ns *netState) {
	sh := c.shardFor(ns.id)
	sh.mu.Lock()
	sh.nets[ns.id] = ns
	sh.mu.Unlock()
	c.met.networks.Add(1)
	for level, period := range ns.cadence {
		if period > 0 {
			c.sched.push(passEntry{at: c.now + period, id: ns.id, level: level})
		}
	}
}

// Remove deregisters a network. It never fires again: its pending heap
// entries are dropped immediately, and any entry that survives (e.g.
// pushed by a concurrent reschedule) is discarded on pop. Returns false
// if the network is unknown (the journal still records the intent:
// removing an unknown ID replays as the same no-op).
func (c *Controller) Remove(id int) bool {
	if err := c.appendRecord(jrec{Op: opRemove, ID: id}); err != nil {
		return false
	}
	return c.remove(id)
}

func (c *Controller) remove(id int) bool {
	sh := c.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.nets[id]
	delete(sh.nets, id)
	sh.mu.Unlock()
	if !ok {
		return false
	}
	c.met.networks.Add(-1)
	c.met.removedDropped.Add(int64(c.sched.dropNetwork(id)))
	return true
}

// SetCadence re-parameterizes one registered network's cadences between
// ticks: 0 inherits the controller default, negative disables the level.
// Each affected level's pending heap entry is moved in place — replaced,
// never duplicated — so a cadence change cannot make a level fire twice;
// a newly enabled level arms at now+period, a disabled one is dropped.
// The intent is journaled ahead of the mutation, like Add/Remove. Returns
// false for an unknown or quarantined network (the journal still records
// the intent; replay repeats the same no-op).
func (c *Controller) SetCadence(id int, opt NetOptions) bool {
	if err := c.appendRecord(jrec{Op: opCadence, ID: id, Opt: &opt}); err != nil {
		return false
	}
	return c.setCadence(id, opt)
}

func (c *Controller) setCadence(id int, opt NetOptions) bool {
	ns := c.shardFor(id).get(id)
	if ns == nil || ns.quarantined {
		return false
	}
	for level, override := range [numLevels]sim.Time{opt.Fast, opt.Mid, opt.Deep} {
		old := ns.cadence[level]
		period := resolveCadence(override, [numLevels]sim.Time{c.cfg.Fast, c.cfg.Mid, c.cfg.Deep}[level])
		ns.cadence[level] = period
		switch {
		case period <= 0:
			if old > 0 {
				c.sched.dropLevel(id, level)
			}
		default:
			at := c.now + period*ns.cadenceMult()
			if !c.sched.reschedule(id, level, at) {
				c.sched.push(passEntry{at: at, id: id, level: level})
			}
		}
	}
	return true
}

// passJob is one network's work at a tick: the deepest due level plus
// every shallower level it subsumes.
type passJob struct {
	ns     *netState
	level  int   // deepest due level; its hop schedule runs
	levels []int // all due levels (deepest included), for rescheduling
	// demoted marks a deep job executed at i=0 under degraded mode; its
	// deep intent is re-queued at the degraded deferral, never dropped.
	demoted bool
}

// passResult is what a worker brings back to the serial ingest section.
type passResult struct {
	apRows    []littletable.Row
	passRow   littletable.Row
	logNetP5  float64
	logNetP24 float64
	// improved counts band-invocations within this pass whose planner
	// accepted a strictly better plan — the adaptive controller's
	// volatility signal.
	improved int
	// radar counts radar detections (single events or storm sweeps) the
	// network absorbed since its previous pass. Storm-driven vacates are
	// churn by definition, so the adaptive controller treats any nonzero
	// value as volatility even before NetP movement shows up.
	radar int
	// skipped counts band-invocations within this pass the planning
	// service elided as provable no-ops (dirty-skip). Observability only:
	// a skipped invocation leaves every planner-visible byte identical to
	// having run it.
	skipped int
	// faulted marks a pass that panicked or blew its watchdog deadline;
	// the serial section quarantines its network and ingests nothing.
	faulted bool
}

// Run advances the fleet clock by d. It is RunTo with the error
// discarded — the ephemeral-controller API, where no store means no
// journal appends, no checkpoints, and nothing that can fail.
func (c *Controller) Run(d sim.Time) { _ = c.RunTo(c.now + d) }

// RunTo advances the fleet clock to t, executing every scheduled pass
// that falls due. Against a store the advance intent is journaled ahead
// of the work, so a crash anywhere inside it replays the whole advance.
// Returns ErrKilled when the store's process fault model fired; re-Open
// the store to recover and continue.
func (c *Controller) RunTo(t sim.Time) error {
	if c.dead {
		return ErrKilled
	}
	if t <= c.now {
		return nil
	}
	if err := c.appendRecord(jrec{Op: opAdvance, To: int64(t)}); err != nil {
		return err
	}
	return c.runTo(t)
}

// runTo executes one advance (live or replayed). Between ticks the
// per-network engines advance lazily (a network's engine only moves when
// it has a pass); at the end all engines are synced to the final clock so
// polls, retries, and reconciliation catch up and a Snapshot reflects one
// instant.
func (c *Controller) runTo(end sim.Time) error {
	for {
		if c.dead {
			return ErrKilled
		}
		t, due := c.sched.popDue(end)
		if due == nil {
			break
		}
		c.now = t
		if err := c.runTick(t, due); err != nil {
			return err
		}
		if err := c.checkpointAt(t); err != nil {
			return err
		}
	}
	c.now = end
	c.syncEngines(end)
	return c.checkpointAt(end)
}

// runTick resolves one deadline instant: group due entries per network
// (deepest level wins, shallower ones coalesce into it), demote deep
// work under degradation, shed the excess beyond the pass budget
// deepest-first, execute survivors on the worker pool under supervision,
// then ingest their telemetry and reschedule — both in ascending
// network-ID order.
func (c *Controller) runTick(t sim.Time, due []passEntry) error {
	tickStart := c.wallNow()
	c.met.duePerTick.Observe(int64(len(due)))

	// Group per network. due is sorted by (id, level), so one linear scan
	// builds jobs in ascending ID order with levels ascending within.
	var jobs []*passJob
	for _, e := range due {
		ns := c.shardFor(e.id).get(e.id)
		if ns == nil {
			// Removed after this entry was pushed: drop, never reschedule.
			c.met.removedDropped.Inc()
			continue
		}
		if ns.quarantined {
			// Defensive: quarantine drops all pending entries, so nothing
			// should reach here; anything that does is dropped the same way.
			continue
		}
		if len(jobs) > 0 && jobs[len(jobs)-1].ns == ns {
			j := jobs[len(jobs)-1]
			j.levels = append(j.levels, e.level)
			if e.level > j.level {
				j.level = e.level
			}
			j.ns.coalesced++
			c.met.coalesced.Inc()
			continue
		}
		jobs = append(jobs, &passJob{ns: ns, level: e.level, levels: []int{e.level}})
	}

	// Degraded demotion. Deep (i>0) jobs due while the fleet is degraded
	// execute at i=0 and their deep intent re-queues at the degraded
	// deferral. The decision is journaled write-ahead (one demote record
	// per affected tick): checkpoint-failure degradation replays from
	// ckptfail records, but wall-clock lag degradation does not — the
	// record is what makes both replay exactly.
	hasDeep := false
	for _, j := range jobs {
		if j.level > levelFast {
			hasDeep = true
			break
		}
	}
	demote := false
	if hasDeep {
		if c.replaying() {
			r, _ := c.replayHead()
			switch {
			case r.Op == opDemote && sim.Time(r.To) == t:
				c.replayPop()
				demote = true
			case r.Op == opDemote && sim.Time(r.To) < t:
				return errReplayDiverged("demote record for clock %v unconsumed at %v", sim.Time(r.To), t)
			case c.deg.active:
				// Checkpoint degradation is replayed deterministically, so a
				// missing demote record means the live run saw different state.
				return errReplayDiverged("degraded tick at %v has no demote record", t)
			}
		} else if c.isDegraded() {
			if err := c.appendRecord(jrec{Op: opDemote, To: int64(t)}); err != nil {
				return err
			}
			demote = true
		}
	}
	if demote {
		for _, j := range jobs {
			if j.level > levelFast {
				j.level = levelFast
				j.demoted = true
			}
		}
	}

	// Shed: keep the budget's worth of passes, preferring shallow levels
	// and low IDs; everything past the budget is shed — which, by the
	// sort order, sheds i=2 first, then i=1, then i=0.
	run := jobs
	var shed []*passJob
	if b := c.cfg.MaxPassesPerTick; b > 0 && len(jobs) > b {
		order := append([]*passJob(nil), jobs...)
		sort.SliceStable(order, func(i, j int) bool {
			if order[i].level != order[j].level {
				return order[i].level < order[j].level
			}
			return order[i].ns.id < order[j].ns.id
		})
		run, shed = order[:b], order[b:]
	}
	c.met.shedPerTick.Observe(int64(len(shed)))
	for _, j := range shed {
		j.ns.shed[j.level]++
		c.met.passesShed[j.level].Inc()
	}

	// Execute surviving passes on the bounded worker pool, each under
	// panic/watchdog supervision. Each job only touches its own network's
	// state; results return by index.
	results := make([]*passResult, len(run))
	dispatched := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Workers)
	for i, j := range run {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j *passJob) {
			defer func() { <-sem; wg.Done() }()
			c.met.schedLagUS.Observe(time.Since(dispatched).Microseconds())
			passStart := time.Now()
			results[i] = c.executePassSupervised(t, j)
			c.met.passUS.Observe(time.Since(passStart).Microseconds())
		}(i, j)
	}
	wg.Wait()

	// Serial section: account, batch-ingest, reschedule — in the jobs'
	// (ascending-ID) order for run+shed alike, so the shared DB's
	// contents and every counter are independent of worker interleaving.
	// A faulted pass quarantines its network here and contributes nothing.
	ingestStart := time.Now()
	byJob := map[*passJob]*passResult{}
	for i, j := range run {
		byJob[j] = results[i]
	}
	passTab := c.db.Table("fleet_pass")
	apTab := c.db.Table("fleet_ap")
	for _, j := range jobs {
		res, ok := byJob[j]
		if !ok || res == nil {
			continue // shed this tick
		}
		if res.faulted {
			c.quarantine(j.ns)
			continue
		}
		j.ns.passes[j.level]++
		c.met.passesRun[j.level].Inc()
		c.met.skippedI0.Add(int64(res.skipped))
		if c.cfg.AdaptiveCadence {
			// Serial, ascending-ID, before the reschedule loop below — so
			// the controller's decision is shard/worker independent and this
			// tick's own levels already re-arm at the new multiplier.
			c.adaptObserve(t, j, res)
		}
		passTab.InsertBatch(j.ns.key, []littletable.Row{res.passRow})
		apTab.InsertBatch(j.ns.key, res.apRows)
		c.met.ingestRows.Add(int64(1 + len(res.apRows)))
	}
	c.met.ingestUS.Observe(time.Since(ingestStart).Microseconds())
	for _, j := range jobs {
		if j.ns.quarantined {
			continue
		}
		for _, level := range j.levels {
			period := j.ns.cadence[level]
			if period <= 0 {
				continue
			}
			at := t + period*j.ns.cadenceMult()
			if j.demoted && level > levelFast {
				// Demoted deep intent re-queues at the degraded deferral
				// instead of its cadence — sooner, so depth recovers quickly
				// once the fleet leaves degraded mode.
				at = t + c.degradedDefer()
				c.met.degradedDemoted.Inc()
			}
			c.sched.push(passEntry{at: at, id: j.ns.id, level: level})
		}
	}

	// Wall-clock lag degradation (live only — replay timing is synthetic).
	// Entering demotes deep work from the NEXT tick on; leaving requires
	// ticks back at half the budget, the hysteresis that keeps a
	// borderline fleet from flapping.
	if !c.replaying() && c.cfg.LagBudget > 0 {
		dur := c.wallNow().Sub(tickStart)
		switch {
		case dur > c.cfg.LagBudget:
			if !c.lagDegraded {
				c.met.lagDegraded.Inc()
			}
			c.lagDegraded = true
		case dur <= c.cfg.LagBudget/2:
			c.lagDegraded = false
		}
	}
	return nil
}

// executePass advances one network's control plane to the tick instant
// (running its polls, push retries, radar events, and reconciliation in
// its private engine) and runs the planning pass for the job's level,
// then snapshots the network's telemetry for ingest.
func (c *Controller) executePass(t sim.Time, j *passJob) *passResult {
	ns := j.ns
	ns.ensureBuilt()
	radarBefore := ns.be.RadarEvents()
	ns.engine.RunUntil(t)
	skipBefore := ns.be.Service.SkippedTotal
	impBefore := ns.be.Service.ImprovedTotal
	ns.be.Service.RunOnce(levelHops[j.level])
	skipped := ns.be.Service.SkippedTotal - skipBefore
	improved := ns.be.Service.ImprovedTotal - impBefore
	radar := ns.be.RadarEvents() - radarBefore

	logNetP5 := ns.be.Service.LastLogNetP[spectrum.Band5]
	converged := 0.0
	if ns.be.Converged() {
		converged = 1
	}
	logNetP24 := ns.be.Service.LastLogNetP[spectrum.Band2G4]
	res := &passResult{
		logNetP5:  logNetP5,
		logNetP24: logNetP24,
		improved:  improved,
		radar:     radar,
		skipped:   skipped,
		passRow: littletable.Row{At: t, Fields: map[string]float64{
			"lognetp5":  logNetP5,
			"lognetp24": logNetP24,
			"switches":  float64(ns.be.Switches()),
			"converged": converged,
			"level":     float64(j.level),
			"degraded":  float64(ns.be.Service.DegradedTotal),
		}},
	}
	perf := ns.be.Model.Evaluate(t)
	res.apRows = make([]littletable.Row, 0, len(ns.sc.APs))
	for _, ap := range ns.sc.APs {
		p := perf[ap.ID]
		res.apRows = append(res.apRows, littletable.Row{At: t, Fields: map[string]float64{
			"ap":     float64(ap.ID),
			"util":   p.Utilization,
			"served": p.ServedMbps,
			"demand": p.DemandMbps,
		}})
	}
	return res
}

// syncEngines advances every network's engine to the fleet clock on the
// worker pool (each engine is private to its network). Quarantined
// networks are frozen where their fault stopped them.
func (c *Controller) syncEngines(t sim.Time) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Workers)
	for _, s := range c.sh {
		s.mu.RLock()
		for _, ns := range s.nets {
			if ns.quarantined {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(ns *netState) {
				defer func() { <-sem; wg.Done() }()
				ns.ensureBuilt()
				ns.engine.RunUntil(t)
			}(ns)
		}
		s.mu.RUnlock()
	}
	wg.Wait()
}

// nets returns every registered network sorted by ID — the canonical
// iteration order for snapshots.
func (c *Controller) nets() []*netState {
	var out []*netState
	for _, s := range c.sh {
		s.mu.RLock()
		for _, ns := range s.nets {
			out = append(out, ns)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
