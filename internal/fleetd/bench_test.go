package fleetd

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// BenchmarkFleetd1000Networks measures one full i=0 fleet pass: every
// network of a 1000-network synthetic fleet polls, plans, and ingests
// telemetry over one 15-minute cadence window. Deeper cadences are
// disabled so each iteration is exactly one fleet-wide i=0 sweep.
func BenchmarkFleetd1000Networks(b *testing.B) {
	f := fleet.Generate(fleet.Options{Seed: 20170811, Networks: 1000})
	c := New(Config{Seed: 1, Fast: 15 * sim.Minute, Mid: -1, Deep: -1})
	c.AddFleet(f)
	aps := 0
	for _, n := range f.Networks {
		aps += len(n.APs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(15 * sim.Minute)
		if got := int(c.met.passesRun[levelFast].Value()); got != 1000*(i+1) {
			b.Fatalf("iteration %d: %d i=0 passes, want %d", i, got, 1000*(i+1))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(aps), "aps")
	b.ReportMetric(float64(c.met.ingestRows.Value())/float64(b.N), "rows/op")
}
