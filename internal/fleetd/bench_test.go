package fleetd

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// writeBenchJSON merges a machine-readable benchmark artifact into
// $BENCH_JSON_DIR (no-op when unset). `make bench-json` sets the
// directory; the verify target carries the artifact as a non-failing
// by-product. Keys merge into any existing file so several benchmarks in
// one run can contribute to the same artifact (the scale gauge and the
// adaptive-cadence twin both feed BENCH_fleetd.json).
func writeBenchJSON(b *testing.B, name string, payload map[string]float64) {
	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" || name == "" {
		return
	}
	merged := map[string]float64{}
	if prev, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
		_ = json.Unmarshal(prev, &merged)
	}
	for k, v := range payload {
		merged[k] = v
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		b.Logf("bench json: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: %v", err)
	}
}

// BenchmarkFleetd1000Networks measures one full i=0 fleet pass: every
// network of a 1000-network synthetic fleet polls, plans, and ingests
// telemetry over one 15-minute cadence window. Deeper cadences are
// disabled so each iteration is exactly one fleet-wide i=0 sweep.
func BenchmarkFleetd1000Networks(b *testing.B) {
	f := fleet.Generate(fleet.Options{Seed: 20170811, Networks: 1000})
	c := New(Config{Seed: 1, Fast: 15 * sim.Minute, Mid: -1, Deep: -1})
	c.AddFleet(f)
	aps := 0
	for _, n := range f.Networks {
		aps += len(n.APs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(15 * sim.Minute)
		if got := int(c.met.passesRun[levelFast].Value()); got != 1000*(i+1) {
			b.Fatalf("iteration %d: %d i=0 passes, want %d", i, got, 1000*(i+1))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(aps), "aps")
	b.ReportMetric(float64(c.met.ingestRows.Value())/float64(b.N), "rows/op")
}

// benchFleetScale is the fleet-scale benchmark body: register a fleet,
// run one warm-up cadence window (which lazily builds every network and
// converges most plans), measure steady-state resident bytes/network, and
// then time whole fleet-wide i=0 sweeps. Deeper cadences are disabled so
// each iteration is exactly networks i=0 passes.
func benchFleetScale(b *testing.B, networks int, artifact string) {
	f := fleet.Generate(fleet.Options{Seed: 20170811, Networks: networks})
	aps := 0
	for _, n := range f.Networks {
		aps += len(n.APs)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	reg := obs.NewRegistry()
	c := New(Config{Seed: 1, Fast: 15 * sim.Minute, Mid: -1, Deep: -1, Obs: reg})
	c.AddFleet(f)
	c.Run(15 * sim.Minute) // build + first pass: the steady state

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	bytesPerNet := float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(networks)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(15 * sim.Minute)
	}
	b.StopTimer()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	passes := float64(networks) * float64(b.N)
	passesPerSec := passes / b.Elapsed().Seconds()
	fast := float64(c.met.passesRun[levelFast].Value())
	skipRate := 0.0
	if fast > 0 {
		// Each pass plans both bands; SkippedFastPasses counts skipped
		// band-invocations.
		skipRate = float64(c.SkippedFastPasses()) / (2 * fast)
	}
	allocsPerPass := float64(end.Mallocs-after.Mallocs) / passes
	b.ReportMetric(bytesPerNet, "bytes/net")
	b.ReportMetric(passesPerSec, "passes/sec")
	b.ReportMetric(100*skipRate, "skip%")
	b.ReportMetric(allocsPerPass, "allocs/pass")
	writeBenchJSON(b, artifact, map[string]float64{
		"networks":          float64(networks),
		"aps":               float64(aps),
		"bytes_per_network": bytesPerNet,
		"passes_per_sec":    passesPerSec,
		"ns_per_pass":       float64(b.Elapsed().Nanoseconds()) / passes,
		"allocs_per_pass":   allocsPerPass,
		"skip_rate_i0":      skipRate,
		// Supervision health: all must be zero in a fault-free sweep. A
		// nonzero value here means the bench itself tripped the
		// panic-recovery or watchdog machinery — a regression to chase.
		"quarantined":      float64(c.met.quarantined.Value()),
		"pass_panics":      float64(c.met.passPanics.Value()),
		"watchdog_cancels": float64(c.met.watchdogCancels.Value()),
		"ckpt_commits":     float64(c.met.ckptCommits.Value()),
		"ckpt_failures":    float64(c.met.ckptFailures.Value()),
	})
}

// BenchmarkFleetd10kNetworks is the tentpole's scaling gauge: bytes of
// steady-state resident memory per network and fleet-wide i=0 passes/sec
// at 10k networks. `make bench-json` persists the numbers as
// BENCH_fleetd.json.
func BenchmarkFleetd10kNetworks(b *testing.B) {
	benchFleetScale(b, 10_000, "BENCH_fleetd.json")
}

// BenchmarkFleetdAdaptiveCadence runs twin 200-network fleets — fixed
// §4.4.4 cadence vs Config.AdaptiveCadence — over ten simulated hours
// and reports the planning passes the adaptive controller saved at equal
// final fleet NetP (the headline adaptive_passes_saved_pct /
// adaptive_netp_delta_pct pair merged into BENCH_fleetd.json). The timed
// loop then measures steady-state fleet sweeps on the adaptive twin,
// where most networks coast at a stretched cadence.
func BenchmarkFleetdAdaptiveCadence(b *testing.B) {
	const networks = 200
	const horizon = 10 * sim.Hour
	twin := func(adaptive bool) (*Controller, Snapshot) {
		f := fleet.Generate(fleet.Options{Seed: 20170811, Networks: networks})
		c := New(Config{
			Seed: 1, Fast: 15 * sim.Minute, Mid: 3 * sim.Hour, Deep: -1,
			AdaptiveCadence: adaptive, Obs: obs.NewRegistry(),
		})
		c.AddFleet(f)
		c.Run(horizon)
		return c, c.Snapshot()
	}
	_, fixed := twin(false)
	ac, adapted := twin(true)

	passes := func(s Snapshot) float64 {
		total := 0
		for _, n := range s.Passes {
			total += n
		}
		return float64(total)
	}
	savedPct := 100 * (passes(fixed) - passes(adapted)) / passes(fixed)
	netpDeltaPct := 0.0
	if fixed.LogNetP5.P50 != 0 {
		netpDeltaPct = 100 * math.Abs(adapted.LogNetP5.P50-fixed.LogNetP5.P50) / math.Abs(fixed.LogNetP5.P50)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ac.Run(15 * sim.Minute)
	}
	b.StopTimer()
	b.ReportMetric(savedPct, "saved%")
	b.ReportMetric(netpDeltaPct, "netpΔ%")
	writeBenchJSON(b, "BENCH_fleetd.json", map[string]float64{
		"adaptive_passes_saved_pct": savedPct,
		"adaptive_netp_delta_pct":   netpDeltaPct,
		"adaptive_stretched":        float64(ac.AdaptiveStretched()),
		"adaptive_escalated":        float64(ac.AdaptiveEscalated()),
	})
}

// BenchmarkFleetd100kNetworks is the 100k-network smoke: skipped under
// -short (it takes minutes and several GB of headroom).
func BenchmarkFleetd100kNetworks(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-network fleet benchmark skipped under -short")
	}
	benchFleetScale(b, 100_000, "")
}
