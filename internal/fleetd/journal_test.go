package fleetd

import (
	"bytes"
	"testing"

	"repro/internal/fleet"
)

func mustEncode(t *testing.T, r jrec) []byte {
	t.Helper()
	line, err := encodeRecord(r)
	if err != nil {
		t.Fatalf("encode %+v: %v", r, err)
	}
	return line
}

// journalBytes assembles a journal from records, stamping sequence
// numbers and newline framing the way appendRecord + a store would.
func journalBytes(t *testing.T, recs ...jrec) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range recs {
		r.Seq = i + 1
		buf.Write(mustEncode(t, r))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func sampleRecords() []jrec {
	opt := fleet.Options{Networks: 12, Seed: 7, MaxAPs: 5}
	net := &fleet.Network{ID: 3}
	return []jrec{
		{Op: opConfig, Digest: 0xdeadbeefcafe},
		{Op: opAddFleet, Fleet: &opt},
		{Op: opAdd, Net: net, Opt: &NetOptions{Fast: 60}},
		{Op: opAdvance, To: 900_000_000},
		{Op: opDemote, To: 900_000_000},
		{Op: opCkptFail, To: 900_000_000},
		{Op: opCkpt, To: 1_800_000_000, Digest: ^uint64(0)},
		{Op: opRemove, ID: 3},
		{Op: opShutdown},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	data := journalBytes(t, sampleRecords()...)
	recs, cleanLen, torn, err := decodeJournal(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if cleanLen != len(data) {
		t.Fatalf("cleanLen = %d, want %d", cleanLen, len(data))
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		w := want[i]
		if r.Seq != i+1 || r.Op != w.Op || r.To != w.To || r.ID != w.ID || r.Digest != w.Digest {
			t.Fatalf("record %d = %+v, want op=%s to=%d id=%d digest=%#x", i, r, w.Op, w.To, w.ID, w.Digest)
		}
	}
	if recs[1].Fleet == nil || recs[1].Fleet.Networks != 12 || recs[1].Fleet.MaxAPs != 5 {
		t.Fatalf("addfleet options did not round-trip: %+v", recs[1].Fleet)
	}
	if recs[2].Net == nil || recs[2].Net.ID != 3 || recs[2].Opt == nil || recs[2].Opt.Fast != 60 {
		t.Fatalf("add record did not round-trip: net=%+v opt=%+v", recs[2].Net, recs[2].Opt)
	}
}

func TestJournalTornFinalRecordDropped(t *testing.T) {
	head := journalBytes(t, sampleRecords()[:3]...)
	last := mustEncode(t, jrec{Seq: 4, Op: opAdvance, To: 42})

	// Every proper prefix of the final line — with or without the newline
	// missing entirely — must decode as torn with the clean prefix intact.
	for cut := 1; cut < len(last); cut++ {
		data := append(append([]byte(nil), head...), last[:cut]...)
		recs, cleanLen, torn, err := decodeJournal(data)
		if err != nil {
			t.Fatalf("cut=%d: decode: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut=%d: torn prefix not detected", cut)
		}
		if cleanLen != len(head) || len(recs) != 3 {
			t.Fatalf("cut=%d: cleanLen=%d recs=%d, want %d/3", cut, cleanLen, len(recs), len(head))
		}
	}
}

func TestJournalUnterminatedFinalRecordIsTorn(t *testing.T) {
	// A complete, CRC-valid final record that is missing only its newline
	// still counts as torn: the append never finished.
	head := journalBytes(t, sampleRecords()[:2]...)
	data := append(append([]byte(nil), head...), mustEncode(t, jrec{Seq: 3, Op: opAdvance, To: 42})...)
	recs, cleanLen, torn, err := decodeJournal(data)
	if err != nil || !torn {
		t.Fatalf("torn=%v err=%v, want torn final record", torn, err)
	}
	if cleanLen != len(head) || len(recs) != 2 {
		t.Fatalf("cleanLen=%d recs=%d, want %d/2", cleanLen, len(recs), len(head))
	}
}

func TestJournalMidCorruptionIsHardError(t *testing.T) {
	data := journalBytes(t, sampleRecords()...)
	// Flip one byte inside the second record's line.
	n := bytes.IndexByte(data, '\n')
	data[n+5] ^= 0x40
	if _, _, _, err := decodeJournal(data); err == nil {
		t.Fatal("mid-journal corruption decoded without error")
	}
}

func TestJournalCRCMismatchAtTailDropped(t *testing.T) {
	recs := sampleRecords()[:3]
	data := journalBytes(t, recs...)
	// Corrupt a byte of the final record but keep it newline-terminated
	// and syntactically JSON: the CRC rejects it, the tail drops.
	i := bytes.LastIndex(data[:len(data)-1], []byte(`"op"`))
	data[i+8] ^= 0x01
	got, cleanLen, torn, err := decodeJournal(data)
	if err != nil || !torn {
		t.Fatalf("torn=%v err=%v, want CRC-bad tail dropped", torn, err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	if cleanLen >= len(data) {
		t.Fatalf("cleanLen=%d not shrunk below %d", cleanLen, len(data))
	}
}

func TestJournalSeqGapRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(mustEncode(t, jrec{Seq: 1, Op: opConfig}))
	buf.WriteByte('\n')
	buf.Write(mustEncode(t, jrec{Seq: 3, Op: opAdvance, To: 1}))
	buf.WriteByte('\n')
	buf.Write(mustEncode(t, jrec{Seq: 4, Op: opAdvance, To: 2}))
	buf.WriteByte('\n')
	if _, _, _, err := decodeJournal(buf.Bytes()); err == nil {
		t.Fatal("sequence gap decoded without error")
	}
}
