package fleetd

import (
	"container/heap"
	"sort"

	"repro/internal/sim"
)

// The priority cadence scheduler: a deadline min-heap with one entry per
// (network, cadence level), keyed by the level's next firing time. Pop
// order is a total order — (deadline, network ID, level) — so two
// networks sharing a deadline tick always resolve in ascending ID order
// no matter how entries were pushed, and a fleet snapshot is a pure
// function of the network set and seeds, never of heap insertion history.

// pass levels mirror the §4.4.4 schedule: i=0 every 15 minutes, i=1
// (ending in i=0) every 3 hours, i=2 (ending in 1,0) daily.
const (
	levelFast = iota // i=0
	levelMid         // i=1,0
	levelDeep        // i=2,1,0
	numLevels
)

// levelHops maps a cadence level to the NBO hop-limit schedule it runs.
var levelHops = [numLevels][]int{{0}, {1, 0}, {2, 1, 0}}

func levelName(level int) string {
	return [numLevels]string{"i0", "i1", "i2"}[level]
}

// passEntry is one scheduled pass.
type passEntry struct {
	at    sim.Time
	id    int // network ID
	level int
}

type passHeap []passEntry

func (h passHeap) Len() int { return len(h) }
func (h passHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].id != h[j].id {
		return h[i].id < h[j].id
	}
	return h[i].level < h[j].level
}
func (h passHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *passHeap) Push(x any)   { *h = append(*h, x.(passEntry)) }
func (h *passHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// scheduler wraps the heap with the two operations the controller needs.
// It is not internally synchronized; the controller serializes access.
type scheduler struct {
	h passHeap
}

func (s *scheduler) push(e passEntry) { heap.Push(&s.h, e) }

// next returns the earliest deadline without popping, and whether one
// exists.
func (s *scheduler) next() (sim.Time, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].at, true
}

// popDue pops every entry sharing the earliest deadline, provided that
// deadline is <= maxAt. Entries come back sorted by (id, level) — the
// heap order restricted to one instant — which is the deterministic tick
// resolution order.
func (s *scheduler) popDue(maxAt sim.Time) (sim.Time, []passEntry) {
	if len(s.h) == 0 || s.h[0].at > maxAt {
		return 0, nil
	}
	t := s.h[0].at
	var due []passEntry
	for len(s.h) > 0 && s.h[0].at == t {
		due = append(due, heap.Pop(&s.h).(passEntry))
	}
	return t, due
}

// entries returns a copy of all pending entries in total (at, id, level)
// order — the canonical dump checkpoints serialise.
func (s *scheduler) entries() []passEntry {
	out := append([]passEntry(nil), s.h...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		if out[i].id != out[j].id {
			return out[i].id < out[j].id
		}
		return out[i].level < out[j].level
	})
	return out
}

// reschedule moves the pending entry for (id, level) to a new deadline in
// place — the entry is replaced, never duplicated, so a cadence change
// between ticks cannot make a level fire twice. Returns false when no
// entry for the pair is pending (popped but not yet rescheduled, or the
// level is disabled).
func (s *scheduler) reschedule(id, level int, at sim.Time) bool {
	for i := range s.h {
		if s.h[i].id == id && s.h[i].level == level {
			s.h[i].at = at
			heap.Fix(&s.h, i)
			return true
		}
	}
	return false
}

// dropLevel removes the pending entry for one (network, level) pair —
// disabling a single cadence level without touching the others.
func (s *scheduler) dropLevel(id, level int) bool {
	for i := range s.h {
		if s.h[i].id == id && s.h[i].level == level {
			heap.Remove(&s.h, i)
			return true
		}
	}
	return false
}

// when reports the pending deadline for (id, level).
func (s *scheduler) when(id, level int) (sim.Time, bool) {
	for i := range s.h {
		if s.h[i].id == id && s.h[i].level == level {
			return s.h[i].at, true
		}
	}
	return 0, false
}

// dropNetwork removes every pending entry for a network (after Remove),
// so a removed network costs nothing even if its deadlines were far out.
func (s *scheduler) dropNetwork(id int) int {
	kept := s.h[:0]
	dropped := 0
	for _, e := range s.h {
		if e.id == id {
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	s.h = kept
	if dropped > 0 {
		heap.Init(&s.h)
	}
	return dropped
}
