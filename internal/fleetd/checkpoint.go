package fleetd

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/littletable"
	"repro/internal/sim"
	"repro/internal/spectrum"
)

// Checkpoints. A checkpoint renders the controller's durable state —
// registry membership, scheduler deadlines, per-network pass accounting,
// planner objectives, dirty-skip memos, and last-known-good telemetry
// digests — into littletable tables and serialises them with the store's
// deterministic Save order. The blob is therefore a canonical byte string
// of the fleet's state: two controllers are equivalent iff their
// checkpoint bytes are equal, which is exactly the invariant the restart
// property test and the kill-chaos campaign pin.
//
// Checkpoints are NOT replay shortcuts: recovery always replays the
// journal from the beginning (per-network engines cannot be serialised;
// determinism reconstructs them exactly). A stored checkpoint instead
// verifies the replay — when the replayed clock passes the instant the
// blob was committed at, the recomputed bytes must match it exactly.
//
// uint64 digests do not fit littletable's float64 fields exactly, so
// they are split into hi/lo 32-bit halves (each exactly representable).

// ckptEpoch is the upper time bound used when dumping checkpoint tables.
const ckptEpoch = sim.Time(1) << 62

// putU64 splits a uint64 across two exactly-representable float fields.
func putU64(f map[string]float64, name string, v uint64) {
	f[name+"_hi"] = float64(v >> 32)
	f[name+"_lo"] = float64(v & 0xffffffff)
}

// fnvBytes is FNV-1a over a byte slice (checkpoint content digests).
func fnvBytes(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// checkpointBytes renders the controller's current state as the
// canonical checkpoint blob. Callers must be in the serial control-loop
// context (no passes in flight).
func (c *Controller) checkpointBytes() []byte {
	db := littletable.NewDB()

	quarantined := 0
	netTab := db.Table("ckpt_net")
	for _, ns := range c.nets() {
		if ns.quarantined {
			quarantined++
		}
		f := map[string]float64{
			"id":        float64(ns.id),
			"aps":       float64(ns.apCount),
			"built":     boolField(ns.build == nil),
			"quar":      boolField(ns.quarantined),
			"coalesced": float64(ns.coalesced),
		}
		for level := 0; level < numLevels; level++ {
			f["passes_"+levelName(level)] = float64(ns.passes[level])
			f["shed_"+levelName(level)] = float64(ns.shed[level])
			f["cad_"+levelName(level)] = float64(ns.cadence[level])
		}
		// Adaptive-cadence controller state (defaults when the controller
		// is off). Two fleets that ran the same passes but diverged in
		// cadence accounting must not compare checkpoint-equal.
		f["mult"] = float64(ns.mult)
		f["ewma"] = ns.ewma
		f["calm"] = float64(ns.calm)
		f["lastnp5"] = ns.lastNP5
		f["lastnp24"] = ns.lastNP24
		f["havepass"] = boolField(ns.havePass)
		// A quarantined network's backend froze mid-fault (a wedged pass
		// aborts at a wall-clock-dependent point), so its planner-visible
		// state is excluded from the canonical bytes; the flag and the
		// scheduler-side accounting above remain.
		if ns.be != nil && !ns.quarantined {
			f["switches"] = float64(ns.be.Switches())
			f["converged"] = boolField(ns.be.Converged())
			f["lognetp5"] = ns.be.Service.LastLogNetP[spectrum.Band5]
			f["lognetp24"] = ns.be.Service.LastLogNetP[spectrum.Band2G4]
			f["degraded"] = float64(ns.be.Service.DegradedTotal)
			putU64(f, "reports", ns.be.ReportsDigest())
			memos := ns.be.Service.SkipMemos()
			if d, ok := memos[spectrum.Band5]; ok {
				putU64(f, "memo5", d)
				f["memo5_set"] = 1
			}
			if d, ok := memos[spectrum.Band2G4]; ok {
				putU64(f, "memo24", d)
				f["memo24_set"] = 1
			}
		}
		netTab.Insert(ns.key, c.now, f)
	}

	meta := map[string]float64{
		"now":         float64(c.now),
		"networks":    float64(c.Len()),
		"next_ckpt":   float64(c.nextCkptAt),
		"deg_active":  boolField(c.deg.active),
		"deg_fails":   float64(c.deg.fails),
		"deg_retry":   float64(c.deg.retryAt),
		"quarantined": float64(quarantined),
	}
	putU64(meta, "seed", uint64(c.cfg.Seed))
	putU64(meta, "cfg", c.cfg.digest())
	db.Table("ckpt_meta").Insert("fleet", c.now, meta)

	schedTab := db.Table("ckpt_sched")
	for _, e := range c.sched.entries() {
		schedTab.Insert(netKey(e.id), e.at, map[string]float64{"level": float64(e.level)})
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		// Save to a bytes.Buffer cannot fail; keep the invariant loud.
		panic(fmt.Sprintf("fleetd: checkpoint render: %v", err))
	}
	return buf.Bytes()
}

func boolField(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// CheckpointBytes exposes the canonical state blob (tests compare it
// between a recovered controller and its uncrashed twin).
func (c *Controller) CheckpointBytes() []byte { return c.checkpointBytes() }

// ckptClock extracts the commit clock embedded in a checkpoint blob.
func ckptClock(data []byte) (sim.Time, error) {
	db := littletable.NewDB()
	if err := db.Load(bytes.NewReader(data)); err != nil {
		return 0, fmt.Errorf("fleetd: stored checkpoint unreadable: %w", err)
	}
	rows := db.Table("ckpt_meta").Range("fleet", 0, ckptEpoch)
	if len(rows) == 0 {
		return 0, errors.New("fleetd: stored checkpoint has no ckpt_meta row")
	}
	return sim.Time(rows[0].Fields["now"]), nil
}

// advanceCkptGrid moves the periodic schedule past t. It runs once per
// attempt, before the state bytes are rendered, in live and replay modes
// alike, so the schedule cursor inside the blob is mode-independent.
func (c *Controller) advanceCkptGrid(t sim.Time) {
	for c.nextCkptAt <= t {
		c.nextCkptAt += c.cfg.CheckpointEvery
	}
}

// degradedState tracks checkpoint-failure degradation: while active, deep
// passes are demoted to i=0 execution with their intent re-queued (never
// dropped) and the next commit is retried at an escalating deferral.
type degradedState struct {
	active  bool
	fails   int // consecutive failed attempts
	retryAt sim.Time
}

// isDegraded reports whether deep passes should currently be demoted —
// either the checkpoint path is failing or the scheduler is lagging past
// its wall-clock budget.
func (c *Controller) isDegraded() bool { return c.deg.active || c.lagDegraded }

// degradedDefer is the current deferral for demoted deep intent and for
// checkpoint retries: one fast cadence on first failure, doubling with
// consecutive failures, capped near one mid cadence. A pure function of
// the failure count, so replay and the uncrashed twin compute the same
// deferrals.
func (c *Controller) degradedDefer() sim.Time {
	base := c.cfg.Fast
	if base <= 0 {
		base = 15 * sim.Minute
	}
	lim := c.cfg.Mid
	if lim <= 0 {
		lim = 12 * base
	}
	d := base
	for i := 1; i < c.deg.fails && d < lim; i++ {
		d *= 2
	}
	if d > lim {
		d = lim
	}
	return d
}

// ckptFailed records a failed commit attempt at clock t: enter (or
// escalate) degraded mode and arm the retry.
func (c *Controller) ckptFailed(t sim.Time) {
	if !c.deg.active {
		c.met.degradedEnters.Inc()
	}
	c.deg.active = true
	c.deg.fails++
	c.deg.retryAt = t + c.degradedDefer()
}

// ckptSucceeded clears checkpoint-failure degradation.
func (c *Controller) ckptSucceeded() {
	c.deg = degradedState{}
}

// checkpointAt runs the checkpoint machinery at one serial instant t (a
// tick boundary or an advance end). In live mode it evaluates the
// periodic/retry schedule, consults the injected failure model, commits
// through the store, and journals the outcome. During journal replay it
// instead consumes the recorded outcomes at this instant, re-applies
// their state transitions, and verifies the recomputed state bytes
// against the recorded digest — and against the stored checkpoint blob
// when the clocks align.
func (c *Controller) checkpointAt(t sim.Time) error {
	if c.store == nil || c.cfg.CheckpointEvery <= 0 {
		return nil
	}
	for {
		r, ok := c.replayHead()
		if !ok || (r.Op != opCkpt && r.Op != opCkptFail) {
			break
		}
		if at := sim.Time(r.To); at != t {
			if at < t {
				return fmt.Errorf("fleetd: replay diverged: checkpoint record for clock %v unconsumed at %v", at, t)
			}
			break // belongs to a later instant
		}
		c.replayPop()
		c.advanceCkptGrid(t)
		if r.Op == opCkptFail {
			c.met.ckptFailures.Inc()
			c.ckptFailed(t)
			continue
		}
		data := c.checkpointBytes()
		if fnvBytes(data) != r.Digest {
			return fmt.Errorf("fleetd: replay diverged: checkpoint digest mismatch at %v", t)
		}
		if c.storedCkpt != nil && c.storedCkptAt == t && !bytes.Equal(data, c.storedCkpt) {
			return fmt.Errorf("fleetd: replay diverged: stored checkpoint at %v does not match replayed state", t)
		}
		c.met.ckptCommits.Inc()
		c.ckptSucceeded()
	}
	if c.replaying() {
		return nil
	}
	if t < c.nextCkptAt && !(c.deg.active && t >= c.deg.retryAt) {
		return nil
	}
	c.advanceCkptGrid(t)
	if c.proc.FailCheckpoint(t) {
		c.met.ckptFailures.Inc()
		if err := c.appendRecord(jrec{Op: opCkptFail, To: int64(t)}); err != nil {
			return err
		}
		c.ckptFailed(t)
		return nil
	}
	data := c.checkpointBytes()
	if err := c.store.CommitCheckpoint(data); err != nil {
		if errors.Is(err, ErrKilled) {
			c.dead = true
			return err
		}
		// A real IO failure degrades the fleet instead of stopping it:
		// intent survives in the journal, deep passes demote, and the
		// commit retries on the escalating schedule.
		c.met.ckptFailures.Inc()
		if aerr := c.appendRecord(jrec{Op: opCkptFail, To: int64(t)}); aerr != nil {
			return aerr
		}
		c.ckptFailed(t)
		return nil
	}
	c.met.ckptCommits.Inc()
	c.ckptSucceeded()
	return c.appendRecord(jrec{Op: opCkpt, To: int64(t), Digest: fnvBytes(data)})
}

// Checkpoint forces an immediate commit regardless of the periodic
// schedule — the graceful-shutdown path and an operator lever. Forced
// commits skip the injected failure model (they replay by their position
// in the journal, not by the schedule).
func (c *Controller) Checkpoint() error {
	if c.store == nil {
		return nil
	}
	if c.dead {
		return ErrKilled
	}
	data := c.checkpointBytes()
	if err := c.store.CommitCheckpoint(data); err != nil {
		if errors.Is(err, ErrKilled) {
			c.dead = true
		}
		return err
	}
	c.met.ckptCommits.Inc()
	c.ckptSucceeded()
	return c.appendRecord(jrec{Op: opCkpt, To: int64(c.now), Digest: fnvBytes(data)})
}

// Close writes a final checkpoint and the clean-shutdown marker. A nil
// error means the journal ends in a verified durable state (the "clean
// exit" the fleetd binary reports with exit code 0).
func (c *Controller) Close() error {
	if c.store == nil {
		return nil
	}
	if err := c.Checkpoint(); err != nil {
		return err
	}
	return c.appendRecord(jrec{Op: opShutdown})
}
