package fleetd

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// nonQuarantinedRows strips quarantined networks out of a snapshot,
// returning the rows every *other* network produced.
func nonQuarantinedRows(s Snapshot) map[int]NetworkStatus {
	out := make(map[int]NetworkStatus, len(s.Networks))
	for _, st := range s.Networks {
		if !st.Quarantined {
			out[st.ID] = st
		}
	}
	return out
}

// TestPanicQuarantineIsolation: injected pass panics must quarantine
// exactly the panicking networks while every other network's state is
// byte-for-byte what it would have been in a fault-free fleet — the
// zero-collateral guarantee.
func TestPanicQuarantineIsolation(t *testing.T) {
	const networks = 40
	mk := func(prof *faults.ProcProfile) *Controller {
		cfg := testConfig(71)
		cfg.Proc = prof
		cfg.Obs = obs.NewRegistry()
		c := New(cfg)
		c.AddFleet(fleet.Generate(fleet.Options{Networks: networks, Seed: 71, MaxAPs: 4}))
		c.Run(2 * sim.Hour)
		return c
	}

	clean := mk(nil)
	faulty := mk(&faults.ProcProfile{Seed: 71, PanicPass: 0.02})

	if got := faulty.met.passPanics.Value(); got == 0 {
		t.Fatal("panic profile never fired; isolation test is vacuous")
	}
	snap := faulty.Snapshot()
	if snap.QuarantinedNets == 0 {
		t.Fatal("panicking passes did not quarantine any network")
	}
	if snap.QuarantinedNets != int(faulty.met.quarantined.Value()) {
		t.Fatalf("snapshot reports %d quarantined, counter says %d",
			snap.QuarantinedNets, faulty.met.quarantined.Value())
	}

	// Every non-quarantined network matches the fault-free fleet exactly.
	cleanRows := nonQuarantinedRows(clean.Snapshot())
	for id, st := range nonQuarantinedRows(snap) {
		if !reflect.DeepEqual(st, cleanRows[id]) {
			t.Fatalf("network %d perturbed by another network's panic:\n got: %+v\nwant: %+v",
				id, st, cleanRows[id])
		}
	}

	// Quarantined networks stop consuming passes: run further and verify
	// their pass counters froze.
	frozen := map[int][numLevels]int{}
	for _, st := range snap.Networks {
		if st.Quarantined {
			frozen[st.ID] = st.Passes
		}
	}
	faulty.Run(2 * sim.Hour)
	for _, st := range faulty.Snapshot().Networks {
		if want, ok := frozen[st.ID]; ok && st.Passes != want {
			t.Fatalf("quarantined network %d ran more passes: %v -> %v", st.ID, want, st.Passes)
		}
	}
}

// TestWatchdogCancelsStuckPass: a wedged pass blocks until the
// wall-clock watchdog cancels its backend context; the network is
// quarantined and the fleet keeps running.
func TestWatchdogCancelsStuckPass(t *testing.T) {
	cfg := testConfig(83)
	cfg.PassDeadline = 50 * time.Millisecond
	cfg.Proc = &faults.ProcProfile{Seed: 83, StuckPass: 0.01}
	cfg.Obs = obs.NewRegistry()
	c := New(cfg)
	c.AddFleet(fleet.Generate(fleet.Options{Networks: 30, Seed: 83, MaxAPs: 4}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(2 * sim.Hour)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet wedged: watchdog did not cancel the stuck pass")
	}

	if c.met.watchdogCancels.Value() == 0 {
		t.Fatal("stuck profile never engaged the watchdog; test is vacuous")
	}
	snap := c.Snapshot()
	if snap.QuarantinedNets == 0 {
		t.Fatal("watchdog-cancelled network was not quarantined")
	}
	// The rest of the fleet kept planning.
	if snap.Passes[levelFast] == 0 {
		t.Fatal("no passes ran at all; fleet did not survive the wedge")
	}
}

// TestLagDegradationDemotesDeepPasses: ticks over the wall-clock budget
// drop the fleet to i=0-only cadence; deep intent re-queues and runs
// once the lag clears.
func TestLagDegradationDemotesDeepPasses(t *testing.T) {
	cfg := testConfig(29)
	cfg.Mid = sim.Hour
	cfg.LagBudget = 10 * time.Millisecond
	cfg.Obs = obs.NewRegistry()
	c := New(cfg)
	c.AddFleet(fleet.Generate(fleet.Options{Networks: 8, Seed: 29, MaxAPs: 3}))

	// A fake wall clock that reports every tick 10x over budget.
	var wall time.Time
	c.wallNow = func() time.Time {
		wall = wall.Add(100 * time.Millisecond)
		return wall
	}
	c.Run(90 * sim.Minute) // covers the 1h mid deadline while lagging

	if c.met.lagDegraded.Value() == 0 {
		t.Fatal("lag budget never tripped")
	}
	if c.met.degradedDemoted.Value() == 0 {
		t.Fatal("no deep pass was demoted under lag")
	}
	snap := c.Snapshot()
	if snap.Passes[levelMid] != 0 {
		t.Fatalf("mid passes ran while lag-degraded: %d", snap.Passes[levelMid])
	}

	// Lag clears: ticks come back far under budget, the hysteresis lifts
	// degradation, and the deferred deep intent executes — it was
	// re-queued, never dropped.
	c.wallNow = func() time.Time {
		wall = wall.Add(time.Millisecond)
		return wall
	}
	c.Run(90 * sim.Minute)
	if got := c.Snapshot().Passes[levelMid]; got == 0 {
		t.Fatal("demoted mid-level intent never executed after lag cleared")
	}
}
