package fleetd

import (
	"math"

	"repro/internal/sim"
)

// The churn-driven cadence controller (Config.AdaptiveCadence). The fixed
// §4.4.4 schedule spends the same planning effort on a network whose NetP
// has not moved in days as on one mid-reshuffle. This controller watches
// each network's observable churn — did the planner improve the plan, and
// how much did the NetP objectives move between executed passes — and
// stretches a quiet network's whole schedule by doubling steps, up to
// adaptMaxMult× the base cadence. Any volatility snaps the multiplier
// back to 1× immediately AND pulls the network's pending deadlines
// forward, so a disturbed network is re-planned within one base period,
// not one stretched period.
//
// Safety bounds: the multiplier is clamped to [1, adaptMaxMult]; the
// stretched schedule still flows through the scheduler's tick budget
// (MaxPassesPerTick shedding and degraded-mode demotion apply unchanged);
// and every controller decision happens in the serial ingest section in
// ascending network-ID order off journaled pass results, so snapshots
// stay byte-identical across shard/worker settings and journal replay.
const (
	// adaptMaxMult caps the stretch: 8× turns the 15-minute fast cadence
	// into 2 hours — still inside one mid (3 h) window, so even a fully
	// stretched network re-observes within the escalation deadline the
	// tests pin.
	adaptMaxMult = 8
	// adaptStreak is how many consecutive quiet observations earn one
	// doubling. Dirty-skipped passes count double: a skip is a *proof* of
	// no change, the strongest quiet signal there is.
	adaptStreak = 3
	// adaptAlpha is the EWMA gain on the per-pass relative NetP delta.
	adaptAlpha = 0.5
	// adaptVolatileEWMA is the churn threshold above which a network is
	// volatile regardless of planner acceptance — external interference
	// moves NetP even when the plan is already the best response.
	adaptVolatileEWMA = 0.02
)

// cadenceMult is the factor applied to every reschedule period. It reads
// 1 when adaptive cadence never engaged, keeping the arithmetic shared
// between modes.
func (ns *netState) cadenceMult() sim.Time {
	if ns.mult <= 1 {
		return 1
	}
	return sim.Time(ns.mult)
}

// adaptObserve feeds one executed pass into the network's controller
// state. Serial-section only; runs before the tick's reschedule loop so
// the new multiplier takes effect this tick.
func (c *Controller) adaptObserve(t sim.Time, j *passJob, res *passResult) {
	ns := j.ns
	if !ns.havePass {
		// First observation only anchors the deltas.
		ns.havePass = true
		ns.lastNP5, ns.lastNP24 = res.logNetP5, res.logNetP24
		return
	}
	d5 := math.Abs(res.logNetP5 - ns.lastNP5)
	d24 := math.Abs(res.logNetP24 - ns.lastNP24)
	rel := (d5 + d24) / (1 + math.Abs(res.logNetP5) + math.Abs(res.logNetP24))
	ns.lastNP5, ns.lastNP24 = res.logNetP5, res.logNetP24
	ns.ewma = adaptAlpha*rel + (1-adaptAlpha)*ns.ewma

	if res.improved > 0 || res.radar > 0 || ns.ewma > adaptVolatileEWMA {
		ns.calm = 0
		if ns.mult > 1 {
			ns.mult = 1
			c.met.adaptEscalated.Inc()
			c.pullSchedule(t, j)
		}
		return
	}
	if res.skipped > 0 {
		ns.calm += 2
	} else {
		ns.calm++
	}
	if ns.calm >= adaptStreak && ns.mult < adaptMaxMult {
		ns.mult *= 2
		ns.calm = 0
		c.met.adaptStretched.Inc()
	}
}

// pullSchedule drags a just-escalated network's pending deadlines forward
// to one base period from now. The tick's own due levels re-arm at the
// (now 1×) multiplier in the reschedule loop; only the levels NOT due at
// this tick sit on stretched deadlines that must be pulled in.
func (c *Controller) pullSchedule(t sim.Time, j *passJob) {
	for level := 0; level < numLevels; level++ {
		due := false
		for _, l := range j.levels {
			if l == level {
				due = true
				break
			}
		}
		if due {
			continue
		}
		period := j.ns.cadence[level]
		if period <= 0 {
			continue
		}
		want := t + period
		if at, ok := c.sched.when(j.ns.id, level); ok && at > want {
			c.sched.reschedule(j.ns.id, level, want)
			c.met.adaptPulled.Inc()
		}
	}
}

// AdaptiveStretched reports schedule-stretch decisions (doublings) taken
// by the adaptive controller.
func (c *Controller) AdaptiveStretched() int64 { return c.met.adaptStretched.Value() }

// AdaptiveEscalated reports volatility escalations (multiplier snapped
// back to 1×).
func (c *Controller) AdaptiveEscalated() int64 { return c.met.adaptEscalated.Value() }
