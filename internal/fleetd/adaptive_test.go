package fleetd

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
)

// A quiet network earns doubling stretches, and an injected NetP step
// change (a fleet-wide demand shock on one network) snaps it back to base
// cadence within one mid (3 h) window: a fully stretched fast level still
// fires within 8×15m = 2h, observes the churn, and escalates.
func TestAdaptiveCadenceEscalation(t *testing.T) {
	c := New(Config{
		Seed: 17, Fast: 15 * sim.Minute, Mid: -1, Deep: -1,
		AdaptiveCadence: true, Obs: obs.NewRegistry(),
	})
	c.Add(testNetwork(0, 4), NetOptions{})

	// Converge: after the first passes the plan settles, dirty-skips prove
	// the quiet, and the multiplier climbs.
	c.Run(6 * sim.Hour)
	ns := c.shardFor(0).get(0)
	if ns.mult < 2 {
		t.Fatalf("quiet network never stretched: mult=%d calm=%d ewma=%g", ns.mult, ns.calm, ns.ewma)
	}
	if c.AdaptiveStretched() == 0 {
		t.Fatal("adapt_stretched counter = 0 after a quiet 6h run")
	}
	preFast := ns.passes[levelFast]
	preEscalated := c.AdaptiveEscalated()

	// Inject the step change between Run calls (no passes in flight):
	// every AP's offered load jumps 6x, which moves utilization — and
	// therefore NetP — on the next executed pass.
	for _, ap := range ns.sc.APs {
		ap.BaseDemandMbps *= 6
	}

	c.Run(3 * sim.Hour)
	if c.AdaptiveEscalated() == preEscalated {
		t.Fatalf("no escalation within one mid window of the demand shock: mult=%d ewma=%g passes=%d",
			ns.mult, ns.ewma, ns.passes[levelFast]-preFast)
	}
	// Escalation pulled the network back to base cadence: it re-planned
	// repeatedly inside the window instead of coasting at 8x.
	if got := ns.passes[levelFast] - preFast; got < 2 {
		t.Fatalf("only %d fast passes ran in the 3h after the shock", got)
	}
}

// The adaptive controller's decisions run in the serial ingest section in
// ascending network-ID order, so the determinism contract extends to it:
// snapshots AND canonical checkpoint bytes are byte-identical for every
// shard/worker shape.
func TestAdaptiveSnapshotInvariance(t *testing.T) {
	f := fleet.Generate(fleet.Options{Seed: 42, Networks: 6})
	shapes := []struct{ shards, workers int }{
		{1, 1}, {7, 8}, {3, 2}, {1, 4},
	}
	var base Snapshot
	var baseText string
	var baseCkpt []byte
	var baseStretched int64
	for i, shape := range shapes {
		c := New(Config{
			Seed:   99,
			Shards: shape.shards, Workers: shape.workers,
			Fast: 15 * sim.Minute, Mid: 45 * sim.Minute, Deep: -1,
			AdaptiveCadence: true,
			Obs:             obs.NewRegistry(),
		})
		c.AddFleet(f)
		c.Run(4 * sim.Hour)
		snap := c.Snapshot()
		ckpt := c.CheckpointBytes()
		if i == 0 {
			base, baseText, baseCkpt = snap, snap.String(), ckpt
			baseStretched = c.AdaptiveStretched()
			if baseStretched == 0 {
				t.Fatal("adaptive controller never engaged on the base shape")
			}
			continue
		}
		if !reflect.DeepEqual(snap, base) {
			t.Fatalf("snapshot with shards=%d workers=%d diverged:\n%s\nvs base\n%s",
				shape.shards, shape.workers, snap.String(), baseText)
		}
		if snap.String() != baseText {
			t.Fatalf("snapshot text diverged for shards=%d workers=%d", shape.shards, shape.workers)
		}
		if !bytes.Equal(ckpt, baseCkpt) {
			t.Fatalf("checkpoint bytes diverged for shards=%d workers=%d", shape.shards, shape.workers)
		}
		if got := c.AdaptiveStretched(); got != baseStretched {
			t.Fatalf("stretch decisions diverged for shards=%d workers=%d: %d vs %d",
				shape.shards, shape.workers, got, baseStretched)
		}
	}
}
