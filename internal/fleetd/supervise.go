package fleetd

import (
	"context"
	"time"

	"repro/internal/sim"
)

// Per-pass supervision. A fleet controller must outlive any single
// network's failure: one panicking planner pass — a bug, corrupt state,
// or injected chaos — quarantines that network instead of killing 10k
// control planes, and a wedged pass is cancelled by a wall-clock watchdog
// through the context the backend's poll/push/reconcile loops honor.
//
// A faulted pass contributes nothing to the tick's serial section: no
// telemetry rows, no counters, no reschedule. Its network's engine and
// backend freeze wherever the fault stopped them, the scheduler drops
// every pending deadline for it, and syncEngines skips it from then on —
// so a quarantined network cannot perturb any other network's plan bytes,
// which the chaos tests pin exactly.

// executePassSupervised wraps one worker-pool pass with panic isolation
// and the stuck-pass watchdog. It never lets a pass take down the
// process: any panic (and any pass still running at its deadline) comes
// back as a faulted result that the serial section turns into a
// quarantine.
func (c *Controller) executePassSupervised(t sim.Time, j *passJob) (res *passResult) {
	ns := j.ns
	defer func() {
		if r := recover(); r != nil {
			c.met.passPanics.Inc()
			res = &passResult{faulted: true}
		}
	}()
	ns.ensureBuilt()

	ctx := context.Background()
	cancel := func() {}
	var timer *time.Timer
	if c.cfg.PassDeadline > 0 {
		ctx, cancel = context.WithCancel(ctx)
		timer = time.AfterFunc(c.cfg.PassDeadline, cancel)
		ns.be.SetPassContext(ctx)
	}
	defer func() {
		if timer == nil {
			return
		}
		timer.Stop()
		ns.be.SetPassContext(nil)
		if ctx.Err() != nil {
			// The watchdog fired: whatever the pass produced after its
			// deadline is suspect (its control loops were aborting
			// mid-flight), so the whole pass is treated as faulted.
			c.met.watchdogCancels.Inc()
			if res != nil {
				res = &passResult{faulted: true}
			}
		}
		cancel()
	}()

	if c.proc.PanicPass(ns.id, t, j.level) {
		panic("fleetd: injected pass panic")
	}
	if timer != nil && c.proc.StuckPass(ns.id, t, j.level) {
		// An injected wedge: block until the watchdog cancels the pass,
		// then fall through — the cancelled context makes the control
		// loops abort, and the deferred check above quarantines.
		<-ctx.Done()
	}
	return c.executePass(t, j)
}

// quarantine isolates a faulted network: no future deadlines, no engine
// syncs, no further ingest. Its registry entry remains so snapshots and
// the worst-networks report show the quarantine.
func (c *Controller) quarantine(ns *netState) {
	ns.quarantined = true
	c.met.quarantined.Inc()
	c.sched.dropNetwork(ns.id)
}
