package testbed

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Channel dynamics: real 802.11 links are not static. People walk through
// Fresnel zones, doors open, neighbouring devices key up. The testbed
// models each client's link SNR as a Gauss-Markov process around its base
// value, with occasional deep-fade events. During a fade the rate
// controller's current MCS suddenly carries a high PER, MAC retries
// exhaust, and MPDUs drop — the wireless losses that make baseline TCP
// back off end-to-end (and that FastACK absorbs with local
// retransmissions, §5.5.1).
//
// Each client owns a dedicated RNG seeded from (seed, client index) and
// the fade process is sampled on a fixed 100 ms grid, so the channel
// realisation is identical across runs regardless of AP mode or traffic —
// baseline and FastACK are compared over the same air.

// FadingOptions tunes the channel dynamics.
type FadingOptions struct {
	Disabled bool
	// SigmaDB is the stationary std-dev of the Gauss-Markov jitter.
	SigmaDB float64
	// Rho is the per-step (100 ms) autocorrelation.
	Rho float64
	// EventsPerMinute is the mean rate of deep-fade events per client.
	EventsPerMinute float64
	// DepthMinDB/DepthMaxDB bound the fade depth.
	DepthMinDB, DepthMaxDB float64
	// DurMin/DurMax bound the fade duration.
	DurMin, DurMax sim.Time
}

// DefaultFading matches a quiet performance lab: modest jitter, with a
// deep fade (someone walking through the path) every couple of minutes
// per client.
func DefaultFading() FadingOptions {
	return FadingOptions{
		SigmaDB:         2.0,
		Rho:             0.9,
		EventsPerMinute: 0.5,
		DepthMinDB:      8,
		DepthMaxDB:      18,
		DurMin:          100 * sim.Millisecond,
		DurMax:          600 * sim.Millisecond,
	}
}

const fadeStep = 100 * sim.Millisecond

type fader struct {
	c    *Client
	rng  *rand.Rand
	opt  FadingOptions
	base float64

	jitter    float64
	fadeLeft  int // remaining steps of the active fade
	fadeDepth float64
}

func (tb *Testbed) startFading() {
	if tb.Opt.Fading.Disabled {
		return
	}
	opt := tb.Opt.Fading
	if opt.SigmaDB == 0 && opt.EventsPerMinute == 0 {
		opt = DefaultFading()
	}
	for _, c := range tb.Clients {
		f := &fader{
			c:    c,
			rng:  rand.New(rand.NewSource(tb.Opt.Seed*1000003 + int64(c.Index))),
			opt:  opt,
			base: c.SNR,
		}
		tb.Engine.Ticker(fadeStep, f.step)
	}
}

func (f *fader) step(e *sim.Engine) {
	o := f.opt
	// Gauss-Markov jitter around the base SNR.
	f.jitter = o.Rho*f.jitter + o.SigmaDB*f.rng.NormFloat64()*math.Sqrt(1-o.Rho*o.Rho)

	// Deep-fade event process.
	if f.fadeLeft > 0 {
		f.fadeLeft--
	} else {
		f.fadeDepth = 0
		pEvent := o.EventsPerMinute / 60 * fadeStep.Seconds()
		if f.rng.Float64() < pEvent {
			f.fadeDepth = o.DepthMinDB + f.rng.Float64()*(o.DepthMaxDB-o.DepthMinDB)
			dur := o.DurMin + sim.Time(f.rng.Int63n(int64(o.DurMax-o.DurMin+1)))
			f.fadeLeft = int(dur / fadeStep)
			if f.fadeLeft < 1 {
				f.fadeLeft = 1
			}
		}
	}

	snr := f.base + f.jitter - f.fadeDepth
	f.c.tb.Medium.SetSNR(f.c.AP.Station.ID, f.c.Station.ID, snr)
}
