package testbed

import (
	"testing"

	"repro/internal/fastack"
	"repro/internal/faults"
	"repro/internal/sim"
)

// The chaos acceptance suite: seeded DataChaos campaigns proving the
// guarded FastACK agent is safe under data-path adversity — wired loss,
// reordering, duplication, header corruption, block-ACK feedback bursts,
// client disconnect windows, and a mid-flow roam — and that it never
// turns a working network into a broken one.
//
// Safety is asserted strictly per seed:
//   - zero runtime invariant violations (CheckInvariants armed),
//   - every guard-bypassed flow drains its fast-ACK debt to zero once
//     given a quiet drain tail,
//   - byte-identical replay at a fixed seed.
//
// Goodput is asserted at the campaign level plus a per-seed floor.
// Per-seed FastACK-vs-baseline ratios under 2% random wired loss are
// inherently noisy: fault draws are attempt-keyed (fair to both modes),
// but the two modes send different byte streams at different times, so
// one seed's draw sequence can land on FastACK's recovery traffic while
// sparing baseline's, and vice versa. Calibration over the full 100-seed
// campaign (after the feedback-heal and spurious-re-ACK fixes this
// campaign flushed out) measured a 1.44x aggregate — FastACK's local
// repair beats baseline under chaos, exactly the paper's §5.5.1 claim —
// with per-seed ratios from 0.71x to several-fold wins. The floors below
// leave calibrated slack under those measurements; the runs are fully
// seeded, so they are exact, not statistical.

const (
	chaosDur      = 3 * sim.Second
	chaosDrainTo  = 3500 * sim.Millisecond
	chaosPerSeed  = 0.50 // floor on per-seed goodput ratio (measured worst: 0.71)
	chaosCampaign = 1.10 // floor on campaign aggregate ratio (measured: 1.44)
)

// chaosProfile is the canonical adversity mix for one seed: full
// DataChaos wire faults plus a scheduled mid-flow roam of client 0 and an
// uplink blackout window on AP 1 that overlaps running transfers.
func chaosProfile(seed int64) *faults.DataProfile {
	prof := faults.DataChaos(seed)
	prof.Roams = []faults.Roam{{Client: 0, ToAP: 1, At: 1200 * sim.Millisecond}}
	prof.Disconnects = []faults.Window{
		{APID: 1, From: 900 * sim.Millisecond, To: 1100 * sim.Millisecond},
	}
	return prof
}

type chaosResult struct {
	goodputs   []float64 // per client, post-warmup, at chaosDur
	agentStats []fastack.Stats
	faults     FaultCounters
	violations []string
	undrained  int
}

func (r chaosResult) total() float64 {
	t := 0.0
	for _, g := range r.goodputs {
		t += g
	}
	return t
}

// runChaosSeed runs the canonical chaos scenario: two APs in one
// collision domain, both in the given mode, two clients each, seeded
// chaos, runtime invariants armed. After the measured window it runs a
// quiet drain tail so bypassed flows can finish making good on their
// fast-ACK debt before the undrained count is read.
func runChaosSeed(seed int64, mode Mode) chaosResult {
	opt := DefaultOptions()
	opt.Seed = seed
	opt.APModes = []Mode{mode, mode}
	opt.ClientsPerAP = 2
	opt.Warmup = 500 * sim.Millisecond
	opt.DataFaults = chaosProfile(seed)
	opt.FastACK.CheckInvariants = true
	tb := New(opt)
	tb.Run(chaosDur)

	res := chaosResult{
		agentStats: tb.AgentStatsPerAP(),
		faults:     tb.Faults,
	}
	for _, c := range tb.Clients {
		res.goodputs = append(res.goodputs, c.GoodputMbps(chaosDur))
	}
	// Drain tail: no new measurement, just time for in-flight repairs.
	tb.Engine.RunUntil(chaosDrainTo)
	res.violations = tb.AgentViolations()
	res.undrained = tb.UndrainedBypassedFlows()
	return res
}

// TestChaosCampaign is the acceptance gate: >= 100 seeds of the canonical
// chaos scenario (a dozen under -short), each run in both modes. Safety
// invariants are strict per seed; goodput is judged per the calibration
// note at the top of this file.
func TestChaosCampaign(t *testing.T) {
	seeds := int64(100)
	if testing.Short() {
		seeds = 12
	}
	var aggFast, aggBase float64
	var bypasses, drains int64
	worstSeed, worstRatio := int64(-1), 1e9
	for seed := int64(1); seed <= seeds; seed++ {
		fast := runChaosSeed(seed, FastACK)
		base := runChaosSeed(seed, Baseline)

		// Safety: strict, per seed.
		if len(fast.violations) != 0 {
			t.Fatalf("seed %d: invariant violations: %v", seed, fast.violations)
		}
		if fast.undrained != 0 {
			t.Fatalf("seed %d: %d bypassed flows still owe fast-ACK debt after drain tail",
				seed, fast.undrained)
		}
		// The scenario must actually exercise the fault plane.
		if fast.faults.WireDrops == 0 {
			t.Fatalf("seed %d: chaos profile injected no wire loss", seed)
		}

		ft, bt := fast.total(), base.total()
		aggFast += ft
		aggBase += bt
		for _, st := range fast.agentStats {
			bypasses += st.GuardBypasses
			drains += st.GuardDrains
		}
		if bt > 0 {
			if ratio := ft / bt; ratio < worstRatio {
				worstRatio, worstSeed = ratio, seed
			}
		}
	}
	t.Logf("campaign: %d seeds, aggregate FastACK %.1f vs Baseline %.1f Mbps (ratio %.3f), worst seed %d ratio %.3f, bypasses=%d drains=%d",
		seeds, aggFast, aggBase, aggFast/aggBase, worstSeed, worstRatio, bypasses, drains)
	if worstRatio < chaosPerSeed {
		t.Fatalf("seed %d: FastACK goodput collapsed to %.3fx baseline (floor %.2f)",
			worstSeed, worstRatio, chaosPerSeed)
	}
	if aggFast < chaosCampaign*aggBase {
		t.Fatalf("campaign aggregate %.1f Mbps under %.2fx of baseline %.1f Mbps",
			aggFast, chaosCampaign, aggBase)
	}
}

// TestDataChaosDeterminism replays one chaos seed twice and requires
// byte-identical outcomes: same agent counters, same fault tallies, same
// per-client goodput. This is what makes a chaos-campaign failure
// reproducible from nothing but its seed.
func TestDataChaosDeterminism(t *testing.T) {
	a := runChaosSeed(17, FastACK)
	b := runChaosSeed(17, FastACK)
	if len(a.agentStats) != len(b.agentStats) {
		t.Fatalf("agent count diverged: %d vs %d", len(a.agentStats), len(b.agentStats))
	}
	for i := range a.agentStats {
		if a.agentStats[i] != b.agentStats[i] {
			t.Fatalf("AP %d agent stats diverged:\n  %+v\n  %+v", i, a.agentStats[i], b.agentStats[i])
		}
	}
	if a.faults != b.faults {
		t.Fatalf("fault counters diverged:\n  %+v\n  %+v", a.faults, b.faults)
	}
	for i := range a.goodputs {
		if a.goodputs[i] != b.goodputs[i] {
			t.Fatalf("client %d goodput diverged: %v vs %v", i, a.goodputs[i], b.goodputs[i])
		}
	}
	if a.undrained != b.undrained {
		t.Fatalf("undrained count diverged: %d vs %d", a.undrained, b.undrained)
	}
}

// TestRoamingExportImportUnderDataChaos hardens the §5.5.4 roam path:
// client 0 roams between two FastACK APs mid-flow while the full chaos
// profile is active (including an AP-1 uplink blackout that ends just
// before the roam lands). The transferred flow must keep moving bytes on
// the new AP and the run must stay invariant-clean.
func TestRoamingExportImportUnderDataChaos(t *testing.T) {
	opt := DefaultOptions()
	opt.Seed = 8
	opt.APModes = []Mode{FastACK, FastACK}
	opt.ClientsPerAP = 2
	opt.Warmup = 500 * sim.Millisecond
	opt.DataFaults = chaosProfile(8)
	opt.FastACK.CheckInvariants = true
	tb := New(opt)

	const roamer = 0
	var bytesAtRoam int64
	tb.Engine.Schedule(1250*sim.Millisecond, func(*sim.Engine) {
		bytesAtRoam = tb.Clients[roamer].Receiver.Stats().BytesReceived
	})
	tb.Run(chaosDur)

	c := tb.Clients[roamer]
	if c.AP.Index != 1 {
		t.Fatalf("client still on AP %d after scheduled roam", c.AP.Index)
	}
	after := c.Receiver.Stats().BytesReceived - bytesAtRoam
	if after < 256<<10 {
		t.Fatalf("flow moved only %d bytes on the roam-to AP under chaos", after)
	}
	if tb.APs[1].Agent.Stats().FastAcksSent == 0 {
		t.Fatal("roam-to agent never fast-acked")
	}
	tb.Engine.RunUntil(chaosDrainTo)
	if v := tb.AgentViolations(); len(v) != 0 {
		t.Fatalf("invariant violations across roam under chaos: %v", v)
	}
	if n := tb.UndrainedBypassedFlows(); n != 0 {
		t.Fatalf("%d bypassed flows still owe debt after roam under chaos", n)
	}
}
