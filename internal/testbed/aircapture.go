package testbed

import (
	"repro/internal/dot11"
	"repro/internal/mac"
	"repro/internal/pcap"
	"repro/internal/phy"
)

// Air capture: when Options.AirCapture is set, every transmitted A-MPDU's
// subframes and the responding Block Ack are encoded as genuine 802.11
// frames (QoS data headers, LLC/SNAP encapsulation, compressed BA) into a
// LinkTypeIEEE80211 pcap — openable directly in Wireshark. This both
// documents what the simulator puts on the air and exercises the dot11
// codec end to end.

// llcSNAPIPv4 is the LLC/SNAP header that precedes an IPv4 payload in an
// 802.11 data frame body.
var llcSNAPIPv4 = []byte{0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00}

// stationMAC derives a stable 802.11 address for a simulator station.
func stationMAC(id mac.StationID) dot11.MAC {
	return dot11.MAC{0x02, 0x00, 0x00, 0x00, byte(uint16(id) >> 8), byte(id)}
}

// acToTID maps an access category to its primary TID.
func acToTID(ac phy.AccessCategory) uint16 {
	switch ac {
	case phy.ACBK:
		return 1
	case phy.ACVI:
		return 5
	case phy.ACVO:
		return 6
	default:
		return 0
	}
}

// installAirCapture hooks the medium's transmit path.
func (tb *Testbed) installAirCapture(w *pcap.Writer) {
	tb.Medium.OnTransmit = func(fr mac.FrameReport, mpdus []*mac.MPDU) {
		src := stationMAC(fr.Src)
		dst := stationMAC(fr.Dst)
		ba := dot11.BlockAck{RA: src, TA: dst, TID: int(acToTID(fr.AC))}
		baseSet := false

		for _, m := range mpdus {
			seq, ok := m.TIDSeq()
			if !ok {
				continue
			}
			h := dot11.Header{
				Type:    dot11.TypeData,
				Subtype: dot11.SubtypeQoSData,
				FromDS:  true,
				Retry:   m.Retries > 0,
				Addr1:   dst,
				Addr2:   src,
				Addr3:   src, // BSSID
				Seq:     uint16(seq) & 0xfff,
				QoS:     acToTID(fr.AC),
				HasQoS:  true,
			}
			frame := h.Encode(nil)
			frame = append(frame, llcSNAPIPv4...)
			frame = append(frame, m.Dgram.Marshal()...)
			_ = w.WritePacket(fr.At, frame)

			if !baseSet {
				ba.StartSeq = uint16(seq) & 0xfff
				baseSet = true
			}
			ba.SetAcked(uint16(seq) & 0xfff)
		}
		if baseSet {
			_ = w.WritePacket(fr.At, ba.Encode(nil))
		}
	}
}
