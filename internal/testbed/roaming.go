package testbed

import (
	"fmt"

	"repro/internal/packet"
)

// Roam moves a client's association from its current AP to APs[toAP],
// transferring FastACK flow state when both APs run the agent (§5.5.4:
// "FastACK must implement a mechanism to detect the roam and to transfer
// state from the roam-from AP to the roam-to AP"). The wired switch
// immediately re-learns the client's port, so subsequent downlink traffic
// arrives at the roam-to AP; packets still queued at the roam-from AP's
// radio drain over the shared medium and are either heard by the client
// (same room) or recovered by the transferred retransmission cache.
func (tb *Testbed) Roam(clientIdx, toAP int) error {
	if clientIdx < 0 || clientIdx >= len(tb.Clients) {
		return fmt.Errorf("testbed: no client %d", clientIdx)
	}
	if toAP < 0 || toAP >= len(tb.APs) {
		return fmt.Errorf("testbed: no AP %d", toAP)
	}
	c := tb.Clients[clientIdx]
	from := c.AP
	to := tb.APs[toAP]
	if from == to {
		return nil
	}

	// Re-home the association. Frames still queued at the roam-from radio
	// are flushed: the distribution system now delivers through the
	// roam-to AP, and anything lost in the gap is covered by the
	// transferred retransmission cache (or the sender's SACK recovery).
	delete(from.clientsByAddr, c.Addr)
	from.Station.FlushDst(c.Station.ID)
	to.clientsByAddr[c.Addr] = c
	c.AP = to
	tb.Medium.SetSNR(to.Station.ID, c.Station.ID, c.SNR)

	// Transfer FastACK state for every flow addressed to this client: the
	// download flow and, when the client runs an upload, the dormant
	// reverse-direction flow (its server-side ACK stream still addresses
	// the client, so the roam-to agent should inherit what the roam-from
	// agent learned about it).
	if from.Agent != nil && to.Agent != nil {
		flows := []packet.Flow{{
			Proto: packet.ProtoTCP,
			Src:   packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000001), Port: uint16(5000 + c.Index)},
			Dst:   packet.Endpoint{Addr: c.Addr, Port: 80},
		}}
		if c.Uplink != nil {
			flows = append(flows, packet.Flow{
				Proto: packet.ProtoTCP,
				Src:   packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000001), Port: uint16(20000 + c.Index)},
				Dst:   packet.Endpoint{Addr: c.Addr, Port: uplinkClientPort},
			})
		}
		for _, flow := range flows {
			ex, ok := from.Agent.Export(flow)
			if !ok {
				continue
			}
			resync := to.Agent.Import(ex)
			from.Agent.Drop(flow)
			// Re-advertise the window from the new AP so a sender stalled
			// on the roam-from AP's last advertisement resumes. A bypassed
			// or dormant (never-saw-data) flow yields no resync ACK — it
			// does not impersonate the client.
			if resync != nil {
				tb.wireToSender(resync)
			}
			// Re-drive the cache into the roam-to radio: the flushed
			// frames reach the client ahead of any end-to-end repair.
			for _, d := range ex.Cache {
				to.Station.Enqueue(d, c.Station.ID, acForDatagram(d))
			}
		}
	}
	return nil
}
