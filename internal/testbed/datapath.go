package testbed

import (
	"repro/internal/fastack"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// acForDatagram maps DSCP to an access category; testbed bulk flows are
// unmarked, so everything rides Best Effort like the field data (§3.2.4).
func acForDatagram(d *packet.Datagram) phy.AccessCategory {
	switch d.IP.DSCP() >> 3 {
	case 1: // CS1: background
		return phy.ACBK
	case 4, 5: // CS4/CS5: video
		return phy.ACVI
	case 6, 7: // CS6/CS7: voice
		return phy.ACVO
	default:
		return phy.ACBE
	}
}

// fromWire handles a downlink datagram arriving on the AP's Ethernet port.
func (ap *AP) fromWire(d *packet.Datagram) {
	c, ok := ap.clientsByAddr[d.IP.Dst]
	if !ok {
		return // not one of ours (e.g. other AP's client): switch floods away
	}
	ac := acForDatagram(d)

	if ap.Agent == nil {
		ap.trackTCPData(d)
		ap.Station.Enqueue(d, c.Station.ID, ac)
		return
	}

	disp := ap.Agent.HandleDownlink(d)
	ap.route(disp, c, ac)
	if disp.Forward {
		ap.trackTCPData(d)
		if disp.Elevate {
			ap.Station.EnqueueFront(d, c.Station.ID, ac)
		} else {
			ap.Station.Enqueue(d, c.Station.ID, ac)
		}
	}
}

// route dispatches injected packets from a FastACK disposition.
func (ap *AP) route(disp fastack.Disposition, c *Client, ac phy.AccessCategory) {
	for _, up := range disp.ToSender {
		ap.tb.wireToSender(up)
	}
	for _, down := range disp.ToClient {
		// Cache re-drives go to the head of the queue: they fill holes the
		// client is stalled on.
		if cc, ok := ap.clientsByAddr[down.IP.Dst]; ok {
			ap.Station.EnqueueFront(down, cc.Station.ID, ac)
		}
	}
}

// onWirelessAck receives block-ACK feedback for the AP's own transmissions.
func (ap *AP) onWirelessAck(m *mac.MPDU, ok bool, now sim.Time) {
	if ok && ap.tb.warmupDone {
		ap.tb.Lat80211.Add((now - m.EnqueuedAt).Millis())
	}
	if ap.Agent == nil {
		return
	}
	c, found := ap.clientsByAddr[m.Dgram.IP.Dst]
	if found && ap.tb.dataInj.DropBAFeedback(c.Index, now) {
		// The block-ACK feedback never reaches the agent: the frame's fate
		// over the air is unchanged (the client got or did not get it), but
		// the fast-ACK pipeline goes blind for the loss burst.
		ap.tb.Faults.BADrops++
		return
	}
	disp := ap.Agent.HandleWirelessAck(m.Dgram, ok)
	if found {
		ap.route(disp, c, m.AC)
	}
}

// fromWireless handles an uplink MPDU (client -> AP): TCP ACKs and any
// client data headed for the wire.
func (ap *AP) fromWireless(m *mac.MPDU) {
	d := m.Dgram
	if c, found := ap.clientsByAddr[d.IP.Src]; found &&
		ap.tb.dataInj.Disconnected(c.Index, ap.tb.Engine.Now()) {
		// The client's uplink is dead (roam gap, interference shadow):
		// frames transmit but nothing the client says reaches the AP. The
		// fault is mode-independent — a Baseline AP loses the same ACKs.
		ap.tb.Faults.UplinkDrops++
		return
	}
	ap.trackTCPAck(d)

	if ap.Agent == nil {
		ap.tb.wireToSender(d)
		return
	}
	disp := ap.Agent.HandleUplink(d)
	if c, found := ap.clientsByAddr[d.IP.Src]; found {
		ap.route(disp, c, phy.ACBE)
	}
	if disp.Forward {
		ap.tb.wireToSender(d)
	}
}

// fromAir handles an MPDU arriving at a client station.
func (c *Client) fromAir(m *mac.MPDU) {
	d := m.Dgram
	if d.IP.Dst != c.Addr {
		return
	}
	// Bad-hint emulation (§5.7): the MPDU was 802.11-ACKed (we are inside
	// OnReceive, so the block ACK covered it) but the driver loses it
	// before the transport layer sees it. Observed under FastACK's deep
	// pipelining, so only applied when this AP runs the agent; at most
	// one MPDU per A-MPDU (batch of same-instant deliveries) is lost.
	if r := c.tb.Opt.BadHintRate; r > 0 && c.AP.Agent != nil && d.TCP != nil && d.PayloadLen > 0 {
		now := c.tb.Engine.Now()
		if now != c.badBatchAt {
			c.badBatchAt = now
			c.badBatchArm = c.tb.Engine.Rand().Float64() < r
			c.badBatchUsed = false
		}
		if c.badBatchArm && !c.badBatchUsed {
			c.badBatchUsed = true
			return
		}
	}
	switch {
	case d.TCP != nil && d.TCP.DstPort == uplinkClientPort && c.Uplink != nil:
		c.Uplink.Deliver(d) // server's ACK stream for the client's upload
	case d.TCP != nil && c.Receiver != nil:
		c.Receiver.Deliver(d)
	case d.UDP != nil:
		c.UDPBytes += int64(d.PayloadLen)
	}
}

// trackTCPData records the AP-side forward time of a TCP data segment for
// the paper's TCP-latency metric: "the interval between processing a TCP
// data packet and processing the corresponding TCP ACK" (§4.6.2).
func (ap *AP) trackTCPData(d *packet.Datagram) {
	if d.TCP == nil || d.PayloadLen == 0 {
		return
	}
	if len(ap.latPending) > 65536 {
		return // bound memory under pathological loss
	}
	k := latKey{flow: d.Flow(), end: d.TCP.Seq + uint32(d.PayloadLen)}
	if _, dup := ap.latPending[k]; !dup {
		ap.latPending[k] = ap.tb.Engine.Now()
	}
}

// trackTCPAck matches a client TCP ACK against pending data segments.
func (ap *AP) trackTCPAck(d *packet.Datagram) {
	if d.TCP == nil || !d.TCP.HasFlag(packet.FlagACK) || d.PayloadLen > 0 {
		return
	}
	flow := d.Flow().Reverse()
	k := latKey{flow: flow, end: d.TCP.Ack}
	if t0, found := ap.latPending[k]; found {
		if ap.tb.warmupDone {
			ap.tb.LatTCP.Add((ap.tb.Engine.Now() - t0).Millis())
		}
		delete(ap.latPending, k)
	}
	// Cumulative ACKs cover earlier segments too; sweep lazily when the
	// table grows (cheap amortised cleanup).
	if len(ap.latPending) > 4096 {
		for kk := range ap.latPending {
			if kk.flow == flow && seqLEQ(kk.end, d.TCP.Ack) {
				delete(ap.latPending, kk)
			}
		}
	}
}

func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
