// Package testbed reproduces the §5.6 performance lab: one or two 802.11ac
// APs on a shared channel, a configurable population of 3x3 MacBook-class
// clients, a wired TCP sender behind a multigigabit switch, and per-flow
// ixChariot-style bulk transfers. Each AP runs either the baseline TCP
// path (pure bridge) or the FastACK agent.
//
// The testbed wires together the mac, tcpstack, fastack, phy and packet
// substrates on one discrete-event engine and exposes the measurements the
// paper reports: per-client throughput, 802.11 vs TCP latency, cwnd
// traces, A-MPDU aggregate sizes, and airtime shares.
package testbed

import (
	"fmt"

	"repro/internal/fastack"
	"repro/internal/faults"
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/spectrum"
	"repro/internal/stats"
	"repro/internal/tcpstack"
)

// Mode selects an AP's datapath.
type Mode int

const (
	// Baseline bridges TCP unchanged (the paper's "TCP Baseline").
	Baseline Mode = iota
	// FastACK enables the fastack agent on the AP.
	FastACK
)

func (m Mode) String() string {
	if m == FastACK {
		return "FastACK"
	}
	return "Baseline"
}

// Traffic selects the flow type for clients.
type Traffic int

const (
	// TCPBulk runs one saturating TCP download per client.
	TCPBulk Traffic = iota
	// UDPBulk runs a constant-bit-rate UDP download per client (the Fig 15
	// aggregation upper bound).
	UDPBulk
	// TCPUplink runs one saturating TCP upload per client (client →
	// wired server): the reverse-direction regime of Sharon & Alpert,
	// where the AP's downlink carries only the server's ACK stream and a
	// FastACK agent must stay entirely dormant.
	TCPUplink
	// TCPBidirectional runs a download and an upload per client
	// concurrently: downlink data competes with uplink data and both ACK
	// streams for airtime.
	TCPBidirectional
)

// uplinkClientPort is the client-side port of upload flows; the wired
// server side listens on 20000+clientIndex (see wireToSender routing).
const uplinkClientPort = 81

// Options configures a testbed run.
type Options struct {
	Seed    int64
	APModes []Mode // one AP per entry; all share one collision domain
	// ClientsPerAP assigns this many clients to each AP.
	ClientsPerAP int
	Traffic      Traffic
	// UDPRateMbps is the per-client offered load for UDPBulk.
	UDPRateMbps float64

	// WiredDelay is the one-way sender<->AP latency through the switch.
	WiredDelay sim.Time
	// ClientTxDelay models client host-stack latency before transmitting
	// (§5.1: "many client devices take over 2 ms to even begin
	// transmitting TCP ACKs").
	ClientTxDelay sim.Time
	// SNRMin/SNRMax spread clients uniformly across this link-quality
	// range (near vs far clients, Fig 17's low performers).
	SNRMin, SNRMax float64
	// BadHintRate is the probability that a received A-MPDU contains one
	// MPDU that was 802.11-ACKed but never reaches the client's transport
	// layer (§5.7 reports ≈1.5% bad hints on Broadcom Macbooks). The
	// paper observed this under FastACK's deep pipelining, so the testbed
	// applies it only when the serving AP runs FastACK; the agent
	// recovers with local retransmissions.
	BadHintRate float64

	// Fading configures link-SNR dynamics (see fading.go).
	Fading FadingOptions

	// DataFaults, when non-nil, injects seeded data-path chaos (see
	// internal/faults.DataProfile): wired-side segment loss / reorder /
	// duplication / corruption on downlink data, block-ACK feedback loss
	// bursts at FastACK APs, client uplink disconnect windows, and
	// scheduled mid-flow roams. Wired and disconnect faults are
	// mode-independent so Baseline and FastACK runs at one seed face the
	// same adversity.
	DataFaults *faults.DataProfile

	// APSharedPool is the AP driver's shared tx-descriptor pool in MPDUs.
	APSharedPool int
	// APPerClientQueue is the per-STA (per-TID) driver queue depth.
	APPerClientQueue int

	Width spectrum.Width
	NSS   int

	TCP     tcpstack.Config
	FastACK fastack.Config

	// Warmup excludes the initial transient from collected statistics.
	Warmup sim.Time

	// Capture, when non-nil, receives every datagram crossing the APs'
	// wired ports as a raw-IP pcap stream (openable in Wireshark).
	Capture *pcap.Writer
	// AirCapture, when non-nil, receives every transmitted 802.11 frame
	// (QoS data subframes + block ACKs) as a LinkTypeIEEE80211 pcap.
	AirCapture *pcap.Writer
}

// DefaultOptions mirrors the paper's testbed: 802.11ac wave-2 3x3 AP,
// 80 MHz, 3x3 clients, a few ms of client host-stack latency.
func DefaultOptions() Options {
	return Options{
		Seed:             1,
		APModes:          []Mode{Baseline},
		ClientsPerAP:     10,
		Traffic:          TCPBulk,
		UDPRateMbps:      120,
		WiredDelay:       500 * sim.Microsecond,
		ClientTxDelay:    4 * sim.Millisecond,
		SNRMin:           24,
		SNRMax:           44,
		Width:            spectrum.W80,
		NSS:              3,
		TCP:              tcpstack.DefaultConfig(),
		FastACK:          fastack.DefaultConfig(),
		Fading:           DefaultFading(),
		APSharedPool:     2048,
		APPerClientQueue: 64,
		Warmup:           2 * sim.Second,
	}
}

// AP is one access point: a MAC station plus the wired port and an
// optional FastACK agent.
type AP struct {
	tb      *Testbed
	Index   int
	Mode    Mode
	Station *mac.Station
	Agent   *fastack.Agent // nil for Baseline

	clientsByAddr map[packet.IPv4Addr]*Client

	// tcpLatency tracking (Fig 10 / §4.6.2): data seq end -> forward time.
	latPending map[latKey]sim.Time
}

type latKey struct {
	flow packet.Flow
	end  uint32
}

// Client is one wireless station running a receiver endpoint.
type Client struct {
	tb       *Testbed
	Index    int
	AP       *AP
	Station  *mac.Station
	Addr     packet.IPv4Addr
	Receiver *tcpstack.Receiver // TCPBulk / TCPBidirectional download
	Uplink   *tcpstack.Sender   // TCPUplink / TCPBidirectional upload
	SNR      float64

	UDPBytes    int64 // UDPBulk sink
	warmupBytes int64 // bytes received before the warmup cutoff
	wbLatched   bool

	// Bad-hint batching: MPDUs delivered at the same instant belong to
	// one A-MPDU; at most one per affected frame is lost to the driver.
	badBatchAt   sim.Time
	badBatchArm  bool
	badBatchUsed bool
}

// Sender is the wired-side endpoint bundle for one client: the downlink
// TCP/UDP source and, for uplink traffic, the server-side receiver of the
// client's upload.
type Sender struct {
	Client *Client
	TCP    *tcpstack.Sender
	UDP    *tcpstack.UDPSource
	// UpRX terminates the client's upload (TCPUplink / TCPBidirectional).
	UpRX *tcpstack.Receiver
	// CwndTrace samples (time, cwnd segments) for Fig 14.
	CwndTrace []CwndSample

	warmupUpBytes int64
	upLatched     bool
}

func (s *Sender) latchWarmup() {
	if s.UpRX != nil {
		s.warmupUpBytes = s.UpRX.Stats().BytesReceived
		s.upLatched = true
	}
}

// CwndSample is one tcp_probe-style observation.
type CwndSample struct {
	At       sim.Time
	Segments int
}

// Testbed is a fully wired simulation instance.
type Testbed struct {
	Opt     Options
	Engine  *sim.Engine
	Medium  *mac.Medium
	APs     []*AP
	Clients []*Client
	Senders []*Sender

	// Measurement collectors (post-warmup).
	Lat80211     *stats.Sample         // ms, AP downlink MPDU wire->802.11-ACK
	LatTCP       *stats.Sample         // ms, AP data-forward -> corresponding TCP ACK seen
	AggAP        map[int]*stats.Sample // per-AP A-MPDU sizes (downlink data frames)
	AggPerClient map[int]*stats.Sample // per-client aggregate sizes

	// Faults counts injected data-path faults (zero without DataFaults).
	Faults FaultCounters

	dataInj    *faults.DataInjector
	warmupDone bool
}

// FaultCounters tallies the data-path faults actually injected.
type FaultCounters struct {
	WireDrops    int64
	WireReorders int64
	WireDups     int64
	WireCorrupts int64
	BADrops      int64 // block-ACK feedback events lost before the agent
	UplinkDrops  int64 // client uplink frames lost to disconnect windows
}

// New constructs and wires a testbed.
func New(opt Options) *Testbed {
	if len(opt.APModes) == 0 {
		opt.APModes = []Mode{Baseline}
	}
	if opt.ClientsPerAP <= 0 {
		opt.ClientsPerAP = 1
	}
	if opt.FastACK.FlowQueueBudget == 0 && opt.APPerClientQueue > 0 {
		// Hold each flow's driver queue just below the per-STA cap, and
		// keep the sum across flows inside the shared pool.
		opt.FastACK.FlowQueueBudget = (opt.APPerClientQueue - 8) * 1448
		if opt.APSharedPool > 0 {
			if share := opt.APSharedPool * 1448 * 9 / 10 / opt.ClientsPerAP; share < opt.FastACK.FlowQueueBudget {
				opt.FastACK.FlowQueueBudget = share
			}
		}
	} else if opt.APPerClientQueue > 0 {
		// Invariant: the agent must never admit more per flow than the
		// per-STA driver queue can hold, or its own vouched-for packets
		// tail-drop and strand the sender on RTOs.
		if max := (opt.APPerClientQueue - 8) * 1448; opt.FastACK.FlowQueueBudget > max {
			opt.FastACK.FlowQueueBudget = max
		}
	}
	tb := &Testbed{
		Opt:          opt,
		Engine:       sim.NewEngine(opt.Seed),
		Lat80211:     stats.NewSample(4096),
		LatTCP:       stats.NewSample(4096),
		AggAP:        map[int]*stats.Sample{},
		AggPerClient: map[int]*stats.Sample{},
	}
	tb.dataInj = faults.NewData(opt.DataFaults)
	tb.Medium = mac.NewMedium(tb.Engine, 35)
	tb.Medium.OnFrame = tb.onFrame
	if opt.AirCapture != nil {
		tb.installAirCapture(opt.AirCapture)
	}

	for i, mode := range opt.APModes {
		ap := &AP{
			tb: tb, Index: i, Mode: mode,
			clientsByAddr: map[packet.IPv4Addr]*Client{},
			latPending:    map[latKey]sim.Time{},
		}
		ap.Station = tb.Medium.AddStation(mac.StationConfig{
			Name: fmt.Sprintf("ap%d", i), NSS: opt.NSS, Width: opt.Width,
			GI: phy.SGI, IsAP: true,
			// Driver limits of a wave-2 AP: a shallow per-STA (per-TID)
			// queue — one block-ack window plus change — and a shared
			// tx-descriptor pool. ACK-clocked baseline senders overrun
			// the per-STA queue in bursts (tail drops -> cwnd sawtooth,
			// drained queues, small aggregates); the FastACK agent's
			// per-flow queue budget holds it just below the cap.
			QueueLimit:      opt.APPerClientQueue,
			SharedPoolLimit: opt.APSharedPool,
		})
		if mode == FastACK {
			ap.Agent = fastack.New(opt.FastACK, tb.Engine.Now)
		}
		st := ap.Station
		st.OnReceive = func(m *mac.MPDU, now sim.Time) { ap.fromWireless(m) }
		st.OnDelivered = func(m *mac.MPDU, ok bool, now sim.Time) { ap.onWirelessAck(m, ok, now) }
		tb.APs = append(tb.APs, ap)
		tb.AggAP[i] = stats.NewSample(4096)
	}

	clientIdx := 0
	for _, ap := range tb.APs {
		for j := 0; j < opt.ClientsPerAP; j++ {
			tb.addClient(ap, clientIdx)
			clientIdx++
		}
	}
	return tb
}

func (tb *Testbed) addClient(ap *AP, idx int) {
	opt := tb.Opt
	snr := opt.SNRMin
	if opt.SNRMax > opt.SNRMin {
		snr += tb.Engine.Rand().Float64() * (opt.SNRMax - opt.SNRMin)
	}
	c := &Client{
		tb: tb, Index: idx, AP: ap, SNR: snr,
		Addr: packet.IPv4AddrFromUint32(0x0a000100 + uint32(idx)), // 10.0.1.x
	}
	c.Station = tb.Medium.AddStation(mac.StationConfig{
		Name: fmt.Sprintf("c%d", idx), NSS: opt.NSS, Width: opt.Width,
		GI: phy.SGI, TxDelay: opt.ClientTxDelay,
	})
	tb.Medium.SetSNR(ap.Station.ID, c.Station.ID, snr)
	c.Station.OnReceive = func(m *mac.MPDU, now sim.Time) { c.fromAir(m) }
	ap.clientsByAddr[c.Addr] = c
	tb.Clients = append(tb.Clients, c)
	tb.AggPerClient[idx] = stats.NewSample(1024)

	serverEP := packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000001), Port: uint16(5000 + idx)}
	clientEP := packet.Endpoint{Addr: c.Addr, Port: 80}
	snd := &Sender{Client: c}
	switch opt.Traffic {
	case UDPBulk:
		// Started in Run so the ticker aligns with t=0.
		snd.UDP = nil
	case TCPUplink:
		// Upload only: no downlink flow.
	default:
		snd.TCP = tcpstack.NewSender(tb.Engine, opt.TCP, serverEP, clientEP, func(d *packet.Datagram) {
			// Route through the client's *current* AP: after a roam, the
			// switch forwards to the roam-to port (§5.5.4).
			tb.wireToAP(c.AP, d)
		})
		snd.TCP.OnCwnd = func(now sim.Time, cwndBytes int) {
			snd.CwndTrace = append(snd.CwndTrace, CwndSample{At: now, Segments: cwndBytes / opt.TCP.MSS})
		}
		c.Receiver = tcpstack.NewReceiver(tb.Engine, opt.TCP, clientEP, serverEP, func(d *packet.Datagram) {
			c.Station.Enqueue(d, c.AP.Station.ID, phy.ACBE)
		})
	}
	if opt.Traffic == TCPUplink || opt.Traffic == TCPBidirectional {
		// Reverse-direction transfer: the client is the TCP sender, a
		// wired server endpoint terminates it. Uplink data rides the
		// client's station queue like its ACKs; the server's pure-ACK
		// stream crosses the AP as ordinary (payload-free) downlink.
		upCli := packet.Endpoint{Addr: c.Addr, Port: uplinkClientPort}
		upSrv := packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000001), Port: uint16(20000 + idx)}
		c.Uplink = tcpstack.NewSender(tb.Engine, opt.TCP, upCli, upSrv, func(d *packet.Datagram) {
			c.Station.Enqueue(d, c.AP.Station.ID, phy.ACBE)
		})
		snd.UpRX = tcpstack.NewReceiver(tb.Engine, opt.TCP, upSrv, upCli, func(d *packet.Datagram) {
			tb.wireToAP(c.AP, d)
		})
	}
	tb.Senders = append(tb.Senders, snd)
}

// wireToAP delivers a datagram from the wired sender to the AP after the
// switch latency, applying any configured wired-side data faults to TCP
// payload segments (handshake and pure-ACK control traffic is spared so a
// chaos run still converges through connection setup).
func (tb *Testbed) wireToAP(ap *AP, d *packet.Datagram) {
	tb.capture(d)
	delay := tb.Opt.WiredDelay
	if dj := tb.dataInj; dj != nil && d.TCP != nil && d.PayloadLen > 0 {
		ci := clientIndexOf(d.IP.Dst)
		seq := d.TCP.Seq
		att := dj.SegmentArrival(ci, seq)
		if dj.DropSegment(ci, seq, att) {
			tb.Faults.WireDrops++
			return
		}
		if dj.CorruptSegment(ci, seq, att) {
			tb.Faults.WireCorrupts++
			d = corruptSegment(d, dj.CorruptU32(ci, seq, 0, att))
		}
		if extra, ok := dj.ReorderSegment(ci, seq, att); ok {
			tb.Faults.WireReorders++
			delay += extra
		}
		if dj.DuplicateSegment(ci, seq, att) {
			tb.Faults.WireDups++
			dup := d.Clone()
			tb.Engine.After(delay+50*sim.Microsecond, func(e *sim.Engine) {
				ap.fromWire(dup)
			})
		}
	}
	tb.Engine.After(delay, func(e *sim.Engine) {
		ap.fromWire(d)
	})
}

// clientIndexOf recovers the client index from its 10.0.1.x address.
func clientIndexOf(a packet.IPv4Addr) int {
	v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	return int(v - 0x0a000100)
}

// corruptSegment returns a clone of d with its TCP sequence number mangled
// the way a corrupted-but-checksum-colliding header presents: a jump far
// beyond the receive window, a fallback below it, or bit garbage. The
// original datagram is untouched (the sender still owns it).
func corruptSegment(d *packet.Datagram, garbage uint32) *packet.Datagram {
	c := d.Clone()
	switch garbage % 3 {
	case 0:
		c.TCP.Seq += 32<<20 + garbage%(1<<20) // implausible forward jump
	case 1:
		c.TCP.Seq -= 1 << 16 // stale: far below anything outstanding
	default:
		c.TCP.Seq ^= garbage // wild bits
	}
	return c
}

// capture appends a datagram to the optional pcap stream.
func (tb *Testbed) capture(d *packet.Datagram) {
	if tb.Opt.Capture == nil {
		return
	}
	// Capture errors are surfaced by the writer's own state; a broken
	// sink must not perturb the experiment.
	_ = tb.Opt.Capture.WritePacket(tb.Engine.Now(), d.Marshal())
}

// wireToSender delivers a datagram from the AP to the wired side. Uplink
// *data* segments face the same wired fault classes downlink data does,
// keyed by a direction-salted coordinate so the two directions draw
// independent fault streams; ACK and control traffic is spared, as on the
// downlink wire.
func (tb *Testbed) wireToSender(d *packet.Datagram) {
	tb.capture(d)
	delay := tb.Opt.WiredDelay
	if dj := tb.dataInj; dj != nil && d.TCP != nil && d.PayloadLen > 0 {
		ci := faults.UplinkCoord(clientIndexOf(d.IP.Src))
		seq := d.TCP.Seq
		att := dj.SegmentArrival(ci, seq)
		if dj.DropSegment(ci, seq, att) {
			tb.Faults.WireDrops++
			return
		}
		if dj.CorruptSegment(ci, seq, att) {
			tb.Faults.WireCorrupts++
			d = corruptSegment(d, dj.CorruptU32(ci, seq, 0, att))
		}
		if extra, ok := dj.ReorderSegment(ci, seq, att); ok {
			tb.Faults.WireReorders++
			delay += extra
		}
		if dj.DuplicateSegment(ci, seq, att) {
			tb.Faults.WireDups++
			dup := d.Clone()
			tb.Engine.After(delay+50*sim.Microsecond, func(e *sim.Engine) {
				tb.deliverToSender(dup)
			})
		}
	}
	tb.Engine.After(delay, func(e *sim.Engine) {
		tb.deliverToSender(d)
	})
}

// deliverToSender routes on destination port: download senders listen on
// 10.0.0.1:5000+i, upload receivers on 10.0.0.1:20000+i.
func (tb *Testbed) deliverToSender(d *packet.Datagram) {
	if d.TCP == nil {
		return
	}
	if i := int(d.TCP.DstPort) - 20000; i >= 0 && i < len(tb.Senders) && tb.Senders[i].UpRX != nil {
		tb.Senders[i].UpRX.Deliver(d)
		return
	}
	i := int(d.TCP.DstPort) - 5000
	if i >= 0 && i < len(tb.Senders) && tb.Senders[i].TCP != nil {
		tb.Senders[i].TCP.Deliver(d)
	}
}

// Run executes the scenario for the given duration.
func (tb *Testbed) Run(duration sim.Time) {
	opt := tb.Opt
	tb.startFading()
	// Start flows with a small stagger to avoid synchronized handshakes.
	for i, snd := range tb.Senders {
		switch {
		case snd.TCP != nil:
			s := snd.TCP
			tb.Engine.Schedule(sim.Time(i)*sim.Millisecond, func(e *sim.Engine) { s.Start() })
		case opt.Traffic == UDPBulk:
			c := snd.Client
			serverEP := packet.Endpoint{Addr: packet.IPv4AddrFromUint32(0x0a000001), Port: uint16(5000 + c.Index)}
			clientEP := packet.Endpoint{Addr: c.Addr, Port: 80}
			ap := c.AP
			snd.UDP = tcpstack.NewUDPSource(tb.Engine, serverEP, clientEP, tcpstack.MSS, opt.UDPRateMbps,
				func(d *packet.Datagram) { tb.wireToAP(ap, d) })
		}
		if up := snd.Client.Uplink; up != nil {
			u := up
			tb.Engine.Schedule(sim.Time(i)*sim.Millisecond+500*sim.Microsecond,
				func(e *sim.Engine) { u.Start() })
		}
	}
	// Scheduled mid-flow roams from the data-fault profile.
	for _, r := range tb.dataInj.Roams() {
		r := r
		tb.Engine.Schedule(r.At, func(e *sim.Engine) {
			if r.Client < len(tb.Clients) && r.ToAP < len(tb.APs) {
				_ = tb.Roam(r.Client, r.ToAP)
			}
		})
	}
	// Latch warmup counters.
	tb.Engine.Schedule(opt.Warmup, func(e *sim.Engine) {
		tb.warmupDone = true
		for _, c := range tb.Clients {
			c.latchWarmup()
		}
		for _, snd := range tb.Senders {
			snd.latchWarmup()
		}
	})
	tb.Engine.RunUntil(duration)
}

func (c *Client) latchWarmup() {
	if c.Receiver != nil {
		c.warmupBytes = c.Receiver.Stats().BytesReceived
	} else {
		c.warmupBytes = c.UDPBytes
	}
	c.wbLatched = true
}

// GoodputMbps returns the client's post-warmup application goodput.
func (c *Client) GoodputMbps(duration sim.Time) float64 {
	var total int64
	if c.Receiver != nil {
		total = c.Receiver.Stats().BytesReceived
	} else {
		total = c.UDPBytes
	}
	span := duration - c.tb.Opt.Warmup
	if !c.wbLatched || span <= 0 {
		span = duration
	}
	bytes := total - c.warmupBytes
	return float64(bytes) * 8 / span.Seconds() / 1e6
}

// UplinkGoodputMbps returns the client's post-warmup upload goodput as
// measured at the wired server (zero when the traffic mix has no uplink).
func (c *Client) UplinkGoodputMbps(duration sim.Time) float64 {
	snd := c.tb.Senders[c.Index]
	if snd.UpRX == nil {
		return 0
	}
	total := snd.UpRX.Stats().BytesReceived
	span := duration - c.tb.Opt.Warmup
	if !snd.upLatched || span <= 0 {
		span = duration
	}
	return float64(total-snd.warmupUpBytes) * 8 / span.Seconds() / 1e6
}

// AgentStatsPerAP snapshots each AP's FastACK agent counters (a zero
// Stats for Baseline APs), in AP order — the chaos suite's determinism
// fingerprint.
func (tb *Testbed) AgentStatsPerAP() []fastack.Stats {
	out := make([]fastack.Stats, len(tb.APs))
	for i, ap := range tb.APs {
		if ap.Agent != nil {
			out[i] = ap.Agent.Stats()
		}
	}
	return out
}

// InvariantViolations sums runtime safety-invariant trips across every
// FastACK agent (requires Options.FastACK.CheckInvariants).
func (tb *Testbed) InvariantViolations() int64 {
	var n int64
	for _, ap := range tb.APs {
		if ap.Agent != nil {
			n += ap.Agent.Stats().InvariantViolations
		}
	}
	return n
}

// AgentViolations collects the retained invariant-violation messages from
// every FastACK agent.
func (tb *Testbed) AgentViolations() []string {
	var out []string
	for _, ap := range tb.APs {
		if ap.Agent != nil {
			out = append(out, ap.Agent.Violations()...)
		}
	}
	return out
}

// UndrainedBypassedFlows counts flows across all agents that were
// bypassed by the guard and still carry fast-ACK debt. After a drain
// window with the clients reachable, a healthy fleet reads zero.
func (tb *Testbed) UndrainedBypassedFlows() int {
	n := 0
	for _, ap := range tb.APs {
		if ap.Agent != nil {
			n += ap.Agent.UndrainedBypassedFlows()
		}
	}
	return n
}

// onFrame feeds the aggregation collectors.
func (tb *Testbed) onFrame(fr mac.FrameReport) {
	if !tb.warmupDone || fr.Collision {
		return
	}
	for _, ap := range tb.APs {
		if fr.Src == ap.Station.ID {
			tb.AggAP[ap.Index].Add(float64(fr.AggSize))
			for _, c := range tb.Clients {
				if c.Station.ID == fr.Dst {
					tb.AggPerClient[c.Index].Add(float64(fr.AggSize))
					break
				}
			}
			return
		}
	}
}
