package testbed

import (
	"bytes"
	"testing"

	"repro/internal/dot11"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stats"
)

// run executes a testbed and returns it; durations are kept short so the
// full suite stays fast, with warmup trimmed accordingly.
func run(t *testing.T, mutate func(*Options)) (*Testbed, sim.Time) {
	t.Helper()
	opt := DefaultOptions()
	// Baseline TCP ramps slowly through the shallow per-STA queues, so
	// give runs enough post-warmup steady state to measure.
	opt.Warmup = 2 * sim.Second
	if mutate != nil {
		mutate(&opt)
	}
	dur := 8 * sim.Second
	tb := New(opt)
	tb.Run(dur)
	return tb, dur
}

func aggregate(tb *Testbed, dur sim.Time) float64 {
	total := 0.0
	for _, c := range tb.Clients {
		total += c.GoodputMbps(dur)
	}
	return total
}

func TestBaselineDeliversTraffic(t *testing.T) {
	tb, dur := run(t, func(o *Options) { o.ClientsPerAP = 5 })
	total := aggregate(tb, dur)
	if total < 100 {
		t.Fatalf("baseline aggregate %f Mbps, expected hundreds", total)
	}
	for i, c := range tb.Clients {
		if c.GoodputMbps(dur) <= 0 {
			t.Fatalf("client %d starved", i)
		}
	}
	// TCP state must be sane: no runaway retransmissions on this medium.
	for i, snd := range tb.Senders {
		st := snd.TCP.Stats()
		if st.BytesAcked == 0 {
			t.Fatalf("flow %d never acked", i)
		}
	}
}

func TestFastACKOutperformsBaseline(t *testing.T) {
	// The paper's headline (Fig 16): FastACK wins under multi-client
	// contention. Identical seeds and channel realisations.
	var tput [2]float64
	var agg [2]float64
	for i, mode := range []Mode{Baseline, FastACK} {
		tb, dur := run(t, func(o *Options) {
			o.ClientsPerAP = 10
			o.APModes = []Mode{mode}
			o.BadHintRate = 0.015
		})
		tput[i] = aggregate(tb, dur)
		agg[i] = tb.AggAP[0].Mean()
	}
	if tput[1] <= tput[0] {
		t.Fatalf("FastACK %f <= baseline %f Mbps", tput[1], tput[0])
	}
	if agg[1] <= agg[0] {
		t.Fatalf("FastACK aggregation %f <= baseline %f", agg[1], agg[0])
	}
}

func TestLatencyGapGrowsWithClients(t *testing.T) {
	// Fig 10: TCP latency exceeds 802.11 latency, and the medium gets
	// slower as the client count rises.
	gapAt := func(n int) (l80211, ltcp float64) {
		tb, _ := run(t, func(o *Options) { o.ClientsPerAP = n })
		return tb.Lat80211.Mean(), tb.LatTCP.Mean()
	}
	s5, t5 := gapAt(5)
	s20, t20 := gapAt(20)
	if t5 < s5 || t20 < s20 {
		t.Fatalf("TCP latency below 802.11 latency: %f/%f %f/%f", s5, t5, s20, t20)
	}
	if t20 <= t5 {
		t.Fatalf("TCP latency did not grow with clients: %f -> %f", t5, t20)
	}
}

func TestCwndTraces(t *testing.T) {
	tb, _ := run(t, func(o *Options) {
		o.ClientsPerAP = 4
		o.APModes = []Mode{FastACK}
	})
	for i, snd := range tb.Senders {
		if len(snd.CwndTrace) == 0 {
			t.Fatalf("flow %d has no cwnd trace", i)
		}
		last := snd.CwndTrace[len(snd.CwndTrace)-1]
		if last.Segments <= 0 || last.Segments > tb.Opt.TCP.MaxCwnd {
			t.Fatalf("flow %d cwnd %d out of range", i, last.Segments)
		}
	}
}

func TestUDPTrafficMode(t *testing.T) {
	// Oversubscribed CBR: offered load beyond the medium's capacity keeps
	// the driver queues full, which is why UDP is Fig 15's aggregation
	// upper bound.
	tb, dur := run(t, func(o *Options) {
		o.ClientsPerAP = 5
		o.Traffic = UDPBulk
		o.UDPRateMbps = 150
	})
	for i, c := range tb.Clients {
		got := c.GoodputMbps(dur)
		if got <= 5 || got > 155 {
			t.Fatalf("UDP client %d goodput %f, offered 150", i, got)
		}
	}
	// UDP aggregates approach the BA window (Fig 15's upper bound).
	if tb.AggAP[0].Mean() < 30 {
		t.Fatalf("UDP mean aggregate %f", tb.AggAP[0].Mean())
	}
}

func TestMultiAPSharing(t *testing.T) {
	tb, dur := run(t, func(o *Options) {
		o.APModes = []Mode{Baseline, Baseline}
		o.ClientsPerAP = 4
	})
	var ap1, ap2 float64
	for _, c := range tb.Clients {
		if c.AP.Index == 0 {
			ap1 += c.GoodputMbps(dur)
		} else {
			ap2 += c.GoodputMbps(dur)
		}
	}
	if ap1 <= 0 || ap2 <= 0 {
		t.Fatalf("an AP starved: %f / %f", ap1, ap2)
	}
	// CSMA sharing: neither AP monopolizes the joint total (per-flow TCP
	// dynamics make the split noisy in short runs).
	if ap1/(ap1+ap2) > 0.8 || ap2/(ap1+ap2) > 0.8 {
		t.Fatalf("unfair split: %f / %f", ap1, ap2)
	}
}

func TestFairnessIndexComputable(t *testing.T) {
	tb, dur := run(t, func(o *Options) {
		o.ClientsPerAP = 8
		o.APModes = []Mode{FastACK}
		o.BadHintRate = 0.015
	})
	var xs []float64
	for _, c := range tb.Clients {
		xs = append(xs, c.GoodputMbps(dur))
	}
	j := stats.JainFairness(xs)
	if j < 0.4 || j > 1 {
		t.Fatalf("Jain index %f", j)
	}
}

func TestBadHintsRecoveredLocally(t *testing.T) {
	tb, dur := run(t, func(o *Options) {
		o.ClientsPerAP = 5
		o.APModes = []Mode{FastACK}
		o.BadHintRate = 0.05 // exaggerated to force many bad hints
	})
	ag := tb.APs[0].Agent.Stats()
	if ag.BadHints == 0 {
		t.Fatal("no bad hints at 10% rate")
	}
	if ag.LocalRetransmits == 0 {
		t.Fatal("bad hints never repaired locally")
	}
	if aggregate(tb, dur) < 40 {
		t.Fatalf("throughput collapsed under bad hints: %f", aggregate(tb, dur))
	}
	// End-to-end retransmissions stay rare: the agent absorbs the loss.
	var rtx int64
	for _, snd := range tb.Senders {
		rtx += snd.TCP.Stats().Retransmits
	}
	if rtx > int64(50*len(tb.Senders)) {
		t.Fatalf("sender retransmissions leaked through: %d", rtx)
	}
}

func TestIdenticalChannelAcrossModes(t *testing.T) {
	// The per-client fade process must not depend on the AP mode, so A/B
	// comparisons run over the same air.
	snr := func(mode Mode) []float64 {
		opt := DefaultOptions()
		opt.ClientsPerAP = 3
		opt.APModes = []Mode{mode}
		tb := New(opt)
		tb.Run(2 * sim.Second)
		var out []float64
		for _, c := range tb.Clients {
			out = append(out, tb.Medium.SNR(c.AP.Station.ID, c.Station.ID))
		}
		return out
	}
	a, b := snr(Baseline), snr(FastACK)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("client %d channel diverged across modes: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestAgentSuppressionCountsMatch(t *testing.T) {
	tb, _ := run(t, func(o *Options) {
		o.ClientsPerAP = 3
		o.APModes = []Mode{FastACK}
	})
	ag := tb.APs[0].Agent.Stats()
	if ag.FastAcksSent == 0 {
		t.Fatal("no fast ACKs in FastACK mode")
	}
	if ag.ClientAcksDropped == 0 {
		t.Fatal("no client ACKs suppressed")
	}
	if ag.FlowsTracked != 3 {
		t.Fatalf("tracked %d flows, want 3", ag.FlowsTracked)
	}
}

func TestRoamingMidFlow(t *testing.T) {
	// A client roams from a FastACK AP to another FastACK AP mid-flow;
	// the transferred agent state keeps the transfer alive without an
	// RTO storm (§5.5.4).
	opt := DefaultOptions()
	opt.APModes = []Mode{FastACK, FastACK}
	opt.ClientsPerAP = 3
	opt.Warmup = sim.Second
	tb := New(opt)
	const roamer = 0
	var bytesAtRoam int64
	tb.Engine.Schedule(3*sim.Second, func(*sim.Engine) {
		bytesAtRoam = tb.Clients[roamer].Receiver.Stats().BytesReceived
		if err := tb.Roam(roamer, 1); err != nil {
			t.Errorf("roam: %v", err)
		}
	})
	tb.Run(6 * sim.Second)

	c := tb.Clients[roamer]
	if c.AP.Index != 1 {
		t.Fatalf("client still on AP %d", c.AP.Index)
	}
	after := c.Receiver.Stats().BytesReceived - bytesAtRoam
	if after < 1<<20 {
		t.Fatalf("flow moved only %d bytes after the roam", after)
	}
	// The roam-to agent must now be tracking the flow (imported or
	// re-adopted) and issuing fast ACKs for it.
	if tb.APs[1].Agent.Stats().FastAcksSent == 0 {
		t.Fatal("roam-to agent never fast-acked")
	}
	st := tb.Senders[roamer].TCP.Stats()
	if st.Timeouts > 3 {
		t.Fatalf("roam caused an RTO storm: %d timeouts", st.Timeouts)
	}
}

func TestRoamErrors(t *testing.T) {
	tb := New(DefaultOptions())
	if err := tb.Roam(-1, 0); err == nil {
		t.Fatal("bad client accepted")
	}
	if err := tb.Roam(0, 5); err == nil {
		t.Fatal("bad AP accepted")
	}
	if err := tb.Roam(0, 0); err != nil {
		t.Fatalf("no-op roam errored: %v", err)
	}
}

func TestAirCaptureProducesValidFrames(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeIEEE80211)
	opt := DefaultOptions()
	opt.ClientsPerAP = 2
	opt.AirCapture = w
	opt.Warmup = 100 * sim.Millisecond
	tb := New(opt)
	tb.Run(500 * sim.Millisecond)
	if w.Packets() < 100 {
		t.Fatalf("captured only %d frames", w.Packets())
	}

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Link != pcap.LinkTypeIEEE80211 {
		t.Fatalf("link type %d", r.Link)
	}
	data, bas := 0, 0
	for i := 0; i < 200; i++ {
		_, frame, err := r.Next()
		if err != nil {
			break
		}
		h, body, err := dot11.DecodeHeader(frame)
		if err != nil {
			t.Fatalf("frame %d undecodable: %v", i, err)
		}
		switch {
		case h.Type == dot11.TypeData:
			data++
			// LLC/SNAP then a decodable IPv4 datagram.
			if len(body) < 8 || body[6] != 0x08 || body[7] != 0x00 {
				t.Fatalf("frame %d missing LLC/SNAP: %x", i, body[:8])
			}
			if _, err := packet.Unmarshal(body[8:]); err != nil {
				t.Fatalf("frame %d bad IP payload: %v", i, err)
			}
		case h.Type == dot11.TypeControl && h.Subtype == dot11.SubtypeBlockAck:
			bas++
			if _, err := dot11.DecodeBlockAck(frame); err != nil {
				t.Fatalf("frame %d bad BA: %v", i, err)
			}
		}
	}
	if data == 0 || bas == 0 {
		t.Fatalf("capture lacks data (%d) or block acks (%d)", data, bas)
	}
}
