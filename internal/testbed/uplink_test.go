package testbed

import (
	"testing"

	"repro/internal/fastack"
	"repro/internal/sim"
)

// Uplink-heavy and reverse-direction scenarios (Sharon & Alpert's regime):
// when the client is the TCP sender, the AP's downlink carries only the
// server's pure-ACK stream, and a FastACK agent must not manufacture or
// suppress a single ACK. The tests pin that dormancy — the agent tracks
// the reverse flows (it sees their SYN-ACKs) but never promotes them —
// and that goodput matches the pass-through baseline.

const (
	uplinkDur    = 4 * sim.Second
	uplinkWarmup = 1 * sim.Second
)

func runUplink(t *testing.T, mutate func(*Options)) *Testbed {
	t.Helper()
	opt := DefaultOptions()
	opt.Traffic = TCPUplink
	opt.ClientsPerAP = 3
	opt.Warmup = uplinkWarmup
	opt.FastACK.CheckInvariants = true
	if mutate != nil {
		mutate(&opt)
	}
	tb := New(opt)
	tb.Run(uplinkDur)
	return tb
}

func uplinkAggregate(tb *Testbed) float64 {
	total := 0.0
	for _, c := range tb.Clients {
		total += c.UplinkGoodputMbps(uplinkDur)
	}
	return total
}

func dormancy(t *testing.T, tb *Testbed) fastack.Stats {
	t.Helper()
	var sum fastack.Stats
	for _, st := range tb.AgentStatsPerAP() {
		sum.FastAcksSent += st.FastAcksSent
		sum.ClientAcksDropped += st.ClientAcksDropped
		sum.LocalRetransmits += st.LocalRetransmits
		sum.GuardBypasses += st.GuardBypasses
		sum.FlowsTracked += st.FlowsTracked
	}
	if sum.FastAcksSent != 0 {
		t.Fatalf("agent forged %d ACKs for uplink-dominant flows", sum.FastAcksSent)
	}
	if sum.ClientAcksDropped != 0 {
		t.Fatalf("agent suppressed %d packets of an uplink ACK stream", sum.ClientAcksDropped)
	}
	if sum.LocalRetransmits != 0 {
		t.Fatalf("agent locally retransmitted %d segments of a dormant flow", sum.LocalRetransmits)
	}
	if v := tb.AgentViolations(); len(v) != 0 {
		t.Fatalf("invariant violations on uplink traffic: %v", v)
	}
	return sum
}

func TestUplinkFastAckStaysDormant(t *testing.T) {
	tb := runUplink(t, func(o *Options) { o.APModes = []Mode{FastACK} })
	for i, c := range tb.Clients {
		if g := c.UplinkGoodputMbps(uplinkDur); g <= 1 {
			t.Fatalf("uplink client %d goodput %f Mbps", i, g)
		}
	}
	sum := dormancy(t, tb)
	// Dormant is not blind: the agent must have seen and tracked the
	// reverse flows (their SYN-ACKs cross it), or the scenario never
	// exercised the promotion gate at all.
	if sum.FlowsTracked < int64(len(tb.Clients)) {
		t.Fatalf("agent tracked %d flows, want >= %d reverse flows",
			sum.FlowsTracked, len(tb.Clients))
	}
}

func TestUplinkGoodputParityWithBaseline(t *testing.T) {
	var got [2]float64
	for i, mode := range []Mode{Baseline, FastACK} {
		tb := runUplink(t, func(o *Options) { o.APModes = []Mode{mode} })
		got[i] = uplinkAggregate(tb)
	}
	if got[0] <= 0 {
		t.Fatalf("baseline uplink moved nothing")
	}
	// A dormant agent is pure pass-through: no worse than baseline (tiny
	// tolerance for scheduling skew from the extra flow-table bookkeeping).
	if got[1] < 0.99*got[0] {
		t.Fatalf("FastACK uplink %f < 0.99x baseline %f Mbps", got[1], got[0])
	}
}

func TestBidirectionalFastAckSafety(t *testing.T) {
	tb := runUplink(t, func(o *Options) {
		o.Traffic = TCPBidirectional
		o.APModes = []Mode{FastACK}
	})
	var down, up float64
	for _, c := range tb.Clients {
		down += c.GoodputMbps(uplinkDur)
		up += c.UplinkGoodputMbps(uplinkDur)
	}
	if down <= 1 || up <= 1 {
		t.Fatalf("bidirectional starved a direction: down %f, up %f Mbps", down, up)
	}
	// The download direction must engage fast-ACKing while the upload's
	// reverse flows stay untouched; with both mixed on one agent the only
	// observable split is that every suppressed packet belongs to a
	// download flow — which invariant checking plus the uplink receivers'
	// own progress (above) establishes.
	st := tb.AgentStatsPerAP()[0]
	if st.FastAcksSent == 0 {
		t.Fatal("download direction never fast-acked")
	}
	if v := tb.AgentViolations(); len(v) != 0 {
		t.Fatalf("invariant violations on bidirectional traffic: %v", v)
	}
	tb.Engine.RunUntil(uplinkDur + 500*sim.Millisecond)
	if n := tb.UndrainedBypassedFlows(); n != 0 {
		t.Fatalf("%d bypassed flows still owe fast-ACK debt", n)
	}
}

// TestUplinkChaosComposes runs the reverse-direction mix under the full
// DataChaos fault plane — including a mid-flow roam between two FastACK
// APs, which exercises Export/Import of a dormant (never-saw-data) flow:
// the transfer must not forge a resync ACK.
func TestUplinkChaosComposes(t *testing.T) {
	for _, seed := range []int64{3, 19, 71} {
		tb := runUplink(t, func(o *Options) {
			o.Seed = seed
			o.APModes = []Mode{FastACK, FastACK}
			o.ClientsPerAP = 2
			o.DataFaults = chaosProfile(seed)
		})
		if tb.Faults.WireDrops == 0 {
			t.Fatalf("seed %d: chaos injected no wire loss on uplink data", seed)
		}
		if tb.Clients[0].AP.Index != 1 {
			t.Fatalf("seed %d: client 0 still on AP %d after scheduled roam",
				seed, tb.Clients[0].AP.Index)
		}
		for i, c := range tb.Clients {
			if g := c.UplinkGoodputMbps(uplinkDur); g <= 0 {
				t.Fatalf("seed %d: uplink client %d starved under chaos (%f Mbps)", seed, i, g)
			}
		}
		dormancy(t, tb)
	}
}
