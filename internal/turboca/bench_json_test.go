package turboca

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/spectrum"
)

// BenchmarkPlannerPass times a full i=0 invocation over the ~600-AP chain
// (the paper's UNet scale) with the default worker count, and — when
// BENCH_JSON_DIR is set (`make bench-json`) — persists the numbers as
// BENCH_planner.json. BenchmarkRunNBO remains the worker-count sweep;
// this is the single-configuration artifact emitter.
func BenchmarkPlannerPass(b *testing.B) {
	const aps = 600
	in := chainInput(aps, spectrum.W80, 1.0)
	cfg := DefaultConfig()
	b.ReportAllocs()
	var start runtime.MemStats
	runtime.ReadMemStats(&start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunNBO(cfg, in, rand.New(rand.NewSource(42)), []int{0})
	}
	b.StopTimer()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	dir := os.Getenv("BENCH_JSON_DIR")
	if dir == "" {
		return
	}
	nsPerPass := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	payload := map[string]float64{
		"aps":             aps,
		"ns_per_pass":     nsPerPass,
		"passes_per_sec":  1e9 / nsPerPass,
		"allocs_per_pass": float64(end.Mallocs-start.Mallocs) / float64(b.N),
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Logf("bench json: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_planner.json"), append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: %v", err)
	}
}
