package turboca

import (
	"testing"

	"repro/internal/spectrum"
)

// Quarantine threading through the planner (Input.Blocked) and the trace
// interference term (Input.ChannelNoise).

// blockSubs builds a Blocked set from sub-channel numbers.
func blockSubs(subs ...int) map[int]bool {
	m := make(map[int]bool, len(subs))
	for _, s := range subs {
		m[s] = true
	}
	return m
}

func touchesAny(c spectrum.Channel, blocked map[int]bool) bool {
	for _, s := range c.Sub20Numbers() {
		if blocked[s] {
			return true
		}
	}
	return false
}

// TestNBORespectsQuarantine: no accepted assignment may touch a blocked
// sub-channel, including stay-put on a just-quarantined current channel.
func TestNBORespectsQuarantine(t *testing.T) {
	in := chainInput(6, spectrum.W80, 1.0)
	// The chain starts on ch 42 (subs 36-48); quarantine exactly that
	// block plus U-NII-2A, so staying put is inadmissible.
	in.Blocked = blockSubs(36, 40, 44, 48, 52, 56, 60, 64)
	res := RunNBO(DefaultConfig(), in, rng(), []int{1, 0})
	for id, a := range res.Plan {
		if touchesAny(a.Channel, in.Blocked) {
			t.Fatalf("AP %d assigned %v inside the quarantine", id, a.Channel)
		}
		if a.Fallback != nil && touchesAny(*a.Fallback, in.Blocked) {
			t.Fatalf("AP %d fallback %v inside the quarantine", id, *a.Fallback)
		}
	}
	// Every AP must still get a plan — quarantine narrows, never fails.
	if len(res.Plan) != 6 {
		t.Fatalf("planned %d of 6 APs", len(res.Plan))
	}
}

// TestQuarantineDegradationLadder: when the quarantine swallows every
// admissible candidate, acc must degrade deterministically — first to the
// narrowest unquarantined non-DFS channels, and under a (radar-impossible)
// total quarantine to the unfiltered narrowest set — never fail or keep a
// blocked current channel.
func TestQuarantineDegradationLadder(t *testing.T) {
	// Partial quarantine: everything except U-NII-3 (149-165). The chain
	// sits on ch 42, now blocked; acc must choose a surviving channel.
	in := chainInput(3, spectrum.W80, 1.0)
	in.Blocked = map[int]bool{}
	for _, c := range spectrum.Channels(spectrum.Band5, spectrum.W20, true) {
		if c.Number < 149 {
			in.Blocked[c.Number] = true
		}
	}
	p := newPlanner(DefaultConfig(), in)
	for i := range p.views {
		c := p.acc(i)
		if c == noChan {
			t.Fatalf("acc(%d) failed under partial quarantine", i)
		}
		if touchesAny(p.tbl.chans[c], in.Blocked) {
			t.Fatalf("acc(%d) chose quarantined %v", i, p.tbl.chans[c])
		}
	}

	// Total quarantine: every 20 MHz sub blocked. Radar cannot produce
	// this (non-DFS channels are never struck), but the planner must still
	// land on the deterministic narrowest floor instead of failing.
	in2 := chainInput(3, spectrum.W80, 1.0)
	in2.Blocked = map[int]bool{}
	for _, c := range spectrum.Channels(spectrum.Band5, spectrum.W20, true) {
		in2.Blocked[c.Number] = true
	}
	p2 := newPlanner(DefaultConfig(), in2)
	for i := range p2.views {
		c := p2.acc(i)
		if c == noChan {
			t.Fatalf("acc(%d) failed under total quarantine", i)
		}
		if p2.tbl.chans[c].Width != spectrum.W20 {
			t.Fatalf("acc(%d) floor width %v, want 20 MHz", i, p2.tbl.chans[c].Width)
		}
	}
}

// TestReservedCARespectsQuarantine: the fixed-width baseline skips
// quarantined channels too — backend radar fallback depends on it.
func TestReservedCARespectsQuarantine(t *testing.T) {
	in := chainInput(4, spectrum.W80, 1.0)
	in.Blocked = blockSubs(36, 40, 44, 48)
	res := RunReservedCA(DefaultConfig(), in, spectrum.W20)
	for id, a := range res.Plan {
		if touchesAny(a.Channel, in.Blocked) {
			t.Fatalf("ReservedCA assigned AP %d to quarantined %v", id, a.Channel)
		}
	}
}

// TestChannelNoisePenalizesOccupiedChannels: trace interference folded
// into a channel's external utilization must make it score worse than an
// equally-situated quiet channel.
func TestChannelNoisePenalizesOccupiedChannels(t *testing.T) {
	in := chainInput(1, spectrum.W80, 1.0)
	noisy, _ := spectrum.ChannelAt(spectrum.Band5, 155, spectrum.W80)
	quiet, _ := spectrum.ChannelAt(spectrum.Band5, 106, spectrum.W80)
	in.ChannelNoise = map[int]float64{149: 0.7, 153: 0.7, 157: 0.7, 161: 0.7}
	p := newPlanner(DefaultConfig(), in)
	ni := p.tbl.intern(noisy)
	qi := p.tbl.intern(quiet)
	p.refreshTables()
	if p.logNodeP(0, ni) >= p.logNodeP(0, qi) {
		t.Fatalf("noisy channel scored %f >= quiet %f", p.logNodeP(0, ni), p.logNodeP(0, qi))
	}
}

// TestChannelNoiseCapsAtFullOccupancy: noise on top of external WiFi
// utilization saturates at 1 rather than overflowing the airtime model.
func TestChannelNoiseCapsAtFullOccupancy(t *testing.T) {
	in := chainInput(1, spectrum.W80, 1.0)
	in.APs[0].ExternalUtil = map[int]float64{149: 0.8}
	in.ChannelNoise = map[int]float64{149: 0.9}
	p := newPlanner(DefaultConfig(), in)
	c, _ := spectrum.ChannelAt(spectrum.Band5, 149, spectrum.W20)
	ci := p.tbl.intern(c)
	p.refreshTables()
	if got := p.extOf[0][ci]; got != 1 {
		t.Fatalf("external+noise = %v, want capped at 1", got)
	}
}

// TestDigestCoversQuarantineAndNoise: Blocked and ChannelNoise must dirty
// the input digest — otherwise dirty-skip would replay a pre-storm plan
// straight through a NOP window.
func TestDigestCoversQuarantineAndNoise(t *testing.T) {
	base := chainInput(2, spectrum.W80, 1.0)
	d0 := base.Digest()

	b := chainInput(2, spectrum.W80, 1.0)
	b.Blocked = blockSubs(52)
	if b.Digest() == d0 {
		t.Fatal("Blocked does not affect the digest")
	}
	b2 := chainInput(2, spectrum.W80, 1.0)
	b2.Blocked = blockSubs(56)
	if b2.Digest() == b.Digest() {
		t.Fatal("different quarantines share a digest")
	}

	n := chainInput(2, spectrum.W80, 1.0)
	n.ChannelNoise = map[int]float64{36: 0.4}
	if n.Digest() == d0 {
		t.Fatal("ChannelNoise does not affect the digest")
	}
	n2 := chainInput(2, spectrum.W80, 1.0)
	n2.ChannelNoise = map[int]float64{36: 0.5}
	if n2.Digest() == n.Digest() {
		t.Fatal("noise level does not affect the digest")
	}

	// Map iteration order must not leak into the digest.
	m1 := chainInput(2, spectrum.W80, 1.0)
	m1.Blocked = blockSubs(52, 56, 60, 64, 100, 104)
	m1.ChannelNoise = map[int]float64{36: 0.1, 40: 0.2, 149: 0.3}
	m2 := chainInput(2, spectrum.W80, 1.0)
	m2.Blocked = blockSubs(104, 100, 64, 60, 56, 52)
	m2.ChannelNoise = map[int]float64{149: 0.3, 40: 0.2, 36: 0.1}
	if m1.Digest() != m2.Digest() {
		t.Fatal("digest depends on map construction order")
	}
}

// TestSanitizeQuarantineFields: sanitation canonicalizes false Blocked
// entries away (so equivalent quarantine states digest identically) and
// clamps noise into [0, 1].
func TestSanitizeQuarantineFields(t *testing.T) {
	in := chainInput(1, spectrum.W80, 1.0)
	in.Blocked = map[int]bool{52: true, 56: false}
	in.ChannelNoise = map[int]float64{36: 1.7, 40: -0.2, 44: 0.5}
	fixes := in.Sanitize()
	if fixes == 0 {
		t.Fatal("sanitize reported no fixes")
	}
	if _, ok := in.Blocked[56]; ok {
		t.Fatal("false Blocked entry survived sanitation")
	}
	if !in.Blocked[52] {
		t.Fatal("true Blocked entry lost")
	}
	if in.ChannelNoise[36] != 1 {
		t.Fatalf("over-unity noise = %v, want clamped to 1", in.ChannelNoise[36])
	}
	if _, ok := in.ChannelNoise[40]; ok {
		t.Fatal("negative noise entry survived sanitation")
	}
	if in.ChannelNoise[44] != 0.5 {
		t.Fatal("valid noise entry mutated")
	}

	// Canonical equivalence: {52: true, 56: false} digests like {52: true}.
	a := chainInput(1, spectrum.W80, 1.0)
	a.Blocked = map[int]bool{52: true, 56: false}
	a.Sanitize()
	b := chainInput(1, spectrum.W80, 1.0)
	b.Blocked = map[int]bool{52: true}
	b.Sanitize()
	if a.Digest() != b.Digest() {
		t.Fatal("equivalent quarantine states digest differently")
	}
}

// TestEvaluatorQuarantineSuperset: the oracle's candidate lists must stay
// a feasibility superset of the greedy planners under quarantine — every
// channel NBO assigns appears among the evaluator's candidates — while
// never themselves admitting a blocked channel.
func TestEvaluatorQuarantineSuperset(t *testing.T) {
	in := chainInput(5, spectrum.W80, 1.0)
	in.Blocked = blockSubs(36, 40, 44, 48)
	cfg := DefaultConfig()
	e := NewEvaluator(cfg, CanonicalInput(in))
	for i := 0; i < e.NumAPs(); i++ {
		for _, c := range e.Candidates(i) {
			if c == Unassigned {
				continue
			}
			if touchesAny(e.Channel(c), in.Blocked) {
				t.Fatalf("evaluator candidate %v touches the quarantine", e.Channel(c))
			}
		}
	}
	// The chain's on-air channel (42) is quarantined, so Unassigned must
	// be the admissible "stay" for every unpinned AP.
	for i := 0; i < e.NumAPs(); i++ {
		found := false
		for _, c := range e.Candidates(i) {
			if c == Unassigned {
				found = true
			}
		}
		if !found {
			t.Fatalf("AP %d: quarantined on-air channel but no Unassigned candidate", i)
		}
	}
	res := RunNBO(cfg, in, rng(), []int{1, 0})
	for i := 0; i < e.NumAPs(); i++ {
		a, ok := res.Plan[e.APID(i)]
		if !ok {
			continue
		}
		found := false
		for _, c := range e.Candidates(i) {
			if c != Unassigned && e.Channel(c) == a.Channel {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("NBO assigned AP %d channel %v outside the evaluator's candidates", e.APID(i), a.Channel)
		}
	}
}
