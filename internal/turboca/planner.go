package turboca

import (
	"math"
	"math/rand"

	"repro/internal/spectrum"
)

// acc — AP Channel Calculation (§4.4.2) — picks the channel for dense AP
// index i that maximizes NetP, considering only i and its neighbors (the
// only NodeP values a single-AP change can affect). APs currently marked
// in p.ignore (the paper's ψ) are treated as if they had no channel, which
// lets NBO escape locally optimal plans by presuming upcoming changes.
func (p *planner) acc(i int) chanIdx {
	cands := p.cands
	if p.views[i].HasClients {
		// §4.5.2: never move an AP with connected clients onto a DFS
		// channel — they would sit through a 60 s CAC.
		cands = p.candNoDFS
	}
	maxW := p.views[i].MaxWidth
	bestScore := math.Inf(-1)
	best := noChan
	for _, c := range cands {
		if p.tbl.chans[c].Width > maxW {
			continue
		}
		score := p.deltaScore(i, c)
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	if best == noChan {
		best = p.current[i] // nothing admissible; stay put
	}
	return best
}

// deltaScore is the NetP contribution affected by assigning c to i: its
// own NodeP plus the NodeP of every neighbor (whose airtime depends on
// i's channel).
func (p *planner) deltaScore(i int, c chanIdx) float64 {
	prev := p.assign[i]
	p.assign[i] = c
	score := p.logNodeP(i, c)
	for _, j := range p.neigh[i] {
		if p.ignore[j] {
			continue
		}
		nc := p.channelOf(j)
		if nc == noChan {
			continue
		}
		score += p.logNodeP(j, nc)
	}
	p.assign[i] = prev
	return score
}

// bestNonDFSFallback picks the best DFS-free channel for i, used when a
// radar event forces an immediate move (§4.5.2).
func (p *planner) bestNonDFSFallback(i int) spectrum.Channel {
	maxW := p.views[i].MaxWidth
	bestScore := math.Inf(-1)
	best := noChan
	for _, c := range p.candNoDFS {
		if p.tbl.chans[c].Width > maxW {
			continue
		}
		if s := p.deltaScore(i, c); s > bestScore {
			bestScore = s
			best = c
		}
	}
	if best == noChan {
		return spectrum.Channel{}
	}
	return p.tbl.channel(best)
}

// nbo — Network Basic Operation (Algorithm 1, §4.4.3) — produces a full
// proposed assignment. hopLimit is the paper's i: the radius of the
// candidate set of nodes whose current assignments are ignored while the
// group is (re)planned. Picks on line 8 are weighted by AP load so heavily
// loaded APs plan first and get the cleaner channels.
func (p *planner) nbo(rng *rand.Rand, hopLimit int) {
	n := len(p.views)
	for i := 0; i < n; i++ {
		p.assign[i] = noChan
		p.ignore[i] = false
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}

	for len(remaining) > 0 {
		// Line 4: random unassigned AP.
		pick := rng.Intn(len(remaining))
		seed := remaining[pick]

		// Line 5: group = seed + APs within hopLimit hops, unassigned.
		group := p.hopGroup(seed, hopLimit, remaining)
		inGroup := map[int]bool{}
		for _, g := range group {
			inGroup[g] = true
			p.ignore[g] = true // ψ: presume these will change
		}
		// Line 6: S <- S - Sgroup.
		kept := remaining[:0]
		for _, r := range remaining {
			if !inGroup[r] {
				kept = append(kept, r)
			}
		}
		remaining = kept

		// Lines 7-11: drain the group, load-weighted; each planned AP
		// leaves ψ so later picks see its new channel.
		for len(group) > 0 {
			gi := p.pickLoadWeighted(rng, group)
			m := group[gi]
			group = append(group[:gi], group[gi+1:]...)
			p.ignore[m] = false
			p.assign[m] = p.acc(m)
		}
	}
}

// hopGroup returns seed plus every AP within hops hops, restricted to the
// eligible (still remaining) set.
func (p *planner) hopGroup(seed int, hops int, eligible []int) []int {
	elig := map[int]bool{}
	for _, e := range eligible {
		elig[e] = true
	}
	group := []int{seed}
	seen := map[int]bool{seed: true}
	frontier := []int{seed}
	for h := 0; h < hops; h++ {
		var next []int
		for _, i := range frontier {
			for _, j := range p.neigh[i] {
				if elig[j] && !seen[j] {
					seen[j] = true
					group = append(group, j)
					next = append(next, j)
				}
			}
		}
		frontier = next
	}
	return group
}

// pickLoadWeighted draws an index into group with probability proportional
// to AP load (§4.4.3: "the probability of picking any AP is weighted
// proportionally to the load").
func (p *planner) pickLoadWeighted(rng *rand.Rand, group []int) int {
	if p.cfg.UniformPick {
		return rng.Intn(len(group))
	}
	total := 0.0
	for _, i := range group {
		total += p.views[i].Load + 0.01
	}
	x := rng.Float64() * total
	for gi, i := range group {
		x -= p.views[i].Load + 0.01
		if x <= 0 {
			return gi
		}
	}
	return len(group) - 1
}

// snapshotPlan converts the scratch assignment into an exported Plan,
// computing DFS fallbacks.
func (p *planner) snapshotPlan() Plan {
	plan := Plan{}
	for i, v := range p.views {
		c := p.assign[i]
		if c == noChan {
			continue
		}
		a := Assignment{Channel: p.tbl.channel(c)}
		if a.Channel.DFS {
			fb := p.bestNonDFSFallback(i)
			a.Fallback = &fb
		}
		plan[v.ID] = a
	}
	return plan
}

// Result reports one planning invocation.
type Result struct {
	Plan Plan
	// LogNetP of the accepted plan.
	LogNetP float64
	// Improved is false when the incumbent plan was kept.
	Improved bool
	// Switches counts APs whose channel changed from Current.
	Switches int
	// Rounds is how many NBO rounds ran.
	Rounds int
}

// RunNBO executes the paper's accept-if-better loop: several NBO rounds at
// each hop limit in hops (e.g. [2,1,0] for the daily schedule), always
// ending with i=0, keeping the best plan seen. The incumbent (current
// channels, no changes) is the implicit baseline, so NetP never regresses.
func RunNBO(cfg Config, in Input, rng *rand.Rand, hops []int) Result {
	p := newPlanner(cfg, in)
	runs := cfg.Runs
	if runs <= 0 {
		runs = 2 + len(in.APs)/100 // "proportional to the network size"
	}

	// Baseline: current channels as-is.
	for i := range p.assign {
		p.assign[i] = noChan
	}
	bestScore := p.logNetP()
	var bestAssign []chanIdx
	improved := false
	rounds := 0

	for _, h := range hops {
		for r := 0; r < runs; r++ {
			rounds++
			p.nbo(rng, h)
			score := p.logNetP()
			if score > bestScore {
				bestScore = score
				bestAssign = append(bestAssign[:0], p.assign...)
				improved = true
			}
		}
		// Subsequent hop levels refine from the best plan so far: adopt
		// it as the working current assignment.
		if bestAssign != nil {
			copy(p.assign, bestAssign)
		}
	}

	res := Result{LogNetP: bestScore, Improved: improved, Rounds: rounds}
	if bestAssign != nil {
		copy(p.assign, bestAssign)
	} else {
		for i := range p.assign {
			p.assign[i] = noChan
		}
	}
	res.Plan = p.snapshotPlan()
	for id, a := range res.Plan {
		cur := p.views[p.idxOf[id]].Current
		if cur.Number != a.Channel.Number || cur.Width != a.Channel.Width {
			res.Switches++
		}
	}
	return res
}
