package turboca

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/spectrum"
)

// acc — AP Channel Calculation (§4.4.2) — picks the channel for dense AP
// index i that maximizes NetP, considering only i and its neighbors (the
// only NodeP values a single-AP change can affect). APs currently marked
// in p.ignore (the paper's ψ) are treated as if they had no channel, which
// lets NBO escape locally optimal plans by presuming upcoming changes.
func (p *planner) acc(i int) chanIdx {
	cands := p.cands
	if p.views[i].HasClients {
		// §4.5.2: never move an AP with connected clients onto a DFS
		// channel — they would sit through a 60 s CAC.
		cands = p.candNoDFS
	}
	maxW := p.views[i].MaxWidth
	bestScore := math.Inf(-1)
	best := noChan
	for _, c := range cands {
		if p.blocked[c] || p.tbl.chans[c].Width > maxW {
			continue
		}
		score := p.deltaScore(i, c)
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	if best == noChan {
		// No candidate cleared the width cap. Staying put is only safe when
		// the current channel is itself admissible: no wider than the AP's
		// cap, not a DFS channel while clients are associated (§4.5.2), and
		// not inside an active radar quarantine. Otherwise fall back to the
		// best narrowest non-DFS channel — keeping a channel that violates
		// the constraint this filter exists to honor is worse than an
		// out-of-cap move to a safe one.
		if cur := p.current[i]; cur != noChan {
			ch := p.tbl.chans[cur]
			if ch.Width <= maxW && !(ch.DFS && p.views[i].HasClients) && !p.blocked[cur] {
				return cur
			}
		}
		best = p.narrowestFallback(i)
	}
	return best
}

// narrowestFallback picks the best-scoring channel among the narrowest
// unquarantined non-DFS candidates, ignoring the AP's width cap. It is
// the last resort when no candidate is admissible under the cap (a
// malformed cap narrower than every channel, or a quarantine collapsing
// the admissible set) and the current channel violates a hard
// constraint. If every non-DFS candidate is quarantined — unreachable
// when strikes come from radar, which only exists on DFS channels — the
// blocked filter is dropped so the planner still degrades to a
// deterministic answer instead of failing.
func (p *planner) narrowestFallback(i int) chanIdx {
	if best := p.narrowestAmong(i, true); best != noChan {
		return best
	}
	return p.narrowestAmong(i, false)
}

func (p *planner) narrowestAmong(i int, skipBlocked bool) chanIdx {
	var minW spectrum.Width
	for _, c := range p.candNoDFS {
		if skipBlocked && p.blocked[c] {
			continue
		}
		if w := p.tbl.chans[c].Width; minW == 0 || w < minW {
			minW = w
		}
	}
	bestScore := math.Inf(-1)
	best := noChan
	for _, c := range p.candNoDFS {
		if skipBlocked && p.blocked[c] {
			continue
		}
		if p.tbl.chans[c].Width != minW {
			continue
		}
		if s := p.deltaScore(i, c); s > bestScore {
			bestScore = s
			best = c
		}
	}
	return best
}

// deltaScore is the NetP contribution affected by assigning c to i: its
// own NodeP plus the NodeP of every neighbor (whose airtime depends on
// i's channel).
func (p *planner) deltaScore(i int, c chanIdx) float64 {
	prev := p.assign[i]
	p.assign[i] = c
	score := p.logNodeP(i, c)
	for _, j := range p.neigh[i] {
		if p.ignore[j] {
			continue
		}
		nc := p.channelOf(j)
		if nc == noChan {
			continue
		}
		score += p.logNodeP(j, nc)
	}
	p.assign[i] = prev
	return score
}

// bestNonDFSFallback picks the best DFS-free channel for i, used when a
// radar event forces an immediate move (§4.5.2). Quarantined channels
// are excluded — a fallback that lands inside an active NOP window is
// exactly the violation the fallback exists to avoid. Returns the zero
// Channel when nothing qualifies; the backend then draws its own
// quarantine-aware fallback.
func (p *planner) bestNonDFSFallback(i int) spectrum.Channel {
	maxW := p.views[i].MaxWidth
	bestScore := math.Inf(-1)
	best := noChan
	for _, c := range p.candNoDFS {
		if p.blocked[c] || p.tbl.chans[c].Width > maxW {
			continue
		}
		if s := p.deltaScore(i, c); s > bestScore {
			bestScore = s
			best = c
		}
	}
	if best == noChan {
		return spectrum.Channel{}
	}
	return p.tbl.channel(best)
}

// nbo — Network Basic Operation (Algorithm 1, §4.4.3) — produces a full
// proposed assignment. hopLimit is the paper's i: the radius of the
// candidate set of nodes whose current assignments are ignored while the
// group is (re)planned. Picks on line 8 are weighted by AP load so heavily
// loaded APs plan first and get the cleaner channels.
func (p *planner) nbo(rng *rand.Rand, hopLimit int) {
	n := len(p.views)
	for i := 0; i < n; i++ {
		p.assign[i] = noChan
		p.ignore[i] = false
	}
	remaining := p.remBuf[:0]
	for i := 0; i < n; i++ {
		// A pinned AP (stale/offline telemetry, §4.5-style caution) is
		// pre-assigned its current channel and never enters ψ: neighbors
		// always see it where it really is, and no pass can move it.
		if p.views[i].Pinned && p.current[i] != noChan {
			p.assign[i] = p.current[i]
			continue
		}
		remaining = append(remaining, i)
	}

	for len(remaining) > 0 {
		// Line 4: random unassigned AP.
		pick := rng.Intn(len(remaining))
		seed := remaining[pick]

		// Line 5: group = seed + APs within hopLimit hops, unassigned.
		group := p.hopGroup(seed, hopLimit, remaining)
		for _, g := range group {
			p.ignore[g] = true // ψ: presume these will change
		}
		// Line 6: S <- S - Sgroup. Group members are exactly the remaining
		// APs currently marked in ψ.
		kept := remaining[:0]
		for _, r := range remaining {
			if !p.ignore[r] {
				kept = append(kept, r)
			}
		}
		remaining = kept

		// Lines 7-11: drain the group, load-weighted; each planned AP
		// leaves ψ so later picks see its new channel.
		for len(group) > 0 {
			gi := p.pickLoadWeighted(rng, group)
			m := group[gi]
			group = append(group[:gi], group[gi+1:]...)
			p.ignore[m] = false
			p.assign[m] = p.acc(m)
		}
	}
}

// hopGroup returns seed plus every AP within hops hops, restricted to the
// eligible (still remaining) set. The returned slice aliases a scratch
// buffer that is reused by the next call — callers consume it before
// picking again (which nbo does).
func (p *planner) hopGroup(seed int, hops int, eligible []int) []int {
	group := append(p.groupBuf[:0], seed)
	if hops > 0 {
		p.gen++
		for _, e := range eligible {
			p.eligGen[e] = p.gen
		}
		p.seenGen[seed] = p.gen
		// BFS frontier [lo:hi) runs over group itself: newly appended
		// members form the next frontier.
		lo, hi := 0, len(group)
		for h := 0; h < hops && lo < hi; h++ {
			for _, i := range group[lo:hi] {
				for _, j := range p.neigh[i] {
					if p.eligGen[j] == p.gen && p.seenGen[j] != p.gen {
						p.seenGen[j] = p.gen
						group = append(group, j)
					}
				}
			}
			lo, hi = hi, len(group)
		}
	}
	p.groupBuf = group
	return group
}

// pickLoadWeighted draws an index into group with probability proportional
// to AP load (§4.4.3: "the probability of picking any AP is weighted
// proportionally to the load").
func (p *planner) pickLoadWeighted(rng *rand.Rand, group []int) int {
	if p.cfg.UniformPick {
		return rng.Intn(len(group))
	}
	total := 0.0
	for _, i := range group {
		total += p.views[i].Load + 0.01
	}
	x := rng.Float64() * total
	for gi, i := range group {
		x -= p.views[i].Load + 0.01
		if x <= 0 {
			return gi
		}
	}
	return len(group) - 1
}

// snapshotPlan converts the scratch assignment into an exported Plan,
// computing DFS fallbacks.
func (p *planner) snapshotPlan() Plan {
	plan := Plan{}
	for i, v := range p.views {
		c := p.assign[i]
		if c == noChan {
			continue
		}
		a := Assignment{Channel: p.tbl.channel(c)}
		if a.Channel.DFS {
			fb := p.bestNonDFSFallback(i)
			a.Fallback = &fb
		}
		plan[v.ID] = a
	}
	return plan
}

// Result reports one planning invocation.
type Result struct {
	Plan Plan
	// LogNetP of the accepted plan.
	LogNetP float64
	// Improved is false when the incumbent plan was kept.
	Improved bool
	// Switches counts APs whose channel changed from Current.
	Switches int
	// Rounds is how many NBO rounds ran.
	Rounds int
}

// roundSeed derives the RNG seed for one NBO round from the invocation's
// base seed and the round's (hop level index, round index) coordinates,
// using a splitmix64-style mix. Because every round owns its stream, the
// sequence of plans a seed produces is independent of how rounds are
// scheduled across workers.
func roundSeed(base int64, level, round int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(uint32(level)+1) + 0xbf58476d1ce4e5b9*uint64(uint32(round)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunNBO executes the paper's accept-if-better loop: several NBO rounds at
// each hop limit in hops (e.g. [2,1,0] for the daily schedule), always
// ending with i=0, keeping the best plan seen. The incumbent (current
// channels, no changes) is the implicit baseline, so NetP never regresses.
// Between hop levels the best plan so far is adopted as the working
// incumbent, so deeper (later) levels refine the earlier levels' winner
// rather than replanning from the on-air channels.
//
// Rounds within one hop level are independent and run concurrently on
// cfg.Workers goroutines (GOMAXPROCS when zero). rng is consumed exactly
// once, to draw a base seed; each round then uses its own stream derived
// from (base, level, round), and the accept-if-better reduction scans
// rounds in index order — so a given seed yields byte-identical results at
// any worker count.
func RunNBO(cfg Config, in Input, rng *rand.Rand, hops []int) Result {
	return runNBO(cfg, in, rng, hops, nil)
}

// runNBO is RunNBO plus a test hook: onLevel, when non-nil, observes the
// working incumbent after each hop level's adoption step.
func runNBO(cfg Config, in Input, rng *rand.Rand, hops []int, onLevel func(hop int, incumbent []chanIdx)) Result {
	m := cfg.metrics()
	sp := cfg.obsRegistry().Tracer().Begin("turboca.pass")
	passStart := time.Now()
	defer func() {
		m.passUS.Observe(time.Since(passStart).Microseconds())
		sp.End()
	}()
	m.passes.Inc()

	p := newPlanner(cfg, in)
	p.met = m
	runs := cfg.Runs
	if runs <= 0 {
		runs = 2 + len(in.APs)/100 // "proportional to the network size"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	base := rng.Int63()

	// Baseline: current channels as-is. Never-assigned APs score at their
	// NodeP floor (see logNetP), so any round that gives them a channel
	// beats the baseline on their account rather than being penalized for
	// disturbing a fictitious perfect score.
	for i := range p.assign {
		p.assign[i] = noChan
	}
	bestScore := p.score()
	var bestAssign []chanIdx
	improved := false
	rounds := 0

	type roundOut struct {
		score  float64
		assign []chanIdx
	}
	for li, h := range hops {
		levelStart := time.Now()
		out := make([]roundOut, runs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wp := p.cloneScratch()
				for r := w; r < runs; r += workers {
					rr := rand.New(rand.NewSource(roundSeed(base, li, r)))
					wp.nbo(rr, h)
					out[r] = roundOut{wp.score(), append([]chanIdx(nil), wp.assign...)}
				}
			}(w)
		}
		wg.Wait()

		// Deterministic reduction: accept-if-better in round order, exactly
		// as the serial loop would. Metrics are recorded here, on the
		// serial path, so the NetP trajectory histogram sees every round's
		// score in a scheduling-independent multiset.
		for _, ro := range out {
			rounds++
			m.rounds.Inc()
			m.netpRound.Observe(milliNetP(ro.score))
			if ro.score > bestScore {
				bestScore = ro.score
				bestAssign = ro.assign
				improved = true
				m.roundsAccepted.Inc()
			} else {
				m.roundsRejected.Inc()
			}
		}
		m.levelUS.Observe(time.Since(levelStart).Microseconds())

		// Refinement (§4.4.4): adopt the best plan so far as the working
		// incumbent, so the next hop level's rounds plan against it — the
		// unassigned/out-of-ψ APs appear on their best-so-far channels, and
		// ACC's stay-put fallback keeps them there.
		if bestAssign != nil {
			for i, c := range bestAssign {
				if c != noChan {
					p.current[i] = c
				}
			}
		}
		if onLevel != nil {
			onLevel(h, append([]chanIdx(nil), p.current...))
		}
	}

	res := Result{LogNetP: bestScore, Improved: improved, Rounds: rounds}
	if bestAssign != nil {
		copy(p.assign, bestAssign)
	} else {
		for i := range p.assign {
			p.assign[i] = noChan
		}
	}
	res.Plan = p.snapshotPlan()
	for id, a := range res.Plan {
		cur := p.views[p.idxOf[id]].Current
		if !cur.Width.Valid() {
			continue // first assignment ever: nothing switched away from
		}
		if cur.Number != a.Channel.Number || cur.Width != a.Channel.Width {
			res.Switches++
		}
	}
	m.netpBest.Set(milliNetP(bestScore))
	m.switchesDone.Add(int64(res.Switches))
	return res
}
