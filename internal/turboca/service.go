package turboca

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/spectrum"
)

// EnvironmentFn supplies the current planning input for a band; the
// backend implements it by snapshotting the latest AP reports.
type EnvironmentFn func(band spectrum.Band) Input

// ApplyFn delivers an accepted plan to the network (the backend pushes the
// configuration to the APs).
type ApplyFn func(band spectrum.Band, plan Plan, res Result)

// Service is TurboCA's run-time schedule (§4.4.4): NBO with i=0 every 15
// minutes, i=1 then i=0 every 3 hours, and i=2,1,0 once a day. Every
// schedule ends with i=0, which guarantees NetP does not regress; the
// deeper hop limits escape local optima at most once per their period.
type Service struct {
	Cfg   Config
	Env   EnvironmentFn
	Apply ApplyFn
	Bands []spectrum.Band

	// Periods are configurable for accelerated simulation.
	Fast  sim.Time // i=0 cadence (default 15 min)
	Mid   sim.Time // i=1,0 cadence (default 3 h)
	Deep  sim.Time // i=2,1,0 cadence (default 24 h)
	rng   *rand.Rand
	stops []func()

	// Counters for evaluation.
	RunsTotal     int
	SwitchesTotal int
	ImprovedTotal int
	LastLogNetP   map[spectrum.Band]float64
}

// NewService builds a service with the paper's default cadences.
func NewService(cfg Config, env EnvironmentFn, apply ApplyFn, seed int64) *Service {
	return &Service{
		Cfg: cfg, Env: env, Apply: apply,
		Bands:       []spectrum.Band{spectrum.Band5, spectrum.Band2G4},
		Fast:        15 * sim.Minute,
		Mid:         3 * sim.Hour,
		Deep:        24 * sim.Hour,
		rng:         rand.New(rand.NewSource(seed)),
		LastLogNetP: map[spectrum.Band]float64{},
	}
}

// Start registers the three cadences on the engine. Mid and Deep ticks
// subsume the shallower passes (they end with i=0), mirroring the paper's
// schedule composition.
func (s *Service) Start(engine *sim.Engine) {
	s.stops = append(s.stops,
		engine.Ticker(s.Fast, func(e *sim.Engine) { s.RunOnce([]int{0}) }),
		engine.Ticker(s.Mid, func(e *sim.Engine) { s.RunOnce([]int{1, 0}) }),
		engine.Ticker(s.Deep, func(e *sim.Engine) { s.RunOnce([]int{2, 1, 0}) }),
	)
}

// Stop cancels the schedule.
func (s *Service) Stop() {
	for _, stop := range s.stops {
		stop()
	}
	s.stops = nil
}

// RunOnce executes one scheduled invocation across all managed bands.
func (s *Service) RunOnce(hops []int) {
	for _, band := range s.Bands {
		in := s.Env(band)
		if len(in.APs) == 0 {
			continue
		}
		res := RunNBO(s.Cfg, in, s.rng, hops)
		s.RunsTotal++
		s.LastLogNetP[band] = res.LogNetP
		if res.Improved {
			s.ImprovedTotal++
			s.SwitchesTotal += res.Switches
			if s.Apply != nil {
				s.Apply(band, res.Plan, res)
			}
		}
	}
}

// RadarEvent handles a DFS radar detection on an AP (§4.5.2): the AP must
// vacate immediately to its pre-computed fallback channel. It returns the
// channel the AP should move to and whether a fallback existed.
func RadarEvent(plan Plan, apID int) (spectrum.Channel, bool) {
	a, ok := plan[apID]
	if !ok || !a.Channel.DFS {
		return spectrum.Channel{}, false
	}
	if a.Fallback == nil {
		return spectrum.Channel{}, false
	}
	plan[apID] = Assignment{Channel: *a.Fallback}
	return *a.Fallback, true
}
